// Package pstore's root benchmark harness regenerates every table and
// figure of the paper's evaluation on this substrate. Each Benchmark
// function corresponds to one paper artifact (see DESIGN.md §3 for the
// index); running
//
//	go test -bench=. -benchmem
//
// prints the rows/series the paper reports, at compressed time scale.
// Reported custom metrics carry the headline number of each artifact.
package pstore

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"pstore/internal/experiments"
	"pstore/internal/metrics"
	"pstore/internal/migration"
	"pstore/internal/plan"
	"pstore/internal/predict"
	"pstore/internal/sim"
	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

// benchScale is the compressed-time substrate for engine benches: a trace
// day passes in ~3.8s.
func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.SlotsPerDay = 96
	sc.SlotWall = 40 * time.Millisecond
	return sc
}

// once guards the one-time printing of each bench's table.
var printed sync.Map

func printOnce(b *testing.B, key string, f func()) {
	if _, dup := printed.LoadOrStore(key, true); !dup {
		f()
	}
	_ = b
}

// ---------------------------------------------------------------------------
// Fig 1: B2W load shape — diurnal pattern with ~10× peak-to-trough.

func BenchmarkFig01LoadShape(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg := workload.DefaultB2WConfig()
		cfg.Days = 3
		s := workload.GenerateB2W(cfg)
		ratio = s.Max() / s.Min()
	}
	b.ReportMetric(ratio, "peak/trough")
	printOnce(b, "fig1", func() {
		cfg := workload.DefaultB2WConfig()
		cfg.Days = 3
		s := workload.GenerateB2W(cfg)
		fmt.Printf("\nFig 1 — B2W load over 3 days (hourly samples, requests/min):\n")
		for h := 0; h < 72; h += 4 {
			fmt.Printf("  t=%2dh load=%7.0f\n", h, s.At(h*60))
		}
		fmt.Printf("  peak/trough = %.1f (paper: ≈10×)\n", s.Max()/s.Min())
	})
}

// ---------------------------------------------------------------------------
// Fig 2: ideal capacity vs integral step allocation for a sinusoidal demand.

func BenchmarkFig02StepAllocation(b *testing.B) {
	p := plan.Params{Q: 285, QHat: 350, D: 8, PartitionsPerNode: 6}
	var avg float64
	for i := 0; i < b.N; i++ {
		sum := 0
		for t := 0; t < 144; t++ {
			load := 1500 + 1200*math.Sin(2*math.Pi*float64(t)/144)
			sum += p.RequiredMachines(load)
		}
		avg = float64(sum) / 144
	}
	b.ReportMetric(avg, "avg-machines")
	printOnce(b, "fig2", func() {
		fmt.Printf("\nFig 2 — ideal capacity vs step allocation (sinusoidal demand, Q=%.0f):\n", p.Q)
		for t := 0; t < 144; t += 12 {
			load := 1500 + 1200*math.Sin(2*math.Pi*float64(t)/144)
			n := p.RequiredMachines(load)
			fmt.Printf("  t=%3d demand=%6.0f ideal=%5.2f servers=%d (cap %5.0f)\n",
				t, load, load/p.Q, n, p.Cap(n))
		}
	})
}

// ---------------------------------------------------------------------------
// Fig 3: the planner's goal — a series of moves from B=2 at t=0 to A=4 at
// t=9 such that capacity exceeds demand and cost is minimized.

func BenchmarkFig03PlannerGoal(b *testing.B) {
	p := plan.Params{Q: 100, QHat: 125, D: 4, PartitionsPerNode: 1}
	load := []float64{150, 150, 160, 180, 210, 250, 290, 330, 360, 390}
	var pl *plan.Plan
	var err error
	for i := 0; i < b.N; i++ {
		pl, err = plan.BestMoves(load, 2, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pl.Cost, "machine-slots")
	printOnce(b, "fig3", func() {
		fmt.Printf("\nFig 3 — planner goal (T=9, start 2 machines, predicted ramp):\n")
		for _, m := range pl.Moves {
			fmt.Printf("  %v\n", m)
		}
		fmt.Printf("  cost %.2f machine-slots, final %d machines\n", pl.Cost, pl.FinalNodes)
	})
}

// ---------------------------------------------------------------------------
// Fig 4: machines allocated and effective capacity during moves 3→5, 3→9,
// 3→14 (one partition per server).

func BenchmarkFig04EffectiveCapacity(b *testing.B) {
	p := plan.Params{Q: 285, QHat: 350, D: 1, PartitionsPerNode: 1}
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, a := range []int{5, 9, 14} {
			for f := 0.0; f <= 1.0; f += 0.05 {
				sink += p.EffCap(3, a, f)
			}
		}
	}
	b.ReportMetric(sink/float64(b.N), "sum-effcap")
	printOnce(b, "fig4", func() {
		fmt.Printf("\nFig 4 — allocation and effective capacity during moves (Q=%.0f):\n", p.Q)
		for _, a := range []int{5, 9, 14} {
			fmt.Printf("  3→%d: move time %.4f·D, avg machines %.2f\n", a, p.MoveTime(3, a)*1, p.AvgMachines(3, a))
			for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
				segs := p.AllocationSegments(3, a)
				mach := segs[len(segs)-1].Machines
				for _, s := range segs {
					if f >= s.FracStart && f < s.FracEnd {
						mach = s.Machines
						break
					}
				}
				fmt.Printf("    f=%.2f machines=%2d eff-cap=%7.0f (cap of allocated: %7.0f)\n",
					f, mach, p.EffCap(3, a, f), p.Cap(mach))
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Table 1: the 11-round schedule of parallel migrations when scaling 3→14.

func BenchmarkTable01MigrationSchedule(b *testing.B) {
	var rounds []plan.Round
	for i := 0; i < b.N; i++ {
		rounds = plan.Schedule(3, 14)
	}
	b.ReportMetric(float64(len(rounds)), "rounds")
	printOnce(b, "table1", func() {
		fmt.Printf("\nTable 1 — schedule of parallel migrations 3→14 (%d rounds):\n", len(rounds))
		for i, r := range rounds {
			fmt.Printf("  round %2d:", i+1)
			for _, t := range r {
				fmt.Printf("  %d→%d", t.From, t.To)
			}
			fmt.Println()
		}
		if err := plan.VerifySchedule(3, 14, rounds); err != nil {
			fmt.Printf("  INVALID: %v\n", err)
		}
	})
}

// ---------------------------------------------------------------------------
// Fig 5: SPAR prediction accuracy on the B2W-like trace (paper: MRE ≈10.4%
// at τ=60 min, decaying gracefully with τ).

func BenchmarkFig05SPARB2W(b *testing.B) {
	var res *experiments.PredictorStudyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.SPARStudyB2W(9, 1, []int{10, 20, 30, 40, 50, 60}, 45)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[len(res.Points)-1].MRE*100, "MRE%@60min")
	printOnce(b, "fig5", func() {
		fmt.Printf("\nFig 5 — SPAR accuracy on B2W load (paper: ≈10.4%% at τ=60min):\n")
		for _, p := range res.Points {
			fmt.Printf("  τ=%2dmin MRE %5.2f%%\n", p.Tau, p.MRE*100)
		}
	})
}

// ---------------------------------------------------------------------------
// Fig 6: SPAR on Wikipedia EN/DE hourly page views (paper: DE error <10% up
// to 2h, ≤13% at 6h; EN lower).

func BenchmarkFig06SPARWikipedia(b *testing.B) {
	var en, de *experiments.PredictorStudyResult
	var err error
	for i := 0; i < b.N; i++ {
		en, err = experiments.SPARStudyWikipedia(true, 28, 7, []int{1, 2, 3, 4, 5, 6}, 2)
		if err != nil {
			b.Fatal(err)
		}
		de, err = experiments.SPARStudyWikipedia(false, 28, 7, []int{1, 2, 3, 4, 5, 6}, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(de.Points[5].MRE*100, "DE-MRE%@6h")
	printOnce(b, "fig6", func() {
		fmt.Printf("\nFig 6 — SPAR accuracy on Wikipedia page views:\n")
		fmt.Printf("  %-4s %10s %10s\n", "τ(h)", "EN MRE", "DE MRE")
		for i := range en.Points {
			fmt.Printf("  %-4d %9.2f%% %9.2f%%\n", en.Points[i].Tau, en.Points[i].MRE*100, de.Points[i].MRE*100)
		}
	})
}

// ---------------------------------------------------------------------------
// §5 text: SPAR vs ARMA vs AR at τ=60 min (paper: 10.4% / 12.2% / 12.5%).

func BenchmarkModelComparison(b *testing.B) {
	var points []experiments.PredictorPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.ModelComparison(9, 1, 60, 60)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].MRE*100, "SPAR-MRE%")
	printOnce(b, "cmp", func() {
		fmt.Printf("\n§5 — model comparison at τ=60min (paper: SPAR 10.4%%, ARMA 12.2%%, AR 12.5%%):\n")
		for _, p := range points {
			fmt.Printf("  %-14s MRE %5.2f%%\n", p.Model, p.MRE*100)
		}
	})
}

// ---------------------------------------------------------------------------
// Fig 7 + Fig 8: parameter discovery on this substrate (shared, cached).

var (
	setupOnce sync.Once
	setupVal  *experiments.Setup
	setupErr  error
)

func benchSetup(b *testing.B) *experiments.Setup {
	setupOnce.Do(func() {
		setupVal, setupErr = experiments.DiscoverParameters(benchScale(),
			350*time.Millisecond, 8, []int{1, 2, 4, 16}, 4*time.Millisecond)
	})
	if setupErr != nil {
		b.Fatal(setupErr)
	}
	return setupVal
}

func BenchmarkFig07Saturation(b *testing.B) {
	var setup *experiments.Setup
	for i := 0; i < b.N; i++ {
		setup = benchSetup(b)
	}
	b.ReportMetric(setup.Saturation.Saturation, "saturation-tps")
	printOnce(b, "fig7", func() {
		fmt.Printf("\nFig 7 — single-node throughput ramp:\n")
		for _, p := range setup.Saturation.Points {
			fmt.Printf("  offered %6.0f tps  done %6.0f tps  p50 %6v  p99 %6v\n",
				p.OfferedRate, p.Throughput, p.P50.Round(time.Millisecond), p.P99.Round(time.Millisecond))
		}
		fmt.Printf("  saturation %.0f tps → Q̂=%.0f Q=%.0f (80%%/65%% rules, §4.1)\n",
			setup.Saturation.Saturation, setup.Saturation.QHat, setup.Saturation.Q)
	})
}

func BenchmarkFig08ChunkSizes(b *testing.B) {
	var setup *experiments.Setup
	for i := 0; i < b.N; i++ {
		setup = benchSetup(b)
	}
	b.ReportMetric(setup.Chunks.DSlots, "D-slots")
	printOnce(b, "fig8", func() {
		fmt.Printf("\nFig 8 — migration chunk-size sweep at Q̂ (larger chunks: faster move, worse latency):\n")
		for _, r := range setup.Chunks.Runs {
			fmt.Printf("  %-9s migration %8v  rows %6d  p99 violations %2d/%d windows\n",
				r.Label, r.MigrationTime.Round(time.Millisecond), r.RowsMoved,
				r.Violations.P99Violations, len(r.Windows))
		}
		fmt.Printf("  derived D = %.1f slots (single-thread full-DB move + 10%%), R = %.0f rows/s\n",
			setup.Chunks.DSlots, setup.Chunks.RatePerSec)
	})
}

// ---------------------------------------------------------------------------
// Fig 9 / Fig 10 / Table 2: the four elasticity approaches over replayed
// B2W days (shared, cached).

var (
	approachesOnce sync.Once
	approachesVal  map[experiments.Approach]*experiments.ApproachResult
	approachesCfg  *experiments.ApproachesConfig
	approachesErr  error
)

func benchApproaches(b *testing.B) (map[experiments.Approach]*experiments.ApproachResult, *experiments.ApproachesConfig) {
	approachesOnce.Do(func() {
		setup := benchSetup(b)
		cfg, err := experiments.BuildApproachesConfig(setup, 4, 1, experiments.PredictorSPAR, 3)
		if err != nil {
			approachesErr = err
			return
		}
		approachesCfg = cfg
		approachesVal = make(map[experiments.Approach]*experiments.ApproachResult)
		for _, a := range []experiments.Approach{
			experiments.ApproachStaticPeak,
			experiments.ApproachStaticSmall,
			experiments.ApproachReactive,
			experiments.ApproachPStore,
		} {
			res, err := experiments.RunApproach(*cfg, a)
			if err != nil {
				approachesErr = err
				return
			}
			approachesVal[a] = res
		}
	})
	if approachesErr != nil {
		b.Fatal(approachesErr)
	}
	return approachesVal, approachesCfg
}

func BenchmarkFig09Approaches(b *testing.B) {
	var results map[experiments.Approach]*experiments.ApproachResult
	var cfg *experiments.ApproachesConfig
	for i := 0; i < b.N; i++ {
		results, cfg = benchApproaches(b)
	}
	ps := results[experiments.ApproachPStore]
	b.ReportMetric(ps.AvgMachines, "pstore-avg-machines")
	printOnce(b, "fig9", func() {
		fmt.Printf("\nFig 9 — elasticity approaches over a replayed B2W day (peak=%d, small=%d nodes):\n",
			cfg.PeakNodes, cfg.SmallNodes)
		for _, a := range []experiments.Approach{
			experiments.ApproachStaticPeak, experiments.ApproachStaticSmall,
			experiments.ApproachReactive, experiments.ApproachPStore,
		} {
			r := results[a]
			fmt.Printf("  %-13s requests %6d  windows %3d  machine curve: ", r.Approach, r.Requests, len(r.Windows))
			for _, m := range r.Machines {
				fmt.Printf("%d ", m.Machines)
			}
			fmt.Println()
		}
	})
}

func BenchmarkTable02SLAViolations(b *testing.B) {
	var results map[experiments.Approach]*experiments.ApproachResult
	for i := 0; i < b.N; i++ {
		results, _ = benchApproaches(b)
	}
	re := results[experiments.ApproachReactive]
	ps := results[experiments.ApproachPStore]
	b.ReportMetric(float64(ps.SLA.P99Violations), "pstore-p99-violations")
	b.ReportMetric(float64(re.SLA.P99Violations), "reactive-p99-violations")
	printOnce(b, "table2", func() {
		fmt.Printf("\nTable 2 — SLA violations and machines (paper: reactive ≫ P-Store; P-Store ≈ half of static-peak machines):\n")
		fmt.Printf("  %-13s %6s %6s %6s %14s\n", "approach", "p50", "p95", "p99", "avg machines")
		for _, a := range []experiments.Approach{
			experiments.ApproachStaticPeak, experiments.ApproachStaticSmall,
			experiments.ApproachReactive, experiments.ApproachPStore,
		} {
			r := results[a]
			fmt.Printf("  %-13s %6d %6d %6d %14.2f\n", r.Approach,
				r.SLA.P50Violations, r.SLA.P95Violations, r.SLA.P99Violations, r.AvgMachines)
		}
	})
}

func BenchmarkFig10LatencyCDF(b *testing.B) {
	var results map[experiments.Approach]*experiments.ApproachResult
	for i := 0; i < b.N; i++ {
		results, _ = benchApproaches(b)
	}
	ps := results[experiments.ApproachPStore]
	tail := metrics.TopFractionCDF(metrics.PercentileSeries(ps.Windows, 99), 0.01)
	if len(tail) > 0 {
		b.ReportMetric(tail[len(tail)-1].Value, "pstore-worst-p99-ms")
	}
	printOnce(b, "fig10", func() {
		fmt.Printf("\nFig 10 — top-1%% tails of per-window percentile latencies (ms):\n")
		for _, a := range []experiments.Approach{
			experiments.ApproachStaticPeak, experiments.ApproachStaticSmall,
			experiments.ApproachReactive, experiments.ApproachPStore,
		} {
			r := results[a]
			fmt.Printf("  %-13s", r.Approach)
			for _, pct := range []int{50, 95, 99} {
				cdf := metrics.TopFractionCDF(metrics.PercentileSeries(r.Windows, pct), 0.01)
				if len(cdf) == 0 {
					fmt.Printf("  p%d: n/a", pct)
					continue
				}
				fmt.Printf("  p%d: %.0f..%.0f", pct, cdf[0].Value, cdf[len(cdf)-1].Value)
			}
			fmt.Println()
		}
	})
}

// ---------------------------------------------------------------------------
// Fig 11: unexpected spike, migration fallback at rate R vs R×8 (paper:
// fewer total violation-seconds at R×8).

func BenchmarkFig11SpikeRates(b *testing.B) {
	var runs []experiments.SpikeRun
	for i := 0; i < b.N; i++ {
		setup := benchSetup(b)
		cfg, err := experiments.BuildApproachesConfig(setup, 4, 1, experiments.PredictorOracle, 17)
		if err != nil {
			b.Fatal(err)
		}
		// Rate R paced slowly enough that catching up with the spike takes
		// tens of slots; R×8 recovers in a few.
		cfg.Migration = migration.Options{BucketsPerChunk: 1, ChunkInterval: 25 * time.Millisecond}
		sc := cfg.Scale
		runs, err = experiments.SpikeStudy(*cfg, cfg.ReplayStart+sc.SlotsPerDay/3, sc.SlotsPerDay/6, 3.5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runs[0].SLA.P99Violations), "rateR-p99-violations")
	b.ReportMetric(float64(runs[1].SLA.P99Violations), "rate8R-p99-violations")
	printOnce(b, "fig11", func() {
		fmt.Printf("\nFig 11 — unexpected 2.5× spike, reactive fallback (paper: 16/101/143 at R vs 22/44/51 at R×8):\n")
		for _, r := range runs {
			fmt.Printf("  %-9s p50 %3d  p95 %3d  p99 %3d violation windows, avg machines %.2f\n",
				r.Label, r.SLA.P50Violations, r.SLA.P95Violations, r.SLA.P99Violations, r.AvgMachines)
		}
	})
}

// ---------------------------------------------------------------------------
// Fig 12: capacity-cost trade-off over a multi-week simulation.

func BenchmarkFig12CapacityCost(b *testing.B) {
	cfg := experiments.SimStudyConfig{
		Days: 24, TrainDays: 9, BlackFridayDay: 20,
		QFactors: []float64{0.8, 1.0, 1.25}, Seed: 5,
	}
	var res *experiments.SimStudyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.CapacityCostStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range res.Points {
		if p.Strategy == "P-Store SPAR" && p.QFactor == 1.0 {
			b.ReportMetric(p.InsufficientFrac*100, "pstore-insufficient-%")
		}
	}
	printOnce(b, "fig12", func() {
		fmt.Printf("\nFig 12 — capacity-cost plane (%d simulated days incl. Black Friday):\n", cfg.Days-cfg.TrainDays)
		fmt.Printf("  %-16s %8s %12s %12s %7s\n", "strategy", "Qfactor", "cost(norm)", "insuff %", "moves")
		for _, p := range res.Points {
			fmt.Printf("  %-16s %8.2f %12.3f %12.3f %7d\n",
				p.Strategy, p.QFactor, p.NormalizedCost, p.InsufficientFrac*100, p.Moves)
		}
	})
}

// ---------------------------------------------------------------------------
// Fig 13: effective-capacity trajectories through Black Friday.

func BenchmarkFig13BlackFriday(b *testing.B) {
	cfg := experiments.SimStudyConfig{
		Days: 24, TrainDays: 9, BlackFridayDay: 20,
		QFactors: []float64{1.0}, Seed: 5,
	}
	var states map[string][]sim.SlotState
	var load *timeseries.Series
	var err error
	for i := 0; i < b.N; i++ {
		states, load, err = experiments.TrajectoryStudy(cfg, 19*288, 3*288)
		if err != nil {
			b.Fatal(err)
		}
	}
	insufficient := func(name string) (n int) {
		for i, st := range states[name] {
			if load.At(i) > st.EffCap {
				n++
			}
		}
		return
	}
	b.ReportMetric(float64(insufficient("P-Store SPAR")), "pstore-insufficient-slots")
	b.ReportMetric(float64(insufficient("Simple")), "simple-insufficient-slots")
	printOnce(b, "fig13", func() {
		fmt.Printf("\nFig 13 — Black Friday window, insufficient slots per strategy (paper: Simple breaks, P-Store holds):\n")
		names := make([]string, 0, len(states))
		for name := range states {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-14s %4d insufficient of %d slots\n", name, insufficient(name), load.Len())
		}
	})
}

// ---------------------------------------------------------------------------
// §8.1: workload uniformity over 30 partitions.

func BenchmarkSkewAnalysis(b *testing.B) {
	var res *experiments.SkewResult
	for i := 0; i < b.N; i++ {
		res = experiments.SkewAnalysis(30, 300000, 300000)
	}
	b.ReportMetric(res.AccessStdOverAvg*100, "access-std-%")
	printOnce(b, "skew", func() {
		fmt.Printf("\n§8.1 — uniformity over 30 partitions (paper: accesses max +10.15%% σ 2.62%%; data max +0.185%% σ 0.099%%):\n")
		fmt.Printf("  accesses: max over avg %+.2f%%, σ %.2f%%\n", res.AccessMaxOverAvg*100, res.AccessStdOverAvg*100)
		fmt.Printf("  data:     max over avg %+.2f%%, σ %.2f%%\n", res.DataMaxOverAvg*100, res.DataStdOverAvg*100)
	})
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4).

// BenchmarkAblationEffCap compares the DP plan (which respects the
// effective-capacity model, Eq. 7) against a naive plan that assumes
// capacity jumps instantly once a move completes: the naive plan times its
// scale-out so the move merely ends before cap(B) is exceeded, and reality
// (Eq. 7) underprovisions it during the move.
func BenchmarkAblationEffCap(b *testing.B) {
	p := plan.Params{Q: 100, QHat: 125, D: 30, PartitionsPerNode: 1}
	// Flat 1.5×Q, then a steep ramp to 9×Q between slots 10 and 25.
	load := make([]float64, 31)
	for i := range load {
		switch {
		case i < 10:
			load[i] = 150
		case i < 25:
			load[i] = 150 + 750*float64(i-10)/15
		default:
			load[i] = 900
		}
	}
	countUnder := func(moves []plan.Move) int {
		under := 0
		for _, m := range moves {
			slots := m.End - m.Start
			for j := 1; j <= slots; j++ {
				f := float64(j) / float64(slots)
				if m.Start+j < len(load) && load[m.Start+j] > p.EffCap(m.From, m.To, f)+1e-9 {
					under++
				}
			}
		}
		return under
	}
	var dpUnder, naiveUnder int
	for i := 0; i < b.N; i++ {
		pl, err := plan.BestMoves(load, 2, p)
		if err != nil {
			b.Fatal(err)
		}
		dpUnder = countUnder(pl.Moves)

		// Naive plan: believe that allocated machines provide capacity
		// immediately, so the scale-out only starts when cap(B) is first
		// exceeded — under the real effective-capacity model (Eq. 7) the
		// system is underprovisioned while data is still in flight.
		target := p.RequiredMachines(load[len(load)-1])
		moveSlots := int(math.Ceil(p.MoveTime(2, target)))
		tStar := len(load) - 1
		for t, v := range load {
			if v > p.Cap(2) {
				tStar = t
				break
			}
		}
		naive := []plan.Move{{Start: tStar - 1, End: tStar - 1 + moveSlots, From: 2, To: target}}
		naiveUnder = countUnder(naive)
	}
	b.ReportMetric(float64(dpUnder), "dp-underprovisioned-slots")
	b.ReportMetric(float64(naiveUnder), "naive-underprovisioned-slots")
	printOnce(b, "ablation-effcap", func() {
		fmt.Printf("\nAblation — effective-capacity awareness: DP plan underprovisions %d slots, naive step-capacity plan %d\n",
			dpUnder, naiveUnder)
	})
}

// BenchmarkAblationScaleInConfirmations measures reconfiguration churn at 1
// vs 3 scale-in confirmations on a noisy load (the paper's §6 heuristic).
func BenchmarkAblationScaleInConfirmations(b *testing.B) {
	gen := workload.DefaultB2WConfig()
	gen.Days = 12
	gen.SlotsPerDay = 288
	gen.NoiseFrac = 0.10
	load := workload.GenerateB2W(gen)
	p := plan.Params{Q: gen.PeakLoad / 8, QHat: gen.PeakLoad / 8 * 0.8 / 0.65, D: 15.4, PartitionsPerNode: 6}
	oracle := predict.NewOracle(load)
	if err := oracle.Fit(nil); err != nil {
		b.Fatal(err)
	}
	view := load.Slice(0, load.Len()-20)
	moves := map[int]int{}
	for i := 0; i < b.N; i++ {
		for _, confirm := range []int{1, 3} {
			strat := &sim.PStore{Params: p, Predictor: oracle, Horizon: 18, Inflate: 1.0, Confirmations: confirm}
			res, err := sim.Run(view, 288, 2, strat, p, false)
			if err != nil {
				b.Fatal(err)
			}
			moves[confirm] = res.Moves
		}
	}
	b.ReportMetric(float64(moves[1]), "moves-1-vote")
	b.ReportMetric(float64(moves[3]), "moves-3-votes")
	printOnce(b, "ablation-votes", func() {
		fmt.Printf("\nAblation — scale-in confirmations: %d moves with 1 vote vs %d with 3 votes\n",
			moves[1], moves[3])
	})
}

// BenchmarkAblationMinCostPlanner compares the paper's fewest-final-machines
// Algorithm 1 against the min-cost extension.
func BenchmarkAblationMinCostPlanner(b *testing.B) {
	p := plan.Params{Q: 100, QHat: 125, D: 5, PartitionsPerNode: 1}
	load := []float64{232, 245, 317, 127, 234}
	var paper, minCost float64
	for i := 0; i < b.N; i++ {
		pl, err := plan.BestMoves(load, 3, p)
		if err != nil {
			b.Fatal(err)
		}
		plMin, err := plan.BestMovesMinCost(load, 3, p)
		if err != nil {
			b.Fatal(err)
		}
		paper, minCost = pl.Cost, plMin.Cost
	}
	b.ReportMetric(paper, "paper-cost")
	b.ReportMetric(minCost, "mincost-cost")
}

// ---------------------------------------------------------------------------
// Micro-benchmarks on the core data structures.

func BenchmarkPlannerBestMoves(b *testing.B) {
	p := plan.Params{Q: 100, QHat: 125, D: 15, PartitionsPerNode: 6}
	load := make([]float64, 37)
	for i := range load {
		load[i] = 600 + 500*math.Sin(2*math.Pi*float64(i)/36)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := plan.BestMoves(load, 7, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPARForecast(b *testing.B) {
	cfg := workload.DefaultB2WConfig()
	cfg.Days = 10
	cfg.SlotsPerDay = 288
	load := workload.GenerateB2W(cfg)
	spar := predict.NewSPAR(predict.SPARConfig{Period: 288, NPeriods: 7, MRecent: 30, MaxRows: 4000})
	if err := spar.Fit(load.Slice(0, 9*288)); err != nil {
		b.Fatal(err)
	}
	hist := load.Slice(0, load.Len()-40)
	// Warm the per-τ coefficient cache.
	if _, err := spar.Forecast(hist, 36); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spar.Forecast(hist, 36); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rounds := plan.Schedule(5, 23); len(rounds) == 0 {
			b.Fatal("empty schedule")
		}
	}
}
