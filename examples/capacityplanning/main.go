// Capacity planning: simulate provisioning strategies over weeks of retail
// load, including a Black Friday surge — the §8.3 study in miniature.
//
// The simulator uses the same migration-time and effective-capacity model
// as the live system (plan.Params) and measures each strategy's cost
// (machine-slots, Eq. 1) against the fraction of time it left the database
// underprovisioned.
//
// Run with: go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"

	"pstore/internal/plan"
	"pstore/internal/predict"
	"pstore/internal/sim"
	"pstore/internal/workload"
)

func main() {
	// Six weeks of synthetic B2W load at 5-minute slots, Black Friday in
	// week 6; SPAR trains on the first three weeks.
	gen := workload.DefaultB2WConfig()
	gen.Days = 42
	gen.SlotsPerDay = 288
	gen.BlackFridayDay = 38
	load := workload.GenerateB2W(gen)
	trainEnd := 21 * 288

	// Paper-like parameters: the diurnal peak needs ~9 machines at Q and a
	// full single-thread migration takes 77 minutes (15.4 five-minute
	// slots).
	params := plan.Params{
		Q:                 gen.PeakLoad / 9,
		QHat:              gen.PeakLoad / 9 * 0.8 / 0.65,
		D:                 77.0 / 5.0,
		PartitionsPerNode: 6,
	}
	horizon := 2*int(params.D)/params.PartitionsPerNode + 8

	spar := predict.NewSPAR(predict.SPARConfig{Period: 288, NPeriods: 7, MRecent: 30, MaxRows: 4000})
	if err := spar.Fit(load.Slice(0, trainEnd)); err != nil {
		log.Fatal(err)
	}
	oracle := predict.NewOracle(load)
	if err := oracle.Fit(nil); err != nil {
		log.Fatal(err)
	}

	view := load.Slice(0, load.Len()-horizon-1)
	peak := params.RequiredMachines(view.Max())
	typicalPeak := params.RequiredMachines(load.Slice(0, trainEnd).Max())
	n0 := params.RequiredMachines(view.At(trainEnd))

	strategies := []sim.Strategy{
		&sim.PStore{Params: params, Predictor: spar, Horizon: horizon, Inflate: 1.15, Label: "P-Store SPAR"},
		&sim.PStore{Params: params, Predictor: oracle, Horizon: horizon, Label: "P-Store Oracle"},
		&sim.Reactive{Params: params},
		sim.Simple{SlotsPerDay: 288, MorningSlot: 72, NightSlot: 276,
			DayMachines: typicalPeak, NightMachines: 2},
		sim.Static{Machines: peak},
		sim.Static{Machines: (peak + 1) / 2},
	}

	fmt.Printf("simulating %d days (%d slots) after training...\n\n", gen.Days-21, view.Len()-trainEnd)
	fmt.Printf("%-16s %14s %12s %14s %7s\n", "strategy", "cost (slots)", "insuff %", "avg machines", "moves")
	for _, s := range strategies {
		res, err := sim.Run(view, trainEnd, n0, s, params, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %14.0f %12.3f %14.2f %7d\n",
			res.Strategy, res.Cost, res.InsufficientFrac()*100, res.AvgMachines(), res.Moves)
	}
	fmt.Println("\nP-Store approaches the oracle's cost with near-zero underprovisioning;")
	fmt.Println("Simple breaks on Black Friday, Static either overpays or underprovisions.")
}
