// Quickstart: plan a day of reconfigurations with P-Store's dynamic
// program.
//
// Given a predicted load curve (here: a sinusoidal day with a 10× swing,
// like B2W's), the planner produces the cheapest sequence of moves that
// keeps effective capacity above demand — scaling out as late as possible
// before the morning ramp and back in at night.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"pstore/internal/plan"
)

func main() {
	// Model parameters, as discovered in §8.1 of the paper: each server
	// comfortably handles Q transactions per time slot (one slot = 10
	// minutes here), and migrating the whole database with a single thread
	// pair takes D slots.
	params := plan.Params{
		Q:                 285, // target txns/slot per server
		QHat:              350, // saturation txns/slot per server
		D:                 8,   // full-database single-thread move time, in slots
		PartitionsPerNode: 6,
	}

	// A predicted day at 10-minute granularity: trough 250 at 4am, peak
	// 2500 mid-afternoon.
	const slots = 144
	load := make([]float64, slots+1)
	for i := range load {
		frac := float64(i) / slots
		s := (1 - math.Cos(2*math.Pi*(frac-0.1875))) / 2
		load[i] = 250 + 2250*math.Pow(s, 1.3)
	}

	n0 := params.RequiredMachines(load[0]) // machines currently allocated
	p, err := plan.BestMoves(load, n0, params)
	if err != nil {
		log.Fatalf("planning failed: %v", err)
	}

	fmt.Printf("planned %d moves, total cost %.1f machine-slots, ending with %d machines\n\n",
		len(p.Moves), p.Cost, p.FinalNodes)
	fmt.Println("reconfigurations (holds omitted):")
	for _, m := range p.Moves {
		if m.IsNoop() {
			continue
		}
		dir := "scale-out"
		if m.To < m.From {
			dir = "scale-in"
		}
		fmt.Printf("  slot %3d–%3d: %s %d → %d machines (move time %.1f slots, eff-cap %0.f→%0.f txns/slot)\n",
			m.Start, m.End, dir, m.From, m.To,
			params.MoveTime(m.From, m.To), params.EffCap(m.From, m.To, 0), params.EffCap(m.From, m.To, 1))
	}

	// Compare with static peak provisioning.
	peak := 0.0
	for _, v := range load {
		if v > peak {
			peak = v
		}
	}
	staticMachines := params.RequiredMachines(peak)
	staticCost := float64(staticMachines * (slots + 1))
	fmt.Printf("\nstatic peak provisioning would use %d machines all day: %.0f machine-slots\n",
		staticMachines, staticCost)
	fmt.Printf("P-Store's plan costs %.1f machine-slots — %.0f%% of static\n",
		p.Cost, 100*p.Cost/staticCost)
}
