// Retail: run the full P-Store system end to end on a compressed day of
// online-retail traffic.
//
// An embedded multi-node cluster executes the B2W benchmark's stored
// procedures while the Predictive Controller measures load, forecasts it,
// plans with the dynamic program and live-migrates data ahead of the
// morning ramp. A trace "day" passes in a few seconds of wall time.
//
// Run with: go run ./examples/retail
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/cluster"
	"pstore/internal/controller"
	"pstore/internal/engine"
	"pstore/internal/metrics"
	"pstore/internal/migration"
	"pstore/internal/plan"
	"pstore/internal/predict"
	"pstore/internal/workload"
)

func main() {
	const (
		slotsPerDay  = 96
		slotWall     = 40 * time.Millisecond
		serviceTime  = 1200 * time.Microsecond
		partsPerNode = 2
	)

	// Per-node capacity on this substrate, per the paper's 65%/80% rules.
	satPerSec := 0.95 * float64(partsPerNode) * float64(time.Second) / float64(serviceTime)
	params := plan.Params{
		Q:                 0.65 * satPerSec * slotWall.Seconds(),
		QHat:              0.80 * satPerSec * slotWall.Seconds(),
		D:                 8,
		PartitionsPerNode: partsPerNode,
	}

	// Synthesize 6 days of diurnal retail load in transactions/slot: 5 for
	// the predictor, 1 to replay.
	gen := workload.DefaultB2WConfig()
	gen.Days = 6
	gen.SlotsPerDay = slotsPerDay
	gen.PeakLoad = 4.5 * params.Q
	gen.TroughLoad = gen.PeakLoad / 10
	trace := workload.GenerateB2W(gen)
	replayStart := 5 * slotsPerDay

	reg := engine.NewRegistry()
	b2w.Register(reg)
	c, err := cluster.New(cluster.Config{
		InitialNodes:      params.RequiredMachines(trace.At(replayStart)),
		PartitionsPerNode: partsPerNode,
		NBuckets:          256,
		Tables:            b2w.Tables,
		Registry:          reg,
		Engine:            engine.Config{ServiceTime: serviceTime, MigrationRowCost: 40 * time.Microsecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	driver := b2w.NewDriver(b2w.DriverConfig{StockItems: 800, CartPool: 800, Seed: 7})
	if err := driver.Preload(c, 800); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up: %d node(s), %d rows preloaded\n", c.NumNodes(), mustRows(c))

	// SPAR fitted on the five history days.
	spar := predict.NewSPAR(predict.SPARConfig{Period: slotsPerDay, NPeriods: 3, MRecent: 8, MaxRows: 4000})
	if err := spar.Fit(trace.Slice(0, replayStart)); err != nil {
		log.Fatal(err)
	}

	// Normalize each measurement by the wall time since the previous one,
	// so a delayed controller tick does not read as a load burst.
	prev := 0
	prevAt := time.Now()
	measure := func() float64 {
		now := time.Now()
		total := c.OfferedLoad().Total()
		delta := float64(total - prev)
		elapsed := now.Sub(prevAt)
		prev = total
		prevAt = now
		if elapsed > slotWall {
			delta *= float64(slotWall) / float64(elapsed)
		}
		return delta
	}
	ctl, err := controller.New(c, controller.Config{
		Params:               params,
		Predictor:            spar,
		History:              trace.Slice(0, replayStart),
		SlotWall:             slotWall,
		Horizon:              12,
		Inflate:              1.15,
		ScaleInConfirmations: 3,
		Migration:            migration.Options{BucketsPerChunk: 2, ChunkInterval: 2 * time.Millisecond},
		MeasureLoad:          measure,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		if err := ctl.Run(ctx); err != nil && ctx.Err() == nil {
			log.Printf("controller stopped: %v", err)
		}
	}()

	fmt.Printf("replaying one retail day (%d slots × %v)...\n", slotsPerDay, slotWall)
	var calls sync.WaitGroup
	stats, err := workload.ReplayBatched(ctx, trace.Slice(replayStart, trace.Len()),
		workload.ReplayConfig{SlotWall: slotWall, LoadScale: 1, MaxLag: slotWall, Batch: 16},
		func(_, n int) {
			calls.Add(n)
			for j := 0; j < n; j++ {
				go func() {
					defer calls.Done()
					c.Call(driver.Next())
				}()
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	cancel()
	ctlWG.Wait()
	_ = ctl.WaitIdle()
	calls.Wait()

	fmt.Printf("\nreplayed %d transactions in %v\n", stats.Requests, stats.Elapsed.Round(time.Millisecond))
	fmt.Println("\ncontroller decisions:")
	for _, ev := range ctl.Events() {
		if ev.Kind == "hold" {
			continue
		}
		fmt.Printf("  slot %3d: %-10s %d → %d machines (measured load %.0f/slot) %s\n",
			ev.Slot, ev.Kind, ev.From, ev.To, ev.Load, ev.Note)
	}
	rep := metrics.SLAViolations(c.Latencies().Windows(), 250*time.Millisecond)
	fmt.Printf("\nSLA (>250ms): p50 %d, p95 %d, p99 %d violation windows of %d\n",
		rep.P50Violations, rep.P95Violations, rep.P99Violations, rep.Windows)
	fmt.Printf("average machines allocated: %.2f (static peak would need %d)\n",
		c.Allocation().Average(time.Now()), params.RequiredMachines(trace.Max()))
}

func mustRows(c *cluster.Cluster) int {
	n, err := c.TotalRows()
	if err != nil {
		log.Fatal(err)
	}
	return n
}
