// Forecasting: compare P-Store's load predictors on workloads with
// different predictability, as in §5 of the paper.
//
// SPAR (Sparse Periodic Auto-Regression) combines a periodic component
// (load at this time of day over the previous days) with a recent-offset
// component (how far the last half hour deviates from the norm). This
// example fits SPAR, ARMA, AR and a seasonal-naive baseline on synthetic
// Wikipedia-style traces and reports mean relative error per horizon.
//
// Run with: go run ./examples/forecasting
package main

import (
	"fmt"
	"log"

	"pstore/internal/predict"
	"pstore/internal/workload"
)

func main() {
	for _, lang := range []struct {
		name string
		cfg  workload.WikiConfig
	}{
		{"English Wikipedia (smooth, highly periodic)", workload.DefaultWikiEnglish()},
		{"German Wikipedia (noisier, less predictable)", workload.DefaultWikiGerman()},
	} {
		cfg := lang.cfg
		cfg.Days = 35 // 4 training weeks + 1 evaluation week
		trace := workload.GenerateWiki(cfg)
		testStart := 28 * 24

		models := []predict.Model{
			predict.NewSPAR(predict.SPARConfig{Period: 24, NPeriods: 7, MRecent: 12, MaxRows: 6000}),
			predict.NewARMA(24, 6),
			predict.NewAR(24),
			predict.NewHoltWinters(24),
			predict.NewSeasonalNaive(24),
		}
		fmt.Printf("%s\n", lang.name)
		fmt.Printf("  %-14s", "model")
		taus := []int{1, 2, 4, 6}
		for _, tau := range taus {
			fmt.Printf("  τ=%dh  ", tau)
		}
		fmt.Println()
		for _, m := range models {
			if err := m.Fit(trace.Slice(0, testStart)); err != nil {
				log.Fatalf("fitting %s: %v", m.Name(), err)
			}
			fmt.Printf("  %-14s", m.Name())
			for _, tau := range taus {
				ev, err := predict.EvaluateHorizon(m, trace, testStart, tau, 1)
				if err != nil {
					log.Fatalf("evaluating %s: %v", m.Name(), err)
				}
				fmt.Printf("  %5.1f%%", ev.MRE*100)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("SPAR's periodic+offset structure wins on both, and the gap to the")
	fmt.Println("baselines widens on the less predictable trace — the paper's §5 result.")
}
