#!/usr/bin/env bash
# vet.sh — the repo's full static gate: gofmt, go vet, then pstore-vet
# (cmd/pstore-vet), the project's own invariant analyzer suite (executor
# never-block, encoder determinism, seed discipline, lock discipline,
# whole-program lock order, pool hygiene — DESIGN.md §10). Exits nonzero on
# any formatting drift, vet complaint, pstore-vet diagnostic, or stale
# //pstore:ignore suppression, so CI and pre-commit hooks can gate on it as
# one step.
#
# pstore-vet runs under a 60-second wall-clock budget: the lockorder pass
# builds a whole-program call graph, and without a hard ceiling its cost
# could rot silently as the module grows until CI is minutes slower with
# nobody having decided that. (Current full-tree runtime is ~3s; the budget
# is headroom, not a target.)
#
# Usage: scripts/vet.sh [packages...]   (default ./...)
set -euo pipefail
cd "$(dirname "$0")/.."

PKGS=("${@:-./...}")
VET_BUDGET_SECS=60

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "files need gofmt:" >&2
  echo "$out" >&2
  exit 1
fi

echo "== go vet"
go vet "${PKGS[@]}"

# Build the analyzer binary outside the timed window so the budget measures
# analysis, not compilation of the tool itself.
echo "== pstore-vet (budget ${VET_BUDGET_SECS}s)"
BIN=$(mktemp -d)/pstore-vet
trap 'rm -rf "$(dirname "$BIN")"' EXIT
go build -o "$BIN" ./cmd/pstore-vet

start=$SECONDS
timeout "${VET_BUDGET_SECS}s" "$BIN" -stale "${PKGS[@]}" || {
  rc=$?
  if [ "$rc" -eq 124 ]; then
    echo "pstore-vet exceeded the ${VET_BUDGET_SECS}s wall-clock budget" >&2
  fi
  exit "$rc"
}
elapsed=$((SECONDS - start))
echo "pstore-vet completed in ${elapsed}s (budget ${VET_BUDGET_SECS}s)"

echo "ok"
