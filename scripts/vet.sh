#!/usr/bin/env bash
# vet.sh — the repo's full static gate: gofmt, go vet, then pstore-vet
# (cmd/pstore-vet), the project's own invariant analyzer suite (executor
# never-block, encoder determinism, seed discipline, lock discipline, pool
# hygiene — DESIGN.md §10). Exits nonzero on any formatting drift, vet
# complaint, or pstore-vet diagnostic, so CI and pre-commit hooks can gate
# on it as one step.
#
# Usage: scripts/vet.sh [packages...]   (default ./...)
set -euo pipefail
cd "$(dirname "$0")/.."

PKGS=("${@:-./...}")

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "files need gofmt:" >&2
  echo "$out" >&2
  exit 1
fi

echo "== go vet"
go vet "${PKGS[@]}"

echo "== pstore-vet"
go run ./cmd/pstore-vet "${PKGS[@]}"

echo "ok"
