#!/usr/bin/env bash
# bench.sh — run the hot-path microbenchmarks with allocation accounting
# and record the results as BENCH_hotpath.json next to this script's repo
# root, plus BENCH_chaos.json for the fault-injected request path. These
# are the benchmarks the wire-protocol/batching work is judged by:
# BenchmarkServerCall must stay ≥2× the old gob baseline (28600 ns/op,
# 54 allocs/op) and BenchmarkServerPing must stay allocation-free.
# BenchmarkServerCallChaos prices the robustness layer: closed-loop
# throughput/latency with 1% of response writes dropped and the client's
# deadline+retry machinery absorbing the loss.
#
# Usage: scripts/bench.sh [benchtime]   (default 2s; CI smoke uses 100x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Convert `go test -bench` output on stdin into a JSON array:
#   BenchmarkServerCall-8  100  12345 ns/op  819 B/op  9 allocs/op
bench_to_json() {
  awk '
    BEGIN { print "[" ; first = 1 }
    /^Benchmark/ {
      name = $1; iters = $2; ns = $3
      bytes = "null"; allocs = "null"; retries = "null"; drops = "null"
      for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes   = $(i-1)
        if ($i == "allocs/op") allocs  = $(i-1)
        if ($i == "retries")   retries = $(i-1)
        if ($i == "drops")     drops   = $(i-1)
      }
      if (!first) print ","
      first = 0
      printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", name, iters, ns, bytes, allocs
      if (retries != "null") printf ", \"retries\": %s, \"drops\": %s", retries, drops
      printf "}"
    }
    END { print "\n]" }
  '
}

go test ./internal/server/ ./internal/hashing/ ./internal/durability/ \
  -run 'xxx' -bench 'BenchmarkServerCall$|BenchmarkServerPing|BenchmarkMurmur2|BenchmarkDurabilityOverhead' \
  -benchmem -benchtime "$BENCHTIME" -count 1 | tee "$TMP"
bench_to_json < "$TMP" > BENCH_hotpath.json

go test ./internal/server/ \
  -run 'xxx' -bench 'BenchmarkServerCallChaos' \
  -benchmem -benchtime "$BENCHTIME" -count 1 | tee "$TMP"
bench_to_json < "$TMP" > BENCH_chaos.json

echo "wrote BENCH_hotpath.json:"
cat BENCH_hotpath.json
echo "wrote BENCH_chaos.json:"
cat BENCH_chaos.json
