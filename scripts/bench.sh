#!/usr/bin/env bash
# bench.sh — run the hot-path microbenchmarks with allocation accounting
# and record the results as BENCH_hotpath.json next to this script's repo
# root, plus BENCH_chaos.json for the fault-injected request path. These
# are the benchmarks the wire-protocol/batching work is judged by:
# BenchmarkServerCall must stay ≥2× the old gob baseline (28600 ns/op,
# 54 allocs/op) and BenchmarkServerPing must stay allocation-free.
# BenchmarkServerCallChaos prices the robustness layer: closed-loop
# throughput/latency with 1% of response writes dropped and the client's
# deadline+retry machinery absorbing the loss. BENCH_migration.json records
# BenchmarkMigrationStall: the p99 foreground stall a live bucket move
# inflicts, stop-and-copy vs pre-copy (the pre-copy work is judged by
# p99_stall_ns ≥5× lower at move_ns ≤1.5×). BenchmarkLargeTable records the
# GC story the arena layout is judged by — max-gc-pause-ns and heap-objects
# at 1M and 10M resident rows — into BENCH_hotpath.json alongside the
# hot-path numbers. A regression gate then re-measures BenchmarkServerCall
# at a fixed iteration count and fails the script if it came out >25%
# slower than the number recorded in the checked-in BENCH_hotpath.json.
#
# Usage: scripts/bench.sh [benchtime]   (default 2s; CI smoke uses 1x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Convert `go test -bench` output on stdin into a JSON array:
#   BenchmarkServerCall-8  100  12345 ns/op  819 B/op  9 allocs/op
bench_to_json() {
  awk '
    BEGIN { print "[" ; first = 1 }
    /^Benchmark/ {
      name = $1; iters = $2; ns = $3
      bytes = "null"; allocs = "null"; retries = "null"; drops = "null"
      p99stall = "null"; movens = "null"; gcpause = "null"; heapobjs = "null"
      for (i = 4; i <= NF; i++) {
        if ($i == "B/op")            bytes    = $(i-1)
        if ($i == "allocs/op")       allocs   = $(i-1)
        if ($i == "retries")         retries  = $(i-1)
        if ($i == "drops")           drops    = $(i-1)
        if ($i == "p99stall_ns")     p99stall = $(i-1)
        if ($i == "move_ns")         movens   = $(i-1)
        if ($i == "max-gc-pause-ns") gcpause  = $(i-1)
        if ($i == "heap-objects")    heapobjs = $(i-1)
      }
      if (!first) print ","
      first = 0
      printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", name, iters, ns, bytes, allocs
      if (retries != "null") printf ", \"retries\": %s, \"drops\": %s", retries, drops
      if (p99stall != "null") printf ", \"p99_stall_ns\": %s", p99stall
      if (movens != "null") printf ", \"move_ns\": %s", movens
      if (gcpause != "null") printf ", \"max_gc_pause_ns\": %s", gcpause
      if (heapobjs != "null") printf ", \"heap_objects\": %s", heapobjs
      printf "}"
    }
    END { print "\n]" }
  '
}

# Regression gate: remember the checked-in BenchmarkServerCall number before
# this run overwrites it. The gate re-measures at a fixed iteration count
# (stable even when the smoke run passes "1x") and fails the script if the
# hot path got more than 25% slower than the recorded baseline.
OLD_CALL_NS=""
if [ -f BENCH_hotpath.json ]; then
  OLD_CALL_NS="$(sed -n 's/.*"name": "BenchmarkServerCall[-0-9]*".*"ns_per_op": \([0-9.]*\).*/\1/p' BENCH_hotpath.json | head -1)"
fi

go test ./internal/server/ ./internal/hashing/ ./internal/durability/ ./internal/storage/ \
  -run 'xxx' -bench 'BenchmarkServerCall$|BenchmarkServerPing|BenchmarkMurmur2|BenchmarkDurabilityOverhead|BenchmarkLargeTable' \
  -benchmem -benchtime "$BENCHTIME" -count 1 | tee "$TMP"
bench_to_json < "$TMP" > BENCH_hotpath.json

if [ -n "$OLD_CALL_NS" ]; then
  go test ./internal/server/ -run 'xxx' -bench 'BenchmarkServerCall$' \
    -benchtime 5000x -count 1 | tee "$TMP"
  NEW_CALL_NS="$(awk '$1 ~ /^BenchmarkServerCall(-[0-9]+)?$/ { print $3; exit }' "$TMP")"
  awk -v old="$OLD_CALL_NS" -v new="$NEW_CALL_NS" 'BEGIN {
    if (old + 0 > 0 && new + 0 > old * 1.25) {
      printf "bench gate: BenchmarkServerCall regressed: %s ns/op vs recorded %s ns/op (limit +25%%)\n", new, old
      exit 1
    }
    printf "bench gate: BenchmarkServerCall %s ns/op vs recorded %s ns/op (limit +25%%): ok\n", new, old
  }'
fi

go test ./internal/server/ \
  -run 'xxx' -bench 'BenchmarkServerCallChaos' \
  -benchmem -benchtime "$BENCHTIME" -count 1 | tee "$TMP"
bench_to_json < "$TMP" > BENCH_chaos.json

# Replication: BenchmarkReplicatedCall prices k-safety on the write path
# (k=0 vs k=1 — the k=1 run ships every command to a synchronous standby and
# waits for its ack); BenchmarkReplicaRead is session-consistent read
# throughput served from standbys. Acceptance: k=1 write overhead stays
# small relative to the k=0 protocol round trip. The checked-in k=1 and
# k=1/durable numbers are baselines for a regression gate below, mirroring
# the BenchmarkServerCall gate: the batched replication pipeline must not
# quietly lose its amortization.
OLD_K1_NS=""
OLD_K1D_NS=""
if [ -f BENCH_replication.json ]; then
  OLD_K1_NS="$(sed -n 's/.*"name": "BenchmarkReplicatedCall\/k=1[-0-9]*".*"ns_per_op": \([0-9.]*\).*/\1/p' BENCH_replication.json | head -1)"
  OLD_K1D_NS="$(sed -n 's/.*"name": "BenchmarkReplicatedCall\/k=1\/durable[-0-9]*".*"ns_per_op": \([0-9.]*\).*/\1/p' BENCH_replication.json | head -1)"
fi

go test ./internal/server/ \
  -run 'xxx' -bench 'BenchmarkReplicatedCall|BenchmarkReplicaRead' \
  -benchmem -benchtime "$BENCHTIME" -count 1 | tee "$TMP"
bench_to_json < "$TMP" > BENCH_replication.json

if [ -n "$OLD_K1_NS" ] || [ -n "$OLD_K1D_NS" ]; then
  go test ./internal/server/ -run 'xxx' -bench 'BenchmarkReplicatedCall/k=1' \
    -benchtime 5000x -count 1 | tee "$TMP"
  NEW_K1_NS="$(awk '$1 ~ /^BenchmarkReplicatedCall\/k=1(-[0-9]+)?$/ { print $3; exit }' "$TMP")"
  NEW_K1D_NS="$(awk '$1 ~ /^BenchmarkReplicatedCall\/k=1\/durable(-[0-9]+)?$/ { print $3; exit }' "$TMP")"
  gate_repl() {
    local label="$1" old="$2" new="$3"
    [ -n "$old" ] && [ -n "$new" ] || return 0
    awk -v old="$old" -v new="$new" -v label="$label" 'BEGIN {
      if (old + 0 > 0 && new + 0 > old * 1.25) {
        printf "bench gate: %s regressed: %s ns/op vs recorded %s ns/op (limit +25%%)\n", label, new, old
        exit 1
      }
      printf "bench gate: %s %s ns/op vs recorded %s ns/op (limit +25%%): ok\n", label, new, old
    }'
  }
  gate_repl "BenchmarkReplicatedCall/k=1" "$OLD_K1_NS" "$NEW_K1_NS"
  gate_repl "BenchmarkReplicatedCall/k=1/durable" "$OLD_K1D_NS" "$NEW_K1D_NS"
fi

# Live-migration stall: p99 foreground latency while a hot bucket moves,
# legacy stop-and-copy vs the pre-copy/delta-drain default. Acceptance:
# precopy p99_stall_ns ≤ 1/5 of stopandcopy's, move_ns ≤ 1.5×. Each
# iteration is one full bucket move (~60-80ms), so cap benchtime at 10x.
MIG_BENCHTIME="$BENCHTIME"
case "$MIG_BENCHTIME" in
  *s) MIG_BENCHTIME="10x" ;;
esac
go test ./internal/migration/ \
  -run 'xxx' -bench 'BenchmarkMigrationStall' \
  -benchtime "$MIG_BENCHTIME" -count 1 | tee "$TMP"
bench_to_json < "$TMP" > BENCH_migration.json

echo "wrote BENCH_hotpath.json:"
cat BENCH_hotpath.json
echo "wrote BENCH_chaos.json:"
cat BENCH_chaos.json
echo "wrote BENCH_migration.json:"
cat BENCH_migration.json
echo "wrote BENCH_replication.json:"
cat BENCH_replication.json
