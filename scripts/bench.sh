#!/usr/bin/env bash
# bench.sh — run the hot-path microbenchmarks with allocation accounting
# and record the results as BENCH_hotpath.json next to this script's repo
# root. These are the benchmarks the wire-protocol/batching work is judged
# by: BenchmarkServerCall must stay ≥2× the old gob baseline (28600 ns/op,
# 54 allocs/op) and BenchmarkServerPing must stay allocation-free.
#
# Usage: scripts/bench.sh [benchtime]   (default 2s; CI smoke uses 100x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT="BENCH_hotpath.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test ./internal/server/ ./internal/hashing/ ./internal/durability/ \
  -run 'xxx' -bench 'BenchmarkServerCall|BenchmarkServerPing|BenchmarkMurmur2|BenchmarkDurabilityOverhead' \
  -benchmem -benchtime "$BENCHTIME" -count 1 | tee "$TMP"

# Convert `go test -bench` lines into a JSON array:
#   BenchmarkServerCall-8  100  12345 ns/op  819 B/op  9 allocs/op
awk '
  BEGIN { print "[" ; first = 1 }
  /^Benchmark/ {
    name = $1; iters = $2; ns = $3
    bytes = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
      if ($i == "B/op")      bytes  = $(i-1)
      if ($i == "allocs/op") allocs = $(i-1)
    }
    if (!first) print ","
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, iters, ns, bytes, allocs
  }
  END { print "\n]" }
' "$TMP" > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
