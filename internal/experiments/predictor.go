package experiments

import (
	"fmt"

	"pstore/internal/predict"
	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

// PredictorPoint is one (τ, MRE) measurement of Figs 5b/6b.
type PredictorPoint struct {
	Model string
	Tau   int // forecast horizon, in slots
	MRE   float64
}

// PredictorStudyResult bundles a workload's accuracy sweep plus one
// forecast-vs-actual curve for plotting (Figs 5a/6a).
type PredictorStudyResult struct {
	Workload string
	Points   []PredictorPoint
	// CurveTau is the horizon of the plotted forecast curve.
	CurveTau               int
	CurvePred, CurveActual []float64
}

// SPARStudyB2W reproduces Fig 5: SPAR trained on trainDays of synthetic
// B2W load at 1-minute slots, evaluated over the following day(s) at the
// given τ values (minutes). The paper reports ≈10.4% MRE at τ=60 min,
// decaying gracefully with τ.
func SPARStudyB2W(trainDays, testDays int, taus []int, evalStride int) (*PredictorStudyResult, error) {
	cfg := workload.DefaultB2WConfig()
	cfg.Days = trainDays + testDays
	full := workload.GenerateB2W(cfg)
	sparCfg := predict.DefaultSPARConfig(cfg.SlotsPerDay)
	sparCfg.MaxRows = 6000
	m := predict.NewSPAR(sparCfg)
	testStart := trainDays * cfg.SlotsPerDay
	if err := m.Fit(full.Slice(0, testStart)); err != nil {
		return nil, err
	}
	return runPredictorStudy("B2W", m, full, testStart, taus, evalStride, 60)
}

// SPARStudyWikipedia reproduces Fig 6 for one language edition: SPAR on
// hourly page views, τ in hours. english selects the smoother EN trace,
// otherwise the noisier DE trace.
func SPARStudyWikipedia(english bool, trainDays, testDays int, taus []int, evalStride int) (*PredictorStudyResult, error) {
	cfg := workload.DefaultWikiEnglish()
	name := "Wikipedia-EN"
	if !english {
		cfg = workload.DefaultWikiGerman()
		name = "Wikipedia-DE"
	}
	cfg.Days = trainDays + testDays
	full := workload.GenerateWiki(cfg)
	sparCfg := predict.SPARConfig{Period: 24, NPeriods: 7, MRecent: 12, MaxRows: 6000}
	m := predict.NewSPAR(sparCfg)
	testStart := trainDays * 24
	if err := m.Fit(full.Slice(0, testStart)); err != nil {
		return nil, err
	}
	return runPredictorStudy(name, m, full, testStart, taus, evalStride, 1)
}

func runPredictorStudy(name string, m predict.Model, full *timeseries.Series, testStart int, taus []int, stride, curveTau int) (*PredictorStudyResult, error) {
	res := &PredictorStudyResult{Workload: name, CurveTau: curveTau}
	for _, tau := range taus {
		ev, err := predict.EvaluateHorizon(m, full, testStart, tau, stride)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s τ=%d: %w", name, tau, err)
		}
		res.Points = append(res.Points, PredictorPoint{Model: m.Name(), Tau: tau, MRE: ev.MRE})
	}
	pred, actual, err := predict.ForecastCurve(m, full, testStart, curveTau, stride)
	if err != nil {
		return nil, err
	}
	res.CurvePred, res.CurveActual = pred, actual
	return res, nil
}

// ModelComparison reproduces the §5 comparison: SPAR vs ARMA vs AR MRE at
// one horizon on the B2W trace (paper: 10.4%, 12.2%, 12.5% at τ=60 min).
func ModelComparison(trainDays, testDays, tau, evalStride int) ([]PredictorPoint, error) {
	cfg := workload.DefaultB2WConfig()
	cfg.Days = trainDays + testDays
	full := workload.GenerateB2W(cfg)
	testStart := trainDays * cfg.SlotsPerDay

	sparCfg := predict.DefaultSPARConfig(cfg.SlotsPerDay)
	sparCfg.MaxRows = 6000
	models := []predict.Model{
		predict.NewSPAR(sparCfg),
		predict.NewARMA(30, 10),
		predict.NewAR(30),
		predict.NewHoltWinters(cfg.SlotsPerDay),
		predict.NewSeasonalNaive(cfg.SlotsPerDay),
	}
	var out []PredictorPoint
	for _, m := range models {
		if err := m.Fit(full.Slice(0, testStart)); err != nil {
			return nil, fmt.Errorf("experiments: fitting %s: %w", m.Name(), err)
		}
		ev, err := predict.EvaluateHorizon(m, full, testStart, tau, evalStride)
		if err != nil {
			return nil, fmt.Errorf("experiments: evaluating %s: %w", m.Name(), err)
		}
		out = append(out, PredictorPoint{Model: m.Name(), Tau: tau, MRE: ev.MRE})
	}
	return out, nil
}
