package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pstore/internal/controller"
	"pstore/internal/metrics"
	"pstore/internal/migration"
	"pstore/internal/plan"
	"pstore/internal/predict"
	"pstore/internal/reactive"
	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

// Approach identifies one elasticity strategy of Fig 9.
type Approach string

// The four approaches compared in §8.2.
const (
	ApproachStaticPeak  Approach = "static-peak"  // Fig 9a: provisioned for peak
	ApproachStaticSmall Approach = "static-small" // Fig 9b: under-provisioned static
	ApproachReactive    Approach = "reactive"     // Fig 9c: E-Store-style
	ApproachPStore      Approach = "pstore"       // Fig 9d: P-Store with SPAR
)

// ApproachResult captures one Fig 9 panel plus its Table 2 row.
type ApproachResult struct {
	Approach    Approach
	Windows     []metrics.WindowStats
	Throughput  []float64 // completed txns per latency window
	Machines    []MachinePoint
	SLA         metrics.SLAReport
	AvgMachines float64
	Requests    int64
	Dropped     int64
	// Events records the controller's decisions (P-Store runs only).
	Events []controller.Event
}

// MachinePoint is a (time, machines) step of the allocation curve.
type MachinePoint struct {
	At       time.Time
	Machines int
}

// ApproachesConfig parameterizes the Fig 9 comparison.
type ApproachesConfig struct {
	Scale  Scale
	Params plan.Params // discovered Q/Q̂ (per slot) and D (slots)
	// Trace is the load to replay, in transactions per slot. ReplayStart
	// is the first replayed slot (earlier slots are predictor history).
	Trace       *timeseries.Series
	ReplayStart int
	// PeakNodes and SmallNodes are the two static allocations (paper: 10
	// and 4).
	PeakNodes, SmallNodes int
	// Predictor is a fitted model for the P-Store run.
	Predictor predict.Model
	// Horizon and Inflate configure the controller (paper: 2D/P slots and
	// 1.15).
	Horizon int
	Inflate float64
	// Migration is the regular rate-R migration configuration.
	Migration migration.Options
	// FastFallback makes the P-Store controller's reactive fallback
	// migrate at rate R×8 instead of R (Fig 11's second strategy).
	FastFallback bool
}

// RunApproach replays the trace against one elasticity approach and
// measures its Fig 9 panel.
func RunApproach(cfg ApproachesConfig, a Approach) (res *ApproachResult, err error) {
	sc := cfg.Scale
	initial := initialNodes(cfg, a)
	c, d, err := newB2WCluster(sc, initial)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ctlWG sync.WaitGroup

	// Per-slot load measurement shared by both controllers. The delta is
	// normalized by the wall time actually elapsed since the last call, so
	// a delayed controller tick does not read as a burst of load.
	var measureMu sync.Mutex
	prevTotal := 0
	prevAt := time.Now()
	measure := func() float64 {
		measureMu.Lock()
		defer measureMu.Unlock()
		now := time.Now()
		total := c.OfferedLoad().Total()
		delta := float64(total - prevTotal)
		elapsed := now.Sub(prevAt)
		prevTotal = total
		prevAt = now
		if elapsed > sc.SlotWall {
			delta *= float64(sc.SlotWall) / float64(elapsed)
		}
		return delta
	}

	switch a {
	case ApproachStaticPeak, ApproachStaticSmall:
		// No controller.
	case ApproachReactive:
		// Trigger only at true overload — offered load approaching the
		// saturation rate (Q̂ is 80% of saturation, so 1.15·Q̂ ≈ 92% of
		// saturation) — as E-Store does: the reactive system reconfigures
		// when performance issues are already present (§2).
		ctl := reactive.New(c, reactive.Config{
			Params:         cfg.Params,
			Interval:       sc.SlotWall,
			HighFraction:   1.15,
			ScaleOutStreak: 2,
			ScaleInStreak:  3,
			MaxNodes:       cfg.PeakNodes,
			Migration:      cfg.Migration,
			MeasureLoad:    measure,
		})
		ctlWG.Add(1)
		go func() {
			defer ctlWG.Done()
			_ = ctl.Run(ctx)
		}()
	case ApproachPStore:
		var ctl *controller.Controller
		ctl, err = controller.New(c, controller.Config{
			Params:               cfg.Params,
			Predictor:            cfg.Predictor,
			History:              cfg.Trace.Slice(0, cfg.ReplayStart),
			SlotWall:             sc.SlotWall,
			Horizon:              cfg.Horizon,
			Inflate:              cfg.Inflate,
			ScaleInConfirmations: 3,
			MaxNodes:             cfg.PeakNodes,
			Migration:            cfg.Migration,
			FastFallback:         cfg.FastFallback,
			MeasureLoad:          measure,
		})
		if err != nil {
			return nil, err
		}
		ctlWG.Add(1)
		go func() {
			defer ctlWG.Done()
			_ = ctl.Run(ctx)
		}()
		defer func() { _ = ctl.WaitIdle() }()
		defer func() {
			if res != nil {
				res.Events = ctl.Events()
			}
		}()
	default:
		return nil, fmt.Errorf("experiments: unknown approach %q", a)
	}

	// Open-loop replay of the trace tail.
	replaySeries := cfg.Trace.Slice(cfg.ReplayStart, cfg.Trace.Len())
	var callWG sync.WaitGroup
	stats, err := workload.ReplayBatched(ctx, replaySeries, workload.ReplayConfig{
		SlotWall:  sc.SlotWall,
		LoadScale: 1,
		MaxLag:    sc.SlotWall,
		Batch:     16,
	}, func(_, n int) {
		callWG.Add(n)
		for j := 0; j < n; j++ {
			go func() {
				defer callWG.Done()
				c.Call(d.Next())
			}()
		}
	})
	if err != nil {
		return nil, err
	}
	cancel()
	ctlWG.Wait()
	callWG.Wait()

	res = &ApproachResult{Approach: a, Requests: stats.Requests, Dropped: stats.Dropped}
	res.Windows = c.Latencies().Windows()
	for _, w := range res.Windows {
		res.Throughput = append(res.Throughput, float64(w.Count))
	}
	res.SLA = metrics.SLAViolations(res.Windows, sc.SLAThreshold)
	res.AvgMachines = c.Allocation().Average(time.Now())
	for _, pt := range c.Allocation().Series() {
		res.Machines = append(res.Machines, MachinePoint{At: pt.At, Machines: pt.Machines})
	}
	return res, nil
}

// initialNodes picks the starting allocation: static approaches get their
// fixed size; elastic approaches start sized for the first replayed slot.
func initialNodes(cfg ApproachesConfig, a Approach) int {
	switch a {
	case ApproachStaticPeak:
		return cfg.PeakNodes
	case ApproachStaticSmall:
		return cfg.SmallNodes
	default:
		return cfg.Params.RequiredMachines(cfg.Trace.At(cfg.ReplayStart))
	}
}
