package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"pstore/internal/b2w"
	"pstore/internal/storage"
)

// SkewResult quantifies how uniformly the benchmark's accesses and data
// spread over partitions (§8.1; the paper reports, for 30 partitions, a
// most-accessed partition only 10.15% above average with σ = 2.62%, and a
// largest partition only 0.185% above average with σ = 0.099%).
type SkewResult struct {
	Partitions       int
	AccessMaxOverAvg float64 // (max − avg)/avg of per-partition accesses
	AccessStdOverAvg float64
	DataMaxOverAvg   float64 // same for per-partition row counts
	DataStdOverAvg   float64
	AccessesMeasured int
	RowsMeasured     int
}

// SkewAnalysis measures access and data skew of the B2W workload when keys
// are hashed onto nPartitions with MurmurHash 2.0.
func SkewAnalysis(nPartitions, accesses, rows int) *SkewResult {
	d := b2w.NewDriver(b2w.DriverConfig{StockItems: 5000, CartPool: 4000, Seed: 11})
	accessCount := make([]float64, nPartitions)
	for i := 0; i < accesses; i++ {
		txn := d.Next()
		accessCount[storage.BucketOf(txn.Key, nPartitions)]++
	}
	// Data skew: distinct stored keys (randomly generated cart IDs dominate
	// the row count, as in B2W's database).
	rng := rand.New(rand.NewSource(12))
	rowCount := make([]float64, nPartitions)
	for i := 0; i < rows; i++ {
		key := fmt.Sprintf("cart-%016x", rng.Uint64())
		rowCount[storage.BucketOf(key, nPartitions)]++
	}
	res := &SkewResult{Partitions: nPartitions, AccessesMeasured: accesses, RowsMeasured: rows}
	res.AccessMaxOverAvg, res.AccessStdOverAvg = skewStats(accessCount)
	res.DataMaxOverAvg, res.DataStdOverAvg = skewStats(rowCount)
	return res
}

func skewStats(counts []float64) (maxOverAvg, stdOverAvg float64) {
	sum := 0.0
	for _, c := range counts {
		sum += c
	}
	avg := sum / float64(len(counts))
	if avg == 0 {
		return 0, 0
	}
	maxV, sq := 0.0, 0.0
	for _, c := range counts {
		if c > maxV {
			maxV = c
		}
		d := c - avg
		sq += d * d
	}
	return (maxV - avg) / avg, math.Sqrt(sq/float64(len(counts))) / avg
}
