package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pstore/internal/metrics"
	"pstore/internal/migration"
)

// ChunkRun is one configuration of the Fig 8 study: latency while migrating
// half the database off a node running at Q̂, for one chunk size (plus the
// static no-migration baseline).
type ChunkRun struct {
	Label           string
	BucketsPerChunk int
	MigrationTime   time.Duration // 0 for the static baseline
	Windows         []metrics.WindowStats
	Violations      metrics.SLAReport
	RowsMoved       int64
}

// ChunkStudyResult aggregates the Fig 8 sweep and the derived D (§4.1/§8.1).
type ChunkStudyResult struct {
	Runs []ChunkRun
	// DSlots is the discovered D in trace slots: the single-thread
	// full-database migration time extrapolated from the largest chunk
	// size that kept p99 within the SLA, plus the paper's 10% buffer.
	DSlots float64
	// RatePerSec is the corresponding data movement rate R in rows/s.
	RatePerSec float64
}

// ChunkSizeStudy reproduces Fig 8: a single node runs the B2W mix at Q̂
// while half its data migrates to a new node, once per chunk size; larger
// chunks finish faster but disturb latency more.
func ChunkSizeStudy(sc Scale, qHatPerSec float64, chunkSizes []int, chunkInterval time.Duration) (*ChunkStudyResult, error) {
	res := &ChunkStudyResult{}

	// Static baseline: same load, no migration.
	static, err := runChunkConfig(sc, qHatPerSec, 0, chunkInterval)
	if err != nil {
		return nil, err
	}
	static.Label = "Static"
	res.Runs = append(res.Runs, *static)

	var bestOK *ChunkRun
	for _, size := range chunkSizes {
		run, err := runChunkConfig(sc, qHatPerSec, size, chunkInterval)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, *run)
		if run.Violations.P99Violations == 0 {
			r := *run
			bestOK = &r // chunk sizes are tried in increasing order
		}
	}
	if bestOK != nil {
		// Moving fraction (1 − B/A) = 1/2 of the data used max‖ = P
		// parallel streams; a single thread moving the whole database
		// takes 2·P·duration. Add the 10% buffer (§4.1).
		d := bestOK.MigrationTime * time.Duration(2*sc.PartitionsPerNode)
		d += d / 10
		res.DSlots = float64(d) / float64(sc.SlotWall)
		if bestOK.MigrationTime > 0 {
			res.RatePerSec = float64(bestOK.RowsMoved) / bestOK.MigrationTime.Seconds()
		}
	}
	return res, nil
}

// runChunkConfig measures one Fig 8 cell. bucketsPerChunk == 0 runs the
// static baseline.
func runChunkConfig(sc Scale, qHatPerSec float64, bucketsPerChunk int, chunkInterval time.Duration) (*ChunkRun, error) {
	c, d, err := newB2WCluster(sc, 1)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	// Offered load fixed at Q̂ for the source node.
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		interval := time.Duration(float64(time.Second) / qHatPerSec)
		start := time.Now()
		for k := 0; ; k++ {
			due := start.Add(time.Duration(k) * interval)
			if t := time.Until(due); t > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(t):
				}
			} else if ctx.Err() != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.Call(d.Next())
			}()
		}
	}()

	run := &ChunkRun{BucketsPerChunk: bucketsPerChunk}
	warm := 300 * time.Millisecond
	time.Sleep(warm)
	if bucketsPerChunk > 0 {
		run.Label = labelForChunk(bucketsPerChunk)
		rep, err := migration.Run(c, 2, migration.Options{
			BucketsPerChunk: bucketsPerChunk,
			ChunkInterval:   chunkInterval,
		})
		if err != nil {
			return nil, err
		}
		run.MigrationTime = rep.Duration
		run.RowsMoved = rep.RowsMoved
		time.Sleep(warm) // observe the tail after migration completes
	} else {
		// Static baseline runs for a comparable period.
		time.Sleep(1200 * time.Millisecond)
	}
	cancel()
	<-loadDone
	wg.Wait()

	run.Windows = c.Latencies().Windows()
	run.Violations = metrics.SLAViolations(run.Windows, sc.DiscoverySLA)
	return run, nil
}

func labelForChunk(buckets int) string {
	return fmt.Sprintf("chunk-%d", buckets)
}
