package experiments

import (
	"fmt"
	"sync"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/metrics"
)

// SaturationPoint is one step of the single-node throughput ramp (Fig 7).
type SaturationPoint struct {
	OfferedRate float64 // transactions/s offered
	Throughput  float64 // transactions/s completed
	P50         time.Duration
	P99         time.Duration
}

// SaturationResult is the outcome of parameter discovery for Q and Q̂.
type SaturationResult struct {
	Points     []SaturationPoint
	Saturation float64 // highest offered rate before the SLA was violated (tps)
	QHat       float64 // 80% of saturation (tps)
	Q          float64 // 65% of saturation (tps)
}

// newB2WCluster builds a cluster with the benchmark schema loaded.
func newB2WCluster(sc Scale, nodes int) (*cluster.Cluster, *b2w.Driver, error) {
	reg := engine.NewRegistry()
	b2w.Register(reg)
	c, err := cluster.New(cluster.Config{
		InitialNodes:      nodes,
		PartitionsPerNode: sc.PartitionsPerNode,
		NBuckets:          sc.NBuckets,
		Tables:            b2w.Tables,
		Registry:          reg,
		Engine:            sc.EngineConfig(),
		LatencyWindow:     sc.LatencyWindow,
	})
	if err != nil {
		return nil, nil, err
	}
	d := b2w.NewDriver(b2w.DriverConfig{StockItems: sc.StockItems, CartPool: sc.PreloadCarts, Seed: 7})
	if err := d.Preload(c, sc.PreloadCarts); err != nil {
		c.Stop()
		return nil, nil, err
	}
	return c, d, nil
}

// DiscoverSaturation reproduces Fig 7: it offers the B2W mix to a single
// node at steadily increasing rates and reports throughput and latency per
// step. The saturation rate is the last offered rate whose p99 stayed
// within the SLA; Q̂ and Q are 80% and 65% of it (§4.1).
func DiscoverSaturation(sc Scale, stepDur time.Duration, steps int) (*SaturationResult, error) {
	if steps < 2 {
		return nil, fmt.Errorf("experiments: need ≥ 2 ramp steps")
	}
	c, d, err := newB2WCluster(sc, 1)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	res := &SaturationResult{}
	maxRate := 1.35 * sc.NodeSaturation()
	for step := 1; step <= steps; step++ {
		rate := maxRate * float64(step) / float64(steps)
		point := runRateStep(c, d, rate, stepDur)
		res.Points = append(res.Points, point)
	}
	// Saturation: the highest offered rate the node still kept up with —
	// completed throughput tracking the offered rate and p99 within the
	// SLA. (The paper detects the violation point on long steady-state
	// steps; compressed steps need the throughput-tracking criterion too,
	// because open-loop queues take a while to push p99 past the SLA.)
	for _, p := range res.Points {
		if p.Throughput >= 0.93*p.OfferedRate && p.P99 <= sc.DiscoverySLA {
			res.Saturation = p.OfferedRate
		}
	}
	if res.Saturation == 0 && len(res.Points) > 0 {
		res.Saturation = res.Points[0].Throughput
	}
	res.QHat = 0.80 * res.Saturation
	res.Q = 0.65 * res.Saturation
	return res, nil
}

// runRateStep offers the driver mix at the given rate for the duration and
// measures completed throughput and latency percentiles.
func runRateStep(c *cluster.Cluster, d *b2w.Driver, rate float64, dur time.Duration) SaturationPoint {
	var mu sync.Mutex
	var lats []time.Duration
	var completed int
	var wg sync.WaitGroup

	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	for k := 0; ; k++ {
		due := start.Add(time.Duration(k) * interval)
		if due.Sub(start) >= dur {
			break
		}
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := c.Call(d.Next())
			mu.Lock()
			lats = append(lats, res.Latency)
			if res.Err == nil || engine.IsAbort(res.Err) {
				completed++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	mu.Lock()
	defer mu.Unlock()
	return SaturationPoint{
		OfferedRate: rate,
		Throughput:  float64(completed) / elapsed.Seconds(),
		P50:         metrics.DurationPercentile(lats, 50),
		P99:         metrics.DurationPercentile(lats, 99),
	}
}
