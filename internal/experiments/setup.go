package experiments

import (
	"fmt"
	"time"

	"pstore/internal/migration"
	"pstore/internal/plan"
	"pstore/internal/predict"
	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

// Setup carries the outcome of §8.1-style parameter discovery on this
// substrate: measured saturation (Fig 7), chunk study and derived D
// (Fig 8), and the resulting planner parameters.
type Setup struct {
	Scale      Scale
	Saturation *SaturationResult
	Chunks     *ChunkStudyResult
	Params     plan.Params
}

// DiscoverParameters runs the Fig 7 ramp and the Fig 8 chunk sweep and
// derives plan.Params exactly as §4.1 prescribes (Q̂ = 80% and Q = 65% of
// saturation; D from the largest non-disruptive migration rate + 10%).
func DiscoverParameters(sc Scale, stepDur time.Duration, rampSteps int, chunkSizes []int, chunkInterval time.Duration) (*Setup, error) {
	sat, err := DiscoverSaturation(sc, stepDur, rampSteps)
	if err != nil {
		return nil, err
	}
	if sat.Saturation <= 0 {
		return nil, fmt.Errorf("experiments: saturation discovery failed: %+v", sat)
	}
	chunks, err := ChunkSizeStudy(sc, sat.QHat, chunkSizes, chunkInterval)
	if err != nil {
		return nil, err
	}
	d := chunks.DSlots
	if d == 0 {
		// Every chunk size disturbed latency; fall back to the smallest
		// chunk's extrapolated time so the planner stays conservative.
		d = 10
	}
	return &Setup{
		Scale:      sc,
		Saturation: sat,
		Chunks:     chunks,
		Params:     sc.Params(sat.Saturation, d),
	}, nil
}

// QuickParams returns pre-discovered parameters for the QuickScale
// substrate, for tests and benches that should not re-run discovery. The
// values were obtained with DiscoverParameters on QuickScale and rounded;
// Q and Q̂ are transactions per 50ms slot.
func QuickParams(sc Scale) plan.Params {
	return sc.Params(0.95*sc.NodeSaturation(), 9)
}

// TraceKind selects the predictor for BuildApproachesConfig.
type TraceKind string

// Predictor choices for the Fig 9 comparison.
const (
	PredictorSPAR   TraceKind = "spar"
	PredictorOracle TraceKind = "oracle"
)

// BuildApproachesConfig synthesizes a B2W trace in engine units
// (transactions per slot), fits the requested predictor on its training
// prefix, and assembles the shared configuration for the Fig 9–11 runs.
// trainDays+replayDays days are generated; the replay covers the last
// replayDays.
func BuildApproachesConfig(setup *Setup, trainDays, replayDays int, kind TraceKind, seed int64) (*ApproachesConfig, error) {
	sc := setup.Scale
	p := setup.Params

	gen := workload.DefaultB2WConfig()
	gen.Days = trainDays + replayDays
	gen.SlotsPerDay = sc.SlotsPerDay
	gen.Seed = seed
	// Peak sized so peak demand needs ~6 machines at Q, trough ~1 (the
	// paper's 10×), expressed directly in transactions per slot.
	gen.PeakLoad = 5.5 * p.Q
	gen.TroughLoad = gen.PeakLoad / 10
	trace := workload.GenerateB2W(gen)

	replayStart := trainDays * sc.SlotsPerDay
	horizon := p.RecommendedHorizon() + 2
	if horizon < 10 {
		horizon = 10
	}
	if horizon >= sc.SlotsPerDay {
		horizon = sc.SlotsPerDay - 1
	}

	var predictor predict.Model
	switch kind {
	case PredictorSPAR:
		// SPAR needs n·T + m + T + 1 training points, i.e. n ≤ trainDays−2
		// for any m < one day.
		n := 3
		if n > trainDays-2 {
			n = trainDays - 2
		}
		if n < 1 {
			return nil, fmt.Errorf("experiments: need ≥ 3 training days for SPAR")
		}
		spar := predict.NewSPAR(predict.SPARConfig{
			Period: sc.SlotsPerDay, NPeriods: n, MRecent: 10, MaxRows: 4000,
		})
		if err := spar.Fit(trace.Slice(0, replayStart)); err != nil {
			return nil, err
		}
		predictor = spar
	case PredictorOracle:
		// Pad the oracle's copy so it can see a full horizon past the end
		// of the replay.
		oracle := predict.NewOracle(padTail(trace, horizon+2))
		if err := oracle.Fit(nil); err != nil {
			return nil, err
		}
		predictor = oracle
	default:
		return nil, fmt.Errorf("experiments: unknown predictor kind %q", kind)
	}

	peakNodes := p.RequiredMachines(trace.Max()) + 1
	// The paper's under-provisioned static baseline (4 of 10 nodes) cannot
	// hold the peak even at Q̂; size ours the same way.
	smallNodes := 2 * peakNodes / 5
	if smallNodes < 2 {
		smallNodes = 2
	}
	return &ApproachesConfig{
		Scale:       sc,
		Params:      p,
		Trace:       trace,
		ReplayStart: replayStart,
		PeakNodes:   peakNodes,
		SmallNodes:  smallNodes,
		Predictor:   predictor,
		Horizon:     horizon,
		Inflate:     1.15,
		Migration:   setup.MigrationOptions(),
	}, nil
}

// MigrationOptions returns the regular rate-R migration configuration: the
// largest chunk size the Fig 8 study found non-disruptive, at Squall-style
// pacing.
func (s *Setup) MigrationOptions() migration.Options {
	opts := migration.Options{BucketsPerChunk: 2, ChunkInterval: 2 * time.Millisecond}
	if s.Chunks != nil {
		best := 0
		for _, run := range s.Chunks.Runs {
			if run.BucketsPerChunk > best && run.Violations.P99Violations == 0 {
				best = run.BucketsPerChunk
			}
		}
		if best > 0 {
			opts.BucketsPerChunk = best
		}
	}
	return opts
}

// padTail extends a series by repeating its final day, so an oracle
// predictor can see past the replay's end.
func padTail(s *timeseries.Series, extra int) *timeseries.Series {
	out := s.Clone()
	n := s.Len()
	for i := 0; i < extra; i++ {
		out.Append(s.At(n - 1 - (extra - i)))
	}
	return out
}
