package experiments

import (
	"testing"
	"time"
)

// testScale shrinks QuickScale further so the package tests stay fast.
func testScale() Scale {
	sc := QuickScale()
	sc.SlotsPerDay = 48
	sc.SlotWall = 30 * time.Millisecond
	sc.StockItems = 400
	sc.PreloadCarts = 400
	sc.NBuckets = 128
	return sc
}

func TestSkewAnalysisMatchesPaperShape(t *testing.T) {
	res := SkewAnalysis(30, 120000, 120000)
	// §8.1: the most-accessed partition is ~10% above average with σ a few
	// percent; data skew is even lower. Generous bounds for a synthetic
	// driver.
	if res.AccessMaxOverAvg > 0.25 {
		t.Errorf("access max-over-avg = %.4f, want ≤ 0.25", res.AccessMaxOverAvg)
	}
	if res.AccessStdOverAvg > 0.10 {
		t.Errorf("access std-over-avg = %.4f, want ≤ 0.10", res.AccessStdOverAvg)
	}
	if res.DataMaxOverAvg > 0.15 {
		t.Errorf("data max-over-avg = %.4f, want ≤ 0.15", res.DataMaxOverAvg)
	}
	if res.DataStdOverAvg > 0.05 {
		t.Errorf("data std-over-avg = %.4f, want ≤ 0.05", res.DataStdOverAvg)
	}
}

func TestDiscoverSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	sc := testScale()
	res, err := DiscoverSaturation(sc, 150*time.Millisecond, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Saturation <= 0 {
		t.Fatalf("saturation = %v", res.Saturation)
	}
	// The ramp should discover a saturation in the vicinity of the
	// theoretical 1/ServiceTime per partition.
	theory := sc.NodeSaturation()
	if res.Saturation < 0.3*theory || res.Saturation > 1.5*theory {
		t.Errorf("saturation %.0f tps far from theoretical %.0f", res.Saturation, theory)
	}
	if res.Q >= res.QHat {
		t.Errorf("Q %.0f should be below QHat %.0f", res.Q, res.QHat)
	}
	// Throughput must be increasing at low offered rates.
	if res.Points[1].Throughput <= 0.5*res.Points[0].Throughput {
		t.Errorf("throughput collapsed early: %+v", res.Points[:2])
	}
}

func TestChunkSizeStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	sc := testScale()
	// Run at ~55% of theoretical saturation: high enough for migration to
	// interfere, low enough that queues stay stable and timing is
	// dominated by pacing rather than queue noise.
	load := 0.55 * sc.NodeSaturation()
	res, err := ChunkSizeStudy(sc, load, []int{1, 32}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("runs = %d, want 3 (static + 2 chunk sizes)", len(res.Runs))
	}
	small, large := res.Runs[1], res.Runs[2]
	if small.MigrationTime <= large.MigrationTime {
		t.Errorf("small chunks (%v) should migrate slower than large (%v)",
			small.MigrationTime, large.MigrationTime)
	}
	if small.RowsMoved == 0 || large.RowsMoved == 0 {
		t.Error("no rows moved")
	}
	if res.DSlots < 0 {
		t.Errorf("DSlots = %v", res.DSlots)
	}
}

func TestQuickParamsSane(t *testing.T) {
	sc := QuickScale()
	p := QuickParams(sc)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Q per slot should correspond to 65% of ~0.95·node saturation.
	perSlot := 0.65 * 0.95 * sc.NodeSaturation() * sc.SlotWall.Seconds()
	if p.Q < perSlot*0.99 || p.Q > perSlot*1.01 {
		t.Errorf("Q = %v, want ≈ %v", p.Q, perSlot)
	}
}

func TestBuildApproachesConfigAndPStoreRun(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	sc := testScale()
	setup := &Setup{Scale: sc, Params: QuickParams(sc)}
	cfg, err := BuildApproachesConfig(setup, 4, 1, PredictorOracle, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PeakNodes <= cfg.SmallNodes {
		t.Errorf("peak %d vs small %d", cfg.PeakNodes, cfg.SmallNodes)
	}
	res, err := RunApproach(*cfg, ApproachPStore)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests replayed")
	}
	if len(res.Windows) == 0 || len(res.Machines) == 0 {
		t.Fatalf("windows=%d machines=%d", len(res.Windows), len(res.Machines))
	}
	if res.AvgMachines <= 0 || res.AvgMachines > float64(cfg.PeakNodes) {
		t.Errorf("avg machines = %v", res.AvgMachines)
	}
	// P-Store should have scaled at least once over a full diurnal day.
	if len(res.Machines) < 2 {
		t.Errorf("machine curve = %+v, expected scaling activity", res.Machines)
	}
}

func TestRunApproachStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	sc := testScale()
	setup := &Setup{Scale: sc, Params: QuickParams(sc)}
	cfg, err := BuildApproachesConfig(setup, 4, 1, PredictorOracle, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunApproach(*cfg, ApproachStaticPeak)
	if err != nil {
		t.Fatal(err)
	}
	// Static allocation never changes machines.
	if len(res.Machines) != 1 || res.Machines[0].Machines != cfg.PeakNodes {
		t.Errorf("machines = %+v", res.Machines)
	}
	if res.SLA.Windows == 0 {
		t.Error("no SLA windows")
	}
}

func TestRunApproachUnknown(t *testing.T) {
	sc := testScale()
	setup := &Setup{Scale: sc, Params: QuickParams(sc)}
	cfg, err := BuildApproachesConfig(setup, 4, 1, PredictorOracle, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunApproach(*cfg, Approach("nope")); err == nil {
		t.Error("unknown approach should fail")
	}
}

func TestSPARStudyB2W(t *testing.T) {
	if testing.Short() {
		t.Skip("regression-heavy")
	}
	res, err := SPARStudyB2W(9, 1, []int{10, 60}, 45)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %+v", res.Points)
	}
	// Accuracy decays gracefully with τ and stays in a plausible band.
	if res.Points[0].MRE > res.Points[1].MRE+0.02 {
		t.Errorf("MRE(10) = %.4f should be ≤ MRE(60) = %.4f", res.Points[0].MRE, res.Points[1].MRE)
	}
	for _, p := range res.Points {
		if p.MRE <= 0 || p.MRE > 0.30 {
			t.Errorf("τ=%d MRE = %.4f outside (0, 0.30]", p.Tau, p.MRE)
		}
	}
	if len(res.CurvePred) == 0 || len(res.CurvePred) != len(res.CurveActual) {
		t.Error("forecast curve missing")
	}
}

func TestSPARStudyWikipedia(t *testing.T) {
	if testing.Short() {
		t.Skip("regression-heavy")
	}
	en, err := SPARStudyWikipedia(true, 28, 7, []int{1, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	de, err := SPARStudyWikipedia(false, 28, 7, []int{1, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 6: the German edition is harder to predict than the English one.
	if de.Points[1].MRE <= en.Points[1].MRE {
		t.Errorf("DE MRE %.4f should exceed EN MRE %.4f at τ=6h",
			de.Points[1].MRE, en.Points[1].MRE)
	}
	// Both stay within the paper's ballpark (<15% at 6h).
	for _, p := range append(en.Points, de.Points...) {
		if p.MRE > 0.20 {
			t.Errorf("%d-hour MRE = %.4f too high", p.Tau, p.MRE)
		}
	}
}

func TestCapacityCostStudySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := SimStudyConfig{Days: 13, TrainDays: 9, BlackFridayDay: 11, QFactors: []float64{1.0}, Seed: 5}
	res, err := CapacityCostStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d, want 5 strategies", len(res.Points))
	}
	byName := map[string]SimPoint{}
	for _, p := range res.Points {
		byName[p.Strategy] = p
	}
	ps := byName["P-Store SPAR"]
	reactive := byName["Reactive"]
	if ps.NormalizedCost != 1.0 {
		t.Errorf("P-Store SPAR normalized cost = %v, want 1.0", ps.NormalizedCost)
	}
	// P-Store suffers less insufficiency than reactive at comparable cost.
	if ps.InsufficientFrac > reactive.InsufficientFrac {
		t.Errorf("P-Store insufficient %.4f vs reactive %.4f", ps.InsufficientFrac, reactive.InsufficientFrac)
	}
	// Static-peak costs much more than P-Store.
	for name, p := range byName {
		if len(name) > 6 && name[:6] == "Static" {
			if p.Cost < 1.5*ps.Cost {
				t.Errorf("static cost %.0f not ≫ P-Store %.0f", p.Cost, ps.Cost)
			}
		}
	}
}

func TestTrajectoryStudyBlackFriday(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := SimStudyConfig{Days: 13, TrainDays: 9, BlackFridayDay: 11, QFactors: []float64{1.0}, Seed: 5}
	windowStart := 10 * 288
	states, load, err := TrajectoryStudy(cfg, windowStart, 2*288)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 {
		t.Fatalf("strategies = %d", len(states))
	}
	if load.Len() != 2*288 {
		t.Fatalf("load window = %d", load.Len())
	}
	// On Black Friday (inside the window) the Simple strategy must be
	// underprovisioned more than P-Store.
	insufficient := func(name string) int {
		n := 0
		for i, st := range states[name] {
			if load.At(i) > st.EffCap {
				n++
			}
		}
		return n
	}
	if insufficient("P-Store SPAR") > insufficient("Simple") {
		t.Errorf("P-Store insufficient %d > Simple %d on Black Friday window",
			insufficient("P-Store SPAR"), insufficient("Simple"))
	}
}

func TestModelComparisonSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("regression-heavy")
	}
	points, err := ModelComparison(9, 1, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string]float64{}
	for _, p := range points {
		byModel[p.Model] = p.MRE
	}
	// §5: SPAR should be the most accurate of the learned models.
	if byModel["SPAR"] > byModel["AR"] {
		t.Errorf("SPAR MRE %.4f worse than AR %.4f", byModel["SPAR"], byModel["AR"])
	}
	for m, mre := range byModel {
		if mre <= 0 || mre > 1 {
			t.Errorf("%s MRE = %v out of range", m, mre)
		}
	}
}
