package experiments

import (
	"fmt"

	"pstore/internal/plan"
	"pstore/internal/predict"
	"pstore/internal/sim"
	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

// SimStudyConfig parameterizes the long-horizon allocation simulations of
// §8.3 (Figs 12 and 13).
type SimStudyConfig struct {
	// Days of synthetic B2W load at 5-minute slots; the paper simulates
	// 4.5 months (≈135 days) including Black Friday.
	Days int
	// TrainDays of the trace are used to fit SPAR (paper: 4 weeks).
	TrainDays int
	// BlackFridayDay (index) injects the year's biggest surge; -1 for
	// none.
	BlackFridayDay int
	// QFactors sweep the capacity buffer: each factor scales the default
	// Q (65% of saturation), producing one point per strategy on the
	// capacity-cost plane of Fig 12.
	QFactors []float64
	// Seed for the trace generator.
	Seed int64
}

// DefaultSimStudyConfig returns a configuration mirroring §8.3 at reduced
// length (the cmd/simulate tool runs the full 135 days).
func DefaultSimStudyConfig() SimStudyConfig {
	return SimStudyConfig{
		Days:           60,
		TrainDays:      21,
		BlackFridayDay: 50,
		QFactors:       []float64{0.8, 1.0, 1.25},
		Seed:           5,
	}
}

// SimPoint is one point of Fig 12: a strategy at one Q setting.
type SimPoint struct {
	Strategy         string
	QFactor          float64
	Cost             float64
	NormalizedCost   float64 // normalized to P-Store SPAR at QFactor 1.0
	InsufficientFrac float64
	AvgMachines      float64
	Moves            int
}

// SimStudyResult is the Fig 12 sweep.
type SimStudyResult struct {
	Points []SimPoint
	Slots  int
}

// simEnvironment holds the shared trace and parameters of a §8.3 study.
type simEnvironment struct {
	load        *timeseries.Series
	params      plan.Params // at QFactor 1.0
	start       int         // first simulated slot
	slotsPerDay int
}

// newSimEnvironment generates the trace and derives paper-like parameters:
// the peak needs ≈10 machines at Q, and D = 77 minutes (15.4 slots).
func newSimEnvironment(cfg SimStudyConfig) (*simEnvironment, error) {
	if cfg.Days <= cfg.TrainDays {
		return nil, fmt.Errorf("experiments: need Days > TrainDays")
	}
	gen := workload.DefaultB2WConfig()
	gen.Days = cfg.Days
	gen.SlotsPerDay = 288 // 5-minute slots, the paper's sim granularity
	gen.Seed = cfg.Seed
	gen.BlackFridayDay = cfg.BlackFridayDay
	load := workload.GenerateB2W(gen)

	// Q chosen so the nominal diurnal peak needs ~9 machines (the paper's
	// 10-node cluster); Q̂ = (80/65)·Q. Trace values are already requests
	// per slot.
	q := gen.PeakLoad / 9
	params := plan.Params{
		Q:                 q,
		QHat:              q * 0.80 / 0.65,
		D:                 77.0 / 5.0, // the paper's 77 minutes, in slots
		PartitionsPerNode: 6,
	}
	return &simEnvironment{
		load:        load,
		params:      params,
		start:       cfg.TrainDays * gen.SlotsPerDay,
		slotsPerDay: gen.SlotsPerDay,
	}, nil
}

// horizonSlots returns the planning horizon: 2D/P rounded up, at least 12
// slots (one hour).
func (e *simEnvironment) horizonSlots() int {
	h := int(2*e.params.D/float64(e.params.PartitionsPerNode)) + 1
	if h < 12 {
		h = 12
	}
	return h
}

// CapacityCostStudy reproduces Fig 12: every strategy simulated over the
// post-training trace at each Q factor, yielding (cost, % time with
// insufficient capacity) points. Costs are normalized to P-Store SPAR at
// factor 1.0.
func CapacityCostStudy(cfg SimStudyConfig) (*SimStudyResult, error) {
	env, err := newSimEnvironment(cfg)
	if err != nil {
		return nil, err
	}
	spar := predict.NewSPAR(predict.SPARConfig{
		Period: env.slotsPerDay, NPeriods: 7, MRecent: 30, MaxRows: 4000,
	})
	if err := spar.Fit(env.load.Slice(0, env.start)); err != nil {
		return nil, err
	}
	oracle := predict.NewOracle(env.load)
	if err := oracle.Fit(nil); err != nil {
		return nil, err
	}

	// Trim the end so the oracle can always see a full horizon.
	horizon := env.horizonSlots()
	loadView := env.load.Slice(0, env.load.Len()-horizon-1)
	n0 := env.params.RequiredMachines(loadView.At(env.start))

	res := &SimStudyResult{}
	for _, f := range cfg.QFactors {
		p := env.params
		p.Q *= f
		if p.QHat < p.Q {
			p.QHat = p.Q
		}
		peakMachines := p.RequiredMachines(loadView.Max())
		// Typical-day machines for the Simple and Static strategies.
		dayPeak := typicalDayPeak(env.load.Slice(0, env.start), env.slotsPerDay)
		strategies := []sim.Strategy{
			&sim.PStore{Params: p, Predictor: spar, Horizon: horizon, Inflate: 1.15, Label: "P-Store SPAR"},
			&sim.PStore{Params: p, Predictor: oracle, Horizon: horizon, Inflate: 1.0, Label: "P-Store Oracle"},
			&sim.Reactive{Params: p},
			sim.Simple{
				SlotsPerDay: env.slotsPerDay, MorningSlot: env.slotsPerDay / 4,
				NightSlot:   env.slotsPerDay * 23 / 24,
				DayMachines: p.RequiredMachines(dayPeak), NightMachines: p.RequiredMachines(dayPeak / 6),
			},
			sim.Static{Machines: peakMachines},
		}
		for _, strat := range strategies {
			r, err := sim.Run(loadView, env.start, n0, strat, p, false)
			if err != nil {
				return nil, fmt.Errorf("experiments: simulating %s at f=%.2f: %w", strat.Name(), f, err)
			}
			res.Points = append(res.Points, SimPoint{
				Strategy:         strat.Name(),
				QFactor:          f,
				Cost:             r.Cost,
				InsufficientFrac: r.InsufficientFrac(),
				AvgMachines:      r.AvgMachines(),
				Moves:            r.Moves,
			})
			res.Slots = r.Slots
		}
	}
	// Normalize to P-Store SPAR at factor 1.0.
	var base float64
	for _, p := range res.Points {
		if p.Strategy == "P-Store SPAR" && p.QFactor == 1.0 {
			base = p.Cost
		}
	}
	if base == 0 && len(res.Points) > 0 {
		base = res.Points[0].Cost
	}
	for i := range res.Points {
		res.Points[i].NormalizedCost = res.Points[i].Cost / base
	}
	return res, nil
}

// typicalDayPeak returns the median of the per-day maxima over the
// training window, the basis of the Simple strategy's fixed schedule.
func typicalDayPeak(train *timeseries.Series, slotsPerDay int) float64 {
	days := train.Len() / slotsPerDay
	if days == 0 {
		return train.Max()
	}
	maxima := make([]float64, 0, days)
	for d := 0; d < days; d++ {
		maxima = append(maxima, train.Slice(d*slotsPerDay, (d+1)*slotsPerDay).Max())
	}
	// Median by partial sort.
	for i := 0; i < len(maxima); i++ {
		for j := i + 1; j < len(maxima); j++ {
			if maxima[j] < maxima[i] {
				maxima[i], maxima[j] = maxima[j], maxima[i]
			}
		}
	}
	return maxima[len(maxima)/2]
}

// TrajectoryStudy reproduces Fig 13: the effective-capacity trajectories of
// P-Store (SPAR), Simple and Static over a window of the simulation —
// including the Black Friday surge when the window covers it. It returns
// per-slot states for each strategy, aligned with the returned load view.
func TrajectoryStudy(cfg SimStudyConfig, windowStart, windowLen int) (map[string][]sim.SlotState, *timeseries.Series, error) {
	env, err := newSimEnvironment(cfg)
	if err != nil {
		return nil, nil, err
	}
	spar := predict.NewSPAR(predict.SPARConfig{
		Period: env.slotsPerDay, NPeriods: 7, MRecent: 30, MaxRows: 4000,
	})
	if err := spar.Fit(env.load.Slice(0, env.start)); err != nil {
		return nil, nil, err
	}
	horizon := env.horizonSlots()
	loadView := env.load.Slice(0, env.load.Len()-horizon-1)
	p := env.params
	n0 := p.RequiredMachines(loadView.At(env.start))
	dayPeak := typicalDayPeak(env.load.Slice(0, env.start), env.slotsPerDay)
	peakMachines := p.RequiredMachines(loadView.Max())

	strategies := []sim.Strategy{
		&sim.PStore{Params: p, Predictor: spar, Horizon: horizon, Inflate: 1.15, Label: "P-Store SPAR"},
		sim.Simple{
			SlotsPerDay: env.slotsPerDay, MorningSlot: env.slotsPerDay / 4,
			NightSlot:   env.slotsPerDay * 23 / 24,
			DayMachines: p.RequiredMachines(dayPeak), NightMachines: p.RequiredMachines(dayPeak / 6),
		},
		sim.Static{Machines: peakMachines},
	}
	out := make(map[string][]sim.SlotState)
	for _, strat := range strategies {
		r, err := sim.Run(loadView, env.start, n0, strat, p, true)
		if err != nil {
			return nil, nil, err
		}
		lo := windowStart - env.start
		hi := lo + windowLen
		if lo < 0 || hi > len(r.States) {
			return nil, nil, fmt.Errorf("experiments: window [%d,%d) outside simulated range", windowStart, windowStart+windowLen)
		}
		out[strat.Name()] = r.States[lo:hi]
	}
	return out, loadView.Slice(windowStart, windowStart+windowLen), nil
}
