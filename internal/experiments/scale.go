// Package experiments implements the paper's evaluation (§8): parameter
// discovery (Fig 7, Fig 8), the comparison of elasticity approaches over
// replayed B2W days (Fig 9, Fig 10, Table 2), reaction to unexpected spikes
// (Fig 11), workload uniformity analysis (§8.1), predictor accuracy
// (Figs 5–6) and the long-horizon allocation simulations (Figs 12–13).
//
// The engine experiments run in compressed time: a trace "minute" is
// replayed in tens of milliseconds and per-transaction work is synthetic,
// so parameters (Q, Q̂, D, SLA threshold) are re-discovered on this
// substrate exactly as §8.1 prescribes rather than copied from the paper's
// hardware.
package experiments

import (
	"time"

	"pstore/internal/engine"
	"pstore/internal/plan"
)

// Scale bundles the time-compression choices of an experiment run.
type Scale struct {
	// PartitionsPerNode is P (the paper uses 6; compressed runs use 2 to
	// keep goroutine counts modest).
	PartitionsPerNode int
	// ServiceTime is the synthetic per-transaction CPU cost; a partition
	// saturates at 1/ServiceTime tps.
	ServiceTime time.Duration
	// MigrationRowCost is the synthetic per-row migration cost.
	MigrationRowCost time.Duration
	// SlotWall is the wall-clock duration of one trace slot.
	SlotWall time.Duration
	// SlotsPerDay is the trace granularity (the paper uses 1440 one-minute
	// slots; compressed runs resample to fewer, longer slots).
	SlotsPerDay int
	// SLAThreshold is the latency above which a window counts as a
	// violation in the Table 2 reports. The paper uses 500 ms on
	// production-scale transactions; the compressed substrate uses a
	// proportionally tighter bound.
	SLAThreshold time.Duration
	// DiscoverySLA is the latency bound used during parameter discovery
	// (the Fig 7 ramp and Fig 8 chunk sweep). It is looser than
	// SLAThreshold because discovery's short open-loop steps need queues
	// to visibly blow up before a rate is called unsustainable.
	DiscoverySLA time.Duration
	// LatencyWindow is the percentile-aggregation window (paper: 1s).
	LatencyWindow time.Duration
	// NBuckets is the migration granularity.
	NBuckets int
	// StockItems / PreloadCarts size the database.
	StockItems   int
	PreloadCarts int
}

// QuickScale returns the compressed-time preset used by `go test -bench`
// and the test suite: a trace day passes in ~7 seconds.
func QuickScale() Scale {
	return Scale{
		PartitionsPerNode: 2,
		ServiceTime:       1200 * time.Microsecond,
		MigrationRowCost:  150 * time.Microsecond,
		SlotWall:          50 * time.Millisecond,
		SlotsPerDay:       144, // 10-minute slots
		SLAThreshold:      50 * time.Millisecond,
		DiscoverySLA:      100 * time.Millisecond,
		LatencyWindow:     250 * time.Millisecond,
		NBuckets:          256,
		StockItems:        1500,
		PreloadCarts:      1500,
	}
}

// EngineConfig derives the executor configuration.
func (s Scale) EngineConfig() engine.Config {
	return engine.Config{
		ServiceTime:      s.ServiceTime,
		MigrationRowCost: s.MigrationRowCost,
		QueueDepth:       1 << 15,
	}
}

// PartitionSaturation returns the theoretical per-partition saturation
// throughput in transactions per second of wall time.
func (s Scale) PartitionSaturation() float64 {
	return float64(time.Second) / float64(s.ServiceTime)
}

// NodeSaturation returns the theoretical per-node saturation throughput.
func (s Scale) NodeSaturation() float64 {
	return s.PartitionSaturation() * float64(s.PartitionsPerNode)
}

// Params derives planner parameters from a measured single-node saturation
// rate (transactions per wall second) and a measured D (in slots), applying
// the paper's 80%/65% rules. Q and Q̂ are expressed in transactions per
// slot, the planner's load unit.
func (s Scale) Params(saturationPerSec, dSlots float64) plan.Params {
	perSlot := saturationPerSec * s.SlotWall.Seconds()
	return plan.Params{
		Q:                 0.65 * perSlot,
		QHat:              0.80 * perSlot,
		D:                 dSlots,
		PartitionsPerNode: s.PartitionsPerNode,
	}
}
