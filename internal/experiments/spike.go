package experiments

import (
	"pstore/internal/metrics"
)

// SpikeRun is one side of Fig 11: P-Store reacting to an unexpected load
// spike with migration at rate R or at rate R×8.
type SpikeRun struct {
	Label       string
	SLA         metrics.SLAReport
	Windows     []metrics.WindowStats
	AvgMachines float64
}

// SpikeStudy reproduces Fig 11: a flat-ish predicted day suddenly spikes
// (the predictor cannot see it coming because it was fitted on — or, for
// the oracle, reads — the unspiked trace), forcing the controller's
// reactive fallback. The study runs twice — fallback at rate R and at
// rate R×8 — and reports SLA violations for each.
//
// spikeStart indexes into the full trace and must lie inside the replayed
// range [cfg.ReplayStart, len).
func SpikeStudy(cfg ApproachesConfig, spikeStart, spikeLen int, spikeFactor float64) ([]SpikeRun, error) {
	spiked := cfg.Trace.Clone()
	for i := spikeStart; i < spikeStart+spikeLen && i < spiked.Len(); i++ {
		spiked.Values[i] *= spikeFactor
	}
	var out []SpikeRun
	for _, fast := range []bool{false, true} {
		runCfg := cfg
		runCfg.Trace = spiked
		runCfg.FastFallback = fast
		label := "rate R"
		if fast {
			label = "rate R×8"
		}
		res, err := RunApproach(runCfg, ApproachPStore)
		if err != nil {
			return nil, err
		}
		out = append(out, SpikeRun{
			Label:       label,
			SLA:         res.SLA,
			Windows:     res.Windows,
			AvgMachines: res.AvgMachines,
		})
	}
	return out, nil
}
