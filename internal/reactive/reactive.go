// Package reactive implements the E-Store-style purely reactive
// provisioning baseline (§2, §8.2): it monitors the measured load and only
// reconfigures after the cluster is already saturated — which means data
// migration competes with peak traffic, producing the latency spikes of
// Fig 9c that P-Store's predictive planning avoids. The B2W workload is
// hash-uniform, so E-Store's hot-tuple detection degenerates to
// aggregate-load scaling (the paper makes the same observation in §8.1).
package reactive

import (
	"context"
	"sync"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/migration"
	"pstore/internal/plan"
)

// Config tunes the reactive controller.
type Config struct {
	// Params supplies Q (provisioning target) and QHat (saturation).
	Params plan.Params
	// Interval is the monitoring cadence.
	Interval time.Duration
	// HighFraction of QHat·N at which the system is considered overloaded
	// and a scale-out is triggered (default 0.95).
	HighFraction float64
	// ScaleInStreak is how many consecutive low-load observations must
	// accumulate before scaling in (default 3), mirroring P-Store's
	// confirmation heuristic so neither controller flaps.
	ScaleInStreak int
	// ScaleOutStreak is how many consecutive overloaded observations must
	// accumulate before scaling out (default 1). E-Store confirms an
	// imbalance with a detailed-monitoring period before acting (§2);
	// values above 1 model that detection delay.
	ScaleOutStreak int
	// MaxNodes caps scale-out (0 = unlimited).
	MaxNodes int
	// Migration configures data movement speed.
	Migration migration.Options
	// MeasureLoad returns the current offered load in transactions per
	// second (same unit as Q). Required.
	MeasureLoad func() float64
}

// Event records one controller decision, for experiment analysis.
type Event struct {
	At       time.Time
	Load     float64
	From, To int
	Kind     string // "scale-out", "scale-in"
}

// Controller is the reactive provisioner.
type Controller struct {
	cfg Config
	c   *cluster.Cluster

	mu         sync.Mutex
	events     []Event
	lowStreak  int
	highStreak int
}

// New returns a reactive controller for the cluster.
func New(c *cluster.Cluster, cfg Config) *Controller {
	if cfg.HighFraction <= 0 {
		cfg.HighFraction = 0.95
	}
	if cfg.ScaleInStreak <= 0 {
		cfg.ScaleInStreak = 3
	}
	if cfg.ScaleOutStreak <= 0 {
		cfg.ScaleOutStreak = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	return &Controller{cfg: cfg, c: c}
}

// Events returns the decisions taken so far.
func (ctl *Controller) Events() []Event {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return append([]Event(nil), ctl.events...)
}

func (ctl *Controller) record(ev Event) {
	ctl.mu.Lock()
	ctl.events = append(ctl.events, ev)
	ctl.mu.Unlock()
}

// Run monitors and reconfigures until ctx is cancelled. Migrations run to
// completion before the next decision (the controller cannot preempt an
// in-flight reconfiguration).
func (ctl *Controller) Run(ctx context.Context) error {
	ticker := time.NewTicker(ctl.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		if err := ctl.Step(); err != nil {
			return err
		}
	}
}

// Step performs one measure→decide→(migrate) cycle; migrations block until
// complete. Exposed for deterministic tests; Run calls it on each tick.
func (ctl *Controller) Step() error {
	load := ctl.cfg.MeasureLoad()
	n := ctl.c.NumNodes()
	p := ctl.cfg.Params

	switch {
	case load > ctl.cfg.HighFraction*p.QHat*float64(n):
		ctl.lowStreak = 0
		ctl.highStreak++
		if ctl.highStreak < ctl.cfg.ScaleOutStreak {
			return nil
		}
		ctl.highStreak = 0
		// Already overloaded: scale out to the target that would hold this
		// load with headroom. This is the reactive weakness — the
		// migration now runs on a saturated cluster.
		target := p.RequiredMachines(load)
		if target <= n {
			target = n + 1
		}
		if ctl.cfg.MaxNodes > 0 && target > ctl.cfg.MaxNodes {
			target = ctl.cfg.MaxNodes
		}
		if target > n {
			ctl.record(Event{At: time.Now(), Load: load, From: n, To: target, Kind: "scale-out"})
			if _, err := migration.Run(ctl.c, target, ctl.cfg.Migration); err != nil {
				return err
			}
		}
	case p.RequiredMachines(load) < n:
		ctl.highStreak = 0
		ctl.lowStreak++
		if ctl.lowStreak >= ctl.cfg.ScaleInStreak {
			target := maxInt(1, p.RequiredMachines(load))
			ctl.record(Event{At: time.Now(), Load: load, From: n, To: target, Kind: "scale-in"})
			if _, err := migration.Run(ctl.c, target, ctl.cfg.Migration); err != nil {
				return err
			}
			ctl.lowStreak = 0
		}
	default:
		ctl.lowStreak = 0
		ctl.highStreak = 0
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
