package reactive

import (
	"context"
	"testing"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/migration"
	"pstore/internal/plan"
)

func newTestCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	reg := engine.NewRegistry()
	reg.Register("Put", func(tx *engine.Txn) error {
		return tx.Put("T", tx.Key, map[string]string{"v": "1"})
	})
	c, err := cluster.New(cluster.Config{
		InitialNodes:      1,
		PartitionsPerNode: 1,
		NBuckets:          32,
		Tables:            []string{"T"},
		Registry:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func testConfig(measure func() float64) Config {
	return Config{
		Params:        plan.Params{Q: 100, QHat: 120, D: 2, PartitionsPerNode: 1},
		Interval:      10 * time.Millisecond,
		HighFraction:  0.95,
		ScaleInStreak: 3,
		Migration:     migration.Options{BucketsPerChunk: 8, ChunkInterval: 100 * time.Microsecond},
		MeasureLoad:   measure,
	}
}

func TestReactiveScalesOutOnlyWhenOverloaded(t *testing.T) {
	c := newTestCluster(t)
	load := 100.0
	ctl := New(c, testConfig(func() float64 { return load }))

	// Below the high watermark (0.95 · 120 · 1 = 114): no action, even
	// though the target capacity Q·1=100 is reached — the reactive system
	// waits for real overload.
	if err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 1 {
		t.Fatalf("scaled out below the watermark")
	}
	// Overload: 300 txn/s needs 3 machines.
	load = 300
	if err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", c.NumNodes())
	}
	evs := ctl.Events()
	if len(evs) != 1 || evs[0].Kind != "scale-out" || evs[0].From != 1 || evs[0].To != 3 {
		t.Errorf("events = %+v", evs)
	}
}

func TestReactiveScaleInStreak(t *testing.T) {
	c := newTestCluster(t)
	load := 500.0
	ctl := New(c, testConfig(func() float64 { return load }))
	if err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 5 {
		t.Fatalf("nodes = %d, want 5", c.NumNodes())
	}
	// Low load must persist for the streak before scale-in.
	load = 150
	for i := 0; i < 2; i++ {
		if err := ctl.Step(); err != nil {
			t.Fatal(err)
		}
		if c.NumNodes() != 5 {
			t.Fatalf("scaled in after %d low observations", i+1)
		}
	}
	if err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 2 {
		t.Fatalf("nodes = %d after streak, want 2", c.NumNodes())
	}
}

func TestReactiveStreakResetOnNormalLoad(t *testing.T) {
	c := newTestCluster(t)
	if _, err := migration.Run(c, 2, migration.Options{BucketsPerChunk: 8}); err != nil {
		t.Fatal(err)
	}
	loads := []float64{100, 100, 180, 100, 100, 100}
	i := 0
	ctl := New(c, testConfig(func() float64 {
		v := loads[i%len(loads)]
		i++
		return v
	}))
	// Two low readings, then 180 (needs 2 → not low) resets the streak.
	for s := 0; s < 5; s++ {
		if err := ctl.Step(); err != nil {
			t.Fatal(err)
		}
		if c.NumNodes() != 2 {
			t.Fatalf("scaled in at step %d despite streak reset", s)
		}
	}
	if err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 1 {
		t.Fatalf("nodes = %d after 3 clean lows, want 1", c.NumNodes())
	}
}

func TestReactiveMaxNodesCap(t *testing.T) {
	c := newTestCluster(t)
	cfg := testConfig(func() float64 { return 2000 })
	cfg.MaxNodes = 4
	ctl := New(c, cfg)
	if err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want capped 4", c.NumNodes())
	}
}

func TestReactiveRunLoop(t *testing.T) {
	c := newTestCluster(t)
	ctl := New(c, testConfig(func() float64 { return 50 }))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	if err := ctl.Run(ctx); err != context.DeadlineExceeded {
		t.Errorf("Run err = %v", err)
	}
}

func TestReactiveDefaults(t *testing.T) {
	ctl := New(nil, Config{MeasureLoad: func() float64 { return 0 }})
	if ctl.cfg.HighFraction != 0.95 || ctl.cfg.ScaleInStreak != 3 || ctl.cfg.Interval != time.Second {
		t.Errorf("defaults = %+v", ctl.cfg)
	}
}
