package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// TupleEscape catches zero-copy tuple views outliving their borrow scope. A
// storage.TupleView aliases the owning partition's arena bytes and is valid
// only inside the transaction (or scan callback) that obtained it: the
// executor may compact the arena between transactions, after which a
// retained view reads from recycled pages. The compiler cannot see this —
// the bytes stay reachable, so nothing crashes; the view just goes quietly
// stale — which is exactly the kind of invariant pstore-vet exists for.
//
// The check is flow-insensitive and intentionally conservative: it flags
// the store shapes through which a view can outlive its scope —
// assignment to a package-level variable (directly or through an index
// expression), a struct-field store, a channel send, and a goroutine
// argument — regardless of whether the destination provably survives the
// transaction. Returning a view (GetView itself does) and holding it in
// locals are fine. Deliberate retention sites annotate
// //pstore:ignore tupleescape with a rationale, like every other check.
// Views are matched by type name (TupleView), so fixtures can define a
// local stand-in type.
var TupleEscape = &Analyzer{
	Name: tupleescapeName,
	Doc:  "no TupleView stored, sent, or handed to a goroutine beyond its borrowing transaction",
	Applies: func(p *Package) bool {
		return true // self-scopes: only code touching a TupleView-typed value is examined
	},
	Run: runTupleEscape,
}

// isTupleViewType reports whether t is (or points to, or is a container
// of) a named type called TupleView.
func isTupleViewType(t types.Type) bool {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Slice:
			t = x.Elem()
		case *types.Array:
			t = x.Elem()
		case *types.Map:
			t = x.Elem()
		case *types.Named:
			return x.Obj().Name() == "TupleView"
		default:
			return false
		}
	}
}

// isPackageLevel reports whether the expression resolves to a package-scope
// object (directly, or through index expressions into one).
func isPackageLevel(p *Package, expr ast.Expr) bool {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			return obj != nil && obj.Parent() == p.Pkg.Scope()
		case *ast.IndexExpr:
			expr = x.X
		default:
			return false
		}
	}
}

func runTupleEscape(target *Package, all []*Package) []Diagnostic {
	var diags []Diagnostic
	report := func(pos ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     target.Fset.Position(pos.Pos()),
			Check:   tupleescapeName,
			Message: fmt.Sprintf(format, args...) + ": the view borrows partition arena bytes valid only within its transaction; copy with CopyCols or Row first",
		})
	}
	for _, f := range target.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					lhs = ast.Unparen(lhs)
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					if !isTupleViewType(target.Info.TypeOf(lhs)) {
						continue
					}
					switch l := lhs.(type) {
					case *ast.SelectorExpr:
						report(l, "TupleView stored in field %s escapes its transaction", l.Sel.Name)
					case *ast.Ident:
						if isPackageLevel(target, l) {
							report(l, "TupleView assigned to package-level %s escapes its transaction", l.Name)
						}
					case *ast.IndexExpr:
						if isPackageLevel(target, l.X) {
							report(l, "TupleView stored in package-level container escapes its transaction")
						}
					}
				}
			case *ast.SendStmt:
				if isTupleViewType(target.Info.TypeOf(x.Value)) {
					report(x, "TupleView sent across a channel escapes its transaction")
				}
			case *ast.GoStmt:
				for _, arg := range x.Call.Args {
					if isTupleViewType(target.Info.TypeOf(arg)) {
						report(arg, "TupleView handed to a goroutine escapes its transaction")
					}
				}
			}
			return true
		})
	}
	return diags
}
