package analysis

import (
	"go/build"
	"go/importer"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestLockOrderWitnessPaths pins the two PR 9 deadlock shapes: the
// Kill/Crash committer cycle and the Install rotation cycle must both be
// reported from the pre-fix fixture, each with a complete witness path —
// the acquire site, every call/callback hop with file:line, and the
// closing re-acquisition.
func TestLockOrderWitnessPaths(t *testing.T) {
	fset := token.NewFileSet()
	build.Default.CgoEnabled = false
	imp := importer.ForCompiler(fset, "source", nil)
	pkg := loadFixture(t, fset, imp,
		filepath.Join("testdata", "src", "lockorder_pos"), "fixture/lockorder_pos")

	diags := LockOrder.Run(pkg, []*Package{pkg})
	if len(diags) != 2 {
		t.Fatalf("want 2 findings (one per PR 9 shape), got %d: %v", len(diags), diags)
	}

	find := func(marker string) Diagnostic {
		t.Helper()
		for _, d := range diags {
			if strings.Contains(d.Message, marker) {
				return d
			}
		}
		t.Fatalf("no finding mentions %q in %v", marker, diags)
		return Diagnostic{}
	}

	// Shape 1: Kill holds r.mu across the Crash join; the committer
	// goroutine it waits out needs r.mu through the registered callback.
	kill := find("(*fixture.R).Kill")
	for _, want := range []string{
		"lock held across a blocking wait",
		"holds (*fixture.R).mu",
		"blocks in (*fixture.W).Crash",
		"blocking channel receive in (*fixture.W).Crash",
		"waits on goroutine (*fixture.W).committer",
		"runs registered callback func literal",
		"calls (*fixture.R).advanceDurable",
		"acquires (*fixture.R).mu in (*fixture.R).advanceDurable",
	} {
		if !strings.Contains(kill.Message, want) {
			t.Errorf("Kill witness missing %q:\n%s", want, kill.Message)
		}
	}

	// Shape 2: Install holds r.mu across Rotate, which runs the registered
	// callback inline on the same goroutine.
	install := find("(*fixture.R).Install")
	for _, want := range []string{
		"re-entrant acquisition",
		"holds (*fixture.R).mu",
		"across the call to (*fixture.W).Rotate",
		"runs registered callback func literal",
		"calls (*fixture.R).advanceDurable",
		"acquires (*fixture.R).mu in (*fixture.R).advanceDurable",
	} {
		if !strings.Contains(install.Message, want) {
			t.Errorf("Install witness missing %q:\n%s", want, install.Message)
		}
	}

	// Every hop in a witness must carry a file:line position.
	hopPos := regexp.MustCompile(`lockorder_pos\.go:\d+`)
	for _, d := range diags {
		if n := len(hopPos.FindAllString(d.Message, -1)); n < 4 {
			t.Errorf("witness has %d file:line hops, want >= 4:\n%s", n, d.Message)
		}
	}
}
