package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder is the interprocedural deadlock check: it builds a whole-program
// call graph (direct calls, method calls resolved through the static type,
// and function values registered as callbacks — a literal passed to
// Manager.FlushAsync or a WAL append gets a call edge from whatever context
// later invokes callbacks of that signature in the callee's package),
// propagates per-function lock-sets (which mutexes, identified by receiver
// field path like (*Replica).mu, a call may acquire), and adds waits-for
// edges for blocking joins: a call that transitively parks on a bare channel
// op or WaitGroup.Wait waits on the goroutines spawned by that package, and
// whatever those goroutines may lock is reachable from the wait. A cycle in
// the combined lock-order + waits-for graph is a potential deadlock and is
// reported with the full witness path (acquire chain, file:line per hop).
//
// This is the check that would have caught PR 9's two pipelined-callback
// deadlocks: Replica.Kill holding r.mu across Manager.Crash (which waits out
// the WAL committer, whose durable callbacks take r.mu), and InstallSnapshot
// holding r.mu across log rotation (which runs those callbacks on the caller
// itself — a same-goroutine re-entrant acquisition).
//
// Division of labor with lockdiscipline: sites that check already flags
// lexically (a direct channel op, time.Sleep, Submit/Call, or an engine
// executor Do/Stop in the very function holding the lock) are skipped here,
// so one hazard never double-reports. lockorder speaks up only where
// lockdiscipline is blind — the blocking or re-acquisition happens in a
// callee, possibly through a registered callback on another goroutine.
//
// Lock identity is static (one ID per declared mutex field or package-level
// var), so two instances of the same type share an ID: a finding means "this
// shape can deadlock if the instances alias or the goroutines rendezvous",
// and provably-disjoint instances are suppressed with //pstore:ignore
// lockorder and a written rationale.
var LockOrder = &Analyzer{
	Name: lockorderName,
	Doc:  "no cycles in the whole-program lock-order + waits-for graph (interprocedural deadlock detection)",
	Applies: func(p *Package) bool {
		return true // self-scopes: only functions holding a mutex across calls are examined
	},
	Run: runLockOrder,
}

// ---------------------------------------------------------------------------
// Whole-program graph
// ---------------------------------------------------------------------------

// fnode is one call-graph node: a declared function/method or a function
// literal.
type fnode struct {
	name string // display name: "(*Replica).Kill" or "func literal (replica.go:341)"
	pkg  *Package
	body *ast.BlockStmt

	acquires []acqSite   // direct mutex acquisitions
	calls    []callEdge  // synchronous call edges (direct, deferred, inline literal, registered callback)
	blocks   []blockSite // direct blocking primitives (bare chan op, WaitGroup/Cond Wait)
	dyn      []dynSite   // calls of function-typed values, resolved against the callback registry

	// localFns maps local variables to the function literal assigned to them
	// (cb := func(...){...}), so a callback that passes through a local on
	// its way to a registration site is still tracked.
	localFns map[types.Object]*ast.FuncLit

	// memoized closures
	mayAcquire map[string][]hop // lock ID → one witness call chain ending in the acquisition
	mayBlock   map[string]blockWitness
	inProgress bool
}

// dynSite is a call through a function value: the callee is unknown
// statically and is matched against registered callbacks by signature.
type dynSite struct {
	sig *types.Signature
	pos token.Pos
}

type acqSite struct {
	lock string
	pos  token.Pos
}

type callEdge struct {
	to   *fnode
	pos  token.Pos
	desc string // "" for a plain call, "registered callback" for async-registration edges
}

type blockSite struct {
	pos  token.Pos
	desc string // "<-ch receive", "ch <- send", "WaitGroup.Wait"
}

// hop is one step of a witness path.
type hop struct {
	what string
	pos  token.Position
}

func (h hop) String() string { return fmt.Sprintf("%s at %s:%d", h.what, posBase(h.pos), h.pos.Line) }

func posBase(p token.Position) string {
	if i := strings.LastIndexByte(p.Filename, '/'); i >= 0 {
		return p.Filename[i+1:]
	}
	return p.Filename
}

func renderPath(path []hop) string {
	parts := make([]string, len(path))
	for i, h := range path {
		parts[i] = h.String()
	}
	return strings.Join(parts, "; ")
}

// blockWitness records that a function can synchronously reach a blocking
// primitive living in package pkgPath.
type blockWitness struct {
	pkgPath string
	path    []hop
}

// lockGraph is the whole-program view, built once per loaded package set.
type lockGraph struct {
	fset     *token.FileSet
	decls    map[*types.Func]*fnode
	lits     map[*ast.FuncLit]*fnode
	spawns   map[string][]spawnSite // package path → goroutine roots spawned by that package
	registry map[string][]*fnode    // package path → callbacks registered into it (with signatures)
	regSigs  map[*fnode]*types.Signature
}

type spawnSite struct {
	root *fnode
	pos  token.Pos
}

// lockGraphMemo caches the graph across the driver's per-package Run calls.
// The driver is single-threaded and passes the same slice for a whole run.
var lockGraphMemo struct {
	key []*Package
	g   *lockGraph
}

func lockGraphFor(all []*Package) *lockGraph {
	if lockGraphMemo.g != nil && len(lockGraphMemo.key) == len(all) &&
		(len(all) == 0 || lockGraphMemo.key[0] == all[0]) {
		return lockGraphMemo.g
	}
	g := buildLockGraph(all)
	lockGraphMemo.key = all
	lockGraphMemo.g = g
	return g
}

func buildLockGraph(all []*Package) *lockGraph {
	g := &lockGraph{
		decls:    make(map[*types.Func]*fnode),
		lits:     make(map[*ast.FuncLit]*fnode),
		spawns:   make(map[string][]spawnSite),
		registry: make(map[string][]*fnode),
		regSigs:  make(map[*fnode]*types.Signature),
	}
	if len(all) > 0 {
		g.fset = all[0].Fset
	}
	// Pass 1: create nodes for every declared function and every literal.
	for _, p := range all {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				n := &fnode{name: funcDisplayName(p, fd), pkg: p, body: fd.Body}
				if obj != nil {
					g.decls[obj] = n
				}
				g.collectLiterals(p, fd.Body)
			}
		}
	}
	// Pass 2: populate edges, acquisitions, spawns, registrations, blocks.
	for _, p := range all {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, _ := p.Info.Defs[fd.Name].(*types.Func); obj != nil {
					g.populate(g.decls[obj], p, fd.Body)
				}
			}
		}
	}
	// Pass 3: resolve dynamic calls of function-typed values to the callbacks
	// registered into the calling package with an identical signature.
	g.resolveDynamicCalls(all)
	return g
}

// collectLiterals creates a node per function literal under root (including
// nested ones).
func (g *lockGraph) collectLiterals(p *Package, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			pos := p.Fset.Position(lit.Pos())
			g.lits[lit] = &fnode{
				name: fmt.Sprintf("func literal (%s:%d)", posBase(pos), pos.Line),
				pkg:  p,
				body: lit.Body,
			}
		}
		return true
	})
}

// nodeForExpr resolves a function-valued expression to its graph node: a
// literal, a declared function, a method value, or a local variable a
// literal was assigned to inside the enclosing function (from's localFns).
func (g *lockGraph) nodeForExpr(p *Package, from *fnode, e ast.Expr) *fnode {
	switch x := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return g.lits[x]
	case *ast.Ident:
		if f, ok := p.Info.Uses[x].(*types.Func); ok {
			return g.decls[f]
		}
		if from != nil && from.localFns != nil {
			if obj, ok := p.Info.Uses[x]; ok {
				if lit, ok := from.localFns[obj]; ok {
					return g.lits[lit]
				}
			}
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[x.Sel].(*types.Func); ok {
			return g.decls[f]
		}
	}
	return nil
}

// populate walks one function body (not descending into literals, which are
// their own nodes and get populated recursively).
func (g *lockGraph) populate(n *fnode, p *Package, body *ast.BlockStmt) {
	if n == nil {
		return
	}
	// First pass: record local `cb := func(...){...}` assignments so a
	// callback passing through a local still resolves at its use site.
	ast.Inspect(body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj != nil {
				if n.localFns == nil {
					n.localFns = make(map[types.Object]*ast.FuncLit)
				}
				n.localFns[obj] = lit
			}
		}
		return true
	})
	var walk func(node ast.Node)
	walk = func(root ast.Node) {
		walkStack(root, func(node ast.Node, stack []ast.Node) bool {
			switch x := node.(type) {
			case *ast.FuncLit:
				if ln := g.lits[x]; ln != nil {
					ln.localFns = n.localFns // literals see the enclosing function's locals
					g.populate(ln, p, x.Body)
				}
				return false // literal bodies are separate nodes
			case *ast.GoStmt:
				// The spawned function is a goroutine root of this package,
				// not a synchronous callee. Its arguments still evaluate here.
				if root := g.nodeForExpr(p, n, x.Call.Fun); root != nil {
					g.spawns[p.Path] = append(g.spawns[p.Path], spawnSite{root: root, pos: x.Pos()})
				}
				for _, a := range x.Call.Args {
					walk(a)
					g.registerCallbackArg(p, n, nil, a)
				}
				return false
			case *ast.CallExpr:
				g.addCall(n, p, x)
				return true
			case *ast.SendStmt:
				if op, ok := blockingChanOp(p.Info, node, stack); ok {
					n.blocks = append(n.blocks, blockSite{pos: op.pos, desc: "blocking channel send"})
				}
				return true
			case *ast.UnaryExpr:
				if op, ok := blockingChanOp(p.Info, node, stack); ok {
					n.blocks = append(n.blocks, blockSite{pos: op.pos, desc: "blocking channel receive"})
				}
				return true
			}
			return true
		})
	}
	walk(body)
}

// addCall records one call expression inside n: a lock acquisition, a
// blocking sync primitive, a static call edge, and any function-valued
// arguments as callback registrations.
func (g *lockGraph) addCall(n *fnode, p *Package, call *ast.CallExpr) {
	if recv, acq, _ := mutexLockKind(p, call); acq {
		if id, ok := resolveLockExpr(p, recv); ok {
			n.acquires = append(n.acquires, acqSite{lock: id, pos: call.Pos()})
		}
		return
	}
	callee := calleeFunc(p.Info, call)
	if callee != nil {
		if pkg, typ, ok := namedReceiver(callee); ok && pkg == "sync" &&
			(typ == "WaitGroup" || typ == "Cond") && callee.Name() == "Wait" {
			n.blocks = append(n.blocks, blockSite{pos: call.Pos(), desc: typ + ".Wait"})
			return
		}
	}
	var target *fnode
	if callee != nil {
		target = g.decls[callee]
	} else if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		target = g.lits[lit]
	} else {
		// Dynamic call of a function value: resolved in pass 3 against the
		// callbacks registered into this package.
		if sig := funcSigOf(p, call.Fun); sig != nil {
			n.dyn = append(n.dyn, dynSite{sig: sig, pos: call.Pos()})
		}
	}
	if target != nil {
		n.calls = append(n.calls, callEdge{to: target, pos: call.Pos()})
	}
	for _, a := range call.Args {
		g.registerCallbackArg(p, n, callee, a)
		if cbn := g.nodeForExpr(p, n, a); cbn != nil && target != nil {
			// The callee may invoke its callback synchronously (error paths,
			// in-memory fast paths) — a call edge, labeled so witnesses read
			// as what they are.
			target.calls = append(target.calls, callEdge{to: cbn, pos: a.Pos(), desc: "registered callback"})
		}
	}
}

// registerCallbackArg records a function value passed as an argument into the
// callee's package registry: whoever in that package later invokes a stored
// function value of this signature may be invoking it.
func (g *lockGraph) registerCallbackArg(p *Package, from *fnode, callee *types.Func, arg ast.Expr) {
	cbn := g.nodeForExpr(p, from, arg)
	if cbn == nil {
		return
	}
	sig := funcSigOf(p, arg)
	if sig == nil {
		return
	}
	pkgPath := p.Path
	if callee != nil && callee.Pkg() != nil {
		pkgPath = callee.Pkg().Path()
	}
	g.registry[pkgPath] = append(g.registry[pkgPath], cbn)
	g.regSigs[cbn] = sig
}

func funcSigOf(p *Package, e ast.Expr) *types.Signature {
	tv, ok := p.Info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// resolveDynamicCalls turns each dynamic call site into edges to every
// callback of identical signature (types.Identical — parameter names are
// irrelevant) registered into the calling package.
func (g *lockGraph) resolveDynamicCalls(all []*Package) {
	resolve := func(n *fnode) {
		for _, d := range n.dyn {
			seen := map[*fnode]bool{}
			for _, cb := range g.registry[n.pkg.Path] {
				if seen[cb] {
					continue
				}
				if sig := g.regSigs[cb]; sig != nil && types.Identical(sig, d.sig) {
					seen[cb] = true
					n.calls = append(n.calls, callEdge{to: cb, pos: d.pos, desc: "registered callback"})
				}
			}
		}
	}
	for _, n := range g.decls {
		resolve(n)
	}
	for _, n := range g.lits {
		resolve(n)
	}
}

// ---------------------------------------------------------------------------
// Closures: may-acquire and may-block
// ---------------------------------------------------------------------------

// mayAcquireOf returns every lock the function may acquire on a synchronous
// call path from its entry, with one witness chain per lock.
func (g *lockGraph) mayAcquireOf(n *fnode) map[string][]hop {
	if n == nil {
		return nil
	}
	if n.mayAcquire != nil {
		return n.mayAcquire
	}
	if n.inProgress {
		return nil // recursion: the fixpoint under-approximates, fine for a witness search
	}
	n.inProgress = true
	out := make(map[string][]hop)
	for _, a := range n.acquires {
		if _, ok := out[a.lock]; !ok {
			out[a.lock] = []hop{{what: "acquires " + a.lock + " in " + n.name, pos: g.fset.Position(a.pos)}}
		}
	}
	for _, e := range n.calls {
		if e.to == nil {
			continue
		}
		sub := g.mayAcquireOf(e.to)
		for lock, path := range sub {
			if _, ok := out[lock]; ok {
				continue
			}
			what := "calls " + e.to.name
			if e.desc != "" {
				what = "runs " + e.desc + " " + e.to.name
			}
			out[lock] = append([]hop{{what: what + " from " + n.name, pos: g.fset.Position(e.pos)}}, path...)
		}
	}
	n.inProgress = false
	n.mayAcquire = out
	return out
}

// mayBlockOf returns, per package, one witness chain from the function's
// entry to a blocking primitive (bare channel op, WaitGroup/Cond Wait)
// located in that package.
func (g *lockGraph) mayBlockOf(n *fnode) map[string]blockWitness {
	if n == nil {
		return nil
	}
	if n.mayBlock != nil {
		return n.mayBlock
	}
	if n.inProgress {
		return nil
	}
	n.inProgress = true
	out := make(map[string]blockWitness)
	for _, b := range n.blocks {
		if _, ok := out[n.pkg.Path]; !ok {
			out[n.pkg.Path] = blockWitness{
				pkgPath: n.pkg.Path,
				path:    []hop{{what: b.desc + " in " + n.name, pos: g.fset.Position(b.pos)}},
			}
		}
	}
	for _, e := range n.calls {
		if e.to == nil {
			continue
		}
		for pkgPath, w := range g.mayBlockOf(e.to) {
			if _, ok := out[pkgPath]; ok {
				continue
			}
			out[pkgPath] = blockWitness{
				pkgPath: pkgPath,
				path: append([]hop{{what: "calls " + e.to.name + " from " + n.name, pos: g.fset.Position(e.pos)}},
					w.path...),
			}
		}
	}
	n.inProgress = false
	n.mayBlock = out
	return out
}

// ---------------------------------------------------------------------------
// Lock identity
// ---------------------------------------------------------------------------

// resolveLockExpr names the mutex behind a Lock()/RLock() receiver
// expression with a static identity: "(pkg.Type).field" for a struct field,
// "pkg.var" for a package-level mutex, or a position-derived ID for locals.
func resolveLockExpr(p *Package, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return fmt.Sprintf("(*%s.%s).%s", named.Obj().Pkg().Name(), named.Obj().Name(), sel.Obj().Name()), true
			}
		}
		if obj, ok := p.Info.Uses[x.Sel]; ok {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && !v.IsField() {
				return v.Pkg().Name() + "." + v.Name(), true
			}
		}
	case *ast.Ident:
		if obj, ok := p.Info.Uses[x].(*types.Var); ok {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name(), true
			}
			pos := p.Fset.Position(obj.Pos())
			return fmt.Sprintf("%s (%s:%d)", x.Name, posBase(pos), pos.Line), true
		}
	}
	// A mutex reached through an embedded field (x.Lock() with x a named
	// struct embedding sync.Mutex): identify by the embedding type.
	if tv, ok := p.Info.Types[ast.Unparen(e)]; ok && tv.Type != nil {
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return fmt.Sprintf("(*%s.%s)", named.Obj().Pkg().Name(), named.Obj().Name()), true
		}
	}
	return "", false
}

func funcDisplayName(p *Package, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return "(*" + p.Name + "." + id.Name + ")." + fd.Name.Name
		}
	}
	return p.Name + "." + fd.Name.Name
}

// ---------------------------------------------------------------------------
// The analysis: held-set scan + cycle detection
// ---------------------------------------------------------------------------

// orderEdge is one L1 → L2 edge of the combined graph.
type orderEdge struct {
	from, to string
	waits    bool // true: waits-for edge (cross-goroutine), false: acquire-under-lock
	witness  string
	pos      token.Position // entry site (statement holding `from`), for attribution
}

func runLockOrder(target *Package, all []*Package) []Diagnostic {
	g := lockGraphFor(all)
	var diags []Diagnostic
	var edges []orderEdge

	scanBody := func(fnName string, body *ast.BlockStmt) {
		s := &lockScanner{g: g, p: target, fn: fnName, diags: &diags, edges: &edges}
		s.stmts(body.List, map[string]token.Pos{})
	}
	for _, f := range target.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanBody(funcDisplayName(target, fd), fd.Body)
			// Literals are scanned as their own contexts too (goroutine
			// bodies, deferred cleanups): a lock taken inside one is held
			// across whatever the literal calls.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					if ln := g.lits[lit]; ln != nil {
						scanBody(ln.name, lit.Body)
					}
					return false
				}
				return true
			})
		}
	}
	diags = append(diags, cycleDiagnostics(target, edges)...)
	return diags
}

// lockScanner walks statement lists lexically, maintaining the held-lock set
// exactly like lockdiscipline, but consults the whole-program graph at each
// call made under a lock.
type lockScanner struct {
	g     *lockGraph
	p     *Package
	fn    string
	diags *[]Diagnostic
	edges *[]orderEdge
	seen  map[string]bool
}

func (s *lockScanner) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, st := range list {
		switch x := st.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if recv, acq, rel := mutexLockKind(s.p, call); acq || rel {
					id, ok := resolveLockExpr(s.p, recv)
					if !ok {
						continue
					}
					if acq {
						s.noteAcquire(held, id, call.Pos())
						held[id] = call.Pos()
					} else {
						delete(held, id)
					}
					continue
				}
			}
			if len(held) > 0 {
				s.checkStmt(st, held)
			}
		case *ast.DeferStmt:
			continue // defer mu.Unlock(): lock held to end; other defers run post-body
		case *ast.GoStmt:
			continue // spawned goroutine does not hold the lock
		case *ast.BlockStmt:
			s.stmts(x.List, copyHeldPos(held))
		case *ast.IfStmt:
			if len(held) > 0 && x.Init != nil {
				s.checkStmt(x.Init, held)
			}
			s.stmts(x.Body.List, copyHeldPos(held))
			if x.Else != nil {
				s.stmts([]ast.Stmt{x.Else}, copyHeldPos(held))
			}
		case *ast.ForStmt:
			s.stmts(x.Body.List, copyHeldPos(held))
		case *ast.RangeStmt:
			s.stmts(x.Body.List, copyHeldPos(held))
		case *ast.SwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					s.stmts(cc.Body, copyHeldPos(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					s.stmts(cc.Body, copyHeldPos(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					s.stmts(cc.Body, copyHeldPos(held))
				}
			}
		case *ast.LabeledStmt:
			s.stmts([]ast.Stmt{x.Stmt}, held)
		default:
			if len(held) > 0 {
				s.checkStmt(st, held)
			}
		}
	}
}

func copyHeldPos(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// noteAcquire records L1 → L2 order edges (and re-entrant self-cycles) for a
// direct second acquisition under held locks.
func (s *lockScanner) noteAcquire(held map[string]token.Pos, id string, pos token.Pos) {
	p2 := s.g.fset.Position(pos)
	for l1, p1 := range held {
		w := fmt.Sprintf("%s acquires %s at %s:%d while holding %s (acquired %s:%d)",
			s.fn, id, posBase(p2), p2.Line, l1, posBase(s.g.fset.Position(p1)), s.g.fset.Position(p1).Line)
		if l1 == id {
			*s.diags = append(*s.diags, Diagnostic{
				Pos:     p2,
				Check:   lockorderName,
				Message: "potential deadlock (re-entrant acquisition): " + w + "; sync mutexes are not re-entrant",
			})
			continue
		}
		*s.edges = append(*s.edges, orderEdge{from: l1, to: id, witness: w, pos: p2})
	}
}

// checkStmt inspects one statement executed with locks held: every call is
// checked for transitive acquisitions (lock-order edges, re-entrant cycles)
// and transitive blocking (waits-for edges through spawned goroutines).
func (s *lockScanner) checkStmt(st ast.Stmt, held map[string]token.Pos) {
	walkStack(st, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, acq, _ := mutexLockKind(s.p, call); acq {
			if id, ok := resolveLockExpr(s.p, recv); ok {
				s.noteAcquire(held, id, call.Pos())
			}
			return true
		}
		callee := calleeFunc(s.p.Info, call)
		// Subsumption: lockdiscipline already flags these lexically; one
		// hazard, one report.
		if isPkgFunc(callee, "time", "Sleep") {
			return true
		}
		if _, bad := lockHostileCall(callee); bad {
			return true
		}
		var target *fnode
		if callee != nil {
			target = s.g.decls[callee]
		} else if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			target = s.g.lits[lit]
		}
		if target == nil {
			return true
		}
		s.checkCall(call, target, held)
		return true
	})
}

// checkCall applies the interprocedural rules to one call made under locks.
// Findings and edges are emitted in sorted (l1, l2) order, and only the
// first witness per (call site, l1, l2, kind) survives — the same hazard
// reachable through several goroutines or paths is one report.
func (s *lockScanner) checkCall(call *ast.CallExpr, target *fnode, held map[string]token.Pos) {
	pos := s.g.fset.Position(call.Pos())
	heldIDs := make([]string, 0, len(held))
	for l1 := range held {
		heldIDs = append(heldIDs, l1)
	}
	sort.Strings(heldIDs)

	// Rule 1 — acquisitions on the synchronous path: held L1, callee may
	// acquire L2. L2 == L1 is a same-goroutine re-entrant deadlock (the
	// InstallSnapshot-under-rotation shape); otherwise a lock-order edge.
	mayAcq := s.g.mayAcquireOf(target)
	acqLocks := sortedKeys(mayAcq)
	for _, l2 := range acqLocks {
		path := mayAcq[l2]
		for _, l1 := range heldIDs {
			if !s.firstFor(pos, l1, l2, "acq") {
				continue
			}
			ap := s.g.fset.Position(held[l1])
			prefix := fmt.Sprintf("%s holds %s (acquired %s:%d) across the call to %s at %s:%d: ",
				s.fn, l1, posBase(ap), ap.Line, target.name, posBase(pos), pos.Line)
			if l1 == l2 {
				*s.diags = append(*s.diags, Diagnostic{
					Pos:     pos,
					Check:   lockorderName,
					Message: "potential deadlock (re-entrant acquisition): " + prefix + renderPath(path),
				})
				continue
			}
			*s.edges = append(*s.edges, orderEdge{
				from: l1, to: l2,
				witness: prefix + renderPath(path),
				pos:     pos,
			})
		}
	}

	// Rule 2 — waits-for: the callee can park on a blocking primitive in
	// package P, which means it may be waiting out a goroutine P spawned;
	// whatever that goroutine (transitively, callbacks included) can acquire
	// is reachable from the wait. Held L1 with the goroutine able to take L1
	// is the Kill/Crash committer shape.
	mayBlk := s.g.mayBlockOf(target)
	for _, pkgPath := range sortedKeys(mayBlk) {
		bw := mayBlk[pkgPath]
		for _, sp := range s.g.spawns[bw.pkgPath] {
			spPos := s.g.fset.Position(sp.pos)
			rootAcq := s.g.mayAcquireOf(sp.root)
			for _, l2 := range sortedKeys(rootAcq) {
				path := rootAcq[l2]
				for _, l1 := range heldIDs {
					if !s.firstFor(pos, l1, l2, "wait") {
						continue
					}
					ap := s.g.fset.Position(held[l1])
					witness := fmt.Sprintf(
						"%s holds %s (acquired %s:%d) and blocks in %s: %s; that waits on goroutine %s (spawned %s:%d), which may need %s: %s",
						s.fn, l1, posBase(ap), ap.Line, target.name, renderPath(bw.path),
						sp.root.name, posBase(spPos), spPos.Line, l2, renderPath(path))
					if l1 == l2 {
						*s.diags = append(*s.diags, Diagnostic{
							Pos:     pos,
							Check:   lockorderName,
							Message: "potential deadlock (lock held across a blocking wait): " + witness,
						})
						continue
					}
					*s.edges = append(*s.edges, orderEdge{
						from: l1, to: l2, waits: true,
						witness: witness,
						pos:     pos,
					})
				}
			}
		}
	}
}

// firstFor reports whether this (site, l1, l2, kind) combination is new,
// recording it; duplicates collapse to the first (deterministic) witness.
func (s *lockScanner) firstFor(pos token.Position, l1, l2, kind string) bool {
	key := fmt.Sprintf("%s:%d:%d|%s|%s|%s", pos.Filename, pos.Line, pos.Column, l1, l2, kind)
	if s.seen == nil {
		s.seen = make(map[string]bool)
	}
	if s.seen[key] {
		return false
	}
	s.seen[key] = true
	return true
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Cycle detection over collected order edges
// ---------------------------------------------------------------------------

// cycleDiagnostics reports cycles among distinct locks (L1 → L2 → … → L1).
// Self-loops are reported at discovery by the scanner; here only the
// target package's edges can open a cycle, so each cycle is attributed to
// exactly one package and reported once.
func cycleDiagnostics(target *Package, edges []orderEdge) []Diagnostic {
	if len(edges) == 0 {
		return nil
	}
	// Adjacency with one representative (first-seen) edge per (from, to).
	type key struct{ from, to string }
	rep := make(map[key]orderEdge)
	adj := make(map[string][]string)
	for _, e := range edges {
		k := key{e.from, e.to}
		if _, ok := rep[k]; !ok {
			rep[k] = e
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	for _, next := range adj {
		sort.Strings(next)
	}
	var diags []Diagnostic
	seenCycle := make(map[string]bool)
	// BFS from each edge of the target package looking for a path back.
	for _, e := range edges {
		if posPkgDir(e.pos) != target.Dir {
			continue
		}
		path := shortestPath(adj, e.to, e.from)
		if path == nil {
			continue
		}
		// Cycle: e.from -> e.to -> ... -> e.from.
		cycleLocks := append([]string{e.from}, path...)
		sig := strings.Join(normalizeCycle(cycleLocks), "→")
		if seenCycle[sig] {
			continue
		}
		seenCycle[sig] = true
		var parts []string
		parts = append(parts, e.witness)
		for i := 0; i+1 < len(cycleLocks); i++ {
			k := key{cycleLocks[i], cycleLocks[i+1]}
			if i == 0 {
				continue // e itself
			}
			if r, ok := rep[k]; ok {
				parts = append(parts, r.witness)
			}
		}
		diags = append(diags, Diagnostic{
			Pos:   e.pos,
			Check: lockorderName,
			Message: fmt.Sprintf("potential deadlock (lock-order cycle %s): %s",
				strings.Join(cycleLocks, " → "), strings.Join(parts, " || ")),
		})
	}
	return diags
}

func posPkgDir(p token.Position) string {
	if i := strings.LastIndexByte(p.Filename, '/'); i >= 0 {
		return p.Filename[:i]
	}
	return ""
}

// shortestPath returns the node sequence from → … → to (inclusive of both),
// or nil if unreachable.
func shortestPath(adj map[string][]string, from, to string) []string {
	if from == to {
		return []string{from}
	}
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if _, ok := prev[next]; ok {
				continue
			}
			prev[next] = cur
			if next == to {
				var path []string
				for n := to; ; n = prev[n] {
					path = append([]string{n}, path...)
					if n == from {
						return path
					}
				}
			}
			queue = append(queue, next)
		}
	}
	return nil
}

// normalizeCycle rotates a cycle's lock list to start at its smallest
// element so the same cycle found from two entry edges dedupes.
func normalizeCycle(locks []string) []string {
	if len(locks) <= 1 {
		return locks
	}
	body := locks[:len(locks)-1] // drop the closing repeat if present
	if locks[0] != locks[len(locks)-1] {
		body = locks
	}
	min := 0
	for i := range body {
		if body[i] < body[min] {
			min = i
		}
	}
	out := make([]string, 0, len(body))
	out = append(out, body[min:]...)
	out = append(out, body[:min]...)
	return out
}
