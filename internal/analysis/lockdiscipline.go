package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockDiscipline catches lock-ordered deadlocks before they ship. The
// cluster coordinator holds c.mu while rewiring routing; partition storage
// guards its maps with a mutex the executor loop also takes. If code sends
// on a channel, submits work to an executor, or issues an RPC while one of
// those mutexes is held, it couples the mutex to progress of another
// goroutine — and that goroutine may need the same mutex (the classic
// submit-under-lock deadlock: executor busy → Submit blocks → mutex never
// released → executor's next callback needs the mutex).
//
// The check tracks mutex acquisition lexically inside each function:
// x.Lock()/x.RLock() on a sync.Mutex/RWMutex marks x held until the
// matching Unlock in the same statement list (a deferred Unlock holds to
// the end of the function). While any mutex is held it reports:
//
//   - channel sends/receives that can block (not a select arm with an
//     alternative)
//   - time.Sleep
//   - executor submissions and RPCs: methods named Submit or Call on any
//     module type, and Do/Stop on the engine executor
//
// goroutines launched under the lock are skipped — they run without it.
//
// Division of labor with lockorder: this check is deliberately lexical and
// intra-procedural — it flags the blocking operation it can see in the
// same function body, with no call graph and no false-negative anxiety.
// lockorder owns everything that crosses a call boundary (a callee that
// blocks or re-acquires, callbacks registered on another subsystem, joins
// on goroutines that need the held lock) and skips the sites this check
// already reports, so one hazard never yields two findings.
var LockDiscipline = &Analyzer{
	Name: lockdisciplineName,
	Doc:  "no blocking channel ops, sleeps, executor submissions, or RPCs while a mutex is held",
	Applies: func(p *Package) bool {
		return true // self-scopes: only functions that take a mutex are examined
	},
	Run: runLockDiscipline,
}

func runLockDiscipline(target *Package, all []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range target.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanLockedStmts(target, fd.Body.List, map[string]bool{}, funcDeclName(fd), &diags)
		}
	}
	return diags
}

// mutexLockKind classifies a call as acquiring or releasing a
// sync.Mutex/RWMutex and returns the lock's receiver expression.
func mutexLockKind(p *Package, call *ast.CallExpr) (recv ast.Expr, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	callee := calleeFunc(p.Info, call)
	pkg, typ, ok := namedReceiver(callee)
	if !ok || pkg != "sync" || (typ != "Mutex" && typ != "RWMutex") {
		return nil, false, false
	}
	switch callee.Name() {
	case "Lock", "RLock":
		return sel.X, true, false
	case "Unlock", "RUnlock":
		return sel.X, false, true
	}
	return nil, false, false
}

// scanLockedStmts walks one statement list in order, maintaining the set of
// held mutexes (keyed by the receiver expression's source form). Nested
// control flow is scanned with a copy of the held set: a Lock inside an if
// branch does not leak past the branch, matching how the repo structures
// its critical sections.
func scanLockedStmts(p *Package, stmts []ast.Stmt, held map[string]bool, fn string, diags *[]Diagnostic) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if recv, acq, rel := mutexLockKind(p, call); acq || rel {
					key := types.ExprString(recv)
					if acq {
						held[key] = true
					} else {
						delete(held, key)
					}
					continue
				}
			}
			if len(held) > 0 {
				checkLockedStmt(p, s, held, fn, diags)
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() pins the lock to function exit: the lock stays
			// held for the remaining statements, which is exactly what the
			// scan models by leaving `held` untouched. Other deferred work
			// runs after the explicit statements; skip it.
			continue
		case *ast.GoStmt:
			// A goroutine spawned under the lock does not hold it.
			continue
		case *ast.BlockStmt:
			scanLockedStmts(p, x.List, copyHeld(held), fn, diags)
		case *ast.IfStmt:
			if len(held) > 0 && x.Init != nil {
				checkLockedStmt(p, x.Init, held, fn, diags)
			}
			scanLockedStmts(p, x.Body.List, copyHeld(held), fn, diags)
			if x.Else != nil {
				scanLockedStmts(p, []ast.Stmt{x.Else}, copyHeld(held), fn, diags)
			}
		case *ast.ForStmt:
			scanLockedStmts(p, x.Body.List, copyHeld(held), fn, diags)
		case *ast.RangeStmt:
			scanLockedStmts(p, x.Body.List, copyHeld(held), fn, diags)
		case *ast.SwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLockedStmts(p, cc.Body, copyHeld(held), fn, diags)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLockedStmts(p, cc.Body, copyHeld(held), fn, diags)
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanLockedStmts(p, cc.Body, copyHeld(held), fn, diags)
				}
			}
		case *ast.LabeledStmt:
			scanLockedStmts(p, []ast.Stmt{x.Stmt}, held, fn, diags)
		default:
			if len(held) > 0 {
				checkLockedStmt(p, s, held, fn, diags)
			}
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// checkLockedStmt reports blocking operations inside one simple statement
// executed with a mutex held. Function literals are skipped — they run when
// called, usually after the critical section.
func checkLockedStmt(p *Package, s ast.Stmt, held map[string]bool, fn string, diags *[]Diagnostic) {
	locks := heldNames(held)
	walkStack(s, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			callee := calleeFunc(p.Info, call)
			if isPkgFunc(callee, "time", "Sleep") {
				*diags = append(*diags, Diagnostic{
					Pos:     p.Fset.Position(call.Pos()),
					Check:   lockdisciplineName,
					Message: fmt.Sprintf("time.Sleep in %s while holding %s: release the lock before waiting", fn, locks),
				})
				return true
			}
			if what, bad := lockHostileCall(callee); bad {
				*diags = append(*diags, Diagnostic{
					Pos:     p.Fset.Position(call.Pos()),
					Check:   lockdisciplineName,
					Message: fmt.Sprintf("%s in %s while holding %s: the callee can block on another goroutine that may need the same lock", what, fn, locks),
				})
				return true
			}
			return true
		}
		if op, ok := blockingChanOp(p.Info, n, stack); ok {
			kind := "receive"
			if op.send {
				kind = "send"
			}
			*diags = append(*diags, Diagnostic{
				Pos:     p.Fset.Position(op.pos),
				Check:   lockdisciplineName,
				Message: fmt.Sprintf("blocking channel %s in %s while holding %s: move the channel op outside the critical section", kind, fn, locks),
			})
		}
		return true
	})
}

// lockHostileCall reports method calls that hand work to (or wait on)
// another goroutine: executor submissions and RPCs. Submit/Call are flagged
// on any named receiver; the engine executor's Do/Stop also block on the
// run loop.
func lockHostileCall(callee *types.Func) (string, bool) {
	pkg, typ, ok := namedReceiver(callee)
	if !ok {
		return "", false
	}
	name := callee.Name()
	switch name {
	case "Submit", "Call":
		return fmt.Sprintf("%s.%s call", typ, name), true
	case "Do", "Stop":
		if pkg == "pstore/internal/engine" && typ == "Executor" {
			return fmt.Sprintf("Executor.%s call", name), true
		}
	}
	return "", false
}

// heldNames renders the held set for messages, in stable order.
func heldNames(held map[string]bool) string {
	// Collect and sort so diagnostics are deterministic.
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	if len(names) > 1 {
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
