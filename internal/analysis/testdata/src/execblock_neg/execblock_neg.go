// Negative fixture: executor-path code that waits and replies correctly —
// cancellable selects, buffered handoffs behind select alternatives, pure
// computation in procedures. No diagnostics expected.
package fixture

import "time"

type Txn struct {
	out map[string]string
}

// run paces with a timer inside a select that a quit channel can cancel.
//
//pstore:executor
func run(tasks chan func(), quit chan struct{}) {
	timer := time.NewTimer(time.Millisecond)
	for fn := range tasks {
		fn()
		timer.Reset(time.Millisecond)
		select {
		case <-timer.C:
		case <-quit:
			return
		}
	}
}

// GetItem only touches the transaction's in-memory state.
func GetItem(tx *Txn) error {
	if tx.out == nil {
		tx.out = make(map[string]string)
	}
	tx.out["v"] = "1"
	return nil
}

// notify uses a select with default: the send cannot wedge the executor.
func notify(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

// PutItem reaches notify, which is non-blocking.
func PutItem(tx *Txn) error {
	notify(make(chan int, 1))
	return nil
}
