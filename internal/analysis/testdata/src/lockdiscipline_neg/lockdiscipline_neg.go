// Negative fixture: critical sections that only touch shared state, with
// channel work outside the lock (or behind a non-blocking select). No
// diagnostics expected.
package fixture

import "sync"

type Q struct {
	mu   sync.Mutex
	vals map[string]int
	ch   chan int
}

// Set confines the lock to the map write.
func (q *Q) Set(k string, v int) {
	q.mu.Lock()
	q.vals[k] = v
	q.mu.Unlock()
	q.ch <- v
}

// TryNotify uses a select with default: it cannot block under the lock.
func (q *Q) TryNotify(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.vals["last"] = v
	select {
	case q.ch <- v:
	default:
	}
}

// Spawn launches the blocking work on a goroutine that does not hold q.mu.
func (q *Q) Spawn(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.vals["spawned"] = v
	go func() {
		q.ch <- v
	}()
}
