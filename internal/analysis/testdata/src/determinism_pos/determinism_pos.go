// Positive fixture: map iteration order leaks into encoder output.
package fixture

//pstore:deterministic

// Encode appends key/value bytes in map iteration order — the codec bug
// this check exists to catch.
func Encode(m map[string]string) []byte {
	var buf []byte
	for k, v := range m {
		buf = append(buf, k...)
		buf = append(buf, v...)
	}
	return buf
}

// Join builds a string in iteration order.
func Join(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}
