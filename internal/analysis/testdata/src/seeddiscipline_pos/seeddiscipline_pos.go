// Positive fixture: bare global randomness and wall-clock reads in a
// chaos-replayed (seeded) package.
package fixture

//pstore:seeded

import (
	"math/rand"
	"time"
)

// Backoff draws from the process-global generator and reads the wall clock.
func Backoff() time.Duration {
	if rand.Intn(2) == 0 {
		return 0
	}
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
