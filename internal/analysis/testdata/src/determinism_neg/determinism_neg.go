// Negative fixture: deterministic map handling — the collect-sort idiom,
// order-insensitive folds, and map-to-map copies. No diagnostics expected.
package fixture

//pstore:deterministic

import "sort"

// EncodeSorted is the canonical fix: collect keys, sort, iterate the slice.
func EncodeSorted(m map[string]string) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	for _, k := range keys {
		buf = append(buf, k...)
		buf = append(buf, m[k]...)
	}
	return buf
}

// Invert writes into another map: order cannot be observed.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Sum is a commutative fold: order-insensitive.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
