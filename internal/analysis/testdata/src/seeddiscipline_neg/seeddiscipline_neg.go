// Negative fixture: a seeded package drawing everything from its pinned
// source, waiting on cancellable timers. No diagnostics expected.
package fixture

//pstore:seeded

import (
	"math/rand"
	"time"
)

type injector struct {
	rng *rand.Rand
}

// newInjector builds the seeded source — the allowed constructors.
func newInjector(seed int64) *injector {
	return &injector{rng: rand.New(rand.NewSource(seed))}
}

// roll draws from the instance generator, never the global one.
func (in *injector) roll() float64 {
	return in.rng.Float64()
}

// wait is cancellable and carries no entropy.
func wait(d time.Duration, quit chan struct{}) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-quit:
	}
}
