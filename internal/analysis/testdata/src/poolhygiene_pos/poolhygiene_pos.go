// Positive fixture: pooled values touched after returning to their pool.
package fixture

import "sync"

type Req struct{ ID int }

var pool = sync.Pool{New: func() any { return new(Req) }}

// UseAfterPut reads a field after Pool.Put: the object may already belong
// to another goroutine.
func UseAfterPut() int {
	r := pool.Get().(*Req)
	r.ID = 7
	pool.Put(r)
	return r.ID
}

type Txn struct{ done bool }

// Release returns the transaction to the engine's pool.
func (t *Txn) Release() {}

// UseAfterRelease writes through the handle after releasing it.
func UseAfterRelease(t *Txn) {
	t.Release()
	t.done = true
}
