// Negative fixture: correct pool usage — Put is the last touch, or the
// variable is re-bound to a fresh object before reuse. No diagnostics
// expected.
package fixture

import "sync"

type Req struct{ ID int }

var pool = sync.Pool{New: func() any { return new(Req) }}

// PutLast returns the object as the final step.
func PutLast(v int) int {
	r := pool.Get().(*Req)
	r.ID = v
	out := r.ID * 2
	pool.Put(r)
	return out
}

// Reassigned gives r a fresh value after Put; later reads are fine.
func Reassigned() int {
	r := pool.Get().(*Req)
	pool.Put(r)
	r = new(Req)
	r.ID = 1
	return r.ID
}

type Txn struct{ done bool }

func (t *Txn) Release() {}

// ReleaseLast releases on the way out only.
func ReleaseLast(t *Txn) bool {
	v := t.done
	t.Release()
	return v
}
