// Positive fixture: zero-copy tuple views escaping their borrowing scope.
package fixture

// TupleView stands in for storage.TupleView — the analyzer matches the
// type by name, so the fixture needs no import of the real package.
type TupleView struct{ b []byte }

// Key mimics the real accessor.
func (v TupleView) Key() string { return string(v.b) }

func getView() TupleView { return TupleView{} }

var lastView TupleView

var cache = map[string]TupleView{}

var recent []TupleView

type holder struct{ v TupleView }

// Leak demonstrates every escaping store shape the check knows.
func Leak(h *holder, ch chan TupleView) {
	v := getView()
	lastView = v
	h.v = v
	cache["k"] = v
	recent = append(recent, v)
	ch <- v
	go consume(v)
}

func consume(v TupleView) {}
