// Positive fixture: every function below violates the executor never-block
// invariant and must be reported.
package fixture

import (
	"os"
	"time"
)

// Txn mimics the engine's transaction handle; a top-level func(*Txn) error
// is stored-procedure-shaped and therefore an execblock seed.
type Txn struct {
	out map[string]string
}

// run is the executor loop seed.
//
//pstore:executor
func run(tasks chan func()) {
	for fn := range tasks {
		fn()
		pace()
	}
}

// pace is reachable from run, so its sleep is on the executor path.
func pace() {
	time.Sleep(time.Millisecond)
}

// GetItem blocks on a bare channel receive.
func GetItem(tx *Txn) error {
	done := make(chan struct{})
	<-done
	return nil
}

// PutItem does file I/O on the executor path.
func PutItem(tx *Txn) error {
	_, err := os.ReadFile("/etc/hostname")
	return err
}
