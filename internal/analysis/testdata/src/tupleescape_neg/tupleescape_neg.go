// Negative fixture: tuple views used within their borrowing scope, owned
// copies stored instead, and one deliberate (annotated) retention.
package fixture

type TupleView struct{ b []byte }

func (v TupleView) Key() string { return string(v.b) }

// Row mimics the owned-copy escape hatch.
func (v TupleView) Row() string { return string(append([]byte(nil), v.b...)) }

func getView() TupleView { return TupleView{} }

var lastKey string

var lastRow string

// Fine: locals, derived owned values, and returning a view (GetView itself
// does) are all within the borrow discipline.
func Fine(ch chan string) TupleView {
	v := getView()
	local := v
	_ = local.Key()
	lastKey = v.Key()   // owned string, not the view
	lastRow = v.Row()   // owned copy
	ch <- v.Key()       // derived value crosses the channel, not the view
	go consume(v.Row()) // same for goroutines
	return v
}

func consume(s string) {}

var pinned TupleView

// Pin retains a view on purpose; the annotation keeps the check honest
// about deliberate exceptions.
func Pin() {
	v := getView()
	pinned = v //pstore:ignore tupleescape — fixture: deliberate pin with a stated rationale
}
