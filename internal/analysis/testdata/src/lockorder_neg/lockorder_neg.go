// Negative fixture: shapes that look like the lockorder positives but are
// safe — the lock is released before the blocking call, the wait is a
// cancellable select, or the registered callback takes a different lock.
package fixture

import "sync"

type W struct {
	stop chan struct{}
	done chan struct{}
	quit chan struct{}
	cbs  []func()
}

func NewW() *W {
	w := &W{stop: make(chan struct{}), done: make(chan struct{}), quit: make(chan struct{})}
	go w.run()
	return w
}

// run joins on stop and flushes the registered callbacks once.
func (w *W) run() {
	defer close(w.done)
	<-w.stop
	for _, cb := range w.cbs {
		cb()
	}
}

// Append registers a durable callback.
func (w *W) Append(cb func()) { w.cbs = append(w.cbs, cb) }

// Crash stops the loop and joins it.
func (w *W) Crash() {
	close(w.stop)
	<-w.done
}

// Rotate runs pending callbacks on the caller's goroutine.
func (w *W) Rotate() {
	for _, cb := range w.cbs {
		cb()
	}
}

// AwaitOrCancel blocks in a cancellable select — not a hard join.
func (w *W) AwaitOrCancel() {
	select {
	case <-w.done:
	case <-w.quit:
	}
}

type R struct {
	mu     sync.Mutex
	side   sync.Mutex
	w      *W
	stats  int
	closed bool
}

// Append registers bump, which takes r.side — not r.mu — so rotation under
// r.mu cannot re-enter.
func (r *R) Append(v int) {
	r.w.Append(func() { r.bump(v) })
}

func (r *R) bump(v int) {
	r.side.Lock()
	defer r.side.Unlock()
	r.stats += v
}

// Kill releases r.mu before the blocking join — safe.
func (r *R) Kill() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.w.Crash()
}

// Wait holds r.mu across a call whose only channel ops sit in a
// cancellable select — safe.
func (r *R) Wait() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.w.AwaitOrCancel()
}

// Install holds r.mu across Rotate, but the registered callback takes
// r.side — no cycle.
func (r *R) Install() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.w.Rotate()
}
