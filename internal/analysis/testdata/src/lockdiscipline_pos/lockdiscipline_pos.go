// Positive fixture: blocking operations while a mutex is held.
package fixture

import (
	"sync"
	"time"
)

type Exec struct{}

// Submit hands work to another goroutine — lock-hostile by name.
func (Exec) Submit(x int) {}

type Q struct {
	mu sync.Mutex
	ch chan int
}

// SendUnderLock sends on a channel and submits work inside the critical
// section; both couple q.mu to another goroutine's progress.
func (q *Q) SendUnderLock(e Exec) {
	q.mu.Lock()
	q.ch <- 1
	e.Submit(2)
	q.mu.Unlock()
	q.ch <- 3 // after Unlock: fine
}

// SleepUnderDeferredLock holds the lock to function end via defer.
func (q *Q) SleepUnderDeferredLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	time.Sleep(time.Millisecond)
}
