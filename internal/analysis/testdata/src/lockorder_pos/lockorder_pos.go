// Positive fixture: the two PR 9 deadlock shapes, extracted pre-fix.
//
// Shape 1 (Kill/Crash committer cycle): Kill holds r.mu across W.Crash,
// which joins the committer goroutine; the committer runs the registered
// durable callbacks, and those re-take r.mu.
//
// Shape 2 (Install rotation cycle): Install holds r.mu across W.Rotate,
// which runs the registered callbacks inline on the calling goroutine;
// advanceDurable then re-takes r.mu on the same goroutine.
package fixture

import "sync"

// W models the WAL: callbacks registered via Append run either on the
// committer goroutine (group-commit path) or inline during Rotate.
type W struct {
	stop chan struct{}
	done chan struct{}
	work chan int
	cbs  []func()
}

func NewW() *W {
	w := &W{stop: make(chan struct{}), done: make(chan struct{}), work: make(chan int)}
	go w.committer()
	return w
}

// committer is the background group-commit loop: after each batch it
// invokes every registered durable callback.
func (w *W) committer() {
	defer close(w.done)
	for {
		select {
		case <-w.stop:
			return
		case <-w.work:
		}
		for _, cb := range w.cbs {
			cb()
		}
	}
}

// Append registers a durable callback.
func (w *W) Append(cb func()) { w.cbs = append(w.cbs, cb) }

// Crash stops the committer and joins it.
func (w *W) Crash() {
	close(w.stop)
	<-w.done
}

// Rotate seals the current segment and runs pending callbacks on the
// caller's goroutine.
func (w *W) Rotate() {
	for _, cb := range w.cbs {
		cb()
	}
}

// R models the replica: its durable watermark advances from WAL callbacks.
type R struct {
	mu      sync.Mutex
	w       *W
	durable int
}

// Append registers advanceDurable as the durable callback — the edge that
// closes both cycles.
func (r *R) Append(v int) {
	r.w.Append(func() { r.advanceDurable(v) })
}

func (r *R) advanceDurable(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v > r.durable {
		r.durable = v
	}
}

// Kill holds r.mu across the committer join — shape 1.
func (r *R) Kill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.w.Crash()
}

// Install holds r.mu across the rotation, which runs advanceDurable on
// this same goroutine — shape 2.
func (r *R) Install() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.w.Rotate()
}
