// Suppression fixture: every violation below carries a //pstore:ignore
// comment (same line or line above), so no diagnostics are expected. Each
// check name must match; "all" covers everything on its line.
package fixture

//pstore:seeded
//pstore:deterministic

import (
	"sync"
	"time"
)

// Jitter sleeps deliberately; the suppression names the check inline.
func Jitter() {
	time.Sleep(time.Millisecond) //pstore:ignore seeddiscipline — fixture: deliberate jitter, duration is configured
}

// Stamp is suppressed from the line above.
func Stamp() time.Time {
	//pstore:ignore seeddiscipline — fixture: observability timestamp only
	return time.Now()
}

// Encode suppresses with the "all" wildcard.
func Encode(m map[string]string) []byte {
	var buf []byte
	for k := range m { //pstore:ignore all — fixture: order is rehashed downstream
		buf = append(buf, k...)
	}
	return buf
}

type Req struct{ ID int }

var pool = sync.Pool{New: func() any { return new(Req) }}

// Recycle names two checks in one comma-separated suppression.
func Recycle(mu *sync.Mutex, ch chan int) int {
	r := pool.Get().(*Req)
	pool.Put(r)
	mu.Lock()
	defer mu.Unlock()
	//pstore:ignore poolhygiene,lockdiscipline — fixture: exercising multi-check suppression
	ch <- r.ID
	return 0
}
