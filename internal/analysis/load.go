package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Loader parses and type-checks the module's packages from source. Module
// packages are resolved by mapping import paths onto directories under the
// module root; everything else (the standard library) goes through go/types'
// source importer, which compiles GOROOT sources and therefore works in the
// same offline, no-network sandbox the rest of the module is built for.
type Loader struct {
	Fset   *token.FileSet
	Root   string // module root directory (holds go.mod)
	Module string // module path from go.mod

	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle detection
	// TypeErrors collects non-fatal type-checking complaints; the driver
	// surfaces them so an analyzer silently seeing half-typed code cannot
	// masquerade as a clean run.
	TypeErrors []error
}

// NewLoader locates the enclosing module starting at dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// The source importer type-checks GOROOT packages from source; with cgo
	// disabled it selects each package's pure-Go fallback files, so no C
	// toolchain is needed.
	build.Default.CgoEnabled = false
	return &Loader{
		Fset:    fset,
		Root:    root,
		Module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	raw, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load resolves package patterns ("./...", "./internal/server", import
// paths) and returns the matched packages, type-checked, in a stable order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.walkDirs(l.Root)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(l.dirImportPath(d))
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dirs, err := l.walkDirs(filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(base, "./"))))
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(l.dirImportPath(d))
			}
		case strings.HasPrefix(pat, "./") || pat == ".":
			add(l.dirImportPath(filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))))
		default:
			add(pat) // already an import path
		}
	}
	sort.Strings(paths)
	var out []*Package
	for _, p := range paths {
		pkg, err := l.loadPackage(p)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// walkDirs lists directories under root that contain non-test Go files,
// skipping testdata, hidden and vendor directories.
func (l *Loader) walkDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goFiles(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// dirImportPath maps a directory under the module root to its import path.
func (l *Loader) dirImportPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// importDir maps a module import path back to its directory.
func (l *Loader) importDir(path string) string {
	if path == l.Module {
		return l.Root
	}
	rel := strings.TrimPrefix(path, l.Module+"/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// goFiles lists the non-test .go files of a directory, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// loadPackage parses and type-checks one module package (memoized),
// recursively loading its module-internal imports first.
func (l *Loader) loadPackage(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.importDir(path)
	files, err := goFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	if len(files) == 0 {
		return nil, nil // directory with only tests — nothing to analyze
	}
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", f, err)
		}
		asts = append(asts, af)
	}
	// Load module-internal dependencies first so the chained importer can
	// serve them from the memo table.
	for _, af := range asts {
		for _, imp := range af.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip == l.Module || strings.HasPrefix(ip, l.Module+"/") {
				if _, err := l.loadPackage(ip); err != nil {
					return nil, err
				}
			}
		}
	}
	pkg, info, errs := TypeCheck(l.Fset, path, asts, l)
	l.TypeErrors = append(l.TypeErrors, errs...)
	p := &Package{
		Path:  path,
		Name:  asts[0].Name.Name,
		Dir:   dir,
		Fset:  l.Fset,
		Files: asts,
		Pkg:   pkg,
		Info:  info,
	}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer: module packages come from the memo
// table, everything else from the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("analysis: %s has no non-test Go files", path)
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// TypeCheck runs go/types over one parsed package. Type errors are
// collected, not fatal: analyzers nil-check the info they read, and a
// best-effort answer over slightly broken code beats no answer.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error: func(err error) {
			if len(errs) < 20 {
				errs = append(errs, err)
			}
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, _ := conf.Check(path, fset, files, info) // errors already collected
	return pkg, info, errs
}

// LoadFixtureDir parses and type-checks one standalone directory (analyzer
// test fixtures). Fixtures may import only the standard library.
func LoadFixtureDir(dir, asPath string) (*Package, error) {
	fset := token.NewFileSet()
	build.Default.CgoEnabled = false
	files, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	pkg, info, errs := TypeCheck(fset, asPath, asts, importer.ForCompiler(fset, "source", nil))
	if len(errs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking fixture %s: %v", dir, errs[0])
	}
	return &Package{
		Path:  asPath,
		Name:  asts[0].Name.Name,
		Dir:   dir,
		Fset:  fset,
		Files: asts,
		Pkg:   pkg,
		Info:  info,
	}, nil
}
