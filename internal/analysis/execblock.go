package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ExecBlock enforces the H-Store serial-executor discipline: a partition
// executor's loop, and every stored procedure it runs, must never block.
// One stalled executor freezes its whole partition — every transaction
// routed there queues behind the stall, and the paper's per-partition
// saturation model (1/ServiceTime) collapses. The check seeds from
// functions marked //pstore:executor (the executor run loop) and from
// stored-procedure-shaped functions (func(*engine.Txn) error), follows
// statically resolvable calls across the loaded packages, and reports:
//
//   - time.Sleep calls
//   - channel sends/receives that are not a select arm with an alternative
//     (a second case or a default) — i.e. operations that can block forever
//   - calls into I/O packages (os, net, net/http, syscall, os/exec)
//
// Function literals are analyzed as part of the function that encloses
// them: closures an executor function builds typically run on the executor
// (migration work, Do bodies) or capture its reply machinery.
var ExecBlock = &Analyzer{
	Name: execblockName,
	Doc:  "executor loops and stored procedures must not sleep, block on channels, or do I/O",
	Applies: func(p *Package) bool {
		return len(executorSeeds(p)) > 0
	},
	Run: runExecBlock,
}

// ioPackages are packages whose calls mean the executor is waiting on the
// outside world. A few pure accessors are allowlisted.
var ioPackages = map[string]bool{
	"os":       true,
	"net":      true,
	"net/http": true,
	"syscall":  true,
	"os/exec":  true,
	"io/fs":    true,
}

var ioAllowlist = map[string]bool{
	"os.Getenv":         true,
	"os.Getpid":         true,
	"os.Environ":        true,
	"os.IsExist":        true,
	"net.JoinHostPort":  true,
	"net.SplitHostPort": true,
}

// executorSeeds returns the package's executor-context root functions:
// functions whose doc (or body) carries //pstore:executor, plus top-level
// functions with the stored-procedure signature func(*engine.Txn) error.
func executorSeeds(p *Package) []*ast.FuncDecl {
	var seeds []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if funcMarked(fd, "executor") || isProcedureShaped(p, fd) {
				seeds = append(seeds, fd)
			}
		}
	}
	return seeds
}

// funcMarked reports whether the declaration's doc comment carries the
// //pstore:<name> marker.
func funcMarked(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if got, _, ok := parseMarker(c.Text); ok && got == name {
			return true
		}
	}
	return false
}

// isProcedureShaped matches the engine's stored-procedure type: a top-level
// function taking a single *engine.Txn and returning error. These run on a
// partition executor by construction, so they are seeds wherever declared.
func isProcedureShaped(p *Package, fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		return false
	}
	obj, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Txn" || named.Obj().Pkg() == nil {
		return false
	}
	if !isErrorType(sig.Results().At(0).Type()) {
		return false
	}
	pkgPath := named.Obj().Pkg().Path()
	return pkgPath == "pstore/internal/engine" || pkgPath == p.Path
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// funcIndex maps every function object defined across the loaded packages
// to its declaration, for call-graph traversal.
func funcIndex(all []*Package) map[*types.Func]indexedFunc {
	idx := make(map[*types.Func]indexedFunc)
	for _, p := range all {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					idx[obj] = indexedFunc{pkg: p, decl: fd}
				}
			}
		}
	}
	return idx
}

type indexedFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
}

func runExecBlock(target *Package, all []*Package) []Diagnostic {
	idx := funcIndex(all)
	seeds := executorSeeds(target)

	// Breadth-first reachability over statically resolvable calls.
	type item struct {
		fn   indexedFunc
		root string // seed name, for the diagnostic message
	}
	visited := make(map[*ast.FuncDecl]bool)
	var queue []item
	for _, s := range seeds {
		queue = append(queue, item{indexedFunc{pkg: target, decl: s}, funcDeclName(s)})
	}

	var diags []Diagnostic
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if visited[it.fn.decl] {
			continue
		}
		visited[it.fn.decl] = true
		p, fd := it.fn.pkg, it.fn.decl

		where := funcDeclName(fd)
		ctx := fmt.Sprintf("%s (executor path via %s)", where, it.root)
		if where == it.root {
			ctx = where
		}

		walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				callee := calleeFunc(p.Info, call)
				if callee == nil {
					return true
				}
				if isPkgFunc(callee, "time", "Sleep") {
					diags = append(diags, Diagnostic{
						Pos:     p.Fset.Position(call.Pos()),
						Check:   execblockName,
						Message: fmt.Sprintf("time.Sleep in %s: executors must stay runnable; use a select on a timer and a cancel channel", ctx),
					})
					return true
				}
				if pp := pkgPathOf(callee); ioPackages[pp] && !ioAllowlist[pp+"."+callee.Name()] {
					diags = append(diags, Diagnostic{
						Pos:     p.Fset.Position(call.Pos()),
						Check:   execblockName,
						Message: fmt.Sprintf("call to %s.%s in %s: no I/O on the executor path", pp, callee.Name(), ctx),
					})
					return true
				}
				if next, ok := idx[callee]; ok && !visited[next.decl] {
					queue = append(queue, item{next, it.root})
				}
				return true
			}
			if op, ok := blockingChanOp(p.Info, n, stack); ok {
				kind := "receive"
				if op.send {
					kind = "send"
				}
				diags = append(diags, Diagnostic{
					Pos:     p.Fset.Position(op.pos),
					Check:   execblockName,
					Message: fmt.Sprintf("blocking channel %s in %s: wrap in a select with a cancel/stop case", kind, ctx),
				})
			}
			return true
		})
	}
	return diags
}
