// Package analysis is pstore-vet's engine: a stdlib-only static-analysis
// driver (go/ast + go/parser + go/types with the source importer — no
// external dependencies, so it runs in the same offline sandbox as the rest
// of the module) plus the seven P-Store-specific invariant checks:
//
//	execblock      executor loops and stored procedures never block
//	determinism    byte-deterministic encoders never range over maps unsorted
//	seeddiscipline chaos-replayed packages draw time/randomness from seeds
//	lockdiscipline no channel ops or executor submissions under a mutex
//	lockorder      no cycle in the whole-program lock-order/waits-for graph
//	poolhygiene    pooled values are never used after their Put/Release
//	tupleescape    zero-copy tuple views never outlive their transaction
//
// These are the invariants the Go compiler cannot see but P-Store's
// correctness rests on (DESIGN.md §10). Analyzers are configured from the
// source itself through marker comments (//pstore:deterministic,
// //pstore:seeded, //pstore:executor), and individual findings are
// suppressed — deliberately and visibly — with //pstore:ignore comments.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String formats the diagnostic the way compilers do, so editors and CI log
// scrapers can jump to it: path:line:col: [check] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Package is one loaded, type-checked package under analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	annotations map[string]bool
}

// Annotated reports whether any file of the package carries a
// //pstore:<name> marker comment (e.g. "deterministic", "seeded").
func (p *Package) Annotated(name string) bool {
	if p.annotations == nil {
		p.annotations = collectAnnotations(p.Files)
	}
	return p.annotations[name]
}

// collectAnnotations gathers the package-level //pstore:<word> markers.
// "ignore" is not an annotation (it is a per-line suppression) and the
// function-level "executor" marker is matched against declarations
// separately, but recording them here is harmless.
func collectAnnotations(files []*ast.File) map[string]bool {
	out := make(map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if name, _, ok := parseMarker(c.Text); ok {
					out[name] = true
				}
			}
		}
	}
	return out
}

var markerRe = regexp.MustCompile(`^//\s*pstore:([a-z]+)\s*(.*)$`)

// parseMarker parses a //pstore:<name> [args] comment.
func parseMarker(text string) (name, args string, ok bool) {
	m := markerRe.FindStringSubmatch(text)
	if m == nil {
		return "", "", false
	}
	return m[1], strings.TrimSpace(m[2]), true
}

// Check names as constants so analyzer Run funcs can stamp diagnostics
// without referring back to their own package-level variable (which would be
// an initialization cycle).
const (
	execblockName      = "execblock"
	determinismName    = "determinism"
	seeddisciplineName = "seeddiscipline"
	lockdisciplineName = "lockdiscipline"
	lockorderName      = "lockorder"
	poolhygieneName    = "poolhygiene"
	tupleescapeName    = "tupleescape"
)

// An Analyzer is one invariant check.
type Analyzer struct {
	Name string
	Doc  string
	// Applies reports whether the analyzer has anything to say about the
	// package — analyzers self-configure from marker comments and type
	// signatures, so adding a package to a check's scope is a source edit,
	// never a tool edit.
	Applies func(p *Package) bool
	// Run analyzes target. all carries every loaded package so checks that
	// follow calls across package boundaries (execblock) can do so.
	Run func(target *Package, all []*Package) []Diagnostic
}

// Analyzers returns the full pstore-vet suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ExecBlock,
		Determinism,
		SeedDiscipline,
		LockDiscipline,
		LockOrder,
		PoolHygiene,
		TupleEscape,
	}
}

// AnalyzerByName finds one analyzer.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Suppressions maps file → line → the set of check names ignored there. A
// diagnostic is suppressed by a //pstore:ignore comment on its own line or
// on the line directly above it, naming the check (or "all"):
//
//	time.Sleep(d) //pstore:ignore execblock — reason the invariant holds
type Suppressions map[string]map[int]map[string]bool

// CollectSuppressions indexes every //pstore:ignore comment across the
// loaded packages.
func CollectSuppressions(pkgs []*Package) Suppressions {
	sup := make(Suppressions)
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					name, args, ok := parseMarker(c.Text)
					if !ok || name != "ignore" {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					byLine := sup[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						sup[pos.Filename] = byLine
					}
					checks := byLine[pos.Line]
					if checks == nil {
						checks = make(map[string]bool)
						byLine[pos.Line] = checks
					}
					// First whitespace-separated token holds the check
					// names; anything after it is rationale.
					fields := strings.Fields(args)
					if len(fields) == 0 {
						checks["all"] = true
						continue
					}
					for _, c := range strings.Split(fields[0], ",") {
						checks[c] = true
					}
				}
			}
		}
	}
	return sup
}

// Suppressed reports whether the diagnostic is covered by an ignore comment
// on its line or the line above.
func (s Suppressions) Suppressed(d Diagnostic) bool {
	byLine := s[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if checks := byLine[line]; checks != nil && (checks[d.Check] || checks["all"]) {
			return true
		}
	}
	return false
}

// Finding is one diagnostic plus its suppression verdict. Suppressed
// findings are kept (not dropped) so -json can surface them and -stale can
// tell a working suppression from a dead one.
type Finding struct {
	Diagnostic
	Suppressed bool
}

// Collect runs every applicable analyzer over the packages, marks
// suppressed findings, dedupes (cross-package reachability can reach one
// site from two roots) and returns everything sorted by position.
func Collect(analyzers []*Analyzer, pkgs []*Package) []Finding {
	sup := CollectSuppressions(pkgs)
	seen := make(map[string]bool)
	var out []Finding
	for _, a := range analyzers {
		for _, p := range pkgs {
			if a.Applies != nil && !a.Applies(p) {
				continue
			}
			for _, d := range a.Run(p, pkgs) {
				key := d.String()
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, Finding{Diagnostic: d, Suppressed: sup.Suppressed(d)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return posLess(out[i].Diagnostic, out[j].Diagnostic) })
	return out
}

// RunAll runs the analyzers and returns only the unsuppressed diagnostics —
// the tool's gate verdict.
func RunAll(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range Collect(analyzers, pkgs) {
		if !f.Suppressed {
			out = append(out, f.Diagnostic)
		}
	}
	return out
}

// Stale reports //pstore:ignore comments that suppress nothing: each check
// name a comment lists must match at least one finding on the comment's
// line or the line below ("all" counts as used when any finding there is
// suppressed; an unrecognized check name is always stale). Only meaningful
// when findings come from the full analyzer suite — a partial run would
// flag every suppression for the checks that did not run.
func Stale(sup Suppressions, findings []Finding) []Diagnostic {
	type lineKey struct {
		file string
		line int
	}
	hits := make(map[lineKey]map[string]bool)
	for _, f := range findings {
		k := lineKey{f.Pos.Filename, f.Pos.Line}
		if hits[k] == nil {
			hits[k] = make(map[string]bool)
		}
		hits[k][f.Check] = true
	}
	var out []Diagnostic
	for file, byLine := range sup {
		for line, checks := range byLine {
			// A comment on line L covers findings on L and L+1 (the
			// line-above form), mirroring Suppressed.
			covered := make(map[string]bool)
			for c := range hits[lineKey{file, line}] {
				covered[c] = true
			}
			for c := range hits[lineKey{file, line + 1}] {
				covered[c] = true
			}
			for c := range checks {
				used := covered[c]
				if c == "all" {
					used = len(covered) > 0
				}
				if !used {
					out = append(out, Diagnostic{
						Pos:     token.Position{Filename: file, Line: line, Column: 1},
						Check:   "stale",
						Message: fmt.Sprintf("//pstore:ignore %s suppresses nothing here — delete it or fix the check name", c),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return posLess(out[i], out[j]) })
	return out
}

// posLess orders diagnostics by file, line, column, then check name.
func posLess(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Check < b.Check
}
