package analysis

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtures runs the full analyzer suite (including suppression
// handling) over every fixture under testdata/src and compares the
// formatted diagnostics against the directory's expect.golden. Regenerate
// goldens with:
//
//	UPDATE_GOLDEN=1 go test ./internal/analysis
func TestFixtures(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no fixtures under testdata/src")
	}

	// One FileSet and one source importer for all fixtures, so the standard
	// library is type-checked from source once, not once per fixture.
	fset := token.NewFileSet()
	build.Default.CgoEnabled = false
	imp := importer.ForCompiler(fset, "source", nil)

	for _, dir := range dirs {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			pkg := loadFixture(t, fset, imp, dir, "fixture/"+name)
			diags := RunAll(Analyzers(), []*Package{pkg})

			var sb strings.Builder
			for _, d := range diags {
				d.Pos.Filename = filepath.Base(d.Pos.Filename)
				sb.WriteString(d.String())
				sb.WriteString("\n")
			}
			got := sb.String()

			golden := filepath.Join(dir, "expect.golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run UPDATE_GOLDEN=1 go test): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}

			// Positive fixtures must actually detect something; negative and
			// suppression fixtures must stay silent. The directory name
			// encodes which is which, so an accidentally empty golden cannot
			// pass as a working detector.
			if strings.HasSuffix(name, "_pos") && got == "" {
				t.Errorf("positive fixture %s produced no diagnostics", name)
			}
			if (strings.HasSuffix(name, "_neg") || name == "suppress") && got != "" {
				t.Errorf("fixture %s expected no diagnostics, got:\n%s", name, got)
			}
		})
	}
}

// loadFixture parses and type-checks one fixture directory with the shared
// importer. Fixtures must type-check cleanly: an analyzer verdict over
// broken code proves nothing.
func loadFixture(t *testing.T, fset *token.FileSet, imp types.Importer, dir, asPath string) *Package {
	t.Helper()
	files, err := goFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		asts = append(asts, af)
	}
	pkg, info, errs := TypeCheck(fset, asPath, asts, imp)
	if len(errs) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", dir, errs[0])
	}
	return &Package{
		Path:  asPath,
		Name:  asts[0].Name.Name,
		Dir:   dir,
		Fset:  fset,
		Files: asts,
		Pkg:   pkg,
		Info:  info,
	}
}

// TestSuppressionParsing pins the ignore-comment grammar: named checks,
// comma lists, the "all" wildcard, and the line-above form.
func TestSuppressionParsing(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //pstore:ignore execblock — rationale
	//pstore:ignore determinism,poolhygiene — rationale
	_ = 2
	_ = 3 //pstore:ignore all
}
`
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	p := &Package{Path: "p", Name: "p", Fset: fset, Files: []*ast.File{af}, Info: &types.Info{}}
	sup := CollectSuppressions([]*Package{p})

	cases := []struct {
		line  int
		check string
		want  bool
	}{
		{4, "execblock", true},
		{4, "determinism", false},
		{6, "determinism", true},    // line-above form
		{6, "poolhygiene", true},    // comma list
		{6, "execblock", false},     //
		{7, "seeddiscipline", true}, // "all" wildcard
	}
	for _, c := range cases {
		d := Diagnostic{Pos: token.Position{Filename: "p.go", Line: c.line, Column: 2}, Check: c.check}
		if got := sup.Suppressed(d); got != c.want {
			t.Errorf("line %d check %s: suppressed=%v, want %v", c.line, c.check, got, c.want)
		}
	}
}
