package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// SeedDiscipline keeps chaos replay deterministic. The fault injector, the
// migration retry/backoff machinery and the e2e chaos suite all replay a
// failing run from one pinned seed (PSTORE_CHAOS_SEED); that only works if
// every decision on those paths flows from the seeded source. A bare
// rand.Intn or a time.Now()-derived branch silently reintroduces
// nondeterminism — the replayed run stops reproducing the failure and the
// pinned-seed CI matrix loses its meaning.
//
// The check applies to packages annotated //pstore:seeded and flags calls
// to the global math/rand generator (anything but the seeded constructors
// rand.New/rand.NewSource) and to wall-clock time (time.Now, time.Since,
// time.Sleep, time.After, time.Tick). Cancellable timers (time.NewTimer)
// pass: they carry no entropy into the decision path.
var SeedDiscipline = &Analyzer{
	Name: seeddisciplineName,
	Doc:  "no bare math/rand or wall-clock reads in //pstore:seeded (chaos-replayed) packages",
	Applies: func(p *Package) bool {
		return p.Annotated("seeded")
	},
	Run: runSeedDiscipline,
}

// seededRandAllowed are the constructors a seeded source is built from.
var seededRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// bannedTimeFuncs read the wall clock or park the goroutine on it.
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Sleep": true,
	"After": true,
	"Tick":  true,
}

func runSeedDiscipline(target *Package, all []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range target.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(target.Info, call)
			if callee == nil {
				return true
			}
			switch pkgPathOf(callee) {
			case "math/rand", "math/rand/v2":
				// Methods on a *rand.Rand are fine — that instance was built
				// from a seed. Only package-level functions hit the global,
				// process-seeded generator.
				if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				if !seededRandAllowed[callee.Name()] {
					diags = append(diags, Diagnostic{
						Pos:   target.Fset.Position(call.Pos()),
						Check: seeddisciplineName,
						Message: fmt.Sprintf("bare rand.%s uses the global generator: draw from the run's seeded *rand.Rand so pinned chaos runs replay",
							callee.Name()),
					})
				}
			case "time":
				if bannedTimeFuncs[callee.Name()] {
					diags = append(diags, Diagnostic{
						Pos:   target.Fset.Position(call.Pos()),
						Check: seeddisciplineName,
						Message: fmt.Sprintf("time.%s on a chaos-replayed path: wall-clock values diverge between runs; use the seeded/cancellable equivalents",
							callee.Name()),
					})
				}
			}
			return true
		})
	}
	return diags
}
