package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// calleeFunc resolves the statically known callee of a call expression: a
// package-level function, a method, or a qualified stdlib function. Calls
// through function values and interfaces return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether f is the named function (or method) of the
// package with the given import path.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name
}

// pkgPathOf returns the defining package path of f ("" for builtins).
func pkgPathOf(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// namedReceiver returns the defining package path and type name of a method
// call's receiver (after stripping pointers), or ok=false for non-methods.
func namedReceiver(f *types.Func) (pkgPath, typeName string, ok bool) {
	if f == nil {
		return "", "", false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// walkStack traverses the AST calling fn with each node and the stack of its
// ancestors (outermost first, not including the node itself). Returning
// false from fn prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil { // pop after a fully visited subtree
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false // pruned: Inspect sends no matching nil pop
		}
		stack = append(stack, n)
		return true
	})
}

// chanOp describes a blocking channel operation found in source.
type chanOp struct {
	pos  token.Pos
	send bool
}

// blockingChanOp reports whether node n (with ancestor stack) is a channel
// send or receive that can block indefinitely: one that is not the
// communication clause of a select statement offering an alternative
// (another case or a default). A receive used as the range/comm expression
// of a select case is fine; the same receive buried in a case *body* still
// blocks and is reported.
func blockingChanOp(info *types.Info, n ast.Node, stack []ast.Node) (chanOp, bool) {
	switch x := n.(type) {
	case *ast.SendStmt:
		if selectAllows(stack, n) {
			return chanOp{}, false
		}
		return chanOp{pos: x.Arrow, send: true}, true
	case *ast.UnaryExpr:
		if x.Op != token.ARROW {
			return chanOp{}, false
		}
		// Only a receive whose operand really is a channel (not a constant
		// expression some broken fixture produced).
		if info != nil {
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
					return chanOp{}, false
				}
			}
		}
		if selectAllows(stack, n) {
			return chanOp{}, false
		}
		return chanOp{pos: x.OpPos, send: false}, true
	}
	return chanOp{}, false
}

// selectAllows reports whether n is (part of) the communication statement of
// a select clause whose select offers an alternative: at least two comm
// clauses, or a default. Such an operation cannot wedge the goroutine — the
// select's other arms (typically a cancel or stop channel) can fire instead.
func selectAllows(stack []ast.Node, n ast.Node) bool {
	// Find the nearest enclosing CommClause and check n belongs to its comm
	// statement, not its body.
	for i := len(stack) - 1; i >= 0; i-- {
		cc, ok := stack[i].(*ast.CommClause)
		if !ok {
			continue
		}
		// Is n inside the comm statement (as opposed to the clause body)?
		inComm := false
		if cc.Comm != nil {
			top := n
			if i+1 < len(stack) {
				top = stack[i+1]
			}
			if top == cc.Comm {
				inComm = true
			}
		}
		if !inComm {
			return false
		}
		// The enclosing select: stack[i-1] is its BlockStmt, stack[i-2] the
		// SelectStmt.
		for j := i - 1; j >= 0; j-- {
			if sel, ok := stack[j].(*ast.SelectStmt); ok {
				clauses := 0
				hasDefault := false
				for _, s := range sel.Body.List {
					c := s.(*ast.CommClause)
					if c.Comm == nil {
						hasDefault = true
					} else {
						clauses++
					}
				}
				return hasDefault || clauses >= 2
			}
		}
		return false
	}
	return false
}

// funcDeclName renders a function's name for diagnostics, with a receiver
// prefix for methods.
func funcDeclName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// isMapType reports whether t (possibly named) is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
