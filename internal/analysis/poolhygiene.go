package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PoolHygiene catches use-after-release on pooled values. The server keeps
// Request/Response structs and reply channels in sync.Pools, and the engine
// recycles Txn objects; returning one to its pool and then touching it races
// with the next goroutine that gets the same object handed out — the classic
// symptom is a response carrying another request's fields, which no unit
// test reliably reproduces.
//
// The check is flow-insensitive but list-ordered: after a statement
// `pool.Put(x)` (receiver typed sync.Pool) or `x.Release()` releases the
// identifier x, any later read of x in the same statement list is reported,
// until x is reassigned a fresh value. Nested blocks after the release are
// scanned too; releases inside a nested block do not leak out (the common
// `if done { pool.Put(x); return }` shape ends the flow with the return).
var PoolHygiene = &Analyzer{
	Name: poolhygieneName,
	Doc:  "no use of a pooled value after its Pool.Put or Release call",
	Applies: func(p *Package) bool {
		return true // self-scopes: only functions that release pooled values are examined
	},
	Run: runPoolHygiene,
}

func runPoolHygiene(target *Package, all []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range target.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanPoolStmts(target, fd.Body.List, &diags)
			// Function literals get the same treatment independently.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					scanPoolStmts(target, fl.Body.List, &diags)
				}
				return true
			})
		}
	}
	return diags
}

// releasedObject recognizes a release statement and returns the released
// identifier's object: pool.Put(x) where pool is a sync.Pool, or x.Release()
// with no arguments.
func releasedObject(p *Package, s ast.Stmt) (types.Object, string) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	callee := calleeFunc(p.Info, call)
	if callee == nil {
		return nil, ""
	}
	pkg, typ, isMethod := namedReceiver(callee)
	switch {
	case isMethod && pkg == "sync" && typ == "Pool" && callee.Name() == "Put" && len(call.Args) == 1:
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil {
				return obj, "Pool.Put"
			}
		}
	case isMethod && callee.Name() == "Release" && len(call.Args) == 0:
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					return obj, typ + ".Release"
				}
			}
		}
	}
	return nil, ""
}

// scanPoolStmts walks one statement list. When a release of x is found, the
// remaining statements of the list are checked for reads of x until a
// reassignment gives x a fresh value. Nested lists are scanned recursively
// for their own releases.
func scanPoolStmts(p *Package, stmts []ast.Stmt, diags *[]Diagnostic) {
	for i, s := range stmts {
		if obj, how := releasedObject(p, s); obj != nil {
			checkUseAfterRelease(p, obj, how, stmts[i+1:], diags)
		}
		// Recurse into nested statement lists (FuncLits are handled by the
		// caller's Inspect pass).
		switch x := s.(type) {
		case *ast.BlockStmt:
			scanPoolStmts(p, x.List, diags)
		case *ast.IfStmt:
			scanPoolStmts(p, x.Body.List, diags)
			if x.Else != nil {
				scanPoolStmts(p, []ast.Stmt{x.Else}, diags)
			}
		case *ast.ForStmt:
			scanPoolStmts(p, x.Body.List, diags)
		case *ast.RangeStmt:
			scanPoolStmts(p, x.Body.List, diags)
		case *ast.SwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanPoolStmts(p, cc.Body, diags)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanPoolStmts(p, cc.Body, diags)
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanPoolStmts(p, cc.Body, diags)
				}
			}
		case *ast.LabeledStmt:
			scanPoolStmts(p, []ast.Stmt{x.Stmt}, diags)
		}
	}
}

// checkUseAfterRelease flags reads of obj in the statements following its
// release. A reassignment of obj (x = ..., x, err := ...) stops the scan —
// from there x holds a fresh value.
func checkUseAfterRelease(p *Package, obj types.Object, how string, rest []ast.Stmt, diags *[]Diagnostic) {
	for _, s := range rest {
		if reassigns(p, s, obj) {
			return
		}
		ast.Inspect(s, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || p.Info.Uses[id] != obj {
				return true
			}
			// The write side of an assignment was handled by reassigns; any
			// use reaching here is a read (field access, call argument,
			// another release, ...).
			*diags = append(*diags, Diagnostic{
				Pos:     p.Fset.Position(id.Pos()),
				Check:   poolhygieneName,
				Message: fmt.Sprintf("%s used after %s returned it to the pool: the object may already be handed to another goroutine", obj.Name(), how),
			})
			return true
		})
	}
}

// reassigns reports whether statement s assigns a fresh value to obj as a
// whole (not a field write, which is itself a use-after-release).
func reassigns(p *Package, s ast.Stmt, obj types.Object) bool {
	asg, ok := s.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range asg.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if p.Info.Uses[id] == obj || p.Info.Defs[id] == obj {
				return true
			}
		}
	}
	return false
}
