package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
)

// Determinism guards byte-deterministic encoders. Crash recovery replays a
// command log against state rebuilt from snapshots, and chaos tests compare
// cluster.ContentChecksum across runs — both assume that encoding the same
// value twice yields the same bytes. Go randomizes map iteration order per
// range statement, so a `for k, v := range m` that feeds an encoder output
// is a latent corruption: it passes every test that only decodes (maps
// compare unordered) and then breaks byte-level comparison, checksums, or
// dedup in production.
//
// The check applies to packages annotated //pstore:deterministic and flags
// a range over a map only when the loop body can actually leak iteration
// order into output: appending to a slice, writing/encoding/printing,
// building strings, or sending on a channel. Order-insensitive bodies
// (populating another map, counting, commutative folds like XOR/sum) pass,
// and the canonical fix — collect keys, sort, iterate the slice — is
// recognized as such:
//
//	keys := make([]string, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
var Determinism = &Analyzer{
	Name: determinismName,
	Doc:  "no unsorted map iteration whose order can reach encoder output in //pstore:deterministic packages",
	Applies: func(p *Package) bool {
		return p.Annotated("deterministic")
	},
	Run: runDeterminism,
}

// orderSensitiveCall matches callee names that emit or accumulate data in
// call order.
var orderSensitiveCall = regexp.MustCompile(`(?i)^(append|write|encode|marshal|print|fprint|sprint|mix|hash|sum|observe|record)`)

func runDeterminism(target *Package, all []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range target.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanStmtsForMapRange(target, fd.Body.List, &diags)
		}
	}
	return diags
}

// scanStmtsForMapRange walks a statement list, recursing into nested blocks,
// so each map range can be judged together with its following siblings (for
// the sorted-keys idiom).
func scanStmtsForMapRange(p *Package, stmts []ast.Stmt, diags *[]Diagnostic) {
	for i, s := range stmts {
		if rs, ok := s.(*ast.RangeStmt); ok {
			if tv, ok := p.Info.Types[rs.X]; ok && isMapType(tv.Type) {
				if !sortedKeysIdiom(p, rs, stmts[i+1:]) {
					if op, opName := orderSensitiveOp(p, rs); op != token.NoPos {
						*diags = append(*diags, Diagnostic{
							Pos:   p.Fset.Position(rs.For),
							Check: determinismName,
							Message: fmt.Sprintf("map iteration order reaches output through %s: iterate sorted keys instead (collect, sort.Strings, range the slice)",
								opName),
						})
					}
				}
			}
		}
		// Recurse into every nested statement list.
		switch x := s.(type) {
		case *ast.BlockStmt:
			scanStmtsForMapRange(p, x.List, diags)
		case *ast.IfStmt:
			scanStmtsForMapRange(p, x.Body.List, diags)
			if x.Else != nil {
				scanStmtsForMapRange(p, []ast.Stmt{x.Else}, diags)
			}
		case *ast.ForStmt:
			scanStmtsForMapRange(p, x.Body.List, diags)
		case *ast.RangeStmt:
			scanStmtsForMapRange(p, x.Body.List, diags)
		case *ast.SwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmtsForMapRange(p, cc.Body, diags)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmtsForMapRange(p, cc.Body, diags)
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanStmtsForMapRange(p, cc.Body, diags)
				}
			}
		case *ast.LabeledStmt:
			scanStmtsForMapRange(p, []ast.Stmt{x.Stmt}, diags)
		case *ast.GoStmt:
			if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
				scanStmtsForMapRange(p, fl.Body.List, diags)
			}
		case *ast.DeferStmt:
			if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
				scanStmtsForMapRange(p, fl.Body.List, diags)
			}
		case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.ReturnStmt:
			// Function literals in expressions get their own scan.
			ast.Inspect(s, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					scanStmtsForMapRange(p, fl.Body.List, diags)
					return false
				}
				return true
			})
		}
	}
}

// sortedKeysIdiom recognizes the canonical deterministic-iteration pattern:
// a loop body that only appends loop variables (or expressions over them)
// to one slice, followed — among the statements after the range in the same
// block — by a sort of that slice.
func sortedKeysIdiom(p *Package, rs *ast.RangeStmt, following []ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Tok != token.ASSIGN {
		return false
	}
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	if first, ok := call.Args[0].(*ast.Ident); !ok || first.Name != lhs.Name {
		return false
	}
	// A sort of the collected slice must follow.
	for _, s := range following {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		callee := calleeFunc(p.Info, call)
		if callee == nil {
			continue
		}
		pp := pkgPathOf(callee)
		if pp != "sort" && pp != "slices" {
			continue
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && arg.Name == lhs.Name {
			return true
		}
	}
	return false
}

// orderSensitiveOp scans a range body for the first operation that leaks
// iteration order: an append, an emitting call (Write/Encode/Print/...), a
// string concatenation, or a channel send. It returns NoPos when the body
// is order-insensitive (map writes, counters, commutative folds).
func orderSensitiveOp(p *Package, rs *ast.RangeStmt) (token.Pos, string) {
	var pos token.Pos
	var what string
	walkStack(rs.Body, func(n ast.Node, stack []ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			// The builtin append is caught by name, same as Write*/Encode*.
			name := calleeName(x)
			if name != "" && orderSensitiveCall.MatchString(name) {
				pos, what = x.Pos(), name
				return false
			}
		case *ast.SendStmt:
			pos, what = x.Arrow, "channel send"
			return false
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 {
				if tv, ok := p.Info.Types[x.Lhs[0]]; ok && isStringType(tv.Type) {
					pos, what = x.TokPos, "string concatenation"
					return false
				}
			}
		}
		return true
	})
	return pos, what
}

// calleeName returns the bare name of a call's target for heuristic
// matching ("" when unnameable).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
