package sim

import (
	"fmt"

	"pstore/internal/plan"
	"pstore/internal/predict"
	"pstore/internal/timeseries"
)

// Static never reconfigures: the baseline of Figs 9a/9b and the "Static"
// curves of Figs 12–13.
type Static struct {
	Machines int
}

// Name implements Strategy.
func (s Static) Name() string { return fmt.Sprintf("Static-%d", s.Machines) }

// Decide implements Strategy.
func (s Static) Decide(t int, history *timeseries.Series, current int) (int, bool) {
	if current != s.Machines {
		return s.Machines, true
	}
	return 0, false
}

// Simple scales up every morning and down every night on a fixed schedule —
// the paper's "Simple" strategy, which works until the load deviates from
// the pattern (Fig 13, right).
type Simple struct {
	SlotsPerDay   int
	MorningSlot   int // slot-of-day to scale up
	NightSlot     int // slot-of-day to scale down
	DayMachines   int
	NightMachines int
}

// Name implements Strategy.
func (s Simple) Name() string { return "Simple" }

// Decide implements Strategy.
func (s Simple) Decide(t int, history *timeseries.Series, current int) (int, bool) {
	slot := t % s.SlotsPerDay
	var want int
	if s.MorningSlot <= slot && slot < s.NightSlot {
		want = s.DayMachines
	} else {
		want = s.NightMachines
	}
	if want != current {
		return want, true
	}
	return 0, false
}

// Reactive scales out only after observing overload and scales in after a
// sustained low streak — the purple curve of Fig 12 and the behaviour of
// Fig 9c, in simulation form.
type Reactive struct {
	Params        plan.Params
	HighFraction  float64 // overload threshold as a fraction of Q̂·N (default 0.95)
	ScaleInStreak int     // consecutive low slots before scale-in (default 3)

	lowStreak int
}

// Name implements Strategy.
func (r *Reactive) Name() string { return "Reactive" }

// Decide implements Strategy.
func (r *Reactive) Decide(t int, history *timeseries.Series, current int) (int, bool) {
	high := r.HighFraction
	if high <= 0 {
		high = 0.95
	}
	streak := r.ScaleInStreak
	if streak <= 0 {
		streak = 3
	}
	load := history.At(t)
	p := r.Params
	switch {
	case load > high*p.QHat*float64(current):
		r.lowStreak = 0
		target := p.RequiredMachines(load)
		if target <= current {
			target = current + 1
		}
		return target, true
	case p.RequiredMachines(load) < current:
		r.lowStreak++
		if r.lowStreak >= streak {
			r.lowStreak = 0
			return p.RequiredMachines(load), true
		}
	default:
		r.lowStreak = 0
	}
	return 0, false
}

// PStore is the predictive strategy: forecast, plan with the dynamic
// program, execute the first move when its start time arrives, with
// scale-in confirmations and reactive fallback on infeasible plans — the
// simulation twin of the live controller package.
type PStore struct {
	Params        plan.Params
	Predictor     predict.Model
	Horizon       int
	Inflate       float64 // prediction inflation (paper: 1.15)
	Confirmations int     // scale-in confirmations (paper: 3)
	Label         string  // e.g. "P-Store SPAR", "P-Store Oracle"

	votes int
}

// Name implements Strategy.
func (s *PStore) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "P-Store"
}

// Decide implements Strategy.
func (s *PStore) Decide(t int, history *timeseries.Series, current int) (int, bool) {
	inflate := s.Inflate
	if inflate == 0 {
		inflate = 1
	}
	confirm := s.Confirmations
	if confirm <= 0 {
		confirm = 3
	}
	if history.Len() < s.Predictor.MinHistory() {
		return 0, false
	}
	forecast, err := s.Predictor.Forecast(history, s.Horizon)
	if err != nil {
		return 0, false
	}
	loadVec := make([]float64, s.Horizon+1)
	loadVec[0] = history.At(t)
	for i, v := range forecast {
		loadVec[i+1] = v * inflate
	}
	pl, err := plan.BestMoves(loadVec, current, s.Params)
	if err == plan.ErrInfeasible {
		// Unpredicted spike: reactive fallback straight to the needed size.
		s.votes = 0
		maxLoad := 0.0
		for _, v := range loadVec {
			if v > maxLoad {
				maxLoad = v
			}
		}
		if target := s.Params.RequiredMachines(maxLoad); target > current {
			return target, true
		}
		return 0, false
	}
	if err != nil {
		return 0, false
	}
	move, acted := pl.FirstAction()
	if !acted {
		s.votes = 0
		return 0, false
	}
	if move.To > move.From {
		s.votes = 0
		if move.Start == 0 {
			return move.To, true
		}
		return 0, false
	}
	s.votes++
	if s.votes >= confirm && move.Start == 0 {
		s.votes = 0
		return move.To, true
	}
	return 0, false
}
