package sim

import (
	"math"
	"testing"
	"time"

	"pstore/internal/plan"
	"pstore/internal/predict"
	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

func simParams() plan.Params {
	return plan.Params{Q: 100, QHat: 130, D: 10, PartitionsPerNode: 1}
}

// dayTrace builds days of a simple diurnal load: low 60 at night, high
// `peak` between slots [dayStart, dayEnd) of each day.
func dayTrace(days, slotsPerDay, dayStart, dayEnd int, peak float64) *timeseries.Series {
	vals := make([]float64, days*slotsPerDay)
	for i := range vals {
		s := i % slotsPerDay
		if s >= dayStart && s < dayEnd {
			vals[i] = peak
		} else {
			vals[i] = 60
		}
	}
	return timeseries.New(time.Date(2016, 8, 1, 0, 0, 0, 0, time.UTC), 5*time.Minute, vals)
}

func TestStaticStrategy(t *testing.T) {
	load := dayTrace(3, 96, 30, 70, 350)
	p := simParams()
	// 4 machines cover the 350 peak; cost = 4 per slot.
	res, err := Run(load, 0, 4, Static{Machines: 4}, p, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.InsufficientSlots != 0 {
		t.Errorf("insufficient = %d, want 0", res.InsufficientSlots)
	}
	if want := 4.0 * float64(load.Len()); res.Cost != want {
		t.Errorf("cost = %v, want %v", res.Cost, want)
	}
	// 1 machine is always insufficient during the day.
	res1, err := Run(load, 0, 1, Static{Machines: 1}, p, false)
	if err != nil {
		t.Fatal(err)
	}
	if res1.InsufficientFrac() < 0.3 {
		t.Errorf("static-1 insufficient frac = %v, want ≥ 0.3", res1.InsufficientFrac())
	}
	if res1.Cost >= res.Cost {
		t.Error("static-1 must cost less than static-4")
	}
}

func TestSimpleStrategyFollowsSchedule(t *testing.T) {
	load := dayTrace(3, 96, 30, 70, 350)
	p := simParams()
	strat := Simple{SlotsPerDay: 96, MorningSlot: 20, NightSlot: 72, DayMachines: 4, NightMachines: 1}
	res, err := Run(load, 0, 1, strat, p, true)
	if err != nil {
		t.Fatal(err)
	}
	// Scheduled in advance of the daily rise: no insufficiency once warm.
	if res.InsufficientFrac() > 0.02 {
		t.Errorf("simple insufficient frac = %v", res.InsufficientFrac())
	}
	// Costs less than always-4.
	if res.AvgMachines() >= 4 {
		t.Errorf("avg machines = %v, want < 4", res.AvgMachines())
	}
	if res.Moves < 5 {
		t.Errorf("moves = %d, want ≥ 5 (two per day)", res.Moves)
	}
}

func TestReactiveStrategyLagsLoad(t *testing.T) {
	load := dayTrace(3, 96, 30, 70, 350)
	p := simParams()
	res, err := Run(load, 0, 1, &Reactive{Params: p}, p, false)
	if err != nil {
		t.Fatal(err)
	}
	// Reacting after overload guarantees some slots with insufficient
	// capacity around each morning ramp.
	if res.InsufficientSlots == 0 {
		t.Error("reactive should suffer at ramp starts")
	}
	// But it should still save machines vs static-4.
	if res.AvgMachines() >= 4 {
		t.Errorf("avg machines = %v", res.AvgMachines())
	}
}

func TestPStoreOracleBeatsReactive(t *testing.T) {
	load := dayTrace(4, 96, 30, 70, 350)
	p := simParams()

	oracle := predict.NewOracle(load)
	if err := oracle.Fit(nil); err != nil {
		t.Fatal(err)
	}
	ps := &PStore{Params: p, Predictor: oracle, Horizon: 12, Inflate: 1.0, Label: "P-Store Oracle"}
	resP, err := Run(load.Slice(0, load.Len()-13), 0, 1, ps, p, false)
	if err != nil {
		t.Fatal(err)
	}
	resR, err := Run(load.Slice(0, load.Len()-13), 0, 1, &Reactive{Params: p}, p, false)
	if err != nil {
		t.Fatal(err)
	}
	if resP.InsufficientSlots >= resR.InsufficientSlots {
		t.Errorf("P-Store insufficient %d not better than reactive %d",
			resP.InsufficientSlots, resR.InsufficientSlots)
	}
	// P-Store provisions ahead, so it scales before each ramp.
	if resP.Moves == 0 {
		t.Error("P-Store never moved")
	}
}

func TestPStoreSPAREndToEnd(t *testing.T) {
	// Synthetic B2W-like weeks at 5-minute granularity; train SPAR on the
	// first 3 weeks, simulate the last week.
	cfg := workload.DefaultB2WConfig()
	cfg.Days = 28
	cfg.SlotsPerDay = 288 // 5-minute slots
	cfg.TroughLoad = 60
	cfg.PeakLoad = 600
	load := workload.GenerateB2W(cfg)

	p := plan.Params{Q: 100, QHat: 130, D: 16, PartitionsPerNode: 1}
	spar := predict.NewSPAR(predict.SPARConfig{Period: 288, NPeriods: 3, MRecent: 12, MaxRows: 4000})
	trainEnd := 21 * 288
	if err := spar.Fit(load.Slice(0, trainEnd)); err != nil {
		t.Fatal(err)
	}
	ps := &PStore{Params: p, Predictor: spar, Horizon: 36, Inflate: 1.15, Label: "P-Store SPAR"}
	res, err := Run(load.Slice(0, load.Len()-37), trainEnd, 2, ps, p, false)
	if err != nil {
		t.Fatal(err)
	}
	static := plan.Params.RequiredMachines(p, load.Max())
	resStatic, err := Run(load.Slice(0, load.Len()-37), trainEnd, static, Static{Machines: static}, p, false)
	if err != nil {
		t.Fatal(err)
	}
	// The headline result: P-Store approaches static-peak reliability at a
	// fraction of the machines.
	if res.AvgMachines() > 0.75*resStatic.AvgMachines() {
		t.Errorf("P-Store avg machines %.2f vs static %.2f: expected ≥ 25%% savings",
			res.AvgMachines(), resStatic.AvgMachines())
	}
	if res.InsufficientFrac() > 0.05 {
		t.Errorf("P-Store insufficient frac = %.4f, want < 5%%", res.InsufficientFrac())
	}
	if res.Moves < 8 {
		t.Errorf("moves = %d, want regular daily scaling", res.Moves)
	}
}

func TestRunValidation(t *testing.T) {
	load := dayTrace(1, 96, 30, 70, 350)
	p := simParams()
	if _, err := Run(load, -1, 1, Static{Machines: 1}, p, false); err == nil {
		t.Error("negative start should fail")
	}
	if _, err := Run(load, load.Len(), 1, Static{Machines: 1}, p, false); err == nil {
		t.Error("out-of-range start should fail")
	}
	if _, err := Run(load, 0, 0, Static{Machines: 1}, p, false); err == nil {
		t.Error("n0=0 should fail")
	}
	if _, err := Run(load, 0, 1, Static{Machines: 1}, plan.Params{}, false); err == nil {
		t.Error("bad params should fail")
	}
}

func TestResultAccessors(t *testing.T) {
	r := &Result{Slots: 200, Cost: 500, InsufficientSlots: 10}
	if math.Abs(r.InsufficientFrac()-0.05) > 1e-12 {
		t.Errorf("frac = %v", r.InsufficientFrac())
	}
	if math.Abs(r.AvgMachines()-2.5) > 1e-12 {
		t.Errorf("avg = %v", r.AvgMachines())
	}
	empty := &Result{}
	if empty.InsufficientFrac() != 0 || empty.AvgMachines() != 0 {
		t.Error("empty result accessors should be 0")
	}
}

func TestKeepStatesTrajectory(t *testing.T) {
	load := dayTrace(1, 96, 30, 70, 350)
	p := simParams()
	res, err := Run(load, 0, 1, &Reactive{Params: p}, p, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.States) != load.Len() {
		t.Fatalf("states = %d, want %d", len(res.States), load.Len())
	}
	sawMigration := false
	for i, st := range res.States {
		if st.Load != load.At(i) {
			t.Fatalf("state %d load mismatch", i)
		}
		if st.Migrating {
			sawMigration = true
		}
		if st.EffCap <= 0 || st.Machines < 1 {
			t.Fatalf("state %d = %+v", i, st)
		}
	}
	if !sawMigration {
		t.Error("never observed a migrating slot")
	}
}

func TestPStoreStrategyFallbackOnUnpredictedSpike(t *testing.T) {
	// Oracle trained on a flat trace, but the simulated load spikes 5×:
	// plans become infeasible and the strategy must jump straight to the
	// required size.
	flat := dayTrace(2, 96, 999, 999, 0) // constant 60
	spiked := flat.Clone()
	for i := 100; i < 120; i++ {
		spiked.Values[i] = 450 // needs 5 machines at Q=100
	}
	p := simParams()
	oracle := predict.NewOracle(flat) // blind to the spike
	if err := oracle.Fit(nil); err != nil {
		t.Fatal(err)
	}
	ps := &PStore{Params: p, Predictor: oracle, Horizon: 12, Label: "P-Store"}
	res, err := Run(spiked.Slice(0, spiked.Len()-13), 0, 1, ps, p, true)
	if err != nil {
		t.Fatal(err)
	}
	maxMachines := 0
	for _, st := range res.States {
		if st.Machines > maxMachines {
			maxMachines = st.Machines
		}
	}
	if maxMachines < 5 {
		t.Errorf("fallback never scaled to 5, max = %d", maxMachines)
	}
	// Some insufficiency is unavoidable (the spike was unpredicted), but it
	// must end once capacity catches up.
	if res.InsufficientSlots == 0 {
		t.Error("an unpredicted spike should cause some insufficiency")
	}
	if res.InsufficientSlots > 15 {
		t.Errorf("insufficient for %d slots; fallback too slow", res.InsufficientSlots)
	}
}

func TestSimpleStrategyNightWraparound(t *testing.T) {
	// Slots outside [morning, night) use NightMachines, including the
	// early-morning hours of the next day.
	s := Simple{SlotsPerDay: 96, MorningSlot: 24, NightSlot: 72, DayMachines: 5, NightMachines: 2}
	hist := dayTrace(2, 96, 0, 0, 0)
	if target, act := s.Decide(0, hist.Slice(0, 1), 5); !act || target != 2 {
		t.Errorf("midnight: target=%d act=%v, want 2", target, act)
	}
	if target, act := s.Decide(30, hist.Slice(0, 31), 2); !act || target != 5 {
		t.Errorf("mid-morning: target=%d act=%v, want 5", target, act)
	}
	if _, act := s.Decide(30, hist.Slice(0, 31), 5); act {
		t.Error("already at day level: no action expected")
	}
	if target, act := s.Decide(96+80, hist, 5); !act || target != 2 {
		t.Errorf("next night: target=%d act=%v, want 2", target, act)
	}
}

func TestReactiveStrategyDefaults(t *testing.T) {
	p := simParams()
	r := &Reactive{Params: p} // zero HighFraction and ScaleInStreak
	hist := dayTrace(1, 96, 0, 0, 0)
	// Load 60 on 2 machines: required 1 < 2, so low streak builds; the
	// default streak is 3.
	for i := 0; i < 2; i++ {
		if _, act := r.Decide(i, hist.Slice(0, i+1), 2); act {
			t.Fatalf("scale-in fired after %d lows", i+1)
		}
	}
	if target, act := r.Decide(2, hist.Slice(0, 3), 2); !act || target != 1 {
		t.Errorf("after 3 lows: target=%d act=%v, want 1", target, act)
	}
}
