// Package sim is a discrete-time simulator of allocation strategies over a
// load trace, reproducing the paper's §8.3 study: because running the full
// engine for 4.5 months of trace is impractical (the paper makes the same
// argument), the simulator models machine counts, migration durations and
// effective capacity analytically — using exactly the same plan.Params
// model as the live system — and measures Eq. 1 cost and the percentage of
// time with insufficient capacity for each strategy (Figs 12 and 13).
package sim

import (
	"fmt"

	"pstore/internal/plan"
	"pstore/internal/timeseries"
)

// Strategy decides target machine counts. Decide is called once per slot
// while no reconfiguration is in progress, with the observed load history
// up to and including the current slot; returning (target, true) starts a
// move toward target at the next slot.
type Strategy interface {
	Name() string
	Decide(t int, history *timeseries.Series, current int) (target int, act bool)
}

// SlotState records the simulated system at one slot (for Fig 13 plots).
type SlotState struct {
	Load      float64
	Machines  int
	EffCap    float64
	Migrating bool
}

// Result summarizes one simulation run.
type Result struct {
	Strategy          string
	Q                 float64
	Slots             int
	Cost              float64 // Σ machines over slots (Eq. 1, machine-slots)
	InsufficientSlots int
	Moves             int
	States            []SlotState // populated only when requested
}

// InsufficientFrac returns the fraction of simulated time with load above
// effective capacity.
func (r *Result) InsufficientFrac() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.InsufficientSlots) / float64(r.Slots)
}

// AvgMachines returns the average machines allocated.
func (r *Result) AvgMachines() float64 {
	if r.Slots == 0 {
		return 0
	}
	return r.Cost / float64(r.Slots)
}

// Run simulates the strategy over load slots [start, len), beginning with
// n0 machines. keepStates retains the per-slot trajectory.
func Run(load *timeseries.Series, start, n0 int, strat Strategy, p plan.Params, keepStates bool) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if start < 0 || start >= load.Len() {
		return nil, fmt.Errorf("sim: start %d out of range", start)
	}
	if n0 < 1 {
		return nil, fmt.Errorf("sim: n0 must be ≥ 1")
	}
	res := &Result{Strategy: strat.Name(), Q: p.Q}
	if keepStates {
		res.States = make([]SlotState, 0, load.Len()-start)
	}

	n := n0
	// In-progress move state.
	var moving bool
	var moveFrom, moveTo, moveSlots, progress int
	var segs []plan.AllocSegment

	for t := start; t < load.Len(); t++ {
		l := load.At(t)
		var machines int
		var effCap float64
		if moving {
			progress++
			fEnd := float64(progress) / float64(moveSlots)
			fMid := (float64(progress) - 0.5) / float64(moveSlots)
			machines = machinesAt(segs, fMid)
			effCap = p.EffCap(moveFrom, moveTo, fEnd)
			if progress >= moveSlots {
				moving = false
				n = moveTo
			}
		} else {
			machines = n
			effCap = p.Cap(n)
		}
		res.Cost += float64(machines)
		res.Slots++
		if l > effCap+1e-9 {
			res.InsufficientSlots++
		}
		if keepStates {
			res.States = append(res.States, SlotState{Load: l, Machines: machines, EffCap: effCap, Migrating: moving})
		}
		if !moving && t+1 < load.Len() {
			if target, act := strat.Decide(t, load.Slice(0, t+1), n); act && target != n && target >= 1 {
				moveFrom, moveTo = n, target
				moveSlots = ceilSlots(p.MoveTime(n, target))
				segs = p.AllocationSegments(n, target)
				progress = 0
				moving = true
				res.Moves++
			}
		}
	}
	return res, nil
}

func ceilSlots(t float64) int {
	s := int(t)
	if float64(s) < t {
		s++
	}
	if s < 1 {
		s = 1
	}
	return s
}

// machinesAt looks up the allocation step function at fraction f.
func machinesAt(segs []plan.AllocSegment, f float64) int {
	for _, s := range segs {
		if f >= s.FracStart && f < s.FracEnd {
			return s.Machines
		}
	}
	if len(segs) == 0 {
		return 0
	}
	return segs[len(segs)-1].Machines
}
