package b2w

import (
	"fmt"
	"strconv"

	"pstore/internal/engine"
	"pstore/internal/storage"
)

// Procedure names (Table 4).
const (
	ProcAddLineToCart          = "AddLineToCart"
	ProcDeleteLineFromCart     = "DeleteLineFromCart"
	ProcGetCart                = "GetCart"
	ProcDeleteCart             = "DeleteCart"
	ProcGetStock               = "GetStock"
	ProcGetStockQuantity       = "GetStockQuantity"
	ProcReserveStock           = "ReserveStock"
	ProcPurchaseStock          = "PurchaseStock"
	ProcCancelStockReservation = "CancelStockReservation"
	ProcCreateStockTransaction = "CreateStockTransaction"
	ProcReserveCart            = "ReserveCart"
	ProcGetStockTransaction    = "GetStockTransaction"
	ProcUpdateStockTransaction = "UpdateStockTransaction"
	ProcCreateCheckout         = "CreateCheckout"
	ProcCreateCheckoutPayment  = "CreateCheckoutPayment"
	ProcAddLineToCheckout      = "AddLineToCheckout"
	ProcDeleteLineFromCheckout = "DeleteLineFromCheckout"
	ProcGetCheckout            = "GetCheckout"
	ProcDeleteCheckout         = "DeleteCheckout"
)

// ProcedureNames lists all 19 benchmark transactions.
var ProcedureNames = []string{
	ProcAddLineToCart, ProcDeleteLineFromCart, ProcGetCart, ProcDeleteCart,
	ProcGetStock, ProcGetStockQuantity, ProcReserveStock, ProcPurchaseStock,
	ProcCancelStockReservation, ProcCreateStockTransaction, ProcReserveCart,
	ProcGetStockTransaction, ProcUpdateStockTransaction, ProcCreateCheckout,
	ProcCreateCheckoutPayment, ProcAddLineToCheckout, ProcDeleteLineFromCheckout,
	ProcGetCheckout, ProcDeleteCheckout,
}

// Register installs all benchmark procedures into the registry.
func Register(reg *engine.Registry) {
	reg.Register(ProcAddLineToCart, addLineToCart)
	reg.Register(ProcDeleteLineFromCart, deleteLineFromCart)
	reg.Register(ProcGetCart, getCart)
	reg.Register(ProcDeleteCart, deleteCart)
	reg.Register(ProcGetStock, getStock)
	reg.Register(ProcGetStockQuantity, getStockQuantity)
	reg.Register(ProcReserveStock, reserveStock)
	reg.Register(ProcPurchaseStock, purchaseStock)
	reg.Register(ProcCancelStockReservation, cancelStockReservation)
	reg.Register(ProcCreateStockTransaction, createStockTransaction)
	reg.Register(ProcReserveCart, reserveCart)
	reg.Register(ProcGetStockTransaction, getStockTransaction)
	reg.Register(ProcUpdateStockTransaction, updateStockTransaction)
	reg.Register(ProcCreateCheckout, createCheckout)
	reg.Register(ProcCreateCheckoutPayment, createCheckoutPayment)
	reg.Register(ProcAddLineToCheckout, addLineToCheckout)
	reg.Register(ProcDeleteLineFromCheckout, deleteLineFromCheckout)
	reg.Register(ProcGetCheckout, getCheckout)
	reg.Register(ProcDeleteCheckout, deleteCheckout)
}

// The procedures read through zero-copy TupleViews (tx.GetView) and write
// through the transaction's scratch column map (tx.ScratchCols): column
// values borrowed from a view may be placed in the scratch map because Put
// encodes the map into the store immediately and never retains it. No view
// or borrowed value is kept past procedure return — the tupleescape vet
// check enforces this.

// col returns the named column of a view ("" when absent or invalid).
func col(v storage.TupleView, name string) string {
	if !v.Valid() {
		return ""
	}
	s, _ := v.Col(name)
	return s
}

// addLineToCart adds a new item to the shopping cart, creating the cart if
// it does not exist yet.
func addLineToCart(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableCart, tx.Key)
	if err != nil {
		return err
	}
	var lines []Line
	if ok {
		if lines, err = decodeLines(col(v, "lines")); err != nil {
			return err
		}
	}
	qty, _ := strconv.Atoi(tx.Arg("qty"))
	if qty <= 0 {
		qty = 1
	}
	price, _ := strconv.ParseFloat(tx.Arg("price"), 64)
	sku := tx.Arg("sku")
	found := false
	for i := range lines {
		if lines[i].SKU == sku {
			lines[i].Quantity += qty
			found = true
			break
		}
	}
	if !found {
		lines = append(lines, Line{SKU: sku, Quantity: qty, Price: price})
	}
	enc, err := encodeLines(lines)
	if err != nil {
		return err
	}
	cols := tx.ScratchCols()
	cols["lines"] = enc
	cols["status"] = StatusOpen
	return tx.Put(TableCart, tx.Key, cols)
}

// deleteLineFromCart removes an item from the cart.
func deleteLineFromCart(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableCart, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("cart not found")
	}
	lines, err := decodeLines(col(v, "lines"))
	if err != nil {
		return err
	}
	sku := tx.Arg("sku")
	out := lines[:0]
	for _, l := range lines {
		if l.SKU != sku {
			out = append(out, l)
		}
	}
	enc, err := encodeLines(out)
	if err != nil {
		return err
	}
	cols := v.AliasCols(tx.ScratchCols())
	cols["lines"] = enc
	return tx.Put(TableCart, tx.Key, cols)
}

// getCart retrieves the items currently in the cart.
func getCart(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableCart, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("cart not found")
	}
	tx.SetOut("lines", col(v, "lines"))
	tx.SetOut("status", col(v, "status"))
	return nil
}

// deleteCart deletes the shopping cart.
func deleteCart(tx *engine.Txn) error {
	_, err := tx.Delete(TableCart, tx.Key)
	return err
}

// getStock retrieves the stock inventory information for an item.
func getStock(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableStock, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("stock item not found")
	}
	v.Range(func(name, val string) bool {
		tx.SetOut(name, val)
		return true
	})
	return nil
}

// getStockQuantity determines the availability of an item.
func getStockQuantity(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableStock, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("stock item not found")
	}
	tx.SetOut("available", col(v, "available"))
	return nil
}

// stockInts parses the stock counters of a row.
func stockInts(v storage.TupleView) (available, reserved, sold int) {
	available, _ = strconv.Atoi(col(v, "available"))
	reserved, _ = strconv.Atoi(col(v, "reserved"))
	sold, _ = strconv.Atoi(col(v, "sold"))
	return
}

// putStock rewrites a stock row's counters, preserving its other columns.
func putStock(tx *engine.Txn, v storage.TupleView, available, reserved, sold int) error {
	cols := v.AliasCols(tx.ScratchCols())
	cols["available"] = strconv.Itoa(available)
	cols["reserved"] = strconv.Itoa(reserved)
	cols["sold"] = strconv.Itoa(sold)
	return tx.Put(TableStock, tx.Key, cols)
}

// reserveStock updates the inventory to mark an item as reserved; it aborts
// when availability is insufficient, which removes the item from the
// customer's cart at the application layer.
func reserveStock(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableStock, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("stock item not found")
	}
	qty, _ := strconv.Atoi(tx.Arg("qty"))
	if qty <= 0 {
		qty = 1
	}
	available, reserved, sold := stockInts(v)
	if available < qty {
		return tx.Abort("insufficient stock")
	}
	return putStock(tx, v, available-qty, reserved+qty, sold)
}

// purchaseStock marks reserved units as purchased.
func purchaseStock(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableStock, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("stock item not found")
	}
	qty, _ := strconv.Atoi(tx.Arg("qty"))
	if qty <= 0 {
		qty = 1
	}
	available, reserved, sold := stockInts(v)
	if reserved < qty {
		return tx.Abort("purchase exceeds reservation")
	}
	return putStock(tx, v, available, reserved-qty, sold+qty)
}

// cancelStockReservation returns reserved units to availability.
func cancelStockReservation(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableStock, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("stock item not found")
	}
	qty, _ := strconv.Atoi(tx.Arg("qty"))
	if qty <= 0 {
		qty = 1
	}
	available, reserved, sold := stockInts(v)
	if reserved < qty {
		return tx.Abort("cancel exceeds reservation")
	}
	return putStock(tx, v, available+qty, reserved-qty, sold)
}

// createStockTransaction records that an item in a cart has been reserved.
func createStockTransaction(tx *engine.Txn) error {
	if _, ok, err := tx.GetView(TableStockTx, tx.Key); err != nil {
		return err
	} else if ok {
		return tx.Abort("stock transaction already exists")
	}
	cols := tx.ScratchCols()
	cols["sku"] = tx.Arg("sku")
	cols["qty"] = tx.Arg("qty")
	cols["cart_id"] = tx.Arg("cart_id")
	cols["status"] = StatusReserved
	return tx.Put(TableStockTx, tx.Key, cols)
}

// reserveCart marks the items in the shopping cart as reserved.
func reserveCart(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableCart, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("cart not found")
	}
	lines, err := decodeLines(col(v, "lines"))
	if err != nil {
		return err
	}
	for i := range lines {
		lines[i].Status = StatusReserved
	}
	enc, err := encodeLines(lines)
	if err != nil {
		return err
	}
	cols := v.AliasCols(tx.ScratchCols())
	cols["lines"] = enc
	cols["status"] = StatusReserved
	return tx.Put(TableCart, tx.Key, cols)
}

// getStockTransaction retrieves a stock transaction.
func getStockTransaction(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableStockTx, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("stock transaction not found")
	}
	v.Range(func(name, val string) bool {
		tx.SetOut(name, val)
		return true
	})
	return nil
}

// updateStockTransaction changes a stock transaction's status to purchased
// or cancelled.
func updateStockTransaction(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableStockTx, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("stock transaction not found")
	}
	status := tx.Arg("status")
	if status != StatusPurchased && status != StatusCancelled {
		return fmt.Errorf("b2w: invalid stock transaction status %q", status)
	}
	cols := v.AliasCols(tx.ScratchCols())
	cols["status"] = status
	return tx.Put(TableStockTx, tx.Key, cols)
}

// createCheckout starts the checkout process.
func createCheckout(tx *engine.Txn) error {
	if _, ok, err := tx.GetView(TableCheckout, tx.Key); err != nil {
		return err
	} else if ok {
		return tx.Abort("checkout already exists")
	}
	cols := tx.ScratchCols()
	cols["cart_id"] = tx.Arg("cart_id")
	cols["status"] = StatusOpen
	cols["lines"] = ""
	return tx.Put(TableCheckout, tx.Key, cols)
}

// createCheckoutPayment adds payment information to the checkout.
func createCheckoutPayment(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableCheckout, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("checkout not found")
	}
	cols := v.AliasCols(tx.ScratchCols())
	cols["payment_method"] = tx.Arg("method")
	cols["payment_amount"] = tx.Arg("amount")
	return tx.Put(TableCheckout, tx.Key, cols)
}

// addLineToCheckout adds a new item to the checkout object.
func addLineToCheckout(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableCheckout, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("checkout not found")
	}
	lines, err := decodeLines(col(v, "lines"))
	if err != nil {
		return err
	}
	qty, _ := strconv.Atoi(tx.Arg("qty"))
	if qty <= 0 {
		qty = 1
	}
	price, _ := strconv.ParseFloat(tx.Arg("price"), 64)
	lines = append(lines, Line{SKU: tx.Arg("sku"), Quantity: qty, Price: price})
	enc, err := encodeLines(lines)
	if err != nil {
		return err
	}
	cols := v.AliasCols(tx.ScratchCols())
	cols["lines"] = enc
	return tx.Put(TableCheckout, tx.Key, cols)
}

// deleteLineFromCheckout removes an item from the checkout object.
func deleteLineFromCheckout(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableCheckout, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("checkout not found")
	}
	lines, err := decodeLines(col(v, "lines"))
	if err != nil {
		return err
	}
	sku := tx.Arg("sku")
	out := lines[:0]
	for _, l := range lines {
		if l.SKU != sku {
			out = append(out, l)
		}
	}
	enc, err := encodeLines(out)
	if err != nil {
		return err
	}
	cols := v.AliasCols(tx.ScratchCols())
	cols["lines"] = enc
	return tx.Put(TableCheckout, tx.Key, cols)
}

// getCheckout retrieves the checkout object.
func getCheckout(tx *engine.Txn) error {
	v, ok, err := tx.GetView(TableCheckout, tx.Key)
	if err != nil {
		return err
	}
	if !ok {
		return tx.Abort("checkout not found")
	}
	v.Range(func(name, val string) bool {
		tx.SetOut(name, val)
		return true
	})
	return nil
}

// deleteCheckout deletes the checkout object.
func deleteCheckout(tx *engine.Txn) error {
	_, err := tx.Delete(TableCheckout, tx.Key)
	return err
}
