package b2w

import (
	"fmt"
	"testing"

	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/storage"
)

func newExec(t *testing.T) *engine.Executor {
	t.Helper()
	reg := engine.NewRegistry()
	Register(reg)
	buckets := make([]int, 32)
	for i := range buckets {
		buckets[i] = i
	}
	p := storage.NewPartition(0, 32, buckets)
	for _, tbl := range Tables {
		p.CreateTable(tbl)
	}
	e := engine.NewExecutor(p, reg, engine.Config{})
	t.Cleanup(e.Stop)
	return e
}

func call(t *testing.T, e *engine.Executor, proc, key string, args map[string]string) engine.Result {
	t.Helper()
	return e.Call(&engine.Txn{Proc: proc, Key: key, Args: args})
}

func mustOK(t *testing.T, res engine.Result) engine.Result {
	t.Helper()
	if res.Err != nil {
		t.Fatalf("unexpected error: %v", res.Err)
	}
	return res
}

func TestCartLifecycle(t *testing.T) {
	e := newExec(t)
	mustOK(t, call(t, e, ProcAddLineToCart, "c1", map[string]string{"sku": "sku-1", "qty": "2", "price": "9.99"}))
	mustOK(t, call(t, e, ProcAddLineToCart, "c1", map[string]string{"sku": "sku-2", "qty": "1", "price": "5.00"}))
	// Adding the same SKU again merges quantities.
	mustOK(t, call(t, e, ProcAddLineToCart, "c1", map[string]string{"sku": "sku-1", "qty": "3", "price": "9.99"}))

	res := mustOK(t, call(t, e, ProcGetCart, "c1", nil))
	lines, err := decodeLines(res.Out["lines"])
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %+v", lines)
	}
	if lines[0].SKU != "sku-1" || lines[0].Quantity != 5 {
		t.Errorf("line 0 = %+v, want sku-1 qty 5", lines[0])
	}

	mustOK(t, call(t, e, ProcDeleteLineFromCart, "c1", map[string]string{"sku": "sku-2"}))
	res = mustOK(t, call(t, e, ProcGetCart, "c1", nil))
	lines, _ = decodeLines(res.Out["lines"])
	if len(lines) != 1 {
		t.Fatalf("after delete, lines = %+v", lines)
	}

	mustOK(t, call(t, e, ProcReserveCart, "c1", nil))
	res = mustOK(t, call(t, e, ProcGetCart, "c1", nil))
	if res.Out["status"] != StatusReserved {
		t.Errorf("status = %q", res.Out["status"])
	}
	lines, _ = decodeLines(res.Out["lines"])
	if lines[0].Status != StatusReserved {
		t.Errorf("line status = %q", lines[0].Status)
	}

	mustOK(t, call(t, e, ProcDeleteCart, "c1", nil))
	if res := call(t, e, ProcGetCart, "c1", nil); !engine.IsAbort(res.Err) {
		t.Errorf("get deleted cart err = %v, want abort", res.Err)
	}
}

func TestCartNotFoundAborts(t *testing.T) {
	e := newExec(t)
	for _, proc := range []string{ProcGetCart, ProcReserveCart} {
		if res := call(t, e, proc, "ghost", nil); !engine.IsAbort(res.Err) {
			t.Errorf("%s on missing cart: err = %v, want abort", proc, res.Err)
		}
	}
	if res := call(t, e, ProcDeleteLineFromCart, "ghost", map[string]string{"sku": "s"}); !engine.IsAbort(res.Err) {
		t.Errorf("DeleteLineFromCart err = %v, want abort", res.Err)
	}
}

func TestStockLifecycle(t *testing.T) {
	e := newExec(t)
	// Seed the stock row directly.
	err := e.Do(func(p *storage.Partition) (int, error) {
		return 0, p.Put(TableStock, "sku-9", map[string]string{
			"available": "10", "reserved": "0", "sold": "0",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	res := mustOK(t, call(t, e, ProcGetStockQuantity, "sku-9", nil))
	if res.Out["available"] != "10" {
		t.Errorf("available = %q", res.Out["available"])
	}

	mustOK(t, call(t, e, ProcReserveStock, "sku-9", map[string]string{"qty": "4"}))
	res = mustOK(t, call(t, e, ProcGetStock, "sku-9", nil))
	if res.Out["available"] != "6" || res.Out["reserved"] != "4" {
		t.Errorf("after reserve: %v", res.Out)
	}

	mustOK(t, call(t, e, ProcPurchaseStock, "sku-9", map[string]string{"qty": "3"}))
	res = mustOK(t, call(t, e, ProcGetStock, "sku-9", nil))
	if res.Out["reserved"] != "1" || res.Out["sold"] != "3" {
		t.Errorf("after purchase: %v", res.Out)
	}

	mustOK(t, call(t, e, ProcCancelStockReservation, "sku-9", map[string]string{"qty": "1"}))
	res = mustOK(t, call(t, e, ProcGetStock, "sku-9", nil))
	if res.Out["available"] != "7" || res.Out["reserved"] != "0" {
		t.Errorf("after cancel: %v", res.Out)
	}

	// Over-reserving aborts.
	if res := call(t, e, ProcReserveStock, "sku-9", map[string]string{"qty": "100"}); !engine.IsAbort(res.Err) {
		t.Errorf("over-reserve err = %v, want abort", res.Err)
	}
	// Over-purchasing aborts.
	if res := call(t, e, ProcPurchaseStock, "sku-9", map[string]string{"qty": "100"}); !engine.IsAbort(res.Err) {
		t.Errorf("over-purchase err = %v, want abort", res.Err)
	}
}

func TestStockConservation(t *testing.T) {
	// available + reserved + sold is invariant under the stock procedures.
	e := newExec(t)
	err := e.Do(func(p *storage.Partition) (int, error) {
		return 0, p.Put(TableStock, "sku-1", map[string]string{
			"available": "50", "reserved": "0", "sold": "0",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	ops := []struct {
		proc string
		qty  string
	}{
		{ProcReserveStock, "5"}, {ProcReserveStock, "7"}, {ProcPurchaseStock, "4"},
		{ProcCancelStockReservation, "2"}, {ProcReserveStock, "10"}, {ProcPurchaseStock, "10"},
	}
	for _, op := range ops {
		call(t, e, op.proc, "sku-1", map[string]string{"qty": op.qty})
	}
	res := mustOK(t, call(t, e, ProcGetStock, "sku-1", nil))
	var a, r, s int
	fmt.Sscan(res.Out["available"], &a)
	fmt.Sscan(res.Out["reserved"], &r)
	fmt.Sscan(res.Out["sold"], &s)
	if a+r+s != 50 {
		t.Errorf("conservation violated: %d+%d+%d != 50", a, r, s)
	}
}

func TestStockTransactionLifecycle(t *testing.T) {
	e := newExec(t)
	mustOK(t, call(t, e, ProcCreateStockTransaction, "st1", map[string]string{
		"sku": "sku-1", "qty": "2", "cart_id": "c1",
	}))
	if res := call(t, e, ProcCreateStockTransaction, "st1", nil); !engine.IsAbort(res.Err) {
		t.Errorf("duplicate create err = %v, want abort", res.Err)
	}
	res := mustOK(t, call(t, e, ProcGetStockTransaction, "st1", nil))
	if res.Out["status"] != StatusReserved || res.Out["sku"] != "sku-1" {
		t.Errorf("stock tx = %v", res.Out)
	}
	mustOK(t, call(t, e, ProcUpdateStockTransaction, "st1", map[string]string{"status": StatusPurchased}))
	res = mustOK(t, call(t, e, ProcGetStockTransaction, "st1", nil))
	if res.Out["status"] != StatusPurchased {
		t.Errorf("status = %q", res.Out["status"])
	}
	// Invalid status is a hard error, not an abort.
	if res := call(t, e, ProcUpdateStockTransaction, "st1", map[string]string{"status": "weird"}); res.Err == nil || engine.IsAbort(res.Err) {
		t.Errorf("invalid status err = %v", res.Err)
	}
}

func TestCheckoutLifecycle(t *testing.T) {
	e := newExec(t)
	mustOK(t, call(t, e, ProcCreateCheckout, "ck1", map[string]string{"cart_id": "c1"}))
	if res := call(t, e, ProcCreateCheckout, "ck1", nil); !engine.IsAbort(res.Err) {
		t.Errorf("duplicate checkout err = %v, want abort", res.Err)
	}
	mustOK(t, call(t, e, ProcAddLineToCheckout, "ck1", map[string]string{"sku": "s1", "qty": "2", "price": "3.50"}))
	mustOK(t, call(t, e, ProcAddLineToCheckout, "ck1", map[string]string{"sku": "s2", "qty": "1", "price": "1.00"}))
	mustOK(t, call(t, e, ProcCreateCheckoutPayment, "ck1", map[string]string{"method": "card", "amount": "8.00"}))
	mustOK(t, call(t, e, ProcDeleteLineFromCheckout, "ck1", map[string]string{"sku": "s1"}))

	res := mustOK(t, call(t, e, ProcGetCheckout, "ck1", nil))
	if res.Out["payment_method"] != "card" {
		t.Errorf("payment = %v", res.Out)
	}
	lines, _ := decodeLines(res.Out["lines"])
	if len(lines) != 1 || lines[0].SKU != "s2" {
		t.Errorf("lines = %+v", lines)
	}

	mustOK(t, call(t, e, ProcDeleteCheckout, "ck1", nil))
	if res := call(t, e, ProcGetCheckout, "ck1", nil); !engine.IsAbort(res.Err) {
		t.Errorf("get deleted checkout err = %v, want abort", res.Err)
	}
}

func TestDriverMixAndKeys(t *testing.T) {
	d := NewDriver(DriverConfig{StockItems: 100, CartPool: 50, Seed: 1})
	seen := make(map[string]int)
	for i := 0; i < 20000; i++ {
		txn := d.Next()
		if txn.Proc == "" || txn.Key == "" {
			t.Fatalf("bad txn %+v", txn)
		}
		seen[txn.Proc]++
	}
	// Every one of the 19 procedures appears.
	for _, name := range ProcedureNames {
		if seen[name] == 0 {
			t.Errorf("procedure %s never generated", name)
		}
	}
	// Reads on carts dominate, roughly per the mix weights.
	if seen[ProcGetCart] < seen[ProcDeleteCart] {
		t.Errorf("mix skewed: GetCart %d < DeleteCart %d", seen[ProcGetCart], seen[ProcDeleteCart])
	}
}

func TestDriverAgainstCluster(t *testing.T) {
	reg := engine.NewRegistry()
	Register(reg)
	c, err := cluster.New(cluster.Config{
		InitialNodes:      2,
		PartitionsPerNode: 2,
		NBuckets:          64,
		Tables:            Tables,
		Registry:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	d := NewDriver(DriverConfig{StockItems: 200, CartPool: 100, Seed: 2})
	if err := d.Preload(c, 100); err != nil {
		t.Fatal(err)
	}
	hardErrs := 0
	for i := 0; i < 3000; i++ {
		res := c.Call(d.Next())
		if res.Err != nil && !engine.IsAbort(res.Err) {
			hardErrs++
			if hardErrs < 5 {
				t.Logf("hard error: %v", res.Err)
			}
		}
	}
	if hardErrs > 0 {
		t.Errorf("%d hard errors from driver workload", hardErrs)
	}
	rows, err := c.TotalRows()
	if err != nil {
		t.Fatal(err)
	}
	if rows < 200 {
		t.Errorf("rows = %d, want at least the catalog", rows)
	}
}
