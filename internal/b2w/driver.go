package b2w

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"

	"pstore/internal/cluster"
	"pstore/internal/engine"
)

// DriverConfig parameterizes the workload driver.
type DriverConfig struct {
	// StockItems is the catalog size (distinct SKUs).
	StockItems int
	// CartPool is the number of concurrently active shopping carts the
	// driver cycles through. Cart keys are randomly generated, so access
	// spreads uniformly over partitions (§8.1).
	CartPool int
	Seed     int64
}

// DefaultDriverConfig returns a mid-sized catalog and cart pool.
func DefaultDriverConfig() DriverConfig {
	return DriverConfig{StockItems: 5000, CartPool: 2000, Seed: 7}
}

// mixEntry is one transaction type's share of the workload. The weights
// model B2W's cart/checkout traffic: browsing and cart updates dominate,
// checkout and stock mutation follow the funnel.
type mixEntry struct {
	proc   string
	weight int
}

var defaultMix = []mixEntry{
	{ProcGetCart, 24},
	{ProcAddLineToCart, 17},
	{ProcDeleteLineFromCart, 3},
	{ProcDeleteCart, 2},
	{ProcGetStockQuantity, 14},
	{ProcGetStock, 5},
	{ProcReserveStock, 6},
	{ProcPurchaseStock, 3},
	{ProcCancelStockReservation, 1},
	{ProcCreateStockTransaction, 4},
	{ProcReserveCart, 3},
	{ProcGetStockTransaction, 2},
	{ProcUpdateStockTransaction, 2},
	{ProcCreateCheckout, 4},
	{ProcCreateCheckoutPayment, 2},
	{ProcAddLineToCheckout, 3},
	{ProcDeleteLineFromCheckout, 1},
	{ProcGetCheckout, 3},
	{ProcDeleteCheckout, 1},
}

// Driver generates the B2W transaction mix. It is safe for concurrent use.
type Driver struct {
	cfg      DriverConfig
	mixTotal int
	mix      []mixEntry

	mu        sync.Mutex
	rng       *rand.Rand
	carts     []string
	checkouts []string
	stockTxs  []string
	nextCart  int64
	nextCkout int64
	nextSttx  int64
}

// NewDriver returns a driver with the default transaction mix.
func NewDriver(cfg DriverConfig) *Driver {
	if cfg.StockItems <= 0 {
		cfg.StockItems = 1
	}
	if cfg.CartPool <= 0 {
		cfg.CartPool = 1
	}
	d := &Driver{cfg: cfg, mix: defaultMix, rng: rand.New(rand.NewSource(cfg.Seed))}
	for _, m := range d.mix {
		d.mixTotal += m.weight
	}
	return d
}

// Preload bulk-loads the stock catalog and an initial population of carts
// into the cluster, sized so the database resembles a day of active carts.
func (d *Driver) Preload(c *cluster.Cluster, carts int) error {
	for i := 0; i < d.cfg.StockItems; i++ {
		cols := map[string]string{
			"available": "1000000",
			"reserved":  "0",
			"sold":      "0",
			"name":      fmt.Sprintf("item %d", i),
		}
		if err := c.LoadRow(TableStock, d.skuKey(i), cols); err != nil {
			return err
		}
	}
	for i := 0; i < carts; i++ {
		key := d.newCartKey()
		lines, err := encodeLines([]Line{{SKU: d.randomSKULocked(), Quantity: 1, Price: 9.99}})
		if err != nil {
			return err
		}
		if err := c.LoadRow(TableCart, key, map[string]string{"lines": lines, "status": StatusOpen}); err != nil {
			return err
		}
		d.rememberCart(key)
	}
	return nil
}

func (d *Driver) skuKey(i int) string { return fmt.Sprintf("sku-%08d", i) }

// newCartKey mints a random cart key (B2W cart IDs are random UUIDs, which
// is what makes the workload hash-uniform).
func (d *Driver) newCartKey() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextCart++
	return fmt.Sprintf("cart-%016x", d.rng.Uint64())
}

func (d *Driver) rememberCart(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rememberCartLocked(key)
}

func (d *Driver) rememberCartLocked(key string) {
	if len(d.carts) < d.cfg.CartPool {
		d.carts = append(d.carts, key)
		return
	}
	d.carts[d.rng.Intn(len(d.carts))] = key
}

func (d *Driver) randomSKULocked() string {
	return d.skuKey(d.rng.Intn(d.cfg.StockItems))
}

// Next produces the next transaction of the mix.
func (d *Driver) Next() *engine.Txn {
	d.mu.Lock()
	defer d.mu.Unlock()
	roll := d.rng.Intn(d.mixTotal)
	var proc string
	for _, m := range d.mix {
		if roll < m.weight {
			proc = m.proc
			break
		}
		roll -= m.weight
	}
	return d.buildLocked(proc)
}

func (d *Driver) buildLocked(proc string) *engine.Txn {
	qty := strconv.Itoa(1 + d.rng.Intn(3))
	price := strconv.FormatFloat(4.99+float64(d.rng.Intn(20000))/100, 'f', 2, 64)
	switch proc {
	case ProcAddLineToCart:
		var key string
		if len(d.carts) > 0 && d.rng.Float64() < 0.7 {
			key = d.carts[d.rng.Intn(len(d.carts))]
		} else {
			key = fmt.Sprintf("cart-%016x", d.rng.Uint64())
			d.rememberCartLocked(key)
		}
		return &engine.Txn{Proc: proc, Key: key, Args: map[string]string{
			"sku": d.randomSKULocked(), "qty": qty, "price": price,
		}}
	case ProcGetCart, ProcReserveCart, ProcDeleteCart, ProcDeleteLineFromCart:
		key := d.cartKeyLocked()
		args := map[string]string{}
		if proc == ProcDeleteLineFromCart {
			args["sku"] = d.randomSKULocked()
		}
		return &engine.Txn{Proc: proc, Key: key, Args: args}
	case ProcGetStock, ProcGetStockQuantity, ProcReserveStock, ProcPurchaseStock, ProcCancelStockReservation:
		return &engine.Txn{Proc: proc, Key: d.randomSKULocked(), Args: map[string]string{"qty": qty}}
	case ProcCreateStockTransaction:
		d.nextSttx++
		key := fmt.Sprintf("sttx-%016x", d.rng.Uint64())
		if len(d.stockTxs) < 512 {
			d.stockTxs = append(d.stockTxs, key)
		} else {
			d.stockTxs[d.rng.Intn(len(d.stockTxs))] = key
		}
		return &engine.Txn{Proc: proc, Key: key, Args: map[string]string{
			"sku": d.randomSKULocked(), "qty": qty, "cart_id": d.cartKeyLocked(),
		}}
	case ProcGetStockTransaction, ProcUpdateStockTransaction:
		key := fmt.Sprintf("sttx-%016x", d.rng.Uint64())
		if len(d.stockTxs) > 0 {
			key = d.stockTxs[d.rng.Intn(len(d.stockTxs))]
		}
		args := map[string]string{}
		if proc == ProcUpdateStockTransaction {
			args["status"] = StatusPurchased
			if d.rng.Float64() < 0.2 {
				args["status"] = StatusCancelled
			}
		}
		return &engine.Txn{Proc: proc, Key: key, Args: args}
	case ProcCreateCheckout:
		d.nextCkout++
		key := fmt.Sprintf("ckout-%016x", d.rng.Uint64())
		if len(d.checkouts) < 512 {
			d.checkouts = append(d.checkouts, key)
		} else {
			d.checkouts[d.rng.Intn(len(d.checkouts))] = key
		}
		return &engine.Txn{Proc: proc, Key: key, Args: map[string]string{"cart_id": d.cartKeyLocked()}}
	case ProcCreateCheckoutPayment, ProcAddLineToCheckout, ProcDeleteLineFromCheckout, ProcGetCheckout, ProcDeleteCheckout:
		key := fmt.Sprintf("ckout-%016x", d.rng.Uint64())
		if len(d.checkouts) > 0 {
			key = d.checkouts[d.rng.Intn(len(d.checkouts))]
		}
		args := map[string]string{}
		switch proc {
		case ProcCreateCheckoutPayment:
			args["method"] = "card"
			args["amount"] = price
		case ProcAddLineToCheckout:
			args["sku"] = d.randomSKULocked()
			args["qty"] = qty
			args["price"] = price
		case ProcDeleteLineFromCheckout:
			args["sku"] = d.randomSKULocked()
		}
		return &engine.Txn{Proc: proc, Key: key, Args: args}
	default:
		// Unreachable for the registered mix; fall back to a cart read.
		return &engine.Txn{Proc: ProcGetCart, Key: d.cartKeyLocked()}
	}
}

func (d *Driver) cartKeyLocked() string {
	if len(d.carts) == 0 {
		key := fmt.Sprintf("cart-%016x", d.rng.Uint64())
		d.rememberCartLocked(key)
		return key
	}
	return d.carts[d.rng.Intn(len(d.carts))]
}
