// Package b2w implements the B2W online-retail benchmark of Appendix C: the
// cart/checkout/stock schema (Fig 14) and all 19 stored procedures of
// Table 4, plus a trace-driven workload driver. Every transaction accesses
// a single partitioning key (a cart, checkout, stock-item or
// stock-transaction ID), matching the property the paper relies on ("the
// B2W benchmark has no distributed transactions").
package b2w

import (
	"encoding/json"
	"fmt"
)

// Table names of the simplified B2W database (Fig 14).
const (
	TableCart     = "CART"
	TableCheckout = "CHECKOUT"
	TableStock    = "STOCK"
	TableStockTx  = "STOCK_TRANSACTION"
)

// Tables lists every table for cluster setup.
var Tables = []string{TableCart, TableCheckout, TableStock, TableStockTx}

// Line is one cart or checkout line item.
type Line struct {
	SKU      string  `json:"sku"`
	Quantity int     `json:"qty"`
	Price    float64 `json:"price"`
	Status   string  `json:"status,omitempty"` // "", "reserved"
}

// encodeLines serializes line items for storage in a row column.
func encodeLines(lines []Line) (string, error) {
	b, err := json.Marshal(lines)
	if err != nil {
		return "", fmt.Errorf("b2w: encoding lines: %w", err)
	}
	return string(b), nil
}

// decodeLines parses line items from a row column ("" means none).
func decodeLines(s string) ([]Line, error) {
	if s == "" {
		return nil, nil
	}
	var lines []Line
	if err := json.Unmarshal([]byte(s), &lines); err != nil {
		return nil, fmt.Errorf("b2w: decoding lines: %w", err)
	}
	return lines, nil
}

// Cart / checkout / stock-transaction status values.
const (
	StatusOpen      = "open"
	StatusReserved  = "reserved"
	StatusPurchased = "purchased"
	StatusCancelled = "cancelled"
)
