// Package b2w implements the B2W online-retail benchmark of Appendix C: the
// cart/checkout/stock schema (Fig 14) and all 19 stored procedures of
// Table 4, plus a trace-driven workload driver. Every transaction accesses
// a single partitioning key (a cart, checkout, stock-item or
// stock-transaction ID), matching the property the paper relies on ("the
// B2W benchmark has no distributed transactions").
package b2w

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Table names of the simplified B2W database (Fig 14).
const (
	TableCart     = "CART"
	TableCheckout = "CHECKOUT"
	TableStock    = "STOCK"
	TableStockTx  = "STOCK_TRANSACTION"
)

// Tables lists every table for cluster setup.
var Tables = []string{TableCart, TableCheckout, TableStock, TableStockTx}

// Line is one cart or checkout line item.
type Line struct {
	SKU      string  `json:"sku"`
	Quantity int     `json:"qty"`
	Price    float64 `json:"price"`
	Status   string  `json:"status,omitempty"` // "", "reserved"
}

// Cart lines are stored in a compact field-separated format rather than
// JSON: line items are the single hottest value on the transaction path
// (every cart/checkout procedure decodes and re-encodes them), and
// reflection-based JSON was the largest allocation source in the whole
// request hot path. Records are separated by 0x1E, fields by 0x1F:
//
//	sku \x1f qty \x1f price [ \x1f status ]  (status omitted when empty)
//
// Decoding slices fields out of the stored string without copying.
const (
	lineSep  = '\x1e'
	fieldSep = '\x1f'
)

// encodeLines serializes line items for storage in a row column.
func encodeLines(lines []Line) (string, error) {
	if len(lines) == 0 {
		return "", nil
	}
	var sb strings.Builder
	sb.Grow(24 * len(lines))
	var scratch [40]byte
	for i, l := range lines {
		if strings.ContainsAny(l.SKU, "\x1e\x1f") || strings.ContainsAny(l.Status, "\x1e\x1f") {
			return "", fmt.Errorf("b2w: line field contains separator byte: %+v", l)
		}
		if i > 0 {
			sb.WriteByte(lineSep)
		}
		sb.WriteString(l.SKU)
		sb.WriteByte(fieldSep)
		b := strconv.AppendInt(scratch[:0], int64(l.Quantity), 10)
		b = append(b, fieldSep)
		b = strconv.AppendFloat(b, l.Price, 'g', -1, 64)
		sb.Write(b)
		if l.Status != "" {
			sb.WriteByte(fieldSep)
			sb.WriteString(l.Status)
		}
	}
	return sb.String(), nil
}

// decodeLines parses line items from a row column ("" means none). Legacy
// JSON-encoded values (from data directories written before the compact
// format) are still understood.
func decodeLines(s string) ([]Line, error) {
	if s == "" {
		return nil, nil
	}
	if s[0] == '[' {
		var lines []Line
		if err := json.Unmarshal([]byte(s), &lines); err != nil {
			return nil, fmt.Errorf("b2w: decoding lines: %w", err)
		}
		return lines, nil
	}
	lines := make([]Line, 0, strings.Count(s, string(rune(lineSep)))+1)
	for len(s) > 0 {
		rec := s
		if i := strings.IndexByte(s, lineSep); i >= 0 {
			rec, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		var l Line
		for f := 0; f < 4; f++ {
			field := rec
			if i := strings.IndexByte(rec, fieldSep); i >= 0 {
				field, rec = rec[:i], rec[i+1:]
			} else {
				rec = ""
			}
			switch f {
			case 0:
				l.SKU = field
			case 1:
				q, err := strconv.Atoi(field)
				if err != nil {
					return nil, fmt.Errorf("b2w: decoding line qty %q: %w", field, err)
				}
				l.Quantity = q
			case 2:
				p, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("b2w: decoding line price %q: %w", field, err)
				}
				l.Price = p
			case 3:
				l.Status = field
			}
			if rec == "" && f >= 2 {
				break
			}
		}
		lines = append(lines, l)
	}
	return lines, nil
}

// Cart / checkout / stock-transaction status values.
const (
	StatusOpen      = "open"
	StatusReserved  = "reserved"
	StatusPurchased = "purchased"
	StatusCancelled = "cancelled"
)
