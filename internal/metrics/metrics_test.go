package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileBasics(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {100, 5}, {99, 5},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Errorf("input mutated: %v", vals)
	}
}

func TestPercentileProperty(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p := float64(pRaw) / 255 * 100
		got := Percentile(raw, p)
		sorted := make([]float64, len(raw))
		copy(sorted, raw)
		sort.Float64s(sorted)
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationPercentile(t *testing.T) {
	vals := []time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	if got := DurationPercentile(vals, 100); got != 3*time.Millisecond {
		t.Errorf("got %v", got)
	}
	if DurationPercentile(nil, 50) != 0 {
		t.Error("empty should be 0")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	want := []CDFPoint{{1, 1.0 / 3}, {2, 2.0 / 3}, {3, 1}}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := range want {
		if pts[i].Value != want[i].Value || math.Abs(pts[i].Cum-want[i].Cum) > 1e-12 {
			t.Errorf("point %d = %+v, want %+v", i, pts[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestTopFractionCDF(t *testing.T) {
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64(i)
	}
	pts := TopFractionCDF(vals, 0.01)
	if len(pts) != 2 {
		t.Fatalf("top 1%% of 200 = %d points, want 2", len(pts))
	}
	if pts[0].Value != 198 || pts[1].Value != 199 {
		t.Errorf("top values = %v, %v", pts[0].Value, pts[1].Value)
	}
	if got := TopFractionCDF([]float64{7}, 0.01); len(got) != 1 {
		t.Errorf("singleton should yield 1 point, got %d", len(got))
	}
	if TopFractionCDF(nil, 0.01) != nil || TopFractionCDF(vals, 0) != nil {
		t.Error("degenerate inputs should be nil")
	}
}

func TestLatencyRecorderWindows(t *testing.T) {
	r := NewLatencyRecorder(time.Second)
	base := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	// Window 0: 100 obs of 10ms with one 600ms outlier at the p99 edge.
	for i := 0; i < 99; i++ {
		r.Record(base.Add(time.Duration(i)*time.Millisecond), 10*time.Millisecond)
	}
	r.Record(base.Add(500*time.Millisecond), 600*time.Millisecond)
	// Window 2: all slow.
	for i := 0; i < 10; i++ {
		r.Record(base.Add(2*time.Second+time.Duration(i)*time.Millisecond), 700*time.Millisecond)
	}
	ws := r.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	w0 := ws[0]
	if w0.Count != 100 || w0.P50 != 10*time.Millisecond || w0.P99 != 10*time.Millisecond || w0.Max != 600*time.Millisecond {
		t.Errorf("window 0 = %+v", w0)
	}
	w2 := ws[1]
	if !w2.Start.Equal(base.Add(2 * time.Second)) {
		t.Errorf("window 2 start = %v", w2.Start)
	}
	if w2.P50 != 700*time.Millisecond {
		t.Errorf("window 2 p50 = %v", w2.P50)
	}
	if r.Count() != 110 {
		t.Errorf("Count = %d, want 110", r.Count())
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	r := NewLatencyRecorder(time.Second)
	base := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(base.Add(time.Duration(i)*time.Millisecond), time.Duration(g+1)*time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if r.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", r.Count())
	}
}

// TestLatencyRecorderRetention checks the bounded-memory contract: raw
// sample windows older than the horizon are summarized and evicted, totals
// and per-window stats stay intact, and late records into evicted windows
// are dropped and counted.
func TestLatencyRecorderRetention(t *testing.T) {
	r := NewLatencyRecorder(time.Second)
	r.SetRetention(5 * time.Second)
	base := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 60; i++ {
		r.Record(base.Add(time.Duration(i)*time.Second), time.Duration(i+1)*time.Millisecond)
	}
	if raw := r.RawWindows(); raw > 5 {
		t.Errorf("RawWindows = %d, want <= 5 (horizon)", raw)
	}
	if r.Count() != 60 {
		t.Errorf("Count = %d, want 60", r.Count())
	}
	ws := r.Windows()
	if len(ws) != 60 {
		t.Fatalf("windows = %d, want 60", len(ws))
	}
	for i, w := range ws {
		if w.Count != 1 || w.P50 != time.Duration(i+1)*time.Millisecond {
			t.Errorf("window %d = %+v", i, w)
		}
		if !w.Start.Equal(base.Add(time.Duration(i) * time.Second)) {
			t.Errorf("window %d start = %v", i, w.Start)
		}
	}
	// A record landing in an evicted window is dropped, not resurrected.
	if r.LateDropped() != 0 {
		t.Fatalf("LateDropped = %d before late record", r.LateDropped())
	}
	r.Record(base.Add(3*time.Second), time.Millisecond)
	if r.LateDropped() != 1 {
		t.Errorf("LateDropped = %d, want 1", r.LateDropped())
	}
	if r.Count() != 60 {
		t.Errorf("Count after late drop = %d, want 60", r.Count())
	}
}

// TestLatencyRecorderSetRetentionEvicts checks that shrinking the horizon
// evicts immediately without losing any summaries.
func TestLatencyRecorderSetRetentionEvicts(t *testing.T) {
	r := NewLatencyRecorder(time.Second)
	base := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 30; i++ {
		r.Record(base.Add(time.Duration(i)*time.Second), 5*time.Millisecond)
	}
	if raw := r.RawWindows(); raw != 30 {
		t.Fatalf("RawWindows = %d, want 30 under the default horizon", raw)
	}
	r.SetRetention(3 * time.Second)
	if raw := r.RawWindows(); raw > 3 {
		t.Errorf("RawWindows after shrink = %d, want <= 3", raw)
	}
	if r.Count() != 30 {
		t.Errorf("Count = %d, want 30", r.Count())
	}
	if got := len(r.Windows()); got != 30 {
		t.Errorf("windows = %d, want 30", got)
	}
}

func TestSLAViolations(t *testing.T) {
	ws := []WindowStats{
		{P50: 100 * time.Millisecond, P95: 400 * time.Millisecond, P99: 600 * time.Millisecond},
		{P50: 600 * time.Millisecond, P95: 700 * time.Millisecond, P99: 800 * time.Millisecond},
		{P50: 10 * time.Millisecond, P95: 20 * time.Millisecond, P99: 30 * time.Millisecond},
	}
	rep := SLAViolations(ws, 500*time.Millisecond)
	if rep.P50Violations != 1 || rep.P95Violations != 1 || rep.P99Violations != 2 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Windows != 3 {
		t.Errorf("windows = %d", rep.Windows)
	}
}

func TestPercentileSeries(t *testing.T) {
	ws := []WindowStats{
		{P50: 10 * time.Millisecond, P95: 20 * time.Millisecond, P99: 30 * time.Millisecond},
		{P50: 40 * time.Millisecond, P95: 50 * time.Millisecond, P99: 60 * time.Millisecond},
	}
	if got := PercentileSeries(ws, 95); got[0] != 20 || got[1] != 50 {
		t.Errorf("p95 series = %v", got)
	}
	if got := PercentileSeries(ws, 42); len(got) != 0 {
		t.Errorf("unknown percentile should be empty, got %v", got)
	}
}

func TestAllocationTrackerAverage(t *testing.T) {
	base := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	tr := NewAllocationTracker(base, 2)
	tr.Set(base.Add(10*time.Second), 4)
	tr.Set(base.Add(30*time.Second), 1)
	// 10s at 2, 20s at 4, 10s at 1 → (20+80+10)/40 = 2.75
	got := tr.Average(base.Add(40 * time.Second))
	if math.Abs(got-2.75) > 1e-9 {
		t.Errorf("Average = %v, want 2.75", got)
	}
	if tr.Current() != 1 {
		t.Errorf("Current = %d, want 1", tr.Current())
	}
	if s := tr.Series(); len(s) != 3 || s[1].Machines != 4 {
		t.Errorf("Series = %+v", s)
	}
	// Degenerate range.
	if got := tr.Average(base); got != 2 {
		t.Errorf("zero-length average = %v, want 2", got)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter(time.Second)
	base := time.Now()
	c.Add(base, 3)
	c.Add(base.Add(500*time.Millisecond), 2)
	c.Add(base.Add(2500*time.Millisecond), 7)
	if c.Total() != 12 {
		t.Errorf("Total = %d, want 12", c.Total())
	}
	rate := c.Rate()
	if len(rate) != 3 || rate[0] != 5 || rate[1] != 0 || rate[2] != 7 {
		t.Errorf("Rate = %v, want [5 0 7]", rate)
	}
	if NewCounter(0).Rate() != nil {
		t.Error("empty counter rate should be nil")
	}
}

func TestLatencyRecorderRandomizedAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewLatencyRecorder(time.Second)
	base := time.Now()
	var all []time.Duration
	for i := 0; i < 500; i++ {
		l := time.Duration(rng.Intn(1000)) * time.Millisecond
		r.Record(base.Add(time.Duration(rng.Intn(900))*time.Millisecond), l)
		all = append(all, l)
	}
	ws := r.Windows()
	if len(ws) != 1 {
		t.Fatalf("windows = %d, want 1", len(ws))
	}
	if want := DurationPercentile(all, 99); ws[0].P99 != want {
		t.Errorf("p99 = %v, want %v", ws[0].P99, want)
	}
	if want := DurationPercentile(all, 50); ws[0].P50 != want {
		t.Errorf("p50 = %v, want %v", ws[0].P50, want)
	}
}

func TestEventsCounters(t *testing.T) {
	e := NewEvents()
	if got := e.Get(EventShed); got != 0 {
		t.Errorf("fresh counter = %d, want 0", got)
	}
	e.Add(EventShed, 1)
	e.Add(EventShed, 2)
	e.Add(EventMigrationRetries, 5)
	if got := e.Get(EventShed); got != 3 {
		t.Errorf("shed = %d, want 3", got)
	}
	snap := e.Snapshot()
	if snap[EventShed] != 3 || snap[EventMigrationRetries] != 5 {
		t.Errorf("snapshot = %v", snap)
	}
	names := e.Names()
	if len(names) != 2 || names[0] != EventMigrationRetries || names[1] != EventShed {
		t.Errorf("names = %v", names)
	}
	// nil registry is a no-op everywhere (callers may run without metrics).
	var nilE *Events
	nilE.Add(EventShed, 1)
	if nilE.Get(EventShed) != 0 || nilE.Snapshot() != nil || nilE.Names() != nil {
		t.Error("nil Events should be inert")
	}
}

func TestEventsConcurrent(t *testing.T) {
	e := NewEvents()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				e.Add(EventShed, 1)
			}
		}()
	}
	wg.Wait()
	if got := e.Get(EventShed); got != 8000 {
		t.Errorf("concurrent adds = %d, want 8000", got)
	}
}

func TestDurationHist(t *testing.T) {
	h := NewDurationHist()
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should read zero")
	}
	// 90 fast observations, 10 slow ones: p50 lands in the fast bucket,
	// p99 in the slow one. Log-2 buckets bound quantiles within 2×.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket [64µs, 128µs)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond) // bucket [8.192ms, 16.384ms)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Max() != 10*time.Millisecond {
		t.Errorf("Max = %v", h.Max())
	}
	if p50 := h.Quantile(0.5); p50 != 128*time.Microsecond {
		t.Errorf("p50 = %v, want 128µs (upper edge of the fast bucket)", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 16384*time.Microsecond {
		t.Errorf("p99 = %v, want 16.384ms (upper edge of the slow bucket)", p99)
	}
	if mean := h.Mean(); mean < time.Millisecond || mean > 2*time.Millisecond {
		t.Errorf("Mean = %v, want ~1.09ms", mean)
	}
	// Sub-microsecond and negative observations land in bucket 0.
	h.Observe(0)
	h.Observe(-time.Second)
	if snap := h.Snapshot(); snap[0] != 2 {
		t.Errorf("bucket 0 count = %d, want 2", snap[0])
	}
	// An absurdly large observation clamps to the last bucket, whose
	// quantile reads back the true max.
	h2 := NewDurationHist()
	h2.Observe(24 * time.Hour)
	if h2.Quantile(1) != 24*time.Hour {
		t.Errorf("overflow quantile = %v", h2.Quantile(1))
	}
}

func TestDurationHistConcurrent(t *testing.T) {
	h := NewDurationHist()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}
