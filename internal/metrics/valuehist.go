package metrics

import (
	"math/bits"
	"sync/atomic"
)

// Hist is a fixed-size, log2-bucketed histogram of unitless int64 values —
// the value-domain sibling of DurationHist. Bucket i covers [2^(i-1), 2^i)
// (bucket 0 is 0 and 1), spanning 1 to ~10^9, which covers every pipeline
// quantity it records: records per ship batch, bytes per frame, ack-window
// occupancy, standby fsync batch sizes, microsecond latencies. Concurrent
// and allocation-free on the record path, like every hot-path metric here.
type Hist struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHist returns an empty value histogram.
func NewHist() *Hist { return &Hist{} }

// valueIndex maps a value to its bucket.
func valueIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	idx := bits.Len64(uint64(v)) // 0 for 0, else floor(log2)+1
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Observe records one value.
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[valueIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation.
func (h *Hist) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the average observation (0 when empty).
func (h *Hist) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the top
// edge of the bucket holding the q-th observation, exact to within 2×.
func (h *Hist) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen > rank {
			if i == histBuckets-1 {
				return h.Max()
			}
			return int64(1) << uint(i)
		}
	}
	return h.Max()
}

// Snapshot returns the per-bucket counts; entry i is the count of
// observations in [2^(i-1), 2^i) (entry 0 counts values ≤ 1).
func (h *Hist) Snapshot() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, histBuckets)
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out
}
