// Package metrics provides the measurement machinery for P-Store's
// evaluation: windowed latency percentiles, SLA-violation counting (the
// paper defines a violation as a second in which the 50th/95th/99th
// percentile latency exceeds 500 ms), latency CDFs (Fig 10) and
// machine-allocation accounting (Eq. 1 cost).
package metrics

import (
	"sort"
	"time"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of the values using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile over an already ascending-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	// Nearest-rank: smallest index i with (i+1)/n ≥ p/100.
	rank := int(p/100*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// DurationPercentile returns the p-th percentile of the durations.
func DurationPercentile(values []time.Duration, p float64) time.Duration {
	if len(values) == 0 {
		return 0
	}
	f := make([]float64, len(values))
	for i, v := range values {
		f[i] = float64(v)
	}
	return time.Duration(Percentile(f, p))
}

// CDFPoint is one point of an empirical CDF: fraction Cum of observations
// are ≤ Value.
type CDFPoint struct {
	Value float64
	Cum   float64
}

// CDF returns the empirical CDF of the values.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Cum: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// TopFractionCDF returns the CDF of the largest topFrac fraction of the
// values (e.g. 0.01 for the paper's "top 1% of per-second percentile
// latencies", Fig 10). At least one value is always included.
func TopFractionCDF(values []float64, topFrac float64) []CDFPoint {
	if len(values) == 0 || topFrac <= 0 {
		return nil
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	n := int(float64(len(sorted)) * topFrac)
	if n < 1 {
		n = 1
	}
	return CDF(sorted[len(sorted)-n:])
}
