package metrics

import (
	"sort"
	"sync"
	"time"
)

// WindowStats summarizes the latencies observed in one window (the paper
// windows by second; compressed-time experiments use shorter windows).
type WindowStats struct {
	Start time.Time
	Count int
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
	Mean  time.Duration
}

// LatencyRecorder collects transaction latencies into fixed-size time
// windows and summarizes each window's percentiles. It is safe for
// concurrent use.
type LatencyRecorder struct {
	window time.Duration

	mu      sync.Mutex
	buckets map[int64][]time.Duration
	epoch   time.Time
	started bool
}

// NewLatencyRecorder returns a recorder with the given window size
// (typically one second, per the paper's SLA definition).
func NewLatencyRecorder(window time.Duration) *LatencyRecorder {
	if window <= 0 {
		window = time.Second
	}
	return &LatencyRecorder{window: window, buckets: make(map[int64][]time.Duration)}
}

// Record adds one latency observation at the given time.
func (r *LatencyRecorder) Record(at time.Time, latency time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		r.epoch = at
		r.started = true
	}
	idx := int64(at.Sub(r.epoch) / r.window)
	r.buckets[idx] = append(r.buckets[idx], latency)
}

// Count returns the total number of recorded observations.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.buckets {
		n += len(b)
	}
	return n
}

// Windows returns per-window summaries in time order.
func (r *LatencyRecorder) Windows() []WindowStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	idxs := make([]int64, 0, len(r.buckets))
	for i := range r.buckets {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out := make([]WindowStats, 0, len(idxs))
	for _, i := range idxs {
		lat := r.buckets[i]
		sorted := make([]float64, len(lat))
		var sum, max time.Duration
		for j, l := range lat {
			sorted[j] = float64(l)
			sum += l
			if l > max {
				max = l
			}
		}
		sort.Float64s(sorted)
		out = append(out, WindowStats{
			Start: r.epoch.Add(time.Duration(i) * r.window),
			Count: len(lat),
			P50:   time.Duration(percentileSorted(sorted, 50)),
			P95:   time.Duration(percentileSorted(sorted, 95)),
			P99:   time.Duration(percentileSorted(sorted, 99)),
			Max:   max,
			Mean:  sum / time.Duration(len(lat)),
		})
	}
	return out
}

// SLAReport counts, per percentile, the number of windows whose percentile
// latency exceeded the threshold — Table 2's "number of SLA violations".
type SLAReport struct {
	Threshold     time.Duration
	Windows       int
	P50Violations int
	P95Violations int
	P99Violations int
}

// SLAViolations evaluates the windows against a latency threshold (the
// paper uses 500 ms, the largest delay unnoticeable to users).
func SLAViolations(windows []WindowStats, threshold time.Duration) SLAReport {
	rep := SLAReport{Threshold: threshold, Windows: len(windows)}
	for _, w := range windows {
		if w.P50 > threshold {
			rep.P50Violations++
		}
		if w.P95 > threshold {
			rep.P95Violations++
		}
		if w.P99 > threshold {
			rep.P99Violations++
		}
	}
	return rep
}

// PercentileSeries extracts one percentile (50, 95 or 99) across windows,
// in milliseconds — the input to the Fig 10 CDFs.
func PercentileSeries(windows []WindowStats, p int) []float64 {
	out := make([]float64, 0, len(windows))
	for _, w := range windows {
		var v time.Duration
		switch p {
		case 50:
			v = w.P50
		case 95:
			v = w.P95
		case 99:
			v = w.P99
		default:
			continue
		}
		out = append(out, float64(v)/float64(time.Millisecond))
	}
	return out
}
