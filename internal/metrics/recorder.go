package metrics

import (
	"sort"
	"sync"
	"time"
)

// WindowStats summarizes the latencies observed in one window (the paper
// windows by second; compressed-time experiments use shorter windows).
type WindowStats struct {
	Start time.Time
	Count int
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
	Mean  time.Duration
}

// DefaultRetention is how far behind the newest observation a window's raw
// latency samples are kept before being summarized and evicted.
const DefaultRetention = 2 * time.Minute

// Recorder receives latency observations. LatencyRecorder (single mutex)
// and ShardedRecorder (striped, for hot paths) both implement it.
type Recorder interface {
	Record(at time.Time, latency time.Duration)
}

// LatencyRecorder collects transaction latencies into fixed-size time
// windows and summarizes each window's percentiles. It is safe for
// concurrent use.
//
// Raw per-window samples are kept only within a configurable retention
// horizon of the newest observation; older windows are summarized into
// fixed-size WindowStats and their samples freed, so a long-running
// recorder's memory is bounded by the horizon, not the run length.
// Observations arriving for an already-summarized window are dropped (and
// counted in LateDropped).
type LatencyRecorder struct {
	window time.Duration

	mu        sync.Mutex
	buckets   map[int64][]time.Duration // raw samples, recent windows only
	finalized map[int64]WindowStats     // summarized, evicted windows
	retention int64                     // horizon in windows
	maxIdx    int64                     // newest window seen
	late      int64                     // dropped late observations
	epoch     time.Time
	started   bool
}

// NewLatencyRecorder returns a recorder with the given window size
// (typically one second, per the paper's SLA definition) and the default
// retention horizon.
func NewLatencyRecorder(window time.Duration) *LatencyRecorder {
	if window <= 0 {
		window = time.Second
	}
	r := &LatencyRecorder{
		window:    window,
		buckets:   make(map[int64][]time.Duration),
		finalized: make(map[int64]WindowStats),
	}
	r.setRetentionLocked(DefaultRetention)
	return r
}

// SetRetention changes the retention horizon: windows ending more than
// horizon behind the newest observation are summarized and their raw
// samples evicted. A horizon below one window keeps a single raw window.
func (r *LatencyRecorder) SetRetention(horizon time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.setRetentionLocked(horizon)
	r.evictLocked()
}

func (r *LatencyRecorder) setRetentionLocked(horizon time.Duration) {
	n := int64(horizon / r.window)
	if n < 1 {
		n = 1
	}
	r.retention = n
}

// Record adds one latency observation at the given time.
func (r *LatencyRecorder) Record(at time.Time, latency time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		r.epoch = at
		r.started = true
	}
	idx := int64(at.Sub(r.epoch) / r.window)
	if _, done := r.finalized[idx]; done || idx <= r.maxIdx-r.retention {
		r.late++
		return
	}
	r.buckets[idx] = append(r.buckets[idx], latency)
	if idx > r.maxIdx {
		r.maxIdx = idx
		r.evictLocked()
	}
}

// evictLocked summarizes and frees raw windows older than the horizon.
func (r *LatencyRecorder) evictLocked() {
	for idx, lat := range r.buckets {
		if idx <= r.maxIdx-r.retention {
			r.finalized[idx] = r.summarize(idx, lat)
			delete(r.buckets, idx)
		}
	}
}

// summarize computes one window's statistics.
func (r *LatencyRecorder) summarize(idx int64, lat []time.Duration) WindowStats {
	return summarizeWindow(r.epoch, r.window, idx, lat)
}

// Count returns the total number of recorded observations (summarized
// windows included).
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.buckets {
		n += len(b)
	}
	for _, ws := range r.finalized {
		n += ws.Count
	}
	return n
}

// LateDropped returns the number of observations dropped because their
// window had already been summarized and evicted.
func (r *LatencyRecorder) LateDropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.late
}

// RawWindows returns the number of windows still holding raw samples
// (bounded by the retention horizon).
func (r *LatencyRecorder) RawWindows() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buckets)
}

// Windows returns per-window summaries in time order, merging summarized
// and still-raw windows.
func (r *LatencyRecorder) Windows() []WindowStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	idxs := make([]int64, 0, len(r.buckets)+len(r.finalized))
	for i := range r.buckets {
		idxs = append(idxs, i)
	}
	for i := range r.finalized {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out := make([]WindowStats, 0, len(idxs))
	for _, i := range idxs {
		if ws, ok := r.finalized[i]; ok {
			out = append(out, ws)
			continue
		}
		out = append(out, r.summarize(i, r.buckets[i]))
	}
	return out
}

// SLAReport counts, per percentile, the number of windows whose percentile
// latency exceeded the threshold — Table 2's "number of SLA violations".
type SLAReport struct {
	Threshold     time.Duration
	Windows       int
	P50Violations int
	P95Violations int
	P99Violations int
}

// SLAViolations evaluates the windows against a latency threshold (the
// paper uses 500 ms, the largest delay unnoticeable to users).
func SLAViolations(windows []WindowStats, threshold time.Duration) SLAReport {
	rep := SLAReport{Threshold: threshold, Windows: len(windows)}
	for _, w := range windows {
		if w.P50 > threshold {
			rep.P50Violations++
		}
		if w.P95 > threshold {
			rep.P95Violations++
		}
		if w.P99 > threshold {
			rep.P99Violations++
		}
	}
	return rep
}

// PercentileSeries extracts one percentile (50, 95 or 99) across windows,
// in milliseconds — the input to the Fig 10 CDFs.
func PercentileSeries(windows []WindowStats, p int) []float64 {
	out := make([]float64, 0, len(windows))
	for _, w := range windows {
		var v time.Duration
		switch p {
		case 50:
			v = w.P50
		case 95:
			v = w.P95
		case 99:
			v = w.P99
		default:
			continue
		}
		out = append(out, float64(v)/float64(time.Millisecond))
	}
	return out
}
