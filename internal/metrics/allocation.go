package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// AllocationTracker records machine-count changes over time and integrates
// them into the paper's cost metric (Eq. 1: machine-intervals) and the
// average machines allocated (Table 2).
type AllocationTracker struct {
	mu      sync.Mutex
	events  []allocEvent
	current int
}

type allocEvent struct {
	at       time.Time
	machines int
}

// NewAllocationTracker starts tracking with the given machine count at the
// given time.
func NewAllocationTracker(at time.Time, machines int) *AllocationTracker {
	return &AllocationTracker{
		events:  []allocEvent{{at: at, machines: machines}},
		current: machines,
	}
}

// Set records a machine-count change at the given time.
func (t *AllocationTracker) Set(at time.Time, machines int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, allocEvent{at: at, machines: machines})
	t.current = machines
}

// Current returns the most recently recorded machine count.
func (t *AllocationTracker) Current() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.current
}

// Average returns the time-weighted average machine count from the first
// event until end.
func (t *AllocationTracker) Average(end time.Time) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) == 0 {
		return 0
	}
	total := end.Sub(t.events[0].at)
	if total <= 0 {
		return float64(t.events[0].machines)
	}
	var weighted float64
	for i, e := range t.events {
		segEnd := end
		if i+1 < len(t.events) {
			segEnd = t.events[i+1].at
		}
		if segEnd.After(end) {
			segEnd = end
		}
		if d := segEnd.Sub(e.at); d > 0 {
			weighted += d.Seconds() * float64(e.machines)
		}
	}
	return weighted / total.Seconds()
}

// Series returns the step function of machine counts as (time, machines)
// pairs in recording order.
func (t *AllocationTracker) Series() []struct {
	At       time.Time
	Machines int
} {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]struct {
		At       time.Time
		Machines int
	}, len(t.events))
	for i, e := range t.events {
		out[i].At = e.at
		out[i].Machines = e.machines
	}
	return out
}

// Counter is a concurrency-safe event counter windowed by time, used for
// throughput series.
type Counter struct {
	window time.Duration

	epochOnce sync.Once
	epoch     time.Time
	started   atomic.Bool
	next      atomic.Uint64
	stripes   []counterStripe
}

// counterStripe is one mutex-guarded bucket map, padded onto its own cache
// line. Add is on the cluster's per-transaction hot path, so the counter
// stripes writes the same way ShardedRecorder does and merges on read.
type counterStripe struct {
	mu      sync.Mutex
	buckets map[int64]int
	_       [40]byte
}

// NewCounter returns a counter with the given window size.
func NewCounter(window time.Duration) *Counter {
	if window <= 0 {
		window = time.Second
	}
	c := &Counter{window: window, stripes: make([]counterStripe, defaultShards())}
	for i := range c.stripes {
		c.stripes[i].buckets = make(map[int64]int)
	}
	return c
}

// Add counts n events at the given time.
func (c *Counter) Add(at time.Time, n int) {
	c.epochOnce.Do(func() {
		c.epoch = at
		c.started.Store(true)
	})
	idx := int64(at.Sub(c.epoch) / c.window)
	st := &c.stripes[c.next.Add(1)&uint64(len(c.stripes)-1)]
	st.mu.Lock()
	st.buckets[idx] += n
	st.mu.Unlock()
}

// merged combines all stripes' buckets. Callers own the returned map.
func (c *Counter) merged() map[int64]int {
	out := make(map[int64]int)
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		for idx, v := range st.buckets {
			out[idx] += v
		}
		st.mu.Unlock()
	}
	return out
}

// Total returns the sum of all counted events.
func (c *Counter) Total() int {
	n := 0
	for _, v := range c.merged() {
		n += v
	}
	return n
}

// RecentRate returns the mean per-window rate over the most recent k
// complete windows (excluding the still-open current window identified by
// now). It returns 0 when no complete window exists yet.
func (c *Counter) RecentRate(now time.Time, k int) float64 {
	if k <= 0 {
		k = 1
	}
	if !c.started.Load() {
		return 0
	}
	buckets := c.merged()
	cur := int64(now.Sub(c.epoch) / c.window)
	sum, n := 0, 0
	for i := cur - int64(k); i < cur; i++ {
		if i < 0 {
			continue
		}
		sum += buckets[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Rate returns the per-window event counts in time order, including empty
// windows between the first and last events.
func (c *Counter) Rate() []float64 {
	buckets := c.merged()
	if len(buckets) == 0 {
		return nil
	}
	var lo, hi int64
	first := true
	for i := range buckets {
		if first {
			lo, hi = i, i
			first = false
			continue
		}
		if i < lo {
			lo = i
		}
		if i > hi {
			hi = i
		}
	}
	out := make([]float64, hi-lo+1)
	for i, v := range buckets {
		out[i-lo] = float64(v)
	}
	return out
}
