package metrics

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ShardedRecorder is a LatencyRecorder drop-in for hot paths: observations
// are striped across per-shard sample buffers (each with its own mutex, on
// its own cache line), window bookkeeping is done with atomics, and shards
// are only merged on read. Under many concurrent recorders — one per
// executor, plus every client goroutine — it removes the global mutex that
// made the old recorder the first thing a CPU profile showed.
//
// Semantics match LatencyRecorder: samples bucket into fixed windows from
// the first observation's epoch; windows older than the retention horizon
// are summarized into WindowStats and their raw samples freed; late
// observations for already-summarized windows are dropped and counted.
type ShardedRecorder struct {
	window time.Duration

	epochOnce sync.Once
	epoch     time.Time

	next      atomic.Uint64 // round-robin shard cursor
	maxIdx    atomic.Int64  // newest window seen
	floor     atomic.Int64  // windows ≤ floor are summarized (or in progress)
	retention atomic.Int64  // horizon in windows
	late      atomic.Int64

	shards []recorderShard

	fmu       sync.Mutex
	finalized map[int64]WindowStats
}

// recorderShard is one stripe: a mutex plus its own window→samples map,
// padded so neighboring shards do not share a cache line.
type recorderShard struct {
	mu      sync.Mutex
	buckets map[int64][]time.Duration
	_       [40]byte
}

// defaultShards sizes the stripe count to the machine (a power of two so
// the shard pick is a mask, capped to keep merge-on-read cheap).
func defaultShards() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 32 {
		n <<= 1
	}
	return n
}

// NewShardedRecorder returns a sharded recorder with the given window size
// and the default retention horizon. Shard count scales with GOMAXPROCS.
func NewShardedRecorder(window time.Duration) *ShardedRecorder {
	if window <= 0 {
		window = time.Second
	}
	s := &ShardedRecorder{
		window:    window,
		shards:    make([]recorderShard, defaultShards()),
		finalized: make(map[int64]WindowStats),
	}
	for i := range s.shards {
		s.shards[i].buckets = make(map[int64][]time.Duration)
	}
	s.maxIdx.Store(-1)
	s.floor.Store(-1)
	s.SetRetention(DefaultRetention)
	return s
}

// SetRetention changes the retention horizon: windows ending more than
// horizon behind the newest observation are summarized and their raw
// samples evicted. A horizon below one window keeps a single raw window.
func (s *ShardedRecorder) SetRetention(horizon time.Duration) {
	n := int64(horizon / s.window)
	if n < 1 {
		n = 1
	}
	s.retention.Store(n)
	s.evict()
}

// Record adds one latency observation at the given time.
func (s *ShardedRecorder) Record(at time.Time, latency time.Duration) {
	s.epochOnce.Do(func() { s.epoch = at })
	idx := int64(at.Sub(s.epoch) / s.window)
	sh := &s.shards[s.next.Add(1)&uint64(len(s.shards)-1)]
	sh.mu.Lock()
	// The floor check happens under the shard lock: eviction advances the
	// floor while holding every shard lock, so a sample appended here can
	// never belong to a window eviction already swept.
	if idx <= s.floor.Load() {
		sh.mu.Unlock()
		s.late.Add(1)
		return
	}
	sh.buckets[idx] = append(sh.buckets[idx], latency)
	sh.mu.Unlock()
	for {
		m := s.maxIdx.Load()
		if idx <= m {
			return
		}
		if s.maxIdx.CompareAndSwap(m, idx) {
			s.evict()
			return
		}
	}
}

// evict summarizes and frees raw windows older than the horizon. Only the
// Record that advanced maxIdx (or a retention change) pays this cost —
// once per window boundary, not per sample.
func (s *ShardedRecorder) evict() {
	target := s.maxIdx.Load() - s.retention.Load()
	if target <= s.floor.Load() {
		return
	}
	s.fmu.Lock()
	defer s.fmu.Unlock()
	target = s.maxIdx.Load() - s.retention.Load()
	if target <= s.floor.Load() {
		return
	}
	// Collect every stale window's samples from all shards. Holding all
	// shard locks while advancing the floor makes the sweep atomic with
	// respect to Record's floor check.
	merged := make(map[int64][]time.Duration)
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	s.floor.Store(target)
	for i := range s.shards {
		for idx, lat := range s.shards[i].buckets {
			if idx <= target {
				merged[idx] = append(merged[idx], lat...)
				delete(s.shards[i].buckets, idx)
			}
		}
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	for idx, lat := range merged {
		s.finalized[idx] = summarizeWindow(s.epoch, s.window, idx, lat)
	}
}

// merge returns all still-raw windows combined across shards. Caller must
// not hold any shard lock.
func (s *ShardedRecorder) merge() map[int64][]time.Duration {
	out := make(map[int64][]time.Duration)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for idx, lat := range sh.buckets {
			out[idx] = append(out[idx], lat...)
		}
		sh.mu.Unlock()
	}
	return out
}

// Count returns the total number of recorded observations (summarized
// windows included).
func (s *ShardedRecorder) Count() int {
	n := 0
	for _, lat := range s.merge() {
		n += len(lat)
	}
	s.fmu.Lock()
	for _, ws := range s.finalized {
		n += ws.Count
	}
	s.fmu.Unlock()
	return n
}

// LateDropped returns the number of observations dropped because their
// window had already been summarized and evicted.
func (s *ShardedRecorder) LateDropped() int64 { return s.late.Load() }

// RawWindows returns the number of windows still holding raw samples
// (bounded by the retention horizon).
func (s *ShardedRecorder) RawWindows() int { return len(s.merge()) }

// Windows returns per-window summaries in time order, merging summarized
// and still-raw windows.
func (s *ShardedRecorder) Windows() []WindowStats {
	// Pin the epoch if no observation has: reading it below must not race
	// with a first concurrent Record.
	s.epochOnce.Do(func() { s.epoch = time.Now() })
	raw := s.merge()
	s.fmu.Lock()
	defer s.fmu.Unlock()
	idxs := make([]int64, 0, len(raw)+len(s.finalized))
	for i := range raw {
		if _, done := s.finalized[i]; !done {
			idxs = append(idxs, i)
		}
	}
	for i := range s.finalized {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out := make([]WindowStats, 0, len(idxs))
	for _, i := range idxs {
		if ws, ok := s.finalized[i]; ok {
			out = append(out, ws)
			continue
		}
		out = append(out, summarizeWindow(s.epoch, s.window, i, raw[i]))
	}
	return out
}

// summarizeWindow computes one window's statistics.
func summarizeWindow(epoch time.Time, window time.Duration, idx int64, lat []time.Duration) WindowStats {
	sorted := make([]float64, len(lat))
	var sum, max time.Duration
	for j, l := range lat {
		sorted[j] = float64(l)
		sum += l
		if l > max {
			max = l
		}
	}
	sort.Float64s(sorted)
	ws := WindowStats{
		Start: epoch.Add(time.Duration(idx) * window),
		Count: len(lat),
		P50:   time.Duration(percentileSorted(sorted, 50)),
		P95:   time.Duration(percentileSorted(sorted, 95)),
		P99:   time.Duration(percentileSorted(sorted, 99)),
		Max:   max,
	}
	if len(lat) > 0 {
		ws.Mean = sum / time.Duration(len(lat))
	}
	return ws
}
