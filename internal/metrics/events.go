package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Canonical event names used across the robustness layer. Using shared
// constants keeps the counter namespace greppable; Events accepts any name.
const (
	// EventShed counts transactions fast-failed by admission control
	// (executor queue full) instead of being queued.
	EventShed = "shed_overload"
	// EventMigrationRetries counts transaction routing retries taken while
	// a key's bucket was in flight between partitions — the "retry until
	// the apply lands" window of a live migration.
	EventMigrationRetries = "migration_retries"
	// EventMoveRetries counts migration bucket-move attempts retried after
	// a transient failure.
	EventMoveRetries = "move_retries"
	// EventMoveRollbacks counts bucket moves rolled back to their source
	// partition after the destination repeatedly failed to apply.
	EventMoveRollbacks = "move_rollbacks"
	// EventInjectedFaults counts faults fired by a fault injector (chaos
	// runs only; zero in production).
	EventInjectedFaults = "injected_faults"
	// EventPreCopyRows counts rows streamed to a move's destination during
	// the pre-copy phase, off the foreground critical path.
	EventPreCopyRows = "precopy_rows"
	// EventDeltaRows counts captured writes replayed at a move's
	// destination during delta-drain rounds (the final in-stall delta
	// included).
	EventDeltaRows = "delta_rows"
	// EventDeltaRounds counts delta-drain rounds across all bucket moves;
	// divided by moves it says how quickly pre-copies converge.
	EventDeltaRounds = "delta_rounds"
	// EventReplRecords counts command-log records shipped to replica
	// subscribers (each record counted once per feed, not per replica).
	EventReplRecords = "repl_records_shipped"
	// EventReplFailovers counts primary failures detected and acted on by
	// the failover monitor.
	EventReplFailovers = "repl_failovers"
	// EventReplPromotions counts replicas promoted to primary.
	EventReplPromotions = "repl_promotions"
	// EventReplStaleWaits counts session reads that had to wait for a
	// replica's applied LSN to catch up to the client's session LSN.
	EventReplStaleWaits = "repl_stale_read_waits"
	// EventReplicaReads counts read-only transactions served from replicas.
	EventReplicaReads = "repl_replica_reads"
	// EventReplFallbackReads counts read-only transactions that fell back to
	// the primary (no live replica, replica lagging past the stale-read
	// timeout, or replica mid-resync).
	EventReplFallbackReads = "repl_fallback_reads"
	// EventReplResyncs counts replica stream re-subscriptions (reconnects
	// after a severed stream, snapshot resyncs after falling behind).
	EventReplResyncs = "repl_resyncs"
	// EventReplDeposed counts subscribers cut from a feed's ack quorum
	// (slow, disconnected, or fenced).
	EventReplDeposed = "repl_deposed_subscribers"
	// EventReplFencedWrites counts writes rejected because the partition's
	// feed was fenced by a newer epoch (deposed primary).
	EventReplFencedWrites = "repl_fenced_writes"
	// EventReplQuorumLost counts armed feeds dropping below their required
	// subscriber quorum (a primary entering self-fenced, read-only mode).
	EventReplQuorumLost = "repl_quorum_losses"
	// EventReplQuorumLostWrites counts writes shed because the partition's
	// primary had lost its subscriber quorum (degraded read-only mode).
	EventReplQuorumLostWrites = "repl_quorum_lost_writes"
	// EventReplPromotionsBlocked counts failover attempts vetoed by the
	// promotion quorum — typically the monitor was partitioned from a live
	// primary and a redundant promotion would have split the brain.
	EventReplPromotionsBlocked = "repl_promotions_blocked"
	// EventReplStaleDemotions counts deposed-but-alive primaries detected
	// after a heal and demoted (executor stopped, feed fenced) by the
	// monitor's stale-primary sweep.
	EventReplStaleDemotions = "repl_stale_primary_demotions"
	// EventNetPartitionCuts counts directed links cut in the chaos
	// partition matrix; EventNetPartitionHeals counts links healed.
	EventNetPartitionCuts  = "net_partition_cuts"
	EventNetPartitionHeals = "net_partition_heals"
	// EventReplWindowStalls counts writes pushed back pre-execution because
	// the partition feed's unacked-LSN window was full (the replication
	// pipeline is saturated; the router retries after a short backoff).
	EventReplWindowStalls = "repl_ack_window_stalls"
)

// Canonical histogram names for the replication pipeline (see Observe).
const (
	// HistReplBatchRecords is records per shipped frame (1 for a bare
	// record frame, >1 for a batch envelope).
	HistReplBatchRecords = "repl_ship_batch_records"
	// HistReplBatchBytes is wire bytes per shipped frame, envelope included.
	HistReplBatchBytes = "repl_ship_batch_bytes"
	// HistReplAckWindow is the feed's unacked-transaction window occupancy,
	// sampled at each append.
	HistReplAckWindow = "repl_ack_window_occupancy"
	// HistReplStandbyFsyncBatch is records covered by one standby group
	// fsync (the batch the tail accumulated between durable acks).
	HistReplStandbyFsyncBatch = "repl_standby_fsync_batch"
	// HistReplAckLatencyUS is microseconds from a record's append to its
	// cumulative-ack completion (locally durable and replica-acked).
	HistReplAckLatencyUS = "repl_ack_latency_us"
)

// Events is a registry of named monotonic counters for rare-path
// accounting: load sheds, migration retries, injected faults. Counters are
// created on first use; Add is lock-free after that, so counting an event
// on a hot path costs one atomic increment plus a read-locked map lookup.
// It doubles as the registry for named value histograms (Observe), so
// distribution-shaped pipeline metrics — ship-batch sizes, ack-window
// occupancy — ride the same plumbing as the counters.
type Events struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Int64
	hists    map[string]*Hist
}

// NewEvents returns an empty event-counter registry.
func NewEvents() *Events {
	return &Events{
		counters: make(map[string]*atomic.Int64),
		hists:    make(map[string]*Hist),
	}
}

func (e *Events) counter(name string) *atomic.Int64 {
	e.mu.RLock()
	c, ok := e.counters[name]
	e.mu.RUnlock()
	if ok {
		return c
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok = e.counters[name]; !ok {
		c = new(atomic.Int64)
		e.counters[name] = c
	}
	return c
}

// Add increments the named counter by n.
func (e *Events) Add(name string, n int64) {
	if e == nil {
		return
	}
	e.counter(name).Add(n)
}

// Get returns the named counter's value (zero if never incremented).
func (e *Events) Get(name string) int64 {
	if e == nil {
		return 0
	}
	e.mu.RLock()
	c, ok := e.counters[name]
	e.mu.RUnlock()
	if !ok {
		return 0
	}
	return c.Load()
}

// Snapshot returns all counters as a plain map.
func (e *Events) Snapshot() map[string]int64 {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string]int64, len(e.counters))
	for name, c := range e.counters {
		out[name] = c.Load()
	}
	return out
}

// Hist returns the named histogram, creating it on first use. Like
// counters, lookups are read-locked and observation itself is lock-free,
// so recording a sample on a hot path stays allocation-free.
func (e *Events) Hist(name string) *Hist {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	h, ok := e.hists[name]
	e.mu.RUnlock()
	if ok {
		return h
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.hists == nil {
		e.hists = make(map[string]*Hist)
	}
	if h, ok = e.hists[name]; !ok {
		h = NewHist()
		e.hists[name] = h
	}
	return h
}

// Observe records one sample into the named histogram.
func (e *Events) Observe(name string, v int64) {
	if e == nil {
		return
	}
	e.Hist(name).Observe(v)
}

// HistNames returns the histogram names seen so far, sorted.
func (e *Events) HistNames() []string {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.hists))
	for name := range e.hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Names returns the counter names seen so far, sorted.
func (e *Events) Names() []string {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.counters))
	for name := range e.counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
