package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two duration buckets. Bucket i
// covers [2^(i-1), 2^i) microseconds (bucket 0 is everything under 1µs), so
// the histogram spans sub-microsecond to ~17 minutes — far beyond any
// plausible per-move stall.
const histBuckets = 31

// DurationHist is a fixed-size, log-scale histogram of durations, safe for
// concurrent use and allocation-free on the record path. The migrator feeds
// it each bucket move's foreground stall window (detach → durable commit),
// the interval during which transactions for the bucket can only spin in
// the routing retry loop — the quantity the pre-copy protocol exists to
// shrink from O(bucket) to O(delta).
type DurationHist struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// NewDurationHist returns an empty histogram.
func NewDurationHist() *DurationHist { return &DurationHist{} }

// histIndex maps a duration to its bucket.
func histIndex(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	idx := bits.Len64(us) // 0 for <1µs, else floor(log2)+1
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Observe records one duration.
func (h *DurationHist) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[histIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *DurationHist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Max returns the largest observation.
func (h *DurationHist) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Mean returns the average observation (0 when empty).
func (h *DurationHist) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the top
// edge of the bucket holding the q-th observation. Log-scale buckets make
// this exact to within 2×, which is plenty for "did the stall shrink by an
// order of magnitude" questions.
func (h *DurationHist) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen > rank {
			if i == histBuckets-1 {
				return h.Max()
			}
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return h.Max()
}

// Snapshot returns the per-bucket counts; entry i is the count of
// observations in [2^(i-1), 2^i) microseconds.
func (h *DurationHist) Snapshot() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, histBuckets)
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out
}
