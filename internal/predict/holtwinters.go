package predict

import (
	"fmt"
	"math"
	"sync"

	"pstore/internal/timeseries"
)

// HoltWinters is additive triple exponential smoothing: level, trend and an
// additive seasonal component of the given period. The paper notes P-Store
// "can be combined with any predictive model" (§4.2); Holt-Winters is the
// classic alternative to the AR family for seasonal load curves.
//
// Smoothing coefficients are selected during Fit by a coarse grid search
// minimizing one-step-ahead squared error on the training series. Each
// Forecast replays the smoothing state over the supplied history, so its
// cost is linear in the history length.
type HoltWinters struct {
	period int

	mu                 sync.Mutex
	alpha, beta, gamma float64
	fitted             bool
}

// NewHoltWinters returns an unfitted model with the given seasonal period.
func NewHoltWinters(period int) *HoltWinters { return &HoltWinters{period: period} }

// Name implements Model.
func (hw *HoltWinters) Name() string { return "HoltWinters" }

// MinHistory implements Model: state initialization needs two full seasons.
func (hw *HoltWinters) MinHistory() int { return 2 * hw.period }

// Coefficients returns the fitted (α, β, γ).
func (hw *HoltWinters) Coefficients() (alpha, beta, gamma float64) {
	hw.mu.Lock()
	defer hw.mu.Unlock()
	return hw.alpha, hw.beta, hw.gamma
}

// Fit implements Model: grid-search the smoothing coefficients on the
// training series.
func (hw *HoltWinters) Fit(train *timeseries.Series) error {
	if hw.period <= 1 {
		return fmt.Errorf("predict: Holt-Winters period must be > 1, got %d", hw.period)
	}
	if train == nil || train.Len() < 3*hw.period {
		return fmt.Errorf("predict: Holt-Winters needs ≥ %d training points", 3*hw.period)
	}
	best := math.Inf(1)
	var bestA, bestB, bestG float64
	for _, a := range []float64{0.1, 0.3, 0.5, 0.8} {
		for _, b := range []float64{0.01, 0.05, 0.15} {
			for _, g := range []float64{0.05, 0.2, 0.5} {
				if sse := hw.oneStepSSE(train.Values, a, b, g); sse < best {
					best = sse
					bestA, bestB, bestG = a, b, g
				}
			}
		}
	}
	hw.mu.Lock()
	hw.alpha, hw.beta, hw.gamma = bestA, bestB, bestG
	hw.fitted = true
	hw.mu.Unlock()
	return nil
}

// Forecast implements Model.
func (hw *HoltWinters) Forecast(history *timeseries.Series, horizon int) ([]float64, error) {
	hw.mu.Lock()
	a, b, g, fitted := hw.alpha, hw.beta, hw.gamma, hw.fitted
	hw.mu.Unlock()
	if !fitted {
		return nil, ErrNotFitted
	}
	if err := checkForecastArgs(history, horizon, hw.MinHistory()); err != nil {
		return nil, err
	}
	level, trend, seasonal := hw.smooth(history.Values, a, b, g)
	m := hw.period
	n := len(history.Values)
	out := make([]float64, horizon)
	for h := 1; h <= horizon; h++ {
		out[h-1] = level + float64(h)*trend + seasonal[(n+h-1)%m]
	}
	return clampNonNegative(out), nil
}

// smooth runs the smoothing recursion over y and returns the final state.
// seasonal[i] holds the additive component for slots congruent to i mod m.
func (hw *HoltWinters) smooth(y []float64, a, b, g float64) (level, trend float64, seasonal []float64) {
	m := hw.period
	// Initialize from the first two seasons.
	var s1, s2 float64
	for i := 0; i < m; i++ {
		s1 += y[i]
		s2 += y[m+i]
	}
	s1 /= float64(m)
	s2 /= float64(m)
	level = s1
	trend = (s2 - s1) / float64(m)
	seasonal = make([]float64, m)
	for i := 0; i < m; i++ {
		seasonal[i] = y[i] - s1
	}
	for t := m; t < len(y); t++ {
		si := t % m
		prevLevel := level
		level = a*(y[t]-seasonal[si]) + (1-a)*(level+trend)
		trend = b*(level-prevLevel) + (1-b)*trend
		seasonal[si] = g*(y[t]-level) + (1-g)*seasonal[si]
	}
	return level, trend, seasonal
}

// oneStepSSE measures one-step-ahead squared error of (a, b, g) over y.
func (hw *HoltWinters) oneStepSSE(y []float64, a, b, g float64) float64 {
	m := hw.period
	var s1, s2 float64
	for i := 0; i < m; i++ {
		s1 += y[i]
		s2 += y[m+i]
	}
	s1 /= float64(m)
	s2 /= float64(m)
	level := s1
	trend := (s2 - s1) / float64(m)
	seasonal := make([]float64, m)
	for i := 0; i < m; i++ {
		seasonal[i] = y[i] - s1
	}
	sse := 0.0
	for t := m; t < len(y); t++ {
		si := t % m
		pred := level + trend + seasonal[si]
		d := y[t] - pred
		sse += d * d
		prevLevel := level
		level = a*(y[t]-seasonal[si]) + (1-a)*(level+trend)
		trend = b*(level-prevLevel) + (1-b)*trend
		seasonal[si] = g*(y[t]-level) + (1-g)*seasonal[si]
	}
	return sse
}
