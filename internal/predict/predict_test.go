package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pstore/internal/timeseries"
)

// synthPeriodic builds days of a sinusoidal daily load with the given period
// (slots/day), optional noise and an optional additive day-level offset
// function.
func synthPeriodic(days, period int, noise float64, seed int64, dayOffset func(day int) float64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, days*period)
	for i := range vals {
		day := i / period
		phase := 2 * math.Pi * float64(i%period) / float64(period)
		v := 1000 + 800*math.Sin(phase)
		if dayOffset != nil {
			v += dayOffset(day)
		}
		v += rng.NormFloat64() * noise
		if v < 0 {
			v = 0
		}
		vals[i] = v
	}
	return timeseries.New(time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC), time.Minute, vals)
}

func TestSPARPerfectPeriodicSignal(t *testing.T) {
	const period = 48
	s := synthPeriodic(20, period, 0, 1, nil)
	m := NewSPAR(SPARConfig{Period: period, NPeriods: 3, MRecent: 5})
	train, test, err := s.Split(15 * period)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	_ = test
	hist := s.Slice(0, 16*period)
	got, err := m.Forecast(hist, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range got {
		want := s.At(16*period + i)
		if math.Abs(p-want) > 1.0 {
			t.Errorf("forecast[%d] = %v, want %v", i, p, want)
		}
	}
}

func TestSPARTracksRecentOffset(t *testing.T) {
	const period = 48
	// Training days drift up and down so the Δ coefficients are
	// identifiable; the last observed day runs 300 req/slot hot, far beyond
	// the training drift.
	rng := rand.New(rand.NewSource(2))
	drift := make([]float64, 17)
	for d := range drift {
		drift[d] = rng.NormFloat64() * 80
	}
	offset := func(day int) float64 {
		if day >= 15 {
			return 300
		}
		return drift[day]
	}
	s := synthPeriodic(17, period, 0, 2, offset)
	m := NewSPAR(SPARConfig{Period: period, NPeriods: 3, MRecent: 5})
	// Train only on normal days plus hot data is outside training.
	if err := m.Fit(s.Slice(0, 15*period)); err != nil {
		t.Fatal(err)
	}
	hist := s.Slice(0, 15*period+period/2) // half a hot day observed
	got, err := m.Forecast(hist, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A model ignoring the recent offset would predict the cold-day value;
	// SPAR's Δ terms should pull it most of the way toward +300.
	for i, p := range got {
		idx := 15*period + period/2 + i
		hot := s.At(idx)
		cold := hot - 300
		if math.Abs(p-hot) > math.Abs(p-cold) {
			t.Errorf("forecast[%d] = %v closer to cold %v than hot %v", i, p, cold, hot)
		}
	}
}

func TestSPARValidation(t *testing.T) {
	m := NewSPAR(SPARConfig{Period: 48, NPeriods: 3, MRecent: 5})
	if _, err := m.Forecast(synthPeriodic(10, 48, 0, 3, nil), 5); err != ErrNotFitted {
		t.Errorf("unfitted forecast err = %v, want ErrNotFitted", err)
	}
	if err := m.Fit(timeseries.New(time.Time{}, time.Minute, make([]float64, 10))); err == nil {
		t.Error("short training series should fail")
	}
	s := synthPeriodic(10, 48, 0, 3, nil)
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(s, 48); err == nil {
		t.Error("horizon ≥ period should fail")
	}
	if _, err := m.Forecast(s, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := m.Forecast(s.Slice(0, 10), 5); err == nil {
		t.Error("short history should fail")
	}
	bad := NewSPAR(SPARConfig{Period: 0, NPeriods: 3, MRecent: 5})
	if err := bad.Fit(s); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestSPARConstantSeriesStable(t *testing.T) {
	vals := make([]float64, 48*10)
	for i := range vals {
		vals[i] = 500
	}
	s := timeseries.New(time.Time{}, time.Minute, vals)
	m := NewSPAR(SPARConfig{Period: 48, NPeriods: 3, MRecent: 5})
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	got, err := m.Forecast(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range got {
		if math.Abs(p-500) > 5 {
			t.Errorf("forecast[%d] = %v, want ≈500", i, p)
		}
	}
}

func TestARRecoversAR1Process(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const phi, c = 0.8, 50.0
	vals := make([]float64, 5000)
	vals[0] = c / (1 - phi)
	for i := 1; i < len(vals); i++ {
		vals[i] = c + phi*vals[i-1] + rng.NormFloat64()
	}
	s := timeseries.New(time.Time{}, time.Minute, vals)
	m := NewAR(1)
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.coef[1]-phi) > 0.05 {
		t.Errorf("φ = %v, want ≈%v", m.coef[1], phi)
	}
	got, err := m.Forecast(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean := c / (1 - phi)
	for i, p := range got {
		if math.Abs(p-mean) > 30 {
			t.Errorf("forecast[%d] = %v far from process mean %v", i, p, mean)
		}
	}
}

func TestARValidation(t *testing.T) {
	m := NewAR(3)
	if _, err := m.Forecast(timeseries.New(time.Time{}, time.Minute, make([]float64, 10)), 2); err != ErrNotFitted {
		t.Errorf("err = %v, want ErrNotFitted", err)
	}
	if err := NewAR(0).Fit(timeseries.New(time.Time{}, time.Minute, make([]float64, 100))); err == nil {
		t.Error("order 0 should fail")
	}
	if err := m.Fit(timeseries.New(time.Time{}, time.Minute, []float64{1, 2})); err == nil {
		t.Error("too-short training should fail")
	}
}

func TestARMAFitsAndForecasts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// ARMA(1,1) process.
	const phi, theta, c = 0.6, 0.4, 20.0
	n := 5000
	vals := make([]float64, n)
	prevE := 0.0
	vals[0] = c / (1 - phi)
	for i := 1; i < n; i++ {
		e := rng.NormFloat64()
		vals[i] = c + phi*vals[i-1] + e + theta*prevE
		prevE = e
	}
	s := timeseries.New(time.Time{}, time.Minute, vals)
	m := NewARMA(1, 1)
	if err := m.Fit(s); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.coef[1]-phi) > 0.1 {
		t.Errorf("φ = %v, want ≈%v", m.coef[1], phi)
	}
	got, err := m.Forecast(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	mean := c / (1 - phi)
	for i, p := range got {
		if math.Abs(p-mean) > 25 {
			t.Errorf("forecast[%d] = %v far from mean %v", i, p, mean)
		}
	}
}

func TestARMAValidation(t *testing.T) {
	m := NewARMA(2, 1)
	if _, err := m.Forecast(timeseries.New(time.Time{}, time.Minute, make([]float64, 100)), 2); err != ErrNotFitted {
		t.Errorf("err = %v, want ErrNotFitted", err)
	}
	if err := NewARMA(0, 1).Fit(timeseries.New(time.Time{}, time.Minute, make([]float64, 500))); err == nil {
		t.Error("p=0 should fail")
	}
}

func TestSeasonalNaiveExactOnPeriodic(t *testing.T) {
	const period = 48
	s := synthPeriodic(5, period, 0, 4, nil)
	m := NewSeasonalNaive(period)
	if err := m.Fit(nil); err != nil {
		t.Fatal(err)
	}
	hist := s.Slice(0, 4*period)
	got, err := m.Forecast(hist, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range got {
		want := s.At(4*period + i)
		if math.Abs(p-want) > 1e-9 {
			t.Errorf("forecast[%d] = %v, want %v", i, p, want)
		}
	}
	if _, err := m.Forecast(hist, period+1); err == nil {
		t.Error("horizon > period should fail")
	}
}

func TestOracleReturnsTrueFuture(t *testing.T) {
	s := synthPeriodic(3, 48, 10, 5, nil)
	o := NewOracle(s)
	if err := o.Fit(nil); err != nil {
		t.Fatal(err)
	}
	hist := s.Slice(0, 50)
	got, err := o.Forecast(hist, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range got {
		if p != s.At(50+i) {
			t.Errorf("oracle[%d] = %v, want %v", i, p, s.At(50+i))
		}
	}
	// Beyond the end of the oracle series.
	if _, err := o.Forecast(s, 1); err == nil {
		t.Error("forecast past oracle end should fail")
	}
	// Off-grid history.
	off := timeseries.New(s.Start.Add(30*time.Second), time.Minute, s.Values[:50])
	if _, err := o.Forecast(off, 1); err == nil {
		t.Error("off-grid history should fail")
	}
}

func TestEvaluateHorizonRanksModels(t *testing.T) {
	const period = 48
	// Periodic signal with meaningful day-to-day drift: SPAR should beat
	// seasonal naive because it can average periods and use recent offsets.
	rng := rand.New(rand.NewSource(6))
	drift := make([]float64, 40)
	for d := range drift {
		drift[d] = rng.NormFloat64() * 150
	}
	s := synthPeriodic(40, period, 20, 6, func(day int) float64 { return drift[day] })
	testStart := 30 * period

	spar := NewSPAR(SPARConfig{Period: period, NPeriods: 3, MRecent: 5})
	if err := spar.Fit(s.Slice(0, testStart)); err != nil {
		t.Fatal(err)
	}
	naive := NewSeasonalNaive(period)
	if err := naive.Fit(nil); err != nil {
		t.Fatal(err)
	}

	evSpar, err := EvaluateHorizon(spar, s, testStart, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	evNaive, err := EvaluateHorizon(naive, s, testStart, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if evSpar.MRE >= evNaive.MRE {
		t.Errorf("SPAR MRE %.4f should beat seasonal-naive %.4f", evSpar.MRE, evNaive.MRE)
	}
	if evSpar.NForecast == 0 {
		t.Error("no forecasts evaluated")
	}
}

func TestEvaluateHorizonValidation(t *testing.T) {
	s := synthPeriodic(5, 48, 0, 7, nil)
	m := NewSeasonalNaive(48)
	if _, err := EvaluateHorizon(m, s, 10, 5, 1); err == nil {
		t.Error("testStart < MinHistory should fail")
	}
	if _, err := EvaluateHorizon(m, s, 48, 0, 1); err == nil {
		t.Error("tau=0 should fail")
	}
	if _, err := EvaluateHorizon(m, s, s.Len()-1, 5, 1); err == nil {
		t.Error("no room for forecasts should fail")
	}
}

func TestForecastCurveAligned(t *testing.T) {
	const period = 48
	s := synthPeriodic(6, period, 0, 8, nil)
	m := NewSeasonalNaive(period)
	if err := m.Fit(nil); err != nil {
		t.Fatal(err)
	}
	pred, actual, err := ForecastCurve(m, s, 4*period, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != len(actual) {
		t.Fatalf("pred %d vs actual %d", len(pred), len(actual))
	}
	mre, err := timeseries.MRE(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	if mre > 1e-9 {
		t.Errorf("noiseless periodic MRE = %v, want ~0", mre)
	}
}

// Property: all model forecasts are non-negative regardless of history.
func TestForecastsNonNegativeProperty(t *testing.T) {
	const period = 24
	s := synthPeriodic(12, period, 50, 10, nil)
	spar := NewSPAR(SPARConfig{Period: period, NPeriods: 3, MRecent: 4})
	if err := spar.Fit(s); err != nil {
		t.Fatal(err)
	}
	ar := NewAR(4)
	if err := ar.Fit(s); err != nil {
		t.Fatal(err)
	}
	f := func(cut uint16, horizon uint8) bool {
		h := int(horizon%10) + 1
		minLen := spar.MinHistory()
		n := minLen + int(cut)%(s.Len()-minLen)
		hist := s.Slice(0, n)
		for _, m := range []Model{spar, ar} {
			if h >= period && m == Model(spar) {
				continue
			}
			out, err := m.Forecast(hist, h)
			if err != nil {
				return false
			}
			for _, v := range out {
				if v < 0 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
