package predict

import (
	"math"
	"testing"
	"time"

	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

func TestHoltWintersPeriodicSignal(t *testing.T) {
	const period = 48
	s := synthPeriodic(10, period, 0, 21, nil)
	hw := NewHoltWinters(period)
	if err := hw.Fit(s.Slice(0, 8*period)); err != nil {
		t.Fatal(err)
	}
	hist := s.Slice(0, 9*period)
	got, err := hw.Forecast(hist, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range got {
		want := s.At(9*period + i)
		if math.Abs(p-want) > 0.05*want+5 {
			t.Errorf("forecast[%d] = %.1f, want ≈%.1f", i, p, want)
		}
	}
}

func TestHoltWintersTracksTrend(t *testing.T) {
	const period = 24
	// Periodic signal with a linear upward trend.
	vals := make([]float64, 12*period)
	for i := range vals {
		phase := 2 * math.Pi * float64(i%period) / float64(period)
		vals[i] = 500 + 200*math.Sin(phase) + 2*float64(i)
	}
	s := timeseries.New(time.Time{}, time.Hour, vals)
	hw := NewHoltWinters(period)
	if err := hw.Fit(s.Slice(0, 10*period)); err != nil {
		t.Fatal(err)
	}
	hist := s.Slice(0, 11*period)
	got, err := hw.Forecast(hist, period/2)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range got {
		want := 500 + 200*math.Sin(2*math.Pi*float64((11*period+i)%period)/float64(period)) + 2*float64(11*period+i)
		if math.Abs(p-want) > 0.05*want {
			t.Errorf("forecast[%d] = %.1f, want ≈%.1f", i, p, want)
		}
	}
}

func TestHoltWintersValidation(t *testing.T) {
	hw := NewHoltWinters(24)
	if _, err := hw.Forecast(synthPeriodic(4, 24, 0, 1, nil), 3); err != ErrNotFitted {
		t.Errorf("err = %v, want ErrNotFitted", err)
	}
	if err := NewHoltWinters(1).Fit(synthPeriodic(4, 24, 0, 1, nil)); err == nil {
		t.Error("period 1 should fail")
	}
	if err := hw.Fit(timeseries.New(time.Time{}, time.Hour, make([]float64, 24))); err == nil {
		t.Error("short training should fail")
	}
	s := synthPeriodic(6, 24, 0, 1, nil)
	if err := hw.Fit(s); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Forecast(s.Slice(0, 10), 3); err == nil {
		t.Error("short history should fail")
	}
	if _, err := hw.Forecast(s, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	a, b, g := hw.Coefficients()
	if a <= 0 || b <= 0 || g <= 0 {
		t.Errorf("coefficients = %v %v %v", a, b, g)
	}
}

func TestHoltWintersCompetitiveOnDiurnalLoad(t *testing.T) {
	cfg := workload.DefaultB2WConfig()
	cfg.Days = 10
	cfg.SlotsPerDay = 96
	load := workload.GenerateB2W(cfg)
	testStart := 8 * 96
	hw := NewHoltWinters(96)
	if err := hw.Fit(load.Slice(0, testStart)); err != nil {
		t.Fatal(err)
	}
	naive := NewSeasonalNaive(96)
	if err := naive.Fit(nil); err != nil {
		t.Fatal(err)
	}
	evHW, err := EvaluateHorizon(hw, load, testStart, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	evNaive, err := EvaluateHorizon(naive, load, testStart, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Holt-Winters should at least be in the same accuracy class as the
	// seasonal-naive floor on a diurnal retail trace.
	if evHW.MRE > 1.5*evNaive.MRE {
		t.Errorf("Holt-Winters MRE %.4f ≫ seasonal-naive %.4f", evHW.MRE, evNaive.MRE)
	}
}

func TestSuggestSPARConfig(t *testing.T) {
	cfg := workload.DefaultB2WConfig()
	cfg.Days = 8
	cfg.SlotsPerDay = 96
	load := workload.GenerateB2W(cfg)
	got, err := SuggestSPARConfig(load)
	if err != nil {
		t.Fatal(err)
	}
	// The dominant period of a diurnal trace is one day (±2 slots).
	if got.Period < 94 || got.Period > 98 {
		t.Errorf("detected period = %d, want ≈96", got.Period)
	}
	if got.NPeriods < 1 || got.NPeriods > 7 {
		t.Errorf("NPeriods = %d", got.NPeriods)
	}
	// The suggestion must produce a fittable model.
	spar := NewSPAR(got)
	if err := spar.Fit(load); err != nil {
		t.Fatalf("suggested config unfittable: %v", err)
	}
	if _, err := SuggestSPARConfig(nil); err == nil {
		t.Error("nil series should fail")
	}
	if _, err := SuggestSPARConfig(load.Slice(0, 12)); err == nil {
		t.Error("tiny series should fail")
	}
}
