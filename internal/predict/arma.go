package predict

import (
	"fmt"
	"sync"

	"pstore/internal/timeseries"
)

// ARMA is an auto-regressive moving-average model of order (p, q):
//
//	y(t) = c + Σ_{i=1..p} φ_i·y(t−i) + Σ_{j=1..q} θ_j·e(t−j)
//
// fitted with the two-stage Hannan–Rissanen procedure: a long AR fit first
// estimates the innovation sequence e, then y is regressed on its own lags
// and the lagged innovations. This is the second baseline of §5.
type ARMA struct {
	p, q int

	mu     sync.Mutex
	coef   []float64 // [c, φ_1..φ_p, θ_1..θ_q]
	arLong []float64 // long-AR coefficients used to estimate innovations
}

// NewARMA returns an unfitted ARMA(p, q) model.
func NewARMA(p, q int) *ARMA { return &ARMA{p: p, q: q} }

// Name implements Model.
func (a *ARMA) Name() string { return "ARMA" }

// longOrder is the order of the stage-1 AR used to estimate innovations.
func (a *ARMA) longOrder() int {
	n := a.p + a.q + 5
	if n < 10 {
		n = 10
	}
	return n
}

// MinHistory implements Model: innovations for the last q slots need
// longOrder history before them.
func (a *ARMA) MinHistory() int { return a.longOrder() + a.q + a.p }

// Fit implements Model.
func (a *ARMA) Fit(train *timeseries.Series) error {
	if a.p <= 0 || a.q < 0 {
		return fmt.Errorf("predict: invalid ARMA order (%d, %d)", a.p, a.q)
	}
	long := a.longOrder()
	if train == nil || train.Len() < 3*(long+a.p+a.q) {
		return fmt.Errorf("predict: ARMA(%d,%d) needs more training data", a.p, a.q)
	}
	y := train.Values

	// Stage 1: long AR to estimate innovations.
	arLong, err := fitARCoefficients(y, long)
	if err != nil {
		return err
	}
	resid := residualsFromAR(y, arLong) // resid[t] defined for t >= long

	// Stage 2: regress y(t) on lags of y and lagged innovations.
	start := long + maxInt(a.p, a.q)
	var x [][]float64
	var target []float64
	for t := start; t < len(y); t++ {
		row := make([]float64, 1+a.p+a.q)
		row[0] = 1
		for i := 1; i <= a.p; i++ {
			row[i] = y[t-i]
		}
		for j := 1; j <= a.q; j++ {
			row[a.p+j] = resid[t-j]
		}
		x = append(x, row)
		target = append(target, y[t])
	}
	coef, err := timeseries.RidgeLeastSquares(x, target, ridgeLambda)
	if err != nil {
		return fmt.Errorf("predict: ARMA fit: %w", err)
	}
	a.mu.Lock()
	a.coef = coef
	a.arLong = arLong
	a.mu.Unlock()
	return nil
}

// Forecast implements Model. Future innovations are taken as zero (their
// conditional expectation); innovations over the observed history come from
// the stage-1 long AR.
func (a *ARMA) Forecast(history *timeseries.Series, horizon int) ([]float64, error) {
	a.mu.Lock()
	coef, arLong := a.coef, a.arLong
	a.mu.Unlock()
	if coef == nil {
		return nil, ErrNotFitted
	}
	if err := checkForecastArgs(history, horizon, a.MinHistory()); err != nil {
		return nil, err
	}
	y := history.Values
	resid := residualsFromAR(y, arLong)

	// Sliding windows of recent values and innovations; predictions append
	// to the value window, zeros to the innovation window.
	vals := make([]float64, len(y), len(y)+horizon)
	copy(vals, y)
	innov := make([]float64, len(resid), len(resid)+horizon)
	copy(innov, resid)

	out := make([]float64, horizon)
	for h := 0; h < horizon; h++ {
		pred := coef[0]
		for i := 1; i <= a.p; i++ {
			pred += coef[i] * vals[len(vals)-i]
		}
		for j := 1; j <= a.q; j++ {
			pred += coef[a.p+j] * innov[len(innov)-j]
		}
		out[h] = pred
		vals = append(vals, pred)
		innov = append(innov, 0)
	}
	return clampNonNegative(out), nil
}

// residualsFromAR returns e with e[t] = y[t] − ŷ_AR(t) for t ≥ order and
// e[t] = 0 before that.
func residualsFromAR(y []float64, arCoef []float64) []float64 {
	order := len(arCoef) - 1
	resid := make([]float64, len(y))
	for t := order; t < len(y); t++ {
		pred := arCoef[0]
		for i := 1; i <= order; i++ {
			pred += arCoef[i] * y[t-i]
		}
		resid[t] = y[t] - pred
	}
	return resid
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
