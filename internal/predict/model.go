// Package predict implements P-Store's load time-series predictors: SPAR
// (Sparse Periodic Auto-Regression, the paper's default model, Eq. 8), plus
// AR and ARMA baselines, a seasonal-naive reference and an oracle used for
// the "P-Store Oracle" upper bound in the allocation simulations.
package predict

import (
	"errors"
	"fmt"

	"pstore/internal/timeseries"
)

// Model is a load forecaster. Fit learns parameters from a training series;
// Forecast predicts the next horizon observations following the end of
// history. history and the training series must share the same step size.
type Model interface {
	// Name identifies the model in reports ("SPAR", "AR", ...).
	Name() string
	// Fit learns model parameters from the training series.
	Fit(train *timeseries.Series) error
	// MinHistory reports how many trailing observations Forecast needs.
	MinHistory() int
	// Forecast returns predictions for the horizon slots following the end
	// of history.
	Forecast(history *timeseries.Series, horizon int) ([]float64, error)
}

// ErrNotFitted is returned by Forecast when Fit has not succeeded yet.
var ErrNotFitted = errors.New("predict: model is not fitted")

// ridgeLambda is the scale-invariant ridge strength used by all regression
// fits in this package: strong enough to keep collinear lag designs
// well-posed, weak enough not to bias identifiable coefficients.
const ridgeLambda = 1e-8

// checkForecastArgs validates the common Forecast preconditions.
func checkForecastArgs(history *timeseries.Series, horizon, minHistory int) error {
	if horizon <= 0 {
		return fmt.Errorf("predict: horizon must be positive, got %d", horizon)
	}
	if history == nil || history.Len() < minHistory {
		got := 0
		if history != nil {
			got = history.Len()
		}
		return fmt.Errorf("predict: need at least %d history points, got %d", minHistory, got)
	}
	return nil
}

// clampNonNegative floors forecasts at zero: load is a count and negative
// predictions would confuse the planner.
func clampNonNegative(v []float64) []float64 {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
	}
	return v
}
