package predict

import (
	"fmt"
	"sync"

	"pstore/internal/timeseries"
)

// AR is an auto-regressive model of order p: y(t) = c + Σ_{i=1..p} φ_i·y(t−i),
// fitted by least squares and forecast by recursive one-step prediction. It
// is one of the two baselines the paper compares SPAR against (§5).
type AR struct {
	p int

	mu   sync.Mutex
	coef []float64 // [c, φ_1..φ_p]
}

// NewAR returns an unfitted AR(p) model.
func NewAR(p int) *AR { return &AR{p: p} }

// Name implements Model.
func (a *AR) Name() string { return "AR" }

// Order returns p.
func (a *AR) Order() int { return a.p }

// MinHistory implements Model.
func (a *AR) MinHistory() int { return a.p }

// Fit implements Model.
func (a *AR) Fit(train *timeseries.Series) error {
	if a.p <= 0 {
		return fmt.Errorf("predict: AR order must be positive, got %d", a.p)
	}
	if train == nil || train.Len() < 2*a.p+2 {
		return fmt.Errorf("predict: AR(%d) needs more training data", a.p)
	}
	coef, err := fitARCoefficients(train.Values, a.p)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.coef = coef
	a.mu.Unlock()
	return nil
}

// Forecast implements Model.
func (a *AR) Forecast(history *timeseries.Series, horizon int) ([]float64, error) {
	a.mu.Lock()
	coef := a.coef
	a.mu.Unlock()
	if coef == nil {
		return nil, ErrNotFitted
	}
	if err := checkForecastArgs(history, horizon, a.p); err != nil {
		return nil, err
	}
	// Recursive multi-step forecast over a sliding window of the last p
	// values, starting from real history and feeding predictions back in.
	window := make([]float64, a.p)
	copy(window, history.Values[history.Len()-a.p:])
	out := make([]float64, horizon)
	for h := 0; h < horizon; h++ {
		pred := coef[0]
		for i := 1; i <= a.p; i++ {
			pred += coef[i] * window[len(window)-i]
		}
		out[h] = pred
		window = append(window[1:], pred)
	}
	return clampNonNegative(out), nil
}

// fitARCoefficients fits [c, φ_1..φ_p] to the values by least squares.
func fitARCoefficients(y []float64, p int) ([]float64, error) {
	var x [][]float64
	var target []float64
	for t := p; t < len(y); t++ {
		row := make([]float64, p+1)
		row[0] = 1
		for i := 1; i <= p; i++ {
			row[i] = y[t-i]
		}
		x = append(x, row)
		target = append(target, y[t])
	}
	coef, err := timeseries.RidgeLeastSquares(x, target, ridgeLambda)
	if err != nil {
		return nil, fmt.Errorf("predict: AR fit: %w", err)
	}
	return coef, nil
}
