package predict

import (
	"fmt"

	"pstore/internal/timeseries"
)

// SuggestSPARConfig derives a SPAR configuration from a training series:
// it detects the dominant period with the autocorrelation method, then
// selects n (periods) and m (recent measurements) by validation on the last
// period of the training data — the procedure §5 describes ("after
// examining the quality of our predictor under different values for n and
// m") and P-Store's active-learning path (§6) for workloads without a
// known period.
func SuggestSPARConfig(train *timeseries.Series) (SPARConfig, error) {
	if train == nil || train.Len() < 16 {
		return SPARConfig{}, fmt.Errorf("predict: too little data to suggest a SPAR config")
	}
	period, err := train.DetectPeriod(4, train.Len()/3)
	if err != nil {
		return SPARConfig{}, fmt.Errorf("predict: %w", err)
	}
	maxN := train.Len()/period - 2
	if maxN < 1 {
		return SPARConfig{}, fmt.Errorf("predict: need at least 3 periods of training data (period %d, have %d points)", period, train.Len())
	}
	mSmall := period / 48
	if mSmall < 4 {
		mSmall = 4
	}
	if mSmall > 30 {
		mSmall = 30
	}

	// Validate candidates on the last period: fit on everything before it,
	// score one-step-ahead MRE across it.
	valStart := train.Len() - period
	best := SPARConfig{}
	bestMRE := 0.0
	found := false
	for _, n := range []int{1, 2, 3, 5, 7} {
		if n > maxN {
			break
		}
		for _, m := range []int{mSmall, 30} {
			if m > period/2 {
				continue
			}
			cfg := SPARConfig{Period: period, NPeriods: n, MRecent: m, MaxRows: 25000}
			cand := NewSPAR(cfg)
			if cand.Fit(train.Slice(0, valStart)) != nil {
				continue
			}
			if valStart < cand.MinHistory() {
				continue
			}
			stride := period / 48
			if stride < 1 {
				stride = 1
			}
			// Score short- and medium-horizon accuracy together so the
			// choice is stable for planner-scale forecasts.
			ev1, err := EvaluateHorizon(cand, train, valStart, 1, stride)
			if err != nil {
				continue
			}
			tauMid := period / 24
			if tauMid < 2 {
				tauMid = 2
			}
			evMid, err := EvaluateHorizon(cand, train, valStart, tauMid, stride)
			if err != nil {
				continue
			}
			score := (ev1.MRE + evMid.MRE) / 2
			if !found || score < bestMRE {
				found = true
				bestMRE = score
				best = cfg
			}
		}
	}
	if !found {
		// Fall back to the smallest workable configuration.
		return SPARConfig{Period: period, NPeriods: 1, MRecent: mSmall, MaxRows: 25000}, nil
	}
	return best, nil
}
