package predict_test

import (
	"fmt"
	"math"
	"time"

	"pstore/internal/predict"
	"pstore/internal/timeseries"
)

// ExampleSPAR fits the paper's default model on a noiseless periodic load
// and forecasts an hour ahead.
func ExampleSPAR() {
	const period = 48 // half-hour slots per day
	vals := make([]float64, 12*period)
	for i := range vals {
		vals[i] = 1000 + 800*math.Sin(2*math.Pi*float64(i%period)/period)
	}
	load := timeseries.New(time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC), 30*time.Minute, vals)

	spar := predict.NewSPAR(predict.SPARConfig{Period: period, NPeriods: 3, MRecent: 6})
	if err := spar.Fit(load.Slice(0, 10*period)); err != nil {
		fmt.Println(err)
		return
	}
	forecast, err := spar.Forecast(load.Slice(0, 11*period), 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, v := range forecast {
		fmt.Printf("τ=%d: predicted %.0f actual %.0f\n", i+1, v, load.At(11*period+i))
	}
	// Output:
	// τ=1: predicted 1000 actual 1000
	// τ=2: predicted 1104 actual 1104
}

// ExampleSuggestSPARConfig auto-detects the seasonal period of a load
// series and sizes SPAR to it — the active-learning path of §6.
func ExampleSuggestSPARConfig() {
	vals := make([]float64, 800)
	for i := range vals {
		vals[i] = 500 + 300*math.Sin(2*math.Pi*float64(i)/96)
	}
	load := timeseries.New(time.Time{}, 15*time.Minute, vals)
	cfg, err := predict.SuggestSPARConfig(load)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("period %d, n=%d previous periods\n", cfg.Period, cfg.NPeriods)
	// Output:
	// period 96, n=5 previous periods
}
