package predict

import (
	"fmt"

	"pstore/internal/timeseries"
)

// Evaluation is the result of a rolling-origin accuracy evaluation at one
// forecast horizon τ.
type Evaluation struct {
	Tau       int     // forecast horizon, in slots
	MRE       float64 // mean relative error (the paper's accuracy metric)
	RMSE      float64
	NForecast int // number of forecast points evaluated
}

// EvaluateHorizon measures the model's τ-slots-ahead accuracy over the test
// portion of full: for each origin t in the test range (subsampled by
// stride), the model forecasts τ slots ahead from the history ending at t
// and the τ-th prediction is compared against the actual value. The model
// must already be fitted. stride ≤ 0 means 1.
func EvaluateHorizon(m Model, full *timeseries.Series, testStart, tau, stride int) (Evaluation, error) {
	if stride <= 0 {
		stride = 1
	}
	if tau <= 0 {
		return Evaluation{}, fmt.Errorf("predict: tau must be positive, got %d", tau)
	}
	if testStart < m.MinHistory() {
		return Evaluation{}, fmt.Errorf("predict: testStart %d earlier than MinHistory %d", testStart, m.MinHistory())
	}
	if testStart+tau >= full.Len() {
		return Evaluation{}, fmt.Errorf("predict: no room for τ=%d forecasts after testStart %d in %d points", tau, testStart, full.Len())
	}
	var pred, actual []float64
	for t := testStart; t+tau < full.Len(); t += stride {
		f, err := m.Forecast(full.Slice(0, t+1), tau)
		if err != nil {
			return Evaluation{}, fmt.Errorf("predict: forecast at origin %d: %w", t, err)
		}
		pred = append(pred, f[tau-1])
		actual = append(actual, full.At(t+tau))
	}
	mre, err := timeseries.MRE(pred, actual)
	if err != nil {
		return Evaluation{}, err
	}
	rmse, err := timeseries.RMSE(pred, actual)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{Tau: tau, MRE: mre, RMSE: rmse, NForecast: len(pred)}, nil
}

// ForecastCurve produces the τ-slots-ahead prediction series over the test
// range [testStart, len), as plotted in Figs 5a and 6a: point i is the
// forecast of full[testStart+i] made τ slots earlier. Points whose origin
// would precede MinHistory are skipped (the returned actuals align with the
// predictions).
func ForecastCurve(m Model, full *timeseries.Series, testStart, tau, stride int) (pred, actual []float64, err error) {
	if stride <= 0 {
		stride = 1
	}
	for i := testStart; i < full.Len(); i += stride {
		origin := i - tau
		if origin < m.MinHistory() {
			continue
		}
		f, err := m.Forecast(full.Slice(0, origin+1), tau)
		if err != nil {
			return nil, nil, err
		}
		pred = append(pred, f[tau-1])
		actual = append(actual, full.At(i))
	}
	if len(pred) == 0 {
		return nil, nil, fmt.Errorf("predict: empty forecast curve (testStart=%d, tau=%d)", testStart, tau)
	}
	return pred, actual, nil
}
