package predict

import (
	"fmt"

	"pstore/internal/timeseries"
)

// SeasonalNaive predicts y(t+τ) = y(t+τ−T): the load exactly one period ago.
// It needs no fitting and serves as the floor any learned model must beat.
type SeasonalNaive struct {
	period int
}

// NewSeasonalNaive returns a seasonal-naive model with the given period.
func NewSeasonalNaive(period int) *SeasonalNaive { return &SeasonalNaive{period: period} }

// Name implements Model.
func (s *SeasonalNaive) Name() string { return "SeasonalNaive" }

// MinHistory implements Model.
func (s *SeasonalNaive) MinHistory() int { return s.period }

// Fit implements Model; seasonal-naive has no parameters.
func (s *SeasonalNaive) Fit(train *timeseries.Series) error {
	if s.period <= 0 {
		return fmt.Errorf("predict: seasonal-naive period must be positive, got %d", s.period)
	}
	return nil
}

// Forecast implements Model. horizon must be ≤ the period.
func (s *SeasonalNaive) Forecast(history *timeseries.Series, horizon int) ([]float64, error) {
	if horizon > s.period {
		return nil, fmt.Errorf("predict: seasonal-naive horizon %d exceeds period %d", horizon, s.period)
	}
	if err := checkForecastArgs(history, horizon, s.period); err != nil {
		return nil, err
	}
	y := history.Values
	t := len(y) - 1
	out := make([]float64, horizon)
	for tau := 1; tau <= horizon; tau++ {
		out[tau-1] = y[t+tau-s.period]
	}
	return clampNonNegative(out), nil
}

// Oracle "predicts" by reading the true future from a complete series whose
// timeline contains the forecast window. It implements the P-Store Oracle
// upper bound of Fig 12. Alignment is by timestamp, so the history handed to
// Forecast must lie on the oracle series' grid.
type Oracle struct {
	actual *timeseries.Series
}

// NewOracle returns an oracle over the full actual series.
func NewOracle(actual *timeseries.Series) *Oracle { return &Oracle{actual: actual} }

// Name implements Model.
func (o *Oracle) Name() string { return "Oracle" }

// MinHistory implements Model.
func (o *Oracle) MinHistory() int { return 1 }

// Fit implements Model; the oracle already knows the future.
func (o *Oracle) Fit(train *timeseries.Series) error {
	if o.actual == nil || o.actual.Len() == 0 {
		return fmt.Errorf("predict: oracle has no actual series")
	}
	return nil
}

// Forecast implements Model.
func (o *Oracle) Forecast(history *timeseries.Series, horizon int) ([]float64, error) {
	if err := checkForecastArgs(history, horizon, 1); err != nil {
		return nil, err
	}
	if o.actual == nil {
		return nil, ErrNotFitted
	}
	if o.actual.Step <= 0 || history.Step != o.actual.Step {
		return nil, fmt.Errorf("predict: oracle step %v does not match history step %v", o.actual.Step, history.Step)
	}
	end := history.TimeAt(history.Len() - 1)
	offset := end.Sub(o.actual.Start)
	if offset < 0 || offset%o.actual.Step != 0 {
		return nil, fmt.Errorf("predict: history end %v is not on the oracle grid", end)
	}
	idx := int(offset / o.actual.Step)
	if idx+horizon >= o.actual.Len() {
		return nil, fmt.Errorf("predict: oracle series ends before horizon %d after index %d", horizon, idx)
	}
	out := make([]float64, horizon)
	copy(out, o.actual.Values[idx+1:idx+1+horizon])
	return out, nil
}
