package predict

import (
	"fmt"
	"sync"

	"pstore/internal/timeseries"
)

// SPARConfig parameterizes Sparse Periodic Auto-Regression.
type SPARConfig struct {
	// Period is T, the number of slots per seasonal period (e.g. 1440 for
	// 1-minute slots with a daily period; the paper uses a weekly periodic
	// component by setting NPeriods=7 over daily periods).
	Period int
	// NPeriods is n, the number of previous periods considered (paper: 7).
	NPeriods int
	// MRecent is m, the number of recent load measurements considered
	// (paper: 30).
	MRecent int
	// MaxRows caps the number of regression rows per τ fit; extra rows are
	// skipped with an even stride. Zero means no cap.
	MaxRows int
}

// DefaultSPARConfig returns the paper's configuration for a series with the
// given seasonal period: n=7 previous periods, m=30 recent measurements.
func DefaultSPARConfig(period int) SPARConfig {
	return SPARConfig{Period: period, NPeriods: 7, MRecent: 30, MaxRows: 25000}
}

// SPAR implements the paper's Eq. 8:
//
//	y(t+τ) = Σ_{k=1..n} a_k·y(t+τ−kT) + Σ_{j=1..m} b_j·Δy(t−j)
//
// where Δy(t−j) = y(t−j) − (1/n)·Σ_{k=1..n} y(t−j−kT) is the offset of the
// recent load from the expected load at that time of day. Coefficients a_k
// and b_j are fitted by linear least squares, separately per forecast
// horizon τ (fitted lazily and cached).
type SPAR struct {
	cfg SPARConfig

	mu    sync.Mutex
	train *timeseries.Series
	coefs map[int][]float64 // τ → [a_1..a_n, b_1..b_m]
}

// NewSPAR returns an unfitted SPAR model.
func NewSPAR(cfg SPARConfig) *SPAR {
	return &SPAR{cfg: cfg, coefs: make(map[int][]float64)}
}

// Name implements Model.
func (s *SPAR) Name() string { return "SPAR" }

// Config returns the model configuration.
func (s *SPAR) Config() SPARConfig { return s.cfg }

// MinHistory implements Model: Δ terms reach back m + n·T slots.
func (s *SPAR) MinHistory() int { return s.cfg.NPeriods*s.cfg.Period + s.cfg.MRecent + 1 }

// Fit implements Model. SPAR keeps the training series and fits per-τ
// coefficient vectors on first use.
func (s *SPAR) Fit(train *timeseries.Series) error {
	if err := s.validate(); err != nil {
		return err
	}
	need := s.MinHistory() + s.cfg.Period // room for at least a few rows at τ up to T
	if train == nil || train.Len() < need {
		got := 0
		if train != nil {
			got = train.Len()
		}
		return fmt.Errorf("predict: SPAR needs ≥ %d training points (n·T + m + T), got %d", need, got)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.train = train.Clone()
	s.coefs = make(map[int][]float64)
	return nil
}

func (s *SPAR) validate() error {
	if s.cfg.Period <= 0 || s.cfg.NPeriods <= 0 || s.cfg.MRecent < 0 {
		return fmt.Errorf("predict: invalid SPAR config %+v", s.cfg)
	}
	if s.cfg.MaxRows < 0 {
		return fmt.Errorf("predict: negative MaxRows %d", s.cfg.MaxRows)
	}
	return nil
}

// Forecast implements Model. horizon must be < Period (the paper requires
// τ < T so that the k=1 periodic regressor lies in the past).
func (s *SPAR) Forecast(history *timeseries.Series, horizon int) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.train == nil {
		return nil, ErrNotFitted
	}
	if horizon >= s.cfg.Period {
		return nil, fmt.Errorf("predict: SPAR horizon %d must be < period %d", horizon, s.cfg.Period)
	}
	if err := checkForecastArgs(history, horizon, s.MinHistory()); err != nil {
		return nil, err
	}
	out := make([]float64, horizon)
	y := history.Values
	t := len(y) - 1 // "now" index
	delta := s.deltas(y, t)
	for tau := 1; tau <= horizon; tau++ {
		coef, err := s.fitTauLocked(tau)
		if err != nil {
			return nil, err
		}
		pred := 0.0
		for k := 1; k <= s.cfg.NPeriods; k++ {
			pred += coef[k-1] * y[t+tau-k*s.cfg.Period]
		}
		for j := 1; j <= s.cfg.MRecent; j++ {
			pred += coef[s.cfg.NPeriods+j-1] * delta[j-1]
		}
		out[tau-1] = pred
	}
	return clampNonNegative(out), nil
}

// deltas computes Δy(t−j) for j = 1..m at the given "now" index t.
func (s *SPAR) deltas(y []float64, t int) []float64 {
	n, m, T := s.cfg.NPeriods, s.cfg.MRecent, s.cfg.Period
	out := make([]float64, m)
	for j := 1; j <= m; j++ {
		expected := 0.0
		for k := 1; k <= n; k++ {
			expected += y[t-j-k*T]
		}
		expected /= float64(n)
		out[j-1] = y[t-j] - expected
	}
	return out
}

// fitTauLocked returns the coefficient vector for forecast horizon τ,
// fitting it from the stored training series if not yet cached. The caller
// must hold s.mu.
func (s *SPAR) fitTauLocked(tau int) ([]float64, error) {
	if c, ok := s.coefs[tau]; ok {
		return c, nil
	}
	n, m, T := s.cfg.NPeriods, s.cfg.MRecent, s.cfg.Period
	y := s.train.Values
	tMin := n*T + m
	tMax := len(y) - 1 - tau
	if tMax < tMin {
		return nil, fmt.Errorf("predict: training series too short for τ=%d", tau)
	}
	rows := tMax - tMin + 1
	stride := 1
	if s.cfg.MaxRows > 0 && rows > s.cfg.MaxRows {
		stride = (rows + s.cfg.MaxRows - 1) / s.cfg.MaxRows
	}

	var x [][]float64
	var target []float64
	for t := tMin; t <= tMax; t += stride {
		row := make([]float64, n+m)
		for k := 1; k <= n; k++ {
			row[k-1] = y[t+tau-k*T]
		}
		for j, d := range s.deltas(y, t) {
			row[n+j] = d
		}
		x = append(x, row)
		target = append(target, y[t+tau])
	}
	coef, err := timeseries.RidgeLeastSquares(x, target, ridgeLambda)
	if err != nil {
		return nil, fmt.Errorf("predict: SPAR fit τ=%d: %w", tau, err)
	}
	s.coefs[tau] = coef
	return coef, nil
}
