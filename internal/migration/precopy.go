package migration

import (
	"fmt"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/metrics"
	"pstore/internal/storage"
)

// moveBucketPreCopy is one attempt of the pre-copy / delta-drain /
// atomic-flip protocol — the default bucket move. Where the legacy
// stop-and-copy attempt (moveBucketOnce) holds the source executor for the
// whole extraction and the destination for the whole application, this
// attempt touches the executors only in bounded visits:
//
//	Phase 1 — pre-copy. The source marks the bucket migrating and starts
//	capturing its writes into an ordered delta log (storage.BeginCapture),
//	then streams the bucket's snapshot to the destination in slices of at
//	most CopySliceRows rows. Slices travel through the executors'
//	background lane (engine.DoBackground), behind queued transactions, so
//	foreground latency sees at most one slice of interference. The bucket
//	keeps serving reads and writes at the source throughout.
//
//	Phase 2 — delta drain. Captured writes are drained in rounds and
//	replayed onto the destination's staging area in capture order. Each
//	round shrinks the residual to the writes that arrived during the
//	round, so under any write rate the drain converges geometrically; the
//	loop stops when the residual is ≤ DeltaThreshold or DeltaMaxRounds is
//	hit.
//
//	Phase 3 — atomic flip. The only stop-the-world step: the source
//	detaches the bucket (O(tables) pointer moves + the final residual
//	delta), routing repoints, and the destination overlays the final
//	delta, logs the assembled bucket receiver-first (durable before
//	visible, exactly as stop-and-copy does), and commits the staged maps
//	by reference. The foreground stall is O(residual delta), not
//	O(bucket), and is recorded in the cluster's MoveStalls histogram.
//
// Failure anywhere before the flip aborts the capture and discards the
// staging — the bucket never left the source, so the attempt leaves the
// cluster exactly as it found it. Failure after the repoint rolls back by
// reattaching the detached maps and repointing home; if that reattach
// fails the error wraps errRollbackFailed and the retry loop treats the
// move as terminal, same as the legacy path. The receiver-first durable
// handoff, markMoved-before-LogBucketOut ordering, and crash-recovery
// dual-claim resolution are all unchanged.
func (m *Migration) moveBucketPreCopy(c *cluster.Cluster, mv bucketMove) error {
	srcExec, ok := c.ExecutorOf(mv.fromPart)
	if !ok {
		return fmt.Errorf("migration: no executor for source partition %d", mv.fromPart)
	}
	dstExec, ok := c.ExecutorOf(mv.toPart)
	if !ok {
		return fmt.Errorf("migration: no executor for destination partition %d", mv.toPart)
	}
	hook := m.opts.FaultHook
	if hook != nil {
		if err := hook(mv.bucket, mv.fromPart, mv.toPart); err != nil {
			return fmt.Errorf("before pre-copying bucket %d: %w", mv.bucket, err)
		}
	}

	// Phase 1: begin capture and collect the copy manifest. One short
	// executor visit — O(bucket keys) to list, no row copying.
	var slices []storage.CopySlice
	err := srcExec.Do(func(p *storage.Partition) (int, error) {
		var err error
		slices, err = p.BeginCapture(mv.bucket, m.opts.CopySliceRows)
		return 0, err
	})
	if err != nil {
		return fmt.Errorf("migration: begin capture of bucket %d on partition %d: %w", mv.bucket, mv.fromPart, err)
	}
	c.SetMigrating(mv.bucket, true)
	defer c.SetMigrating(mv.bucket, false)

	// abortMove undoes everything an unflipped attempt did: capture state
	// at the source, staged rows at the destination. The bucket stayed
	// owned and live at the source the whole time, so this restores the
	// pre-attempt state exactly.
	abortMove := func() {
		_ = srcExec.Do(func(p *storage.Partition) (int, error) {
			p.AbortCapture(mv.bucket)
			return 0, nil
		})
		_ = dstExec.Do(func(p *storage.Partition) (int, error) {
			p.DiscardStaged(mv.bucket)
			return 0, nil
		})
		m.rollbacks.Add(1)
		c.Events().Add(metrics.EventMoveRollbacks, 1)
	}

	// Stream the snapshot slices through the background lane: each visit
	// is bounded by CopySliceRows, and queued foreground transactions run
	// ahead of every slice.
	copied := 0
	for _, s := range slices {
		if m.canceled() {
			abortMove()
			return fmt.Errorf("migration: bucket %d pre-copy canceled: run failed elsewhere", mv.bucket)
		}
		var batch *storage.TupleBatch
		err := srcExec.DoBackground(func(p *storage.Partition) (int, error) {
			var err error
			batch, err = p.CopyRows(mv.bucket, s)
			if batch == nil {
				return 0, err
			}
			return batch.Len(), err
		})
		if err == nil {
			// The batch aliases the source bucket's append-only arena pages —
			// handing it across executors copies slice headers, not rows.
			err = dstExec.DoBackground(func(p *storage.Partition) (int, error) {
				return batch.Len(), p.StageRows(mv.bucket, batch)
			})
		}
		if err != nil {
			abortMove()
			return fmt.Errorf("migration: pre-copying bucket %d (%d→%d): %w", mv.bucket, mv.fromPart, mv.toPart, err)
		}
		copied += batch.Len()
	}
	c.Events().Add(metrics.EventPreCopyRows, int64(copied))

	if hook != nil {
		// Second injection site: capture is live and the snapshot is staged
		// at the destination — a failure here exercises the capture-abort
		// path before any delta has drained.
		if err := hook(mv.bucket, mv.fromPart, mv.toPart); err != nil {
			abortMove()
			return fmt.Errorf("during delta drain of bucket %d: %w", mv.bucket, err)
		}
	}

	// Phase 2: drain rounds until the residual delta is small enough to
	// absorb inside the flip pause.
	deltaRows := 0
	for round := 0; round < m.opts.DeltaMaxRounds; round++ {
		c.Events().Add(metrics.EventDeltaRounds, 1)
		var ops []storage.DeltaOp
		err := srcExec.Do(func(p *storage.Partition) (int, error) {
			var err error
			ops, _, err = p.DrainDelta(mv.bucket, 0)
			return len(ops), err
		})
		if err == nil && len(ops) > 0 {
			err = dstExec.DoBackground(func(p *storage.Partition) (int, error) {
				return len(ops), p.StageDelta(mv.bucket, ops)
			})
		}
		if err != nil {
			abortMove()
			return fmt.Errorf("migration: draining delta of bucket %d (round %d): %w", mv.bucket, round, err)
		}
		deltaRows += len(ops)
		// The residual is whatever was captured while this round's batch
		// was in flight; flip once it is below threshold.
		residual := 0
		err = srcExec.Do(func(p *storage.Partition) (int, error) {
			residual = p.DeltaLen(mv.bucket)
			return 0, nil
		})
		if err != nil {
			abortMove()
			return fmt.Errorf("migration: sizing residual delta of bucket %d: %w", mv.bucket, err)
		}
		if residual <= m.opts.DeltaThreshold {
			break
		}
	}

	// Phase 3: the flip. Everything between DetachBucket and CommitStaged
	// is the foreground stall window — transactions for the bucket requeue
	// through the cluster's bounded retry loop until the commit lands.
	stallStart := time.Now() //pstore:ignore seeddiscipline — stall-window observability only; never feeds a migration decision
	var detached *storage.DetachedBucket
	var final []storage.DeltaOp
	err = srcExec.Do(func(p *storage.Partition) (int, error) {
		var err error
		detached, final, err = p.DetachBucket(mv.bucket)
		return len(final), err
	})
	if err != nil {
		abortMove()
		return fmt.Errorf("migration: detaching bucket %d from partition %d: %w", mv.bucket, mv.fromPart, err)
	}
	c.SetOwner(mv.bucket, mv.toPart)
	dstMgr := c.HandoffOf(mv.toPart)
	if hook != nil {
		// Third injection site: the bucket is detached and routing points at
		// the destination — a failure here must roll back the flip.
		err = hook(mv.bucket, mv.fromPart, mv.toPart)
	}
	committed := 0
	if err == nil {
		err = dstExec.Do(func(p *storage.Partition) (int, error) {
			if err := p.StageDelta(mv.bucket, final); err != nil {
				return 0, err
			}
			if dstMgr != nil {
				// Durable before visible: the receiver's log can rebuild the
				// assembled bucket before any transaction runs against it
				// here — identical to the stop-and-copy handoff contract.
				if err := dstMgr.LogBucketIn(p.StagedData(mv.bucket)); err != nil {
					return 0, err
				}
			}
			var err error
			committed, err = p.CommitStaged(mv.bucket)
			// Charge only the final delta: the committed rows already paid
			// their transfer cost when they streamed through StageRows, and
			// CommitStaged itself is O(tables) pointer installs.
			return len(final), err
		})
	}
	if err != nil {
		applyErr := fmt.Errorf("migration: committing bucket %d to partition %d: %w", mv.bucket, mv.toPart, err)
		c.SetOwner(mv.bucket, mv.fromPart)
		rbErr := srcExec.Do(func(p *storage.Partition) (int, error) {
			return 0, p.ReattachBucket(detached)
		})
		_ = dstExec.Do(func(p *storage.Partition) (int, error) {
			p.DiscardStaged(mv.bucket)
			return 0, nil
		})
		if rbErr != nil {
			return fmt.Errorf("%w after %v: reattaching bucket %d to partition %d: %w",
				errRollbackFailed, applyErr, mv.bucket, mv.fromPart, rbErr)
		}
		m.rollbacks.Add(1)
		c.Events().Add(metrics.EventMoveRollbacks, 1)
		return applyErr
	}
	c.MoveStalls().Observe(time.Since(stallStart)) //pstore:ignore seeddiscipline — stall-window observability only
	c.Events().Add(metrics.EventDeltaRows, int64(deltaRows+len(final)))

	// The bucket now lives at the destination: record progress before the
	// sender-side handoff log, so a failure below is reported but never
	// re-moves the bucket (recovery resolves dual claims in the receiver's
	// favor, matching this choice).
	m.markMoved(mv.bucket)
	m.movedBuckets.Add(1)
	m.movedRows.Add(int64(committed))
	if srcMgr := c.HandoffOf(mv.fromPart); srcMgr != nil {
		if err := srcMgr.LogBucketOut(mv.bucket); err != nil {
			return fmt.Errorf("%w: logging bucket %d out of partition %d: %w",
				errRollbackFailed, mv.bucket, mv.fromPart, err)
		}
	}
	return nil
}
