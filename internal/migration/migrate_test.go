package migration

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/storage"
)

func testRegistry() *engine.Registry {
	reg := engine.NewRegistry()
	reg.Register("Put", func(tx *engine.Txn) error {
		return tx.Put("T", tx.Key, map[string]string{"v": tx.Arg("v")})
	})
	reg.Register("Get", func(tx *engine.Txn) error {
		r, ok, err := tx.Get("T", tx.Key)
		if err != nil {
			return err
		}
		if !ok {
			return tx.Abort("not found")
		}
		tx.SetOut("v", r.Cols["v"])
		return nil
	})
	reg.Register("Delete", func(tx *engine.Txn) error {
		_, err := tx.Delete("T", tx.Key)
		return err
	})
	return reg
}

func newTestCluster(t *testing.T, nodes, partsPerNode, nBuckets int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		InitialNodes:      nodes,
		PartitionsPerNode: partsPerNode,
		NBuckets:          nBuckets,
		Tables:            []string{"T"},
		Registry:          testRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func loadKeys(t *testing.T, c *cluster.Cluster, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := c.LoadRow("T", key, map[string]string{"v": key}); err != nil {
			t.Fatal(err)
		}
	}
}

func verifyKeys(t *testing.T, c *cluster.Cluster, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		res := c.Call(&engine.Txn{Proc: "Get", Key: key})
		if res.Err != nil {
			t.Fatalf("get %s: %v", key, res.Err)
		}
		if res.Out["v"] != key {
			t.Fatalf("get %s = %q", key, res.Out["v"])
		}
	}
}

func fastOpts() Options {
	return Options{BucketsPerChunk: 4, ChunkInterval: 100 * time.Microsecond}
}

func verifyBalanced(t *testing.T, c *cluster.Cluster) {
	t.Helper()
	counts := c.BucketCounts()
	min, max := 1<<30, 0
	for _, n := range counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if len(counts) != c.NumNodes()*c.PartitionsPerNode() {
		t.Errorf("bucket owners span %d partitions, want %d", len(counts), c.NumNodes()*c.PartitionsPerNode())
	}
	if max-min > 1 {
		t.Errorf("bucket counts unbalanced: min %d max %d (%v)", min, max, counts)
	}
}

func TestScaleOutPreservesDataAndBalances(t *testing.T) {
	c := newTestCluster(t, 2, 2, 64)
	loadKeys(t, c, 400)
	rep, err := Run(c, 4, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	if rep.BucketsMoved == 0 || rep.RowsMoved == 0 {
		t.Errorf("report = %+v", rep)
	}
	verifyKeys(t, c, 400)
	verifyBalanced(t, c)
	if n, _ := c.TotalRows(); n != 400 {
		t.Errorf("TotalRows = %d", n)
	}
}

func TestScaleInPreservesDataAndBalances(t *testing.T) {
	c := newTestCluster(t, 4, 2, 64)
	loadKeys(t, c, 400)
	_, err := Run(c, 2, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	verifyKeys(t, c, 400)
	verifyBalanced(t, c)
}

func TestScaleOutThreePhaseCase(t *testing.T) {
	// 3 → 14 with 1 partition per node exercises the three-phase schedule
	// (Table 1).
	c := newTestCluster(t, 3, 1, 140)
	loadKeys(t, c, 300)
	rep, err := Run(c, 14, Options{BucketsPerChunk: 8, ChunkInterval: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 11 {
		t.Errorf("rounds = %d, want 11", rep.Rounds)
	}
	verifyKeys(t, c, 300)
	verifyBalanced(t, c)
}

func TestMigrationNoop(t *testing.T) {
	c := newTestCluster(t, 2, 2, 64)
	rep, err := Run(c, 2, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BucketsMoved != 0 {
		t.Errorf("no-op moved %d buckets", rep.BucketsMoved)
	}
}

func TestMigrationInvalidTarget(t *testing.T) {
	c := newTestCluster(t, 2, 2, 64)
	if _, err := Run(c, 0, fastOpts()); err == nil {
		t.Error("target 0 should fail")
	}
}

func TestMigrationUnderLiveTraffic(t *testing.T) {
	c := newTestCluster(t, 2, 2, 128)
	loadKeys(t, c, 600)

	stop := make(chan struct{})
	var failures atomic.Int64
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", (g*150+i)%600)
				res := c.Call(&engine.Txn{Proc: "Get", Key: key})
				calls.Add(1)
				if res.Err != nil {
					failures.Add(1)
				}
				i++
			}
		}(g)
	}

	// Scale out then back in while reads hammer the cluster.
	if _, err := Run(c, 4, fastOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, 2, fastOpts()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if calls.Load() == 0 {
		t.Fatal("no traffic ran")
	}
	if f := failures.Load(); f != 0 {
		t.Errorf("%d/%d reads failed during live migration", f, calls.Load())
	}
	verifyKeys(t, c, 600)
	if n, _ := c.TotalRows(); n != 600 {
		t.Errorf("TotalRows = %d", n)
	}
}

func TestMigrationProgressTracking(t *testing.T) {
	c := newTestCluster(t, 1, 2, 64)
	loadKeys(t, c, 200)
	m, err := Start(c, 2, Options{BucketsPerChunk: 1, ChunkInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if m.FromNodes() != 1 || m.ToNodes() != 2 {
		t.Errorf("from/to = %d/%d", m.FromNodes(), m.ToNodes())
	}
	var sawPartial bool
	for {
		select {
		case <-m.Done():
			goto done
		default:
		}
		if f := m.MovedFraction(); f > 0 && f < 1 {
			sawPartial = true
		}
		time.Sleep(time.Millisecond)
	}
done:
	rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !sawPartial {
		t.Error("never observed partial progress")
	}
	if m.MovedFraction() != 1 {
		t.Errorf("final MovedFraction = %v", m.MovedFraction())
	}
	if rep.Duration <= 0 {
		t.Errorf("duration = %v", rep.Duration)
	}
	verifyKeys(t, c, 200)
}

func TestRateMultiplierNormalization(t *testing.T) {
	o := Options{BucketsPerChunk: 2, ChunkInterval: 8 * time.Millisecond, RateMultiplier: 8}.normalized()
	if o.BucketsPerChunk != 16 {
		t.Errorf("BucketsPerChunk = %d, want 16", o.BucketsPerChunk)
	}
	if o.ChunkInterval != time.Millisecond {
		t.Errorf("ChunkInterval = %v, want 1ms", o.ChunkInterval)
	}
	d := Options{}.normalized()
	if d.BucketsPerChunk != 1 || d.ChunkInterval != time.Millisecond || d.RateMultiplier != 1 {
		t.Errorf("defaults = %+v", d)
	}
}

func TestRepeatedScaleCycles(t *testing.T) {
	c := newTestCluster(t, 1, 2, 96)
	loadKeys(t, c, 300)
	for _, target := range []int{3, 1, 4, 2, 5, 1} {
		if _, err := Run(c, target, fastOpts()); err != nil {
			t.Fatalf("scale to %d: %v", target, err)
		}
		if c.NumNodes() != target {
			t.Fatalf("NumNodes = %d, want %d", c.NumNodes(), target)
		}
		verifyBalanced(t, c)
	}
	verifyKeys(t, c, 300)
}

func TestConcurrentMigrationsRejected(t *testing.T) {
	c := newTestCluster(t, 2, 2, 128)
	loadKeys(t, c, 400)
	m, err := Start(c, 4, Options{BucketsPerChunk: 1, ChunkInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(c, 3, fastOpts()); err != ErrInProgress {
		t.Errorf("second Start err = %v, want ErrInProgress", err)
	}
	if !c.Reconfiguring() {
		t.Error("cluster should report reconfiguring")
	}
	if _, err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.Reconfiguring() {
		t.Error("cluster should be done reconfiguring")
	}
	// A new migration is accepted after completion.
	if _, err := Run(c, 2, fastOpts()); err != nil {
		t.Fatal(err)
	}
	verifyKeys(t, c, 400)
}

func TestNoopMigrationReleasesLock(t *testing.T) {
	c := newTestCluster(t, 2, 2, 64)
	if _, err := Run(c, 2, fastOpts()); err != nil {
		t.Fatal(err)
	}
	if c.Reconfiguring() {
		t.Error("no-op migration must release the reconfiguration lock")
	}
}

func TestBalanceEvensSkewedOwnership(t *testing.T) {
	c := newTestCluster(t, 2, 2, 64)
	loadKeys(t, c, 300)
	// Manufacture skew: push every bucket of partition 0 onto partition 1.
	src, _ := c.ExecutorOf(0)
	dst, _ := c.ExecutorOf(1)
	var buckets []int
	if err := src.Do(func(p *storage.Partition) (int, error) {
		buckets = p.OwnedBuckets()
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, b := range buckets {
		var data *storage.BucketData
		if err := src.Do(func(p *storage.Partition) (int, error) {
			var err error
			data, err = p.ExtractBucket(b)
			return 0, err
		}); err != nil {
			t.Fatal(err)
		}
		c.SetOwner(b, 1)
		if err := dst.Do(func(p *storage.Partition) (int, error) {
			return 0, p.ApplyBucket(data)
		}); err != nil {
			t.Fatal(err)
		}
	}
	counts := c.BucketCounts()
	if counts[0] != 0 || counts[1] != 32 {
		t.Fatalf("setup failed: %v", counts)
	}

	moved, err := Balance(c, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("nothing moved")
	}
	verifyBalanced(t, c)
	verifyKeys(t, c, 300)
	if c.Reconfiguring() {
		t.Error("balance must release the reconfiguration lock")
	}
	// A balanced cluster is a no-op.
	moved, err = Balance(c, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("balanced cluster moved %d buckets", moved)
	}
}
