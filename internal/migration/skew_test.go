package migration

import (
	"strings"
	"testing"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/replication"
)

// TestScaleRefusedAfterFailoverSkew: failover promotion rehomes a partition
// onto its standby's node, leaving the layout jagged. The slot-indexed
// reconfiguration schedule assumes a rectangular layout, so Start must
// refuse with a clean error — it used to index-panic in planBucketMoves
// *after* AddNode had already written the new node into the manifest,
// stranding a half-scaled cluster.
func TestScaleRefusedAfterFailoverSkew(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		InitialNodes:      2,
		PartitionsPerNode: 1,
		NBuckets:          64,
		Tables:            []string{"T"},
		Registry:          testRegistry(),
		ReplicationFactor: 1,
		Replication: replication.Options{
			Seed:           1,
			HealthInterval: 10 * time.Millisecond,
			ProbeTimeout:   50 * time.Millisecond,
			ProbeStrikes:   3,
			AckTimeout:     200 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	loadKeys(t, c, 50)
	// Let the standbys finish seeding: an unseeded standby is never
	// promotable, so killing its primary first would wedge the failover.
	if err := c.WaitReplicasCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	// Wait until promotion has skewed the layout: node 0's partition now
	// lives on node 1.
	deadline := time.Now().Add(10 * time.Second)
	skewed := false
	for time.Now().Before(deadline) {
		for _, n := range c.Nodes() {
			if len(n.Partitions) != c.PartitionsPerNode() {
				skewed = true
			}
		}
		if skewed {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !skewed {
		t.Fatal("failover never skewed the partition layout")
	}

	before := c.NumNodes()
	_, err = Run(c, before+1, fastOpts())
	if err == nil {
		t.Fatal("scale on a skewed layout succeeded, want refusal")
	}
	if !strings.Contains(err.Error(), "skewed by failovers") {
		t.Fatalf("scale error = %v, want layout-skew refusal", err)
	}
	// The refusal must happen before any node is provisioned, and must
	// release the reconfiguration lock for future (valid) attempts.
	if got := c.NumNodes(); got != before {
		t.Fatalf("refused scale changed node count: %d → %d", before, got)
	}
	if _, err := Run(c, before+1, fastOpts()); err == nil || strings.Contains(err.Error(), "in progress") {
		t.Fatalf("second attempt hit stale reconfiguration lock: %v", err)
	}
}
