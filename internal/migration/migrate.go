// Package migration implements live, chunked data migration between
// partitions — the Squall substitute. A reconfiguration follows the
// three-phase machine-pair schedule of §4.4.1 (plan.Schedule): rounds of
// parallel sender→receiver transfers, each moving an equal share of hash
// buckets, paced by a configurable chunk size and inter-chunk delay.
// Extraction and application run on the partitions' own executors, so
// migration work competes with regular transactions for the same cycles —
// faster migration means more latency interference (Fig 8).
package migration

//pstore:seeded — chaos runs replay migrations from PSTORE_CHAOS_SEED;
// randomness and timing decisions must flow from the configured seed.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/metrics"
	"pstore/internal/plan"
	"pstore/internal/storage"
)

// ErrInProgress is returned by Start when another reconfiguration of the
// same cluster has not finished yet: concurrent bucket moves would race on
// routing ownership.
var ErrInProgress = errors.New("migration: a reconfiguration is already in progress")

// Options tunes migration aggressiveness.
type Options struct {
	// BucketsPerChunk is how many buckets move per paced step (the paper's
	// chunk-size knob from Fig 8). Default 1.
	BucketsPerChunk int
	// ChunkInterval is the pause between chunks on each transfer pair
	// (Squall spaces chunks ≥ 100 ms; compressed-time experiments use
	// less). Default 1ms.
	ChunkInterval time.Duration
	// RateMultiplier scales aggressiveness for reactive catch-up (the
	// paper's "rate R×8"): it multiplies BucketsPerChunk and divides
	// ChunkInterval. Default 1.
	RateMultiplier int
	// MoveRetries is how many times a failed bucket move is retried (with
	// jittered exponential backoff) before the reconfiguration gives up.
	// Reconfiguration runs exactly when nodes stall and queues overflow, so
	// a transient extract/apply failure must not abort the whole move.
	// Default 3; negative disables retries.
	MoveRetries int
	// MoveBackoff is the base delay before the first move retry; each
	// further retry doubles it, with ±50% jitter. Default 5ms.
	MoveBackoff time.Duration
	// StopAndCopy selects the legacy single-shot move: extract the whole
	// bucket in one executor visit, repoint, apply in one visit. Off by
	// default — moves run the pre-copy / delta-drain / atomic-flip protocol,
	// whose foreground stall is O(residual delta) instead of O(bucket).
	// Kept as a flag so benchmarks and ablations can price the difference.
	StopAndCopy bool
	// CopySliceRows bounds how many rows a single pre-copy executor visit
	// may stream, so bulk copying never occupies the source or destination
	// executor for more than ~CopySliceRows·MigrationRowCost at a time.
	// Default storage.DefaultCopySliceRows.
	CopySliceRows int
	// DeltaThreshold is the residual-delta size (captured writes not yet
	// replayed at the destination) below which the migrator stops draining
	// and performs the final flip. The flip pause is O(threshold + writes
	// arriving during it). Default 16; negative means flip only on an
	// empty residual.
	DeltaThreshold int
	// DeltaMaxRounds caps delta-drain rounds per move, so a write rate that
	// outruns draining cannot pre-copy forever — after this many rounds the
	// move flips and absorbs whatever residual remains. Default 6.
	DeltaMaxRounds int
	// Seed fixes the PRNG behind retry-backoff jitter so chaos runs pinned
	// via PSTORE_CHAOS_SEED replay with identical retry spacing. Zero draws
	// a nondeterministic seed.
	Seed int64
	// FaultHook, when non-nil, is consulted at fixed points of each move
	// attempt: before the move starts, after the pre-copy stream (before
	// delta draining), and between the routing repoint and the destination
	// commit. A non-nil error fails the attempt at that point — the later
	// sites exercise the capture-abort and post-repoint rollback paths.
	// (The legacy stop-and-copy path has only the first and last sites.)
	// Chaos tests wire faultinject.Injector.MoveFault here; production
	// leaves it nil.
	FaultHook func(bucket, fromPart, toPart int) error
}

func (o Options) normalized() Options {
	if o.BucketsPerChunk <= 0 {
		o.BucketsPerChunk = 1
	}
	if o.ChunkInterval < 0 {
		o.ChunkInterval = 0
	} else if o.ChunkInterval == 0 {
		o.ChunkInterval = time.Millisecond
	}
	if o.RateMultiplier <= 0 {
		o.RateMultiplier = 1
	}
	if o.MoveRetries == 0 {
		o.MoveRetries = 3
	} else if o.MoveRetries < 0 {
		o.MoveRetries = 0
	}
	if o.MoveBackoff <= 0 {
		o.MoveBackoff = 5 * time.Millisecond
	}
	if o.CopySliceRows <= 0 {
		o.CopySliceRows = storage.DefaultCopySliceRows
	}
	if o.DeltaThreshold == 0 {
		o.DeltaThreshold = 16
	} else if o.DeltaThreshold < 0 {
		o.DeltaThreshold = 0
	}
	if o.DeltaMaxRounds <= 0 {
		o.DeltaMaxRounds = 6
	}
	o.BucketsPerChunk *= o.RateMultiplier
	o.ChunkInterval /= time.Duration(o.RateMultiplier)
	return o
}

// Report summarizes a completed (or failed) reconfiguration. On failure the
// moved/remaining split and the failing pair tell the operator — and the
// resume path — exactly where the reconfiguration stopped.
type Report struct {
	FromNodes, ToNodes int
	Rounds             int
	// BucketsMoved counts buckets fully relocated, across the original run
	// and any resumes; BucketsRemaining is what a Resume still has to move.
	BucketsMoved     int
	BucketsRemaining int
	RowsMoved        int64
	// Retries counts bucket-move attempts that were retried after a
	// transient failure; Rollbacks counts moves rolled back to their source.
	Retries   int64
	Rollbacks int64
	Duration  time.Duration
	// FailedBucket/FailedFrom/FailedTo identify the move whose error ended
	// the run. FailedBucket is -1 when the run succeeded.
	FailedBucket int
	FailedFrom   int
	FailedTo     int
}

// Migration is a handle on an in-progress reconfiguration. A failed
// migration keeps its plan and per-bucket progress, so Resume can finish
// the reconfiguration without re-moving completed buckets.
type Migration struct {
	fromNodes, toNodes int
	totalBuckets       int64
	movedBuckets       atomic.Int64
	movedRows          atomic.Int64
	retries            atomic.Int64
	rollbacks          atomic.Int64

	// The plan, kept for Resume.
	opts    Options // already normalized
	rounds  []plan.Round
	moves   map[[2]int][]bucketMove
	retired []int

	// movedMu guards moved, the per-bucket progress record that makes
	// retried and resumed runs idempotent: a bucket in the set is never
	// extracted again.
	movedMu sync.Mutex
	moved   map[int]bool

	// cancel is closed when the run's first error is recorded, waking every
	// other transfer pair out of pacing and backoff sleeps so a failed
	// migration does not linger in time.Sleep.
	cancel     chan struct{}
	cancelOnce sync.Once

	// rng drives backoff jitter; seeded from Options.Seed so pinned chaos
	// runs replay with identical retry spacing.
	rng *lockedRand

	done   chan struct{}
	report *Report
	err    error
}

// newHandle builds a Migration with its runtime machinery (progress map,
// cancellation, seeded jitter source) initialized. opts must already be
// normalized.
func newHandle(opts Options) *Migration {
	return &Migration{
		opts:   opts,
		moved:  make(map[int]bool),
		cancel: make(chan struct{}),
		rng:    newLockedRand(opts.Seed),
		done:   make(chan struct{}),
	}
}

// abort wakes every sleeping transfer pair; idempotent.
func (m *Migration) abort() {
	m.cancelOnce.Do(func() { close(m.cancel) })
}

// canceled reports whether the run has already failed elsewhere.
func (m *Migration) canceled() bool {
	select {
	case <-m.cancel:
		return true
	default:
		return false
	}
}

// sleep pauses for d but returns early (false) if the run is canceled.
func (m *Migration) sleep(d time.Duration) bool {
	if d <= 0 {
		return !m.canceled()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-m.cancel:
		return false
	}
}

// lockedRand is a mutex-guarded rand.Rand: backoff jitter is drawn from
// concurrent transfer-pair goroutines, and rand.Rand itself is not safe for
// concurrent use.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	if seed == 0 {
		seed = rand.Int63() //pstore:ignore seeddiscipline — seed==0 explicitly requests a nondeterministic run; chaos tests always pass a seed
	}
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (r *lockedRand) Int63n(n int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Int63n(n)
}

func (m *Migration) isMoved(bucket int) bool {
	m.movedMu.Lock()
	defer m.movedMu.Unlock()
	return m.moved[bucket]
}

func (m *Migration) markMoved(bucket int) {
	m.movedMu.Lock()
	m.moved[bucket] = true
	m.movedMu.Unlock()
}

// MovedFraction returns the fraction of scheduled buckets already moved —
// the f of eff-cap(B, A, f).
func (m *Migration) MovedFraction() float64 {
	if m.totalBuckets == 0 {
		return 1
	}
	return float64(m.movedBuckets.Load()) / float64(m.totalBuckets)
}

// FromNodes returns the node count before the move.
func (m *Migration) FromNodes() int { return m.fromNodes }

// ToNodes returns the target node count.
func (m *Migration) ToNodes() int { return m.toNodes }

// Done is closed when the migration finishes.
func (m *Migration) Done() <-chan struct{} { return m.done }

// Wait blocks until completion and returns the report.
func (m *Migration) Wait() (*Report, error) {
	<-m.done
	return m.report, m.err
}

// bucketMove is one bucket's relocation.
type bucketMove struct {
	bucket   int
	fromPart int
	toPart   int
}

// Run performs a synchronous reconfiguration to targetNodes. See Start.
func Run(c *cluster.Cluster, targetNodes int, opts Options) (*Report, error) {
	m, err := Start(c, targetNodes, opts)
	if err != nil {
		return nil, err
	}
	return m.Wait()
}

// Start launches a reconfiguration of the cluster to targetNodes and
// returns a handle for progress monitoring. Scale-out adds the new nodes
// immediately (empty) and fills them per the schedule; scale-in drains the
// retiring nodes and removes them at the end.
func Start(c *cluster.Cluster, targetNodes int, opts Options) (*Migration, error) {
	opts = opts.normalized()
	if targetNodes < 1 {
		return nil, fmt.Errorf("migration: target must be ≥ 1, got %d", targetNodes)
	}
	if !c.BeginReconfiguration() {
		return nil, ErrInProgress
	}
	from := c.NumNodes()
	m := newHandle(opts)
	m.fromNodes = from
	m.toNodes = targetNodes
	if targetNodes == from {
		c.EndReconfiguration()
		m.report = &Report{FromNodes: from, ToNodes: targetNodes, FailedBucket: -1}
		close(m.done)
		return m, nil
	}

	// Machine numbering for plan.Schedule: 1..s are the persistent
	// machines, s+1..l the appearing (scale-out) or retiring (scale-in)
	// ones.
	nodes := c.Nodes()
	// Failover promotion rehomes a partition onto its standby's node, which
	// can leave the layout jagged — a node owning more or fewer slots than
	// PartitionsPerNode. The slot-indexed schedule below assumes a
	// rectangular layout, so refuse up front, before AddNode provisions
	// anything durable: the old behavior was an index panic *after* the new
	// node hit the manifest, stranding a half-scaled cluster on disk.
	for _, n := range nodes {
		if got, want := len(n.Partitions), c.PartitionsPerNode(); got != want {
			c.EndReconfiguration()
			return nil, fmt.Errorf("migration: node %d owns %d partitions, want %d (layout skewed by failovers); reconfiguration requires a rectangular layout", n.ID, got, want)
		}
	}
	var machines []cluster.Node // index i ↔ schedule machine i+1
	var retired []int
	if targetNodes > from {
		machines = append(machines, nodes...)
		for i := 0; i < targetNodes-from; i++ {
			machines = append(machines, c.AddNode())
		}
	} else {
		machines = append(machines, nodes[:targetNodes]...)
		machines = append(machines, nodes[targetNodes:]...)
		for _, n := range nodes[targetNodes:] {
			retired = append(retired, n.ID)
		}
	}

	moves, err := planBucketMoves(c, machines, from, targetNodes)
	if err != nil {
		c.EndReconfiguration()
		return nil, err
	}
	m.totalBuckets = int64(countMoves(moves))
	m.moves = moves
	m.rounds = plan.Schedule(from, targetNodes)
	m.retired = retired

	go m.run(c)
	return m, nil
}

// run executes the stored plan and publishes the report. The caller must
// hold the cluster's reconfiguration lock; run releases it.
func (m *Migration) run(c *cluster.Cluster) {
	defer c.EndReconfiguration()
	start := time.Now() //pstore:ignore seeddiscipline — report observability only; Duration never feeds a migration decision
	err := m.execute(c, m.rounds, m.moves, m.opts)
	if err == nil {
		for _, id := range m.retired {
			if rerr := c.RemoveNode(id); rerr != nil {
				err = rerr
				break
			}
		}
	}
	rep := &Report{
		FromNodes:        m.fromNodes,
		ToNodes:          m.toNodes,
		Rounds:           len(m.rounds),
		BucketsMoved:     int(m.movedBuckets.Load()),
		BucketsRemaining: int(m.totalBuckets - m.movedBuckets.Load()),
		RowsMoved:        m.movedRows.Load(),
		Retries:          m.retries.Load(),
		Rollbacks:        m.rollbacks.Load(),
		Duration:         time.Since(start), //pstore:ignore seeddiscipline — report observability only
		FailedBucket:     -1,
	}
	var mf *moveFailure
	if errors.As(err, &mf) {
		rep.FailedBucket = mf.mv.bucket
		rep.FailedFrom = mf.mv.fromPart
		rep.FailedTo = mf.mv.toPart
	}
	m.report = rep
	m.err = err
	close(m.done)
}

// Resume retries a failed reconfiguration from its recorded per-bucket
// progress: buckets already moved are skipped, the rest re-run the same
// three-phase schedule, and retiring nodes are removed once everything has
// landed. It returns a fresh handle sharing the original's progress; the
// receiver must already have finished with an error.
func (m *Migration) Resume(c *cluster.Cluster) (*Migration, error) {
	select {
	case <-m.done:
	default:
		return nil, errors.New("migration: still running, nothing to resume")
	}
	if m.err == nil {
		return nil, errors.New("migration: completed cleanly, nothing to resume")
	}
	if !c.BeginReconfiguration() {
		return nil, ErrInProgress
	}
	m2 := newHandle(m.opts)
	m2.fromNodes = m.fromNodes
	m2.toNodes = m.toNodes
	m2.totalBuckets = m.totalBuckets
	m2.rounds = m.rounds
	m2.moves = m.moves
	m2.retired = m.retired
	m.movedMu.Lock()
	for b := range m.moved {
		m2.moved[b] = true
	}
	m.movedMu.Unlock()
	m2.movedBuckets.Store(m.movedBuckets.Load())
	m2.movedRows.Store(m.movedRows.Load())
	m2.retries.Store(m.retries.Load())
	m2.rollbacks.Store(m.rollbacks.Load())
	go m2.run(c)
	return m2, nil
}

// moveFailure wraps a bucket move's terminal error with the move itself so
// the report can name the failing pair.
type moveFailure struct {
	mv  bucketMove
	err error
}

func (f *moveFailure) Error() string {
	return fmt.Sprintf("migration: bucket %d (%d→%d): %v", f.mv.bucket, f.mv.fromPart, f.mv.toPart, f.err)
}

func (f *moveFailure) Unwrap() error { return f.err }

// planBucketMoves computes, per machine pair and partition slot, which
// buckets move where, balancing every slot's bucket pool evenly across the
// target machines. machines[i] is schedule machine i+1; from/to give the
// move direction.
func planBucketMoves(c *cluster.Cluster, machines []cluster.Node, from, to int) (map[[2]int][]bucketMove, error) {
	p := c.PartitionsPerNode()
	counts := c.BucketCounts()
	total := len(machines) // = max(from, to)
	final := to

	// Per-partition owned buckets, fetched once.
	ownedOf := func(pid int) ([]int, error) {
		exec, ok := c.ExecutorOf(pid)
		if !ok {
			return nil, fmt.Errorf("migration: no executor for partition %d", pid)
		}
		var buckets []int
		err := exec.Do(func(part *storage.Partition) (int, error) {
			buckets = part.OwnedBuckets()
			return 0, nil
		})
		return buckets, err
	}

	scaleOut := to > from
	persistent := from // machines 1..s persist
	if !scaleOut {
		persistent = to
	}

	moves := make(map[[2]int][]bucketMove)
	for slot := 0; slot < p; slot++ {
		// The slot's bucket pool and current per-machine counts.
		pool := 0
		cur := make([]int, total)
		for i, node := range machines {
			pid := node.Partitions[slot]
			cur[i] = counts[pid]
			pool += counts[pid]
		}
		// donated[i][j]: buckets machine i gives to machine j. Persistent
		// machines and appearing/retiring machines have fixed roles, so
		// every move lies on a schedule pair.
		donated := make([][]int, total)
		for i := range donated {
			donated[i] = make([]int, total)
		}
		given := make([]int, total) // total donated by giver i
		taken := make([]int, total) // total received by taker j

		if scaleOut {
			// New machines take an even share; old machines keep the
			// remainder (+1s land on old machines first so slightly less
			// data moves).
			base, rem := pool/final, pool%final
			for j := persistent; j < total; j++ {
				want := base
				if rem > persistent && j-persistent < rem-persistent {
					want++
				}
				for k := 0; k < want; k++ {
					// Take from the old machine with the most left.
					giver := -1
					for i := 0; i < persistent; i++ {
						if cur[i]-given[i] > 0 && (giver < 0 || cur[i]-given[i] > cur[giver]-given[giver]) {
							giver = i
						}
					}
					if giver < 0 {
						return nil, errors.New("migration: pool exhausted while balancing scale-out")
					}
					donated[giver][j]++
					given[giver]++
					taken[j]++
				}
			}
		} else {
			// Retiring machines give everything; each bucket lands on the
			// survivor with the least so far.
			for i := persistent; i < total; i++ {
				for k := 0; k < cur[i]; k++ {
					taker := 0
					for j := 1; j < persistent; j++ {
						if cur[j]+taken[j] < cur[taker]+taken[taker] {
							taker = j
						}
					}
					donated[i][taker]++
					given[i]++
					taken[taker]++
				}
			}
		}

		// Materialize donation counts into concrete buckets, taken
		// deterministically from the tail of each giver's owned list.
		for i := 0; i < total; i++ {
			if given[i] == 0 {
				continue
			}
			owned, err := ownedOf(machines[i].Partitions[slot])
			if err != nil {
				return nil, err
			}
			if len(owned) < given[i] {
				return nil, fmt.Errorf("migration: machine %d slot %d owns %d buckets, needs to give %d",
					i+1, slot, len(owned), given[i])
			}
			pos := len(owned) - given[i]
			for j := 0; j < total; j++ {
				for k := 0; k < donated[i][j]; k++ {
					pair := [2]int{i + 1, j + 1} // schedule machine IDs
					moves[pair] = append(moves[pair], bucketMove{
						bucket:   owned[pos],
						fromPart: machines[i].Partitions[slot],
						toPart:   machines[j].Partitions[slot],
					})
					pos++
				}
			}
		}
	}
	return moves, nil
}

func countMoves(moves map[[2]int][]bucketMove) int {
	n := 0
	for _, ms := range moves {
		n += len(ms)
	}
	return n
}

// execute runs the schedule: rounds in sequence, transfers within a round
// in parallel, and each machine-level transfer's per-slot bucket lists
// moving concurrently (one partition pair per slot), chunk by chunk.
func (m *Migration) execute(c *cluster.Cluster, rounds []plan.Round, moves map[[2]int][]bucketMove, opts Options) error {
	var firstErr error
	var errMu sync.Mutex
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		// Wake every other transfer pair out of pacing/backoff sleeps: the
		// run is over, lingering in time.Sleep just delays the report.
		m.abort()
	}
	for _, round := range rounds {
		var wg sync.WaitGroup
		for _, tr := range round {
			pair := [2]int{tr.From, tr.To}
			list := moves[pair]
			if len(list) == 0 {
				continue
			}
			// Group this machine pair's moves by partition pair (slot).
			bySlot := make(map[[2]int][]bucketMove)
			for _, mv := range list {
				k := [2]int{mv.fromPart, mv.toPart}
				bySlot[k] = append(bySlot[k], mv)
			}
			for _, slotMoves := range bySlot {
				wg.Add(1)
				go func(slotMoves []bucketMove) {
					defer wg.Done()
					if err := m.movePaced(c, slotMoves, opts); err != nil {
						setErr(err)
					}
				}(slotMoves)
			}
		}
		wg.Wait()
		errMu.Lock()
		err := firstErr
		errMu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// movePaced relocates the buckets chunk by chunk with pacing. Pacing sleeps
// abort early when another transfer pair has already failed the run.
func (m *Migration) movePaced(c *cluster.Cluster, list []bucketMove, opts Options) error {
	for i := 0; i < len(list); i += opts.BucketsPerChunk {
		end := i + opts.BucketsPerChunk
		if end > len(list) {
			end = len(list)
		}
		for _, mv := range list[i:end] {
			if err := m.moveBucket(c, mv, opts); err != nil {
				return err
			}
		}
		if end < len(list) && opts.ChunkInterval > 0 {
			if !m.sleep(opts.ChunkInterval) {
				return nil // run already failed elsewhere; its error wins
			}
		}
	}
	return nil
}

// errRollbackFailed marks a move whose rollback also failed: the bucket's
// location is ambiguous, so retrying the move could double-apply. The retry
// loop treats it as terminal.
var errRollbackFailed = errors.New("migration: rollback failed")

// moveBucket relocates one bucket, retrying transient failures with
// jittered exponential backoff. Each attempt either completes the move or
// rolls the bucket back to its source, so attempts are idempotent and a
// resumed migration can safely re-run any move that has not been recorded
// as done.
func (m *Migration) moveBucket(c *cluster.Cluster, mv bucketMove, opts Options) error {
	if m.isMoved(mv.bucket) {
		return nil // resumed run: this bucket already landed
	}
	move := m.moveBucketPreCopy
	if opts.StopAndCopy {
		move = m.moveBucketOnce
	}
	var lastErr error
	for attempt := 0; attempt <= opts.MoveRetries; attempt++ {
		if attempt > 0 {
			m.retries.Add(1)
			c.Events().Add(metrics.EventMoveRetries, 1)
			if !m.sleep(backoff(m.rng, opts.MoveBackoff, attempt-1)) {
				break // run already failed elsewhere; stop retrying
			}
		}
		err := move(c, mv)
		if err == nil {
			return nil
		}
		lastErr = err
		if errors.Is(err, errRollbackFailed) {
			break // location ambiguous; retrying risks double-apply
		}
	}
	return &moveFailure{mv: mv, err: lastErr}
}

// backoff returns the exponential delay for the given retry (0-based) with
// ±50% jitter, so concurrent transfer pairs retrying against the same
// stalled node do not retry in lockstep. Jitter comes from the migration's
// seeded source, keeping pinned chaos runs reproducible.
func backoff(rng *lockedRand, base time.Duration, retry int) time.Duration {
	if retry > 16 {
		retry = 16
	}
	d := base << uint(retry)
	half := int64(d) / 2
	if half <= 0 {
		return d
	}
	return time.Duration(half + rng.Int63n(2*half))
}

// moveBucketOnce is one attempt of the legacy stop-and-copy move, kept
// behind Options.StopAndCopy for ablation and benchmarking: extract at the
// source, repoint routing, apply at the destination. Both executor visits
// move the bucket's arena pages by reference (O(tables) pointer moves, plus
// a schema re-encode at the destination only when field IDs differ), but
// unlike moveBucketPreCopy the bucket is unavailable from extract to apply
// — the stall spans the whole handoff instead of the residual delta.
// Transactions for the bucket arriving in between
// retry until the apply lands (a window bounded by cluster.Config
// RetryAttempts/RetryBudget and counted in Events as migration retries).
// On an apply failure the bucket is rolled back — routing repointed at the
// source and the extracted data re-applied there — so the attempt leaves
// the cluster exactly as it found it.
//
// With durability on, the handoff is logged receiver-first: the bucket's
// full contents go into the receiver's command log (so its log alone can
// rebuild the bucket — it "starts consistent") before the sender logs the
// bucket out. A crash between the two leaves both partitions claiming the
// bucket; cluster recovery resolves that in the receiver's favor, so the
// handoff never loses data.
func (m *Migration) moveBucketOnce(c *cluster.Cluster, mv bucketMove) error {
	srcExec, ok := c.ExecutorOf(mv.fromPart)
	if !ok {
		return fmt.Errorf("migration: no executor for source partition %d", mv.fromPart)
	}
	dstExec, ok := c.ExecutorOf(mv.toPart)
	if !ok {
		return fmt.Errorf("migration: no executor for destination partition %d", mv.toPart)
	}
	if hook := m.opts.FaultHook; hook != nil {
		if err := hook(mv.bucket, mv.fromPart, mv.toPart); err != nil {
			return fmt.Errorf("before extracting bucket %d: %w", mv.bucket, err)
		}
	}
	var pages *storage.BucketPages
	err := srcExec.Do(func(p *storage.Partition) (int, error) {
		var err error
		pages, err = p.ExtractBucketPages(mv.bucket)
		if err != nil {
			return 0, err
		}
		return pages.RowCount(), nil
	})
	if err != nil {
		return fmt.Errorf("migration: extracting bucket %d from partition %d: %w", mv.bucket, mv.fromPart, err)
	}
	c.SetOwner(mv.bucket, mv.toPart)
	dstMgr := c.HandoffOf(mv.toPart)
	if hook := m.opts.FaultHook; hook != nil {
		// Second injection site: the bucket is extracted and routing points
		// at the destination — a failure here must roll back.
		err = hook(mv.bucket, mv.fromPart, mv.toPart)
	}
	if err == nil {
		err = dstExec.Do(func(p *storage.Partition) (int, error) {
			if dstMgr != nil {
				// Durable before visible: once transactions run against the
				// bucket here, its arrival is already on the receiver's disk.
				// Only this durable record pays the O(rows) materialization —
				// the in-memory handoff below moves pages by reference.
				if err := dstMgr.LogBucketIn(pages.Data()); err != nil {
					return 0, err
				}
			}
			if err := p.ApplyBucketPages(pages); err != nil {
				return 0, err
			}
			return pages.RowCount(), nil
		})
	}
	if err != nil {
		applyErr := fmt.Errorf("migration: applying bucket %d to partition %d: %w", mv.bucket, mv.toPart, err)
		if rbErr := m.rollback(c, srcExec, mv, pages); rbErr != nil {
			return fmt.Errorf("%w after %v: %w", errRollbackFailed, applyErr, rbErr)
		}
		return applyErr
	}
	// The bucket now lives at the destination: record progress before the
	// sender-side handoff log, so a failure below is reported but never
	// re-moves the bucket (recovery resolves dual claims in the receiver's
	// favor, matching this choice).
	m.markMoved(mv.bucket)
	m.movedBuckets.Add(1)
	m.movedRows.Add(int64(pages.RowCount()))
	if srcMgr := c.HandoffOf(mv.fromPart); srcMgr != nil {
		if err := srcMgr.LogBucketOut(mv.bucket); err != nil {
			return fmt.Errorf("%w: logging bucket %d out of partition %d: %w",
				errRollbackFailed, mv.bucket, mv.fromPart, err)
		}
	}
	return nil
}

// rollback returns an extracted bucket to its source partition and repoints
// routing back, undoing a half-completed move attempt. The pages go home by
// reference — and verbatim, since they are still encoded against the
// source's own schemas.
func (m *Migration) rollback(c *cluster.Cluster, srcExec *engine.Executor, mv bucketMove, pages *storage.BucketPages) error {
	c.SetOwner(mv.bucket, mv.fromPart)
	err := srcExec.Do(func(p *storage.Partition) (int, error) {
		if err := p.ApplyBucketPages(pages); err != nil {
			return 0, err
		}
		return pages.RowCount(), nil
	})
	if err != nil {
		return fmt.Errorf("restoring bucket %d to partition %d: %w", mv.bucket, mv.fromPart, err)
	}
	m.rollbacks.Add(1)
	c.Events().Add(metrics.EventMoveRollbacks, 1)
	return nil
}
