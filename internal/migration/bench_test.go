package migration

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/storage"
)

// BenchmarkMigrationStall measures what a foreground transaction experiences
// while its bucket is being moved: a hammer goroutine issues Gets against a
// hot key in the moving bucket and records end-to-end wall latency (queueing
// and routing retries included) while the bucket ping-pongs between two
// partitions on the same node. The p99 of those samples is the per-move
// stall the pre-copy protocol exists to shrink — O(bucket) for the legacy
// stop-and-copy path, O(residual delta) plus one copy slice of queueing for
// pre-copy. MigrationRowCost makes row transfer time physical, so the two
// paths are compared on identical work.
//
// Reported metrics:
//
//	p99stall_ns — 99th percentile foreground Get latency during moves
//	move_ns     — mean end-to-end time of one bucket move
func BenchmarkMigrationStall(b *testing.B) {
	b.Run("stopandcopy", func(b *testing.B) { runMigrationStallBench(b, true) })
	b.Run("precopy", func(b *testing.B) { runMigrationStallBench(b, false) })
}

func runMigrationStallBench(b *testing.B, stopAndCopy bool) {
	// Sized so synthetic work dwarfs the host's timer granularity: the hot
	// bucket costs 30ms to extract or apply wholesale (hotRows ×
	// MigrationRowCost), while a pre-copy slice bounds any single executor
	// visit to 6ms.
	const (
		nBuckets  = 8
		hotRows   = 30000
		sliceRows = 6000
	)
	c, err := cluster.New(cluster.Config{
		InitialNodes:      1,
		PartitionsPerNode: 2,
		NBuckets:          nBuckets,
		Tables:            []string{"T"},
		Registry:          testRegistry(),
		Engine: engine.Config{
			ServiceTime:      2 * time.Microsecond,
			MigrationRowCost: time.Microsecond,
		},
		RetryInterval: 50 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()

	// Pick a bucket partition 0 owns and fill it with hotRows rows.
	exec0, _ := c.ExecutorOf(0)
	var bucket int
	if err := exec0.Do(func(p *storage.Partition) (int, error) {
		bucket = p.OwnedBuckets()[0]
		return 0, nil
	}); err != nil {
		b.Fatal(err)
	}
	hotKey := ""
	for i, n := 0, 0; n < hotRows; i++ {
		k := fmt.Sprintf("hot-%d", i)
		if storage.BucketOf(k, nBuckets) != bucket {
			continue
		}
		if err := c.LoadRow("T", k, map[string]string{"v": k}); err != nil {
			b.Fatal(err)
		}
		if hotKey == "" {
			hotKey = k
		}
		n++
	}

	// Foreground hammer: sequential Gets on the hot key, wall-clock timed.
	stop := make(chan struct{})
	var lats []time.Duration
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			res := c.Call(&engine.Txn{Proc: "Get", Key: hotKey})
			if res.Err == nil {
				lats = append(lats, time.Since(t0))
			}
		}
	}()

	opts := Options{StopAndCopy: stopAndCopy, CopySliceRows: sliceRows, MoveRetries: -1, Seed: 1}.normalized()
	m := newHandle(opts)
	b.ResetTimer()
	moveStart := time.Now()
	for i := 0; i < b.N; i++ {
		from, to := 0, 1
		if i%2 == 1 {
			from, to = 1, 0
		}
		if err := m.moveBucket(c, bucketMove{bucket: bucket, fromPart: from, toPart: to}, opts); err != nil {
			b.Fatal(err)
		}
		m.movedMu.Lock()
		delete(m.moved, bucket) // let the next iteration move it back
		m.movedMu.Unlock()
	}
	moveDur := time.Since(moveStart)
	b.StopTimer()
	close(stop)
	wg.Wait()

	if len(lats) == 0 {
		b.Fatal("hammer recorded no samples")
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	b.ReportMetric(float64(p99.Nanoseconds()), "p99stall_ns")
	b.ReportMetric(float64(moveDur.Nanoseconds())/float64(b.N), "move_ns")
}
