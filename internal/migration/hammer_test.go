package migration

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/metrics"
)

// TestHammerWritesDuringMove is the pre-copy protocol's correctness gauntlet:
// writer goroutines hammer Put/Delete continuously while the cluster scales
// out and back in, so captured deltas land on every phase — during the
// snapshot stream, between drain rounds, and inside the flip window. Each
// writer owns a disjoint key range and journals its last committed op, so
// the expected final state is exact. Afterwards every key must read back its
// last write (exactly once — no lost delta, no double-applied delta changes
// a last-writer-wins value, but a lost one does), and the cluster's
// content checksum must equal a single-partition oracle loaded with the
// journaled state.
func TestHammerWritesDuringMove(t *testing.T) {
	c := newTestCluster(t, 2, 2, 64)
	const writers, keysPer = 4, 120

	type journal struct {
		vals map[string]string // key → last Put value; absent → deleted or never written
	}
	journals := make([]journal, writers)
	stop := make(chan struct{})
	var writeFailures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		journals[g] = journal{vals: make(map[string]string)}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			j := journals[g]
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("h%d-%d", g, seq%keysPer)
				if seq%7 == 3 {
					res := c.Call(&engine.Txn{Proc: "Delete", Key: key})
					if res.Err != nil {
						writeFailures.Add(1)
						continue
					}
					delete(j.vals, key)
				} else {
					val := fmt.Sprintf("g%d-s%d", g, seq)
					res := c.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": val}})
					if res.Err != nil {
						writeFailures.Add(1)
						continue
					}
					j.vals[key] = val
				}
			}
		}(g)
	}

	// Scale out and back while the writers run: every bucket moves at least
	// once, most twice.
	if _, err := Run(c, 4, fastOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, 2, fastOpts()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if n := writeFailures.Load(); n != 0 {
		t.Errorf("%d writes failed during live moves", n)
	}
	// The default path must actually have pre-copied: rows streamed off the
	// critical path, flip stalls measured.
	if c.Events().Get(metrics.EventPreCopyRows) == 0 {
		t.Error("no rows went through the pre-copy stream")
	}
	if c.MoveStalls().Count() == 0 {
		t.Error("no move stalls recorded")
	}

	// Exactly-once: every journaled key reads back its last committed write;
	// deleted keys stay gone.
	expected := make(map[string]string)
	for g := 0; g < writers; g++ {
		for k, v := range journals[g].vals {
			expected[k] = v
		}
		for i := 0; i < keysPer; i++ {
			key := fmt.Sprintf("h%d-%d", g, i)
			res := c.Call(&engine.Txn{Proc: "Get", Key: key})
			want, live := journals[g].vals[key]
			switch {
			case live && res.Err != nil:
				t.Fatalf("key %s: %v, want %q", key, res.Err, want)
			case live && res.Out["v"] != want:
				t.Fatalf("key %s = %q, want %q", key, res.Out["v"], want)
			case !live && !engine.IsAbort(res.Err):
				t.Fatalf("key %s should be absent, got err=%v out=%v", key, res.Err, res.Out)
			}
		}
	}

	// Checksum the whole cluster against a single-partition oracle holding
	// exactly the journaled state — catches stray rows the per-key reads
	// cannot see (e.g. a resurrected delete on a third key).
	oracle, err := cluster.New(cluster.Config{
		InitialNodes:      1,
		PartitionsPerNode: 1,
		NBuckets:          64,
		Tables:            []string{"T"},
		Registry:          testRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Stop()
	for k, v := range expected {
		if err := oracle.LoadRow("T", k, map[string]string{"v": v}); err != nil {
			t.Fatal(err)
		}
	}
	sum, rows, err := c.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	wantSum, wantRows, err := oracle.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	if rows != wantRows || sum != wantSum {
		t.Errorf("cluster holds %d rows (sum %x), oracle %d rows (sum %x)", rows, sum, wantRows, wantSum)
	}
}

// TestHammerFaultMidDrainRollbackAndResume is the chaos-interop case the
// pre-copy protocol adds: a fault at the mid-drain injection site (the
// second hook call per bucket — capture live, snapshot staged) must abort
// the capture, discard the staging, and leave the bucket fully live at the
// source; once the outage lifts, Resume finishes without re-moving landed
// buckets and without losing a row.
func TestHammerFaultMidDrainRollbackAndResume(t *testing.T) {
	c := newTestCluster(t, 1, 2, 32)
	loadKeys(t, c, 200)
	sumBefore, rowsBefore, err := c.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}

	var outage atomic.Bool
	outage.Store(true)
	var mu sync.Mutex
	perBucket := make(map[int]int)
	victim := -1
	opts := fastOpts()
	opts.MoveRetries = 1
	opts.MoveBackoff = time.Millisecond
	opts.Seed = 7
	opts.FaultHook = func(bucket, from, to int) error {
		mu.Lock()
		defer mu.Unlock()
		if !outage.Load() {
			return nil
		}
		if victim == -1 {
			victim = bucket
		}
		perBucket[bucket]++
		// A failed attempt makes exactly two hook calls (pre-capture, then
		// mid-drain), so every even call lands on the mid-drain site — on
		// the first attempt and on every retry.
		if bucket == victim && perBucket[bucket]%2 == 0 {
			return errors.New("destination stalled mid-drain")
		}
		return nil
	}

	m, err := Start(c, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Wait()
	if err == nil {
		t.Fatal("migration should fail while the mid-drain fault persists")
	}
	if rep.Rollbacks == 0 {
		t.Error("mid-drain faults should count as rollbacks")
	}
	if got := c.Events().Get(metrics.EventMoveRollbacks); got == 0 {
		t.Error("move_rollbacks event counter not incremented")
	}
	// The aborted bucket never left the source: all data still readable and
	// byte-identical.
	sumMid, rowsMid, err := c.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	if sumMid != sumBefore || rowsMid != rowsBefore {
		t.Errorf("aborted pre-copy changed content: %x/%d → %x/%d", sumBefore, rowsBefore, sumMid, rowsMid)
	}
	verifyKeys(t, c, 200)
	if c.MigratingCount() != 0 {
		t.Errorf("MigratingCount = %d after failed run, want 0", c.MigratingCount())
	}

	outage.Store(false)
	m2, err := m.Resume(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Wait(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	sumAfter, rowsAfter, err := c.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	if sumAfter != sumBefore || rowsAfter != rowsBefore {
		t.Errorf("rows lost or duplicated: %x/%d → %x/%d", sumBefore, rowsBefore, sumAfter, rowsAfter)
	}
	verifyKeys(t, c, 200)
	verifyBalanced(t, c)
}

// TestRunCancelsSleepingPairsOnFailure pins the cancellable-sleep contract:
// when one transfer pair fails terminally, pairs sleeping out their
// ChunkInterval pacing must wake immediately instead of serving the full
// sleep. With a 5s interval and ~16 buckets per pair, a non-cancellable
// sleep would hold Run for over a minute; cancellation ends it in
// milliseconds.
func TestRunCancelsSleepingPairsOnFailure(t *testing.T) {
	c := newTestCluster(t, 2, 1, 64)
	loadKeys(t, c, 200)
	opts := Options{
		BucketsPerChunk: 1,
		ChunkInterval:   5 * time.Second,
		MoveRetries:     -1, // no retries: first failure is terminal
		FaultHook: func(bucket, from, to int) error {
			if from == 1 {
				return errors.New("partition 1 unreachable")
			}
			return nil
		},
	}
	start := time.Now()
	_, err := Run(c, 4, opts)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run should fail")
	}
	if elapsed >= 2*time.Second {
		t.Errorf("failed run took %v; sleeping pairs were not canceled", elapsed)
	}
	// The healthy pair's aborted chunk leaves all data intact and readable.
	verifyKeys(t, c, 200)
}

// TestSeededBackoffDeterministic pins the satellite contract that a pinned
// Options.Seed makes retry-backoff jitter reproducible (PSTORE_CHAOS_SEED
// chaos runs replay byte-identically), while distinct seeds diverge.
func TestSeededBackoffDeterministic(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		rng := newLockedRand(seed)
		out := make([]time.Duration, 12)
		for i := range out {
			out[i] = backoff(rng, time.Millisecond, i%6)
		}
		return out
	}
	a, b, other := seq(42), seq(42), seq(43)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter sequences")
	}
	for i, d := range a {
		base := time.Millisecond << uint(i%6)
		if d < base/2 || d > base+base/2 {
			t.Errorf("backoff[%d] = %v outside ±50%% of %v", i, d, base)
		}
	}
}
