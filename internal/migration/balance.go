package migration

import (
	"fmt"
	"sort"

	"pstore/internal/cluster"
	"pstore/internal/storage"
)

// Balance evens out bucket ownership across the cluster's current
// partitions without changing the node count. Reconfigurations already
// leave the cluster balanced, so this is an administrative repair tool —
// e.g. after restoring a cluster whose ownership drifted, or as the
// starting point for the skew-management direction the paper's conclusion
// sketches (combining P-Store with E-Store-style placement). Moves are
// paced like a regular migration. It returns the number of buckets moved.
func Balance(c *cluster.Cluster, opts Options) (int, error) {
	opts = opts.normalized()
	if !c.BeginReconfiguration() {
		return 0, ErrInProgress
	}
	defer c.EndReconfiguration()

	counts := c.BucketCounts()
	type part struct {
		id    int
		count int
	}
	var parts []part
	total := 0
	for _, node := range c.Nodes() {
		for _, pid := range node.Partitions {
			parts = append(parts, part{id: pid, count: counts[pid]})
			total += counts[pid]
		}
	}
	if len(parts) == 0 {
		return 0, fmt.Errorf("migration: no partitions to balance")
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].id < parts[j].id })
	base, rem := total/len(parts), total%len(parts)
	target := make(map[int]int, len(parts))
	for i, p := range parts {
		target[p.id] = base
		if i < rem {
			target[p.id]++
		}
	}

	// Collect surplus buckets from over-target partitions...
	var surplus []bucketMove // fromPart filled; toPart decided below
	for _, p := range parts {
		excess := p.count - target[p.id]
		if excess <= 0 {
			continue
		}
		exec, ok := c.ExecutorOf(p.id)
		if !ok {
			return 0, fmt.Errorf("migration: no executor for partition %d", p.id)
		}
		var owned []int
		if err := exec.Do(func(sp *storage.Partition) (int, error) {
			owned = sp.OwnedBuckets()
			return 0, nil
		}); err != nil {
			return 0, err
		}
		for _, b := range owned[len(owned)-excess:] {
			surplus = append(surplus, bucketMove{bucket: b, fromPart: p.id})
		}
	}
	// ...and deal them to under-target partitions.
	i := 0
	var moves []bucketMove
	for _, p := range parts {
		for deficit := target[p.id] - p.count; deficit > 0; deficit-- {
			if i >= len(surplus) {
				return 0, fmt.Errorf("migration: balance bookkeeping mismatch")
			}
			mv := surplus[i]
			i++
			mv.toPart = p.id
			moves = append(moves, mv)
		}
	}

	m := newHandle(opts)
	if err := m.movePaced(c, moves, opts); err != nil {
		return int(m.movedBuckets.Load()), err
	}
	return int(m.movedBuckets.Load()), nil
}
