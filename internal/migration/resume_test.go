package migration

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pstore/internal/metrics"
)

// transientHook fails a bucket move's pre-extract check the first failN
// times it is consulted for any bucket, then passes forever — a node that
// stalls briefly and recovers.
type transientHook struct {
	mu    sync.Mutex
	calls int
	failN int
}

func (h *transientHook) hook(bucket, from, to int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.calls++
	if h.calls <= h.failN {
		return fmt.Errorf("transient fault %d", h.calls)
	}
	return nil
}

func TestMoveRetriesTransientFaults(t *testing.T) {
	c := newTestCluster(t, 1, 2, 32)
	loadKeys(t, c, 200)
	sumBefore, rowsBefore, err := c.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	h := &transientHook{failN: 4}
	opts := fastOpts()
	opts.MoveRetries = 3
	opts.MoveBackoff = time.Millisecond
	opts.FaultHook = h.hook
	rep, err := Run(c, 2, opts)
	if err != nil {
		t.Fatalf("migration should survive transient faults: %v", err)
	}
	if rep.Retries == 0 {
		t.Error("report shows zero retries despite injected faults")
	}
	if rep.BucketsRemaining != 0 {
		t.Errorf("BucketsRemaining = %d, want 0", rep.BucketsRemaining)
	}
	if rep.FailedBucket != -1 {
		t.Errorf("FailedBucket = %d on a successful run, want -1", rep.FailedBucket)
	}
	if got := c.Events().Get(metrics.EventMoveRetries); got == 0 {
		t.Error("move_retries event counter not incremented")
	}
	sumAfter, rowsAfter, err := c.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	if sumAfter != sumBefore || rowsAfter != rowsBefore {
		t.Errorf("checksum changed: %x/%d rows → %x/%d rows", sumBefore, rowsBefore, sumAfter, rowsAfter)
	}
	verifyKeys(t, c, 200)
	verifyBalanced(t, c)
}

func TestRollbackOnPostExtractFault(t *testing.T) {
	c := newTestCluster(t, 1, 2, 32)
	loadKeys(t, c, 200)
	// Fail exactly one post-extract check. Per bucket, hook calls alternate
	// pre-extract (1st) / post-extract (2nd) within an attempt, so failing
	// a bucket's second call hits the rollback path with the bucket
	// already extracted and routing repointed — regardless of how many
	// transfer pairs run concurrently.
	var mu sync.Mutex
	perBucket := make(map[int]int)
	victim := -1
	opts := fastOpts()
	opts.MoveRetries = 3
	opts.MoveBackoff = time.Millisecond
	opts.FaultHook = func(bucket, from, to int) error {
		mu.Lock()
		defer mu.Unlock()
		if victim == -1 {
			victim = bucket
		}
		perBucket[bucket]++
		if bucket == victim && perBucket[bucket] == 2 {
			return errors.New("fault after extract")
		}
		return nil
	}
	rep, err := Run(c, 2, opts)
	if err != nil {
		t.Fatalf("migration should retry through the rollback: %v", err)
	}
	if rep.Rollbacks == 0 {
		t.Error("report shows zero rollbacks despite a post-extract fault")
	}
	if got := c.Events().Get(metrics.EventMoveRollbacks); got == 0 {
		t.Error("move_rollbacks event counter not incremented")
	}
	verifyKeys(t, c, 200)
	verifyBalanced(t, c)
}

func TestFailedMigrationReportsAndResumes(t *testing.T) {
	c := newTestCluster(t, 1, 2, 32)
	loadKeys(t, c, 200)
	sumBefore, rowsBefore, err := c.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	// Persistently fail every move of one chosen bucket until the outage
	// flag clears — a destination that stays down past the retry budget.
	var outage atomic.Bool
	outage.Store(true)
	var victim atomic.Int64
	victim.Store(-1)
	opts := fastOpts()
	opts.MoveRetries = 1
	opts.MoveBackoff = time.Millisecond
	opts.FaultHook = func(bucket, from, to int) error {
		if !outage.Load() {
			return nil
		}
		victim.CompareAndSwap(-1, int64(bucket))
		if int64(bucket) == victim.Load() {
			return errors.New("destination down")
		}
		return nil
	}
	m, err := Start(c, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Wait()
	if err == nil {
		t.Fatal("migration should fail while the outage lasts")
	}
	if rep.FailedBucket != int(victim.Load()) {
		t.Errorf("FailedBucket = %d, want %d", rep.FailedBucket, victim.Load())
	}
	if rep.FailedFrom == rep.FailedTo {
		t.Errorf("failing pair = %d→%d, want distinct partitions", rep.FailedFrom, rep.FailedTo)
	}
	if rep.BucketsRemaining == 0 {
		t.Error("failed run reports zero remaining buckets")
	}
	if rep.BucketsMoved+rep.BucketsRemaining != int(m.totalBuckets) {
		t.Errorf("moved %d + remaining %d != total %d", rep.BucketsMoved, rep.BucketsRemaining, m.totalBuckets)
	}
	// Every key stays readable mid-failure: unmoved buckets at the source,
	// moved ones at the destination, the failed one rolled back.
	verifyKeys(t, c, 200)

	// Outage ends; resume finishes the job without re-moving landed buckets.
	outage.Store(false)
	m2, err := m.Resume(c)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := m2.Wait()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rep2.BucketsRemaining != 0 {
		t.Errorf("resume left %d buckets", rep2.BucketsRemaining)
	}
	if rep2.BucketsMoved != int(m.totalBuckets) {
		t.Errorf("cumulative moved = %d, want %d", rep2.BucketsMoved, m.totalBuckets)
	}
	if c.NumNodes() != 2 {
		t.Errorf("nodes = %d, want 2", c.NumNodes())
	}
	sumAfter, rowsAfter, err := c.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	if sumAfter != sumBefore || rowsAfter != rowsBefore {
		t.Errorf("rows lost or duplicated: %x/%d → %x/%d", sumBefore, rowsBefore, sumAfter, rowsAfter)
	}
	verifyKeys(t, c, 200)
	verifyBalanced(t, c)

	// A clean migration has nothing to resume.
	if _, err := m2.Resume(c); err == nil {
		t.Error("Resume after success should fail")
	}
}

func TestResumeScaleInRemovesRetiredNodes(t *testing.T) {
	c := newTestCluster(t, 3, 1, 30)
	loadKeys(t, c, 150)
	var outage atomic.Bool
	outage.Store(true)
	var faults atomic.Int64
	opts := fastOpts()
	opts.MoveRetries = 1
	opts.MoveBackoff = time.Millisecond
	opts.FaultHook = func(bucket, from, to int) error {
		if outage.Load() && faults.Add(1) > 6 {
			return errors.New("sender stalling")
		}
		return nil
	}
	m, err := Start(c, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(); err == nil {
		t.Fatal("scale-in should fail during the outage")
	}
	if c.NumNodes() != 3 {
		t.Errorf("retired node removed before its buckets drained: nodes = %d", c.NumNodes())
	}
	outage.Store(false)
	m2, err := m.Resume(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Wait(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if c.NumNodes() != 2 {
		t.Errorf("nodes = %d after resumed scale-in, want 2", c.NumNodes())
	}
	verifyKeys(t, c, 150)
	verifyBalanced(t, c)
}

func TestResumeWhileRunningRejected(t *testing.T) {
	c := newTestCluster(t, 1, 1, 16)
	loadKeys(t, c, 50)
	opts := Options{BucketsPerChunk: 1, ChunkInterval: 5 * time.Millisecond}
	m, err := Start(c, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resume(c); err == nil {
		t.Error("Resume on a running migration should fail")
	}
	if _, err := m.Wait(); err != nil {
		t.Fatal(err)
	}
}
