// Package faultinject provides a seeded, deterministic fault injector for
// chaos-testing P-Store: a net.Conn/net.Listener wrapper that drops, delays,
// duplicates, or severs writes on a reproducible schedule, an executor
// freezer that stalls a partition's engine the way an overloaded or paging
// node would, and a migration fault hook that makes individual bucket moves
// fail transiently. The same injector drives unit tests, the end-to-end
// chaos suite, and `pstore-server -chaos`.
//
// Faults are decided per write from one seeded PRNG, so a failing run is
// replayed exactly by reusing its seed. Writes are dropped or duplicated
// whole: the wire protocol batches complete frames per write, so a dropped
// write loses messages but never tears the framing — the surviving stream
// stays decodable, which models packet loss on a message-oriented transport
// rather than byte corruption (the codec's torn-frame tests cover that).
package faultinject

//pstore:seeded — fault schedules replay from PSTORE_CHAOS_SEED; every
// draw must come from the injector's seeded rng.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/engine"
	"pstore/internal/storage"
)

// ErrInjected marks a transient fault introduced by the injector. Code under
// test treats it like any other transient error; tests use errors.Is to
// verify a failure was injected rather than organic.
var ErrInjected = errors.New("faultinject: injected transient fault")

// Options configures an Injector. All probabilities are per-event in [0, 1];
// zero disables that fault class.
type Options struct {
	// Seed fixes the PRNG so a run is reproducible. Seed 0 is a valid seed
	// (not "random"): the injector is always deterministic.
	Seed int64

	// DropProb is the chance a Write is silently discarded.
	DropProb float64
	// DelayProb is the chance a Write stalls for up to MaxDelay first.
	DelayProb float64
	// MaxDelay bounds injected write delays. Defaults to 2ms.
	MaxDelay time.Duration
	// DupProb is the chance a Write is sent twice. Only safe where the
	// receiver deduplicates (response frames are matched by request ID);
	// duplicating requests models an at-least-once client.
	DupProb float64
	// SeverProb is the chance a Write kills the whole connection instead.
	SeverProb float64

	// MoveFailProb is the chance a migration bucket move fails transiently
	// (wired into migration.Options.FaultHook).
	MoveFailProb float64

	// FreezeProb is the per-tick chance that one executor freezes for
	// FreezeFor, checked every FreezeEvery by the freeze loop.
	FreezeProb float64
	// FreezeFor is how long a frozen executor stays stalled. Defaults 20ms.
	FreezeFor time.Duration
	// FreezeEvery is the freeze loop's tick interval. Defaults 50ms.
	FreezeEvery time.Duration

	// PartitionProb is the per-tick chance the partition schedule cuts one
	// random directed link between two endpoints, checked every
	// PartitionEvery by PartitionLoop.
	PartitionProb float64
	// PartitionFor is how long a cut link stays blocked. Defaults 150ms.
	PartitionFor time.Duration
	// PartitionEvery is the partition loop's tick interval. Defaults 100ms.
	PartitionEvery time.Duration
}

func (o Options) normalized() Options {
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
	if o.FreezeFor <= 0 {
		o.FreezeFor = 20 * time.Millisecond
	}
	if o.FreezeEvery <= 0 {
		o.FreezeEvery = 50 * time.Millisecond
	}
	if o.PartitionFor <= 0 {
		o.PartitionFor = 150 * time.Millisecond
	}
	if o.PartitionEvery <= 0 {
		o.PartitionEvery = 100 * time.Millisecond
	}
	return o
}

// Counters is a snapshot of how many faults the injector has fired.
type Counters struct {
	Drops      int64
	Delays     int64
	Dups       int64
	Severs     int64
	MoveFaults int64
	Freezes    int64
	// Cuts/Heals count directed partition-matrix link transitions;
	// Blackholes counts writes swallowed by a blocked link.
	Cuts       int64
	Heals      int64
	Blackholes int64
}

// Injector decides and accounts faults. Safe for concurrent use; every
// random decision draws from one seeded PRNG under a mutex, so the fault
// schedule is a deterministic function of (seed, decision order).
type Injector struct {
	opts Options

	mu     sync.Mutex
	rng    *rand.Rand
	matrix *Matrix // lazily created by Matrix()

	drops      atomic.Int64
	delays     atomic.Int64
	dups       atomic.Int64
	severs     atomic.Int64
	moveFaults atomic.Int64
	freezes    atomic.Int64
}

// New returns an injector with the given options.
func New(opts Options) *Injector {
	opts = opts.normalized()
	return &Injector{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Counters returns a snapshot of the fault counts so far, including the
// partition matrix's if one was created.
func (in *Injector) Counters() Counters {
	c := Counters{
		Drops:      in.drops.Load(),
		Delays:     in.delays.Load(),
		Dups:       in.dups.Load(),
		Severs:     in.severs.Load(),
		MoveFaults: in.moveFaults.Load(),
		Freezes:    in.freezes.Load(),
	}
	in.mu.Lock()
	m := in.matrix
	in.mu.Unlock()
	if m != nil {
		mc := m.Counters()
		c.Cuts, c.Heals, c.Blackholes = mc.Cuts, mc.Heals, mc.Blackholes
	}
	return c
}

// roll draws one uniform [0,1) variate.
func (in *Injector) roll() float64 {
	in.mu.Lock()
	v := in.rng.Float64()
	in.mu.Unlock()
	return v
}

// rollDelay draws a delay in (0, MaxDelay].
func (in *Injector) rollDelay() time.Duration {
	in.mu.Lock()
	d := time.Duration(in.rng.Int63n(int64(in.opts.MaxDelay))) + 1
	in.mu.Unlock()
	return d
}

// MoveFault implements migration.Options.FaultHook: it fails a bucket move
// transiently with probability MoveFailProb.
func (in *Injector) MoveFault(bucket, fromPart, toPart int) error {
	if in.opts.MoveFailProb > 0 && in.roll() < in.opts.MoveFailProb {
		in.moveFaults.Add(1)
		return fmt.Errorf("%w: move of bucket %d (%d→%d)", ErrInjected, bucket, fromPart, toPart)
	}
	return nil
}

// WrapConn returns conn with write-side fault injection. Wrapping one side
// of a connection injects faults in that side's outbound direction; wrap
// both (or use WrapListener on the server and WrapConn on the client) for
// bidirectional chaos.
func (in *Injector) WrapConn(conn net.Conn) net.Conn {
	return &faultConn{Conn: conn, in: in}
}

// WrapListener returns lis with every accepted connection wrapped.
func (in *Injector) WrapListener(lis net.Listener) net.Listener {
	return &faultListener{Listener: lis, in: in}
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(conn), nil
}

// faultConn injects faults on Write. Reads pass through untouched: the
// peer's writes (possibly themselves wrapped) are the only data source, so
// write-side injection alone covers every direction that is wrapped.
type faultConn struct {
	net.Conn
	in *Injector
}

func (c *faultConn) Write(b []byte) (int, error) {
	in := c.in
	if in.opts.SeverProb > 0 && in.roll() < in.opts.SeverProb {
		in.severs.Add(1)
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection severed", ErrInjected)
	}
	if in.opts.DropProb > 0 && in.roll() < in.opts.DropProb {
		in.drops.Add(1)
		return len(b), nil // swallowed: the peer never sees these frames
	}
	if in.opts.DelayProb > 0 && in.roll() < in.opts.DelayProb {
		in.delays.Add(1)
		time.Sleep(in.rollDelay()) //pstore:ignore seeddiscipline — the delay IS the injected fault; its duration comes from the seeded rng
	}
	n, err := c.Conn.Write(b)
	if err == nil && n == len(b) && in.opts.DupProb > 0 && in.roll() < in.opts.DupProb {
		in.dups.Add(1)
		c.Conn.Write(b)
	}
	return n, err
}

// FreezeLoop periodically freezes one random executor for FreezeFor,
// emulating a stalled node (GC pause, page-in, CPU starvation): the frozen
// executor processes nothing — transactions queue behind the stall and
// migration work against it blocks — then resumes. execs is re-evaluated
// every tick so the loop tracks topology changes during scale-out/in.
// The loop exits when stop is closed; Wait-style callers should close stop
// and then drain via the returned done channel.
func (in *Injector) FreezeLoop(execs func() []*engine.Executor, stop <-chan struct{}) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		defer wg.Wait()
		ticker := time.NewTicker(in.opts.FreezeEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			if in.opts.FreezeProb <= 0 || in.roll() >= in.opts.FreezeProb {
				continue
			}
			es := execs()
			if len(es) == 0 {
				continue
			}
			in.mu.Lock()
			e := es[in.rng.Intn(len(es))]
			in.mu.Unlock()
			in.freezes.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				// The sleep runs on the executor goroutine via the priority
				// lane, so the whole partition stalls — exactly a frozen
				// node. Do fails harmlessly if the executor already stopped.
				e.Do(func(*storage.Partition) (int, error) {
					//pstore:ignore seeddiscipline — the stall IS the injected fault (frozen node); duration is configured, not drawn
					time.Sleep(in.opts.FreezeFor)
					return 0, nil
				})
			}()
		}
	}()
	return done
}

// ParseSpec parses the `pstore-server -chaos` flag: a comma-separated list
// of key=value pairs, e.g.
//
//	seed=42,drop=0.01,delay=0.02,maxdelay=2ms,dup=0.005,sever=0.001,movefail=0.05,freeze=0.1,freezefor=50ms,freezeevery=200ms,partition=0.05,partitionfor=300ms,partitionevery=250ms
//
// Unknown keys are rejected so typos fail loudly.
func ParseSpec(spec string) (Options, error) {
	var o Options
	if strings.TrimSpace(spec) == "" {
		return o, errors.New("faultinject: empty chaos spec")
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return o, fmt.Errorf("faultinject: bad chaos entry %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			o.Seed, err = strconv.ParseInt(v, 10, 64)
		case "drop":
			o.DropProb, err = strconv.ParseFloat(v, 64)
		case "delay":
			o.DelayProb, err = strconv.ParseFloat(v, 64)
		case "maxdelay":
			o.MaxDelay, err = time.ParseDuration(v)
		case "dup":
			o.DupProb, err = strconv.ParseFloat(v, 64)
		case "sever":
			o.SeverProb, err = strconv.ParseFloat(v, 64)
		case "movefail":
			o.MoveFailProb, err = strconv.ParseFloat(v, 64)
		case "freeze":
			o.FreezeProb, err = strconv.ParseFloat(v, 64)
		case "freezefor":
			o.FreezeFor, err = time.ParseDuration(v)
		case "freezeevery":
			o.FreezeEvery, err = time.ParseDuration(v)
		case "partition":
			o.PartitionProb, err = strconv.ParseFloat(v, 64)
		case "partitionfor":
			o.PartitionFor, err = time.ParseDuration(v)
		case "partitionevery":
			o.PartitionEvery, err = time.ParseDuration(v)
		default:
			return o, fmt.Errorf("faultinject: unknown chaos key %q", k)
		}
		if err != nil {
			return o, fmt.Errorf("faultinject: chaos key %q: %w", k, err)
		}
	}
	return o, nil
}
