package faultinject

import (
	"net"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"pstore/internal/engine"
	"pstore/internal/metrics"
	"pstore/internal/storage"
)

// chaosSeed returns the schedule seed, overridable via PSTORE_CHAOS_SEED so
// CI can sweep seeds without editing tests.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("PSTORE_CHAOS_SEED")
	if v == "" {
		return 1
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("bad PSTORE_CHAOS_SEED %q: %v", v, err)
	}
	return n
}

func TestMatrixBlocksAreDirected(t *testing.T) {
	m := NewMatrix()
	m.Block(1, 2)
	if !m.Blocked(1, 2) {
		t.Error("1→2 not blocked after Block")
	}
	if m.Blocked(2, 1) {
		t.Error("2→1 blocked: cuts must be asymmetric")
	}
	m.Block(1, 2) // double block: no recount
	m.Heal(1, 2)
	if m.Blocked(1, 2) {
		t.Error("1→2 still blocked after Heal")
	}
	m.Heal(1, 2) // healing a clear link: no recount
	if c := m.Counters(); c.Cuts != 1 || c.Heals != 1 {
		t.Errorf("counters = cuts=%d heals=%d, want 1/1 (no recounts)", c.Cuts, c.Heals)
	}

	m.BlockPair(3, 4)
	if !m.Blocked(3, 4) || !m.Blocked(4, 3) {
		t.Error("BlockPair did not cut both directions")
	}
	m.Block(MonitorEndpoint, 3)
	m.HealAll()
	for _, l := range []Link{{3, 4}, {4, 3}, {MonitorEndpoint, 3}} {
		if m.Blocked(l.From, l.To) {
			t.Errorf("link %v survived HealAll", l)
		}
	}
}

func TestMatrixEventsCountTransitions(t *testing.T) {
	m := NewMatrix()
	ev := metrics.NewEvents()
	m.SetEvents(ev)
	m.BlockPair(0, 1)
	m.HealAll()
	if got := ev.Get(metrics.EventNetPartitionCuts); got != 2 {
		t.Errorf("cut events = %d, want 2", got)
	}
	if got := ev.Get(metrics.EventNetPartitionHeals); got != 2 {
		t.Errorf("heal events = %d, want 2", got)
	}
}

// TestMatrixConnBlackholesWrites: a write into a blocked direction reports
// success and vanishes — packet loss, not a reset — while the reverse
// direction still flows.
func TestMatrixConnBlackholesWrites(t *testing.T) {
	m := NewMatrix()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	// a is endpoint 1 talking to endpoint 2.
	wa := m.WrapConn(a, 1, func() int { return 2 })

	m.Block(1, 2)
	if n, err := wa.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("blocked write = (%d, %v), want silent success", n, err)
	}
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if n, _ := b.Read(make([]byte, 8)); n != 0 {
		t.Fatalf("peer read %d bytes through a blocked link", n)
	}
	if c := m.Counters(); c.Blackholes != 1 {
		t.Errorf("Blackholes = %d, want 1", c.Blackholes)
	}

	m.Heal(1, 2)
	got := make([]byte, 4)
	var rerr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, rerr = b.Read(got)
	}()
	if _, err := wa.Write([]byte("pass")); err != nil {
		t.Fatal(err)
	}
	<-done
	if rerr != nil || string(got) != "pass" {
		t.Fatalf("post-heal read = %q, %v", got, rerr)
	}
}

// TestMatrixConnReadStalls: the receiving side of a blocked link sees
// silence (not an error) until the link heals, and a read deadline fires
// exactly as it would against a dead peer.
func TestMatrixConnReadStalls(t *testing.T) {
	m := NewMatrix()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wb := m.WrapConn(b, 2, func() int { return 1 })

	// Inbound direction 1→2 blocked: the read must time out even though the
	// unwrapped pipe would deliver immediately.
	m.Block(1, 2)
	go a.Write([]byte("queued"))
	wb.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := wb.Read(make([]byte, 8)); !os.IsTimeout(err) {
		t.Fatalf("blocked read err = %v, want deadline timeout", err)
	}

	// After heal the in-flight bytes are delivered (TCP retransmit model).
	m.Heal(1, 2)
	wb.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 6)
	n, err := wb.Read(buf)
	if err != nil || string(buf[:n]) != "queued" {
		t.Fatalf("post-heal read = %q, %v", buf[:n], err)
	}

	// A blocked read must also unblock on Close instead of leaking.
	m.Block(1, 2)
	wb.SetReadDeadline(time.Time{})
	readErr := make(chan error, 1)
	go func() {
		_, err := wb.Read(make([]byte, 1))
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	wb.Close()
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatal("read on closed blocked conn returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not unblock on Close while link blocked")
	}
}

// TestPartitionLoopCutsAndHeals: the seeded schedule cuts links among the
// provided endpoints, heals each after PartitionFor, and drains cleanly on
// stop with every in-flight outage healed.
func TestPartitionLoopCutsAndHeals(t *testing.T) {
	in := New(Options{
		Seed:           chaosSeed(t),
		PartitionProb:  1,
		PartitionFor:   20 * time.Millisecond,
		PartitionEvery: 2 * time.Millisecond,
	})
	stop := make(chan struct{})
	done := in.PartitionLoop(func() []int { return []int{MonitorEndpoint, 0, 1} }, stop)
	deadline := time.Now().Add(5 * time.Second)
	for {
		c := in.Counters()
		if c.Cuts >= 5 && c.Heals >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("schedule stalled: %+v", c)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	c := in.Counters()
	if c.Cuts != c.Heals {
		t.Fatalf("after drain cuts=%d heals=%d: an outage leaked past stop", c.Cuts, c.Heals)
	}
	m := in.Matrix()
	for _, from := range []int{MonitorEndpoint, 0, 1} {
		for _, to := range []int{MonitorEndpoint, 0, 1} {
			if from != to && m.Blocked(from, to) {
				t.Errorf("link %d→%d still blocked after drain", from, to)
			}
		}
	}
}

func TestPartitionLoopRespectsDisabledProb(t *testing.T) {
	in := New(Options{Seed: 1, PartitionEvery: time.Millisecond})
	stop := make(chan struct{})
	done := in.PartitionLoop(func() []int { return []int{0, 1} }, stop)
	time.Sleep(20 * time.Millisecond)
	close(stop)
	<-done
	if c := in.Counters(); c.Cuts != 0 {
		t.Errorf("PartitionProb=0 produced %d cuts", c.Cuts)
	}
}

func TestParseSpecPartitionKeys(t *testing.T) {
	o, err := ParseSpec("seed=7,partition=0.25,partitionfor=300ms,partitionevery=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if o.Seed != 7 || o.PartitionProb != 0.25 ||
		o.PartitionFor != 300*time.Millisecond || o.PartitionEvery != 50*time.Millisecond {
		t.Errorf("parsed = %+v", o)
	}
	// Defaults apply when only the probability is given.
	o, err = ParseSpec("partition=0.5")
	if err != nil {
		t.Fatal(err)
	}
	n := New(o).opts
	if n.PartitionFor != 150*time.Millisecond || n.PartitionEvery != 100*time.Millisecond {
		t.Errorf("normalized defaults = %+v", n)
	}
	for _, bad := range []string{"partition=x", "partitionfor=0.5", "partitionevery=zz"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestCountersCoverEveryFaultKind drives each fault class once and then
// checks — by reflection, so a newly added Counters field cannot ship
// untested — that every counter moved.
func TestCountersCoverEveryFaultKind(t *testing.T) {
	in := New(Options{
		Seed:        1,
		DropProb:    1,
		FreezeProb:  1,
		FreezeFor:   5 * time.Millisecond,
		FreezeEvery: time.Millisecond,
	})

	// Drops: a wrapped write is swallowed.
	cw, sr := pipeConns(in)
	if _, err := cw.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	cw.Close()
	sr.Close()

	// Delays, dups, severs: separate injectors (probabilities are mutually
	// exclusive per write), folded into the main counter check by hand.
	for _, sub := range []struct {
		opts Options
		inc  func(c *Counters, from Counters)
	}{
		{Options{Seed: 1, DelayProb: 1, MaxDelay: time.Millisecond}, func(c *Counters, f Counters) { c.Delays += f.Delays }},
		{Options{Seed: 1, DupProb: 1}, func(c *Counters, f Counters) { c.Dups += f.Dups }},
		{Options{Seed: 1, SeverProb: 1}, func(c *Counters, f Counters) { c.Severs += f.Severs }},
	} {
		si := New(sub.opts)
		w, r := pipeConns(si)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			r.SetReadDeadline(time.Now().Add(time.Second))
			for {
				if _, err := r.Read(buf); err != nil {
					return
				}
			}
		}()
		w.Write([]byte("y"))
		w.Close()
		r.Close()
		wg.Wait()
		fc := si.Counters()
		c := in.Counters()
		sub.inc(&c, fc)
		in.drops.Store(c.Drops) // keep aggregate in the main injector's atomics
		in.delays.Store(c.Delays)
		in.dups.Store(c.Dups)
		in.severs.Store(c.Severs)
	}

	// MoveFaults.
	mi := New(Options{Seed: 1, MoveFailProb: 1})
	mi.MoveFault(0, 0, 1)
	in.moveFaults.Store(mi.Counters().MoveFaults)

	// Freezes.
	part := storage.NewPartition(0, 4, []int{0, 1, 2, 3})
	part.CreateTable("T")
	exec := engine.NewExecutor(part, engine.NewRegistry(), engine.Config{})
	defer exec.Stop()
	fstop := make(chan struct{})
	fdone := in.FreezeLoop(func() []*engine.Executor { return []*engine.Executor{exec} }, fstop)
	deadline := time.Now().Add(2 * time.Second)
	for in.Counters().Freezes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("freeze never fired")
		}
		time.Sleep(time.Millisecond)
	}
	close(fstop)
	<-fdone

	// Cuts, heals, blackholes.
	m := in.Matrix()
	m.Block(1, 2)
	a, b := net.Pipe()
	wa := m.WrapConn(a, 1, func() int { return 2 })
	wa.Write([]byte("z"))
	a.Close()
	b.Close()
	m.Heal(1, 2)

	c := in.Counters()
	v := reflect.ValueOf(c)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Int() == 0 {
			t.Errorf("Counters.%s = 0: fault kind not exercised — extend this test with the new kind", v.Type().Field(i).Name)
		}
	}
}
