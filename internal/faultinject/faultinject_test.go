package faultinject

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"pstore/internal/engine"
	"pstore/internal/storage"
)

// pipeConns returns a wrapped client→server pipe: writes on the returned
// conn pass through the injector before reaching the reader.
func pipeConns(in *Injector) (net.Conn, net.Conn) {
	a, b := net.Pipe()
	return in.WrapConn(a), b
}

func TestDeterministicSchedule(t *testing.T) {
	decide := func(seed int64) []bool {
		in := New(Options{Seed: seed, DropProb: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.roll() < 0.3
		}
		return out
	}
	a, b := decide(7), decide(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	c := decide(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 200-decision schedule")
	}
}

func TestDropSwallowsWrites(t *testing.T) {
	in := New(Options{Seed: 1, DropProb: 1})
	cw, sr := pipeConns(in)
	defer cw.Close()
	defer sr.Close()
	if n, err := cw.Write([]byte("doomed")); err != nil || n != 6 {
		t.Fatalf("dropped write = (%d, %v), want silent success", n, err)
	}
	sr.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 8)
	if n, err := sr.Read(buf); err == nil {
		t.Fatalf("read %d bytes of a dropped write", n)
	}
	if got := in.Counters().Drops; got != 1 {
		t.Errorf("Drops = %d, want 1", got)
	}
}

func TestDupDoublesWrites(t *testing.T) {
	in := New(Options{Seed: 1, DupProb: 1})
	cw, sr := pipeConns(in)
	defer cw.Close()
	defer sr.Close()
	go func() {
		cw.Write([]byte("xy"))
		cw.Close()
	}()
	got, err := io.ReadAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "xyxy" {
		t.Errorf("read %q, want duplicated \"xyxy\"", got)
	}
	if in.Counters().Dups != 1 {
		t.Errorf("Dups = %d, want 1", in.Counters().Dups)
	}
}

func TestSeverKillsConnection(t *testing.T) {
	in := New(Options{Seed: 1, SeverProb: 1})
	cw, sr := pipeConns(in)
	defer sr.Close()
	_, err := cw.Write([]byte("x"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("severed write err = %v, want ErrInjected", err)
	}
	// The underlying conn is closed: the peer sees EOF.
	sr.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := sr.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("peer read after sever = %v, want EOF", err)
	}
	if in.Counters().Severs != 1 {
		t.Errorf("Severs = %d, want 1", in.Counters().Severs)
	}
}

func TestDelayStallsWrites(t *testing.T) {
	in := New(Options{Seed: 1, DelayProb: 1, MaxDelay: 30 * time.Millisecond})
	cw, sr := pipeConns(in)
	defer cw.Close()
	defer sr.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		io.ReadAll(sr)
	}()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := cw.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if time.Since(start) == 0 {
		t.Error("five always-delayed writes completed instantly")
	}
	cw.Close()
	wg.Wait()
	if in.Counters().Delays != 5 {
		t.Errorf("Delays = %d, want 5", in.Counters().Delays)
	}
}

func TestWrapListener(t *testing.T) {
	in := New(Options{Seed: 1, DropProb: 1})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := in.WrapListener(lis)
	defer wrapped.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := wrapped.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer conn.Close()
		conn.Write([]byte("dropped")) // server→client write goes through the injector
	}()
	conn, err := net.Dial("tcp", wrapped.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	<-done
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, _ := conn.Read(make([]byte, 8)); n != 0 {
		t.Errorf("client read %d bytes through a 100%%-drop listener", n)
	}
	if in.Counters().Drops != 1 {
		t.Errorf("Drops = %d, want 1", in.Counters().Drops)
	}
}

func TestMoveFault(t *testing.T) {
	in := New(Options{Seed: 3, MoveFailProb: 1})
	if err := in.MoveFault(4, 0, 1); !errors.Is(err, ErrInjected) {
		t.Errorf("MoveFault = %v, want ErrInjected", err)
	}
	off := New(Options{Seed: 3})
	if err := off.MoveFault(4, 0, 1); err != nil {
		t.Errorf("disabled MoveFault = %v, want nil", err)
	}
	if in.Counters().MoveFaults != 1 {
		t.Errorf("MoveFaults = %d, want 1", in.Counters().MoveFaults)
	}
}

func TestFreezeLoopStallsExecutor(t *testing.T) {
	part := storage.NewPartition(0, 4, []int{0, 1, 2, 3})
	part.CreateTable("T")
	exec := engine.NewExecutor(part, engine.NewRegistry(), engine.Config{})
	defer exec.Stop()
	in := New(Options{
		Seed:        1,
		FreezeProb:  1,
		FreezeFor:   40 * time.Millisecond,
		FreezeEvery: 5 * time.Millisecond,
	})
	stop := make(chan struct{})
	done := in.FreezeLoop(func() []*engine.Executor { return []*engine.Executor{exec} }, stop)
	deadline := time.Now().Add(2 * time.Second)
	for in.Counters().Freezes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("freeze loop never froze the executor")
		}
		time.Sleep(time.Millisecond)
	}
	// A Do issued while frozen queues behind the stall but completes.
	if err := exec.Do(func(*storage.Partition) (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	if in.Counters().Freezes == 0 {
		t.Error("no freezes counted")
	}
}

func TestParseSpec(t *testing.T) {
	o, err := ParseSpec("seed=42,drop=0.01,delay=0.02,maxdelay=2ms,dup=0.005,sever=0.001,movefail=0.05,freeze=0.1,freezefor=50ms,freezeevery=200ms")
	if err != nil {
		t.Fatal(err)
	}
	if o.Seed != 42 || o.DropProb != 0.01 || o.MaxDelay != 2*time.Millisecond ||
		o.SeverProb != 0.001 || o.MoveFailProb != 0.05 || o.FreezeFor != 50*time.Millisecond {
		t.Errorf("parsed = %+v", o)
	}
	for _, bad := range []string{"", "drop", "bogus=1", "drop=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
