// Network-partition matrix: directed per-link block/heal state for
// chaos-testing split-brain scenarios. A Matrix models the reachability
// graph between cluster endpoints (nodes, plus the failover monitor as a
// virtual endpoint): each directed link is either clear or blocked, and
// blocks are asymmetric by design — "the monitor cannot see the primary
// but clients can" is a first-class, reproducible state.
//
// Two consumers read the matrix:
//
//   - Connections. WrapConn gates a replication tail's conn on the link
//     between its host node and the partition's current primary node.
//     Writes into a blocked direction are blackholed (they report success
//     and vanish — packet loss, not a connection reset, so the sender
//     learns nothing); reads poll-wait while the inbound direction is
//     blocked, honoring read deadlines, so silence is indistinguishable
//     from a dead peer and deadline-based liveness (ack deadlines,
//     heartbeats) fires exactly as it would across a real partition.
//
//   - The failover monitor. cluster's monitor consults Blocked directly
//     (its probes are in-process function calls, not packets) to decide
//     whether it can "reach" a node, and feeds the same answer into its
//     promotion quorum votes.
package faultinject

import (
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/metrics"
)

// MonitorEndpoint is the virtual endpoint ID the failover monitor uses in
// the partition matrix. Node endpoints are their non-negative node IDs.
const MonitorEndpoint = -1

// Link is one directed edge in the partition matrix.
type Link struct {
	From, To int
}

// Matrix is the blocked-link set. Safe for concurrent use. Zero links are
// blocked initially; tests and the seeded partition schedule cut and heal
// links at runtime.
type Matrix struct {
	mu      sync.Mutex
	blocked map[Link]struct{}
	events  *metrics.Events

	cuts       atomic.Int64
	heals      atomic.Int64
	blackholes atomic.Int64
}

// NewMatrix returns an empty matrix (all links clear).
func NewMatrix() *Matrix {
	return &Matrix{blocked: make(map[Link]struct{})}
}

// SetEvents routes cut/heal transitions into a metrics registry (in
// addition to the matrix's own counters). Call before injecting faults.
func (m *Matrix) SetEvents(ev *metrics.Events) {
	m.mu.Lock()
	m.events = ev
	m.mu.Unlock()
}

// Block cuts the directed link from→to. Blocking an already-blocked link
// is a no-op (not recounted).
func (m *Matrix) Block(from, to int) {
	m.mu.Lock()
	l := Link{From: from, To: to}
	if _, ok := m.blocked[l]; !ok {
		m.blocked[l] = struct{}{}
		m.cuts.Add(1)
		m.events.Add(metrics.EventNetPartitionCuts, 1)
	}
	m.mu.Unlock()
}

// BlockPair cuts both directions between a and b — a full bidirectional
// partition of that pair.
func (m *Matrix) BlockPair(a, b int) {
	m.Block(a, b)
	m.Block(b, a)
}

// Heal clears the directed link from→to. Healing a clear link is a no-op.
func (m *Matrix) Heal(from, to int) {
	m.mu.Lock()
	l := Link{From: from, To: to}
	if _, ok := m.blocked[l]; ok {
		delete(m.blocked, l)
		m.heals.Add(1)
		m.events.Add(metrics.EventNetPartitionHeals, 1)
	}
	m.mu.Unlock()
}

// HealPair clears both directions between a and b.
func (m *Matrix) HealPair(a, b int) {
	m.Heal(a, b)
	m.Heal(b, a)
}

// HealAll clears every blocked link.
func (m *Matrix) HealAll() {
	m.mu.Lock()
	n := len(m.blocked)
	for l := range m.blocked {
		delete(m.blocked, l)
	}
	m.heals.Add(int64(n))
	m.events.Add(metrics.EventNetPartitionHeals, int64(n))
	m.mu.Unlock()
}

// Blocked reports whether the directed link from→to is cut. Implements
// cluster's Links interface.
func (m *Matrix) Blocked(from, to int) bool {
	m.mu.Lock()
	_, ok := m.blocked[Link{From: from, To: to}]
	m.mu.Unlock()
	return ok
}

// Counters returns the matrix's transition and blackhole counts (only the
// partition fields are populated).
func (m *Matrix) Counters() Counters {
	return Counters{
		Cuts:       m.cuts.Load(),
		Heals:      m.heals.Load(),
		Blackholes: m.blackholes.Load(),
	}
}

// WrapConn gates conn on the matrix link between the local endpoint and
// the peer endpoint. remote is resolved per I/O operation so a conn whose
// logical peer moves (a tail following a partition's primary) tracks the
// current link. Writes into a blocked link are blackholed; reads from a
// blocked link stall until heal, deadline, or close.
func (m *Matrix) WrapConn(conn net.Conn, local int, remote func() int) net.Conn {
	return &matrixConn{Conn: conn, m: m, local: local, remote: remote}
}

type matrixConn struct {
	net.Conn
	m      *Matrix
	local  int
	remote func() int

	mu           sync.Mutex
	readDeadline time.Time
	closed       bool
}

func (c *matrixConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *matrixConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *matrixConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.Conn.Close()
}

// Write blackholes frames sent into a blocked link: it reports success and
// discards the bytes, exactly what a partitioned network does to packets.
// The peer sees silence, not an error, so only deadline/heartbeat liveness
// can detect the cut.
func (c *matrixConn) Write(b []byte) (int, error) {
	if c.m.Blocked(c.local, c.remote()) {
		c.m.blackholes.Add(1)
		return len(b), nil
	}
	return c.Conn.Write(b)
}

// Read stalls while the inbound direction is blocked. Data already in
// flight is delivered after heal (TCP retransmits across a partition), or
// discarded with the conn if the session dies first. The poll honors the
// conn's read deadline so blocked readers time out exactly like readers of
// a silent peer.
func (c *matrixConn) Read(b []byte) (int, error) {
	for c.m.Blocked(c.remote(), c.local) {
		c.mu.Lock()
		dl, closed := c.readDeadline, c.closed
		c.mu.Unlock()
		if closed {
			return 0, net.ErrClosed
		}
		//pstore:ignore seeddiscipline — deadline bookkeeping and poll pacing for an injected partition stall; the cut itself comes from the seeded schedule
		if !dl.IsZero() && time.Now().After(dl) {
			return 0, os.ErrDeadlineExceeded
		}
		//pstore:ignore seeddiscipline — the stall IS the injected fault (blocked link); poll interval is fixed, not drawn
		time.Sleep(time.Millisecond)
	}
	return c.Conn.Read(b)
}

// Matrix returns the injector's partition matrix, creating it on first
// use. The same matrix is shared by conn wrappers, the monitor's
// reachability checks, and PartitionLoop's seeded schedule.
func (in *Injector) Matrix() *Matrix {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.matrix == nil {
		in.matrix = NewMatrix()
	}
	return in.matrix
}

// PartitionLoop runs the seeded partition schedule: every PartitionEvery
// tick, with probability PartitionProb, it cuts one random directed link
// between two distinct endpoints and heals it after PartitionFor. Cuts are
// directed draws, so asymmetric partitions (A can talk to B but not hear
// it) arise naturally. endpoints is re-evaluated every tick so the
// schedule tracks topology changes; include MonitorEndpoint to let the
// schedule blind the failover monitor. The loop exits when stop is
// closed; drain the returned done channel to wait for in-flight heals.
func (in *Injector) PartitionLoop(endpoints func() []int, stop <-chan struct{}) <-chan struct{} {
	m := in.Matrix()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		defer wg.Wait()
		ticker := time.NewTicker(in.opts.PartitionEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			if in.opts.PartitionProb <= 0 || in.roll() >= in.opts.PartitionProb {
				continue
			}
			eps := endpoints()
			if len(eps) < 2 {
				continue
			}
			in.mu.Lock()
			i := in.rng.Intn(len(eps))
			j := in.rng.Intn(len(eps) - 1)
			in.mu.Unlock()
			if j >= i {
				j++
			}
			from, to := eps[i], eps[j]
			m.Block(from, to)
			wg.Add(1)
			go func() {
				defer wg.Done()
				timer := time.NewTimer(in.opts.PartitionFor)
				defer timer.Stop()
				select {
				case <-timer.C:
				case <-stop:
				}
				m.Heal(from, to)
			}()
		}
	}()
	return done
}
