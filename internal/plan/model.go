// Package plan implements P-Store's core contribution: the model of data
// migrations (time, cost, parallelism and effective capacity of a
// reconfiguration — §4.4 of the paper) and the dynamic-programming planner
// that chooses when to reconfigure and to how many machines (§4.3,
// Algorithms 1–3), plus the three-phase sender→receiver migration schedule
// of §4.4.1 (Table 1).
package plan

//pstore:deterministic — the planner's output (moves, schedules) feeds
// cluster reconfiguration; two nodes planning from the same state must
// produce identical plans.

import "fmt"

// Params holds the empirically discovered model parameters of §4.1.
// Load values, Q and QHat must share one unit (e.g. transactions per
// second); D and all planner times are in "slots", the discretization
// interval of the load predictions.
type Params struct {
	// Q is the target throughput of each server: the planner provisions
	// ⌈load/Q⌉ machines. The paper sets Q to 65% of the single-server
	// saturation rate.
	Q float64
	// QHat is the maximum throughput of each server before the latency
	// constraint is violated (80% of saturation in the paper). The planner
	// itself only uses Q; QHat is used by monitoring and experiments.
	QHat float64
	// D is the time, in slots, to migrate the entire database exactly once
	// with a single sender-receiver thread pair without impacting query
	// latency (plus the paper's 10% buffer).
	D float64
	// PartitionsPerNode is P in Eq. 2: each partition migrates with at most
	// one peer at a time, so parallelism is counted in partitions.
	PartitionsPerNode int
}

// Validate reports whether the parameters are usable by the planner.
func (p Params) Validate() error {
	if p.Q <= 0 {
		return fmt.Errorf("plan: Q must be positive, got %g", p.Q)
	}
	if p.QHat != 0 && p.QHat < p.Q {
		return fmt.Errorf("plan: QHat %g below Q %g", p.QHat, p.Q)
	}
	if p.D < 0 {
		return fmt.Errorf("plan: D must be non-negative, got %g", p.D)
	}
	if p.PartitionsPerNode <= 0 {
		return fmt.Errorf("plan: PartitionsPerNode must be positive, got %d", p.PartitionsPerNode)
	}
	return nil
}

// Cap returns the target capacity of n evenly loaded machines (Eq. 5):
// cap(N) = Q·N.
func (p Params) Cap(n int) float64 { return p.Q * float64(n) }

// MaxParallel returns max‖ (Eq. 2), the maximum number of concurrent
// partition-to-partition data transfers during a move from b to a machines:
// each partition transfers with at most one peer at a time, so parallelism
// is bounded by the smaller of the sending and receiving sides.
func (p Params) MaxParallel(b, a int) int {
	switch {
	case b == a:
		return 0
	case b < a:
		return p.PartitionsPerNode * minInt(b, a-b)
	default:
		return p.PartitionsPerNode * minInt(a, b-a)
	}
}

// MoveTime returns T(B,A) (Eq. 3): the time in slots to reconfigure from b
// to a machines, moving the changed fraction of the database at full
// parallelism.
func (p Params) MoveTime(b, a int) float64 {
	if b == a {
		return 0
	}
	par := float64(p.MaxParallel(b, a))
	if b < a {
		return p.D / par * (1 - float64(b)/float64(a))
	}
	return p.D / par * (1 - float64(a)/float64(b))
}

// AvgMachines returns avg-mach-alloc(B,A) (Algorithm 4): the average number
// of machines allocated while the move from b to a is in progress, given
// that machines are allocated as late (or deallocated as early) as possible.
// For b == a it returns b.
func (p Params) AvgMachines(b, a int) float64 {
	if b == a {
		return float64(b)
	}
	l := maxInt(b, a) // larger cluster
	s := minInt(b, a) // smaller cluster
	delta := l - s
	r := delta % s

	// Case 1: all machines added (or removed) at once.
	if s >= delta {
		return float64(l)
	}
	// Case 2: delta is a multiple of the smaller cluster: blocks of s
	// machines allocated one block at a time.
	if r == 0 {
		return float64(2*s+l) / 2
	}
	// Case 3: three phases (§4.4.1, Fig 4c).
	n1 := delta/s - 1                 // steps in phase 1
	t1 := float64(s) / float64(delta) // time per phase-1 step
	m1 := float64(s+l-r) / 2          // average machines in phase 1
	phase1 := float64(n1) * t1 * m1   //
	t2 := float64(r) / float64(delta) // time for phase 2
	m2 := float64(l - r)              // machines in phase 2
	phase2 := t2 * m2                 //
	t3 := float64(s) / float64(delta) // time for phase 3
	m3 := float64(l)                  // machines in phase 3
	phase3 := t3 * m3                 //
	return phase1 + phase2 + phase3
}

// MoveCost returns C(B,A) (Eq. 4): machine-slots consumed while the move
// from b to a is in progress, T(B,A)·avg-mach-alloc(B,A). For b == a it
// returns 0, matching Eq. 4; the planner separately charges the one-slot
// "do nothing" move (Algorithms 2–3).
func (p Params) MoveCost(b, a int) float64 {
	return p.MoveTime(b, a) * p.AvgMachines(b, a)
}

// EffCap returns eff-cap(B,A,f) (Eq. 7): the effective capacity of the
// system after fraction f ∈ [0,1] of the migrating data has moved during a
// reconfiguration from b to a machines. While data is in flight the most
// loaded machine bottlenecks the whole cluster, so effective capacity lags
// the allocated machine count.
func (p Params) EffCap(b, a int, f float64) float64 {
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	fb, fa := float64(b), float64(a)
	switch {
	case b == a:
		return p.Cap(b)
	case b < a:
		// Each of the original b machines drains from 1/B toward 1/A.
		frac := 1/fb - f*(1/fb-1/fa)
		return p.Q / frac
	default:
		// Each of the a surviving machines fills from 1/B toward 1/A.
		frac := 1/fb + f*(1/fa-1/fb)
		return p.Q / frac
	}
}

// RecommendedHorizon returns the minimum planning horizon in slots per §5:
// the forecast window τ must cover at least 2·D/P, the maximum length of
// two back-to-back reconfigurations with parallel migration, so a scale-in
// decision always leaves room to scale back out before a predicted rise.
func (p Params) RecommendedHorizon() int {
	h := 2 * p.D / float64(p.PartitionsPerNode)
	n := int(h)
	if float64(n) < h {
		n++
	}
	if n < 2 {
		n = 2
	}
	return n
}

// RequiredMachines returns the minimum machines whose target capacity
// covers the load: ⌈load/Q⌉, at least 1.
func (p Params) RequiredMachines(load float64) int {
	if load <= 0 {
		return 1
	}
	n := int(load / p.Q)
	if float64(n)*p.Q < load {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// AllocSegment describes a constant machine-allocation level over a
// fraction of a move: machines are allocated over [FracStart, FracEnd) of
// the move's duration.
type AllocSegment struct {
	FracStart, FracEnd float64
	Machines           int
}

// AllocationSegments returns the machine-allocation step function over the
// course of a move from b to a, per the just-in-time allocation policy of
// §4.4.1: machines are allocated at the start of the step in which they
// first receive data (scale-out) and deallocated at the end of the step in
// which they finish sending (scale-in). The integral of the segments equals
// AvgMachines(b, a).
func (p Params) AllocationSegments(b, a int) []AllocSegment {
	if b == a {
		return []AllocSegment{{0, 1, b}}
	}
	out := scaleOutSegments(minInt(b, a), maxInt(b, a))
	if b < a {
		return out
	}
	// Scale-in mirrors scale-out in time: deallocation at segment ends.
	mirrored := make([]AllocSegment, len(out))
	for i, seg := range out {
		mirrored[len(out)-1-i] = AllocSegment{
			FracStart: 1 - seg.FracEnd,
			FracEnd:   1 - seg.FracStart,
			Machines:  seg.Machines,
		}
	}
	return mirrored
}

// scaleOutSegments builds the allocation step function for scaling out from
// s to l machines (s < l), following the three cases of §4.4.1.
func scaleOutSegments(s, l int) []AllocSegment {
	delta := l - s
	if s >= delta {
		// Case 1: everything allocated immediately.
		return []AllocSegment{{0, 1, l}}
	}
	r := delta % s
	if r == 0 {
		// Case 2: blocks of s machines, one block per step.
		steps := delta / s
		segs := make([]AllocSegment, steps)
		for i := 0; i < steps; i++ {
			segs[i] = AllocSegment{
				FracStart: float64(i) / float64(steps),
				FracEnd:   float64(i+1) / float64(steps),
				Machines:  s + (i+1)*s,
			}
		}
		return segs
	}
	// Case 3: three phases. Total duration is delta rounds; phase 1 has
	// (⌊delta/s⌋−1) steps of s rounds, phase 2 r rounds, phase 3 s rounds.
	total := float64(delta)
	var segs []AllocSegment
	n1 := delta/s - 1
	pos := 0.0
	for i := 0; i < n1; i++ {
		next := pos + float64(s)/total
		segs = append(segs, AllocSegment{pos, next, (i + 2) * s}) // s original + (i+1) blocks
		pos = next
	}
	// Phase 2: s more machines, filled r/s of the way.
	next := pos + float64(r)/total
	segs = append(segs, AllocSegment{pos, next, l - r})
	pos = next
	// Phase 3: final r machines.
	segs = append(segs, AllocSegment{pos, 1, l})
	return segs
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
