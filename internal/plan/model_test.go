package plan

import (
	"math"
	"testing"
	"testing/quick"
)

func testParams() Params {
	return Params{Q: 285, QHat: 350, D: 77, PartitionsPerNode: 1}
}

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMaxParallel(t *testing.T) {
	p := testParams()
	cases := []struct{ b, a, want int }{
		{3, 3, 0},
		{3, 5, 2},  // min(3, 2)
		{3, 9, 3},  // min(3, 6)
		{3, 14, 3}, // min(3, 11)
		{14, 3, 3}, // scale-in: min(3, 11)
		{5, 3, 2},  // min(3, 2)
		{1, 2, 1},
	}
	for _, c := range cases {
		if got := p.MaxParallel(c.b, c.a); got != c.want {
			t.Errorf("MaxParallel(%d,%d) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
	p.PartitionsPerNode = 6
	if got := p.MaxParallel(3, 14); got != 18 {
		t.Errorf("MaxParallel with P=6 = %d, want 18", got)
	}
}

func TestMoveTime(t *testing.T) {
	p := testParams()
	p.D = 1
	if got := p.MoveTime(4, 4); got != 0 {
		t.Errorf("MoveTime(4,4) = %v, want 0", got)
	}
	// 3→6: max‖=3, fraction 1−3/6 = 1/2 → 1/6.
	if got := p.MoveTime(3, 6); !almostEqual(got, 1.0/6, 1e-12) {
		t.Errorf("MoveTime(3,6) = %v, want 1/6", got)
	}
	// 3→14: max‖=3, fraction 1−3/14 = 11/14 → 11/42.
	if got := p.MoveTime(3, 14); !almostEqual(got, 11.0/42, 1e-12) {
		t.Errorf("MoveTime(3,14) = %v, want 11/42", got)
	}
}

func TestMoveTimeSymmetric(t *testing.T) {
	p := testParams()
	f := func(bRaw, aRaw uint8) bool {
		b, a := int(bRaw%30)+1, int(aRaw%30)+1
		return almostEqual(p.MoveTime(b, a), p.MoveTime(a, b), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvgMachinesPaperCases(t *testing.T) {
	p := testParams()
	cases := []struct {
		b, a int
		want float64
	}{
		{3, 5, 5},           // case 1 (Fig 4a)
		{3, 9, 7.5},         // case 2 (Fig 4b): (2·3+9)/2
		{3, 14, 111.0 / 11}, // case 3 (Fig 4c / Table 1)
		{14, 3, 111.0 / 11}, // symmetric scale-in
		{4, 4, 4},           // no move
		{1, 2, 2},           // case 1 boundary
	}
	for _, c := range cases {
		if got := p.AvgMachines(c.b, c.a); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("AvgMachines(%d,%d) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestAvgMachinesProperties(t *testing.T) {
	p := testParams()
	f := func(bRaw, aRaw uint8) bool {
		b, a := int(bRaw%40)+1, int(aRaw%40)+1
		got := p.AvgMachines(b, a)
		// Symmetric, and bounded by the larger cluster and the smaller one.
		if !almostEqual(got, p.AvgMachines(a, b), 1e-9) {
			return false
		}
		lo, hi := float64(minInt(b, a)), float64(maxInt(b, a))
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEffCapEndpoints(t *testing.T) {
	p := testParams()
	for _, c := range []struct{ b, a int }{{3, 14}, {14, 3}, {2, 5}, {7, 4}, {5, 5}} {
		if got := p.EffCap(c.b, c.a, 0); !almostEqual(got, p.Cap(c.b), 1e-9) {
			t.Errorf("EffCap(%d,%d,0) = %v, want cap(B)=%v", c.b, c.a, got, p.Cap(c.b))
		}
		want := p.Cap(c.a)
		if c.b == c.a {
			want = p.Cap(c.b)
		}
		if got := p.EffCap(c.b, c.a, 1); !almostEqual(got, want, 1e-9) {
			t.Errorf("EffCap(%d,%d,1) = %v, want %v", c.b, c.a, got, want)
		}
	}
}

func TestEffCapKnownValue(t *testing.T) {
	p := testParams()
	// 3→14 halfway: each original machine holds 1/3 − (1/2)(1/3−1/14) = 17/84
	// of the data, so effective capacity is Q·84/17.
	want := p.Q * 84 / 17
	if got := p.EffCap(3, 14, 0.5); !almostEqual(got, want, 1e-9) {
		t.Errorf("EffCap(3,14,0.5) = %v, want %v", got, want)
	}
}

func TestEffCapMonotonicAndClamped(t *testing.T) {
	p := testParams()
	f := func(bRaw, aRaw uint8, f1Raw, f2Raw uint16) bool {
		b, a := int(bRaw%20)+1, int(aRaw%20)+1
		f1 := float64(f1Raw) / 65535
		f2 := float64(f2Raw) / 65535
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		c1, c2 := p.EffCap(b, a, f1), p.EffCap(b, a, f2)
		switch {
		case b < a:
			if c1 > c2+1e-9 {
				return false // must not decrease while scaling out
			}
		case b > a:
			if c1 < c2-1e-9 {
				return false // must not increase while scaling in
			}
		default:
			if c1 != c2 {
				return false
			}
		}
		// Bounded by the two endpoint capacities.
		lo := math.Min(p.Cap(b), p.Cap(a))
		hi := math.Max(p.Cap(b), p.Cap(a))
		return c1 >= lo-1e-9 && c1 <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Out-of-range f is clamped.
	if got := p.EffCap(3, 9, -1); !almostEqual(got, p.Cap(3), 1e-9) {
		t.Errorf("EffCap with f<0 = %v, want cap(3)", got)
	}
	if got := p.EffCap(3, 9, 2); !almostEqual(got, p.Cap(9), 1e-9) {
		t.Errorf("EffCap with f>1 = %v, want cap(9)", got)
	}
}

func TestRequiredMachines(t *testing.T) {
	p := testParams() // Q = 285
	cases := []struct {
		load float64
		want int
	}{
		{0, 1}, {-5, 1}, {1, 1}, {285, 1}, {285.1, 2}, {570, 2}, {2851, 11},
	}
	for _, c := range cases {
		if got := p.RequiredMachines(c.load); got != c.want {
			t.Errorf("RequiredMachines(%v) = %d, want %d", c.load, got, c.want)
		}
	}
}

func TestAllocationSegmentsIntegralMatchesAvgMachines(t *testing.T) {
	p := testParams()
	for b := 1; b <= 20; b++ {
		for a := 1; a <= 20; a++ {
			segs := p.AllocationSegments(b, a)
			integral := 0.0
			pos := 0.0
			for _, s := range segs {
				if !almostEqual(s.FracStart, pos, 1e-9) {
					t.Fatalf("(%d,%d): segment gap at %v", b, a, s.FracStart)
				}
				if s.FracEnd <= s.FracStart {
					t.Fatalf("(%d,%d): empty segment %+v", b, a, s)
				}
				integral += (s.FracEnd - s.FracStart) * float64(s.Machines)
				pos = s.FracEnd
			}
			if !almostEqual(pos, 1, 1e-9) {
				t.Fatalf("(%d,%d): segments end at %v, want 1", b, a, pos)
			}
			if want := p.AvgMachines(b, a); !almostEqual(integral, want, 1e-9) {
				t.Errorf("(%d,%d): integral %v != AvgMachines %v", b, a, integral, want)
			}
		}
	}
}

func TestAllocationSegmentsBoundaries(t *testing.T) {
	p := testParams()
	// Scale-out starts above b (new machines allocated immediately in the
	// first step) and ends at a; scale-in starts at b and ends at a.
	segs := p.AllocationSegments(3, 14)
	if segs[0].Machines != 6 {
		t.Errorf("3→14 first segment machines = %d, want 6", segs[0].Machines)
	}
	if last := segs[len(segs)-1]; last.Machines != 14 {
		t.Errorf("3→14 last segment machines = %d, want 14", last.Machines)
	}
	segs = p.AllocationSegments(14, 3)
	if segs[0].Machines != 14 {
		t.Errorf("14→3 first segment machines = %d, want 14", segs[0].Machines)
	}
	if last := segs[len(segs)-1]; last.Machines != 6 {
		t.Errorf("14→3 last segment machines = %d, want 6", last.Machines)
	}
}

func TestParamsValidate(t *testing.T) {
	good := testParams()
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	for _, bad := range []Params{
		{Q: 0, D: 1, PartitionsPerNode: 1},
		{Q: 100, QHat: 50, D: 1, PartitionsPerNode: 1},
		{Q: 100, D: -1, PartitionsPerNode: 1},
		{Q: 100, D: 1, PartitionsPerNode: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid params %+v accepted", bad)
		}
	}
}

func TestRecommendedHorizon(t *testing.T) {
	cases := []struct {
		d    float64
		p    int
		want int
	}{
		{77, 6, 26}, // the paper's setting: 2·77/6 ≈ 25.7 → 26 slots
		{8, 1, 16},
		{0.5, 1, 2}, // floor at 2
		{9, 2, 9},
	}
	for _, c := range cases {
		params := Params{Q: 100, D: c.d, PartitionsPerNode: c.p}
		if got := params.RecommendedHorizon(); got != c.want {
			t.Errorf("RecommendedHorizon(D=%v, P=%d) = %d, want %d", c.d, c.p, got, c.want)
		}
	}
}
