package plan

import (
	"errors"
	"fmt"
	"math"
)

// Move is one reconfiguration in a plan: between slots Start and End the
// cluster reconfigures from From to To machines. From == To is the "do
// nothing" move, which always lasts exactly one slot.
type Move struct {
	Start, End int
	From, To   int
}

// IsNoop reports whether the move changes nothing.
func (m Move) IsNoop() bool { return m.From == m.To }

// String renders the move for logs and reports.
func (m Move) String() string {
	if m.IsNoop() {
		return fmt.Sprintf("[%d,%d] hold %d", m.Start, m.End, m.From)
	}
	return fmt.Sprintf("[%d,%d] %d→%d", m.Start, m.End, m.From, m.To)
}

// Plan is the output of the planner: a gap-free sequence of moves tiling
// slots [0, T], its total cost in machine-slots, and the machine count at
// the end of the horizon.
type Plan struct {
	Moves      []Move
	Cost       float64
	FinalNodes int
}

// FirstAction returns the first move that actually changes the machine
// count, or a zero Move and false if the plan only holds steady. P-Store's
// controller executes only this move and then re-plans (receding horizon).
func (p *Plan) FirstAction() (Move, bool) {
	for _, m := range p.Moves {
		if !m.IsNoop() {
			return m, true
		}
	}
	return Move{}, false
}

// ErrInfeasible is returned when no sequence of moves can keep effective
// capacity above the predicted load — the signal for the controller to fall
// back to reactive scaling (§4.3.1).
var ErrInfeasible = errors.New("plan: no feasible sequence of moves for the predicted load")

// BestMoves implements Algorithm 1: given load, where load[0] is the
// current load and load[t] (1 ≤ t ≤ T) is the predicted load of slot t, and
// n0 machines currently allocated, it returns the minimum-cost feasible
// sequence of moves ending with as few machines as possible at slot T.
//
// Feasibility means the (effective) capacity covers the predicted load at
// every slot, including while reconfigurations are in progress. If even
// scaling flat-out cannot keep up, ErrInfeasible is returned.
func BestMoves(load []float64, n0 int, p Params) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n0 < 1 {
		return nil, fmt.Errorf("plan: n0 must be ≥ 1, got %d", n0)
	}
	horizon := len(load) - 1
	if horizon < 1 {
		return nil, fmt.Errorf("plan: need current load plus ≥ 1 predicted slot, got %d values", len(load))
	}
	for i, v := range load {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("plan: load[%d] = %g is invalid", i, v)
		}
	}

	// Z: most machines ever needed for the predicted load (Alg 1 line 2).
	maxLoad := 0.0
	for _, v := range load {
		if v > maxLoad {
			maxLoad = v
		}
	}
	z := maxInt(p.RequiredMachines(maxLoad), n0)

	// Try final machine counts from smallest up and return the first
	// feasible one (Alg 1 lines 3–12). The memo table is shared across
	// candidate finals: cost(t, A) does not depend on the final target, so
	// resetting it (as the paper's pseudocode does) would only repeat work.
	d := &dp{load: load, n0: n0, z: z, p: p, memo: newMemoTable(horizon, z)}
	for final := 1; final <= z; final++ {
		if c := d.cost(horizon, final); !math.IsInf(c, 1) {
			moves := d.reconstruct(horizon, final)
			return &Plan{Moves: moves, Cost: c, FinalNodes: final}, nil
		}
	}
	return nil, ErrInfeasible
}

// BestMovesMinCost is an extension to Algorithm 1: instead of returning the
// feasible plan ending with the fewest machines, it searches every feasible
// final machine count and returns the plan with globally minimum cost.
// These can differ: ending small may require a scale-in move whose
// migration overhead outweighs the saved machine-slots within the horizon.
func BestMovesMinCost(load []float64, n0 int, p Params) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n0 < 1 {
		return nil, fmt.Errorf("plan: n0 must be ≥ 1, got %d", n0)
	}
	horizon := len(load) - 1
	if horizon < 1 {
		return nil, fmt.Errorf("plan: need current load plus ≥ 1 predicted slot, got %d values", len(load))
	}
	for i, v := range load {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("plan: load[%d] = %g is invalid", i, v)
		}
	}
	maxLoad := 0.0
	for _, v := range load {
		if v > maxLoad {
			maxLoad = v
		}
	}
	z := maxInt(p.RequiredMachines(maxLoad), n0)
	d := &dp{load: load, n0: n0, z: z, p: p, memo: newMemoTable(horizon, z)}
	best := math.Inf(1)
	bestFinal := -1
	for final := 1; final <= z; final++ {
		if c := d.cost(horizon, final); c < best {
			best = c
			bestFinal = final
		}
	}
	if bestFinal < 0 {
		return nil, ErrInfeasible
	}
	return &Plan{Moves: d.reconstruct(horizon, bestFinal), Cost: best, FinalNodes: bestFinal}, nil
}

// dp carries the state of one dynamic-programming run.
type dp struct {
	load []float64
	n0   int
	z    int
	p    Params
	memo [][]memoEntry
}

type memoEntry struct {
	computed  bool
	cost      float64
	prevTime  int
	prevNodes int
}

func newMemoTable(horizon, z int) [][]memoEntry {
	m := make([][]memoEntry, horizon+1)
	for i := range m {
		m[i] = make([]memoEntry, z+1)
	}
	return m
}

// moveSlots returns the duration of a b→a move rounded up to whole slots;
// the "do nothing" move lasts one slot (Alg 2 line 9 / Alg 3 line 2).
func (d *dp) moveSlots(b, a int) int {
	if b == a {
		return 1
	}
	t := int(math.Ceil(d.p.MoveTime(b, a)))
	if t < 1 {
		t = 1
	}
	return t
}

// moveCost returns machine-slots charged for the b→a move over its
// (rounded-up) slot duration: migration itself costs
// T(B,A)·avg-mach-alloc(B,A) (Eq. 4); any slot remainder after the
// migration completes runs with a machines.
func (d *dp) moveCost(b, a int) float64 {
	if b == a {
		return float64(b)
	}
	mt := d.p.MoveTime(b, a)
	slots := float64(d.moveSlots(b, a))
	return d.p.MoveCost(b, a) + (slots-mt)*float64(a)
}

// cost implements Algorithm 2: minimum cost of a feasible sequence of moves
// ending with a machines at slot t.
func (d *dp) cost(t, a int) float64 {
	// Constraint violations and insufficient capacity are infinitely costly
	// (Alg 2 line 2).
	if t < 0 || (t == 0 && a != d.n0) || d.load[t] > d.p.Cap(a) {
		return math.Inf(1)
	}
	if e := &d.memo[t][a]; e.computed {
		return e.cost
	}
	e := &d.memo[t][a]
	e.computed = true
	e.prevTime = -1
	e.prevNodes = -1
	if t == 0 {
		// Base case: allocate a machines for one interval.
		e.cost = float64(a)
		return e.cost
	}
	best := math.Inf(1)
	bestB := -1
	for b := 1; b <= d.z; b++ {
		if c := d.subCost(t, b, a); c < best {
			best = c
			bestB = b
		}
	}
	e.cost = best
	if bestB >= 0 {
		e.prevTime = t - d.moveSlots(bestB, a)
		e.prevNodes = bestB
	}
	return e.cost
}

// subCost implements Algorithm 3: minimum cost of a sequence ending at slot
// t whose last move goes from b to a machines.
func (d *dp) subCost(t, b, a int) float64 {
	slots := d.moveSlots(b, a)
	start := t - slots
	if start < 0 {
		// The move would need to start in the past (Alg 3 lines 3–5).
		return math.Inf(1)
	}
	// During every slot of the move, predicted load must stay within the
	// effective capacity of the partially migrated system (lines 6–9).
	for i := 1; i <= slots; i++ {
		f := float64(i) / float64(slots)
		if d.load[start+i] > d.p.EffCap(b, a, f) {
			return math.Inf(1)
		}
	}
	return d.cost(start, b) + d.moveCost(b, a)
}

// reconstruct walks the memo table backwards from (t, n) and returns the
// move sequence in forward order (Alg 1 lines 6–11).
func (d *dp) reconstruct(t, n int) []Move {
	var moves []Move
	for t > 0 {
		e := d.memo[t][n]
		moves = append(moves, Move{Start: e.prevTime, End: t, From: e.prevNodes, To: n})
		t, n = e.prevTime, e.prevNodes
	}
	// Reverse in place.
	for i, j := 0, len(moves)-1; i < j; i, j = i+1, j-1 {
		moves[i], moves[j] = moves[j], moves[i]
	}
	return moves
}
