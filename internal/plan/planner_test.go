package plan

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestBestMovesFlatLowLoadScalesIn(t *testing.T) {
	p := Params{Q: 285, QHat: 350, D: 6, PartitionsPerNode: 1}
	// 4 machines but load fits on 1: the planner should scale in.
	load := make([]float64, 13)
	for i := range load {
		load[i] = 200
	}
	pl, err := BestMoves(load, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(pl, load, 4, p); err != nil {
		t.Fatal(err)
	}
	if pl.FinalNodes != 1 {
		t.Errorf("FinalNodes = %d, want 1", pl.FinalNodes)
	}
}

func TestBestMovesHoldsWhenNothingToDo(t *testing.T) {
	p := testParams()
	load := make([]float64, 7)
	for i := range load {
		load[i] = 280 // just under one machine's target capacity
	}
	pl, err := BestMoves(load, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(pl, load, 1, p); err != nil {
		t.Fatal(err)
	}
	if pl.FinalNodes != 1 {
		t.Errorf("FinalNodes = %d, want 1", pl.FinalNodes)
	}
	if _, acted := pl.FirstAction(); acted {
		t.Errorf("plan should be all no-ops, got %v", pl.Moves)
	}
	// Cost: one machine per slot for horizon slots, plus the base interval.
	if want := float64(len(load)); !almostEqual(pl.Cost, want, 1e-9) {
		t.Errorf("Cost = %v, want %v", pl.Cost, want)
	}
}

func TestBestMovesScalesOutBeforeSpike(t *testing.T) {
	p := Params{Q: 100, D: 8, PartitionsPerNode: 1}
	// Load jumps from 80 to 380 at slot 8: needs 4 machines by then.
	load := make([]float64, 13)
	for i := range load {
		if i < 8 {
			load[i] = 80
		} else {
			load[i] = 380
		}
	}
	pl, err := BestMoves(load, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(pl, load, 1, p); err != nil {
		t.Fatal(err)
	}
	if pl.FinalNodes != 4 {
		t.Errorf("FinalNodes = %d, want 4", pl.FinalNodes)
	}
	move, acted := pl.FirstAction()
	if !acted {
		t.Fatal("expected a scale-out move")
	}
	if move.To <= move.From {
		t.Errorf("first action should scale out, got %v", move)
	}
	// The move must complete by slot 8 (when the spike hits) but start as
	// late as possible: scaling out with eff-cap constraints cannot finish
	// earlier than its own duration, and delaying saves machine-slots.
	if move.End > 8 {
		t.Errorf("scale-out finishes at %d, after the spike at 8", move.End)
	}
	if move.Start == 0 && pl.Moves[0] == move {
		// Starting immediately is only optimal if the move needs all slots.
		if move.End-move.Start < 8 {
			t.Errorf("scale-out %v starts immediately but could be delayed", move)
		}
	}
}

func TestBestMovesInfeasible(t *testing.T) {
	p := Params{Q: 100, D: 1000, PartitionsPerNode: 1}
	// Immediate 10× spike: nothing can migrate fast enough.
	load := []float64{90, 1000, 1000}
	_, err := BestMoves(load, 1, p)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestBestMovesCurrentOverload(t *testing.T) {
	p := Params{Q: 100, D: 1, PartitionsPerNode: 1}
	// Already overloaded at t=0: no plan can fix the present.
	load := []float64{500, 100, 100}
	_, err := BestMoves(load, 1, p)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestBestMovesValidation(t *testing.T) {
	p := testParams()
	if _, err := BestMoves([]float64{1}, 1, p); err == nil {
		t.Error("too-short load should fail")
	}
	if _, err := BestMoves([]float64{1, 2}, 0, p); err == nil {
		t.Error("n0=0 should fail")
	}
	if _, err := BestMoves([]float64{1, -2}, 1, p); err == nil {
		t.Error("negative load should fail")
	}
	if _, err := BestMoves([]float64{1, math.NaN()}, 1, p); err == nil {
		t.Error("NaN load should fail")
	}
	bad := Params{}
	if _, err := BestMoves([]float64{1, 2}, 1, bad); err == nil {
		t.Error("invalid params should fail")
	}
}

// bruteForceByFinal exhaustively searches all move sequences and returns,
// for each final machine count 1..z, the minimum cost of a feasible plan
// ending there (Inf if none), mirroring the DP's cost semantics.
func bruteForceByFinal(load []float64, n0, z int, p Params) []float64 {
	horizon := len(load) - 1
	out := make([]float64, z+1)
	for i := range out {
		out[i] = math.Inf(1)
	}
	if load[0] > p.Cap(n0) {
		return out
	}
	d := &dp{load: load, n0: n0, z: z, p: p, memo: newMemoTable(horizon, z)}
	var search func(t, n int, acc float64)
	search = func(t, n int, acc float64) {
		if t == horizon {
			if acc < out[n] {
				out[n] = acc
			}
			return
		}
		for a := 1; a <= z; a++ {
			slots := d.moveSlots(n, a)
			if t+slots > horizon {
				continue
			}
			ok := true
			for i := 1; i <= slots; i++ {
				f := float64(i) / float64(slots)
				if load[t+i] > p.EffCap(n, a, f) {
					ok = false
					break
				}
			}
			if ok {
				search(t+slots, a, acc+d.moveCost(n, a))
			}
		}
	}
	search(0, n0, float64(n0))
	return out
}

func TestBestMovesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := Params{Q: 100, D: 5, PartitionsPerNode: 1}
	for trial := 0; trial < 200; trial++ {
		horizon := 3 + rng.Intn(4)
		load := make([]float64, horizon+1)
		for i := range load {
			load[i] = rng.Float64() * 450
		}
		n0 := 1 + rng.Intn(4)
		load[0] = math.Min(load[0], p.Cap(n0)) // keep the present feasible

		maxLoad := 0.0
		for _, v := range load {
			maxLoad = math.Max(maxLoad, v)
		}
		z := maxInt(p.RequiredMachines(maxLoad), n0)
		byFinal := bruteForceByFinal(load, n0, z, p)
		feasibleFinal := -1
		globalMin := math.Inf(1)
		for f := 1; f <= z; f++ {
			if !math.IsInf(byFinal[f], 1) && feasibleFinal < 0 {
				feasibleFinal = f
			}
			globalMin = math.Min(globalMin, byFinal[f])
		}

		pl, err := BestMoves(load, n0, p)
		plMin, errMin := BestMovesMinCost(load, n0, p)
		if feasibleFinal < 0 {
			if !errors.Is(err, ErrInfeasible) || !errors.Is(errMin, ErrInfeasible) {
				t.Fatalf("trial %d: brute force infeasible but planner returned err=%v / %v", trial, err, errMin)
			}
			continue
		}
		if err != nil || errMin != nil {
			t.Fatalf("trial %d: planner failed (%v / %v) but brute force feasible (load=%v n0=%d)",
				trial, err, errMin, load, n0)
		}
		if err := ValidatePlan(pl, load, n0, p); err != nil {
			t.Fatalf("trial %d: invalid plan: %v", trial, err)
		}
		if err := ValidatePlan(plMin, load, n0, p); err != nil {
			t.Fatalf("trial %d: invalid min-cost plan: %v", trial, err)
		}
		// Paper semantics: fewest feasible final machines, minimum cost for
		// that final.
		if pl.FinalNodes != feasibleFinal {
			t.Errorf("trial %d: FinalNodes = %d, brute force smallest feasible %d",
				trial, pl.FinalNodes, feasibleFinal)
		}
		if !almostEqual(pl.Cost, byFinal[feasibleFinal], 1e-6) {
			t.Errorf("trial %d: DP cost %v != brute force %v for final %d (load=%v n0=%d)",
				trial, pl.Cost, byFinal[feasibleFinal], feasibleFinal, load, n0)
		}
		// Extension semantics: global minimum cost over all finals.
		if !almostEqual(plMin.Cost, globalMin, 1e-6) {
			t.Errorf("trial %d: min-cost DP %v != brute force global min %v (load=%v n0=%d)",
				trial, plMin.Cost, globalMin, load, n0)
		}
		if plMin.Cost > pl.Cost+1e-9 {
			t.Errorf("trial %d: min-cost plan %v costs more than paper plan %v", trial, plMin.Cost, pl.Cost)
		}
	}
}

func TestBestMovesDelaysScaleOut(t *testing.T) {
	// Minimizing cost requires scale-out moves to be delayed as much as
	// possible (§4.3): with a spike far in the future, the early slots run
	// on the small cluster.
	p := Params{Q: 100, D: 4, PartitionsPerNode: 1}
	load := make([]float64, 21)
	for i := range load {
		if i < 18 {
			load[i] = 90
		} else {
			load[i] = 190
		}
	}
	pl, err := BestMoves(load, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(pl, load, 1, p); err != nil {
		t.Fatal(err)
	}
	move, acted := pl.FirstAction()
	if !acted {
		t.Fatal("expected a scale-out")
	}
	// 1→2 takes D/1·(1−1/2) = 2 slots; the latest completion is slot 17,
	// so the latest start is 15 — the planner must not start before then.
	if move.Start < 15 {
		t.Errorf("scale-out starts at %d; should be delayed to 15", move.Start)
	}
}

func TestFirstAction(t *testing.T) {
	pl := &Plan{Moves: []Move{
		{Start: 0, End: 1, From: 2, To: 2},
		{Start: 1, End: 3, From: 2, To: 4},
	}}
	m, ok := pl.FirstAction()
	if !ok || m.From != 2 || m.To != 4 {
		t.Errorf("FirstAction = %v, %v", m, ok)
	}
	empty := &Plan{Moves: []Move{{Start: 0, End: 1, From: 2, To: 2}}}
	if _, ok := empty.FirstAction(); ok {
		t.Error("all-noop plan should report no action")
	}
}

func TestMoveString(t *testing.T) {
	if got := (Move{0, 2, 3, 5}).String(); got != "[0,2] 3→5" {
		t.Errorf("String = %q", got)
	}
	if got := (Move{1, 2, 3, 3}).String(); got != "[1,2] hold 3" {
		t.Errorf("String = %q", got)
	}
}
