package plan

import (
	"fmt"
	"math"
)

// ValidatePlan checks that a plan produced for the given load and initial
// machine count is well-formed and feasible: the moves tile [0, T]
// contiguously starting from n0 machines, machine counts chain correctly,
// and the predicted load never exceeds the (effective) capacity at any
// slot, including mid-move.
func ValidatePlan(pl *Plan, load []float64, n0 int, p Params) error {
	if pl == nil {
		return fmt.Errorf("plan: nil plan")
	}
	horizon := len(load) - 1
	if len(pl.Moves) == 0 {
		return fmt.Errorf("plan: empty move list")
	}
	if load[0] > p.Cap(n0) {
		return fmt.Errorf("plan: current load %g already exceeds capacity of %d machines", load[0], n0)
	}
	t, n := 0, n0
	for i, m := range pl.Moves {
		if m.Start != t {
			return fmt.Errorf("plan: move %d starts at %d, want %d", i, m.Start, t)
		}
		if m.From != n {
			return fmt.Errorf("plan: move %d starts from %d machines, want %d", i, m.From, n)
		}
		if m.End <= m.Start {
			return fmt.Errorf("plan: move %d has non-positive duration", i)
		}
		slots := m.End - m.Start
		for j := 1; j <= slots; j++ {
			f := float64(j) / float64(slots)
			if load[m.Start+j] > p.EffCap(m.From, m.To, f)+1e-9 {
				return fmt.Errorf("plan: move %d leaves slot %d underprovisioned (load %g > eff-cap %g)",
					i, m.Start+j, load[m.Start+j], p.EffCap(m.From, m.To, f))
			}
		}
		t, n = m.End, m.To
	}
	if t != horizon {
		return fmt.Errorf("plan: moves end at %d, want horizon %d", t, horizon)
	}
	if n != pl.FinalNodes {
		return fmt.Errorf("plan: moves end with %d machines, FinalNodes says %d", n, pl.FinalNodes)
	}
	if math.IsInf(pl.Cost, 1) || math.IsNaN(pl.Cost) || pl.Cost <= 0 {
		return fmt.Errorf("plan: invalid cost %g", pl.Cost)
	}
	return nil
}
