package plan_test

import (
	"fmt"

	"pstore/internal/plan"
)

// ExampleBestMoves plans reconfigurations for a predicted ramp: the
// scale-out is delayed as late as the migration time allows.
func ExampleBestMoves() {
	params := plan.Params{
		Q:                 100, // target txns/slot per server
		QHat:              125,
		D:                 4, // full-database single-thread move time, in slots
		PartitionsPerNode: 1,
	}
	// load[0] is the current load; load[1..] the predictions.
	load := []float64{90, 90, 90, 90, 120, 160, 190, 190}
	p, err := plan.BestMoves(load, 1, params)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, m := range p.Moves {
		if !m.IsNoop() {
			fmt.Println(m)
		}
	}
	fmt.Printf("cost %.1f machine-slots, final %d machines\n", p.Cost, p.FinalNodes)
	// Output:
	// [3,5] 1→2
	// cost 12.0 machine-slots, final 2 machines
}

// ExampleSchedule prints the paper's Table 1: the three-phase schedule of
// parallel migrations when scaling from 3 to 14 machines.
func ExampleSchedule() {
	rounds := plan.Schedule(3, 14)
	fmt.Println(len(rounds), "rounds; first round:")
	for _, t := range rounds[0] {
		fmt.Printf("%d→%d ", t.From, t.To)
	}
	fmt.Println()
	// Output:
	// 11 rounds; first round:
	// 1→4 2→5 3→6
}

// ExampleParams_EffCap shows why the planner must account for effective
// capacity: mid-way through a 3→14 scale-out, 9 machines are allocated but
// the system only serves what the still-draining original 3 can route.
func ExampleParams_EffCap() {
	params := plan.Params{Q: 285, QHat: 350, D: 1, PartitionsPerNode: 1}
	fmt.Printf("cap(14)          = %.0f\n", params.Cap(14))
	fmt.Printf("eff-cap at f=0.5 = %.0f\n", params.EffCap(3, 14, 0.5))
	// Output:
	// cap(14)          = 3990
	// eff-cap at f=0.5 = 1408
}
