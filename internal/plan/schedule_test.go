package plan

import (
	"testing"
	"testing/quick"
)

func TestScheduleTable1Structure(t *testing.T) {
	// Table 1: scaling 3 → 14 completes in 11 rounds with 3 parallel
	// transfers each, machines allocated in the three-phase pattern:
	// 4–6 in rounds 1–3, 7–9 in rounds 4–6, 10–12 in rounds 7–8 (partially
	// filled), 13–14 from round 9.
	rounds := Schedule(3, 14)
	if len(rounds) != 11 {
		t.Fatalf("rounds = %d, want 11", len(rounds))
	}
	if err := VerifySchedule(3, 14, rounds); err != nil {
		t.Fatal(err)
	}
	for i, r := range rounds {
		if len(r) != 3 {
			t.Errorf("round %d has %d transfers, want 3 (all senders busy)", i+1, len(r))
		}
	}
	firstRecv := make(map[int]int)
	for i, r := range rounds {
		for _, tr := range r {
			if _, ok := firstRecv[tr.To]; !ok {
				firstRecv[tr.To] = i + 1
			}
		}
	}
	wantPhase := map[int][2]int{
		4: {1, 1}, 5: {1, 1}, 6: {1, 1},
		7: {4, 4}, 8: {4, 4}, 9: {4, 4},
		10: {7, 8}, 11: {7, 8}, 12: {7, 8},
		13: {9, 11}, 14: {9, 11},
	}
	for m, bounds := range wantPhase {
		got, ok := firstRecv[m]
		if !ok {
			t.Errorf("machine %d never receives", m)
			continue
		}
		if got < bounds[0] || got > bounds[1] {
			t.Errorf("machine %d first receives in round %d, want within %v", m, got, bounds)
		}
	}
}

func TestScheduleCase1AllAtOnce(t *testing.T) {
	// 3 → 5 (Fig 4a): both new machines receive from round 1.
	rounds := Schedule(3, 5)
	if err := VerifySchedule(3, 5, rounds); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(rounds))
	}
	seen := make(map[int]bool)
	for _, tr := range rounds[0] {
		seen[tr.To] = true
	}
	if !seen[4] || !seen[5] {
		t.Errorf("round 1 receivers = %v, want both 4 and 5", rounds[0])
	}
}

func TestScheduleCase2Blocks(t *testing.T) {
	// 3 → 9 (Fig 4b): two blocks of 3, the second starting at round 4.
	rounds := Schedule(3, 9)
	if err := VerifySchedule(3, 9, rounds); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 6 {
		t.Fatalf("rounds = %d, want 6", len(rounds))
	}
	for i, r := range rounds {
		for _, tr := range r {
			if i < 3 && tr.To > 6 {
				t.Errorf("round %d sends to %d before its block", i+1, tr.To)
			}
			if i >= 3 && tr.To <= 6 {
				t.Errorf("round %d sends to %d after its block completed", i+1, tr.To)
			}
		}
	}
}

func TestScheduleNoop(t *testing.T) {
	if rounds := Schedule(4, 4); rounds != nil {
		t.Errorf("Schedule(4,4) = %v, want nil", rounds)
	}
	if err := VerifySchedule(4, 4, nil); err != nil {
		t.Error(err)
	}
	if Schedule(0, 3) != nil || Schedule(3, 0) != nil {
		t.Error("invalid machine counts should produce nil")
	}
}

func TestScheduleScaleIn(t *testing.T) {
	rounds := Schedule(14, 3)
	if err := VerifySchedule(14, 3, rounds); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 11 {
		t.Fatalf("rounds = %d, want 11", len(rounds))
	}
	// Mirror of scale-out: the machines that would be allocated last on the
	// way out are released first on the way in.
	lastSend := make(map[int]int)
	for i, r := range rounds {
		for _, tr := range r {
			lastSend[tr.From] = i + 1
		}
	}
	// Machines 13–14 (allocated last in 3→14) finish sending by round 3.
	for _, m := range []int{13, 14} {
		if lastSend[m] > 3 {
			t.Errorf("retiree %d still sending in round %d, want ≤ 3", m, lastSend[m])
		}
	}
	// Machines 4–6 (first allocated in 3→14) send until the final rounds.
	for _, m := range []int{4, 5, 6} {
		if lastSend[m] <= 8 {
			t.Errorf("retiree %d finished at round %d, want > 8", m, lastSend[m])
		}
	}
}

func TestSchedulePropertyAllPairs(t *testing.T) {
	f := func(bRaw, aRaw uint8) bool {
		b, a := int(bRaw%25)+1, int(aRaw%25)+1
		return VerifySchedule(b, a, Schedule(b, a)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestScheduleMatchesAllocationSegments(t *testing.T) {
	// The machine count implied by the schedule's first-receive rounds must
	// match the analytic allocation step function that Algorithm 4
	// integrates — on scale-out moves with more than one round per level.
	p := testParams()
	for b := 1; b <= 12; b++ {
		for a := b + 1; a <= 16; a++ {
			rounds := Schedule(b, a)
			segs := p.AllocationSegments(b, a)
			total := len(rounds)
			for i := range rounds {
				// Machines allocated during round i+1: b plus every
				// receiver whose first transfer is in rounds 1..i+1.
				alloc := make(map[int]bool)
				for j := 0; j <= i; j++ {
					for _, tr := range rounds[j] {
						alloc[tr.To] = true
					}
				}
				got := b + len(alloc)
				mid := (float64(i) + 0.5) / float64(total)
				want := 0
				for _, s := range segs {
					if mid >= s.FracStart && mid < s.FracEnd {
						want = s.Machines
						break
					}
				}
				if got != want {
					t.Errorf("(%d→%d) round %d: schedule says %d machines, segments say %d",
						b, a, i+1, got, want)
				}
			}
		}
	}
}

func TestRoundsRequired(t *testing.T) {
	cases := []struct{ b, a, want int }{
		{3, 14, 11}, {3, 5, 3}, {3, 9, 6}, {14, 3, 11}, {4, 4, 0}, {1, 2, 1},
	}
	for _, c := range cases {
		if got := RoundsRequired(c.b, c.a); got != c.want {
			t.Errorf("RoundsRequired(%d,%d) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
}
