package plan

import (
	"fmt"
	"sort"
)

// Transfer is one sender→receiver data transfer between machines. Machines
// are numbered 1..max(B,A); in a scale-out the original machines are
// 1..B and new machines B+1..A, in a scale-in the survivors are 1..A and
// the retiring machines A+1..B.
type Transfer struct {
	From, To int
}

// Round is a set of transfers that run in parallel. Within a round every
// machine takes part in at most one transfer (§4.4.1: each partition
// transfers with at most one other partition at a time).
type Round []Transfer

// Schedule produces the per-round sender→receiver schedule for a move from
// b to a machines with one partition per machine, using the three
// strategies of §4.4.1 (Table 1 is Schedule(3, 14)). Every sender–receiver
// machine pair exchanges data exactly once, each transfer carrying an equal
// share, so the move finishes in the minimum number of rounds
// max(min(b,a), |b−a|) while machines are allocated as late (or released as
// early) as possible. With P>1 partitions per machine, each machine-level
// transfer stands for P parallel partition transfers.
func Schedule(b, a int) []Round {
	switch {
	case b <= 0 || a <= 0:
		return nil
	case b == a:
		return nil
	case b < a:
		return scaleOutSchedule(b, a)
	default:
		return scaleInSchedule(b, a)
	}
}

// RoundsRequired returns the number of rounds Schedule(b, a) produces:
// max(s, Δ) where s = min(b,a) and Δ = |b−a|, or 0 when b == a.
func RoundsRequired(b, a int) int {
	if b == a {
		return 0
	}
	s := minInt(b, a)
	delta := maxInt(b, a) - s
	return maxInt(s, delta)
}

// scaleOutSchedule builds the schedule for b → a with b < a.
func scaleOutSchedule(b, a int) []Round {
	s := b
	delta := a - b
	if s >= delta {
		// Case 1: all new machines added at once; senders rotate.
		rounds := make([]Round, s)
		for k := 0; k < s; k++ {
			for j := 0; j < delta; j++ {
				sender := (j+k)%s + 1
				rounds[k] = append(rounds[k], Transfer{From: sender, To: b + 1 + j})
			}
		}
		return rounds
	}
	r := delta % s
	var rounds []Round
	fullBlocks := delta / s
	if r != 0 {
		fullBlocks-- // case 3 phase 1 leaves room for phases 2 and 3
	}
	// Phase 1 (or the whole of case 2): blocks of s machines, each filled
	// completely over s rounds.
	for blk := 0; blk < fullBlocks; blk++ {
		base := b + blk*s
		for k := 0; k < s; k++ {
			var round Round
			for i := 1; i <= s; i++ {
				round = append(round, Transfer{From: i, To: base + (i-1+k)%s + 1})
			}
			rounds = append(rounds, round)
		}
	}
	if r == 0 {
		return rounds
	}
	// Phase 2: s machines added, filled r/s of the way.
	base2 := b + fullBlocks*s
	for k := 0; k < r; k++ {
		var round Round
		for i := 1; i <= s; i++ {
			round = append(round, Transfer{From: i, To: base2 + (i-1+k)%s + 1})
		}
		rounds = append(rounds, round)
	}
	// Phase 3: the final r machines are added, and the phase-2 machines
	// receive their missing transfers, packed by bipartite edge coloring so
	// every one of the s rounds keeps all senders busy.
	type edge struct{ from, to int }
	var edges []edge
	for i := 1; i <= s; i++ {
		// Missing phase-2 transfers of sender i: p_j with
		// (j-1-(i-1)) mod s ∈ [r, s).
		for k := r; k < s; k++ {
			j := (i - 1 + k) % s
			edges = append(edges, edge{from: i, to: base2 + j + 1})
		}
		// All transfers to the final r machines.
		for j := 0; j < r; j++ {
			edges = append(edges, edge{from: i, to: a - r + 1 + j})
		}
	}
	colors := colorBipartite(len(edges), s, func(e int) (int, int) {
		return edges[e].from, edges[e].to
	})
	phase3 := make([]Round, s)
	for e, c := range colors {
		phase3[c] = append(phase3[c], Transfer{From: edges[e].from, To: edges[e].to})
	}
	// Order phase-3 rounds so transfers to the final r machines start as
	// late as possible, preserving just-in-time allocation.
	sort.SliceStable(phase3, func(x, y int) bool {
		return countNew(phase3[x], a-r) < countNew(phase3[y], a-r)
	})
	for _, round := range phase3 {
		sort.Slice(round, func(x, y int) bool { return round[x].From < round[y].From })
		rounds = append(rounds, round)
	}
	return rounds
}

// countNew counts transfers in the round whose receiver is beyond the
// threshold machine ID.
func countNew(r Round, threshold int) int {
	n := 0
	for _, t := range r {
		if t.To > threshold {
			n++
		}
	}
	return n
}

// scaleInSchedule mirrors the scale-out schedule: a move from b to a with
// b > a is the time-reversal of the move from a to b with every transfer's
// direction flipped, which releases retiring machines as early as possible.
func scaleInSchedule(b, a int) []Round {
	out := scaleOutSchedule(a, b)
	rounds := make([]Round, len(out))
	for i, round := range out {
		flipped := make(Round, len(round))
		for j, t := range round {
			flipped[j] = Transfer{From: t.To, To: t.From}
		}
		rounds[len(out)-1-i] = flipped
	}
	return rounds
}

// colorBipartite properly edge-colors a bipartite multigraph with maxDeg
// colors. vertexOf maps an edge index to its two endpoint IDs (sides are
// implicit: endpoint IDs only need to be distinct per vertex). Returns the
// color of each edge.
func colorBipartite(nEdges, maxDeg int, vertexOf func(e int) (int, int)) []int {
	colors := make([]int, nEdges)
	// colorAt[v][c] = edge using color c at vertex v, or -1.
	colorAt := make(map[int][]int)
	at := func(v int) []int {
		if s, ok := colorAt[v]; ok {
			return s
		}
		s := make([]int, maxDeg)
		for i := range s {
			s[i] = -1
		}
		colorAt[v] = s
		return s
	}
	free := func(v int) int {
		for c, e := range at(v) {
			if e == -1 {
				return c
			}
		}
		return -1
	}
	for e := 0; e < nEdges; e++ {
		u, v := vertexOf(e)
		cu, cv := free(u), free(v)
		if cu != cv {
			// Swap colors cu/cv along the maximal alternating path starting
			// at v with a cu-colored edge. In a bipartite graph this path
			// cannot reach u, so afterwards cu is free at both u and v.
			var path []int
			cur, want := v, cu
			for {
				next := at(cur)[want]
				if next == -1 {
					break
				}
				path = append(path, next)
				x, y := vertexOf(next)
				if x == cur {
					cur = y
				} else {
					cur = x
				}
				want = other(cu, cv, want)
			}
			for _, pe := range path {
				x, y := vertexOf(pe)
				at(x)[colors[pe]] = -1
				at(y)[colors[pe]] = -1
			}
			for _, pe := range path {
				nc := other(cu, cv, colors[pe])
				colors[pe] = nc
				x, y := vertexOf(pe)
				at(x)[nc] = pe
				at(y)[nc] = pe
			}
		}
		colors[e] = cu
		at(u)[cu] = e
		at(v)[cu] = e
	}
	return colors
}

// other returns the element of {a, b} that is not x.
func other(a, b, x int) int {
	if x == a {
		return b
	}
	return a
}

// VerifySchedule checks the structural invariants of a schedule for a move
// from b to a machines: every sender–receiver machine pair appears exactly
// once, no machine takes part in two transfers within a round, and the
// round count is RoundsRequired(b, a).
func VerifySchedule(b, a int, rounds []Round) error {
	if b == a {
		if len(rounds) != 0 {
			return fmt.Errorf("plan: no-op move must have empty schedule, got %d rounds", len(rounds))
		}
		return nil
	}
	if got, want := len(rounds), RoundsRequired(b, a); got != want {
		return fmt.Errorf("plan: schedule has %d rounds, want %d", got, want)
	}
	var senders, receivers []int
	if b < a {
		for i := 1; i <= b; i++ {
			senders = append(senders, i)
		}
		for i := b + 1; i <= a; i++ {
			receivers = append(receivers, i)
		}
	} else {
		for i := a + 1; i <= b; i++ {
			senders = append(senders, i)
		}
		for i := 1; i <= a; i++ {
			receivers = append(receivers, i)
		}
	}
	isSender := make(map[int]bool)
	for _, s := range senders {
		isSender[s] = true
	}
	isReceiver := make(map[int]bool)
	for _, r := range receivers {
		isReceiver[r] = true
	}
	seen := make(map[Transfer]bool)
	for ri, round := range rounds {
		busy := make(map[int]bool)
		for _, t := range round {
			if !isSender[t.From] || !isReceiver[t.To] {
				return fmt.Errorf("plan: round %d transfer %d→%d has invalid roles", ri, t.From, t.To)
			}
			if busy[t.From] || busy[t.To] {
				return fmt.Errorf("plan: round %d machine reused in transfer %d→%d", ri, t.From, t.To)
			}
			busy[t.From] = true
			busy[t.To] = true
			if seen[t] {
				return fmt.Errorf("plan: duplicate transfer %d→%d", t.From, t.To)
			}
			seen[t] = true
		}
	}
	if want := len(senders) * len(receivers); len(seen) != want {
		return fmt.Errorf("plan: schedule has %d transfers, want %d", len(seen), want)
	}
	return nil
}
