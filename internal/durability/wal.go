// Package durability makes partitions restartable: a per-partition
// write-ahead *command log* (a logical log of stored-procedure invocations,
// valid because executors are deterministic serial H-Store-style threads),
// periodic snapshots built on the storage bucket encoding, log-segment
// rotation with truncation at snapshot boundaries, and a recovery path that
// loads the latest snapshot and replays the log tail through the procedure
// registry — the H-Store/VoltDB command-logging design (Malviya et al.).
//
// Writes are acknowledged by *group commit*: appends accumulate in an OS
// buffer and a background committer fsyncs them in batches (configurable
// interval and batch size), amortizing the fsync cost across transactions.
// A per-append sync mode exists for comparison (see
// BenchmarkDurabilityOverhead).
package durability

//pstore:deterministic — log records and snapshots are replayed and
// checksum-compared across crash/recovery runs; encoding must be byte-stable.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrClosed is returned for appends to a closed log.
var ErrClosed = errors.New("durability: log closed")

// Record kinds. A command log mostly holds transactions; bucket-in/out
// records make migration ownership handoffs durable, so a partition's log
// is self-contained: replaying it never needs another partition's history.
const (
	kindTxn       = 1 // a committed stored-procedure invocation
	kindBucketIn  = 2 // bucket received from a peer, full contents inline
	kindBucketOut = 3 // bucket handed off to a peer
	kindPut       = 4 // a direct row load (cluster.LoadRow through a feed)
)

// Exported record kinds for consumers of the tail reader (ReadFrom) — the
// replication feed re-encodes durable records as ship frames.
const (
	KindTxn       = kindTxn
	KindBucketIn  = kindBucketIn
	KindBucketOut = kindBucketOut
	KindPut       = kindPut
)

// Record is one durable log entry.
type Record struct {
	// Seq is the record's log sequence number, contiguous per partition.
	// It doubles as the replication LSN: a replica subscribed at LSN n can
	// be caught up from disk by streaming records with Seq > n.
	Seq  uint64            `json:"s,omitempty"`
	Kind int               `json:"k"`
	Proc string            `json:"p,omitempty"`
	Key  string            `json:"key,omitempty"`
	Tab  string            `json:"t,omitempty"` // kindPut's table
	Args map[string]string `json:"a,omitempty"`
	// Bucket and Data carry migration handoffs (kindBucketIn/kindBucketOut).
	Bucket int             `json:"b,omitempty"`
	Data   json.RawMessage `json:"d,omitempty"`
}

// walOptions tunes the log. Zero values select the defaults documented on
// Options.
type walOptions struct {
	syncEvery    bool
	syncInterval time.Duration
	batchSize    int
	segmentBytes int64
}

// wal is a segmented append-only record log with group commit. Appends come
// from a single writer (the partition's executor goroutine); the background
// committer is the only other goroutine touching the file, and all shared
// state is guarded by mu.
type wal struct {
	dir  string
	opts walOptions

	mu      sync.Mutex
	file    *os.File
	w       *bufio.Writer
	seg     int    // current segment number
	segSize int64  // bytes written to the current segment
	fileGen uint64 // bumped whenever file changes; written under mu AND syncMu
	pending []func(error)
	closed  bool
	crashed bool

	// syncMu serializes fsyncs that run outside mu (the pipelined half of
	// group commit, see flushDetachLocked/fsyncDetached) against segment
	// rotation and close, which retire the file handle. Lock order:
	// mu > syncMu — syncMu may be taken under mu, never the reverse.
	syncMu sync.Mutex
	genErr error // outcome of the sync that retired the last fileGen; guarded by syncMu

	wake chan struct{} // nudges the committer when a batch fills
	stop chan struct{}
	done chan struct{}
}

const (
	defaultSyncInterval = 2 * time.Millisecond
	defaultBatchSize    = 64
	defaultSegmentBytes = 4 << 20
	frameHeaderSize     = 8 // uint32 length + uint32 crc32
)

func segmentName(n int) string  { return fmt.Sprintf("wal-%08d.log", n) }
func snapshotName(n int) string { return fmt.Sprintf("snap-%08d.snap", n) }

// parseNumbered extracts N from names like prefix-N.ext.
func parseNumbered(name, prefix, ext string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ext)
	n := 0
	if mid == "" {
		return 0, false
	}
	for _, c := range mid {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// listNumbered returns the sorted segment/snapshot numbers in dir.
func listNumbered(dir, prefix, ext string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		if n, ok := parseNumbered(e.Name(), prefix, ext); ok {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out, nil
}

// openWAL opens the log in dir, starting a fresh segment after the highest
// existing one (recovery never appends to a possibly-torn tail).
func openWAL(dir string, opts walOptions) (*wal, error) {
	if opts.syncInterval <= 0 {
		opts.syncInterval = defaultSyncInterval
	}
	if opts.batchSize <= 0 {
		opts.batchSize = defaultBatchSize
	}
	if opts.segmentBytes <= 0 {
		opts.segmentBytes = defaultSegmentBytes
	}
	segs, err := listNumbered(dir, "wal-", ".log")
	if err != nil {
		return nil, err
	}
	next := 0
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	l := &wal{
		dir:  dir,
		opts: opts,
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if err := l.openSegmentLocked(next); err != nil {
		return nil, err
	}
	go l.committer()
	return l, nil
}

// openSegmentLocked switches writing to segment n. Callers hold mu (or own
// the log exclusively during open).
func (l *wal) openSegmentLocked(n int) error {
	if l.file != nil {
		if l.w != nil {
			if err := l.w.Flush(); err != nil {
				return err
			}
		}
		// Retiring the handle must be fenced against a pipelined fsync in
		// flight outside mu: sync-mark-close under syncMu, so a detached
		// fsync either beat the rotation or sees the generation bump and
		// skips the closed handle (this sync already covered its bytes).
		l.syncMu.Lock()
		err := l.file.Sync()
		if cerr := l.file.Close(); err == nil {
			err = cerr
		}
		l.fileGen++
		l.genErr = err
		l.syncMu.Unlock()
		if err != nil {
			return err
		}
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(n)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.file = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.seg = n
	l.segSize = 0
	return syncDir(l.dir)
}

// syncDir fsyncs a directory so renames/creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems reject fsync on directories; that is acceptable —
	// the data files themselves are synced.
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// append writes the record and registers onDurable to run after the next
// fsync covering it. onDurable may be nil (the caller will force a sync and
// does not need a callback).
func (l *wal) append(rec *Record, onDurable func(error)) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if _, err := l.w.Write(hdr[:]); err != nil {
		l.mu.Unlock()
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		l.mu.Unlock()
		return err
	}
	l.segSize += int64(frameHeaderSize + len(payload))
	rotate := l.segSize >= l.opts.segmentBytes
	if rotate {
		if err := l.openSegmentLocked(l.seg + 1); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	// Eager wake: the first callback of a batch starts a group commit
	// immediately instead of waiting out the sync-interval tick. Everything
	// appended while that commit's fsync is in flight (the committer holds
	// syncMu, not mu) accumulates into the next batch, so the batch size
	// self-tunes to the fsync latency and the timer only matters when the
	// log is idle.
	eager := onDurable != nil && len(l.pending) == 0
	if onDurable != nil {
		l.pending = append(l.pending, onDurable)
	}
	if l.opts.syncEvery {
		cbs, err := l.syncLocked()
		l.mu.Unlock()
		runDurableCbs(cbs, err)
		return err
	}
	full := len(l.pending) >= l.opts.batchSize
	l.mu.Unlock()
	if eager || full {
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	return nil
}

// requestSync registers cb to run after the next fsync covering everything
// appended so far and nudges the committer — the exported group-commit hook
// behind Manager.FlushAsync. Unlike sync it never waits for the fsync: a
// flush request means "tell me when everything to date is durable", which
// is exactly the coverage the pending-callback list already provides.
func (l *wal) requestSync(cb func(error)) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		cb(ErrClosed)
		return
	}
	l.pending = append(l.pending, cb)
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// sync forces buffered records to stable storage, acking their callbacks.
// The fsync runs outside mu, so appends proceed while it is in flight.
func (l *wal) sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	cbs, f, gen, err := l.flushDetachLocked()
	l.mu.Unlock()
	return l.fsyncDetached(cbs, f, gen, err)
}

// flushDetachLocked pushes buffered records to the OS and detaches the
// pending callbacks plus the file handle and generation they need fsynced,
// for the caller to complete OUTSIDE mu via fsyncDetached. Splitting flush
// from fsync is what pipelines group commit: appenders retake mu while the
// fsync — the slow half — runs, so batch N+1 accumulates during batch N's
// fsync instead of queueing behind it.
func (l *wal) flushDetachLocked() (cbs []func(error), f *os.File, gen uint64, err error) {
	err = l.w.Flush()
	cbs = l.pending
	l.pending = nil
	return cbs, l.file, l.fileGen, err
}

// fsyncDetached completes a detached flush: fsync outside mu, then deliver
// the outcome to the callbacks. If the handle was retired since the flush
// (generation mismatch — rotation, close or crash), its retiring sync
// already decided the fate of the flushed bytes, so the outcome of THAT
// sync is delivered instead of fsyncing a closed handle.
func (l *wal) fsyncDetached(cbs []func(error), f *os.File, gen uint64, err error) error {
	l.syncMu.Lock()
	if err == nil {
		if gen == l.fileGen {
			err = f.Sync()
		} else {
			err = l.genErr
		}
	}
	l.syncMu.Unlock()
	runDurableCbs(cbs, err)
	return err
}

// syncLocked flushes and fsyncs under mu, detaching the pending durable
// callbacks for the CALLER to run after releasing mu. Callbacks must never
// run under the log's mutex: a replication feed's callback takes the feed's
// own lock, which the feed may hold while appending here — running the
// callback inline would deadlock.
func (l *wal) syncLocked() ([]func(error), error) {
	var err error
	if ferr := l.w.Flush(); ferr != nil {
		err = ferr
	}
	if err == nil {
		if serr := l.file.Sync(); serr != nil {
			err = serr
		}
	}
	cbs := l.pending
	l.pending = nil
	return cbs, err
}

// runDurableCbs delivers a sync's outcome to its detached callbacks.
func runDurableCbs(cbs []func(error), err error) {
	for _, cb := range cbs {
		cb(err)
	}
}

// committer is the group-commit loop: it syncs on a timer and whenever a
// batch fills.
func (l *wal) committer() {
	defer close(l.done)
	ticker := time.NewTicker(l.opts.syncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-ticker.C:
		case <-l.wake:
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		if len(l.pending) == 0 && l.w.Buffered() == 0 {
			l.mu.Unlock()
			continue
		}
		cbs, f, gen, err := l.flushDetachLocked()
		l.mu.Unlock()
		l.fsyncDetached(cbs, f, gen, err)
	}
}

// rotate closes the current segment and starts the next, returning the new
// segment's number. Pending records are synced first, so everything strictly
// before the returned segment is durable.
func (l *wal) rotate() (int, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	cbs, err := l.syncLocked()
	if err == nil {
		err = l.openSegmentLocked(l.seg + 1)
	}
	seg := l.seg
	l.mu.Unlock()
	runDurableCbs(cbs, err)
	if err != nil {
		return 0, err
	}
	return seg, nil
}

// truncateBefore deletes segments numbered below seg (the snapshot
// boundary).
func (l *wal) truncateBefore(seg int) error {
	segs, err := listNumbered(l.dir, "wal-", ".log")
	if err != nil {
		return err
	}
	for _, n := range segs {
		if n < seg {
			if err := os.Remove(filepath.Join(l.dir, segmentName(n))); err != nil {
				return err
			}
		}
	}
	return syncDir(l.dir)
}

// close flushes and closes the log. Safe to call twice.
func (l *wal) close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	var cbs []func(error)
	if !l.crashed {
		cbs, err = l.syncLocked()
		l.syncMu.Lock()
		if cerr := l.file.Close(); err == nil {
			err = cerr
		}
		l.fileGen++
		l.genErr = err
		l.syncMu.Unlock()
	}
	l.mu.Unlock()
	runDurableCbs(cbs, err)
	close(l.stop)
	<-l.done
	return err
}

// crash abandons buffered (un-fsynced) data and closes the file without
// flushing — a test hook simulating the process dying. Acked records are
// already on disk; everything still in the bufio buffer is lost, exactly
// like a kill -9.
func (l *wal) crash() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.crashed = true
	cbs := l.pending
	l.pending = nil
	l.syncMu.Lock()
	l.file.Close() // drop the bufio buffer on the floor
	l.fileGen++
	l.genErr = ErrClosed // un-fsynced flushed bytes are lost, like the buffer
	l.syncMu.Unlock()
	l.mu.Unlock()
	for _, cb := range cbs {
		cb(ErrClosed)
	}
	close(l.stop)
	<-l.done
}

// replaySegments streams every intact record of the segments numbered ≥
// fromSeg, in order, to fn. A corrupt or torn record ends the replay of the
// whole log silently (torn tail semantics): nothing after it was
// acknowledged, so nothing after it may be replayed either.
func replaySegments(dir string, fromSeg int, fn func(*Record) error) error {
	segs, err := listNumbered(dir, "wal-", ".log")
	if err != nil {
		return err
	}
	for _, n := range segs {
		if n < fromSeg {
			continue
		}
		intact, err := replayOneSegment(filepath.Join(dir, segmentName(n)), fn)
		if err != nil {
			return err
		}
		if !intact {
			return nil // torn tail: ignore any later segments too
		}
	}
	return nil
}

// replayOneSegment reads one segment, reporting whether it ended cleanly.
func replayOneSegment(path string, fn func(*Record) error) (intact bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [frameHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return true, nil
			}
			return false, nil // torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 1<<30 {
			return false, nil // garbage length: treat as torn
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return false, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return false, nil // corrupt record
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return false, fmt.Errorf("durability: undecodable record in %s: %w", path, err)
		}
		if err := fn(&rec); err != nil {
			return false, err
		}
	}
}
