package durability

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"time"

	"pstore/internal/engine"
	"pstore/internal/storage"
)

// testRegistry registers two deterministic procedures: "set" writes
// arg v into table t, "inc" increments an integer counter.
func testRegistry() *engine.Registry {
	reg := engine.NewRegistry()
	reg.Register("set", func(tx *engine.Txn) error {
		return tx.Put("t", tx.Key, map[string]string{"v": tx.Arg("v")})
	})
	reg.Register("inc", func(tx *engine.Txn) error {
		row, ok, err := tx.Get("t", tx.Key)
		if err != nil {
			return err
		}
		n := 0
		if ok {
			n, _ = strconv.Atoi(row.Cols["n"])
		}
		return tx.Put("t", tx.Key, map[string]string{"n": strconv.Itoa(n + 1)})
	})
	return reg
}

func allBuckets(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func newTestPartition(nBuckets int) *storage.Partition {
	p := storage.NewPartition(0, nBuckets, allBuckets(nBuckets))
	p.CreateTable("t")
	return p
}

// appendSync appends a command and waits for its durable ack.
func appendSync(t *testing.T, m *Manager, proc, key string, args map[string]string) {
	t.Helper()
	ch := make(chan error, 1)
	m.Append(proc, key, args, func(_ uint64, err error) { ch <- err })
	if err := <-ch; err != nil {
		t.Fatalf("append %s(%s): %v", proc, key, err)
	}
}

func openTestManager(t *testing.T, dir string, opts Options) *Manager {
	t.Helper()
	m, err := Open(dir, 0, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

func getVal(t *testing.T, p *storage.Partition, key string) string {
	t.Helper()
	row, ok, err := p.Get("t", key)
	if err != nil {
		t.Fatalf("Get %s: %v", key, err)
	}
	if !ok {
		return ""
	}
	if v, ok := row.Cols["v"]; ok {
		return v
	}
	return row.Cols["n"]
}

func TestAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupCommitInterval: 500 * time.Microsecond}
	m := openTestManager(t, dir, opts)
	for i := 0; i < 50; i++ {
		appendSync(t, m, "set", fmt.Sprintf("k%d", i), map[string]string{"v": fmt.Sprintf("v%d", i)})
	}
	for i := 0; i < 30; i++ {
		appendSync(t, m, "inc", "counter", nil)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	part := newTestPartition(8)
	stats, err := m2.Recover(part, testRegistry())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Txns != 80 {
		t.Errorf("replayed %d txns, want 80", stats.Txns)
	}
	if stats.SnapshotLoaded {
		t.Errorf("unexpected snapshot")
	}
	for i := 0; i < 50; i++ {
		if got, want := getVal(t, part, fmt.Sprintf("k%d", i)), fmt.Sprintf("v%d", i); got != want {
			t.Fatalf("k%d = %q, want %q", i, got, want)
		}
	}
	if got := getVal(t, part, "counter"); got != "30" {
		t.Errorf("counter = %q, want 30", got)
	}
}

func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupCommitInterval: 500 * time.Microsecond}
	m := openTestManager(t, dir, opts)
	part := newTestPartition(8)
	reg := testRegistry()
	apply := func(proc, key string, args map[string]string) {
		if err := engine.ReplayTxn(reg, part, proc, key, args); err != nil {
			t.Fatalf("apply: %v", err)
		}
		appendSync(t, m, proc, key, args)
	}
	for i := 0; i < 40; i++ {
		apply("inc", "a", nil)
	}
	if err := m.Snapshot(part); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Pre-snapshot segments must be gone.
	segs, err := listNumbered(dir, "wal-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("segments after snapshot: %v, want exactly the active one", segs)
	}
	// Log tail after the snapshot.
	for i := 0; i < 7; i++ {
		apply("inc", "a", nil)
	}
	m.Close()

	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	part2 := storage.NewPartition(0, 8, nil) // recovery starts unowned
	part2.CreateTable("t")
	stats, err := m2.Recover(part2, reg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !stats.SnapshotLoaded {
		t.Errorf("snapshot not loaded")
	}
	if stats.Txns != 7 {
		t.Errorf("replayed %d txns, want 7 (the tail)", stats.Txns)
	}
	if got := getVal(t, part2, "a"); got != "47" {
		t.Errorf("a = %q, want 47", got)
	}
	if len(part2.OwnedBuckets()) != 8 {
		t.Errorf("recovered %d buckets, want 8", len(part2.OwnedBuckets()))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupCommitInterval: 500 * time.Microsecond, SegmentBytes: 512}
	m := openTestManager(t, dir, opts)
	for i := 0; i < 100; i++ {
		appendSync(t, m, "set", fmt.Sprintf("k%d", i), map[string]string{"v": "x"})
	}
	m.Close()
	segs, err := listNumbered(dir, "wal-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce several", len(segs))
	}
	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	part := newTestPartition(8)
	stats, err := m2.Recover(part, testRegistry())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Txns != 100 {
		t.Errorf("replayed %d txns across segments, want 100", stats.Txns)
	}
}

func TestTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupCommitInterval: 500 * time.Microsecond}
	m := openTestManager(t, dir, opts)
	for i := 0; i < 10; i++ {
		appendSync(t, m, "inc", "a", nil)
	}
	m.Close()
	// Corrupt the final record's payload in place.
	segs, _ := listNumbered(dir, "wal-", ".log")
	path := filepath.Join(dir, segmentName(segs[len(segs)-1]))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	part := newTestPartition(8)
	stats, err := m2.Recover(part, testRegistry())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Txns != 9 {
		t.Errorf("replayed %d txns, want 9 (torn final record dropped)", stats.Txns)
	}
	if got := getVal(t, part, "a"); got != "9" {
		t.Errorf("a = %q, want 9", got)
	}
}

func TestBucketHandoffReplay(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupCommitInterval: 500 * time.Microsecond}
	m := openTestManager(t, dir, opts)
	// Receive a bucket with contents, then hand another away.
	in := &storage.BucketData{Bucket: 3, Tables: map[string][]storage.Row{
		"t": {{Key: "migrated", Cols: map[string]string{"v": "yes"}}},
	}}
	if err := m.LogBucketIn(in); err != nil {
		t.Fatalf("LogBucketIn: %v", err)
	}
	if err := m.LogBucketOut(5); err != nil {
		t.Fatalf("LogBucketOut: %v", err)
	}
	m.Close()

	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	// Partition starts owning buckets 5 only (e.g. from an older snapshot —
	// here, none, so seed it manually through a bucket apply).
	part := storage.NewPartition(0, 8, nil)
	part.CreateTable("t")
	if err := part.ApplyBucket(&storage.BucketData{Bucket: 5, Tables: map[string][]storage.Row{}}); err != nil {
		t.Fatal(err)
	}
	stats, err := m2.Recover(part, testRegistry())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.BucketsIn != 1 || stats.BucketsOut != 1 {
		t.Errorf("in/out = %d/%d, want 1/1", stats.BucketsIn, stats.BucketsOut)
	}
	if !part.Owns(3) || part.Owns(5) {
		t.Errorf("ownership after replay: owns(3)=%v owns(5)=%v, want true/false", part.Owns(3), part.Owns(5))
	}
	if !stats.FromHandoff[3] {
		t.Errorf("bucket 3 not marked as handoff-received")
	}
	row, ok, err := part.Get("t", "migrated")
	if err != nil || !ok || row.Cols["v"] != "yes" {
		t.Errorf("migrated row = %v %v %v, want yes", row, ok, err)
	}
}

func TestCrashDropsOnlyUnacked(t *testing.T) {
	dir := t.TempDir()
	// Long group-commit interval so un-synced data really is buffered.
	opts := Options{GroupCommitInterval: time.Hour, GroupCommitBatch: 1 << 30}
	m := openTestManager(t, dir, opts)
	for i := 0; i < 5; i++ {
		// With an hour-long group-commit interval the ack only arrives once
		// Flush forces the sync, so flush first, then reap the ack.
		ch := make(chan error, 1)
		m.Append("inc", "a", nil, func(_ uint64, err error) { ch <- err })
		if err := m.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		if err := <-ch; err != nil {
			t.Fatalf("append ack: %v", err)
		}
	}
	// These are appended but never synced: a crash may lose them.
	for i := 0; i < 5; i++ {
		m.Append("inc", "a", nil, nil)
	}
	m.Crash()

	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	part := newTestPartition(8)
	stats, err := m2.Recover(part, testRegistry())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Txns != 5 {
		t.Errorf("replayed %d txns, want exactly the 5 acked ones", stats.Txns)
	}
	if got := getVal(t, part, "a"); got != "5" {
		t.Errorf("a = %q, want 5", got)
	}
}

func TestSyncEveryMode(t *testing.T) {
	dir := t.TempDir()
	m := openTestManager(t, dir, Options{SyncEvery: true})
	done := make(chan error, 1)
	m.Append("inc", "a", nil, func(_ uint64, err error) { done <- err })
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sync-every append never acked")
	}
	m.Crash() // even a crash right after the ack must not lose the record

	m2 := openTestManager(t, dir, Options{SyncEvery: true})
	defer m2.Close()
	part := newTestPartition(8)
	stats, err := m2.Recover(part, testRegistry())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Txns != 1 {
		t.Errorf("replayed %d txns, want 1", stats.Txns)
	}
}

// partitionContents materializes every table of a partition as
// table → key → cols, the canonical form for whole-partition equality
// checks; contentChecksum folds the same data into an order-free FNV-1a
// sum, mirroring the cluster-level determinism checksum.
func partitionContents(t *testing.T, p *storage.Partition) map[string]map[string]map[string]string {
	t.Helper()
	out := make(map[string]map[string]map[string]string)
	for _, tab := range p.Tables() {
		rows := make(map[string]map[string]string)
		if _, err := p.Scan(tab, func(r storage.Row) bool {
			rows[r.Key] = r.Cols
			return true
		}); err != nil {
			t.Fatalf("Scan %s: %v", tab, err)
		}
		out[tab] = rows
	}
	return out
}

func contentChecksum(t *testing.T, p *storage.Partition) uint64 {
	t.Helper()
	var sum uint64
	for _, tab := range p.Tables() {
		if _, err := p.Scan(tab, func(r storage.Row) bool {
			h := fnv.New64a()
			h.Write([]byte(tab))
			h.Write([]byte{0})
			h.Write([]byte(r.Key))
			cols := make([]string, 0, len(r.Cols))
			for c := range r.Cols {
				cols = append(cols, c)
			}
			sort.Strings(cols)
			for _, c := range cols {
				h.Write([]byte{0})
				h.Write([]byte(c))
				h.Write([]byte{1})
				h.Write([]byte(r.Cols[c]))
			}
			sum ^= h.Sum64() // XOR: commutative, order-free
			return true
		}); err != nil {
			t.Fatalf("Scan %s: %v", tab, err)
		}
	}
	return sum
}

// TestSchemaEvolutionReplay recovers a log whose rows grow columns midway:
// early transactions write {v}, later ones add {audit, by} to the same
// table — so the live partition interned the new columns mid-stream while
// a recovering partition meets them in whatever order replay encounters.
// Field-ID assignment is in-memory only; the recovered contents and the
// order-free checksum must match the live partition exactly. A snapshot is
// taken while the schema is still narrow, so recovery also exercises
// snapshot-load followed by wider-schema tail replay.
func TestSchemaEvolutionReplay(t *testing.T) {
	reg := engine.NewRegistry()
	reg.Register("set", func(tx *engine.Txn) error {
		return tx.Put("t", tx.Key, map[string]string{"v": tx.Arg("v")})
	})
	reg.Register("audit", func(tx *engine.Txn) error {
		// The mid-log schema change: two columns this table has never held.
		cols := map[string]string{"audit": tx.Arg("audit"), "by": tx.Arg("by")}
		if v, ok, err := tx.Get("t", tx.Key); err != nil {
			return err
		} else if ok {
			cols["v"] = v.Cols["v"]
		}
		return tx.Put("t", tx.Key, cols)
	})

	dir := t.TempDir()
	opts := Options{GroupCommitInterval: 500 * time.Microsecond}
	m := openTestManager(t, dir, opts)
	live := newTestPartition(8)
	apply := func(proc, key string, args map[string]string) {
		if err := engine.ReplayTxn(reg, live, proc, key, args); err != nil {
			t.Fatalf("apply %s(%s): %v", proc, key, err)
		}
		appendSync(t, m, proc, key, args)
	}
	for i := 0; i < 32; i++ {
		apply("set", fmt.Sprintf("k%d", i), map[string]string{"v": fmt.Sprintf("v%d", i)})
	}
	// Snapshot with only {v} on disk; the columns added below live in the
	// log tail.
	if err := m.Snapshot(live); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 0; i < 32; i += 2 {
		apply("audit", fmt.Sprintf("k%d", i),
			map[string]string{"audit": fmt.Sprintf("a%d", i), "by": "ops"})
	}
	// And rows born after the evolution, never seen without the new columns.
	for i := 32; i < 40; i++ {
		apply("audit", fmt.Sprintf("k%d", i),
			map[string]string{"audit": fmt.Sprintf("a%d", i), "by": "ops"})
	}
	m.Close()

	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	recovered := storage.NewPartition(0, 8, nil)
	recovered.CreateTable("t")
	stats, err := m2.Recover(recovered, reg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !stats.SnapshotLoaded {
		t.Error("snapshot not loaded")
	}
	if stats.Txns != 24 {
		t.Errorf("replayed %d txns, want the 24 post-snapshot ones", stats.Txns)
	}
	if got, want := contentChecksum(t, recovered), contentChecksum(t, live); got != want {
		t.Errorf("content checksum after replay = %#x, want %#x", got, want)
	}
	if got, want := partitionContents(t, recovered), partitionContents(t, live); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered contents diverge from live partition:\n got %v\nwant %v", got, want)
	}
	// Spot-check the mixed generations: an untouched narrow row, an
	// upgraded row, and a born-wide row.
	for key, want := range map[string]map[string]string{
		"k1":  {"v": "v1"},
		"k2":  {"v": "v2", "audit": "a2", "by": "ops"},
		"k35": {"audit": "a35", "by": "ops"},
	} {
		row, ok, err := recovered.Get("t", key)
		if err != nil || !ok {
			t.Fatalf("Get %s: %v %v", key, ok, err)
		}
		if !reflect.DeepEqual(row.Cols, want) {
			t.Errorf("%s = %v, want %v", key, row.Cols, want)
		}
	}
}
