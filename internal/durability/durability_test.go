package durability

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"pstore/internal/engine"
	"pstore/internal/storage"
)

// testRegistry registers two deterministic procedures: "set" writes
// arg v into table t, "inc" increments an integer counter.
func testRegistry() *engine.Registry {
	reg := engine.NewRegistry()
	reg.Register("set", func(tx *engine.Txn) error {
		return tx.Put("t", tx.Key, map[string]string{"v": tx.Arg("v")})
	})
	reg.Register("inc", func(tx *engine.Txn) error {
		row, ok, err := tx.Get("t", tx.Key)
		if err != nil {
			return err
		}
		n := 0
		if ok {
			n, _ = strconv.Atoi(row.Cols["n"])
		}
		return tx.Put("t", tx.Key, map[string]string{"n": strconv.Itoa(n + 1)})
	})
	return reg
}

func allBuckets(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func newTestPartition(nBuckets int) *storage.Partition {
	p := storage.NewPartition(0, nBuckets, allBuckets(nBuckets))
	p.CreateTable("t")
	return p
}

// appendSync appends a command and waits for its durable ack.
func appendSync(t *testing.T, m *Manager, proc, key string, args map[string]string) {
	t.Helper()
	ch := make(chan error, 1)
	m.Append(proc, key, args, func(_ uint64, err error) { ch <- err })
	if err := <-ch; err != nil {
		t.Fatalf("append %s(%s): %v", proc, key, err)
	}
}

func openTestManager(t *testing.T, dir string, opts Options) *Manager {
	t.Helper()
	m, err := Open(dir, 0, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

func getVal(t *testing.T, p *storage.Partition, key string) string {
	t.Helper()
	row, ok, err := p.Get("t", key)
	if err != nil {
		t.Fatalf("Get %s: %v", key, err)
	}
	if !ok {
		return ""
	}
	if v, ok := row.Cols["v"]; ok {
		return v
	}
	return row.Cols["n"]
}

func TestAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupCommitInterval: 500 * time.Microsecond}
	m := openTestManager(t, dir, opts)
	for i := 0; i < 50; i++ {
		appendSync(t, m, "set", fmt.Sprintf("k%d", i), map[string]string{"v": fmt.Sprintf("v%d", i)})
	}
	for i := 0; i < 30; i++ {
		appendSync(t, m, "inc", "counter", nil)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	part := newTestPartition(8)
	stats, err := m2.Recover(part, testRegistry())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Txns != 80 {
		t.Errorf("replayed %d txns, want 80", stats.Txns)
	}
	if stats.SnapshotLoaded {
		t.Errorf("unexpected snapshot")
	}
	for i := 0; i < 50; i++ {
		if got, want := getVal(t, part, fmt.Sprintf("k%d", i)), fmt.Sprintf("v%d", i); got != want {
			t.Fatalf("k%d = %q, want %q", i, got, want)
		}
	}
	if got := getVal(t, part, "counter"); got != "30" {
		t.Errorf("counter = %q, want 30", got)
	}
}

func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupCommitInterval: 500 * time.Microsecond}
	m := openTestManager(t, dir, opts)
	part := newTestPartition(8)
	reg := testRegistry()
	apply := func(proc, key string, args map[string]string) {
		if err := engine.ReplayTxn(reg, part, proc, key, args); err != nil {
			t.Fatalf("apply: %v", err)
		}
		appendSync(t, m, proc, key, args)
	}
	for i := 0; i < 40; i++ {
		apply("inc", "a", nil)
	}
	if err := m.Snapshot(part); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Pre-snapshot segments must be gone.
	segs, err := listNumbered(dir, "wal-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("segments after snapshot: %v, want exactly the active one", segs)
	}
	// Log tail after the snapshot.
	for i := 0; i < 7; i++ {
		apply("inc", "a", nil)
	}
	m.Close()

	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	part2 := storage.NewPartition(0, 8, nil) // recovery starts unowned
	part2.CreateTable("t")
	stats, err := m2.Recover(part2, reg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !stats.SnapshotLoaded {
		t.Errorf("snapshot not loaded")
	}
	if stats.Txns != 7 {
		t.Errorf("replayed %d txns, want 7 (the tail)", stats.Txns)
	}
	if got := getVal(t, part2, "a"); got != "47" {
		t.Errorf("a = %q, want 47", got)
	}
	if len(part2.OwnedBuckets()) != 8 {
		t.Errorf("recovered %d buckets, want 8", len(part2.OwnedBuckets()))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupCommitInterval: 500 * time.Microsecond, SegmentBytes: 512}
	m := openTestManager(t, dir, opts)
	for i := 0; i < 100; i++ {
		appendSync(t, m, "set", fmt.Sprintf("k%d", i), map[string]string{"v": "x"})
	}
	m.Close()
	segs, err := listNumbered(dir, "wal-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce several", len(segs))
	}
	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	part := newTestPartition(8)
	stats, err := m2.Recover(part, testRegistry())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Txns != 100 {
		t.Errorf("replayed %d txns across segments, want 100", stats.Txns)
	}
}

func TestTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupCommitInterval: 500 * time.Microsecond}
	m := openTestManager(t, dir, opts)
	for i := 0; i < 10; i++ {
		appendSync(t, m, "inc", "a", nil)
	}
	m.Close()
	// Corrupt the final record's payload in place.
	segs, _ := listNumbered(dir, "wal-", ".log")
	path := filepath.Join(dir, segmentName(segs[len(segs)-1]))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	part := newTestPartition(8)
	stats, err := m2.Recover(part, testRegistry())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Txns != 9 {
		t.Errorf("replayed %d txns, want 9 (torn final record dropped)", stats.Txns)
	}
	if got := getVal(t, part, "a"); got != "9" {
		t.Errorf("a = %q, want 9", got)
	}
}

func TestBucketHandoffReplay(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupCommitInterval: 500 * time.Microsecond}
	m := openTestManager(t, dir, opts)
	// Receive a bucket with contents, then hand another away.
	in := &storage.BucketData{Bucket: 3, Tables: map[string][]storage.Row{
		"t": {{Key: "migrated", Cols: map[string]string{"v": "yes"}}},
	}}
	if err := m.LogBucketIn(in); err != nil {
		t.Fatalf("LogBucketIn: %v", err)
	}
	if err := m.LogBucketOut(5); err != nil {
		t.Fatalf("LogBucketOut: %v", err)
	}
	m.Close()

	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	// Partition starts owning buckets 5 only (e.g. from an older snapshot —
	// here, none, so seed it manually through a bucket apply).
	part := storage.NewPartition(0, 8, nil)
	part.CreateTable("t")
	if err := part.ApplyBucket(&storage.BucketData{Bucket: 5, Tables: map[string][]storage.Row{}}); err != nil {
		t.Fatal(err)
	}
	stats, err := m2.Recover(part, testRegistry())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.BucketsIn != 1 || stats.BucketsOut != 1 {
		t.Errorf("in/out = %d/%d, want 1/1", stats.BucketsIn, stats.BucketsOut)
	}
	if !part.Owns(3) || part.Owns(5) {
		t.Errorf("ownership after replay: owns(3)=%v owns(5)=%v, want true/false", part.Owns(3), part.Owns(5))
	}
	if !stats.FromHandoff[3] {
		t.Errorf("bucket 3 not marked as handoff-received")
	}
	row, ok, err := part.Get("t", "migrated")
	if err != nil || !ok || row.Cols["v"] != "yes" {
		t.Errorf("migrated row = %v %v %v, want yes", row, ok, err)
	}
}

func TestCrashDropsOnlyUnacked(t *testing.T) {
	dir := t.TempDir()
	// Long group-commit interval so un-synced data really is buffered.
	opts := Options{GroupCommitInterval: time.Hour, GroupCommitBatch: 1 << 30}
	m := openTestManager(t, dir, opts)
	for i := 0; i < 5; i++ {
		// With an hour-long group-commit interval the ack only arrives once
		// Flush forces the sync, so flush first, then reap the ack.
		ch := make(chan error, 1)
		m.Append("inc", "a", nil, func(_ uint64, err error) { ch <- err })
		if err := m.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		if err := <-ch; err != nil {
			t.Fatalf("append ack: %v", err)
		}
	}
	// These are appended but never synced: a crash may lose them.
	for i := 0; i < 5; i++ {
		m.Append("inc", "a", nil, nil)
	}
	m.Crash()

	m2 := openTestManager(t, dir, opts)
	defer m2.Close()
	part := newTestPartition(8)
	stats, err := m2.Recover(part, testRegistry())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Txns != 5 {
		t.Errorf("replayed %d txns, want exactly the 5 acked ones", stats.Txns)
	}
	if got := getVal(t, part, "a"); got != "5" {
		t.Errorf("a = %q, want 5", got)
	}
}

func TestSyncEveryMode(t *testing.T) {
	dir := t.TempDir()
	m := openTestManager(t, dir, Options{SyncEvery: true})
	done := make(chan error, 1)
	m.Append("inc", "a", nil, func(_ uint64, err error) { done <- err })
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sync-every append never acked")
	}
	m.Crash() // even a crash right after the ack must not lose the record

	m2 := openTestManager(t, dir, Options{SyncEvery: true})
	defer m2.Close()
	part := newTestPartition(8)
	stats, err := m2.Recover(part, testRegistry())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Txns != 1 {
		t.Errorf("replayed %d txns, want 1", stats.Txns)
	}
}
