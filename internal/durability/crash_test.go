package durability_test

// Crash-injection harness: drive a durable cluster with a workload, kill it
// mid-stream (dropping everything not yet fsynced, like a SIGKILL), recover
// a fresh cluster from the same data directory, and check the recovered
// state against an uninterrupted control run.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/durability"
	"pstore/internal/engine"
	"pstore/internal/migration"
	"pstore/internal/storage"
)

func crashTestRegistry() *engine.Registry {
	reg := engine.NewRegistry()
	reg.Register("set", func(tx *engine.Txn) error {
		return tx.Put("t", tx.Key, map[string]string{"v": tx.Arg("v")})
	})
	reg.Register("inc", func(tx *engine.Txn) error {
		row, ok, err := tx.Get("t", tx.Key)
		if err != nil {
			return err
		}
		n := 0
		if ok {
			n, _ = strconv.Atoi(row.Cols["n"])
		}
		return tx.Put("t", tx.Key, map[string]string{"n": strconv.Itoa(n + 1)})
	})
	reg.Register("del", func(tx *engine.Txn) error {
		_, err := tx.Delete("t", tx.Key)
		return err
	})
	return reg
}

func crashTestConfig(reg *engine.Registry, dataDir string) cluster.Config {
	return cluster.Config{
		InitialNodes:      1,
		PartitionsPerNode: 2,
		NBuckets:          32,
		Tables:            []string{"t"},
		Registry:          reg,
		DataDir:           dataDir,
		Durability: durability.Options{
			GroupCommitInterval: 500 * time.Microsecond,
		},
	}
}

// dumpState flattens the whole cluster into canonical JSON: table → key →
// columns, across all partitions. Two clusters with identical logical
// contents dump to identical bytes regardless of partition placement.
func dumpState(t *testing.T, c *cluster.Cluster, tables []string) string {
	t.Helper()
	state := make(map[string]map[string]map[string]string)
	for _, tab := range tables {
		state[tab] = make(map[string]map[string]string)
	}
	for _, e := range c.Executors() {
		err := e.Do(func(p *storage.Partition) (int, error) {
			for _, tab := range tables {
				_, err := p.Scan(tab, func(r storage.Row) bool {
					state[tab][r.Key] = r.Cols
					return true
				})
				if err != nil {
					return 0, err
				}
			}
			return 0, nil
		})
		if err != nil {
			t.Fatalf("dumping partition %d: %v", e.Partition(), err)
		}
	}
	raw, err := json.Marshal(state) // map keys marshal sorted: canonical
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// crashWorkload is a fixed, deterministic op sequence exercising set, inc,
// delete, overwrites and many keys.
func crashWorkload(n int) []engine.Txn {
	out := make([]engine.Txn, 0, n)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0, 1:
			out = append(out, engine.Txn{Proc: "inc", Key: fmt.Sprintf("ctr-%d", i%23)})
		case 2:
			out = append(out, engine.Txn{Proc: "set", Key: fmt.Sprintf("obj-%d", i%41),
				Args: map[string]string{"v": fmt.Sprintf("val-%d", i)}})
		case 3:
			out = append(out, engine.Txn{Proc: "set", Key: fmt.Sprintf("obj-%d", (i+7)%41),
				Args: map[string]string{"v": fmt.Sprintf("other-%d", i)}})
		case 4:
			out = append(out, engine.Txn{Proc: "del", Key: fmt.Sprintf("obj-%d", (i*3)%17)})
		}
	}
	return out
}

// TestCrashRecoveryEquivalence is the acceptance test: a cluster killed
// after acknowledging a workload recovers to contents byte-for-byte equal
// to an uninterrupted control run of the same workload.
func TestCrashRecoveryEquivalence(t *testing.T) {
	reg := crashTestRegistry()
	dir := t.TempDir()
	ops := crashWorkload(400)

	c, err := cluster.New(crashTestConfig(reg, dir))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := range ops {
		txn := ops[i]
		if res := c.Call(&txn); res.Err != nil {
			t.Fatalf("op %d: %v", i, res.Err)
		}
		if i == len(ops)/2 {
			// Exercise the snapshot+tail path, not just pure log replay.
			if err := c.SnapshotAll(); err != nil {
				t.Fatalf("SnapshotAll: %v", err)
			}
		}
	}
	c.Crash() // all 400 were acked, so all 400 must survive

	recovered, err := cluster.New(crashTestConfig(reg, dir))
	if err != nil {
		t.Fatalf("recovering: %v", err)
	}
	defer recovered.Stop()
	if !recovered.Recovered() {
		t.Fatal("second New did not take the recovery path")
	}

	control, err := cluster.New(crashTestConfig(reg, "")) // in-memory control
	if err != nil {
		t.Fatalf("control New: %v", err)
	}
	defer control.Stop()
	for i := range ops {
		txn := ops[i]
		if res := control.Call(&txn); res.Err != nil {
			t.Fatalf("control op %d: %v", i, res.Err)
		}
	}

	got := dumpState(t, recovered, []string{"t"})
	want := dumpState(t, control, []string{"t"})
	if got != want {
		t.Fatalf("recovered state diverges from control run:\nrecovered: %s\ncontrol:   %s", got, want)
	}
}

// TestCrashMidWorkload kills the cluster while concurrent clients are still
// streaming transactions, then checks that every acknowledged effect
// survived recovery (unacked transactions may or may not have landed — a
// crash's contract).
func TestCrashMidWorkload(t *testing.T) {
	reg := crashTestRegistry()
	dir := t.TempDir()
	c, err := cluster.New(crashTestConfig(reg, dir))
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const clients = 8
	acked := make([]int, clients)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			key := fmt.Sprintf("client-%d", cl)
			for {
				select {
				case <-stop:
					return
				default:
				}
				txn := engine.Txn{Proc: "inc", Key: key}
				if res := c.Call(&txn); res.Err == nil {
					acked[cl]++
				}
			}
		}(cl)
	}
	time.Sleep(150 * time.Millisecond) // let the workload run mid-stream
	close(stop)
	wg.Wait()
	c.Crash()

	recovered, err := cluster.New(crashTestConfig(reg, dir))
	if err != nil {
		t.Fatalf("recovering: %v", err)
	}
	defer recovered.Stop()
	for cl := 0; cl < clients; cl++ {
		if acked[cl] == 0 {
			continue
		}
		key := fmt.Sprintf("client-%d", cl)
		txn := engine.Txn{Proc: "inc", Key: key} // bumps by 1 and returns
		if res := recovered.Call(&txn); res.Err != nil {
			t.Fatalf("post-recovery call for %s: %v", key, res.Err)
		}
		row := getRow(t, recovered, key)
		n, _ := strconv.Atoi(row["n"])
		// The counter now holds (recovered count + 1); every acked inc must
		// have been recovered.
		if n-1 < acked[cl] {
			t.Errorf("%s: recovered %d incs, but %d were acked", key, n-1, acked[cl])
		}
	}
}

func getRow(t *testing.T, c *cluster.Cluster, key string) map[string]string {
	t.Helper()
	pid := c.RouteKey(key)
	e, ok := c.ExecutorOf(pid)
	if !ok {
		t.Fatalf("no executor for %s", key)
	}
	var cols map[string]string
	err := e.Do(func(p *storage.Partition) (int, error) {
		row, ok, err := p.Get("t", key)
		if ok {
			cols = row.Cols
		}
		return 0, err
	})
	if err != nil {
		t.Fatalf("get %s: %v", key, err)
	}
	return cols
}

// TestCrashAfterMigrationRecoversOwnership scales the durable cluster out
// mid-workload, crashes it, and checks that recovery rebuilds both the data
// and the migrated bucket ownership, matching an uninterrupted control run.
func TestCrashAfterMigrationRecoversOwnership(t *testing.T) {
	reg := crashTestRegistry()
	dir := t.TempDir()
	ops := crashWorkload(300)

	run := func(dataDir string) *cluster.Cluster {
		c, err := cluster.New(crashTestConfig(reg, dataDir))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		for i := range ops[:150] {
			txn := ops[i]
			if res := c.Call(&txn); res.Err != nil {
				t.Fatalf("op %d: %v", i, res.Err)
			}
		}
		if _, err := migration.Run(c, 2, migration.Options{BucketsPerChunk: 4}); err != nil {
			t.Fatalf("scale-out: %v", err)
		}
		for i := range ops[150:] {
			txn := ops[150+i]
			if res := c.Call(&txn); res.Err != nil {
				t.Fatalf("op %d: %v", 150+i, res.Err)
			}
		}
		return c
	}

	c := run(dir)
	if c.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2", c.NumNodes())
	}
	c.Crash()

	recovered, err := cluster.New(crashTestConfig(reg, dir))
	if err != nil {
		t.Fatalf("recovering: %v", err)
	}
	defer recovered.Stop()
	if recovered.NumNodes() != 2 {
		t.Errorf("recovered nodes = %d, want 2", recovered.NumNodes())
	}

	control := run("")
	defer control.Stop()
	got := dumpState(t, recovered, []string{"t"})
	want := dumpState(t, control, []string{"t"})
	if got != want {
		t.Fatalf("recovered state diverges from control after migration:\nrecovered: %s\ncontrol:   %s", got, want)
	}
	// Every bucket must have exactly one owner and be routable.
	counts := recovered.BucketCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 32 {
		t.Errorf("recovered owner table covers %d buckets, want 32", total)
	}
}

// TestRestartAfterGracefulStop checks the clean path: Stop snapshots and
// closes the logs; a restart recovers everything without replaying.
func TestRestartAfterGracefulStop(t *testing.T) {
	reg := crashTestRegistry()
	dir := t.TempDir()
	ops := crashWorkload(100)
	c, err := cluster.New(crashTestConfig(reg, dir))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := range ops {
		txn := ops[i]
		if res := c.Call(&txn); res.Err != nil {
			t.Fatalf("op %d: %v", i, res.Err)
		}
	}
	want := dumpState(t, c, []string{"t"})
	c.Stop()

	c2, err := cluster.New(crashTestConfig(reg, dir))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer c2.Stop()
	if got := dumpState(t, c2, []string{"t"}); got != want {
		t.Fatalf("restart state diverges:\ngot:  %s\nwant: %s", got, want)
	}
}
