package durability

// BenchmarkDurabilityOverhead measures executor write throughput in three
// configurations: command logging off (the in-memory fast path), group
// commit (the default), and per-transaction fsync. Clients keep a window of
// transactions in flight, as a real workload would, so group commit can
// amortize its syncs across the pipeline.

import (
	"fmt"
	"testing"
	"time"

	"pstore/internal/engine"
)

func benchmarkExecutorWrites(b *testing.B, opts *Options) {
	reg := testRegistry()
	part := newTestPartition(8)
	cfg := engine.Config{}
	var mgr *Manager
	if opts != nil {
		var err error
		mgr, err = Open(b.TempDir(), part.ID(), *opts)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Log = mgr
	}
	e := engine.NewExecutor(part, reg, cfg)
	defer func() {
		e.Stop()
		if mgr != nil {
			mgr.Close()
		}
	}()

	const window = 256
	pending := make([]<-chan engine.Result, 0, window)
	drain := func() {
		for _, ch := range pending {
			if res := <-ch; res.Err != nil {
				b.Fatal(res.Err)
			}
		}
		pending = pending[:0]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := engine.Txn{Proc: "set", Key: fmt.Sprintf("k-%d", i%97),
			Args: map[string]string{"v": "benchmark-value"}}
		ch, err := e.Submit(&txn)
		if err != nil {
			b.Fatal(err)
		}
		pending = append(pending, ch)
		if len(pending) == window {
			drain()
		}
	}
	drain()
}

func BenchmarkDurabilityOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchmarkExecutorWrites(b, nil)
	})
	b.Run("group-commit", func(b *testing.B) {
		benchmarkExecutorWrites(b, &Options{
			GroupCommitInterval: 2 * time.Millisecond,
			GroupCommitBatch:    64,
		})
	})
	b.Run("fsync-every-txn", func(b *testing.B) {
		benchmarkExecutorWrites(b, &Options{SyncEvery: true})
	})
}
