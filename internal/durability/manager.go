package durability

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"pstore/internal/engine"
	"pstore/internal/storage"
)

// Options tunes a partition's durability manager.
type Options struct {
	// SyncEvery forces an fsync per append (per-transaction durability,
	// the slow baseline). Default false: group commit.
	SyncEvery bool
	// GroupCommitInterval is the group-commit fsync cadence. Default 2ms.
	GroupCommitInterval time.Duration
	// GroupCommitBatch syncs early once this many acks are pending.
	// Default 64.
	GroupCommitBatch int
	// SegmentBytes rotates the log when the active segment exceeds it.
	// Default 4 MiB.
	SegmentBytes int64
	// SnapshotInterval is how often the owner (the cluster) should snapshot
	// the partition and truncate the log. Zero disables periodic snapshots;
	// the log then only truncates at explicit snapshots (shutdown,
	// migration). The manager does not run the timer itself — snapshots
	// need exclusive partition access, which only the executor's owner can
	// arrange.
	SnapshotInterval time.Duration
}

// ReplayStats summarizes a recovery.
type ReplayStats struct {
	SnapshotLoaded bool
	Txns           int // command records re-executed
	BucketsIn      int // migration handoffs re-applied
	BucketsOut     int
	Skipped        int // records dropped (e.g. replay against an unowned bucket)
	// FromHandoff marks buckets whose ownership most recently arrived via a
	// bucket-in record (not the snapshot). The cluster uses it to pick the
	// winner when a crash mid-handoff leaves two partitions claiming one
	// bucket: the handoff receiver's copy carries the post-handoff writes.
	FromHandoff map[int]bool
}

// Manager is one partition's durability state: its directory of WAL
// segments and snapshots. Appends must come from the partition's executor
// goroutine (the engine guarantees this); Snapshot and Recover need
// exclusive partition access.
type Manager struct {
	dir  string
	part int
	opts Options
	log  *wal

	appended atomic.Int64
	// seq is the last assigned log sequence number (the replication LSN).
	// Appends are serialized by the caller — the partition's executor, or a
	// replication feed's append mutex — so a plain atomic counter stays
	// contiguous.
	seq atomic.Uint64
}

// Open creates or reopens the durability directory for a partition. Call
// Recover before starting the partition's executor when reopening existing
// state.
func Open(dir string, partition int, opts Options) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l, err := openWAL(dir, walOptions{
		syncEvery:    opts.SyncEvery,
		syncInterval: opts.GroupCommitInterval,
		batchSize:    opts.GroupCommitBatch,
		segmentBytes: opts.SegmentBytes,
	})
	if err != nil {
		return nil, err
	}
	return &Manager{dir: dir, part: partition, opts: opts, log: l}, nil
}

// Dir returns the manager's directory.
func (m *Manager) Dir() string { return m.dir }

// Appended returns the number of records appended since Open.
func (m *Manager) Appended() int64 { return m.appended.Load() }

// Seq returns the last assigned log sequence number.
func (m *Manager) Seq() uint64 { return m.seq.Load() }

// SetBaseSeq aligns the manager's sequence counter so the next append gets
// n+1 — used after recovery and when a promoted replica opens a fresh log
// that must continue its primary's LSN space.
func (m *Manager) SetBaseSeq(n uint64) { m.seq.Store(n) }

// Append implements engine.CommandLog: it logs a committed transaction and
// runs onDurable after the record is fsynced (group commit).
func (m *Manager) Append(proc, key string, args map[string]string, onDurable func(uint64, error)) {
	m.appended.Add(1)
	seq := m.seq.Add(1)
	var cb func(error)
	if onDurable != nil {
		cb = func(err error) { onDurable(seq, err) }
	}
	err := m.log.append(&Record{Seq: seq, Kind: kindTxn, Proc: proc, Key: key, Args: args}, cb)
	if err != nil && onDurable != nil {
		onDurable(seq, err)
	}
}

var _ engine.CommandLog = (*Manager)(nil)

// AppendPut logs a direct row load (cluster.LoadRow through a replication
// feed). Asynchronous: the record rides the next group commit — bulk
// preloads must not pay one fsync per row.
func (m *Manager) AppendPut(table, key string, cols map[string]string) (uint64, error) {
	m.appended.Add(1)
	seq := m.seq.Add(1)
	return seq, m.log.append(&Record{Seq: seq, Kind: kindPut, Tab: table, Key: key, Args: cols}, nil)
}

// LogBucketOut durably records that the partition handed the bucket to a
// peer. Synchronous: the handoff is on disk when it returns.
func (m *Manager) LogBucketOut(bucket int) error {
	m.appended.Add(1)
	seq := m.seq.Add(1)
	if err := m.log.append(&Record{Seq: seq, Kind: kindBucketOut, Bucket: bucket}, nil); err != nil {
		return err
	}
	return m.log.sync()
}

// LogBucketIn durably records a bucket received from a peer, contents
// inline — the receiver's log stays self-contained: replaying it alone
// reproduces the bucket without consulting the sender's history.
// Synchronous: the caller may apply the bucket once this returns.
func (m *Manager) LogBucketIn(data *storage.BucketData) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return err
	}
	m.appended.Add(1)
	seq := m.seq.Add(1)
	if err := m.log.append(&Record{Seq: seq, Kind: kindBucketIn, Bucket: data.Bucket, Data: raw}, nil); err != nil {
		return err
	}
	return m.log.sync()
}

// Snapshot persists the partition's full contents, rotates the log and
// truncates everything the snapshot covers. The caller must hold exclusive
// access to the partition (run it inside the executor's Do, or before the
// executor starts).
func (m *Manager) Snapshot(part *storage.Partition) error {
	if part.ID() != m.part {
		return fmt.Errorf("durability: manager for partition %d asked to snapshot partition %d", m.part, part.ID())
	}
	seg, err := m.log.rotate()
	if err != nil {
		return err
	}
	if err := writeSnapshot(m.dir, part, seg, m.seq.Load()); err != nil {
		return err
	}
	if err := m.log.truncateBefore(seg); err != nil {
		return err
	}
	return pruneSnapshots(m.dir, seg)
}

// Recover rebuilds the partition from the latest snapshot plus the log
// tail, replaying command records through the registry. The partition must
// be freshly created (owning no buckets) and its executor must not be
// running yet.
func (m *Manager) Recover(part *storage.Partition, reg *engine.Registry) (ReplayStats, error) {
	stats := ReplayStats{FromHandoff: make(map[int]bool)}
	if part.ID() != m.part {
		return stats, fmt.Errorf("durability: manager for partition %d asked to recover partition %d", m.part, part.ID())
	}
	fromSeg, snapSeq, found, err := loadSnapshot(m.dir, part)
	if err != nil {
		return stats, err
	}
	stats.SnapshotLoaded = found
	seq := snapSeq
	err = replaySegments(m.dir, fromSeg, func(rec *Record) error {
		// Restore the LSN counter. Legacy records without a Seq advance it
		// by one each, which matches how they would have been stamped.
		if rec.Seq > 0 {
			seq = rec.Seq
		} else {
			seq++
		}
		switch rec.Kind {
		case kindTxn:
			if err := engine.ReplayTxn(reg, part, rec.Proc, rec.Key, rec.Args); err != nil {
				if isNotOwnedErr(err) {
					// A command for a bucket the partition no longer owns:
					// its effects live (and were replayed) at the bucket's
					// new home. Can only happen for records logged just
					// before a handoff of the same bucket.
					stats.Skipped++
					return nil
				}
				return err
			}
			stats.Txns++
		case kindBucketIn:
			var data storage.BucketData
			if err := json.Unmarshal(rec.Data, &data); err != nil {
				return fmt.Errorf("durability: bucket-in record: %w", err)
			}
			// Idempotent: drop any stale copy before applying the logged
			// authoritative contents.
			if part.Owns(data.Bucket) {
				if err := part.DropBucket(data.Bucket); err != nil {
					return err
				}
			}
			if err := part.ApplyBucket(&data); err != nil {
				return err
			}
			stats.FromHandoff[data.Bucket] = true
			stats.BucketsIn++
		case kindBucketOut:
			if part.Owns(rec.Bucket) {
				if err := part.DropBucket(rec.Bucket); err != nil {
					return err
				}
				delete(stats.FromHandoff, rec.Bucket)
				stats.BucketsOut++
			} else {
				stats.Skipped++
			}
		case kindPut:
			if !part.OwnsKey(rec.Key) {
				stats.Skipped++
				return nil
			}
			part.CreateTable(rec.Tab)
			if err := part.Put(rec.Tab, rec.Key, rec.Args); err != nil {
				return err
			}
			stats.Txns++
		default:
			return fmt.Errorf("durability: unknown record kind %d", rec.Kind)
		}
		return nil
	})
	m.seq.Store(seq)
	return stats, err
}

// ReadFrom streams every durable record with Seq > afterSeq, in order, to
// fn — the replication catch-up path for a replica whose subscription
// point fell off the feed's in-memory buffer. It tolerates running
// concurrently with active appends: a torn tail ends the stream silently,
// exactly like recovery, and the caller bridges any remaining gap from the
// feed buffer or retries. Records logged before the latest snapshot are
// gone (truncated); the caller detects the gap from the first record's Seq
// and falls back to a full snapshot.
func (m *Manager) ReadFrom(afterSeq uint64, fn func(*Record) error) error {
	return replaySegments(m.dir, 0, func(rec *Record) error {
		if rec.Seq <= afterSeq {
			return nil
		}
		return fn(rec)
	})
}

func isNotOwnedErr(err error) bool {
	var notOwned *storage.ErrNotOwned
	return errors.As(err, &notOwned)
}

// Flush forces pending appends to stable storage.
func (m *Manager) Flush() error { return m.log.sync() }

// FlushAsync registers cb to run once everything appended so far is on
// stable storage, riding the group-commit machinery instead of blocking on
// an fsync of its own — the hook replica tails use to pipeline standby
// group commits. cb runs on the WAL's committer goroutine (or inline, with
// ErrClosed, if the log is closed).
func (m *Manager) FlushAsync(cb func(error)) { m.log.requestSync(cb) }

// Close flushes and closes the log.
func (m *Manager) Close() error { return m.log.close() }

// Crash is a test hook that abandons buffered data and closes the log
// without flushing, simulating the process being killed. Records whose acks
// were delivered are already durable; unacked ones may be lost — exactly
// the guarantee a real crash leaves.
func (m *Manager) Crash() { m.log.crash() }
