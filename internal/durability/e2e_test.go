package durability_test

// End-to-end crash test against the real pstore-server binary: build it,
// run it with -data-dir, write through the TCP client, SIGKILL the process,
// restart it on the same directory and verify the writes survived.

import (
	"bufio"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"pstore/internal/server"
)

// startServer launches the binary and returns the bound address parsed from
// its log output.
func startServer(t *testing.T, bin, dataDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-nodes", "1", "-partitions", "2", "-buckets", "32",
		"-stock", "20", "-preload", "10",
		"-service-time", "0s",
		"-group-commit", "500us",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting server: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				fields := strings.Fields(line[i+len("listening on "):])
				if len(fields) > 0 {
					addrCh <- fields[0]
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server never reported its address")
		return nil, ""
	}
}

func TestServerSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "pstore-server")
	build := exec.Command("go", "build", "-o", bin, "pstore/cmd/pstore-server")
	build.Dir = "../.." // module root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building server: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")

	cmd, addr := startServer(t, bin, dataDir)
	cli, err := server.Dial(addr)
	if err != nil {
		cmd.Process.Kill()
		t.Fatalf("dial: %v", err)
	}
	// Write through the real stack; every acked call must survive the kill.
	const cartKey = "crash-cart"
	for i := 0; i < 25; i++ {
		sku := "sku-" + string(rune('a'+i%26))
		if _, err := cli.Call("AddLineToCart", cartKey, map[string]string{
			"sku": sku, "qty": "1", "price": "9.99",
		}); err != nil {
			cmd.Process.Kill()
			t.Fatalf("AddLineToCart %d: %v", i, err)
		}
	}
	res, err := cli.Call("GetCart", cartKey, nil)
	if err != nil {
		cmd.Process.Kill()
		t.Fatalf("GetCart: %v", err)
	}
	wantLines := res.Out["lines"]
	cli.Close()

	// The moment of truth: kill -9, no shutdown hooks run.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	cmd.Wait()

	cmd2, addr2 := startServer(t, bin, dataDir)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			cmd2.Process.Kill()
			<-done
		}
	}()
	cli2, err := server.Dial(addr2)
	if err != nil {
		t.Fatalf("dial after recovery: %v", err)
	}
	defer cli2.Close()
	res2, err := cli2.Call("GetCart", cartKey, nil)
	if err != nil {
		t.Fatalf("GetCart after recovery: %v", err)
	}
	if res2.Out["lines"] != wantLines {
		t.Fatalf("cart diverged after SIGKILL recovery:\ngot:  %s\nwant: %s", res2.Out["lines"], wantLines)
	}
	// Preloaded stock must have survived too (checkpointed after preload).
	stats, err := cli2.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.TotalRows < 20 {
		t.Errorf("recovered %d rows, want at least the 20 preloaded stock items", stats.TotalRows)
	}
}
