package durability

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"pstore/internal/storage"
)

// snapshotHeader opens a snapshot file: where replay resumes and what the
// partition looked like.
type snapshotHeader struct {
	Partition int      `json:"partition"`
	NBuckets  int      `json:"nbuckets"`
	Seg       int      `json:"seg"`           // first WAL segment to replay after loading
	Seq       uint64   `json:"seq,omitempty"` // LSN covered by the snapshot; replay resumes after it
	Tables    []string `json:"tables"`
	Buckets   int      `json:"buckets"` // bucket records following the header
}

// A snapshot file is a JSON stream: one snapshotHeader, then Buckets
// storage.BucketData values. Files are written to a temp name, fsynced and
// renamed into place, so a snapshot is either complete or absent. The file
// is named after the WAL segment replay resumes from, making
// snapshot/segment pairing visible in a directory listing.

// writeSnapshot persists the partition's full contents. The caller must
// hold exclusive access to the partition (the executor's goroutine, or
// recovery before executors start).
func writeSnapshot(dir string, part *storage.Partition, seg int, seq uint64) error {
	hdr := snapshotHeader{
		Partition: part.ID(),
		NBuckets:  part.NBuckets(),
		Seg:       seg,
		Seq:       seq,
		Tables:    part.Tables(),
		Buckets:   len(part.OwnedBuckets()),
	}
	tmp := filepath.Join(dir, snapshotName(seg)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after a successful rename
	w := bufio.NewWriterSize(f, 1<<16)
	enc := json.NewEncoder(w)
	if err := enc.Encode(&hdr); err != nil {
		f.Close()
		return err
	}
	for _, b := range part.OwnedBuckets() {
		data, err := part.CopyBucket(b)
		if err != nil {
			f.Close()
			return err
		}
		if err := enc.Encode(data); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName(seg))); err != nil {
		return err
	}
	return syncDir(dir)
}

// loadSnapshot restores the latest snapshot in dir into the (empty)
// partition, returning the WAL segment replay resumes from and the LSN the
// snapshot covers. With no snapshot present it returns (0, 0, false, nil):
// replay starts from the beginning of the log.
func loadSnapshot(dir string, part *storage.Partition) (seg int, seq uint64, found bool, err error) {
	snaps, err := listNumbered(dir, "snap-", ".snap")
	if err != nil {
		return 0, 0, false, err
	}
	if len(snaps) == 0 {
		return 0, 0, false, nil
	}
	n := snaps[len(snaps)-1]
	f, err := os.Open(filepath.Join(dir, snapshotName(n)))
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReaderSize(f, 1<<16))
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return 0, 0, false, fmt.Errorf("durability: snapshot %s header: %w", snapshotName(n), err)
	}
	if hdr.Partition != part.ID() {
		return 0, 0, false, fmt.Errorf("durability: snapshot %s is for partition %d, not %d",
			snapshotName(n), hdr.Partition, part.ID())
	}
	if hdr.NBuckets != part.NBuckets() {
		return 0, 0, false, fmt.Errorf("durability: snapshot %s has %d buckets, cluster has %d",
			snapshotName(n), hdr.NBuckets, part.NBuckets())
	}
	for _, t := range hdr.Tables {
		part.CreateTable(t)
	}
	for i := 0; i < hdr.Buckets; i++ {
		var data storage.BucketData
		if err := dec.Decode(&data); err != nil {
			return 0, 0, false, fmt.Errorf("durability: snapshot %s bucket %d/%d: %w",
				snapshotName(n), i+1, hdr.Buckets, err)
		}
		if err := part.ApplyBucket(&data); err != nil {
			return 0, 0, false, err
		}
	}
	return hdr.Seg, hdr.Seq, true, nil
}

// pruneSnapshots removes all snapshots older than keep (a segment number).
func pruneSnapshots(dir string, keep int) error {
	snaps, err := listNumbered(dir, "snap-", ".snap")
	if err != nil {
		return err
	}
	for _, n := range snaps {
		if n < keep {
			if err := os.Remove(filepath.Join(dir, snapshotName(n))); err != nil {
				return err
			}
		}
	}
	return syncDir(dir)
}
