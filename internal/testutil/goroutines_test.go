package testutil

import (
	"strings"
	"testing"
	"time"
)

// fakeTB records Errorf calls and runs cleanups on demand so the leak
// check can be exercised without failing the real test.
type fakeTB struct {
	errors   []string
	cleanups []func()
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.errors = append(f.errors, format)
}
func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) runCleanups() {
	for _, fn := range f.cleanups {
		fn()
	}
}

func TestCheckGoroutineLeaksCatchesLeak(t *testing.T) {
	ft := &fakeTB{}
	CheckGoroutineLeaks(ft)
	block := make(chan struct{})
	go func() { <-block }() // deliberate leak: never signalled before cleanup
	ft.runCleanups()
	if len(ft.errors) == 0 {
		t.Error("leak check missed a blocked goroutine")
	}
	close(block) // let it exit so this test does not leak for real
}

func TestCheckGoroutineLeaksPassesOnJoin(t *testing.T) {
	ft := &fakeTB{}
	CheckGoroutineLeaks(ft)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	ft.runCleanups()
	if len(ft.errors) != 0 {
		t.Errorf("leak check flagged a joined goroutine: %v", ft.errors)
	}
}

func TestSystemGoroutineFilter(t *testing.T) {
	leaked := `goroutine 42 [chan receive]:
main.worker()
	/tmp/x.go:10 +0x20
created by main.start
	/tmp/x.go:5 +0x30`
	if systemGoroutine(leaked) {
		t.Error("user goroutine misclassified as system")
	}
	runner := `goroutine 1 [chan receive]:
testing.(*T).Run(0xc000001234)
	/usr/local/go/src/testing/testing.go:1750 +0x3e8`
	if !systemGoroutine(runner) {
		t.Error("test runner goroutine not filtered")
	}
}

func TestWaitForExitGrace(t *testing.T) {
	before := goroutineIDs()
	slow := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		<-slow
	}()
	close(slow)
	// The goroutine exits ~50ms in; waitForExit must ride out the race
	// instead of reporting it.
	if leaked := waitForExit(before); len(leaked) > 0 {
		t.Errorf("grace period did not absorb a slow exit:\n%s", strings.Join(leaked, "\n"))
	}
}
