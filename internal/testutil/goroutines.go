// Package testutil holds stdlib-only helpers shared by the test suites.
//
// The goroutine-leak check exists because P-Store's subsystems are built
// around background loops — WAL committers, replication tails, cluster
// monitors — that must all join on Close/Stop. A test that passes while
// leaking its committer hides exactly the bug class the lockorder analyzer
// hunts statically; the leak check catches it dynamically.
package testutil

import (
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the leak check needs; taking the interface
// keeps this package free of a testing import in its public surface and
// usable from TestMain (which has no *testing.T).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// CheckGoroutineLeaks snapshots the goroutines alive now and registers a
// cleanup that fails the test if new ones are still running at test end.
// Goroutines are given a grace period to finish parking/exiting, and
// runtime/testing bookkeeping goroutines are filtered out by stack. Call it
// first in a test that starts replicas, clusters, or WALs:
//
//	func TestReplica(t *testing.T) {
//		testutil.CheckGoroutineLeaks(t)
//		...
//	}
func CheckGoroutineLeaks(t TB) {
	t.Helper()
	before := goroutineIDs()
	t.Cleanup(func() {
		if leaked := waitForExit(before); len(leaked) > 0 {
			t.Errorf("%d goroutine(s) leaked by this test:\n\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
	})
}

// VerifyTestMain runs the package's tests and then fails the run if any
// test leaked a goroutine. One line covers a whole suite:
//
//	func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
func VerifyTestMain(m interface{ Run() int }) {
	before := goroutineIDs()
	code := m.Run()
	if leaked := waitForExit(before); len(leaked) > 0 && code == 0 {
		fmt.Fprintf(os.Stderr, "testutil: %d goroutine(s) leaked by the test suite:\n\n%s\n",
			len(leaked), strings.Join(leaked, "\n\n"))
		code = 1
	}
	os.Exit(code)
}

// leakGrace bounds how long a finished test waits for its goroutines to
// unwind: Close/Stop return before the joined goroutine's final stack
// frames pop, so an immediate snapshot would flicker.
const leakGrace = 2 * time.Second

// waitForExit polls until every goroutine not in before has exited or the
// grace period lapses, and returns the survivors' stacks.
func waitForExit(before map[string]bool) []string {
	deadline := time.Now().Add(leakGrace)
	for {
		leaked := leakedStacks(before)
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var goroutineHeader = regexp.MustCompile(`^goroutine (\d+) `)

// goroutineIDs snapshots the IDs of every live goroutine.
func goroutineIDs() map[string]bool {
	ids := make(map[string]bool)
	for _, s := range allStacks() {
		if m := goroutineHeader.FindStringSubmatch(s); m != nil {
			ids[m[1]] = true
		}
	}
	return ids
}

// leakedStacks returns stacks of interesting goroutines absent from the
// before snapshot.
func leakedStacks(before map[string]bool) []string {
	var out []string
	for _, s := range allStacks() {
		m := goroutineHeader.FindStringSubmatch(s)
		if m == nil || before[m[1]] || systemGoroutine(s) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// allStacks dumps every goroutine's stack, growing the buffer until the
// dump fits.
func allStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return strings.Split(string(buf[:n]), "\n\n")
		}
		buf = make([]byte, len(buf)*2)
	}
}

// systemGoroutine filters runtime and testing bookkeeping: goroutines the
// test did not start and cannot join.
func systemGoroutine(stack string) bool {
	for _, marker := range []string{
		"testing.Main(",
		"testing.(*T).Run(",
		"testing.(*M).startAlarm",
		"testing.runFuzzing(",
		"testing.runFuzzTests(",
		"runtime.goexit",
		"runtime.gc",
		"runtime.MHeap",
		"runtime/trace.Start",
		"signal.signal_recv",
		"os/signal.loop",
		"pstore/internal/testutil.allStacks", // this checker itself
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	// The first line after the header names the function the goroutine is
	// parked in; a goroutine created by the runtime has no "created by".
	return !strings.Contains(stack, "created by")
}
