package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"pstore/internal/timeseries"
)

// WriteTrace writes a load series as CSV: an RFC3339 timestamp and the load
// value per line, with a header carrying the step size.
func WriteTrace(w io.Writer, s *timeseries.Series) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# step=%s\n", s.Step); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "time,load"); err != nil {
		return err
	}
	for i := 0; i < s.Len(); i++ {
		if _, err := fmt.Fprintf(bw, "%s,%.3f\n", s.TimeAt(i).Format(time.RFC3339), s.At(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a CSV trace written by WriteTrace.
func ReadTrace(r io.Reader) (*timeseries.Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var step time.Duration
	var start time.Time
	var vals []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if idx := strings.Index(text, "step="); idx >= 0 {
				d, err := time.ParseDuration(strings.TrimSpace(text[idx+5:]))
				if err != nil {
					return nil, fmt.Errorf("workload: line %d: bad step: %w", line, err)
				}
				step = d
			}
			continue
		}
		if text == "time,load" {
			continue
		}
		comma := strings.LastIndex(text, ",")
		if comma < 0 {
			return nil, fmt.Errorf("workload: line %d: expected time,load", line)
		}
		ts, err := time.Parse(time.RFC3339, text[:comma])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad timestamp: %w", line, err)
		}
		v, err := strconv.ParseFloat(text[comma+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad load: %w", line, err)
		}
		if len(vals) == 0 {
			start = ts
		}
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if step == 0 {
		return nil, fmt.Errorf("workload: trace missing step header")
	}
	return timeseries.New(start, step, vals), nil
}
