package workload

import (
	"context"
	"fmt"
	"time"

	"pstore/internal/timeseries"
)

// ReplayConfig controls trace replay compression and scaling. The paper
// replays B2W's traces at 10× speed; compressed-time experiments here go
// further so full days fit in seconds of wall clock.
type ReplayConfig struct {
	// SlotWall is the wall-clock duration each trace slot is compressed
	// into (e.g. a 1-minute slot replayed in 250ms).
	SlotWall time.Duration
	// LoadScale multiplies trace values to obtain the number of requests
	// fired per slot (the trace unit is requests/slot at production rate).
	LoadScale float64
	// MaxPerSlot caps requests per slot (safety valve). 0 = no cap.
	MaxPerSlot int
	// MaxLag drops events that fall more than this far behind schedule
	// instead of firing them in a burst when the replayer catches up after
	// a scheduling stall. 0 means never drop.
	MaxLag time.Duration
	// Batch caps how many already-due events ReplayBatched hands to one
	// fire call. 0 or 1 means no coalescing.
	Batch int
}

// ReplayStats reports what a replay actually fired.
type ReplayStats struct {
	Slots    int
	Requests int64
	Dropped  int64
	Elapsed  time.Duration
}

// Replay fires events open-loop at the rate given by the trace: slot i of
// the series triggers round(value·LoadScale) calls to fire, evenly paced
// within SlotWall. fire is invoked on the replayer goroutine and must not
// block (dispatch asynchronously); slot boundaries are kept on an absolute
// schedule, so a slow fire eats into its own slot but drift does not
// accumulate. Replay stops early when ctx is cancelled.
func Replay(ctx context.Context, s *timeseries.Series, cfg ReplayConfig, fire func(slot int)) (ReplayStats, error) {
	cfg.Batch = 1
	return ReplayBatched(ctx, s, cfg, func(slot, n int) {
		for j := 0; j < n; j++ {
			fire(slot)
		}
	})
}

// ReplayBatched is Replay with coalesced submission: when several events
// of a slot are already due (high trace rates push thousands of events
// through millisecond slots), they are handed to fire as one call —
// fire(slot, n) must dispatch n requests — bounded by cfg.Batch per call.
// This collapses per-event timer wakeups into per-batch ones, which keeps
// the replayer on schedule at rates where one-goroutine-per-event pacing
// would itself become the bottleneck.
func ReplayBatched(ctx context.Context, s *timeseries.Series, cfg ReplayConfig, fire func(slot, n int)) (ReplayStats, error) {
	if cfg.SlotWall <= 0 {
		return ReplayStats{}, fmt.Errorf("workload: SlotWall must be positive")
	}
	if cfg.LoadScale <= 0 {
		return ReplayStats{}, fmt.Errorf("workload: LoadScale must be positive")
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 1
	}
	var stats ReplayStats
	start := time.Now()
	for i := 0; i < s.Len(); i++ {
		slotStart := start.Add(time.Duration(i) * cfg.SlotWall)
		n := int(s.At(i)*cfg.LoadScale + 0.5)
		if cfg.MaxPerSlot > 0 && n > cfg.MaxPerSlot {
			n = cfg.MaxPerSlot
		}
		for k := 0; k < n; {
			due := slotStart.Add(time.Duration(k) * cfg.SlotWall / time.Duration(n))
			if d := time.Until(due); d > 0 {
				select {
				case <-ctx.Done():
					stats.Slots = i
					stats.Elapsed = time.Since(start)
					return stats, ctx.Err()
				case <-time.After(d):
				}
			} else if ctx.Err() != nil {
				stats.Slots = i
				stats.Elapsed = time.Since(start)
				return stats, ctx.Err()
			}
			// Everything due by now fires as one batch. Events are in
			// schedule order, so any dropped-for-lag events precede the
			// fireable ones in the scan.
			now := time.Now()
			fired, dropped := 0, 0
			for k+dropped+fired < n && fired < batch {
				evDue := slotStart.Add(time.Duration(k+dropped+fired) * cfg.SlotWall / time.Duration(n))
				if evDue.After(now) {
					break
				}
				if cfg.MaxLag > 0 && now.Sub(evDue) > cfg.MaxLag {
					dropped++
					continue
				}
				fired++
			}
			if fired > 0 {
				fire(i, fired)
			}
			stats.Requests += int64(fired)
			stats.Dropped += int64(dropped)
			k += fired + dropped
		}
		// Wait out the remainder of the slot (e.g. when n is 0 or small).
		if d := time.Until(slotStart.Add(cfg.SlotWall)); d > 0 {
			select {
			case <-ctx.Done():
				stats.Slots = i + 1
				stats.Elapsed = time.Since(start)
				return stats, ctx.Err()
			case <-time.After(d):
			}
		}
		stats.Slots = i + 1
	}
	stats.Elapsed = time.Since(start)
	return stats, nil
}
