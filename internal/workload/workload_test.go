package workload

import (
	"bytes"
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"pstore/internal/timeseries"
)

func TestGenerateB2WShape(t *testing.T) {
	cfg := DefaultB2WConfig()
	cfg.Days = 7
	s := GenerateB2W(cfg)
	if s.Len() != 7*1440 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Step != time.Minute {
		t.Errorf("step = %v", s.Step)
	}
	// Peak-to-trough ratio should be large, near the paper's ~10×.
	ratio := s.Max() / s.Min()
	if ratio < 5 || ratio > 25 {
		t.Errorf("peak/trough = %.1f, want within [5, 25]", ratio)
	}
	// All values non-negative.
	if s.Min() < 0 {
		t.Error("negative load")
	}
	// Daytime (noon) load must exceed night (4am) load on every day.
	for d := 0; d < 7; d++ {
		noon := s.At(d*1440 + 720)
		night := s.At(d*1440 + 270)
		if noon < 3*night {
			t.Errorf("day %d: noon %.0f not ≫ night %.0f", d, noon, night)
		}
	}
}

func TestGenerateB2WDeterministic(t *testing.T) {
	cfg := DefaultB2WConfig()
	cfg.Days = 2
	a := GenerateB2W(cfg)
	b := GenerateB2W(cfg)
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("seeded generator not deterministic at %d", i)
		}
	}
	cfg.Seed = 99
	c := GenerateB2W(cfg)
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != c.At(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGenerateB2WBlackFriday(t *testing.T) {
	cfg := DefaultB2WConfig()
	cfg.Days = 5
	cfg.NoiseFrac = 0
	cfg.DailyDriftFrac = 0
	cfg.PromoProb = 0
	cfg.BlackFridayDay = 3
	cfg.BlackFridayBoost = 2.2
	s := GenerateB2W(cfg)
	// Compare Black Friday noon to the previous (same weekday class) noon.
	bf := s.At(3*1440 + 720)
	normal := s.At(2*1440 + 720)
	if bf < 1.3*normal {
		t.Errorf("Black Friday noon %.0f not well above normal %.0f", bf, normal)
	}
}

func TestGenerateWikiShapes(t *testing.T) {
	en := GenerateWiki(DefaultWikiEnglish())
	de := GenerateWiki(DefaultWikiGerman())
	if en.Len() != 42*24 || de.Len() != 42*24 {
		t.Fatalf("lens = %d, %d", en.Len(), de.Len())
	}
	if en.Step != time.Hour {
		t.Errorf("step = %v", en.Step)
	}
	// English volume is much higher than German (Fig 6: ~8M vs ~1.5M).
	if en.Mean() < 3*de.Mean() {
		t.Errorf("EN mean %.0f not ≫ DE mean %.0f", en.Mean(), de.Mean())
	}
	// German is relatively noisier: coefficient of deviation from its own
	// daily pattern should be higher. Use lag-24 autocorrelation residual.
	relResid := func(s *timeseries.Series) float64 {
		sum, n := 0.0, 0
		for i := 24; i < s.Len(); i++ {
			d := (s.At(i) - s.At(i-24)) / s.Mean()
			sum += d * d
			n++
		}
		return math.Sqrt(sum / float64(n))
	}
	if relResid(de) <= relResid(en) {
		t.Errorf("DE day-over-day residual %.4f should exceed EN %.4f", relResid(de), relResid(en))
	}
}

func TestTraceRoundTrip(t *testing.T) {
	cfg := DefaultB2WConfig()
	cfg.Days = 1
	s := GenerateB2W(cfg)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() || got.Step != s.Step || !got.Start.Equal(s.Start) {
		t.Fatalf("round trip meta: len %d/%d step %v/%v", got.Len(), s.Len(), got.Step, s.Step)
	}
	for i := 0; i < s.Len(); i++ {
		if math.Abs(got.At(i)-s.At(i)) > 0.001 {
			t.Fatalf("value %d: %v vs %v", i, got.At(i), s.At(i))
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewBufferString("")); err == nil {
		t.Error("empty trace should fail")
	}
	if _, err := ReadTrace(bytes.NewBufferString("time,load\n2016-07-01T00:00:00Z,5\n")); err == nil {
		t.Error("missing step header should fail")
	}
	if _, err := ReadTrace(bytes.NewBufferString("# step=1m\ntime,load\nnot-a-time,5\n")); err == nil {
		t.Error("bad timestamp should fail")
	}
	if _, err := ReadTrace(bytes.NewBufferString("# step=1m\ntime,load\n2016-07-01T00:00:00Z,xyz\n")); err == nil {
		t.Error("bad load should fail")
	}
}

func TestReplayFiresExpectedCounts(t *testing.T) {
	s := timeseries.New(time.Time{}, time.Minute, []float64{10, 0, 5})
	var fired atomic.Int64
	perSlot := make([]int64, 3)
	stats, err := Replay(context.Background(), s, ReplayConfig{
		SlotWall:  30 * time.Millisecond,
		LoadScale: 1,
	}, func(slot int) {
		fired.Add(1)
		atomic.AddInt64(&perSlot[slot], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 15 || stats.Requests != 15 {
		t.Errorf("fired = %d, stats = %+v", fired.Load(), stats)
	}
	if perSlot[0] != 10 || perSlot[1] != 0 || perSlot[2] != 5 {
		t.Errorf("per-slot = %v", perSlot)
	}
	if stats.Slots != 3 {
		t.Errorf("slots = %d", stats.Slots)
	}
	// Wall time roughly 3 slots.
	if stats.Elapsed < 80*time.Millisecond {
		t.Errorf("elapsed = %v, want ≈90ms", stats.Elapsed)
	}
}

func TestReplayScaleAndCap(t *testing.T) {
	s := timeseries.New(time.Time{}, time.Minute, []float64{100})
	var fired atomic.Int64
	_, err := Replay(context.Background(), s, ReplayConfig{
		SlotWall:   10 * time.Millisecond,
		LoadScale:  0.1,
		MaxPerSlot: 7,
	}, func(int) { fired.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 7 {
		t.Errorf("fired = %d, want capped 7", fired.Load())
	}
}

func TestReplayCancellation(t *testing.T) {
	s := timeseries.New(time.Time{}, time.Minute, []float64{1000, 1000, 1000})
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	stats, err := Replay(ctx, s, ReplayConfig{SlotWall: 50 * time.Millisecond, LoadScale: 1},
		func(int) {})
	if err == nil {
		t.Error("cancelled replay should return an error")
	}
	if stats.Slots >= 3 {
		t.Errorf("slots = %d, should have stopped early", stats.Slots)
	}
}

func TestReplayValidation(t *testing.T) {
	s := timeseries.New(time.Time{}, time.Minute, []float64{1})
	if _, err := Replay(context.Background(), s, ReplayConfig{SlotWall: 0, LoadScale: 1}, func(int) {}); err == nil {
		t.Error("zero SlotWall should fail")
	}
	if _, err := Replay(context.Background(), s, ReplayConfig{SlotWall: time.Millisecond, LoadScale: 0}, func(int) {}); err == nil {
		t.Error("zero LoadScale should fail")
	}
}

func TestReplayMaxLagDropsBurst(t *testing.T) {
	s := timeseries.New(time.Time{}, time.Minute, []float64{4, 4})
	var fired atomic.Int64
	slow := true
	stats, err := Replay(context.Background(), s, ReplayConfig{
		SlotWall:  40 * time.Millisecond,
		LoadScale: 1,
		MaxLag:    20 * time.Millisecond,
	}, func(int) {
		fired.Add(1)
		if slow {
			// Stall the replayer well past MaxLag once; later events of
			// the slot must be dropped rather than fired in a burst.
			slow = false
			time.Sleep(70 * time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped == 0 {
		t.Errorf("expected dropped events, stats = %+v", stats)
	}
	if stats.Requests+stats.Dropped != 8 {
		t.Errorf("requests %d + dropped %d != 8", stats.Requests, stats.Dropped)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	cfg := DefaultB2WConfig()
	cfg.Days = 1
	s := GenerateB2W(cfg)
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() || got.Step != s.Step || !got.Start.Equal(s.Start) {
		t.Fatalf("round trip meta mismatch: len %d/%d step %v/%v", got.Len(), s.Len(), got.Step, s.Step)
	}
	for i := 0; i < s.Len(); i++ {
		if got.At(i) != s.At(i) {
			t.Fatalf("value %d: %v vs %v", i, got.At(i), s.At(i))
		}
	}
}

func TestTraceJSONErrors(t *testing.T) {
	if _, err := ReadTraceJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := ReadTraceJSON(bytes.NewBufferString(`{"start":"2016-07-01T00:00:00Z","step_ms":0,"values":[1]}`)); err == nil {
		t.Error("zero step should fail")
	}
	if _, err := ReadTraceJSON(bytes.NewBufferString(`{"start":"2016-07-01T00:00:00Z","step_ms":60000,"values":[]}`)); err == nil {
		t.Error("empty values should fail")
	}
	bad := timeseries.New(time.Time{}, 0, []float64{1})
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, bad); err == nil {
		t.Error("zero-step series should fail to encode")
	}
}

func TestReplayBatchedCoalescesAndCaps(t *testing.T) {
	// A 1ms slot carrying 200 events is far behind schedule from the first
	// wakeup, so nearly everything is due at once; batches must coalesce
	// but never exceed the configured cap.
	s := timeseries.New(time.Time{}, time.Minute, []float64{200})
	var total, calls, oversized atomic.Int64
	stats, err := ReplayBatched(context.Background(), s, ReplayConfig{
		SlotWall:  time.Millisecond,
		LoadScale: 1,
		Batch:     16,
	}, func(slot, n int) {
		if slot != 0 {
			t.Errorf("slot = %d, want 0", slot)
		}
		if n <= 0 || n > 16 {
			oversized.Add(1)
		}
		calls.Add(1)
		total.Add(int64(n))
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 200 || stats.Requests != 200 {
		t.Errorf("total fired = %d, stats = %+v", total.Load(), stats)
	}
	if oversized.Load() != 0 {
		t.Errorf("%d batches outside (0,16]", oversized.Load())
	}
	if calls.Load() >= 200 {
		t.Errorf("calls = %d, expected coalescing below one call per event", calls.Load())
	}
}
