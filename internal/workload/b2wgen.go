// Package workload provides load-trace generation, trace file IO and an
// open-loop trace replayer.
//
// The paper's evaluation is driven by proprietary B2W Digital transaction
// logs and Wikipedia page-view dumps; neither is available offline, so this
// package synthesizes traces with the same published characteristics: a
// strong diurnal pattern with ~10× peak-to-trough ratio, weekly seasonality,
// day-to-day variability, occasional promotion spikes, and a Black Friday
// surge (B2W); and smoother/noisier hourly page-view curves (Wikipedia EN
// and DE).
package workload

import (
	"math"
	"math/rand"
	"time"

	"pstore/internal/timeseries"
)

// B2WConfig parameterizes the synthetic B2W shopping-cart load generator.
type B2WConfig struct {
	Start       time.Time
	Days        int
	SlotsPerDay int // 1440 for 1-minute slots, as in the paper

	// TroughLoad and PeakLoad bound the diurnal swing (Fig 1 shows ≈10×).
	TroughLoad float64
	PeakLoad   float64

	// NoiseFrac is the relative σ of slot-level Gaussian noise.
	NoiseFrac float64
	// DailyDriftFrac is the relative σ of a per-day amplitude multiplier
	// (seasonality of demand, campaigns, weather...).
	DailyDriftFrac float64
	// WeekendDip scales weekend load (e.g. 0.9 = 10% lower on weekends).
	WeekendDip float64

	// PromoProb is the per-day probability of a promotion spike lasting a
	// few hours at PromoBoost× the normal level.
	PromoProb  float64
	PromoBoost float64

	// BlackFridayDay, if ≥ 0, marks one day with a BlackFridayBoost× surge
	// (B2W's biggest sale of the year). The surge starts at midnight and
	// decays through the day, as in the paper's Fig 13 inset.
	BlackFridayDay   int
	BlackFridayBoost float64

	Seed int64
}

// DefaultB2WConfig returns a configuration matching the published shape of
// B2W's cart/checkout load: 1-minute slots, 10× peak-to-trough.
func DefaultB2WConfig() B2WConfig {
	return B2WConfig{
		Start:            time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC),
		Days:             7,
		SlotsPerDay:      1440,
		TroughLoad:       2200,
		PeakLoad:         22000,
		NoiseFrac:        0.07,
		DailyDriftFrac:   0.10,
		WeekendDip:       0.92,
		PromoProb:        0.05,
		PromoBoost:       1.5,
		BlackFridayDay:   -1,
		BlackFridayBoost: 2.2,
		Seed:             1,
	}
}

// GenerateB2W synthesizes a B2W-like load trace.
func GenerateB2W(cfg B2WConfig) *timeseries.Series {
	rng := rand.New(rand.NewSource(cfg.Seed))
	slots := cfg.Days * cfg.SlotsPerDay
	vals := make([]float64, slots)
	step := 24 * time.Hour / time.Duration(cfg.SlotsPerDay)

	// Per-day state, drawn once per day for continuity within the day.
	drift := make([]float64, cfg.Days)
	promoStart := make([]int, cfg.Days)
	promoLen := make([]int, cfg.Days)
	for d := 0; d < cfg.Days; d++ {
		drift[d] = 1 + rng.NormFloat64()*cfg.DailyDriftFrac
		if drift[d] < 0.5 {
			drift[d] = 0.5
		}
		promoStart[d] = -1
		if rng.Float64() < cfg.PromoProb {
			// A promotion spike somewhere between 08:00 and 20:00.
			promoStart[d] = cfg.SlotsPerDay/3 + rng.Intn(cfg.SlotsPerDay/2)
			promoLen[d] = cfg.SlotsPerDay/24 + rng.Intn(cfg.SlotsPerDay/8) // 1h–4h
		}
	}

	for i := 0; i < slots; i++ {
		day := i / cfg.SlotsPerDay
		slot := i % cfg.SlotsPerDay
		frac := float64(slot) / float64(cfg.SlotsPerDay)

		// Diurnal curve: minimum around 04:30, broad daytime plateau. The
		// exponent sharpens the night dip, matching Fig 1's shape.
		s := (1 - math.Cos(2*math.Pi*(frac-0.1875))) / 2
		base := cfg.TroughLoad + (cfg.PeakLoad-cfg.TroughLoad)*math.Pow(s, 1.3)

		v := base * drift[day]
		weekday := cfg.Start.Add(time.Duration(i) * step).Weekday()
		if weekday == time.Saturday || weekday == time.Sunday {
			v *= cfg.WeekendDip
		}
		if ps := promoStart[day]; ps >= 0 && slot >= ps && slot < ps+promoLen[day] {
			// Ramp the promo in and out to avoid unrealistic cliffs.
			pos := float64(slot-ps) / float64(promoLen[day])
			ramp := math.Sin(math.Pi * pos)
			v *= 1 + (cfg.PromoBoost-1)*ramp
		}
		if day == cfg.BlackFridayDay {
			// Surge strongest in the first hours, decaying through the day.
			decay := math.Exp(-2 * frac)
			v *= 1 + (cfg.BlackFridayBoost-1)*(0.4+0.6*decay)
		}
		v += rng.NormFloat64() * cfg.NoiseFrac * v
		if v < 0 {
			v = 0
		}
		vals[i] = v
	}
	return timeseries.New(cfg.Start, step, vals)
}
