package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"pstore/internal/timeseries"
)

// jsonTrace is the JSON wire format of a load trace: compact (values only)
// with the timeline in the header, so months of slots stay small.
type jsonTrace struct {
	Start  time.Time `json:"start"`
	StepMS int64     `json:"step_ms"`
	Values []float64 `json:"values"`
}

// WriteTraceJSON writes a load series as JSON (see ReadTraceJSON).
func WriteTraceJSON(w io.Writer, s *timeseries.Series) error {
	if s.Step <= 0 {
		return fmt.Errorf("workload: series step must be positive")
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jsonTrace{
		Start:  s.Start,
		StepMS: s.Step.Milliseconds(),
		Values: s.Values,
	})
}

// ReadTraceJSON parses a trace written by WriteTraceJSON.
func ReadTraceJSON(r io.Reader) (*timeseries.Series, error) {
	var t jsonTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: decoding JSON trace: %w", err)
	}
	if t.StepMS <= 0 {
		return nil, fmt.Errorf("workload: JSON trace has invalid step %dms", t.StepMS)
	}
	if len(t.Values) == 0 {
		return nil, fmt.Errorf("workload: JSON trace has no values")
	}
	return timeseries.New(t.Start, time.Duration(t.StepMS)*time.Millisecond, t.Values), nil
}
