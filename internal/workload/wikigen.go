package workload

import (
	"math"
	"math/rand"
	"time"

	"pstore/internal/timeseries"
)

// WikiConfig parameterizes the synthetic Wikipedia page-view generator
// (hourly slots, per §5's Fig 6 evaluation).
type WikiConfig struct {
	Start time.Time
	Days  int

	// BaseLoad and Amp set the mean hourly request level and the diurnal
	// swing around it.
	BaseLoad float64
	Amp      float64

	// WeeklyAmp modulates weekdays vs weekends.
	WeeklyAmp float64
	// NoiseFrac is the relative σ of hourly noise; the German edition is
	// noisier than the English one.
	NoiseFrac float64
	// TransientProb is the per-hour probability of a short news-driven
	// transient of TransientBoost×.
	TransientProb  float64
	TransientBoost float64

	Seed int64
}

// DefaultWikiEnglish matches the smoother, highly periodic English-language
// trace of Fig 6 (≈6–10M requests/hour).
func DefaultWikiEnglish() WikiConfig {
	return WikiConfig{
		Start:          time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC),
		Days:           42,
		BaseLoad:       8e6,
		Amp:            2.2e6,
		WeeklyAmp:      0.05,
		NoiseFrac:      0.025,
		TransientProb:  0.004,
		TransientBoost: 1.25,
		Seed:           2,
	}
}

// DefaultWikiGerman matches the less predictable German-language trace of
// Fig 6 (≈0.5–2.5M requests/hour, sharper diurnal swing, more noise).
func DefaultWikiGerman() WikiConfig {
	return WikiConfig{
		Start:          time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC),
		Days:           42,
		BaseLoad:       1.5e6,
		Amp:            0.9e6,
		WeeklyAmp:      0.1,
		NoiseFrac:      0.06,
		TransientProb:  0.012,
		TransientBoost: 1.5,
		Seed:           3,
	}
}

// GenerateWiki synthesizes an hourly Wikipedia-like page-view trace.
func GenerateWiki(cfg WikiConfig) *timeseries.Series {
	rng := rand.New(rand.NewSource(cfg.Seed))
	slots := cfg.Days * 24
	vals := make([]float64, slots)
	transient := 0 // remaining hours of an active transient
	for i := 0; i < slots; i++ {
		hour := i % 24
		// Diurnal: peak in the evening (~20:00), trough early morning.
		diurnal := math.Sin(2 * math.Pi * (float64(hour) - 8) / 24)
		v := cfg.BaseLoad + cfg.Amp*diurnal
		weekday := cfg.Start.Add(time.Duration(i) * time.Hour).Weekday()
		if weekday == time.Saturday || weekday == time.Sunday {
			v *= 1 + cfg.WeeklyAmp
		}
		if transient == 0 && rng.Float64() < cfg.TransientProb {
			transient = 2 + rng.Intn(6)
		}
		if transient > 0 {
			v *= cfg.TransientBoost
			transient--
		}
		v += rng.NormFloat64() * cfg.NoiseFrac * v
		if v < 0 {
			v = 0
		}
		vals[i] = v
	}
	return timeseries.New(cfg.Start, time.Hour, vals)
}
