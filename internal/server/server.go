package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/metrics"
	"pstore/internal/migration"
	"pstore/internal/replication"
)

// Server serves a cluster over TCP.
type Server struct {
	c        *cluster.Cluster
	mig      migration.Options
	lis      net.Listener
	logf     func(format string, args ...any)
	connWrap func(net.Conn) net.Conn

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	scaling bool
}

// New wraps a cluster with a TCP front end. mig configures scale requests'
// migration rate. logf may be nil to silence logging.
func New(c *cluster.Cluster, mig migration.Options, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{c: c, mig: mig, logf: logf, conns: make(map[net.Conn]struct{})}
}

// WrapConns installs a wrapper applied to every accepted connection — the
// hook the fault injector uses to chaos-test the wire without the server
// knowing. Must be called before Listen.
func (s *Server) WrapConns(wrap func(net.Conn) net.Conn) { s.connWrap = wrap }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:7070") and
// returns the bound address (useful with port 0).
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	go s.acceptLoop(lis)
	return lis.Addr().String(), nil
}

// Close stops the listener and all connections. The underlying cluster is
// not stopped (the owner controls its lifecycle).
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	return err
}

func (s *Server) acceptLoop(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true) // batching supplies the coalescing; don't add Nagle delay
		}
		if s.connWrap != nil {
			conn = s.connWrap(conn)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// reqPool recycles decoded requests (and their Args maps) across frames.
var reqPool = sync.Pool{New: func() any { return new(Request) }}

// serveConn decodes frames as fast as they arrive and fans each request
// out to the executors; replies are written back in completion order
// through a batching writer, so responses from many concurrent
// transactions coalesce into few syscalls.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	w := newReplyWriter(conn)
	runner := newCallRunner(s, w)
	defer w.stop()
	defer runner.wg.Wait()
	defer close(runner.ch)
	var frame []byte
	for {
		payload, err := readFrame(br, &frame)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) {
				s.logf("pstore-server: connection closed: %v", err)
			}
			return
		}
		req := reqPool.Get().(*Request)
		clear(req.Args)
		clear(req.Session)
		if err := decodeRequest(payload, req); err != nil {
			s.logf("pstore-server: bad frame: %v", err)
			return
		}
		switch req.Kind {
		case KindPing:
			// Answered inline: no executor work, no goroutine.
			w.reply(&Response{ID: req.ID})
			reqPool.Put(req)
		case KindCall:
			// Transactions dispatch straight from the read loop: the
			// executor's completion path encodes the reply, so no
			// per-in-flight-call goroutine exists to wake.
			s.dispatchCall(req, w)
		case KindRead:
			runner.dispatch(req)
		default:
			runner.wg.Add(1)
			go func() {
				defer runner.wg.Done()
				resp := s.handleSlow(req)
				w.reply(&resp)
				reqPool.Put(req)
			}()
		}
	}
}

// callRunner fans transactions out to a self-sizing pool of per-connection
// worker goroutines. Workers are reused across requests, so steady-state
// traffic pays no goroutine spawn (and no stack re-growth — transaction
// call stacks run deep through cluster routing and the executor).
type callRunner struct {
	s    *Server
	w    *replyWriter
	ch   chan *Request
	wg   sync.WaitGroup
	idle atomic.Int64
}

func newCallRunner(s *Server, w *replyWriter) *callRunner {
	return &callRunner{s: s, w: w, ch: make(chan *Request, 256)}
}

// dispatch hands req to an idle worker, growing the pool when none is
// waiting. The idle count is advisory — a lost race spawns one extra
// worker that simply parks on the channel.
func (r *callRunner) dispatch(req *Request) {
	if r.idle.Load() == 0 {
		r.wg.Add(1)
		go r.worker()
	}
	r.ch <- req
}

func (r *callRunner) worker() {
	defer r.wg.Done()
	r.idle.Add(1)
	for req := range r.ch {
		r.idle.Add(-1)
		r.s.handleCall(req, r.w)
		r.idle.Add(1)
	}
	r.idle.Add(-1)
}

// callCompletion carries one asynchronous transaction through the
// executor's completion path back to its connection's batching writer.
// Pooled so the steady-state call path allocates nothing.
type callCompletion struct {
	s   *Server
	w   *replyWriter
	req *Request
	txn *engine.Txn
}

var callCompletions = sync.Pool{New: func() any { return new(callCompletion) }}

// dispatchCall hands a transaction to the cluster's async call path. The
// reply is encoded by Complete on the executor (or group-commit) goroutine;
// the read loop moves straight on to the next frame.
func (s *Server) dispatchCall(req *Request, w *replyWriter) {
	txn := engine.AcquireTxn(req.Proc, req.Key, req.Args)
	cc := callCompletions.Get().(*callCompletion)
	cc.s, cc.w, cc.req, cc.txn = s, w, req, txn
	s.c.CallAsync(txn, cc)
}

// Complete encodes the transaction's reply into the connection's batch
// buffer. It is bounded — appendResponse under a mutex plus a non-blocking
// wake — which is what the engine.Completion contract requires of code
// running on the executor goroutine.
func (cc *callCompletion) Complete(res engine.Result) {
	s, w, req, txn := cc.s, cc.w, cc.req, cc.txn
	*cc = callCompletion{}
	callCompletions.Put(cc)
	resp := Response{ID: req.ID, Out: res.Out, Latency: res.Latency,
		Routed: true, Part: res.Partition, LSN: res.LSN}
	if res.Err != nil {
		resp.Err = res.Err.Error()
		resp.Abort = engine.IsAbort(res.Err)
		if errors.Is(res.Err, engine.ErrOverloaded) {
			resp.Busy = true
			resp.RetryAfter = s.c.ShedRetryAfter()
		} else if errors.Is(res.Err, replication.ErrQuorumLost) || errors.Is(res.Err, replication.ErrFenced) {
			// Shed pre-execution by the primary's self-fencing gate: safe to
			// retry once the monitor restores quorum or promotes a successor.
			resp.Busy = true
			resp.RetryAfter = s.c.FenceRetryAfter()
		}
	}
	w.reply(&resp) // encodes Out before the txn (which owns it) is released
	txn.Release()
	reqPool.Put(req)
}

// handleCall runs one session-consistent read synchronously on a runner
// worker: pooled Txn in, batched reply out. (Transactions take the async
// dispatchCall path instead.)
func (s *Server) handleCall(req *Request, w *replyWriter) {
	var res engine.Result
	var txn *engine.Txn
	if req.Kind == KindRead {
		res = s.c.CallReadOnly(req.Proc, req.Key, req.Args, req.Session)
	} else {
		txn = engine.AcquireTxn(req.Proc, req.Key, req.Args)
		res = s.c.Call(txn)
	}
	resp := Response{ID: req.ID, Out: res.Out, Latency: res.Latency,
		Routed: true, Part: res.Partition, LSN: res.LSN}
	if res.Err != nil {
		resp.Err = res.Err.Error()
		resp.Abort = engine.IsAbort(res.Err)
		if errors.Is(res.Err, engine.ErrOverloaded) {
			// Shed before execution: tell the client it is safe to retry,
			// and when.
			resp.Busy = true
			resp.RetryAfter = s.c.ShedRetryAfter()
		} else if errors.Is(res.Err, replication.ErrQuorumLost) || errors.Is(res.Err, replication.ErrFenced) {
			// Fenced or quorum-degraded primary, also shed pre-execution.
			resp.Busy = true
			resp.RetryAfter = s.c.FenceRetryAfter()
		}
	}
	w.reply(&resp) // encodes Out before the txn (which owns it) is reused
	if txn != nil {
		txn.Release()
	}
	reqPool.Put(req)
}

// handleSlow serves the rare non-transactional kinds.
func (s *Server) handleSlow(req *Request) Response {
	resp := Response{ID: req.ID}
	switch req.Kind {
	case KindScale:
		resp.Err = s.scale(req.TargetNodes)
	case KindStats:
		resp.Stats = s.stats()
	case KindKillNode:
		if err := s.c.KillNode(req.Node); err != nil {
			resp.Err = err.Error()
		} else {
			s.logf("pstore-server: node %d killed (chaos)", req.Node)
		}
	default:
		resp.Err = fmt.Sprintf("pstore-server: unknown request kind %q", req.Kind)
	}
	return resp
}

// scale runs a reconfiguration; concurrent scale requests are rejected.
func (s *Server) scale(target int) string {
	s.mu.Lock()
	if s.scaling {
		s.mu.Unlock()
		return "pstore-server: a reconfiguration is already in progress"
	}
	s.scaling = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.scaling = false
		s.mu.Unlock()
	}()
	rep, err := migration.Run(s.c, target, s.mig)
	if err != nil {
		return err.Error()
	}
	s.logf("pstore-server: scaled %d→%d in %v (%d buckets, %d rows)",
		rep.FromNodes, rep.ToNodes, rep.Duration, rep.BucketsMoved, rep.RowsMoved)
	return ""
}

func (s *Server) stats() *Stats {
	rows, err := s.c.TotalRows()
	if err != nil {
		log.Printf("pstore-server: counting rows: %v", err)
	}
	st := &Stats{
		Nodes:       s.c.NumNodes(),
		Partitions:  s.c.NumNodes() * s.c.PartitionsPerNode(),
		TotalRows:   rows,
		OfferedTxns: s.c.OfferedLoad().Total(),
	}
	if ws := s.c.Latencies().Windows(); len(ws) > 0 {
		vals := metrics.PercentileSeries(ws, 99)
		if len(vals) > 0 {
			st.P99 = ws[len(ws)-1].P99
		}
	}
	rs := s.c.ReplicationStats()
	st.ReplFactor = rs.Factor
	st.ReplReplicas = rs.Replicas
	st.ReplMaxLag = rs.MaxLagRecords
	st.ReplRecords = int(rs.Records)
	st.ReplFailovers = int(rs.Failovers)
	st.ReplPromotions = int(rs.Promotions)
	st.ReplResyncs = int(rs.Resyncs)
	st.ReplStaleWaits = int(rs.StaleWaits)
	st.ReplReplicaReads = int(rs.ReplicaReads)
	st.ReplFallbackReads = int(rs.FallbackReads)
	st.DeadNodes = len(s.c.DeadNodes())
	st.ReplFencedWrites = int(rs.FencedWrites)
	st.ReplQuorumLosses = int(rs.QuorumLosses)
	st.ReplQuorumLostWrites = int(rs.QuorumLostWrites)
	st.ReplPromotionsBlocked = int(rs.PromotionsBlocked)
	st.ReplStaleDemotions = int(rs.StaleDemotions)
	return st
}

// replyWriter batches response frames: completions append under a mutex
// and a single flusher goroutine writes whatever accumulated in one
// syscall, mirroring the client's write batching.
type replyWriter struct {
	conn net.Conn
	wake chan struct{}
	done chan struct{}
	quit chan struct{}

	mu    sync.Mutex
	buf   []byte
	spare []byte
	err   error
}

func newReplyWriter(conn net.Conn) *replyWriter {
	w := &replyWriter{
		conn: conn,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
		quit: make(chan struct{}),
	}
	go w.loop()
	return w
}

// reply encodes resp into the batch buffer and nudges the flusher. After a
// write error the connection is dead; frames are dropped.
func (w *replyWriter) reply(resp *Response) {
	w.mu.Lock()
	if w.err == nil {
		w.buf = appendResponse(w.buf, resp)
	}
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *replyWriter) loop() {
	defer close(w.done)
	for {
		select {
		case <-w.quit:
			w.flush() // drain frames buffered before stop
			return
		case <-w.wake:
		}
		if !w.flush() {
			return
		}
	}
}

// flush writes everything buffered in one syscall; false means the
// connection failed.
func (w *replyWriter) flush() bool {
	w.mu.Lock()
	buf := w.buf
	w.buf = w.spare[:0]
	w.spare = nil
	w.mu.Unlock()
	if len(buf) > 0 {
		if _, err := w.conn.Write(buf); err != nil {
			w.mu.Lock()
			w.err = err
			w.mu.Unlock()
			w.conn.Close()
			return false
		}
	}
	w.mu.Lock()
	if w.spare == nil {
		w.spare = buf[:0]
	}
	w.mu.Unlock()
	return true
}

// stop terminates the flusher after draining anything already buffered.
func (w *replyWriter) stop() {
	close(w.quit)
	<-w.done
}
