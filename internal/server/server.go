package server

import (
	"encoding/gob"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/metrics"
	"pstore/internal/migration"
)

// Server serves a cluster over TCP.
type Server struct {
	c    *cluster.Cluster
	mig  migration.Options
	lis  net.Listener
	logf func(format string, args ...any)

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	scaling bool
}

// New wraps a cluster with a TCP front end. mig configures scale requests'
// migration rate. logf may be nil to silence logging.
func New(c *cluster.Cluster, mig migration.Options, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{c: c, mig: mig, logf: logf, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:7070") and
// returns the bound address (useful with port 0).
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	go s.acceptLoop(lis)
	return lis.Addr().String(), nil
}

// Close stops the listener and all connections. The underlying cluster is
// not stopped (the owner controls its lifecycle).
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	return err
}

func (s *Server) acceptLoop(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.logf("pstore-server: connection closed: %v", err)
			}
			return
		}
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			resp := s.handle(req)
			encMu.Lock()
			defer encMu.Unlock()
			if err := enc.Encode(resp); err != nil {
				s.logf("pstore-server: encode: %v", err)
				conn.Close()
			}
		}(req)
	}
}

func (s *Server) handle(req Request) Response {
	resp := Response{ID: req.ID}
	switch req.Kind {
	case KindPing:
	case KindCall:
		res := s.c.Call(&engine.Txn{Proc: req.Proc, Key: req.Key, Args: req.Args})
		resp.Out = res.Out
		resp.Latency = res.Latency
		if res.Err != nil {
			resp.Err = res.Err.Error()
			resp.Abort = engine.IsAbort(res.Err)
		}
	case KindScale:
		resp.Err = s.scale(req.TargetNodes)
	case KindStats:
		resp.Stats = s.stats()
	default:
		resp.Err = fmt.Sprintf("pstore-server: unknown request kind %q", req.Kind)
	}
	return resp
}

// scale runs a reconfiguration; concurrent scale requests are rejected.
func (s *Server) scale(target int) string {
	s.mu.Lock()
	if s.scaling {
		s.mu.Unlock()
		return "pstore-server: a reconfiguration is already in progress"
	}
	s.scaling = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.scaling = false
		s.mu.Unlock()
	}()
	rep, err := migration.Run(s.c, target, s.mig)
	if err != nil {
		return err.Error()
	}
	s.logf("pstore-server: scaled %d→%d in %v (%d buckets, %d rows)",
		rep.FromNodes, rep.ToNodes, rep.Duration, rep.BucketsMoved, rep.RowsMoved)
	return ""
}

func (s *Server) stats() *Stats {
	rows, err := s.c.TotalRows()
	if err != nil {
		log.Printf("pstore-server: counting rows: %v", err)
	}
	st := &Stats{
		Nodes:       s.c.NumNodes(),
		Partitions:  s.c.NumNodes() * s.c.PartitionsPerNode(),
		TotalRows:   rows,
		OfferedTxns: s.c.OfferedLoad().Total(),
	}
	if ws := s.c.Latencies().Windows(); len(ws) > 0 {
		vals := metrics.PercentileSeries(ws, 99)
		if len(vals) > 0 {
			st.P99 = ws[len(ws)-1].P99
		}
	}
	return st
}
