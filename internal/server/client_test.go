package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pstore/internal/b2w"
)

// TestClientConcurrentPipelining drives one Client from many goroutines —
// the configuration the write batching and response pipelining exist for.
// Run under -race this doubles as the data-race check for the shared
// buffers, pending map and pooled reply channels.
func TestClientConcurrentPipelining(t *testing.T) {
	_, addr, _ := startTestServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const goroutines, calls = 16, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if i%10 == 0 {
					if err := cl.Ping(); err != nil {
						t.Errorf("ping: %v", err)
						return
					}
					continue
				}
				key := fmt.Sprintf("cart-%d", (g*calls+i)%8) // contended keys
				if _, err := cl.Call(b2w.ProcAddLineToCart, key,
					map[string]string{"sku": "s", "qty": "1", "price": "1"}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// blackholeListener accepts one connection and swallows whatever arrives
// without ever replying, leaving callers' requests permanently in flight.
func blackholeListener(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn)
	}()
	return lis.Addr().String()
}

func TestClientCloseFailsPending(t *testing.T) {
	addr := blackholeListener(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const inflight = 8
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			_, err := cl.Call("NoSuchProc", "k", nil)
			errs <- err
		}()
	}
	// Let the calls register as pending before closing.
	time.Sleep(50 * time.Millisecond)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inflight; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Error("pending call succeeded against a server that never replied")
			} else if !strings.Contains(err.Error(), ErrClientClosed.Error()) {
				t.Errorf("pending call err = %v, want %v", err, ErrClientClosed)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pending call did not fail after Close — not deterministic")
		}
	}
	// New requests on the closed client fail immediately with the sentinel.
	if err := cl.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("ping after close = %v, want ErrClientClosed", err)
	}
}

// TestClientReadErrCause kills the server side mid-flight and checks that
// (a) in-flight calls fail with the read error rather than hanging and
// (b) later calls fail immediately with the same stored cause.
func TestClientReadErrCause(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()
	cl, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	conn := <-accepted

	callErr := make(chan error, 1)
	go func() {
		_, err := cl.Call("Anything", "k", nil)
		callErr <- err
	}()
	time.Sleep(50 * time.Millisecond)
	conn.Close() // abrupt connection loss

	select {
	case err := <-callErr:
		if err == nil || !strings.Contains(err.Error(), "connection lost") {
			t.Errorf("in-flight call err = %v, want connection-lost", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung after connection loss")
	}

	// The client must now fail fast with the stored cause, not block.
	start := time.Now()
	err = cl.Ping()
	if err == nil || !strings.Contains(err.Error(), "connection lost") {
		t.Errorf("ping after loss = %v, want stored connection-lost cause", err)
	}
	var opErr *net.OpError
	if !errors.Is(err, io.EOF) && !errors.As(err, &opErr) {
		t.Errorf("ping after loss = %v, want the wrapped read-side cause", err)
	}
	if time.Since(start) > time.Second {
		t.Errorf("post-loss ping took %v, want immediate failure", time.Since(start))
	}
}
