package server

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// busyServer is a protocol-speaking stub that sheds the first busyCount
// Call requests with a Busy response (and retryAfter hint) before serving
// the rest normally. It returns the listen address and a counter of Call
// requests seen.
func busyServer(t *testing.T, busyCount int64, retryAfter time.Duration) (string, *atomic.Int64) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	calls := new(atomic.Int64)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		var frame []byte
		for {
			payload, err := readFrame(br, &frame)
			if err != nil {
				return
			}
			var req Request
			if err := decodeRequest(payload, &req); err != nil {
				return
			}
			resp := Response{ID: req.ID}
			if req.Kind == KindCall {
				if n := calls.Add(1); n <= busyCount {
					resp.Err = "server overloaded"
					resp.Busy = true
					resp.RetryAfter = retryAfter
				} else {
					resp.Out = map[string]string{"status": "ok"}
				}
			}
			if _, err := conn.Write(appendResponse(nil, &resp)); err != nil {
				return
			}
		}
	}()
	return lis.Addr().String(), calls
}

// TestCallDeadlineNeverHangs points the client at a black hole: the call
// must come back by its deadline with a typed, retryable,
// possibly-executed error — never hang.
func TestCallDeadlineNeverHangs(t *testing.T) {
	addr := blackholeListener(t)
	cl, err := DialOptions(addr, Options{CallTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	_, err = cl.Call("Anything", "k", nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against a black hole succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("call hung %v past its 150ms deadline", elapsed)
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *Error", err, err)
	}
	if !ce.Retryable || !ce.MaybeExecuted {
		t.Errorf("deadline error Retryable=%v MaybeExecuted=%v, want true/true", ce.Retryable, ce.MaybeExecuted)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want to wrap context.DeadlineExceeded", err)
	}
	// The pooled reply channel must have been reclaimed cleanly: a fresh
	// request must not receive the stale response. (Exercised implicitly by
	// reusing the client.)
	if err := cl.PingCtx(contextWithTimeout(t, 100*time.Millisecond)); err == nil {
		t.Error("ping against a black hole succeeded")
	}
}

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// TestCallCtxCancel cancels mid-flight; the call returns promptly with the
// cancellation, not the 30s default deadline.
func TestCallCtxCancel(t *testing.T) {
	addr := blackholeListener(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.CallCtx(ctx, "Anything", "k", nil)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled call did not return")
	}
}

// TestBusyTypedError checks that a shed response surfaces as a typed
// retryable error carrying the server's retry-after hint, marked
// definitely-not-executed.
func TestBusyTypedError(t *testing.T) {
	addr, _ := busyServer(t, 1<<30, 25*time.Millisecond)
	cl, err := DialOptions(addr, Options{MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Call("Anything", "k", nil)
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *Error", err, err)
	}
	if !errors.Is(err, ErrServerBusy) {
		t.Errorf("err = %v, want to wrap ErrServerBusy", err)
	}
	if !ce.Retryable || ce.MaybeExecuted {
		t.Errorf("busy error Retryable=%v MaybeExecuted=%v, want true/false", ce.Retryable, ce.MaybeExecuted)
	}
	if ce.RetryAfter != 25*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 25ms", ce.RetryAfter)
	}
	if !IsRetryable(err) {
		t.Error("IsRetryable(busy) = false")
	}
}

// TestBusyAutoRetrySucceeds: shed twice, then served — the retry policy
// should push through without caller involvement, honoring backoff.
func TestBusyAutoRetrySucceeds(t *testing.T) {
	addr, calls := busyServer(t, 2, time.Millisecond)
	cl, err := DialOptions(addr, Options{MaxRetries: 4, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Call("Anything", "k", nil)
	if err != nil {
		t.Fatalf("call should retry through busy: %v", err)
	}
	if res.Out["status"] != "ok" {
		t.Errorf("Out = %v, want status ok", res.Out)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d call attempts, want 3", got)
	}
	if got := cl.Retries(); got != 2 {
		t.Errorf("client retries = %d, want 2", got)
	}
}

// TestReconnectHeals severs the established connection server-side; with
// Reconnect on, an idempotent request retried under the policy must
// succeed on the healed connection.
func TestReconnectHeals(t *testing.T) {
	// startTestServer already listened; WrapConns must precede Listen, so
	// close that server and stand up a second one on the same cluster with
	// the wrap hook installed.
	srv, _, c := startTestServer(t)
	srv.Close()
	lastConn := new(atomic.Pointer[net.Conn])
	srv2 := New(c, srv.mig, nil)
	srv2.WrapConns(func(conn net.Conn) net.Conn {
		lastConn.Store(&conn)
		return conn
	})
	addr, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })

	cl, err := DialOptions(addr, Options{Reconnect: true, MaxRetries: 8, RetryBase: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if p := lastConn.Load(); p != nil {
		(*p).Close() // abrupt server-side sever of the live connection
	} else {
		t.Fatal("wrap hook never saw the connection")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := cl.Ping(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never healed after connection loss")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cl.Reconnects() == 0 {
		t.Error("reconnect counter is zero after a healed connection loss")
	}
}
