package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/migration"
)

func startTestServer(t *testing.T) (*Server, string, *cluster.Cluster) {
	t.Helper()
	reg := engine.NewRegistry()
	b2w.Register(reg)
	c, err := cluster.New(cluster.Config{
		InitialNodes:      2,
		PartitionsPerNode: 2,
		NBuckets:          64,
		Tables:            b2w.Tables,
		Registry:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	srv := New(c, migration.Options{BucketsPerChunk: 8, ChunkInterval: 100 * time.Microsecond}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, c
}

func TestServerPingCallStats(t *testing.T) {
	_, addr, _ := startTestServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Call(b2w.ProcAddLineToCart, "cart-1", map[string]string{
		"sku": "sku-1", "qty": "2", "price": "9.99",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 {
		t.Error("latency not reported")
	}
	got, err := cl.Call(b2w.ProcGetCart, "cart-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got.Out["lines"], "sku-1") {
		t.Errorf("lines = %q", got.Out["lines"])
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 2 || st.Partitions != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalRows != 1 || st.OfferedTxns != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestServerAbortSurfaced(t *testing.T) {
	_, addr, _ := startTestServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Call(b2w.ProcGetCart, "ghost", nil)
	if err == nil {
		t.Fatal("missing cart should abort")
	}
	if res == nil || !res.Abort {
		t.Errorf("abort flag not set: %+v, err=%v", res, err)
	}
}

func TestServerScale(t *testing.T) {
	_, addr, c := startTestServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 50; i++ {
		if _, err := cl.Call(b2w.ProcAddLineToCart, fmt.Sprintf("cart-%d", i),
			map[string]string{"sku": "sku-1", "qty": "1", "price": "1.00"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Scale(4); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 4 {
		t.Errorf("nodes = %d", c.NumNodes())
	}
	// Data survived the networked scale-out.
	for i := 0; i < 50; i++ {
		if _, err := cl.Call(b2w.ProcGetCart, fmt.Sprintf("cart-%d", i), nil); err != nil {
			t.Fatalf("cart-%d lost: %v", i, err)
		}
	}
	if err := cl.Scale(0); err == nil {
		t.Error("invalid scale target should fail")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	_, addr, _ := startTestServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("c%d-%d", g, i)
				if _, err := cl.Call(b2w.ProcAddLineToCart, key,
					map[string]string{"sku": "s", "qty": "1", "price": "1"}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestClientConnectionLoss(t *testing.T) {
	srv, addr, _ := startTestServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	time.Sleep(20 * time.Millisecond)
	if err := cl.Ping(); err == nil {
		t.Error("ping after server close should fail")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dialing a closed port should fail")
	}
}
