package server

import (
	"context"
	"testing"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/faultinject"
	"pstore/internal/migration"
)

// startBenchServer builds a server with zero synthetic service time so the
// benchmark measures protocol + dispatch overhead, not emulated CPU work.
func startBenchServer(b *testing.B) (string, *cluster.Cluster) {
	b.Helper()
	reg := engine.NewRegistry()
	b2w.Register(reg)
	c, err := cluster.New(cluster.Config{
		InitialNodes:      1,
		PartitionsPerNode: 4,
		NBuckets:          64,
		Tables:            b2w.Tables,
		Registry:          reg,
		Engine:            engine.Config{ServiceTime: 0},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	srv := New(c, migration.Options{BucketsPerChunk: 8, ChunkInterval: 100 * time.Microsecond}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return addr, c
}

// BenchmarkServerCall measures the full networked request hot path: many
// client goroutines multiplexing stored-procedure calls over one TCP
// connection. This is the protocol-overhead number the wire codec and
// batching work targets (see EXPERIMENTS.md "Hot path").
func BenchmarkServerCall(b *testing.B) {
	addr, _ := startBenchServer(b)
	cl, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	args := map[string]string{"sku": "sku-1", "qty": "1", "price": "9.99"}
	// RunParallel spawns GOMAXPROCS goroutines by default — on a 1-CPU
	// host that is a single serial caller, which never exercises the write
	// batching or the executors' pipelining this path is built around.
	// Pin the multiplexing degree so the measured shape (and the recorded
	// BENCH_hotpath baseline) is the same on any host.
	b.SetParallelism(benchClients)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := benchKeys[i%len(benchKeys)]
			i++
			if _, err := cl.Call(b2w.ProcAddLineToCart, key, args); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServerPing isolates the protocol round trip with an empty
// request body — pure codec + framing + dispatch cost.
func BenchmarkServerPing(b *testing.B) {
	addr, _ := startBenchServer(b)
	cl, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	// Same multiplexing degree as BenchmarkServerCall. Without it, a 1-CPU
	// host measures a single serial caller paying one full network round
	// trip per op, and the recorded baseline once showed Ping SLOWER than
	// Call (7.5µs vs 6.5µs) purely from that methodology gap — the server
	// answers pings inline in its read loop, with no executor dispatch, so
	// like-for-like pipelining is the only fair comparison.
	b.SetParallelism(benchClients)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := cl.Ping(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServerCallChaos measures the request path with 1% of server
// response writes dropped (seeded injector): closed-loop throughput and
// latency under frame loss, with the client's deadline + retry machinery
// absorbing the gaps. Compare against BenchmarkServerCall to price the
// robustness layer under faults (scripts/bench.sh records it as
// BENCH_chaos.json).
func BenchmarkServerCallChaos(b *testing.B) {
	reg := engine.NewRegistry()
	b2w.Register(reg)
	c, err := cluster.New(cluster.Config{
		InitialNodes:      1,
		PartitionsPerNode: 4,
		NBuckets:          64,
		Tables:            b2w.Tables,
		Registry:          reg,
		Engine:            engine.Config{ServiceTime: 0},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	for _, key := range benchKeys {
		txn := engine.AcquireTxn(b2w.ProcAddLineToCart, key,
			map[string]string{"sku": "sku-1", "qty": "1", "price": "9.99"})
		if res := c.Call(txn); res.Err != nil {
			b.Fatal(res.Err)
		}
		txn.Release()
	}
	inj := faultinject.New(faultinject.Options{Seed: 7, DropProb: 0.01})
	srv := New(c, migration.Options{}, nil)
	srv.WrapConns(inj.WrapConn)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	cl, err := DialOptions(addr, Options{
		CallTimeout: 50 * time.Millisecond, // a dropped response costs one deadline, then a retry
		MaxRetries:  10,
		RetryBase:   time.Millisecond,
		Reconnect:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := benchKeys[i%len(benchKeys)]
			i++
			if _, err := cl.CallIdempotent(ctx, b2w.ProcGetCart, key, nil); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(cl.Retries()), "retries")
	b.ReportMetric(float64(inj.Counters().Drops), "drops")
}

// benchClients is the multiplexing degree of BenchmarkServerCall: the
// number of concurrent caller goroutines per GOMAXPROCS sharing the one
// client connection.
const benchClients = 16

var benchKeys = func() []string {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "cart-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	return keys
}()
