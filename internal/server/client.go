package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClientClosed is returned for requests on a Close()d client.
var ErrClientClosed = errors.New("pstore-client: client closed")

// Client is a network client for a P-Store server. It is safe for
// concurrent use; requests multiplex over one TCP connection, and
// concurrent calls are coalesced into single writes (batching), so many
// goroutines sharing one client pay roughly one syscall per batch rather
// than one per request.
type Client struct {
	conn net.Conn

	// Write side: callers append encoded frames to wbuf under wmu and
	// nudge the flusher, which swaps the buffer out and writes it in one
	// syscall. While a write is in flight new frames pile into the other
	// buffer — natural batching under concurrency, no added latency when
	// idle.
	wmu    sync.Mutex
	wbuf   []byte
	wspare []byte
	wake   chan struct{}
	done   chan struct{}

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Response
	closed  bool
	readErr error // first connection-level failure, the cause for new calls
}

// replyChans recycles the one-shot response channels of roundTrip.
var replyChans = sync.Pool{New: func() any { return make(chan Response, 1) }}

// Dial connects to a P-Store server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan Response),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	go c.writeLoop()
	return c, nil
}

// Close terminates the connection. All outstanding requests fail
// deterministically with ErrClientClosed before Close returns.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.failPendingLocked(ErrClientClosed)
	c.mu.Unlock()
	close(c.done)
	return c.conn.Close()
}

// failPendingLocked delivers err to every in-flight request. Caller holds
// c.mu; each channel receives exactly one message because delivery always
// removes the entry from pending first.
func (c *Client) failPendingLocked(err error) {
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- Response{ID: id, Err: err.Error()}
	}
}

// fail records the first connection-level error and fails all in-flight
// requests with it.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.failPendingLocked(fmt.Errorf("pstore-client: connection lost: %w", err))
	c.mu.Unlock()
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var frame []byte
	for {
		payload, err := readFrame(br, &frame)
		if err != nil {
			c.fail(err)
			return
		}
		var resp Response
		if err := decodeResponse(payload, &resp); err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// writeLoop flushes batched frames. One iteration writes everything that
// accumulated while the previous write was on the wire.
func (c *Client) writeLoop() {
	for {
		select {
		case <-c.done:
			return
		case <-c.wake:
		}
		c.wmu.Lock()
		buf := c.wbuf
		c.wbuf = c.wspare[:0]
		c.wspare = nil
		c.wmu.Unlock()
		if len(buf) > 0 {
			if _, err := c.conn.Write(buf); err != nil {
				c.fail(err)
				return
			}
		}
		c.wmu.Lock()
		if c.wspare == nil {
			c.wspare = buf[:0]
		}
		c.wmu.Unlock()
	}
}

// send encodes req into the batch buffer and nudges the flusher.
func (c *Client) send(req *Request) {
	c.wmu.Lock()
	c.wbuf = appendRequest(c.wbuf, req)
	c.wmu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default: // flusher already scheduled; it will pick this frame up too
	}
}

// roundTrip sends a request and waits for its response. A client whose
// connection has already failed returns the stored cause immediately
// rather than a generic error.
func (c *Client) roundTrip(req *Request) (Response, error) {
	ch := replyChans.Get().(chan Response)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		replyChans.Put(ch)
		return Response{}, ErrClientClosed
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		replyChans.Put(ch)
		return Response{}, fmt.Errorf("pstore-client: connection lost: %w", err)
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()
	c.send(req)
	resp := <-ch
	replyChans.Put(ch)
	return resp, nil
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(&Request{Kind: KindPing})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// CallResult is the client-visible outcome of a transaction.
type CallResult struct {
	Out     map[string]string
	Latency time.Duration
	Abort   bool
}

// Call executes a stored procedure on the server.
func (c *Client) Call(proc, key string, args map[string]string) (*CallResult, error) {
	resp, err := c.roundTrip(&Request{Kind: KindCall, Proc: proc, Key: key, Args: args})
	if err != nil {
		return nil, err
	}
	res := &CallResult{Out: resp.Out, Latency: resp.Latency, Abort: resp.Abort}
	if resp.Err != "" && !resp.Abort {
		return nil, errors.New(resp.Err)
	}
	if resp.Abort {
		return res, fmt.Errorf("pstore-client: aborted: %s", resp.Err)
	}
	return res, nil
}

// Scale reconfigures the server's cluster to target nodes, blocking until
// the live migration completes.
func (c *Client) Scale(target int) error {
	resp, err := c.roundTrip(&Request{Kind: KindScale, TargetNodes: target})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Stats fetches a cluster status snapshot.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.roundTrip(&Request{Kind: KindStats})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Stats, nil
}
