package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClientClosed is returned for requests on a Close()d client.
var ErrClientClosed = errors.New("pstore-client: client closed")

// ErrServerBusy is the cause of responses shed by the server's admission
// control: the transaction was NOT executed, so retrying (after the
// attached RetryAfter hint) is always safe.
var ErrServerBusy = errors.New("pstore-client: server busy")

// ErrDisconnected is the cause of requests fast-failed while the client has
// no live connection (reconnect in progress): the request was never sent.
var ErrDisconnected = errors.New("pstore-client: not connected")

// Error is the client's typed error. Callers branch on two facts: whether a
// retry can succeed (Retryable) and whether the request may already have
// executed server-side (MaybeExecuted) — a retryable-but-maybe-executed
// failure (e.g. a deadline expiry with the request on the wire) is safe to
// retry only for idempotent operations. errors.Is sees through to the cause.
type Error struct {
	Op    string // "call", "ping", "scale", "stats"
	Cause error
	// Retryable reports that the failure is transient: a later retry (on
	// this client or another) can succeed.
	Retryable bool
	// MaybeExecuted reports that the server may have executed the request
	// even though no response arrived. False means definitely-not-executed,
	// so even non-idempotent calls can retry blindly.
	MaybeExecuted bool
	// RetryAfter is the server's backoff hint on shed responses; zero
	// otherwise.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	return fmt.Sprintf("pstore-client: %s: %v", e.Op, e.Cause)
}

func (e *Error) Unwrap() error { return e.Cause }

// IsRetryable reports whether err is a client error marked retryable.
func IsRetryable(err error) bool {
	var ce *Error
	return errors.As(err, &ce) && ce.Retryable
}

// Options tunes a client's robustness behavior. The zero value (used by
// Dial) keeps the legacy semantics: a 30s safety-net deadline, no automatic
// retries, no reconnect.
type Options struct {
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
	// CallTimeout is the per-attempt deadline applied to Ping/Call/Stats
	// when the caller's context has none, so a request can never hang
	// against a black-holed server: each attempt (initial + each retry) is
	// individually bounded. A caller-supplied context deadline instead
	// bounds the whole operation, retries included. Scale is exempt
	// (migrations legitimately run long); use ScaleCtx to bound it.
	// Default 30s; negative disables.
	CallTimeout time.Duration
	// MaxRetries is how many times a failed request is automatically
	// retried with jittered exponential backoff. Only failures that are
	// retryable AND safe (definitely-not-executed, or an idempotent
	// operation) are retried; a non-idempotent Call whose request may have
	// executed is returned to the caller instead. Default 0 (no retries).
	MaxRetries int
	// RetryBase is the first retry's backoff; each further attempt doubles
	// it, with ±50% jitter, capped at RetryMax. A server RetryAfter hint
	// overrides smaller computed backoffs. Defaults 10ms / 1s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Reconnect enables automatic redial after a connection failure:
	// in-flight requests still fail (their fate is unknowable), but the
	// client heals instead of staying dead, and fast-failed new requests
	// become retryable. Attempts back off up to 1s and stop at Close.
	Reconnect bool
}

func (o Options) normalized() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 30 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 10 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = time.Second
	}
	return o
}

// Client is a network client for a P-Store server. It is safe for
// concurrent use; requests multiplex over one TCP connection, and
// concurrent calls are coalesced into single writes (batching), so many
// goroutines sharing one client pay roughly one syscall per batch rather
// than one per request. With Options it adds the robustness layer: RPC
// deadlines, bounded jittered retries, and automatic reconnect.
type Client struct {
	addr string
	opts Options

	// Write side: callers append encoded frames to wbuf under wmu and
	// nudge the flusher, which swaps the buffer out and writes it in one
	// syscall. While a write is in flight new frames pile into the other
	// buffer — natural batching under concurrency, no added latency when
	// idle.
	wmu    sync.Mutex
	wbuf   []byte
	wspare []byte
	wake   chan struct{}
	done   chan struct{}

	mu           sync.Mutex
	conn         net.Conn // nil while disconnected
	gen          uint64   // bumped per successful (re)connect
	nextID       uint64
	pending      map[uint64]chan Response
	closed       bool
	readErr      error // first connection-level failure, the cause for new calls
	reconnecting bool

	retries    atomic.Int64
	reconnects atomic.Int64

	// Session vector: the highest LSN this client has written per
	// partition. Read attaches it so a replica serving the read waits
	// until it has applied the client's own writes (read-your-writes).
	sessMu  sync.Mutex
	session map[int]uint64
}

// replyChans recycles the one-shot response channels of roundTrip.
var replyChans = sync.Pool{New: func() any { return make(chan Response, 1) }}

// Dial connects to a P-Store server with legacy-compatible defaults (no
// retries, no reconnect). Use DialOptions for the robust configuration.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to a P-Store server with explicit robustness
// options.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts = opts.normalized()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		addr:    addr,
		opts:    opts,
		conn:    conn,
		pending: make(map[uint64]chan Response),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go c.readLoop(conn, c.gen)
	go c.writeLoop()
	return c, nil
}

// Retries returns how many automatic request retries this client has made.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Reconnects returns how many times this client has re-established its
// connection.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// Close terminates the connection. All outstanding requests fail
// deterministically with ErrClientClosed before Close returns.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.failPendingLocked(ErrClientClosed) //pstore:ignore lockorder — reply channels have capacity 1 and receive exactly one message (delivery deletes the pending entry first), so the sends inside cannot block
	c.mu.Unlock()
	close(c.done)
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// failPendingLocked delivers err to every in-flight request. Caller holds
// c.mu; each channel receives exactly one message because delivery always
// removes the entry from pending first.
func (c *Client) failPendingLocked(err error) {
	for id, ch := range c.pending { //pstore:ignore determinism — each waiter gets exactly one message on its own channel; delivery order across waiters is unobservable
		delete(c.pending, id)
		ch <- Response{ID: id, Err: err.Error()}
	}
}

// connFailed records a connection-level failure for generation gen, fails
// all in-flight requests, and (when enabled) starts the reconnect loop.
// Stale notifications from an already-replaced connection are ignored.
func (c *Client) connFailed(gen uint64, err error) {
	c.mu.Lock()
	if c.closed || gen != c.gen {
		c.mu.Unlock()
		return
	}
	if c.readErr == nil {
		c.readErr = err
	}
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.failPendingLocked(fmt.Errorf("pstore-client: connection lost: %w", err)) //pstore:ignore lockorder — reply channels have capacity 1 and receive exactly one message (delivery deletes the pending entry first), so the sends inside cannot block
	startReconnect := c.opts.Reconnect && !c.reconnecting
	if startReconnect {
		c.reconnecting = true
	}
	c.mu.Unlock()
	if startReconnect {
		go c.reconnectLoop()
	}
}

// reconnectLoop redials with capped backoff until it succeeds or the client
// closes. On success the connection generation advances: the batch buffer
// is cleared (frames buffered for the dead connection belong to requests
// that already failed) and a fresh read loop starts.
func (c *Client) reconnectLoop() {
	for attempt := 0; ; attempt++ {
		delay := backoffDelay(c.opts.RetryBase, attempt, time.Second)
		select {
		case <-c.done:
			return
		case <-time.After(delay):
		}
		conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
		if err != nil {
			continue
		}
		c.wmu.Lock()
		c.wbuf = c.wbuf[:0]
		c.wmu.Unlock()
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conn = conn
		c.gen++
		c.readErr = nil
		c.reconnecting = false
		gen := c.gen
		c.mu.Unlock()
		c.reconnects.Add(1)
		go c.readLoop(conn, gen)
		return
	}
}

func (c *Client) readLoop(conn net.Conn, gen uint64) {
	br := bufio.NewReaderSize(conn, 64<<10)
	var frame []byte
	for {
		payload, err := readFrame(br, &frame)
		if err != nil {
			c.connFailed(gen, err)
			return
		}
		var resp Response
		if err := decodeResponse(payload, &resp); err != nil {
			c.connFailed(gen, err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// writeLoop flushes batched frames to the current connection. One iteration
// writes everything that accumulated while the previous write was on the
// wire. It is generation-agnostic: after a reconnect it simply flushes to
// the new connection (the swap clears frames addressed to the old one).
func (c *Client) writeLoop() {
	for {
		select {
		case <-c.done:
			return
		case <-c.wake:
		}
		c.mu.Lock()
		conn := c.conn
		gen := c.gen
		c.mu.Unlock()
		c.wmu.Lock()
		buf := c.wbuf
		c.wbuf = c.wspare[:0]
		c.wspare = nil
		c.wmu.Unlock()
		if len(buf) > 0 && conn != nil {
			if _, err := conn.Write(buf); err != nil {
				c.connFailed(gen, err)
			}
		}
		c.wmu.Lock()
		if c.wspare == nil {
			c.wspare = buf[:0]
		}
		c.wmu.Unlock()
	}
}

// send encodes req into the batch buffer and nudges the flusher.
func (c *Client) send(req *Request) {
	c.wmu.Lock()
	c.wbuf = appendRequest(c.wbuf, req)
	c.wmu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default: // flusher already scheduled; it will pick this frame up too
	}
}

// deadlineTimers recycles per-attempt timeout timers so the steady-state
// request path does not allocate (context.WithTimeout would cost several
// allocations per call).
var deadlineTimers sync.Pool

// roundTrip sends a request and waits for its response, the context, or
// the per-attempt timeout (0 = none). sent=false means the request was
// never handed to the transport, so the failure is definitely-not-executed
// and blind retries are safe. A client whose connection has already failed
// returns the stored cause immediately rather than a generic error.
func (c *Client) roundTrip(ctx context.Context, req *Request, timeout time.Duration) (resp Response, sent bool, err error) {
	ch := replyChans.Get().(chan Response)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		replyChans.Put(ch)
		return Response{}, false, ErrClientClosed
	}
	if c.readErr != nil {
		rerr := c.readErr
		c.mu.Unlock()
		replyChans.Put(ch)
		return Response{}, false, fmt.Errorf("pstore-client: connection lost: %w", rerr)
	}
	if c.conn == nil {
		c.mu.Unlock()
		replyChans.Put(ch)
		return Response{}, false, ErrDisconnected
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()
	c.send(req)
	var timeC <-chan time.Time
	if timeout > 0 {
		var tm *time.Timer
		if v := deadlineTimers.Get(); v != nil {
			tm = v.(*time.Timer)
			tm.Reset(timeout)
		} else {
			tm = time.NewTimer(timeout)
		}
		timeC = tm.C
		defer func() {
			if !tm.Stop() {
				select {
				case <-tm.C:
				default:
				}
			}
			deadlineTimers.Put(tm)
		}()
	}
	expired := false
	select {
	case resp = <-ch:
		replyChans.Put(ch)
		return resp, true, nil
	case <-ctx.Done():
	case <-timeC:
		expired = true
	}
	// Deadline or cancellation. If the request is still pending, take it
	// back so nothing will ever send on ch and the channel can be reused;
	// if it is gone, a response delivery is imminent (the channel has
	// capacity 1, the send cannot block) — drain it so the channel is
	// clean before recycling.
	c.mu.Lock()
	_, pendingStill := c.pending[req.ID]
	delete(c.pending, req.ID)
	c.mu.Unlock()
	if !pendingStill {
		<-ch
	}
	replyChans.Put(ch)
	if expired {
		return Response{}, true, context.DeadlineExceeded
	}
	return Response{}, true, ctx.Err()
}

// backoffDelay is the jittered exponential backoff for the given 0-based
// attempt: base·2^attempt with ±50% jitter, capped at max.
func backoffDelay(base time.Duration, attempt int, max time.Duration) time.Duration {
	if attempt > 20 {
		attempt = 20
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	half := int64(d) / 2
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(2*half))
}

// do runs one request with the client's deadline and retry policy.
// idempotent marks operations that are safe to retry even when a previous
// attempt may have executed (Ping, Stats, read-only calls the caller vouches
// for).
func (c *Client) do(ctx context.Context, op string, req *Request, idempotent bool) (Response, error) {
	// With no caller deadline, CallTimeout bounds each attempt; a caller-
	// supplied deadline bounds the whole operation instead.
	var timeout time.Duration
	if _, has := ctx.Deadline(); !has && c.opts.CallTimeout > 0 && op != "scale" {
		timeout = c.opts.CallTimeout
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, cerr := c.attempt(ctx, op, req, timeout)
		if cerr == nil {
			return resp, nil
		}
		lastErr = cerr
		safe := cerr.Retryable && (idempotent || !cerr.MaybeExecuted)
		if !safe || attempt >= c.opts.MaxRetries {
			return Response{}, cerr
		}
		delay := backoffDelay(c.opts.RetryBase, attempt, c.opts.RetryMax)
		if cerr.RetryAfter > delay {
			delay = cerr.RetryAfter
		}
		select {
		case <-ctx.Done():
			return Response{}, lastErr
		case <-time.After(delay):
		}
		c.retries.Add(1)
	}
}

// attempt performs one round trip and classifies the outcome. A nil error
// means success; otherwise the typed error says whether a retry can help
// and whether the attempt may have executed.
func (c *Client) attempt(ctx context.Context, op string, req *Request, timeout time.Duration) (Response, *Error) {
	resp, sent, err := c.roundTrip(ctx, req, timeout)
	switch {
	case err == nil:
	case errors.Is(err, ErrClientClosed):
		return Response{}, &Error{Op: op, Cause: err}
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// The request may be executing right now; only the caller knows
		// whether a blind retry is safe.
		return Response{}, &Error{Op: op, Cause: err, Retryable: true, MaybeExecuted: sent}
	default:
		// Connection-level failure. Retry can only help if reconnect will
		// eventually restore a transport.
		return Response{}, &Error{Op: op, Cause: err, Retryable: c.opts.Reconnect, MaybeExecuted: sent}
	}
	if resp.Busy {
		return Response{}, &Error{Op: op, Cause: ErrServerBusy, Retryable: true, RetryAfter: resp.RetryAfter}
	}
	if s := resp.Err; s != "" && looksLikeConnLoss(s) {
		// failPendingLocked delivers connection failures through the
		// response channel; they carry the conn-lost prefix.
		return Response{}, &Error{Op: op, Cause: errors.New(s), Retryable: c.opts.Reconnect, MaybeExecuted: true}
	}
	return resp, nil
}

// looksLikeConnLoss recognizes the error strings failPendingLocked injects
// for requests that were in flight when the connection died.
func looksLikeConnLoss(s string) bool {
	const p1, p2 = "pstore-client: connection lost", "pstore-client: client closed"
	return len(s) >= len(p1) && s[:len(p1)] == p1 || s == p2
}

// Ping checks connectivity. Idempotent: retried automatically under the
// client's retry policy.
func (c *Client) Ping() error { return c.PingCtx(context.Background()) }

// PingCtx checks connectivity, honoring the context's deadline.
func (c *Client) PingCtx(ctx context.Context) error {
	req := Request{Kind: KindPing}
	resp, err := c.do(ctx, "ping", &req, true)
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// CallResult is the client-visible outcome of a transaction.
type CallResult struct {
	Out     map[string]string
	Latency time.Duration
	Abort   bool
}

// Call executes a stored procedure on the server. Automatic retries cover
// only failures where the transaction definitely did not execute (server
// busy, never sent); use CallIdempotent for read-only procedures to also
// retry ambiguous failures.
func (c *Client) Call(proc, key string, args map[string]string) (*CallResult, error) {
	return c.CallCtx(context.Background(), proc, key, args)
}

// CallCtx executes a stored procedure, honoring the context's deadline: the
// call either completes or fails with a typed retryable error by the
// deadline — it never hangs past it.
func (c *Client) CallCtx(ctx context.Context, proc, key string, args map[string]string) (*CallResult, error) {
	return c.callCtx(ctx, proc, key, args, false)
}

// CallIdempotent executes a stored procedure the caller vouches is
// idempotent (e.g. read-only), letting the retry policy also retry
// ambiguous failures such as deadline expiries and connection loss.
func (c *Client) CallIdempotent(ctx context.Context, proc, key string, args map[string]string) (*CallResult, error) {
	return c.callCtx(ctx, proc, key, args, true)
}

func (c *Client) callCtx(ctx context.Context, proc, key string, args map[string]string, idempotent bool) (*CallResult, error) {
	req := Request{Kind: KindCall, Proc: proc, Key: key, Args: args}
	resp, err := c.do(ctx, "call", &req, idempotent)
	if err != nil {
		return nil, err
	}
	if resp.Err == "" {
		c.noteWrite(resp)
	}
	res := &CallResult{Out: resp.Out, Latency: resp.Latency, Abort: resp.Abort}
	if resp.Err != "" && !resp.Abort {
		return nil, errors.New(resp.Err)
	}
	if resp.Abort {
		return res, fmt.Errorf("pstore-client: aborted: %s", resp.Err)
	}
	return res, nil
}

// noteWrite folds a routed call response into the session vector.
func (c *Client) noteWrite(resp Response) {
	if !resp.Routed || resp.LSN == 0 {
		return
	}
	c.sessMu.Lock()
	if c.session == nil {
		c.session = make(map[int]uint64)
	}
	if resp.LSN > c.session[resp.Part] {
		c.session[resp.Part] = resp.LSN
	}
	c.sessMu.Unlock()
}

// Session returns a copy of the client's session vector — the highest LSN
// it has written per partition.
func (c *Client) Session() map[int]uint64 {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	out := make(map[int]uint64, len(c.session))
	for p, lsn := range c.session {
		out[p] = lsn
	}
	return out
}

// Read executes a read-only stored procedure with session consistency: the
// server may serve it from a replica, but only one that has applied every
// write this client has made. Reads are idempotent, so ambiguous failures
// retry automatically under the client's retry policy.
func (c *Client) Read(proc, key string, args map[string]string) (*CallResult, error) {
	return c.ReadCtx(context.Background(), proc, key, args)
}

// ReadCtx is Read honoring the context's deadline.
func (c *Client) ReadCtx(ctx context.Context, proc, key string, args map[string]string) (*CallResult, error) {
	req := Request{Kind: KindRead, Proc: proc, Key: key, Args: args, Session: c.Session()}
	resp, err := c.do(ctx, "read", &req, true)
	if err != nil {
		return nil, err
	}
	res := &CallResult{Out: resp.Out, Latency: resp.Latency, Abort: resp.Abort}
	if resp.Err != "" && !resp.Abort {
		return nil, errors.New(resp.Err)
	}
	if resp.Abort {
		return res, fmt.Errorf("pstore-client: aborted: %s", resp.Err)
	}
	return res, nil
}

// KillNode asks the server to kill one node's partitions in place — the
// chaos hook driving failover tests: primaries hosted there crash and
// their replicas are promoted. Not idempotent (a second kill of the same
// node is an error), so ambiguous failures are returned, not retried.
func (c *Client) KillNode(node int) error { return c.KillNodeCtx(context.Background(), node) }

// KillNodeCtx is KillNode honoring the context's deadline.
func (c *Client) KillNodeCtx(ctx context.Context, node int) error {
	req := Request{Kind: KindKillNode, Node: node}
	resp, err := c.do(ctx, "kill-node", &req, false)
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Scale reconfigures the server's cluster to target nodes, blocking until
// the live migration completes. No default deadline applies (migrations
// legitimately run long); bound it with ScaleCtx.
func (c *Client) Scale(target int) error { return c.ScaleCtx(context.Background(), target) }

// ScaleCtx reconfigures the cluster, honoring the context's deadline.
func (c *Client) ScaleCtx(ctx context.Context, target int) error {
	req := Request{Kind: KindScale, TargetNodes: target}
	resp, err := c.do(ctx, "scale", &req, false)
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Stats fetches a cluster status snapshot. Idempotent: retried
// automatically under the client's retry policy.
func (c *Client) Stats() (*Stats, error) { return c.StatsCtx(context.Background()) }

// StatsCtx fetches a cluster status snapshot, honoring the context's
// deadline.
func (c *Client) StatsCtx(ctx context.Context) (*Stats, error) {
	req := Request{Kind: KindStats}
	resp, err := c.do(ctx, "stats", &req, true)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Stats, nil
}
