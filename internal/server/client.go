package server

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a network client for a P-Store server. It is safe for
// concurrent use; requests multiplex over one TCP connection.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Response
	closed  bool
	readErr error
}

// Dial connects to a P-Store server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan Response),
	}
	go c.readLoop()
	return c, nil
}

// Close terminates the connection; outstanding requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) readLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				ch <- Response{ID: id, Err: "pstore-client: connection lost: " + err.Error()}
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// roundTrip sends a request and waits for its response.
func (c *Client) roundTrip(req Request) (Response, error) {
	ch := make(chan Response, 1)
	c.mu.Lock()
	if c.closed || c.readErr != nil {
		c.mu.Unlock()
		return Response{}, errors.New("pstore-client: connection closed")
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	err := c.enc.Encode(req)
	if err != nil {
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return Response{}, fmt.Errorf("pstore-client: send: %w", err)
	}
	c.mu.Unlock()
	return <-ch, nil
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(Request{Kind: KindPing})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// CallResult is the client-visible outcome of a transaction.
type CallResult struct {
	Out     map[string]string
	Latency time.Duration
	Abort   bool
}

// Call executes a stored procedure on the server.
func (c *Client) Call(proc, key string, args map[string]string) (*CallResult, error) {
	resp, err := c.roundTrip(Request{Kind: KindCall, Proc: proc, Key: key, Args: args})
	if err != nil {
		return nil, err
	}
	res := &CallResult{Out: resp.Out, Latency: resp.Latency, Abort: resp.Abort}
	if resp.Err != "" && !resp.Abort {
		return nil, errors.New(resp.Err)
	}
	if resp.Abort {
		return res, fmt.Errorf("pstore-client: aborted: %s", resp.Err)
	}
	return res, nil
}

// Scale reconfigures the server's cluster to target nodes, blocking until
// the live migration completes.
func (c *Client) Scale(target int) error {
	resp, err := c.roundTrip(Request{Kind: KindScale, TargetNodes: target})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Stats fetches a cluster status snapshot.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.roundTrip(Request{Kind: KindStats})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp.Stats, nil
}
