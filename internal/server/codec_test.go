package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"
)

// stripFrame splits an encoded frame into its announced payload, failing if
// the prefix disagrees with the bytes present.
func stripFrame(t *testing.T, frame []byte) []byte {
	t.Helper()
	n, used := binary.Uvarint(frame)
	if used <= 0 {
		t.Fatalf("bad frame prefix in % x", frame)
	}
	payload := frame[used:]
	if uint64(len(payload)) != n {
		t.Fatalf("prefix says %d bytes, frame carries %d", n, len(payload))
	}
	return payload
}

var codecRequests = []Request{
	{Kind: KindPing, ID: 1},
	{Kind: KindStats, ID: 1 << 40},
	{Kind: KindScale, ID: 7, TargetNodes: 12},
	{Kind: KindCall, ID: 9, Proc: "AddLineToCart", Key: "cart-42",
		Args: map[string]string{"sku": "sku-1", "qty": "2", "price": "9.99"}},
	{Kind: KindCall, ID: 10, Proc: "GetCart", Key: "cart-∅-unicode"},
}

var codecResponses = []Response{
	{ID: 1},
	{ID: 2, Err: "boom", Abort: true, Latency: 3 * time.Millisecond},
	{ID: 3, Out: map[string]string{"lines": "sku-1\x1f2\x1f9.99", "status": "open"},
		Latency: 250 * time.Microsecond},
	{ID: 4, Stats: &Stats{Nodes: 3, Partitions: 6, TotalRows: 1e6, OfferedTxns: 42,
		P99: 17 * time.Millisecond}},
	{ID: 5, Err: "server overloaded", Busy: true, RetryAfter: 40 * time.Millisecond},
	{ID: 6, Busy: true}, // busy with no hint still round-trips
}

func TestRequestRoundTrip(t *testing.T) {
	for _, want := range codecRequests {
		payload := stripFrame(t, appendRequest(nil, &want))
		var got Request
		if err := decodeRequest(payload, &got); err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, want := range codecResponses {
		payload := stripFrame(t, appendResponse(nil, &want))
		var got Response
		if err := decodeResponse(payload, &got); err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

// TestBatchedFramesDecodeIndependently mirrors what the batching writers
// produce: many frames back to back in one buffer.
func TestBatchedFramesDecodeIndependently(t *testing.T) {
	var stream []byte
	for i := range codecRequests {
		stream = appendRequest(stream, &codecRequests[i])
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var frame []byte
	for i := range codecRequests {
		payload, err := readFrame(br, &frame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var got Request
		if err := decodeRequest(payload, &got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, codecRequests[i]) {
			t.Errorf("frame %d: got %+v want %+v", i, got, codecRequests[i])
		}
	}
	if _, err := readFrame(br, &frame); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestTornFramesRejected cuts a valid frame at every possible byte
// boundary; each truncation must error (ErrUnexpectedEOF once the prefix
// was readable) and never hang or succeed.
func TestTornFramesRejected(t *testing.T) {
	frame := appendRequest(nil, &codecRequests[3]) // the Call with args
	for cut := 1; cut < len(frame); cut++ {
		br := bufio.NewReader(bytes.NewReader(frame[:cut]))
		var buf []byte
		_, err := readFrame(br, &buf)
		if err == nil {
			t.Fatalf("cut at %d: torn frame decoded", cut)
		}
		if cut > 1 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	huge := binary.AppendUvarint(nil, maxFrame+1)
	br := bufio.NewReader(bytes.NewReader(huge))
	var buf []byte
	if _, err := readFrame(br, &buf); !errors.Is(err, errFrameTooLarge) {
		t.Errorf("err = %v, want errFrameTooLarge", err)
	}
	// A frame of exactly maxFrame announced but not delivered is a torn
	// frame, not a size error.
	exact := binary.AppendUvarint(nil, maxFrame)
	br = bufio.NewReader(bytes.NewReader(exact))
	if _, err := readFrame(br, &buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	payload := stripFrame(t, appendRequest(nil, &codecRequests[0]))
	payload = append(payload, 0xFF)
	var req Request
	if err := decodeRequest(payload, &req); !errors.Is(err, errTrailing) {
		t.Errorf("request err = %v, want errTrailing", err)
	}
	payload = stripFrame(t, appendResponse(nil, &codecResponses[0]))
	payload = append(payload, 0x00)
	var resp Response
	if err := decodeResponse(payload, &resp); !errors.Is(err, errTrailing) {
		t.Errorf("response err = %v, want errTrailing", err)
	}
}

// FuzzDecodeRequest feeds arbitrary payloads to the request decoder: it
// must never panic, and anything it accepts must survive a re-encode /
// re-decode round trip unchanged.
func FuzzDecodeRequest(f *testing.F) {
	for i := range codecRequests {
		frame := appendRequest(nil, &codecRequests[i])
		n, used := binary.Uvarint(frame)
		_ = n
		f.Add(frame[used:])
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindCall)})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := decodeRequest(data, &req); err != nil {
			return // rejected input is fine; panics are not
		}
		reframed := appendRequest(nil, &req)
		n, used := binary.Uvarint(reframed)
		if used <= 0 || uint64(len(reframed)-used) != n {
			t.Fatalf("re-encode produced inconsistent frame for %+v", req)
		}
		var again Request
		if err := decodeRequest(reframed[used:], &again); err != nil {
			t.Fatalf("re-decode of %+v: %v", req, err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip diverged: %+v vs %+v", req, again)
		}
	})
}

// FuzzDecodeResponse is the response-side twin of FuzzDecodeRequest.
func FuzzDecodeResponse(f *testing.F) {
	for i := range codecResponses {
		frame := appendResponse(nil, &codecResponses[i])
		_, used := binary.Uvarint(frame)
		f.Add(frame[used:])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var resp Response
		if err := decodeResponse(data, &resp); err != nil {
			return
		}
		reframed := appendResponse(nil, &resp)
		n, used := binary.Uvarint(reframed)
		if used <= 0 || uint64(len(reframed)-used) != n {
			t.Fatalf("re-encode produced inconsistent frame for %+v", resp)
		}
		var again Response
		if err := decodeResponse(reframed[used:], &again); err != nil {
			t.Fatalf("re-decode of %+v: %v", resp, err)
		}
		if !reflect.DeepEqual(resp, again) {
			t.Fatalf("round trip diverged: %+v vs %+v", resp, again)
		}
	})
}

// TestEncodeByteStable pins the codec's byte determinism: decoding a frame
// and re-encoding it must reproduce the exact bytes, every time. Each
// iteration decodes into a freshly built map, so with an unsorted map range
// in the encoder (the bug this guards against) the argument order — and the
// bytes — would shuffle between iterations.
func TestEncodeByteStable(t *testing.T) {
	for _, req := range codecRequests {
		first := appendRequest(nil, &req)
		for i := 0; i < 32; i++ {
			var rt Request
			if err := decodeRequest(stripFrame(t, first), &rt); err != nil {
				t.Fatalf("decode %+v: %v", req, err)
			}
			again := appendRequest(nil, &rt)
			if !bytes.Equal(first, again) {
				t.Fatalf("request encoding not byte-stable (iteration %d):\n% x\n% x", i, first, again)
			}
		}
	}
	for _, resp := range codecResponses {
		first := appendResponse(nil, &resp)
		for i := 0; i < 32; i++ {
			var rt Response
			if err := decodeResponse(stripFrame(t, first), &rt); err != nil {
				t.Fatalf("decode %+v: %v", resp, err)
			}
			again := appendResponse(nil, &rt)
			if !bytes.Equal(first, again) {
				t.Fatalf("response encoding not byte-stable (iteration %d):\n% x\n% x", i, first, again)
			}
		}
	}
}

// FuzzCodec asserts encode determinism over arbitrary accepted payloads:
// for any input either decoder accepts, encode(decode(x)) must be
// byte-identical across repeated decode/encode cycles. This is the
// byte-level guarantee the durability checksums and replica comparison
// rest on; FuzzDecodeRequest/FuzzDecodeResponse only check structural
// (DeepEqual) round trips, which an unsorted map range would still pass.
func FuzzCodec(f *testing.F) {
	for i := range codecRequests {
		frame := appendRequest(nil, &codecRequests[i])
		_, used := binary.Uvarint(frame)
		f.Add(frame[used:])
	}
	for i := range codecResponses {
		frame := appendResponse(nil, &codecResponses[i])
		_, used := binary.Uvarint(frame)
		f.Add(frame[used:])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if decodeRequest(data, &req) == nil {
			first := appendRequest(nil, &req)
			_, used := binary.Uvarint(first)
			var rt Request
			if err := decodeRequest(first[used:], &rt); err != nil {
				t.Fatalf("re-decode of accepted request %+v: %v", req, err)
			}
			if again := appendRequest(nil, &rt); !bytes.Equal(first, again) {
				t.Fatalf("request encoding not byte-stable:\n% x\n% x", first, again)
			}
		}
		var resp Response
		if decodeResponse(data, &resp) == nil {
			first := appendResponse(nil, &resp)
			_, used := binary.Uvarint(first)
			var rt Response
			if err := decodeResponse(first[used:], &rt); err != nil {
				t.Fatalf("re-decode of accepted response %+v: %v", resp, err)
			}
			if again := appendResponse(nil, &rt); !bytes.Equal(first, again) {
				t.Fatalf("response encoding not byte-stable:\n% x\n% x", first, again)
			}
		}
	})
}
