package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/faultinject"
	"pstore/internal/migration"
)

// chaosSeed lets CI pin the fault schedule: PSTORE_CHAOS_SEED=n selects the
// injector seed, defaulting to 1. A failing run is replayed by exporting the
// same seed.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("PSTORE_CHAOS_SEED")
	if v == "" {
		return 1
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("bad PSTORE_CHAOS_SEED %q: %v", v, err)
	}
	return n
}

// TestChaosScaleOutEndToEnd is the acceptance test for the robustness
// layer. A server runs under seeded fault injection — dropped, delayed,
// duplicated and severed response writes, random executor freezes, and
// transiently failing bucket moves — while robust clients hammer it with
// read-only traffic and a scale-out migration runs to completion through
// retry and resume. The invariants:
//
//   - the full-table checksum is identical before and after: zero rows
//     lost or duplicated through every injected fault;
//   - every client call either succeeds or fails fast with a typed
//     retryable error — no call ever hangs past its deadline;
//   - the migration completes (possibly over several Resume attempts) and
//     the cluster lands balanced on the target node count.
func TestChaosScaleOutEndToEnd(t *testing.T) {
	seed := chaosSeed(t)
	reg := engine.NewRegistry()
	b2w.Register(reg)
	c, err := cluster.New(cluster.Config{
		InitialNodes:      2,
		PartitionsPerNode: 2,
		NBuckets:          64,
		Tables:            b2w.Tables,
		Registry:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	const carts = 200
	for i := 0; i < carts; i++ {
		for line := 0; line < 2; line++ {
			txn := engine.AcquireTxn(b2w.ProcAddLineToCart, fmt.Sprintf("chaos-cart-%d", i),
				map[string]string{"sku": fmt.Sprintf("sku-%d", line), "qty": "1", "price": "9.99"})
			if res := c.Call(txn); res.Err != nil {
				t.Fatalf("preload: %v", res.Err)
			}
			txn.Release()
		}
	}
	sumBefore, rowsBefore, err := c.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(faultinject.Options{
		Seed:         seed,
		DropProb:     0.01,
		DelayProb:    0.05,
		MaxDelay:     time.Millisecond,
		DupProb:      0.005,
		SeverProb:    0.005,
		MoveFailProb: 0.15,
		FreezeProb:   0.3,
		FreezeFor:    5 * time.Millisecond,
		FreezeEvery:  10 * time.Millisecond,
	})
	srv := New(c, migration.Options{}, nil)
	srv.WrapConns(inj.WrapConn)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	freezeStop := make(chan struct{})
	freezeDone := inj.FreezeLoop(c.Executors, freezeStop)
	defer func() {
		close(freezeStop)
		<-freezeDone
	}()

	// Read-only traffic from robust clients for the whole migration window.
	const clients = 4
	callDeadline := 2 * time.Second
	stopTraffic := make(chan struct{})
	var (
		wg        sync.WaitGroup
		successes atomic.Int64
		slowest   atomic.Int64 // nanoseconds of the slowest single call
	)
	trafficErr := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := DialOptions(addr, Options{
				CallTimeout: callDeadline,
				MaxRetries:  5,
				RetryBase:   2 * time.Millisecond,
				Reconnect:   true,
			})
			if err != nil {
				trafficErr <- fmt.Errorf("client %d dial: %w", g, err)
				return
			}
			defer cl.Close()
			for i := 0; ; i++ {
				select {
				case <-stopTraffic:
					return
				default:
				}
				key := fmt.Sprintf("chaos-cart-%d", (g*53+i)%carts)
				start := time.Now()
				_, err := cl.CallIdempotent(context.Background(), b2w.ProcGetCart, key, nil)
				elapsed := time.Since(start)
				for {
					old := slowest.Load()
					if int64(elapsed) <= old || slowest.CompareAndSwap(old, int64(elapsed)) {
						break
					}
				}
				// Every failure must be fast and typed; hanging past the
				// deadline (plus retry backoff slack) is the one forbidden
				// outcome.
				if elapsed > callDeadline+3*time.Second {
					trafficErr <- fmt.Errorf("client %d: call took %v, deadline %v", g, elapsed, callDeadline)
					return
				}
				if err != nil {
					var ce *Error
					if !errors.As(err, &ce) {
						trafficErr <- fmt.Errorf("client %d: untyped error %v (%T)", g, err, err)
						return
					}
					continue
				}
				successes.Add(1)
			}
		}(g)
	}

	// Scale out 2→3 under chaos; the migration must finish through bounded
	// per-move retries plus whole-migration resume.
	migOpts := migration.Options{
		BucketsPerChunk: 2,
		ChunkInterval:   2 * time.Millisecond,
		MoveRetries:     2,
		MoveBackoff:     time.Millisecond,
		FaultHook:       inj.MoveFault,
		// Same seed as the injector: with PSTORE_CHAOS_SEED pinned, the
		// retry-backoff jitter replays exactly like the fault schedule.
		Seed: seed,
	}
	m, err := migration.Start(c, 3, migOpts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Wait()
	resumes := 0
	for err != nil {
		if resumes++; resumes > 50 {
			t.Fatalf("migration still failing after %d resumes: %v", resumes, err)
		}
		m, err = m.Resume(c)
		if err != nil {
			t.Fatalf("resume %d: %v", resumes, err)
		}
		rep, err = m.Wait()
	}
	if rep.BucketsRemaining != 0 {
		t.Errorf("migration left %d buckets", rep.BucketsRemaining)
	}

	close(stopTraffic)
	wg.Wait()
	select {
	case err := <-trafficErr:
		t.Fatal(err)
	default:
	}

	if c.NumNodes() != 3 {
		t.Errorf("nodes = %d, want 3", c.NumNodes())
	}
	sumAfter, rowsAfter, err := c.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	if sumAfter != sumBefore || rowsAfter != rowsBefore {
		t.Errorf("rows lost or duplicated under chaos: %x/%d → %x/%d",
			sumBefore, rowsBefore, sumAfter, rowsAfter)
	}
	if successes.Load() == 0 {
		t.Error("no client call ever succeeded under chaos")
	}
	fc := inj.Counters()
	if fc.Drops+fc.Severs+fc.Freezes+fc.MoveFaults == 0 {
		t.Error("fault injector fired nothing — chaos test ran calm")
	}
	t.Logf("seed=%d: %d successful reads (slowest %v), %d resumes, migration retries=%d rollbacks=%d, faults: %+v",
		seed, successes.Load(), time.Duration(slowest.Load()), resumes, rep.Retries, rep.Rollbacks, fc)
}
