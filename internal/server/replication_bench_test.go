package server

import (
	"testing"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/migration"
)

// startReplBenchServer builds a networked cluster with replication factor k
// and zero synthetic service time, so the benchmark isolates the cost the
// replication layer adds to the request path. A non-empty dataDir makes the
// whole cluster durable: primaries group-commit to command logs, and each
// standby keeps its own log (the failover-without-data-loss configuration).
func startReplBenchServer(b *testing.B, k int, dataDir string) (*Client, func() error) {
	b.Helper()
	cfg := replClusterConfig(k, 1)
	cfg.DataDir = dataDir
	c, err := cluster.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Stop)
	srv := New(c, migration.Options{}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	cl, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	return cl, func() error { return c.WaitReplicasCaughtUp(10 * time.Second) }
}

// BenchmarkReplicatedCall prices k-safety on the write path: the same
// networked Put workload with no replication (k=0) and with one synchronous
// standby per partition (k=1). The k=1 number includes shipping each command
// over TCP and waiting for the standby's ack before the client sees its
// response — the paper's claim is that command-log shipping makes this
// nearly free relative to the protocol round trip. The k=1/durable variant
// additionally group-commits every command to disk on both the primary and
// the standby before the ack — the configuration that survives a double
// fault (internal/cluster TestDoubleFaultDurableStandbyRecovery) — pricing
// the fsync pipeline on top of the ship. scripts/bench.sh records all three
// as BENCH_replication.json.
func BenchmarkReplicatedCall(b *testing.B) {
	variants := []struct {
		name    string
		k       int
		durable bool
	}{
		{"k=0", 0, false},
		{"k=1", 1, false},
		{"k=1/durable", 1, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			dir := ""
			if v.durable {
				dir = b.TempDir()
			}
			cl, _ := startReplBenchServer(b, v.k, dir)
			// Pin the multiplexing degree as BenchmarkServerCall does: on a
			// 1-CPU host the default is a single serial caller, which pays
			// every group-commit interval and ack round trip at full price
			// instead of amortizing them across in-flight transactions —
			// the exact thing the batched replication pipeline exists for.
			b.SetParallelism(benchClients)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					key := benchKeys[i%len(benchKeys)]
					i++
					if _, err := cl.Call("Put", key, map[string]string{"v": key}); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkReplicaRead measures session-consistent read throughput served
// from standbys: keys are preloaded, replicas quiesce to the head, then
// parallel KindRead requests (carrying the client's session vector) hit the
// replica path instead of the primary executors.
func BenchmarkReplicaRead(b *testing.B) {
	cl, quiesce := startReplBenchServer(b, 1, "")
	for _, key := range benchKeys {
		if _, err := cl.Call("Put", key, map[string]string{"v": key}); err != nil {
			b.Fatal(err)
		}
	}
	if err := quiesce(); err != nil {
		b.Fatal(err)
	}
	// Same multiplexing degree as the write-path benchmarks (see
	// BenchmarkReplicatedCall) so reads pipeline over the connection.
	b.SetParallelism(benchClients)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := benchKeys[i%len(benchKeys)]
			i++
			if _, err := cl.Read("Get", key, nil); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
