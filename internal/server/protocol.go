// Package server exposes a P-Store cluster over TCP with a simple
// gob-encoded request/response protocol, so the database can be deployed as
// a standalone process and driven by network clients (cmd/pstore-server and
// cmd/pstore-client). One server process hosts all partition executors; the
// elasticity machinery (migration, controllers) operates inside it exactly
// as in embedded use.
package server

import (
	"time"
)

// Request is one client→server message.
type Request struct {
	ID   uint64
	Kind Kind

	// Call fields.
	Proc string
	Key  string
	Args map[string]string

	// Scale fields.
	TargetNodes int
}

// Kind discriminates request types.
type Kind string

// Supported request kinds.
const (
	KindPing  Kind = "ping"
	KindCall  Kind = "call"
	KindScale Kind = "scale"
	KindStats Kind = "stats"
)

// Response is one server→client message, matched to a Request by ID.
type Response struct {
	ID      uint64
	Err     string
	Abort   bool
	Out     map[string]string
	Latency time.Duration
	Stats   *Stats
}

// Stats is a cluster status snapshot.
type Stats struct {
	Nodes       int
	Partitions  int
	TotalRows   int
	OfferedTxns int
	P99         time.Duration
}
