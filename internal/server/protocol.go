// Package server exposes a P-Store cluster over TCP with a hand-rolled,
// length-prefixed binary protocol (see codec.go for the exact framing), so
// the database can be deployed as a standalone process and driven by
// network clients (cmd/pstore-server and cmd/pstore-client). One server
// process hosts all partition executors; the elasticity machinery
// (migration, controllers) operates inside it exactly as in embedded use.
//
// The client multiplexes and pipelines requests over one TCP connection:
// concurrent calls are coalesced into a single write (batching), the
// server decodes frames as they arrive, fans each request out to the
// partition executors, and streams replies back in completion order —
// responses are matched to requests by ID, not by position.
package server

import (
	"time"
)

// Request is one client→server message.
type Request struct {
	ID   uint64
	Kind Kind

	// Call and Read fields.
	Proc string
	Key  string
	Args map[string]string

	// Read fields: the caller's session vector — the highest LSN it has
	// written per partition. A replica serving the read must have applied
	// at least that LSN (read-your-writes).
	Session map[int]uint64

	// Scale fields.
	TargetNodes int

	// KillNode fields.
	Node int
}

// Kind discriminates request types. It is a single byte on the wire.
type Kind uint8

// Supported request kinds. The zero value is invalid so a torn or
// zero-filled frame cannot masquerade as a valid request.
const (
	KindInvalid Kind = iota
	KindPing
	KindCall
	KindScale
	KindStats
	KindRead     // session-consistent read, served by a replica when possible
	KindKillNode // chaos hook: SIGKILL-equivalent for one node's partitions
)

// String returns the kind's protocol name (for errors and logs).
func (k Kind) String() string {
	switch k {
	case KindPing:
		return "ping"
	case KindCall:
		return "call"
	case KindScale:
		return "scale"
	case KindStats:
		return "stats"
	case KindRead:
		return "read"
	case KindKillNode:
		return "kill-node"
	default:
		return "invalid"
	}
}

// Response is one server→client message, matched to a Request by ID.
type Response struct {
	ID      uint64
	Err     string
	Abort   bool
	Out     map[string]string
	Latency time.Duration
	Stats   *Stats

	// Busy marks a request shed by the server's admission control before
	// execution: the transaction did NOT run, so a retry is always safe.
	// RetryAfter is the server's hint for how long to back off first.
	Busy       bool
	RetryAfter time.Duration

	// Routed marks call/read responses that carry the executing partition
	// and the write's LSN; the client folds them into its session vector so
	// later reads see this write.
	Routed bool
	Part   int
	LSN    uint64
}

// Stats is a cluster status snapshot.
type Stats struct {
	Nodes       int
	Partitions  int
	TotalRows   int
	OfferedTxns int
	P99         time.Duration

	// Replication fields; all zero when replication is disabled.
	ReplFactor        int    // configured k
	ReplReplicas      int    // live standby count across partitions
	ReplMaxLag        uint64 // worst feed-head minus replica-applied gap, in records
	ReplRecords       int    // command-log records shipped
	ReplFailovers     int
	ReplPromotions    int
	ReplResyncs       int
	ReplStaleWaits    int // session reads that had to wait on a replica
	ReplReplicaReads  int
	ReplFallbackReads int // reads bounced from a replica to the primary
	DeadNodes         int

	// Fencing and split-brain counters; all zero without partition chaos.
	ReplFencedWrites      int // appends refused by a fenced/closed feed
	ReplQuorumLosses      int // armed primaries that dropped below quorum
	ReplQuorumLostWrites  int // writes shed pre-execution during quorum loss
	ReplPromotionsBlocked int // failovers the quorum vote refused
	ReplStaleDemotions    int // deposed primaries demoted in place after heal
}
