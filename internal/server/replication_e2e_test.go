package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/migration"
	"pstore/internal/replication"
)

func replRegistry() *engine.Registry {
	reg := engine.NewRegistry()
	reg.Register("Put", func(tx *engine.Txn) error {
		return tx.Put("T", tx.Key, map[string]string{"v": tx.Arg("v")})
	})
	reg.Register("Get", func(tx *engine.Txn) error {
		r, ok, err := tx.Get("T", tx.Key)
		if err != nil {
			return err
		}
		if !ok {
			return tx.Abort("not found")
		}
		tx.SetOut("v", r.Cols["v"])
		return nil
	})
	return reg
}

func replClusterConfig(k int, seed int64) cluster.Config {
	return cluster.Config{
		InitialNodes:      2,
		PartitionsPerNode: 2,
		NBuckets:          64,
		Tables:            []string{"T"},
		Registry:          replRegistry(),
		Engine:            engine.Config{ServiceTime: 0},
		ReplicationFactor: k,
		Replication:       replication.Options{Seed: seed},
	}
}

// TestReplicationKillPrimaryEndToEnd is the acceptance test for the
// replication subsystem over the wire: a k=1 cluster runs a write workload
// through robust network clients, a node hosting primaries is killed
// mid-workload via the protocol's chaos hook, and the invariants are:
//
//   - writes stall only for a seconds-scale failover window, then resume
//     (the clients' retries absorb the gap — no write is lost or doubled,
//     every write is retried until acked);
//   - after the workload quiesces, the cluster's content checksum equals a
//     fault-free oracle fed the same writes: failover lost nothing;
//   - read-your-writes holds across the failover: session-consistent reads
//     see every write their client made, even served from replicas;
//   - the promoted primaries' new standbys reconverge (VerifyReplicas).
func TestReplicationKillPrimaryEndToEnd(t *testing.T) {
	seed := chaosSeed(t)
	c, err := cluster.New(replClusterConfig(1, seed))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	oracle, err := cluster.New(replClusterConfig(0, seed))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(oracle.Stop)

	srv := New(c, migration.Options{}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	const (
		workers        = 4
		writesPerPhase = 100
	)
	copts := Options{
		CallTimeout: 2 * time.Second,
		MaxRetries:  20,
		RetryBase:   2 * time.Millisecond,
		Reconnect:   true,
	}
	clients := make([]*Client, workers)
	for g := range clients {
		cl, err := DialOptions(addr, copts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		clients[g] = cl
	}

	// write retries until the put is acked. Puts are idempotent (same key,
	// same value), so ambiguous failures retry blindly via CallIdempotent.
	write := func(cl *Client, g, i int) string {
		key := fmt.Sprintf("w-%d-%d", g, i)
		deadline := time.Now().Add(30 * time.Second)
		for {
			_, err := cl.CallIdempotent(context.Background(), "Put", key, map[string]string{"v": key})
			if err == nil {
				return key
			}
			if time.Now().After(deadline) {
				t.Errorf("worker %d: write %s never acked: %v", g, key, err)
				return key
			}
		}
	}
	phase := func(base int) [][]string {
		written := make([][]string, workers)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < writesPerPhase; i++ {
					written[g] = append(written[g], write(clients[g], g, base+i))
				}
			}(g)
		}
		wg.Wait()
		return written
	}

	// Phase 1: calm writes, then quiesce so every write is replica-covered
	// before the kill (the k-safety contract: only replicated writes can
	// survive losing their primary's memory).
	keys := phase(0)
	if err := c.WaitReplicasCaughtUp(10 * time.Second); err != nil {
		t.Fatalf("quiesce before kill: %v", err)
	}

	// Kill a node through the protocol, mid-workload: phase 2 writes race
	// the failover.
	victim := c.Nodes()[1].ID
	var failoverDone atomic.Int64
	start := time.Now()
	phase2 := make(chan [][]string, 1)
	go func() { phase2 <- phase(writesPerPhase) }()
	if err := clients[0].KillNode(victim); err != nil {
		t.Fatalf("KillNode over the wire: %v", err)
	}
	more := <-phase2
	failoverDone.Store(int64(time.Since(start)))
	for g := range keys {
		keys[g] = append(keys[g], more[g]...)
	}
	// 400 tiny writes take milliseconds on a healthy cluster; the bound
	// leaves room only for a seconds-scale failover, not a minutes-scale
	// rebuild.
	if d := time.Duration(failoverDone.Load()); d > 20*time.Second {
		t.Fatalf("workload through failover took %v, want seconds-scale", d)
	}

	// Read-your-writes: every client must see its own writes through
	// session-consistent reads (some served by replicas).
	for g, cl := range clients {
		for _, key := range keys[g] {
			res, err := cl.Read("Get", key, nil)
			if err != nil {
				t.Fatalf("client %d: read %s: %v", g, key, err)
			}
			if res.Out["v"] != key {
				t.Fatalf("client %d: read %s = %q: stale read-your-writes", g, key, res.Out["v"])
			}
		}
	}

	// Oracle equality: the same writes with no fault must leave identical
	// content.
	for g := range keys {
		for _, key := range keys[g] {
			txn := engine.AcquireTxn("Put", key, map[string]string{"v": key})
			if res := oracle.Call(txn); res.Err != nil {
				t.Fatalf("oracle write %s: %v", key, res.Err)
			}
			txn.Release()
		}
	}
	wantSum, wantRows, err := oracle.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	gotSum, gotRows, err := c.QuiescedChecksum(15 * time.Second)
	if err != nil {
		t.Fatalf("quiesced checksum after failover: %v", err)
	}
	if gotSum != wantSum || gotRows != wantRows {
		t.Fatalf("content after failover = %x (%d rows), oracle %x (%d rows): writes lost or duplicated",
			gotSum, gotRows, wantSum, wantRows)
	}
	// The monitor must have respawned standbys for the promoted primaries
	// and they must mirror them exactly.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := c.VerifyReplicas(); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("replicas never reconverged after failover: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	st, err := clients[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplFactor != 1 || st.ReplFailovers == 0 || st.ReplPromotions == 0 || st.DeadNodes != 1 {
		t.Errorf("stats after kill: factor=%d failovers=%d promotions=%d dead=%d",
			st.ReplFactor, st.ReplFailovers, st.ReplPromotions, st.DeadNodes)
	}
	t.Logf("seed=%d: %d writes through failover in %v, failovers=%d promotions=%d resyncs=%d replicaReads=%d fallbackReads=%d",
		seed, workers*2*writesPerPhase, time.Duration(failoverDone.Load()),
		st.ReplFailovers, st.ReplPromotions, st.ReplResyncs, st.ReplReplicaReads, st.ReplFallbackReads)
}

// TestReadSessionConsistencyOverWire: a client that writes then reads with
// its session vector must always see the write, even when replicas lag.
func TestReadSessionConsistencyOverWire(t *testing.T) {
	c, err := cluster.New(replClusterConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	srv := New(c, migration.Options{}, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("s%d", i)
		if _, err := cl.Call("Put", key, map[string]string{"v": key}); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		res, err := cl.Read("Get", key, nil)
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		if res.Out["v"] != key {
			t.Fatalf("read %s = %q right after writing it", key, res.Out["v"])
		}
	}
	if len(cl.Session()) == 0 {
		t.Fatal("client session vector never advanced despite routed write responses")
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplReplicaReads == 0 && st.ReplFallbackReads == 0 {
		t.Error("reads touched neither replicas nor the fallback path")
	}
}
