package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"sync"
	"time"
)

//pstore:deterministic — the wire codec must be byte-deterministic: replicas
// compare checksums of encoded frames and the fuzzers assert
// encode(decode(x)) is byte-stable.

// Wire format
//
// Every message is one frame:
//
//	uvarint payloadLen | payload
//
// Request payload:
//
//	byte kind | uvarint id | kind-specific fields
//	  call:  string proc | string key | uvarint nargs | nargs × (string k, string v)
//	  read:  call fields | uvarint nsess | nsess × (uvarint part, uvarint lsn), ascending part
//	  scale: uvarint targetNodes
//	  kill-node: uvarint node
//	  ping, stats: (empty)
//
// Response payload:
//
//	uvarint id | byte flags | string err | uvarint nout | nout × (string k, string v)
//	  | uvarint latencyNanos
//	  | if flagBusy: uvarint retryAfterNanos
//	  | if flagRouted: uvarint part | uvarint lsn
//	  | if flagStats: uvarint nodes | partitions | totalRows | offeredTxns | p99Nanos
//	    | uvarint replFactor | replReplicas | replMaxLag | replRecords
//	    | replFailovers | replPromotions | replResyncs | replStaleWaits
//	    | replReplicaReads | replFallbackReads | deadNodes
//
// Strings are uvarint length + raw bytes. Everything is hand-encoded with
// no reflection; encoders append into caller-owned buffers so the steady
// state allocates nothing, and decoders validate every length against the
// remaining payload so torn or corrupt frames fail fast instead of
// over-reading.

// maxFrame bounds a single frame; larger announced payloads are rejected
// before any allocation, so a corrupt length prefix cannot OOM the peer.
const maxFrame = 16 << 20

// Response flag bits.
const (
	flagAbort byte = 1 << iota
	flagStats
	flagBusy
	flagRouted
)

// Codec errors.
var (
	errFrameTooLarge = errors.New("pstore-wire: frame exceeds size limit")
	errTruncated     = errors.New("pstore-wire: truncated payload")
	errTrailing      = errors.New("pstore-wire: trailing bytes after payload")
)

// appendUvarint appends v in unsigned varint encoding.
func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendStringMap appends a count-prefixed map of key/value strings in
// sorted key order, so the same map always encodes to the same bytes. Keys
// are staged in a stack-allocated array for the common small-arg case; the
// sort itself is allocation-free (generic slices.Sort, no interface boxing),
// keeping the encode path heap-quiet.
func appendStringMap(buf []byte, m map[string]string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	var arr [16]string
	keys := arr[:0]
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendString(buf, m[k])
	}
	return buf
}

// reader tracks a decode position inside one payload.
type reader struct {
	data []byte
	pos  int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	r.pos += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, errTruncated
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

// bytes returns the next n raw bytes without copying; they alias the frame
// buffer and must be copied (e.g. by string conversion) before the frame
// is reused.
func (r *reader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.data)-r.pos) {
		return nil, errTruncated
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

func (r *reader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(n)
	if err != nil {
		return "", err
	}
	return intern(b), nil
}

// stringMap decodes a count-prefixed map, reusing dst when possible so a
// pooled request's Args map is not reallocated per decode.
func (r *reader) stringMap(dst map[string]string) (map[string]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos)/2 {
		// Each entry needs at least two length bytes; a count beyond that
		// bound is corrupt, reject before allocating.
		return nil, errTruncated
	}
	if n == 0 {
		return dst, nil
	}
	if dst == nil {
		dst = make(map[string]string, n)
	}
	for i := uint64(0); i < n; i++ {
		k, err := r.string()
		if err != nil {
			return nil, err
		}
		v, err := r.string()
		if err != nil {
			return nil, err
		}
		dst[k] = v
	}
	return dst, nil
}

func (r *reader) done() error {
	if r.pos != len(r.data) {
		return errTrailing
	}
	return nil
}

// appendRequest appends req as one frame (length prefix included).
func appendRequest(buf []byte, req *Request) []byte {
	var scratch [16]byte
	payload := scratch[:0]
	payload = append(payload, byte(req.Kind))
	payload = appendUvarint(payload, req.ID)
	// Body size is data dependent; encode the fixed head into scratch to
	// size the frame, then append body fields directly.
	body := len(buf)
	buf = appendUvarint(buf, 0) // placeholder, patched below
	lenAt := len(buf)
	buf = append(buf, payload...)
	switch req.Kind {
	case KindCall:
		buf = appendString(buf, req.Proc)
		buf = appendString(buf, req.Key)
		buf = appendStringMap(buf, req.Args)
	case KindRead:
		buf = appendString(buf, req.Proc)
		buf = appendString(buf, req.Key)
		buf = appendStringMap(buf, req.Args)
		buf = appendSessionVector(buf, req.Session)
	case KindScale:
		buf = appendUvarint(buf, uint64(req.TargetNodes))
	case KindKillNode:
		buf = appendUvarint(buf, uint64(req.Node))
	}
	return patchFrameLen(buf, body, lenAt)
}

// appendSessionVector writes the per-partition LSN watermark map in
// ascending partition order, so the same session always encodes to the
// same bytes.
func appendSessionVector(buf []byte, sess map[int]uint64) []byte {
	buf = appendUvarint(buf, uint64(len(sess)))
	var arr [16]int
	parts := arr[:0]
	for p := range sess {
		parts = append(parts, p)
	}
	slices.Sort(parts)
	for _, p := range parts {
		buf = appendUvarint(buf, uint64(p))
		buf = appendUvarint(buf, sess[p])
	}
	return buf
}

// sessionVector decodes the session map, reusing dst when present.
func (r *reader) sessionVector(dst map[int]uint64) (map[int]uint64, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos)/2 {
		return nil, errTruncated
	}
	if n == 0 {
		return dst, nil
	}
	if dst == nil {
		dst = make(map[int]uint64, n)
	}
	for i := uint64(0); i < n; i++ {
		p, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		lsn, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		dst[int(p)] = lsn
	}
	return dst, nil
}

// appendResponse appends resp as one frame (length prefix included).
func appendResponse(buf []byte, resp *Response) []byte {
	body := len(buf)
	buf = appendUvarint(buf, 0)
	lenAt := len(buf)
	buf = appendUvarint(buf, resp.ID)
	var flags byte
	if resp.Abort {
		flags |= flagAbort
	}
	if resp.Stats != nil {
		flags |= flagStats
	}
	if resp.Busy {
		flags |= flagBusy
	}
	if resp.Routed {
		flags |= flagRouted
	}
	buf = append(buf, flags)
	buf = appendString(buf, resp.Err)
	buf = appendStringMap(buf, resp.Out)
	buf = appendUvarint(buf, uint64(resp.Latency))
	if resp.Busy {
		buf = appendUvarint(buf, uint64(resp.RetryAfter))
	}
	if resp.Routed {
		buf = appendUvarint(buf, uint64(resp.Part))
		buf = appendUvarint(buf, resp.LSN)
	}
	if st := resp.Stats; st != nil {
		buf = appendUvarint(buf, uint64(st.Nodes))
		buf = appendUvarint(buf, uint64(st.Partitions))
		buf = appendUvarint(buf, uint64(st.TotalRows))
		buf = appendUvarint(buf, uint64(st.OfferedTxns))
		buf = appendUvarint(buf, uint64(st.P99))
		buf = appendUvarint(buf, uint64(st.ReplFactor))
		buf = appendUvarint(buf, uint64(st.ReplReplicas))
		buf = appendUvarint(buf, st.ReplMaxLag)
		buf = appendUvarint(buf, uint64(st.ReplRecords))
		buf = appendUvarint(buf, uint64(st.ReplFailovers))
		buf = appendUvarint(buf, uint64(st.ReplPromotions))
		buf = appendUvarint(buf, uint64(st.ReplResyncs))
		buf = appendUvarint(buf, uint64(st.ReplStaleWaits))
		buf = appendUvarint(buf, uint64(st.ReplReplicaReads))
		buf = appendUvarint(buf, uint64(st.ReplFallbackReads))
		buf = appendUvarint(buf, uint64(st.DeadNodes))
		buf = appendUvarint(buf, uint64(st.ReplFencedWrites))
		buf = appendUvarint(buf, uint64(st.ReplQuorumLosses))
		buf = appendUvarint(buf, uint64(st.ReplQuorumLostWrites))
		buf = appendUvarint(buf, uint64(st.ReplPromotionsBlocked))
		buf = appendUvarint(buf, uint64(st.ReplStaleDemotions))
	}
	return patchFrameLen(buf, body, lenAt)
}

// patchFrameLen rewrites the placeholder length prefix at [body,lenAt) to
// the real payload length, shifting the payload when the varint needs more
// than one byte.
func patchFrameLen(buf []byte, body, lenAt int) []byte {
	payloadLen := len(buf) - lenAt
	var pfx [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pfx[:], uint64(payloadLen))
	if n == lenAt-body {
		copy(buf[body:], pfx[:n])
		return buf
	}
	// Rare: payload ≥ 128 bytes and the placeholder was 1 byte. Grow and
	// shift the payload right to make room for the longer prefix.
	buf = append(buf, pfx[:n-(lenAt-body)]...)
	copy(buf[body+n:], buf[lenAt:])
	copy(buf[body:], pfx[:n])
	return buf
}

// decodeRequest parses one request payload. Args maps are reused from req
// when present (cleared by the caller between uses).
func decodeRequest(data []byte, req *Request) error {
	r := reader{data: data}
	k, err := r.byte()
	if err != nil {
		return err
	}
	req.Kind = Kind(k)
	if req.ID, err = r.uvarint(); err != nil {
		return err
	}
	switch req.Kind {
	case KindPing, KindStats:
	case KindCall:
		if req.Proc, err = r.string(); err != nil {
			return err
		}
		if req.Key, err = r.string(); err != nil {
			return err
		}
		if req.Args, err = r.stringMap(req.Args); err != nil {
			return err
		}
	case KindRead:
		if req.Proc, err = r.string(); err != nil {
			return err
		}
		if req.Key, err = r.string(); err != nil {
			return err
		}
		if req.Args, err = r.stringMap(req.Args); err != nil {
			return err
		}
		if req.Session, err = r.sessionVector(req.Session); err != nil {
			return err
		}
	case KindScale:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		req.TargetNodes = int(n)
	case KindKillNode:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		req.Node = int(n)
	default:
		return fmt.Errorf("pstore-wire: unknown request kind %d", k)
	}
	return r.done()
}

// decodeResponse parses one response payload.
func decodeResponse(data []byte, resp *Response) error {
	r := reader{data: data}
	var err error
	if resp.ID, err = r.uvarint(); err != nil {
		return err
	}
	flags, err := r.byte()
	if err != nil {
		return err
	}
	resp.Abort = flags&flagAbort != 0
	if resp.Err, err = r.string(); err != nil {
		return err
	}
	if resp.Out, err = r.stringMap(nil); err != nil {
		return err
	}
	lat, err := r.uvarint()
	if err != nil {
		return err
	}
	resp.Latency = time.Duration(lat)
	resp.Busy = flags&flagBusy != 0
	if resp.Busy {
		ra, err := r.uvarint()
		if err != nil {
			return err
		}
		resp.RetryAfter = time.Duration(ra)
	}
	resp.Routed = flags&flagRouted != 0
	if resp.Routed {
		part, err := r.uvarint()
		if err != nil {
			return err
		}
		resp.Part = int(part)
		if resp.LSN, err = r.uvarint(); err != nil {
			return err
		}
	}
	if flags&flagStats != 0 {
		var st Stats
		vals := []*int{&st.Nodes, &st.Partitions, &st.TotalRows, &st.OfferedTxns}
		for _, p := range vals {
			v, err := r.uvarint()
			if err != nil {
				return err
			}
			*p = int(v)
		}
		p99, err := r.uvarint()
		if err != nil {
			return err
		}
		st.P99 = time.Duration(p99)
		repl := []*int{&st.ReplFactor, &st.ReplReplicas}
		for _, p := range repl {
			v, err := r.uvarint()
			if err != nil {
				return err
			}
			*p = int(v)
		}
		if st.ReplMaxLag, err = r.uvarint(); err != nil {
			return err
		}
		repl = []*int{&st.ReplRecords, &st.ReplFailovers, &st.ReplPromotions,
			&st.ReplResyncs, &st.ReplStaleWaits, &st.ReplReplicaReads,
			&st.ReplFallbackReads, &st.DeadNodes,
			&st.ReplFencedWrites, &st.ReplQuorumLosses, &st.ReplQuorumLostWrites,
			&st.ReplPromotionsBlocked, &st.ReplStaleDemotions}
		for _, p := range repl {
			v, err := r.uvarint()
			if err != nil {
				return err
			}
			*p = int(v)
		}
		resp.Stats = &st
	}
	return r.done()
}

// readFrame reads one length-prefixed frame into buf (reused across calls)
// and returns the payload slice. The payload aliases buf and is only valid
// until the next call.
func readFrame(br *bufio.Reader, buf *[]byte) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, errFrameTooLarge
	}
	if uint64(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // a torn frame, not a clean close
		}
		return nil, err
	}
	return payload, nil
}

// intern returns a string for b, deduplicating short strings through a
// bounded cache. OLTP hot paths see the same procedure names, argument
// keys, and small argument values millions of times; interning makes their
// decode allocation-free in the steady state. Long or novel strings beyond
// the cache bound fall back to a plain copy, so the cache cannot grow
// without limit.
func intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxLen {
		return string(b)
	}
	internMu.RLock()
	s, ok := internTab[string(b)] // no alloc: map lookup by []byte→string
	internMu.RUnlock()
	if ok {
		return s
	}
	internMu.Lock()
	if s, ok = internTab[string(b)]; !ok {
		if len(internTab) >= internMaxEntries {
			internMu.Unlock()
			return string(b)
		}
		s = string(b)
		internTab[s] = s
	}
	internMu.Unlock()
	return s
}

const (
	internMaxLen     = 40
	internMaxEntries = 8192
)

var (
	internMu  sync.RWMutex
	internTab = make(map[string]string, 256)
)
