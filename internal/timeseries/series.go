// Package timeseries provides the numeric foundation for P-Store's load
// prediction: evenly spaced time series, linear least-squares regression and
// forecast accuracy metrics.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Series is an evenly spaced time series. Values[i] is the observation at
// Start + i*Step. The zero value is an empty series with no start time and
// must be given a positive Step before use by code that depends on timing;
// purely index-based operations work regardless.
type Series struct {
	Start  time.Time
	Step   time.Duration
	Values []float64
}

// New returns a Series with the given start, step and values. The values
// slice is used directly (not copied).
func New(start time.Time, step time.Duration, values []float64) *Series {
	return &Series{Start: start, Step: step, Values: values}
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Values) }

// At returns the i-th observation.
func (s *Series) At(i int) float64 { return s.Values[i] }

// TimeAt returns the timestamp of the i-th observation.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// Slice returns a view of the series covering [i, j).
func (s *Series) Slice(i, j int) *Series {
	return &Series{Start: s.TimeAt(i), Step: s.Step, Values: s.Values[i:j]}
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return &Series{Start: s.Start, Step: s.Step, Values: v}
}

// Append adds observations to the end of the series.
func (s *Series) Append(values ...float64) {
	s.Values = append(s.Values, values...)
}

// Max returns the maximum observation, or 0 for an empty series.
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Min returns the minimum observation, or 0 for an empty series.
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Std returns the population standard deviation, or 0 for an empty series.
func (s *Series) Std() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.Values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.Values)))
}

// Scale multiplies every observation by f in place and returns the series.
func (s *Series) Scale(f float64) *Series {
	for i := range s.Values {
		s.Values[i] *= f
	}
	return s
}

// Resample aggregates the series into buckets of the given factor, summing
// the observations in each bucket (appropriate for count-per-slot load
// series). The last partial bucket, if any, is dropped.
func (s *Series) Resample(factor int) (*Series, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("timeseries: resample factor must be positive, got %d", factor)
	}
	n := len(s.Values) / factor
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < factor; j++ {
			sum += s.Values[i*factor+j]
		}
		out[i] = sum
	}
	return &Series{Start: s.Start, Step: time.Duration(factor) * s.Step, Values: out}, nil
}

// Split divides the series at index i into (train, test) views.
func (s *Series) Split(i int) (train, test *Series, err error) {
	if i < 0 || i > len(s.Values) {
		return nil, nil, errors.New("timeseries: split index out of range")
	}
	return s.Slice(0, i), s.Slice(i, len(s.Values)), nil
}
