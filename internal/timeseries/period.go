package timeseries

import (
	"errors"
	"math"
)

// Autocorrelation returns the sample autocorrelation of the series at the
// given lag, in [-1, 1]. It returns 0 for degenerate inputs (lag out of
// range or zero variance).
func (s *Series) Autocorrelation(lag int) float64 {
	n := len(s.Values)
	if lag <= 0 || lag >= n {
		return 0
	}
	mean := s.Mean()
	var num, den float64
	for i := 0; i < n; i++ {
		d := s.Values[i] - mean
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := lag; i < n; i++ {
		num += (s.Values[i] - mean) * (s.Values[i-lag] - mean)
	}
	return num / den
}

// DetectPeriod estimates the dominant seasonal period of the series by
// finding the lag in [minLag, maxLag] with the highest autocorrelation that
// is also a local maximum (so harmonics of short cycles don't win by
// accident). It returns an error when no lag shows meaningful correlation
// (< 0.2, comfortably above white-noise ACF fluctuations at realistic
// series lengths), i.e. the series has no usable seasonality for SPAR.
func (s *Series) DetectPeriod(minLag, maxLag int) (int, error) {
	if minLag < 2 {
		minLag = 2
	}
	if maxLag >= len(s.Values)/2 {
		maxLag = len(s.Values)/2 - 1
	}
	if maxLag < minLag {
		return 0, errors.New("timeseries: series too short for period detection")
	}
	acf := make([]float64, maxLag+2)
	for lag := minLag - 1; lag <= maxLag+1 && lag < len(s.Values); lag++ {
		acf[lag-(minLag-1)] = s.Autocorrelation(lag)
	}
	best, bestLag := math.Inf(-1), 0
	for lag := minLag; lag <= maxLag; lag++ {
		i := lag - (minLag - 1)
		if i+1 >= len(acf) {
			break
		}
		// Local maximum of the ACF.
		if acf[i] >= acf[i-1] && acf[i] >= acf[i+1] && acf[i] > best {
			best = acf[i]
			bestLag = lag
		}
	}
	if bestLag == 0 || best < 0.2 {
		return 0, errors.New("timeseries: no significant periodicity detected")
	}
	return bestLag, nil
}
