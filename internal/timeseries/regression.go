package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a least-squares system has no unique solution
// (e.g. collinear regressors or fewer observations than parameters).
var ErrSingular = errors.New("timeseries: singular system, no unique least-squares solution")

// LeastSquares solves min ||X*beta - y||² for beta using the normal
// equations (Xᵀ X) beta = Xᵀ y with Gaussian elimination and partial
// pivoting. X is row-major: X[i] is the regressor vector of observation i.
// A small ridge term can be supplied to stabilize near-collinear designs;
// pass 0 for plain ordinary least squares.
func LeastSquares(x [][]float64, y []float64, ridge float64) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("timeseries: no observations")
	}
	if n != len(y) {
		return nil, fmt.Errorf("timeseries: %d rows but %d targets", n, len(y))
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("timeseries: no regressors")
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("timeseries: row %d has %d columns, want %d", i, len(row), p)
		}
	}
	if ridge < 0 {
		return nil, fmt.Errorf("timeseries: negative ridge %g", ridge)
	}

	// Build the normal equations. xtx is p×p symmetric, xty is p.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for _, k := range seqInts(n) {
		row := x[k]
		for i := 0; i < p; i++ {
			xi := row[i]
			if xi == 0 {
				continue
			}
			for j := i; j < p; j++ {
				xtx[i][j] += xi * row[j]
			}
			xty[i] += xi * y[k]
		}
	}
	for i := 0; i < p; i++ {
		xtx[i][i] += ridge
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	return SolveLinear(xtx, xty)
}

// seqInts returns [0, 1, ..., n-1]. It exists so the hot accumulation loop in
// LeastSquares reads as iteration over observations.
func seqInts(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// RidgeLeastSquares solves a least-squares problem with a scale-invariant
// ridge penalty: each column of X is standardized to unit root-mean-square
// before a ridge of lambda·n is added to the normal-equation diagonal, and
// the solution is mapped back to the original scale. lambda around 1e-8
// stabilizes collinear designs (e.g. highly correlated periodic lags)
// without measurably biasing well-posed fits. All-zero columns get a zero
// coefficient.
func RidgeLeastSquares(x [][]float64, y []float64, lambda float64) ([]float64, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("timeseries: no observations")
	}
	if n != len(y) {
		return nil, fmt.Errorf("timeseries: %d rows but %d targets", n, len(y))
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("timeseries: no regressors")
	}
	if lambda < 0 {
		return nil, fmt.Errorf("timeseries: negative lambda %g", lambda)
	}
	// Column RMS scales.
	scale := make([]float64, p)
	for _, row := range x {
		if len(row) != p {
			return nil, errors.New("timeseries: ragged design matrix")
		}
		for j, v := range row {
			scale[j] += v * v
		}
	}
	live := make([]int, 0, p) // indices of nonzero columns
	for j := range scale {
		scale[j] = math.Sqrt(scale[j] / float64(n))
		if scale[j] > 0 {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return make([]float64, p), nil
	}
	q := len(live)
	xtx := make([][]float64, q)
	for i := range xtx {
		xtx[i] = make([]float64, q)
	}
	xty := make([]float64, q)
	for k, row := range x {
		for a := 0; a < q; a++ {
			va := row[live[a]] / scale[live[a]]
			if va == 0 {
				continue
			}
			for b := a; b < q; b++ {
				xtx[a][b] += va * row[live[b]] / scale[live[b]]
			}
			xty[a] += va * y[k]
		}
	}
	for a := 0; a < q; a++ {
		xtx[a][a] += lambda * float64(n)
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
	}
	sol, err := SolveLinear(xtx, xty)
	if err != nil {
		return nil, err
	}
	beta := make([]float64, p)
	for a, j := range live {
		beta[j] = sol[a] / scale[j]
	}
	return beta, nil
}

// SolveLinear solves the dense linear system a*x = b by Gaussian elimination
// with partial pivoting. The inputs are modified in place.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("timeseries: bad linear system dimensions")
	}
	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in col.
		pivot := col
		maxAbs := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a[r][col]); abs > maxAbs {
				maxAbs = abs
				pivot = r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			a[pivot], a[col] = a[col], a[pivot]
			b[pivot], b[col] = b[col], b[pivot]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}
