package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSeriesBasics(t *testing.T) {
	start := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	s := New(start, time.Minute, []float64{1, 2, 3, 4})
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if got := s.TimeAt(2); !got.Equal(start.Add(2 * time.Minute)) {
		t.Errorf("TimeAt(2) = %v", got)
	}
	if s.Max() != 4 || s.Min() != 1 {
		t.Errorf("Max/Min = %v/%v, want 4/1", s.Max(), s.Min())
	}
	if !almostEqual(s.Mean(), 2.5, 1e-12) {
		t.Errorf("Mean = %v, want 2.5", s.Mean())
	}
	wantStd := math.Sqrt(1.25)
	if !almostEqual(s.Std(), wantStd, 1e-12) {
		t.Errorf("Std = %v, want %v", s.Std(), wantStd)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 || s.Std() != 0 {
		t.Errorf("empty series stats should be zero: max=%v min=%v mean=%v std=%v",
			s.Max(), s.Min(), s.Mean(), s.Std())
	}
}

func TestSeriesSliceViewsShareStorage(t *testing.T) {
	s := New(time.Time{}, time.Minute, []float64{1, 2, 3, 4})
	v := s.Slice(1, 3)
	if v.Len() != 2 || v.At(0) != 2 {
		t.Fatalf("slice = %+v", v.Values)
	}
	v.Values[0] = 42
	if s.At(1) != 42 {
		t.Error("Slice should be a view sharing storage")
	}
	c := s.Clone()
	c.Values[0] = -1
	if s.At(0) == -1 {
		t.Error("Clone must not share storage")
	}
}

func TestSeriesResample(t *testing.T) {
	s := New(time.Time{}, time.Minute, []float64{1, 2, 3, 4, 5, 6, 7})
	r, err := s.Resample(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.At(0) != 6 || r.At(1) != 15 {
		t.Errorf("resampled = %v, want [6 15]", r.Values)
	}
	if r.Step != 3*time.Minute {
		t.Errorf("step = %v, want 3m", r.Step)
	}
	if _, err := s.Resample(0); err == nil {
		t.Error("Resample(0) should fail")
	}
}

func TestSeriesSplit(t *testing.T) {
	s := New(time.Time{}, time.Minute, []float64{1, 2, 3, 4})
	train, test, err := s.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 3 || test.Len() != 1 || test.At(0) != 4 {
		t.Errorf("split wrong: train=%v test=%v", train.Values, test.Values)
	}
	if _, _, err := s.Split(5); err == nil {
		t.Error("out-of-range split should fail")
	}
}

func TestSeriesScale(t *testing.T) {
	s := New(time.Time{}, time.Second, []float64{1, 2})
	s.Scale(2.5)
	if s.At(0) != 2.5 || s.At(1) != 5 {
		t.Errorf("scaled = %v", s.Values)
	}
}

// Property: resampling preserves the total over complete buckets.
func TestResamplePreservesSumProperty(t *testing.T) {
	f := func(raw []uint8, factorRaw uint8) bool {
		factor := int(factorRaw%5) + 1
		vals := make([]float64, len(raw))
		for i, b := range raw {
			vals[i] = float64(b)
		}
		s := New(time.Time{}, time.Minute, vals)
		r, err := s.Resample(factor)
		if err != nil {
			return false
		}
		n := (len(vals) / factor) * factor
		want := 0.0
		for _, v := range vals[:n] {
			want += v
		}
		got := 0.0
		for _, v := range r.Values {
			got += v
		}
		return almostEqual(got, want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A pure sine has ACF ≈ 1 at its period and ≈ -1 at half period.
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = math.Sin(2 * math.Pi * float64(i) / 40)
	}
	s := New(time.Time{}, time.Minute, vals)
	// The unnormalized sample ACF carries a (n−lag)/n factor: 0.9 at lag 40
	// of 400 samples.
	if got := s.Autocorrelation(40); got < 0.85 {
		t.Errorf("ACF(40) = %v, want ≈0.9", got)
	}
	if got := s.Autocorrelation(20); got > -0.9 {
		t.Errorf("ACF(20) = %v, want ≈-1", got)
	}
	if s.Autocorrelation(0) != 0 || s.Autocorrelation(400) != 0 {
		t.Error("degenerate lags should return 0")
	}
	flat := New(time.Time{}, time.Minute, []float64{5, 5, 5, 5})
	if flat.Autocorrelation(1) != 0 {
		t.Error("zero-variance series should return 0")
	}
}

func TestDetectPeriod(t *testing.T) {
	vals := make([]float64, 600)
	for i := range vals {
		vals[i] = 100 + 50*math.Sin(2*math.Pi*float64(i)/48)
	}
	s := New(time.Time{}, time.Minute, vals)
	got, err := s.DetectPeriod(4, 200)
	if err != nil {
		t.Fatal(err)
	}
	if got < 46 || got > 50 {
		t.Errorf("period = %d, want ≈48", got)
	}
	// Short series.
	if _, err := s.Slice(0, 6).DetectPeriod(4, 200); err == nil {
		t.Error("too-short series should fail")
	}
	// Aperiodic series.
	rng := rand.New(rand.NewSource(1))
	noise := make([]float64, 600)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	if _, err := New(time.Time{}, time.Minute, noise).DetectPeriod(4, 200); err == nil {
		t.Error("white noise should not yield a period")
	}
}
