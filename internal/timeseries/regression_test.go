package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearIdentity(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := []float64{3, -7}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 3, 1e-12) || !almostEqual(x[1], -7, 1e-12) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-9) || !almostEqual(x[1], 3, 1e-9) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 5}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 5, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Errorf("x = %v, want [5 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err == nil {
		t.Error("singular system should return an error")
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 2 + 3x, exactly determined through noiseless points.
	var x [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		xi := float64(i)
		x = append(x, []float64{1, xi})
		y = append(y, 2+3*xi)
	}
	beta, err := LeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(beta[0], 2, 1e-9) || !almostEqual(beta[1], 3, 1e-9) {
		t.Errorf("beta = %v, want [2 3]", beta)
	}
}

func TestLeastSquaresNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var x [][]float64
	var y []float64
	for i := 0; i < 2000; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{1, a, b})
		y = append(y, 1.5-2*a+0.5*b+rng.NormFloat64()*0.01)
	}
	beta, err := LeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -2, 0.5}
	for i := range want {
		if !almostEqual(beta[i], want[i], 1e-2) {
			t.Errorf("beta[%d] = %v, want %v", i, beta[i], want[i])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil, 0); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := LeastSquares([][]float64{{1}, {1, 2}}, []float64{1, 2}, 0); err == nil {
		t.Error("ragged rows should fail")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1}, -1); err == nil {
		t.Error("negative ridge should fail")
	}
	// Collinear columns are singular without ridge...
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	y := []float64{1, 2, 3}
	if _, err := LeastSquares(x, y, 0); err == nil {
		t.Error("collinear design without ridge should fail")
	}
	// ...but solvable with it.
	if _, err := LeastSquares(x, y, 1e-6); err != nil {
		t.Errorf("ridge should stabilize collinear design: %v", err)
	}
}

// Property: for any nonsingular random system, SolveLinear produces x with
// a*x ≈ b.
func TestSolveLinearResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 1 + r.Intn(6)
		a := make([][]float64, n)
		orig := make([][]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				a[i][j] = r.NormFloat64()
				orig[i][j] = a[i][j]
			}
			a[i][i] += float64(n) // diagonal dominance => nonsingular
			orig[i][i] = a[i][i]
			b[i] = r.NormFloat64()
		}
		bOrig := make([]float64, n)
		copy(bOrig, b)
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += orig[i][j] * x[j]
			}
			if math.Abs(sum-bOrig[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMRE(t *testing.T) {
	got, err := MRE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("MRE = %v, want 0.1", got)
	}
	// Zero actuals are skipped.
	got, err = MRE([]float64{5, 110}, []float64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("MRE with zero actual = %v, want 0.1", got)
	}
	if _, err := MRE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := MRE([]float64{1}, []float64{0}); err == nil {
		t.Error("all-zero actuals should fail")
	}
}

func TestRMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	actual := []float64{1, 2, 7}
	rmse, err := RMSE(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(16.0 / 3.0)
	if !almostEqual(rmse, want, 1e-12) {
		t.Errorf("RMSE = %v, want %v", rmse, want)
	}
	mae, err := MAE(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mae, 4.0/3.0, 1e-12) {
		t.Errorf("MAE = %v, want 4/3", mae)
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty RMSE should fail")
	}
	if _, err := MAE([]float64{1}, []float64{}); err == nil {
		t.Error("mismatched MAE should fail")
	}
}

func TestRidgeLeastSquaresNearCollinear(t *testing.T) {
	// Intercept vs a large-mean, low-variance column: a naive absolute
	// ridge badly biases this design; the standardized ridge must not.
	rng := rand.New(rand.NewSource(9))
	const phi, c = 0.8, 50.0
	prev := c / (1 - phi)
	var x [][]float64
	var y []float64
	for i := 0; i < 5000; i++ {
		next := c + phi*prev + rng.NormFloat64()
		x = append(x, []float64{1, prev})
		y = append(y, next)
		prev = next
	}
	beta, err := RidgeLeastSquares(x, y, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[1]-phi) > 0.05 {
		t.Errorf("slope = %v, want ≈%v", beta[1], phi)
	}
}

func TestRidgeLeastSquaresZeroColumn(t *testing.T) {
	x := [][]float64{{1, 0}, {2, 0}, {3, 0}}
	y := []float64{2, 4, 6}
	beta, err := RidgeLeastSquares(x, y, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(beta[0], 2, 1e-4) || beta[1] != 0 {
		t.Errorf("beta = %v, want [2 0]", beta)
	}
}

func TestRidgeLeastSquaresAllZero(t *testing.T) {
	x := [][]float64{{0}, {0}}
	y := []float64{1, 2}
	beta, err := RidgeLeastSquares(x, y, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if beta[0] != 0 {
		t.Errorf("beta = %v, want [0]", beta)
	}
}

func TestRidgeLeastSquaresValidation(t *testing.T) {
	if _, err := RidgeLeastSquares(nil, nil, 1e-8); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := RidgeLeastSquares([][]float64{{1}}, []float64{1}, -1); err == nil {
		t.Error("negative lambda should fail")
	}
	if _, err := RidgeLeastSquares([][]float64{{1}, {1, 2}}, []float64{1, 2}, 0); err == nil {
		t.Error("ragged rows should fail")
	}
}
