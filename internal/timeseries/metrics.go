package timeseries

import (
	"errors"
	"math"
)

// ErrLengthMismatch is returned when predicted and actual series differ in length.
var ErrLengthMismatch = errors.New("timeseries: predicted and actual lengths differ")

// MRE returns the mean relative error of predictions against actuals,
// |pred-actual| / actual averaged over all points with actual != 0. This is
// the accuracy measure the paper reports for SPAR (Figs 5b, 6b).
func MRE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, ErrLengthMismatch
	}
	sum, n := 0.0, 0
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0, errors.New("timeseries: no nonzero actuals for MRE")
	}
	return sum / float64(n), nil
}

// RMSE returns the root mean squared error.
func RMSE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, errors.New("timeseries: empty input")
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// MAE returns the mean absolute error.
func MAE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, errors.New("timeseries: empty input")
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred)), nil
}
