// Package storage implements the per-partition in-memory row store
// underlying the H-Store-style engine. Rows are grouped into hash buckets —
// the granularity at which the Squall-style migrator relocates data — and
// each partition owns a disjoint set of buckets.
//
// A Partition is NOT safe for concurrent use: exactly one engine executor
// goroutine owns it, mirroring H-Store's serial per-partition execution
// model.
package storage

import (
	"fmt"
	"sort"

	"pstore/internal/hashing"
)

// Row is a stored record: a primary key plus named string columns.
// Structured values (e.g. a shopping cart's line items) are stored as
// encoded documents inside a column, as in the document-oriented store the
// B2W benchmark models.
type Row struct {
	Key  string
	Cols map[string]string
}

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	cols := make(map[string]string, len(r.Cols))
	for k, v := range r.Cols {
		cols[k] = v
	}
	return Row{Key: r.Key, Cols: cols}
}

// SizeBytes estimates the row's in-memory footprint.
func (r Row) SizeBytes() int {
	n := len(r.Key)
	for k, v := range r.Cols {
		n += len(k) + len(v)
	}
	return n
}

// BucketOf maps a key to one of nBuckets hash buckets using MurmurHash 2.0,
// the paper's placement hash. Buckets are the unit of data movement.
func BucketOf(key string, nBuckets int) int {
	return hashing.PartitionOf(key, nBuckets)
}

// Partition is one logical data partition: a set of tables, each holding
// rows grouped by bucket.
type Partition struct {
	id       int
	nBuckets int
	tables   map[string]*table
	owned    map[int]bool // buckets this partition currently owns

	// capture holds per-bucket write-capture state while a pre-copy
	// migration is streaming the bucket out (see precopy.go); staged holds
	// rows arriving for buckets this partition does not own yet
	// (bucket → table → key → row). Both are nil when no move is in flight.
	capture map[int]*bucketCapture
	staged  map[int]map[string]map[string]Row

	// readOnly rejects Put/Delete — set by a replica around read-only
	// transactions so a mistakenly routed writing procedure fails loudly
	// instead of silently diverging the replica from its primary.
	readOnly bool
}

// ErrReadOnly is returned for writes against a partition in read-only mode
// (a replica serving reads).
var ErrReadOnly = fmt.Errorf("storage: partition is read-only")

// SetReadOnly toggles read-only mode. Callers synchronize with whatever
// lock owns the partition (the replica's apply mutex).
func (p *Partition) SetReadOnly(ro bool) { p.readOnly = ro }

type table struct {
	name    string
	buckets map[int]map[string]Row
}

// NewPartition creates an empty partition. nBuckets is the global bucket
// count shared by the whole cluster; owned lists the buckets this partition
// is responsible for.
func NewPartition(id, nBuckets int, owned []int) *Partition {
	p := &Partition{
		id:       id,
		nBuckets: nBuckets,
		tables:   make(map[string]*table),
		owned:    make(map[int]bool, len(owned)),
	}
	for _, b := range owned {
		p.owned[b] = true
	}
	return p
}

// ID returns the partition's identifier.
func (p *Partition) ID() int { return p.id }

// NBuckets returns the global bucket count.
func (p *Partition) NBuckets() int { return p.nBuckets }

// Owns reports whether the partition currently owns the bucket.
func (p *Partition) Owns(bucket int) bool { return p.owned[bucket] }

// OwnsKey reports whether the partition owns the key's bucket.
func (p *Partition) OwnsKey(key string) bool {
	return p.owned[BucketOf(key, p.nBuckets)]
}

// OwnedBuckets returns the partition's buckets in ascending order.
func (p *Partition) OwnedBuckets() []int {
	out := make([]int, 0, len(p.owned))
	for b := range p.owned {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// CreateTable ensures a table exists.
func (p *Partition) CreateTable(name string) {
	if _, ok := p.tables[name]; !ok {
		p.tables[name] = &table{name: name, buckets: make(map[int]map[string]Row)}
	}
}

// ErrNotOwned is returned for operations on keys whose bucket is not owned
// by the partition — the signal that routing raced with a migration.
type ErrNotOwned struct {
	Partition int
	Bucket    int
	Key       string
}

func (e *ErrNotOwned) Error() string {
	return fmt.Sprintf("storage: partition %d does not own bucket %d (key %q)", e.Partition, e.Bucket, e.Key)
}

func (p *Partition) checkOwned(key string) (int, error) {
	b := BucketOf(key, p.nBuckets)
	if !p.owned[b] {
		return b, &ErrNotOwned{Partition: p.id, Bucket: b, Key: key}
	}
	return b, nil
}

// Get returns the row with the key from the table.
func (p *Partition) Get(tableName, key string) (Row, bool, error) {
	b, err := p.checkOwned(key)
	if err != nil {
		return Row{}, false, err
	}
	t, ok := p.tables[tableName]
	if !ok {
		return Row{}, false, fmt.Errorf("storage: unknown table %q", tableName)
	}
	rows, ok := t.buckets[b]
	if !ok {
		return Row{}, false, nil
	}
	r, ok := rows[key]
	if !ok {
		return Row{}, false, nil
	}
	return r.Clone(), true, nil
}

// Put inserts or replaces the row with the key in the table.
func (p *Partition) Put(tableName, key string, cols map[string]string) error {
	if p.readOnly {
		return ErrReadOnly
	}
	b, err := p.checkOwned(key)
	if err != nil {
		return err
	}
	t, ok := p.tables[tableName]
	if !ok {
		return fmt.Errorf("storage: unknown table %q", tableName)
	}
	rows, ok := t.buckets[b]
	if !ok {
		rows = make(map[string]Row)
		t.buckets[b] = rows
	}
	r := Row{Key: key, Cols: cols}.Clone()
	rows[key] = r
	if p.capture != nil {
		// Stored rows are replaced whole, never mutated in place, so the
		// delta can share the clone with the live table.
		p.captureWrite(b, DeltaOp{Table: tableName, Key: key, Row: r})
	}
	return nil
}

// Delete removes the row with the key from the table, reporting whether it
// existed.
func (p *Partition) Delete(tableName, key string) (bool, error) {
	if p.readOnly {
		return false, ErrReadOnly
	}
	b, err := p.checkOwned(key)
	if err != nil {
		return false, err
	}
	t, ok := p.tables[tableName]
	if !ok {
		return false, fmt.Errorf("storage: unknown table %q", tableName)
	}
	rows, ok := t.buckets[b]
	if !ok {
		return false, nil
	}
	if _, ok := rows[key]; !ok {
		return false, nil
	}
	delete(rows, key)
	if p.capture != nil {
		p.captureWrite(b, DeltaOp{Table: tableName, Key: key, Delete: true})
	}
	return true, nil
}

// Scan iterates over every row of a table in unspecified order, calling fn
// with each row; fn returning false stops the scan early. The row passed to
// fn is a copy, safe to retain. Scan reports the number of rows visited.
func (p *Partition) Scan(tableName string, fn func(Row) bool) (int, error) {
	t, ok := p.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("storage: unknown table %q", tableName)
	}
	visited := 0
	for _, rows := range t.buckets {
		for _, r := range rows {
			visited++
			if !fn(r.Clone()) {
				return visited, nil
			}
		}
	}
	return visited, nil
}

// RowCount returns the total number of rows across all tables.
func (p *Partition) RowCount() int {
	n := 0
	for _, t := range p.tables {
		for _, rows := range t.buckets {
			n += len(rows)
		}
	}
	return n
}

// BucketRowCount returns the number of rows stored in the bucket across all
// tables.
func (p *Partition) BucketRowCount(bucket int) int {
	n := 0
	for _, t := range p.tables {
		n += len(t.buckets[bucket])
	}
	return n
}

// SizeBytes estimates the partition's data footprint.
func (p *Partition) SizeBytes() int {
	n := 0
	for _, t := range p.tables {
		for _, rows := range t.buckets {
			for _, r := range rows {
				n += r.SizeBytes()
			}
		}
	}
	return n
}

// BucketData is the serializable contents of one bucket, the unit moved by
// the migrator.
type BucketData struct {
	Bucket int
	Tables map[string][]Row
}

// RowCount returns the number of rows in the extracted bucket.
func (d *BucketData) RowCount() int {
	n := 0
	for _, rows := range d.Tables {
		n += len(rows)
	}
	return n
}

// ExtractBucket removes the bucket's rows from the partition and revokes
// ownership, returning the extracted data. Extracting a bucket the
// partition does not own is an error. Rows come back in unspecified order —
// extraction is a live-move hot path, so it does not pay for sorting;
// encoders that need determinism (snapshots, handoff records) sort
// themselves. Any in-flight capture state for the bucket is discarded.
func (p *Partition) ExtractBucket(bucket int) (*BucketData, error) {
	if !p.owned[bucket] {
		return nil, &ErrNotOwned{Partition: p.id, Bucket: bucket}
	}
	data := &BucketData{Bucket: bucket, Tables: make(map[string][]Row)}
	for name, t := range p.tables {
		rows, ok := t.buckets[bucket]
		if !ok {
			continue
		}
		out := make([]Row, 0, len(rows))
		for _, r := range rows {
			out = append(out, r)
		}
		data.Tables[name] = out
		delete(t.buckets, bucket)
	}
	delete(p.owned, bucket)
	delete(p.capture, bucket)
	return data, nil
}

// CopyBucket returns a deep copy of the bucket's rows without disturbing
// the partition — the non-destructive sibling of ExtractBucket, used by the
// durability snapshot encoder. Copying a bucket the partition does not own
// is an error.
func (p *Partition) CopyBucket(bucket int) (*BucketData, error) {
	if !p.owned[bucket] {
		return nil, &ErrNotOwned{Partition: p.id, Bucket: bucket}
	}
	data := &BucketData{Bucket: bucket, Tables: make(map[string][]Row)}
	for name, t := range p.tables {
		rows, ok := t.buckets[bucket]
		if !ok {
			continue
		}
		out := make([]Row, 0, len(rows))
		for _, r := range rows {
			out = append(out, r.Clone())
		}
		sortRowsByKey(out)
		data.Tables[name] = out
	}
	return data, nil
}

// ApplyBucket installs the bucket's rows and takes ownership. Applying a
// bucket the partition already owns is an error (it would clobber data).
func (p *Partition) ApplyBucket(data *BucketData) error {
	if p.owned[data.Bucket] {
		return fmt.Errorf("storage: partition %d already owns bucket %d", p.id, data.Bucket)
	}
	for name, rows := range data.Tables {
		p.CreateTable(name)
		t := p.tables[name]
		dst, ok := t.buckets[data.Bucket]
		if !ok {
			dst = make(map[string]Row, len(rows))
			t.buckets[data.Bucket] = dst
		}
		for _, r := range rows {
			dst[r.Key] = r
		}
	}
	p.owned[data.Bucket] = true
	return nil
}

// Tables returns the table names in sorted order.
func (p *Partition) Tables() []string {
	out := make([]string, 0, len(p.tables))
	for name := range p.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
