// Package storage implements the per-partition in-memory row store
// underlying the H-Store-style engine. Rows are grouped into hash buckets —
// the granularity at which the Squall-style migrator relocates data — and
// each partition owns a disjoint set of buckets.
//
// Rows are stored as compact byte-encoded tuples in per-bucket arenas (see
// tuple.go, arena.go): column names intern into a per-table Schema, tuples
// carry field IDs, and stored procedures read through zero-copy TupleViews.
// Row and BucketData remain the materialized interchange types for
// snapshots, replication shipping and tests — the durable formats are
// unchanged.
//
// A Partition is NOT safe for concurrent use: exactly one engine executor
// goroutine owns it, mirroring H-Store's serial per-partition execution
// model.
package storage

import (
	"fmt"
	"sort"

	"pstore/internal/hashing"
)

// Row is a materialized record: a primary key plus named string columns.
// Structured values (e.g. a shopping cart's line items) are stored as
// encoded documents inside a column, as in the document-oriented store the
// B2W benchmark models. Inside the store rows live as encoded tuples; Row
// is the owned, GC-managed form handed across API boundaries.
type Row struct {
	Key  string
	Cols map[string]string
}

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	cols := make(map[string]string, len(r.Cols))
	for k, v := range r.Cols {
		cols[k] = v
	}
	return Row{Key: r.Key, Cols: cols}
}

// Go runtime overhead constants for Row's footprint: string headers are
// 16 bytes, and a map entry costs roughly 48 bytes of bucket and header
// machinery beyond its key and value payloads.
const (
	stringHeaderBytes = 16
	mapEntryOverhead  = 48
	mapHeaderBytes    = 48
)

// SizeBytes estimates the row's in-memory footprint as a boxed Go value,
// including string headers and map bucket overhead — the costs the previous
// payload-only estimate omitted (~48B+ per column), which made the
// planner's memory estimates drift low on small-row tables.
func (r Row) SizeBytes() int {
	n := stringHeaderBytes + len(r.Key) + mapHeaderBytes
	for k, v := range r.Cols {
		n += mapEntryOverhead + 2*stringHeaderBytes + len(k) + len(v)
	}
	return n
}

// BucketOf maps a key to one of nBuckets hash buckets using MurmurHash 2.0,
// the paper's placement hash. Buckets are the unit of data movement.
func BucketOf(key string, nBuckets int) int {
	return hashing.PartitionOf(key, nBuckets)
}

// Partition is one logical data partition: a set of tables, each holding
// rows grouped by bucket.
type Partition struct {
	id       int
	nBuckets int
	tables   map[string]*table
	owned    map[int]bool // buckets this partition currently owns

	// capture holds per-bucket write-capture state while a pre-copy
	// migration is streaming the bucket out (see precopy.go); staged holds
	// tuples arriving for buckets this partition does not own yet
	// (bucket → table → bucketRows). Both are nil when no move is in flight.
	capture map[int]*bucketCapture
	staged  map[int]map[string]*bucketRows

	// enc is the partition's tuple-encode scratch buffer, reused across
	// Puts (the encoded bytes are copied into the bucket arena immediately).
	enc []byte

	// readOnly rejects Put/Delete — set by a replica around read-only
	// transactions so a mistakenly routed writing procedure fails loudly
	// instead of silently diverging the replica from its primary.
	readOnly bool
}

// ErrReadOnly is returned for writes against a partition in read-only mode
// (a replica serving reads).
var ErrReadOnly = fmt.Errorf("storage: partition is read-only")

// SetReadOnly toggles read-only mode. Callers synchronize with whatever
// lock owns the partition (the replica's apply mutex).
func (p *Partition) SetReadOnly(ro bool) { p.readOnly = ro }

type table struct {
	name    string
	schema  *Schema
	buckets map[int]*bucketRows
}

// bucketFor returns the table's rows for bucket, creating them if asked.
func (t *table) bucketFor(bucket int, create bool) *bucketRows {
	b := t.buckets[bucket]
	if b == nil && create {
		b = newBucketRows()
		t.buckets[bucket] = b
	}
	return b
}

// NewPartition creates an empty partition. nBuckets is the global bucket
// count shared by the whole cluster; owned lists the buckets this partition
// is responsible for.
func NewPartition(id, nBuckets int, owned []int) *Partition {
	p := &Partition{
		id:       id,
		nBuckets: nBuckets,
		tables:   make(map[string]*table),
		owned:    make(map[int]bool, len(owned)),
	}
	for _, b := range owned {
		p.owned[b] = true
	}
	return p
}

// ID returns the partition's identifier.
func (p *Partition) ID() int { return p.id }

// NBuckets returns the global bucket count.
func (p *Partition) NBuckets() int { return p.nBuckets }

// Owns reports whether the partition currently owns the bucket.
func (p *Partition) Owns(bucket int) bool { return p.owned[bucket] }

// OwnsKey reports whether the partition owns the key's bucket.
func (p *Partition) OwnsKey(key string) bool {
	return p.owned[BucketOf(key, p.nBuckets)]
}

// OwnedBuckets returns the partition's buckets in ascending order.
func (p *Partition) OwnedBuckets() []int {
	out := make([]int, 0, len(p.owned))
	for b := range p.owned {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// CreateTable ensures a table exists.
func (p *Partition) CreateTable(name string) {
	if _, ok := p.tables[name]; !ok {
		p.tables[name] = &table{name: name, schema: newSchema(), buckets: make(map[int]*bucketRows)}
	}
}

// ErrNotOwned is returned for operations on keys whose bucket is not owned
// by the partition — the signal that routing raced with a migration.
type ErrNotOwned struct {
	Partition int
	Bucket    int
	Key       string
}

func (e *ErrNotOwned) Error() string {
	return fmt.Sprintf("storage: partition %d does not own bucket %d (key %q)", e.Partition, e.Bucket, e.Key)
}

// IsNotOwned reports whether err is (or wraps) an ErrNotOwned. Unlike
// errors.As with a local target, this never allocates — it sits on the
// transaction hot path, where every routing decision passes through it.
func IsNotOwned(err error) bool {
	for err != nil {
		if _, ok := err.(*ErrNotOwned); ok {
			return true
		}
		switch x := err.(type) {
		case interface{ Unwrap() error }:
			err = x.Unwrap()
		default:
			return false
		}
	}
	return false
}

func (p *Partition) checkOwned(key string) (int, error) {
	b := BucketOf(key, p.nBuckets)
	if !p.owned[b] {
		return b, &ErrNotOwned{Partition: p.id, Bucket: b, Key: key}
	}
	return b, nil
}

// Get returns the row with the key from the table, materialized as an owned
// Row. Hot paths that only read should prefer GetView.
func (p *Partition) Get(tableName, key string) (Row, bool, error) {
	v, ok, err := p.GetView(tableName, key)
	if err != nil || !ok {
		return Row{}, ok, err
	}
	return v.Row(), true, nil
}

// GetView returns a zero-copy view of the row with the key. The view
// borrows the bucket's arena bytes: valid for the duration of the
// transaction that requested it, never to be retained past txn return (the
// tupleescape vet check enforces this for stored procedures).
func (p *Partition) GetView(tableName, key string) (TupleView, bool, error) {
	b, err := p.checkOwned(key)
	if err != nil {
		return TupleView{}, false, err
	}
	t, ok := p.tables[tableName]
	if !ok {
		return TupleView{}, false, fmt.Errorf("storage: unknown table %q", tableName)
	}
	rows := t.buckets[b]
	if rows == nil {
		return TupleView{}, false, nil
	}
	tuple := rows.get(key)
	if tuple == nil {
		return TupleView{}, false, nil
	}
	return TupleView{b: tuple, schema: t.schema}, true, nil
}

// Put inserts or replaces the row with the key in the table. cols is
// encoded immediately and never retained — callers may reuse the map.
func (p *Partition) Put(tableName, key string, cols map[string]string) error {
	if p.readOnly {
		return ErrReadOnly
	}
	b, err := p.checkOwned(key)
	if err != nil {
		return err
	}
	t, ok := p.tables[tableName]
	if !ok {
		return fmt.Errorf("storage: unknown table %q", tableName)
	}
	p.enc = appendTuple(p.enc[:0], t.schema, key, cols)
	rows := t.bucketFor(b, true)
	rows.putTuple(p.enc)
	if p.capture != nil {
		// The arena alias is stable (pages are append-only), so the delta
		// can share bytes with the live table instead of cloning the row.
		p.captureWrite(b, DeltaOp{Table: tableName, Key: key,
			Tuple: rows.get(key), Schema: t.schema})
	}
	return nil
}

// Delete removes the row with the key from the table, reporting whether it
// existed.
func (p *Partition) Delete(tableName, key string) (bool, error) {
	if p.readOnly {
		return false, ErrReadOnly
	}
	b, err := p.checkOwned(key)
	if err != nil {
		return false, err
	}
	t, ok := p.tables[tableName]
	if !ok {
		return false, fmt.Errorf("storage: unknown table %q", tableName)
	}
	rows := t.buckets[b]
	if rows == nil || !rows.delete(key) {
		return false, nil
	}
	if p.capture != nil {
		p.captureWrite(b, DeltaOp{Table: tableName, Key: key, Delete: true})
	}
	return true, nil
}

// Scan iterates over every row of a table in unspecified order, calling fn
// with each row; fn returning false stops the scan early. The row passed to
// fn is an owned copy, safe to retain. Scan reports the number of rows
// visited. Hot read paths should prefer ScanViews.
func (p *Partition) Scan(tableName string, fn func(Row) bool) (int, error) {
	return p.ScanViews(tableName, func(v TupleView) bool { return fn(v.Row()) })
}

// ScanViews iterates over every row of a table as zero-copy views, in
// unspecified order; fn returning false stops early. Views are valid only
// within the callback.
func (p *Partition) ScanViews(tableName string, fn func(TupleView) bool) (int, error) {
	t, ok := p.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("storage: unknown table %q", tableName)
	}
	visited := 0
	for _, rows := range t.buckets {
		for _, tuple := range rows.index {
			visited++
			if !fn(TupleView{b: tuple, schema: t.schema}) {
				return visited, nil
			}
		}
	}
	return visited, nil
}

// RowCount returns the total number of rows across all tables.
func (p *Partition) RowCount() int {
	n := 0
	for _, t := range p.tables {
		for _, rows := range t.buckets {
			n += rows.len()
		}
	}
	return n
}

// BucketRowCount returns the number of rows stored in the bucket across all
// tables.
func (p *Partition) BucketRowCount(bucket int) int {
	n := 0
	for _, t := range p.tables {
		if rows := t.buckets[bucket]; rows != nil {
			n += rows.len()
		}
	}
	return n
}

// SizeBytes returns the partition's exact retained data footprint: arena
// pages plus index overhead, summed across tables and buckets. Unlike the
// old per-row estimate this is the memory actually held, so the planner's
// load accounting no longer drifts.
func (p *Partition) SizeBytes() int {
	n := 0
	for _, t := range p.tables {
		for _, rows := range t.buckets {
			n += rows.sizeBytes()
		}
	}
	return n
}

// BucketSizeBytes returns the bucket's exact retained footprint across all
// tables — the per-bucket load number the migration planner weighs.
func (p *Partition) BucketSizeBytes(bucket int) int {
	n := 0
	for _, t := range p.tables {
		if rows := t.buckets[bucket]; rows != nil {
			n += rows.sizeBytes()
		}
	}
	return n
}

// BucketData is the materialized contents of one bucket — the serializable
// interchange form used by snapshots, handoff records and replication
// shipping. Its JSON shape is part of the durable format and predates the
// tuple layout; materializing it costs a decode, so live movement paths use
// BucketPages instead.
type BucketData struct {
	Bucket int
	Tables map[string][]Row
}

// RowCount returns the number of rows in the extracted bucket.
func (d *BucketData) RowCount() int {
	n := 0
	for _, rows := range d.Tables {
		n += len(rows)
	}
	return n
}

// BucketPages is one bucket's encoded pages unhooked from (or bound for) a
// partition: per-table arenas handed off by reference, with each source
// table's schema riding along to decode them. Moving a bucket this way is
// O(tables) pointer moves — no per-row cloning — and the receiving
// partition re-encodes only if its schema assigns different field IDs.
type BucketPages struct {
	Bucket int
	tables map[string]*bucketPage
	rows   int
}

type bucketPage struct {
	schema *Schema
	rows   *bucketRows
}

// RowCount returns the number of rows carried by the pages.
func (bp *BucketPages) RowCount() int { return bp.rows }

// Data materializes the pages as sorted BucketData — the deterministic
// interchange form the durable handoff record encodes. Cost is O(rows);
// only paths that must serialize pay it.
func (bp *BucketPages) Data() *BucketData {
	data := &BucketData{Bucket: bp.Bucket, Tables: make(map[string][]Row, len(bp.tables))}
	//pstore:ignore determinism — rows are sorted by key below before encoding
	for name, pg := range bp.tables {
		out := make([]Row, 0, pg.rows.len())
		//pstore:ignore determinism — index iteration lands in out, which is sorted below
		for _, tuple := range pg.rows.index {
			out = append(out, TupleView{b: tuple, schema: pg.schema}.Row())
		}
		sortRowsByKey(out)
		data.Tables[name] = out
	}
	return data
}

// ExtractBucketPages removes the bucket's encoded pages from the partition
// and revokes ownership — the zero-copy form of ExtractBucket: O(tables)
// pointer moves regardless of row count. Any in-flight capture state for
// the bucket is discarded.
func (p *Partition) ExtractBucketPages(bucket int) (*BucketPages, error) {
	if !p.owned[bucket] {
		return nil, &ErrNotOwned{Partition: p.id, Bucket: bucket}
	}
	bp := &BucketPages{Bucket: bucket, tables: make(map[string]*bucketPage)}
	for name, t := range p.tables {
		rows, ok := t.buckets[bucket]
		if !ok {
			continue
		}
		bp.tables[name] = &bucketPage{schema: t.schema, rows: rows}
		bp.rows += rows.len()
		delete(t.buckets, bucket)
	}
	delete(p.owned, bucket)
	delete(p.capture, bucket)
	return bp, nil
}

// adoptRows installs src-encoded rows into the table's bucket. When the
// table's schema assigns the same field IDs as the source (always true for
// a fresh table, which adopts the source's field order) the bucketRows
// transfer by reference; otherwise every tuple is re-encoded against the
// table's schema — O(rows) but still no per-row map allocation.
func (t *table) adoptRows(bucket int, src *Schema, rows *bucketRows) {
	if t.schema.NumFields() == 0 {
		for _, name := range src.fieldNames() {
			t.schema.intern(name)
		}
	}
	if sameFields(src, t.schema) && t.buckets[bucket] == nil {
		t.buckets[bucket] = rows
		return
	}
	dst := t.bucketFor(bucket, true)
	var buf []byte
	for _, tuple := range rows.index {
		if sameFields(src, t.schema) {
			dst.putTuple(tuple)
			continue
		}
		buf = remapTuple(buf[:0], src, t.schema, tuple)
		dst.putTuple(buf)
	}
}

// ApplyBucketPages installs extracted pages and takes ownership. Applying a
// bucket the partition already owns is an error (it would clobber data).
func (p *Partition) ApplyBucketPages(bp *BucketPages) error {
	if p.owned[bp.Bucket] {
		return fmt.Errorf("storage: partition %d already owns bucket %d", p.id, bp.Bucket)
	}
	for name, pg := range bp.tables {
		p.CreateTable(name)
		p.tables[name].adoptRows(bp.Bucket, pg.schema, pg.rows)
	}
	p.owned[bp.Bucket] = true
	return nil
}

// DropBucket discards the bucket's rows and revokes ownership without
// materializing anything — for callers that extract only to throw away
// (recovery discarding a re-inherited bucket, a replica resyncing). Any
// in-flight capture state is discarded too.
func (p *Partition) DropBucket(bucket int) error {
	if !p.owned[bucket] {
		return &ErrNotOwned{Partition: p.id, Bucket: bucket}
	}
	for _, t := range p.tables {
		delete(t.buckets, bucket)
	}
	delete(p.owned, bucket)
	delete(p.capture, bucket)
	return nil
}

// ExtractBucket removes the bucket's rows from the partition and revokes
// ownership, returning the materialized data. Extracting a bucket the
// partition does not own is an error. Rows come back in unspecified order —
// encoders that need determinism (snapshots, handoff records) sort
// themselves. Live movement should prefer ExtractBucketPages, which skips
// the materialization; discard paths should use DropBucket.
func (p *Partition) ExtractBucket(bucket int) (*BucketData, error) {
	bp, err := p.ExtractBucketPages(bucket)
	if err != nil {
		return nil, err
	}
	data := &BucketData{Bucket: bucket, Tables: make(map[string][]Row, len(bp.tables))}
	//pstore:ignore determinism — documented unspecified order; durable encoders sort (BucketPages.Data, CopyBucket)
	for name, pg := range bp.tables {
		out := make([]Row, 0, pg.rows.len())
		//pstore:ignore determinism — same: materialization order is unspecified by contract
		for _, tuple := range pg.rows.index {
			out = append(out, TupleView{b: tuple, schema: pg.schema}.Row())
		}
		data.Tables[name] = out
	}
	return data, nil
}

// CopyBucket returns the bucket's rows materialized in sorted key order
// without disturbing the partition — the non-destructive sibling of
// ExtractBucket, used by the durability snapshot encoder. Copying a bucket
// the partition does not own is an error.
func (p *Partition) CopyBucket(bucket int) (*BucketData, error) {
	if !p.owned[bucket] {
		return nil, &ErrNotOwned{Partition: p.id, Bucket: bucket}
	}
	data := &BucketData{Bucket: bucket, Tables: make(map[string][]Row)}
	//pstore:ignore determinism — rows are sorted by key below before encoding
	for name, t := range p.tables {
		rows, ok := t.buckets[bucket]
		if !ok {
			continue
		}
		out := make([]Row, 0, rows.len())
		//pstore:ignore determinism — index iteration lands in out, which is sorted below
		for _, tuple := range rows.index {
			out = append(out, TupleView{b: tuple, schema: t.schema}.Row())
		}
		sortRowsByKey(out)
		data.Tables[name] = out
	}
	return data, nil
}

// ApplyBucket installs the bucket's rows and takes ownership. Applying a
// bucket the partition already owns is an error (it would clobber data).
func (p *Partition) ApplyBucket(data *BucketData) error {
	if p.owned[data.Bucket] {
		return fmt.Errorf("storage: partition %d already owns bucket %d", p.id, data.Bucket)
	}
	//pstore:ignore determinism — interning order affects only in-memory field IDs; tuple bytes never reach a durable encoding unsorted
	for name, rows := range data.Tables {
		p.CreateTable(name)
		t := p.tables[name]
		dst := t.bucketFor(data.Bucket, true)
		for _, r := range rows {
			p.enc = appendTuple(p.enc[:0], t.schema, r.Key, r.Cols)
			dst.putTuple(p.enc)
		}
	}
	p.owned[data.Bucket] = true
	return nil
}

// Tables returns the table names in sorted order.
func (p *Partition) Tables() []string {
	out := make([]string, 0, len(p.tables))
	for name := range p.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
