// Per-bucket slab arenas. Every tuple in a bucket lives inside one of the
// bucket's arena pages — large flat []byte slabs — so a ten-million-row
// table costs the garbage collector a few thousand page objects to trace,
// not tens of millions of boxed map entries. Pages are append-only: a tuple,
// once placed, is never mutated or moved, which is what makes zero-copy
// TupleViews and by-reference bucket handoff safe. Overwrites and deletes
// tombstone the old bytes (dead-byte accounting); when a bucket's dead bytes
// outweigh its live bytes the bucket compacts by rewriting live tuples into
// fresh pages and dropping the old ones — borrowed views keep old pages
// alive (GC-safe) but the table stops retaining them.
package storage

// arenaPageSize is the default slab size. Tuples larger than a quarter page
// get a dedicated exact-size page so one jumbo document cannot strand most
// of a slab.
const arenaPageSize = 64 << 10

// arena is a bump allocator over append-only pages.
type arena struct {
	pages    [][]byte // pages[len-1] is the active page
	retained int      // Σ cap(page): bytes held from the allocator
}

// place copies t into the arena and returns the stable internal alias.
func (a *arena) place(t []byte) []byte {
	if len(t) > arenaPageSize/4 {
		p := append(make([]byte, 0, len(t)), t...)
		a.retained += cap(p)
		// Keep the active page active: insert the jumbo page behind it.
		if n := len(a.pages); n > 0 {
			a.pages = append(a.pages, a.pages[n-1])
			a.pages[n-1] = p
		} else {
			a.pages = append(a.pages, p)
		}
		return p
	}
	n := len(a.pages)
	if n == 0 || cap(a.pages[n-1])-len(a.pages[n-1]) < len(t) {
		a.pages = append(a.pages, make([]byte, 0, arenaPageSize))
		a.retained += arenaPageSize
		n = len(a.pages)
	}
	p := a.pages[n-1]
	off := len(p)
	p = append(p, t...)
	a.pages[n-1] = p
	return p[off : off+len(t) : off+len(t)]
}

// bucketRows is one bucket's rows for one table: an arena holding the
// encoded tuples plus a key index aliasing into it. Keys in the index are
// unsafe strings over the tuple bytes — no separate key allocations.
type bucketRows struct {
	index map[string][]byte
	ar    arena
	live  int // bytes of indexed tuples
	dead  int // bytes of tombstoned (overwritten/deleted) tuples
}

func newBucketRows() *bucketRows {
	return &bucketRows{index: make(map[string][]byte)}
}

func (b *bucketRows) len() int { return len(b.index) }

// get returns the stored tuple for key, or nil.
func (b *bucketRows) get(key string) []byte { return b.index[key] }

// putTuple places an already-encoded tuple (whose head encodes its key) and
// indexes it, tombstoning any previous version.
func (b *bucketRows) putTuple(t []byte) {
	stable := b.ar.place(t)
	key := tupleKey(stable)
	if old, ok := b.index[key]; ok {
		b.dead += len(old)
		b.live -= len(old)
	}
	b.index[key] = stable
	b.live += len(stable)
	b.maybeCompact()
}

// delete removes key, reporting whether it existed.
func (b *bucketRows) delete(key string) bool {
	old, ok := b.index[key]
	if !ok {
		return false
	}
	delete(b.index, key)
	b.dead += len(old)
	b.live -= len(old)
	b.maybeCompact()
	return true
}

// compactMinDead is the dead-byte floor below which compaction never runs —
// churning a page-sized bucket for a few stale rows is not worth the copy.
const compactMinDead = arenaPageSize

// maybeCompact rewrites live tuples into fresh pages when dead bytes
// dominate, bounding retained memory at ~2× live under any delete-heavy
// workload. Old pages are dropped, not recycled: a borrowed view may still
// be reading them, and append-only pages are what makes that safe.
func (b *bucketRows) maybeCompact() {
	if len(b.index) == 0 {
		// Empty bucket: nothing to rewrite, drop the pages outright.
		if b.ar.retained > 0 {
			b.ar = arena{}
			b.live, b.dead = 0, 0
		}
		return
	}
	if b.dead <= b.live || b.dead < compactMinDead {
		return
	}
	next := arena{}
	idx := make(map[string][]byte, len(b.index))
	for _, t := range b.index {
		stable := next.place(t)
		idx[tupleKey(stable)] = stable
	}
	b.ar = next
	b.index = idx
	b.dead = 0
}

// indexEntryOverhead approximates the per-row cost of the key index: a map
// entry (key string header + value slice header + bucket share) — the part
// of a row's footprint that lives outside the arena.
const indexEntryOverhead = 64

// sizeBytes is the bucket's exact retained footprint: arena pages plus
// index overhead.
func (b *bucketRows) sizeBytes() int {
	return b.ar.retained + len(b.index)*indexEntryOverhead
}
