package storage

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// allBuckets returns 0..n-1.
func allBuckets(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func newTestPartition() *Partition {
	p := NewPartition(0, 64, allBuckets(64))
	p.CreateTable("CART")
	return p
}

func TestPartitionCRUD(t *testing.T) {
	p := newTestPartition()
	if err := p.Put("CART", "c1", map[string]string{"total": "10"}); err != nil {
		t.Fatal(err)
	}
	r, ok, err := p.Get("CART", "c1")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if r.Cols["total"] != "10" {
		t.Errorf("cols = %v", r.Cols)
	}
	if _, ok, _ := p.Get("CART", "missing"); ok {
		t.Error("missing key should not be found")
	}
	existed, err := p.Delete("CART", "c1")
	if err != nil || !existed {
		t.Fatalf("Delete: existed=%v err=%v", existed, err)
	}
	if existed, _ := p.Delete("CART", "c1"); existed {
		t.Error("double delete should report not existed")
	}
	if p.RowCount() != 0 {
		t.Errorf("RowCount = %d", p.RowCount())
	}
}

func TestPartitionUnknownTable(t *testing.T) {
	p := newTestPartition()
	if _, _, err := p.Get("NOPE", "k"); err == nil {
		t.Error("unknown table Get should fail")
	}
	if err := p.Put("NOPE", "k", nil); err == nil {
		t.Error("unknown table Put should fail")
	}
	if _, err := p.Delete("NOPE", "k"); err == nil {
		t.Error("unknown table Delete should fail")
	}
}

func TestPartitionOwnership(t *testing.T) {
	// Partition owns only bucket of key "a"; operations on other keys fail
	// with ErrNotOwned.
	b := BucketOf("a", 64)
	p := NewPartition(1, 64, []int{b})
	p.CreateTable("T")
	if err := p.Put("T", "a", map[string]string{"x": "1"}); err != nil {
		t.Fatal(err)
	}
	var other string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key%d", i)
		if BucketOf(k, 64) != b {
			other = k
			break
		}
	}
	err := p.Put("T", other, nil)
	var notOwned *ErrNotOwned
	if !errors.As(err, &notOwned) {
		t.Fatalf("err = %v, want ErrNotOwned", err)
	}
	if notOwned.Partition != 1 {
		t.Errorf("ErrNotOwned partition = %d", notOwned.Partition)
	}
	if p.OwnsKey(other) {
		t.Error("should not own other key")
	}
	if !p.OwnsKey("a") {
		t.Error("should own key a")
	}
}

func TestRowCloneIsolation(t *testing.T) {
	p := newTestPartition()
	cols := map[string]string{"total": "10"}
	if err := p.Put("CART", "c1", cols); err != nil {
		t.Fatal(err)
	}
	cols["total"] = "mutated"
	r, _, _ := p.Get("CART", "c1")
	if r.Cols["total"] != "10" {
		t.Error("Put must deep-copy columns")
	}
	r.Cols["total"] = "mutated-again"
	r2, _, _ := p.Get("CART", "c1")
	if r2.Cols["total"] != "10" {
		t.Error("Get must deep-copy columns")
	}
}

func TestExtractApplyBucketRoundTrip(t *testing.T) {
	src := newTestPartition()
	src.CreateTable("STOCK")
	// Insert keys until some bucket has a few rows.
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("cart-%d", i)
		if err := src.Put("CART", k, map[string]string{"i": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	bucket := BucketOf("cart-0", 64)
	wantRows := src.BucketRowCount(bucket)
	if wantRows == 0 {
		t.Fatal("bucket empty")
	}
	data, err := src.ExtractBucket(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if data.RowCount() != wantRows {
		t.Errorf("extracted %d rows, want %d", data.RowCount(), wantRows)
	}
	if src.Owns(bucket) {
		t.Error("source should lose ownership")
	}
	if _, _, err := src.Get("CART", "cart-0"); err == nil {
		t.Error("source access after extraction should fail")
	}
	// Double extraction fails.
	if _, err := src.ExtractBucket(bucket); err == nil {
		t.Error("double extract should fail")
	}

	dst := NewPartition(2, 64, nil)
	if err := dst.ApplyBucket(data); err != nil {
		t.Fatal(err)
	}
	if !dst.Owns(bucket) {
		t.Error("destination should own bucket")
	}
	r, ok, err := dst.Get("CART", "cart-0")
	if err != nil || !ok {
		t.Fatalf("dest Get: ok=%v err=%v", ok, err)
	}
	if r.Cols["i"] != "0" {
		t.Errorf("cols = %v", r.Cols)
	}
	// Re-applying fails.
	if err := dst.ApplyBucket(data); err == nil {
		t.Error("double apply should fail")
	}
}

func TestExtractEmptyBucket(t *testing.T) {
	p := newTestPartition()
	data, err := p.ExtractBucket(7)
	if err != nil {
		t.Fatal(err)
	}
	if data.RowCount() != 0 {
		t.Errorf("rows = %d", data.RowCount())
	}
	if p.Owns(7) {
		t.Error("ownership should be revoked even for empty buckets")
	}
}

// TestExtractApplyMultiTableRoundTrip moves a bucket whose rows span several
// tables and checks every table's rows arrive intact at the destination.
func TestExtractApplyMultiTableRoundTrip(t *testing.T) {
	src := newTestPartition()
	src.CreateTable("STOCK")
	src.CreateTable("ORDERS")
	tables := []string{"CART", "STOCK", "ORDERS"}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("row-%d", i)
		for _, tab := range tables {
			if err := src.Put(tab, k, map[string]string{"t": tab, "i": fmt.Sprint(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	bucket := BucketOf("row-0", 64)
	wantRows := src.BucketRowCount(bucket)
	if wantRows == 0 {
		t.Fatal("bucket empty")
	}

	data, err := src.ExtractBucket(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Tables) != len(tables) {
		t.Errorf("extracted %d tables, want %d", len(data.Tables), len(tables))
	}
	if data.RowCount() != wantRows {
		t.Errorf("extracted %d rows, want %d", data.RowCount(), wantRows)
	}

	dst := NewPartition(9, 64, nil)
	if err := dst.ApplyBucket(data); err != nil {
		t.Fatal(err)
	}
	if got := dst.BucketRowCount(bucket); got != wantRows {
		t.Errorf("destination holds %d rows, want %d", got, wantRows)
	}
	for _, tab := range tables {
		r, ok, err := dst.Get(tab, "row-0")
		if err != nil || !ok {
			t.Fatalf("dest Get(%s): ok=%v err=%v", tab, ok, err)
		}
		if r.Cols["t"] != tab {
			t.Errorf("%s row cols = %v", tab, r.Cols)
		}
	}
}

// TestEmptyBucketRoundTrip checks that extracting a bucket with no rows
// still transfers ownership: the destination owns it after apply and can
// accept writes the source now rejects.
func TestEmptyBucketRoundTrip(t *testing.T) {
	src := newTestPartition()
	const bucket = 7
	// Find a key that hashes into the bucket so we can write post-move.
	key := ""
	for i := 0; key == ""; i++ {
		if k := fmt.Sprintf("k-%d", i); BucketOf(k, 64) == bucket {
			key = k
		}
	}

	data, err := src.ExtractBucket(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if data.RowCount() != 0 {
		t.Errorf("rows = %d, want 0", data.RowCount())
	}
	if src.Owns(bucket) {
		t.Error("source should lose ownership of the empty bucket")
	}

	dst := NewPartition(3, 64, nil)
	dst.CreateTable("CART")
	if err := dst.ApplyBucket(data); err != nil {
		t.Fatal(err)
	}
	if !dst.Owns(bucket) {
		t.Error("destination should own the empty bucket")
	}
	if err := dst.Put("CART", key, map[string]string{"x": "1"}); err != nil {
		t.Errorf("write to moved empty bucket: %v", err)
	}
	var notOwned *ErrNotOwned
	if err := src.Put("CART", key, map[string]string{"x": "1"}); !errors.As(err, &notOwned) {
		t.Errorf("source write after move: err = %v, want ErrNotOwned", err)
	}
}

// TestCopyBucketNonDestructive checks the snapshot path: CopyBucket leaves
// the partition untouched and returns an isolated deep copy.
func TestCopyBucketNonDestructive(t *testing.T) {
	p := newTestPartition()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("cart-%d", i)
		if err := p.Put("CART", k, map[string]string{"i": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	bucket := BucketOf("cart-0", 64)
	want := p.BucketRowCount(bucket)

	data, err := p.CopyBucket(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if data.RowCount() != want {
		t.Errorf("copied %d rows, want %d", data.RowCount(), want)
	}
	if !p.Owns(bucket) || p.BucketRowCount(bucket) != want {
		t.Error("copy must not disturb the partition")
	}

	// A copy restores cleanly into a fresh partition (snapshot load path).
	dst := NewPartition(2, 64, nil)
	if err := dst.ApplyBucket(data); err != nil {
		t.Fatal(err)
	}
	r, ok, err := dst.Get("CART", "cart-0")
	if err != nil || !ok {
		t.Fatalf("restored Get: ok=%v err=%v", ok, err)
	}
	if r.Cols["i"] != "0" {
		t.Errorf("restored cols = %v", r.Cols)
	}

	// The copy is deep: tampering with it must not reach the partition.
	first := data.Tables["CART"][0]
	first.Cols["i"] = "tampered"
	if r, _, _ := p.Get("CART", first.Key); r.Cols["i"] == "tampered" {
		t.Error("copy shares row storage with the partition")
	}

	// Copying an unowned bucket fails.
	var notOwned *ErrNotOwned
	if _, err := NewPartition(1, 64, nil).CopyBucket(bucket); !errors.As(err, &notOwned) {
		t.Errorf("unowned copy: err = %v, want ErrNotOwned", err)
	}
}

func TestOwnedBucketsSorted(t *testing.T) {
	p := NewPartition(0, 16, []int{9, 3, 12})
	got := p.OwnedBuckets()
	if len(got) != 3 || got[0] != 3 || got[1] != 9 || got[2] != 12 {
		t.Errorf("OwnedBuckets = %v", got)
	}
}

func TestSizeBytes(t *testing.T) {
	p := newTestPartition()
	if p.SizeBytes() != 0 {
		t.Error("empty partition should have size 0")
	}
	if err := p.Put("CART", "k", map[string]string{"a": "xy"}); err != nil {
		t.Fatal(err)
	}
	// Accounting is exact retained memory: the first row opens one arena
	// page and adds one index entry.
	want := arenaPageSize + indexEntryOverhead
	if got := p.SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
	b := BucketOf("k", p.NBuckets())
	if got := p.BucketSizeBytes(b); got != want {
		t.Errorf("BucketSizeBytes(%d) = %d, want %d", b, got, want)
	}
	if got := p.BucketSizeBytes(b + 1); got != 0 {
		t.Errorf("BucketSizeBytes(empty) = %d, want 0", got)
	}
}

func TestRowSizeBytesCountsOverhead(t *testing.T) {
	r := Row{Key: "k", Cols: map[string]string{"a": "xy"}}
	// Payload is 4 bytes; the boxed form must also charge string headers
	// and map machinery, so the estimate is strictly larger.
	if got := r.SizeBytes(); got < 4+mapHeaderBytes+mapEntryOverhead {
		t.Errorf("Row.SizeBytes = %d, want at least %d", got, 4+mapHeaderBytes+mapEntryOverhead)
	}
	// And it must grow with payload.
	big := Row{Key: "k", Cols: map[string]string{"a": "xy", "b": string(make([]byte, 100))}}
	if big.SizeBytes() <= r.SizeBytes()+100 {
		t.Errorf("Row.SizeBytes not payload-sensitive: %d vs %d", big.SizeBytes(), r.SizeBytes())
	}
}

// Property: moving every bucket from one partition to another preserves all
// rows exactly.
func TestFullMigrationPreservesRows(t *testing.T) {
	f := func(keys []string) bool {
		src := NewPartition(0, 8, allBuckets(8))
		src.CreateTable("T")
		want := make(map[string]bool)
		for i, k := range keys {
			key := fmt.Sprintf("%s-%d", k, i)
			if err := src.Put("T", key, map[string]string{"v": key}); err != nil {
				return false
			}
			want[key] = true
		}
		dst := NewPartition(1, 8, nil)
		for b := 0; b < 8; b++ {
			data, err := src.ExtractBucket(b)
			if err != nil {
				return false
			}
			if err := dst.ApplyBucket(data); err != nil {
				return false
			}
		}
		if src.RowCount() != 0 || dst.RowCount() != len(want) {
			return false
		}
		for key := range want {
			r, ok, err := dst.Get("T", key)
			if err != nil || !ok || r.Cols["v"] != key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestScan(t *testing.T) {
	p := newTestPartition()
	for i := 0; i < 25; i++ {
		if err := p.Put("CART", fmt.Sprintf("c%d", i), map[string]string{"i": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[string]bool)
	n, err := p.Scan("CART", func(r Row) bool {
		seen[r.Key] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 || len(seen) != 25 {
		t.Errorf("visited %d rows, distinct %d, want 25", n, len(seen))
	}
	// Early stop.
	count := 0
	n, err = p.Scan("CART", func(r Row) bool {
		count++
		return count < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("early stop visited %d, want 5", n)
	}
	// Unknown table.
	if _, err := p.Scan("NOPE", func(Row) bool { return true }); err == nil {
		t.Error("unknown table should fail")
	}
	// The row handed to fn is a copy.
	p.Scan("CART", func(r Row) bool {
		r.Cols["i"] = "mutated"
		return false
	})
	r, _, _ := p.Get("CART", "c0")
	if r.Cols["i"] == "mutated" {
		t.Error("Scan must hand out copies")
	}
}
