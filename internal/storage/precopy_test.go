package storage

import (
	"errors"
	"fmt"
	"testing"
)

// fillBucket inserts keys until the chosen bucket holds n rows in the given
// table, returning the keys that landed there.
func fillBucket(t *testing.T, p *Partition, table string, bucket, n int) []string {
	t.Helper()
	var keys []string
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("%s-row-%d", table, i)
		if BucketOf(k, p.NBuckets()) != bucket {
			continue
		}
		if err := p.Put(table, k, map[string]string{"v": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	return keys
}

// TestPreCopyLifecycle walks the whole protocol at the storage layer: begin
// capture, copy slices while writes keep landing, drain the delta, detach,
// stage the final delta and commit — then checks the destination equals the
// source's final state exactly.
func TestPreCopyLifecycle(t *testing.T) {
	src := newTestPartition()
	const bucket = 5
	keys := fillBucket(t, src, "CART", bucket, 40)

	slices, err := src.BeginCapture(bucket, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !src.Capturing(bucket) {
		t.Fatal("capture should be active")
	}
	// Manifest must cover every key in bounded slices.
	manifest := 0
	for _, s := range slices {
		if len(s.Keys) > 16 {
			t.Errorf("slice holds %d keys, budget 16", len(s.Keys))
		}
		manifest += len(s.Keys)
	}
	if manifest != len(keys) {
		t.Fatalf("manifest covers %d keys, want %d", manifest, len(keys))
	}

	// Writes during the copy: update one copied row, delete another, insert
	// a brand-new one. All must be captured.
	updated, deleted := keys[0], keys[1]
	if err := src.Put("CART", updated, map[string]string{"v": "updated"}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Delete("CART", deleted); err != nil {
		t.Fatal(err)
	}
	fresh := ""
	for i := 0; fresh == ""; i++ {
		if k := fmt.Sprintf("fresh-%d", i); BucketOf(k, src.NBuckets()) == bucket {
			fresh = k
		}
	}
	if err := src.Put("CART", fresh, map[string]string{"v": "fresh"}); err != nil {
		t.Fatal(err)
	}
	if src.DeltaLen(bucket) != 3 {
		t.Fatalf("DeltaLen = %d, want 3", src.DeltaLen(bucket))
	}

	// Stream the snapshot. The deleted key is skipped (its delete is in the
	// delta); the updated key may carry either value — the delta rewrites it.
	dst := NewPartition(2, 64, nil)
	for _, s := range slices {
		batch, err := src.CopyRows(bucket, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < batch.Len(); i++ {
			if batch.View(i).Key() == deleted {
				t.Error("deleted key should be skipped by CopyRows")
			}
		}
		if err := dst.StageRows(bucket, batch); err != nil {
			t.Fatal(err)
		}
	}
	if dst.Owns(bucket) || dst.RowCount() != 0 {
		t.Error("staged rows must be invisible until commit")
	}

	// Drain round.
	ops, remaining, err := src.DrainDelta(bucket, 0)
	if err != nil || remaining != 0 {
		t.Fatalf("DrainDelta: %d remaining, err=%v", remaining, err)
	}
	if len(ops) != 3 {
		t.Fatalf("drained %d ops, want 3", len(ops))
	}
	if err := dst.StageDelta(bucket, ops); err != nil {
		t.Fatal(err)
	}

	// One more write before the flip — it becomes the final residual delta.
	if err := src.Put("CART", updated, map[string]string{"v": "final"}); err != nil {
		t.Fatal(err)
	}

	detached, final, err := src.DetachBucket(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 1 {
		t.Fatalf("final delta has %d ops, want 1", len(final))
	}
	if src.Owns(bucket) || src.Capturing(bucket) {
		t.Error("detach must revoke ownership and end the capture")
	}
	wantRows := len(keys) - 1 + 1 // minus deleted, plus fresh
	if detached.RowCount() != wantRows {
		t.Errorf("detached holds %d rows, want %d", detached.RowCount(), wantRows)
	}

	if err := dst.StageDelta(bucket, final); err != nil {
		t.Fatal(err)
	}
	// StagedData sorts deterministically and must equal the final contents.
	data := dst.StagedData(bucket)
	if data.RowCount() != wantRows {
		t.Errorf("staged data has %d rows, want %d", data.RowCount(), wantRows)
	}
	for i := 1; i < len(data.Tables["CART"]); i++ {
		if data.Tables["CART"][i-1].Key >= data.Tables["CART"][i].Key {
			t.Fatal("StagedData rows not sorted by key")
		}
	}

	n, err := dst.CommitStaged(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if n != wantRows {
		t.Errorf("committed %d rows, want %d", n, wantRows)
	}
	if !dst.Owns(bucket) {
		t.Error("destination should own the bucket after commit")
	}
	if r, ok, _ := dst.Get("CART", updated); !ok || r.Cols["v"] != "final" {
		t.Errorf("updated row = %v, want v=final", r.Cols)
	}
	if _, ok, _ := dst.Get("CART", deleted); ok {
		t.Error("deleted key must not survive the move")
	}
	if r, ok, _ := dst.Get("CART", fresh); !ok || r.Cols["v"] != "fresh" {
		t.Errorf("fresh row = %v", r.Cols)
	}
}

func TestBeginCaptureErrors(t *testing.T) {
	p := newTestPartition()
	if _, err := p.BeginCapture(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.BeginCapture(3, 0); err == nil {
		t.Error("double BeginCapture should fail")
	}
	var notOwned *ErrNotOwned
	stranger := NewPartition(1, 64, nil)
	if _, err := stranger.BeginCapture(3, 0); !errors.As(err, &notOwned) {
		t.Errorf("unowned BeginCapture: err = %v, want ErrNotOwned", err)
	}
}

func TestDrainDeltaBounded(t *testing.T) {
	p := newTestPartition()
	const bucket = 9
	if _, err := p.BeginCapture(bucket, 0); err != nil {
		t.Fatal(err)
	}
	keys := fillBucket(t, p, "CART", bucket, 5)
	ops, remaining, err := p.DrainDelta(bucket, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || remaining != 3 {
		t.Fatalf("drained %d remaining %d, want 2/3", len(ops), remaining)
	}
	if ops[0].Key != keys[0] || ops[1].Key != keys[1] {
		t.Error("drain must preserve capture order")
	}
	ops, remaining, err = p.DrainDelta(bucket, 0)
	if err != nil || len(ops) != 3 || remaining != 0 {
		t.Fatalf("second drain: %d ops %d remaining err=%v", len(ops), remaining, err)
	}
	// Draining a non-capturing bucket is a protocol error.
	if _, _, err := p.DrainDelta(60, 0); err == nil {
		t.Error("draining a non-capturing bucket should fail")
	}
}

func TestAbortCaptureLeavesBucketLive(t *testing.T) {
	p := newTestPartition()
	const bucket = 11
	keys := fillBucket(t, p, "CART", bucket, 3)
	if _, err := p.BeginCapture(bucket, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Put("CART", keys[0], map[string]string{"v": "x"}); err != nil {
		t.Fatal(err)
	}
	p.AbortCapture(bucket)
	if p.Capturing(bucket) || p.DeltaLen(bucket) != 0 {
		t.Error("abort must clear capture state")
	}
	if !p.Owns(bucket) {
		t.Error("abort must leave the bucket owned")
	}
	if r, ok, _ := p.Get("CART", keys[0]); !ok || r.Cols["v"] != "x" {
		t.Errorf("bucket content after abort = %v", r.Cols)
	}
	// A fresh capture can start after an abort.
	if _, err := p.BeginCapture(bucket, 0); err != nil {
		t.Errorf("recapture after abort: %v", err)
	}
}

func TestDetachReattachRoundTrip(t *testing.T) {
	p := newTestPartition()
	const bucket = 21
	keys := fillBucket(t, p, "CART", bucket, 10)
	if _, err := p.BeginCapture(bucket, 0); err != nil {
		t.Fatal(err)
	}
	detached, _, err := p.DetachBucket(bucket)
	if err != nil {
		t.Fatal(err)
	}
	if p.Owns(bucket) {
		t.Fatal("detach must revoke ownership")
	}
	// Reattach restores the exact contents and ownership.
	if err := p.ReattachBucket(detached); err != nil {
		t.Fatal(err)
	}
	if !p.Owns(bucket) {
		t.Error("reattach must restore ownership")
	}
	for _, k := range keys {
		if _, ok, err := p.Get("CART", k); err != nil || !ok {
			t.Fatalf("row %s lost across detach/reattach: ok=%v err=%v", k, ok, err)
		}
	}
	// Reattaching while owned, or onto another partition, is an error.
	if err := p.ReattachBucket(detached); err == nil {
		t.Error("reattach of an owned bucket should fail")
	}
	other := NewPartition(5, 64, nil)
	if err := other.ReattachBucket(detached); err == nil {
		t.Error("reattach onto a different partition should fail")
	}
	// Detach requires an active capture.
	if _, _, err := p.DetachBucket(bucket); err == nil {
		t.Error("detach without capture should fail")
	}
}

func TestStagingInvisibleUntilCommit(t *testing.T) {
	p := NewPartition(4, 64, nil)
	const bucket = 2
	rows := []Row{{Key: "a", Cols: map[string]string{"v": "1"}}}
	if err := p.StageRows(bucket, NewTupleBatch("T", rows)); err != nil {
		t.Fatal(err)
	}
	if p.StagedRowCount(bucket) != 1 {
		t.Errorf("StagedRowCount = %d", p.StagedRowCount(bucket))
	}
	if p.RowCount() != 0 || p.Owns(bucket) {
		t.Error("staging must not touch live state")
	}
	p.DiscardStaged(bucket)
	if p.StagedRowCount(bucket) != 0 {
		t.Error("discard must drop staged rows")
	}
	// Committing with nothing staged still takes ownership (empty bucket).
	if n, err := p.CommitStaged(bucket); err != nil || n != 0 {
		t.Fatalf("empty commit: n=%d err=%v", n, err)
	}
	if !p.Owns(bucket) {
		t.Error("empty commit must still claim the bucket")
	}
	// Staging or committing a bucket the partition owns is an error.
	if err := p.StageRows(bucket, NewTupleBatch("T", rows)); err == nil {
		t.Error("staging an owned bucket should fail")
	}
	if _, err := p.CommitStaged(bucket); err == nil {
		t.Error("committing an owned bucket should fail")
	}
}

// TestExtractBucketClearsCapture pins the interaction between the legacy
// stop-and-copy path and an abandoned capture: extraction ends it.
func TestExtractBucketClearsCapture(t *testing.T) {
	p := newTestPartition()
	const bucket = 30
	if _, err := p.BeginCapture(bucket, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExtractBucket(bucket); err != nil {
		t.Fatal(err)
	}
	if p.Capturing(bucket) {
		t.Error("ExtractBucket must clear capture state")
	}
}
