// Pre-copy live-migration primitives. A bucket relocation used to be
// stop-and-copy: one ExtractBucket held the source executor for O(bucket)
// and one ApplyBucket held the destination for the same, so the foreground
// stall of every move scaled with bucket size. The primitives here let the
// migrator run a copy-then-delta protocol instead:
//
//  1. BeginCapture marks the bucket migrating and starts recording every
//     subsequent Put/Delete against it into an ordered per-bucket delta
//     log, returning a manifest of bounded CopySlices.
//  2. CopyRows streams each slice (≤ sliceRows rows per executor visit)
//     to the destination as a TupleBatch — encoded tuples aliased straight
//     out of the bucket arena, no per-row cloning — which the destination
//     accumulates with StageRows, outside its live tables, invisible to
//     transactions.
//  3. DrainDelta pops the captured writes in rounds; StageDelta overlays
//     them on the staged tuples in capture order, so the staging area
//     converges on the live bucket while the bucket keeps serving.
//  4. DetachBucket is the only stop-the-world moment: it unhooks the
//     bucket's arenas (O(tables) pointer moves, no row copying), revokes
//     ownership and returns the final residual delta — O(delta), not
//     O(bucket). CommitStaged then installs the staged arenas at the
//     destination by reference. ReattachBucket undoes a detach exactly,
//     for the rollback path.
//
// Replaying a delta is idempotent (puts are last-writer-wins, deletes are
// absence), so a row copied after a captured write converges to the same
// state once the delta lands.
package storage

import (
	"fmt"
	"sort"
)

// DeltaOp is one captured write against a migrating bucket, in capture
// order. Tuple is valid when Delete is false: an alias of the bucket's
// append-only arena bytes (stable for the op's lifetime), decoded against
// Schema — safe to hand to another partition, which re-encodes it against
// its own schema as it stages.
type DeltaOp struct {
	Table  string
	Key    string
	Tuple  []byte
	Schema *Schema
	Delete bool
}

// CopySlice identifies a bounded chunk of a migrating bucket's rows: one
// table and at most the slice budget of keys, as of capture time. Keys that
// vanish before their slice is copied are simply skipped — their deletion
// is in the delta.
type CopySlice struct {
	Table string
	Keys  []string
}

// TupleBatch is one copied slice in flight: encoded tuples aliasing the
// source bucket's arena pages, plus the schema that decodes them. The
// aliases are stable (pages are append-only), so the batch crosses to the
// destination executor without copying a byte.
type TupleBatch struct {
	Table  string
	Schema *Schema
	Tuples [][]byte
}

// Len returns the number of tuples in the batch.
func (tb *TupleBatch) Len() int { return len(tb.Tuples) }

// View returns a zero-copy view of the i'th tuple.
func (tb *TupleBatch) View(i int) TupleView {
	return TupleView{b: tb.Tuples[i], schema: tb.Schema}
}

// NewTupleBatch encodes materialized rows into a self-contained batch with
// its own schema — the bridge for callers that hold Rows rather than a
// bucket (tests, bulk loads).
func NewTupleBatch(tableName string, rows []Row) *TupleBatch {
	s := newSchema()
	batch := &TupleBatch{Table: tableName, Schema: s, Tuples: make([][]byte, 0, len(rows))}
	for _, r := range rows {
		batch.Tuples = append(batch.Tuples, appendTuple(nil, s, r.Key, r.Cols))
	}
	return batch
}

// bucketCapture is one migrating bucket's write-capture state.
type bucketCapture struct {
	delta []DeltaOp
}

// DefaultCopySliceRows bounds how many rows one CopySlice may hold when the
// caller does not choose: small enough that copying a slice never occupies
// an executor for long, large enough to amortize the per-visit overhead.
const DefaultCopySliceRows = 256

// BeginCapture marks the bucket as migrating and starts capturing writes to
// it. It returns the copy manifest: every (table, key) present right now,
// pre-chunked into slices of at most sliceRows keys (DefaultCopySliceRows
// if sliceRows ≤ 0). The manifest plus the delta captured from this moment
// on is exactly the bucket's final contents.
func (p *Partition) BeginCapture(bucket, sliceRows int) ([]CopySlice, error) {
	if !p.owned[bucket] {
		return nil, &ErrNotOwned{Partition: p.id, Bucket: bucket}
	}
	if p.capture[bucket] != nil {
		return nil, fmt.Errorf("storage: partition %d already capturing bucket %d", p.id, bucket)
	}
	if sliceRows <= 0 {
		sliceRows = DefaultCopySliceRows
	}
	if p.capture == nil {
		p.capture = make(map[int]*bucketCapture)
	}
	p.capture[bucket] = &bucketCapture{}
	var slices []CopySlice
	//pstore:ignore determinism — manifest order only shapes in-flight slice boundaries; staging is key-addressed, so the landed content is order-independent
	for name, t := range p.tables {
		rows := t.buckets[bucket]
		if rows == nil || rows.len() == 0 {
			continue
		}
		keys := make([]string, 0, rows.len())
		//pstore:ignore determinism — same: keys feed the copy manifest, not a durable encoding
		for k := range rows.index {
			// Index keys alias arena bytes; manifest keys must outlive any
			// overwrite of those rows, so copy them out.
			keys = append(keys, string(append([]byte(nil), k...)))
		}
		for i := 0; i < len(keys); i += sliceRows {
			end := i + sliceRows
			if end > len(keys) {
				end = len(keys)
			}
			slices = append(slices, CopySlice{Table: name, Keys: keys[i:end]})
		}
	}
	return slices, nil
}

// Capturing reports whether the bucket has an active write capture.
func (p *Partition) Capturing(bucket int) bool { return p.capture[bucket] != nil }

// captureWrite records a write against a migrating bucket. Called from
// Put/Delete after the write succeeded; a no-op for buckets not capturing.
func (p *Partition) captureWrite(bucket int, op DeltaOp) {
	c := p.capture[bucket]
	if c == nil {
		return
	}
	c.delta = append(c.delta, op)
}

// CopyRows gathers the slice's still-present rows as a zero-copy
// TupleBatch. Keys deleted since the manifest was built are skipped (their
// delete is in the delta); rows overwritten since carry the newer value,
// which a later delta replay rewrites idempotently.
func (p *Partition) CopyRows(bucket int, s CopySlice) (*TupleBatch, error) {
	if !p.owned[bucket] {
		return nil, &ErrNotOwned{Partition: p.id, Bucket: bucket}
	}
	t, ok := p.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", s.Table)
	}
	batch := &TupleBatch{Table: s.Table, Schema: t.schema, Tuples: make([][]byte, 0, len(s.Keys))}
	rows := t.buckets[bucket]
	if rows == nil {
		return batch, nil
	}
	for _, k := range s.Keys {
		if tuple := rows.get(k); tuple != nil {
			batch.Tuples = append(batch.Tuples, tuple)
		}
	}
	return batch, nil
}

// DeltaLen returns the number of captured-but-undrained writes for the
// bucket (zero when not capturing).
func (p *Partition) DeltaLen(bucket int) int {
	if c := p.capture[bucket]; c != nil {
		return len(c.delta)
	}
	return 0
}

// DrainDelta pops up to max captured writes (all of them when max ≤ 0) in
// capture order and reports how many remain. Draining a bucket that is not
// capturing is an error — it means the protocol lost track of the bucket.
func (p *Partition) DrainDelta(bucket, max int) ([]DeltaOp, int, error) {
	c := p.capture[bucket]
	if c == nil {
		return nil, 0, fmt.Errorf("storage: partition %d not capturing bucket %d", p.id, bucket)
	}
	if max <= 0 || max >= len(c.delta) {
		ops := c.delta
		c.delta = nil
		return ops, 0, nil
	}
	ops := c.delta[:max:max]
	c.delta = append([]DeltaOp(nil), c.delta[max:]...)
	return ops, len(c.delta), nil
}

// AbortCapture discards the bucket's capture state and delta. The bucket
// stays owned and fully live — aborting a pre-copy costs nothing.
func (p *Partition) AbortCapture(bucket int) { delete(p.capture, bucket) }

// DetachedBucket holds a bucket's arenas unhooked from their partition —
// the in-flight state between DetachBucket at the source and the durable
// commit at the destination. Dropping it frees the source copy; handing it
// back to ReattachBucket restores the source exactly.
type DetachedBucket struct {
	Bucket int
	part   int
	tables map[string]*bucketRows
}

// RowCount returns the number of rows in the detached bucket.
func (d *DetachedBucket) RowCount() int {
	n := 0
	for _, rows := range d.tables {
		n += rows.len()
	}
	return n
}

// DetachBucket ends the bucket's capture with the stop-the-world step of a
// pre-copy move: it unhooks the bucket's arenas from the live tables
// (pointer moves, no row copying), revokes ownership and returns the final
// residual delta. Cost is O(tables + residual delta) — the per-move stall
// no longer scales with bucket size.
func (p *Partition) DetachBucket(bucket int) (*DetachedBucket, []DeltaOp, error) {
	c := p.capture[bucket]
	if c == nil {
		return nil, nil, fmt.Errorf("storage: partition %d not capturing bucket %d", p.id, bucket)
	}
	if !p.owned[bucket] {
		return nil, nil, &ErrNotOwned{Partition: p.id, Bucket: bucket}
	}
	d := &DetachedBucket{Bucket: bucket, part: p.id, tables: make(map[string]*bucketRows)}
	for name, t := range p.tables {
		if rows, ok := t.buckets[bucket]; ok {
			d.tables[name] = rows
			delete(t.buckets, bucket)
		}
	}
	delete(p.owned, bucket)
	final := c.delta
	delete(p.capture, bucket)
	return d, final, nil
}

// ReattachBucket undoes a DetachBucket on the same partition: the arenas
// are hooked back in and ownership restored. The detached rows already
// include every captured write, so reattaching alone makes the bucket
// exactly current. Used by the migration rollback path.
func (p *Partition) ReattachBucket(d *DetachedBucket) error {
	if d == nil {
		return fmt.Errorf("storage: reattach of nil bucket")
	}
	if d.part != p.id {
		return fmt.Errorf("storage: partition %d cannot reattach bucket %d detached from partition %d",
			p.id, d.Bucket, d.part)
	}
	if p.owned[d.Bucket] {
		return fmt.Errorf("storage: partition %d already owns bucket %d", p.id, d.Bucket)
	}
	for name, rows := range d.tables {
		p.CreateTable(name)
		p.tables[name].buckets[d.Bucket] = rows
	}
	p.owned[d.Bucket] = true
	return nil
}

// stagePut re-encodes one source-schema tuple against the staging table's
// schema (a verbatim arena copy when the schemas already agree) and indexes
// it in the staged bucket.
func (p *Partition) stagePut(st *bucketRows, src, dst *Schema, tuple []byte) {
	if sameFields(src, dst) {
		st.putTuple(tuple)
		return
	}
	p.enc = remapTuple(p.enc[:0], src, dst, tuple)
	st.putTuple(p.enc)
}

// stageSchemaFor returns the schema staged tuples for tableName are encoded
// against: the live table's own schema, creating the table if needed, so
// CommitStaged installs arenas without any re-encoding. Seeding an empty
// schema from the source's field order keeps the verbatim fast path hot.
func (p *Partition) stageSchemaFor(tableName string, src *Schema) *Schema {
	p.CreateTable(tableName)
	dst := p.tables[tableName].schema
	if dst.NumFields() == 0 {
		for _, name := range src.fieldNames() {
			dst.intern(name)
		}
	}
	return dst
}

// StageRows accumulates a copied batch for a bucket the partition does not
// own yet. Staged tuples live outside the live tables: invisible to
// transactions, scans, counts and checksums until CommitStaged. Tuples are
// re-encoded against the destination table's schema on arrival (verbatim
// when field tables agree), so the final commit stays O(tables).
func (p *Partition) StageRows(bucket int, batch *TupleBatch) error {
	stb, err := p.stagingFor(bucket)
	if err != nil {
		return err
	}
	dst := p.stageSchemaFor(batch.Table, batch.Schema)
	st := stb[batch.Table]
	if st == nil {
		st = newBucketRows()
		stb[batch.Table] = st
	}
	for _, tuple := range batch.Tuples {
		p.stagePut(st, batch.Schema, dst, tuple)
	}
	return nil
}

// StageDelta overlays captured writes, in capture order, on the staged
// tuples. After the final delta is staged the staging area equals the
// bucket's live contents at detach time.
func (p *Partition) StageDelta(bucket int, ops []DeltaOp) error {
	stb, err := p.stagingFor(bucket)
	if err != nil {
		return err
	}
	for _, op := range ops {
		st := stb[op.Table]
		if st == nil {
			if op.Delete {
				continue
			}
			st = newBucketRows()
			stb[op.Table] = st
		}
		if op.Delete {
			st.delete(op.Key)
			continue
		}
		dst := p.stageSchemaFor(op.Table, op.Schema)
		p.stagePut(st, op.Schema, dst, op.Tuple)
	}
	return nil
}

func (p *Partition) stagingFor(bucket int) (map[string]*bucketRows, error) {
	if p.owned[bucket] {
		return nil, fmt.Errorf("storage: partition %d already owns bucket %d", p.id, bucket)
	}
	if p.staged == nil {
		p.staged = make(map[int]map[string]*bucketRows)
	}
	st := p.staged[bucket]
	if st == nil {
		st = make(map[string]*bucketRows)
		p.staged[bucket] = st
	}
	return st, nil
}

// StagedRowCount returns the number of rows currently staged for the bucket.
func (p *Partition) StagedRowCount(bucket int) int {
	n := 0
	for _, rows := range p.staged[bucket] {
		n += rows.len()
	}
	return n
}

// StagedData materializes the staged bucket as BucketData with rows in
// sorted key order — the deterministic encoding the durability handoff
// record wants. Staged tuples are encoded against the live tables' schemas
// (stageSchemaFor guarantees the table exists), which CommitStaged then
// installs by reference.
func (p *Partition) StagedData(bucket int) *BucketData {
	data := &BucketData{Bucket: bucket, Tables: make(map[string][]Row)}
	//pstore:ignore determinism — rows are sorted by key below before encoding
	for name, rows := range p.staged[bucket] {
		schema := p.tables[name].schema
		out := make([]Row, 0, rows.len())
		//pstore:ignore determinism — index iteration lands in out, which is sorted below
		for _, tuple := range rows.index {
			out = append(out, TupleView{b: tuple, schema: schema}.Row())
		}
		sortRowsByKey(out)
		data.Tables[name] = out
	}
	return data
}

// CommitStaged installs the staged arenas as the bucket's live contents (by
// reference — O(tables)) and takes ownership, reporting the number of rows
// that landed. Committing a bucket the partition already owns is an error.
// A bucket with nothing staged commits empty, matching ApplyBucket of an
// empty BucketData.
func (p *Partition) CommitStaged(bucket int) (int, error) {
	if p.owned[bucket] {
		return 0, fmt.Errorf("storage: partition %d already owns bucket %d", p.id, bucket)
	}
	n := 0
	for name, rows := range p.staged[bucket] {
		if rows.len() == 0 {
			continue
		}
		p.CreateTable(name)
		p.tables[name].buckets[bucket] = rows
		n += rows.len()
	}
	delete(p.staged, bucket)
	p.owned[bucket] = true
	return n, nil
}

// DiscardStaged drops everything staged for the bucket — the destination
// half of aborting a pre-copy move.
func (p *Partition) DiscardStaged(bucket int) { delete(p.staged, bucket) }

// sortRowsByKey orders rows deterministically for snapshot and handoff
// encoding. Live-path extraction does not sort (see ExtractBucket); only
// the durable encoders pay for determinism.
func sortRowsByKey(rows []Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
}
