// Pre-copy live-migration primitives. A bucket relocation used to be
// stop-and-copy: one ExtractBucket held the source executor for O(bucket)
// and one ApplyBucket held the destination for the same, so the foreground
// stall of every move scaled with bucket size. The primitives here let the
// migrator run a copy-then-delta protocol instead:
//
//  1. BeginCapture marks the bucket migrating and starts recording every
//     subsequent Put/Delete against it into an ordered per-bucket delta
//     log, returning a manifest of bounded CopySlices.
//  2. CopyRows streams each slice (≤ sliceRows rows per executor visit)
//     to the destination, which accumulates them with StageRows — outside
//     its live tables, invisible to transactions.
//  3. DrainDelta pops the captured writes in rounds; StageDelta overlays
//     them on the staged rows in capture order, so the staging area
//     converges on the live bucket while the bucket keeps serving.
//  4. DetachBucket is the only stop-the-world moment: it unhooks the
//     bucket's row maps (O(tables) pointer moves, no row copying), revokes
//     ownership and returns the final residual delta — O(delta), not
//     O(bucket). CommitStaged then installs the staged maps at the
//     destination by reference. ReattachBucket undoes a detach exactly,
//     for the rollback path.
//
// Replaying a delta is idempotent (puts are last-writer-wins, deletes are
// absence), so a row copied after a captured write converges to the same
// state once the delta lands.
package storage

import (
	"fmt"
	"sort"
)

// DeltaOp is one captured write against a migrating bucket, in capture
// order. Row is valid when Delete is false and is a private clone — safe to
// hand to another partition.
type DeltaOp struct {
	Table  string
	Key    string
	Row    Row
	Delete bool
}

// CopySlice identifies a bounded chunk of a migrating bucket's rows: one
// table and at most the slice budget of keys, as of capture time. Keys that
// vanish before their slice is copied are simply skipped — their deletion
// is in the delta.
type CopySlice struct {
	Table string
	Keys  []string
}

// bucketCapture is one migrating bucket's write-capture state.
type bucketCapture struct {
	delta []DeltaOp
}

// DefaultCopySliceRows bounds how many rows one CopySlice may hold when the
// caller does not choose: small enough that copying a slice never occupies
// an executor for long, large enough to amortize the per-visit overhead.
const DefaultCopySliceRows = 256

// BeginCapture marks the bucket as migrating and starts capturing writes to
// it. It returns the copy manifest: every (table, key) present right now,
// pre-chunked into slices of at most sliceRows keys (DefaultCopySliceRows
// if sliceRows ≤ 0). The manifest plus the delta captured from this moment
// on is exactly the bucket's final contents.
func (p *Partition) BeginCapture(bucket, sliceRows int) ([]CopySlice, error) {
	if !p.owned[bucket] {
		return nil, &ErrNotOwned{Partition: p.id, Bucket: bucket}
	}
	if p.capture[bucket] != nil {
		return nil, fmt.Errorf("storage: partition %d already capturing bucket %d", p.id, bucket)
	}
	if sliceRows <= 0 {
		sliceRows = DefaultCopySliceRows
	}
	if p.capture == nil {
		p.capture = make(map[int]*bucketCapture)
	}
	p.capture[bucket] = &bucketCapture{}
	var slices []CopySlice
	for name, t := range p.tables {
		rows := t.buckets[bucket]
		if len(rows) == 0 {
			continue
		}
		keys := make([]string, 0, len(rows))
		for k := range rows {
			keys = append(keys, k)
		}
		for i := 0; i < len(keys); i += sliceRows {
			end := i + sliceRows
			if end > len(keys) {
				end = len(keys)
			}
			slices = append(slices, CopySlice{Table: name, Keys: keys[i:end]})
		}
	}
	return slices, nil
}

// Capturing reports whether the bucket has an active write capture.
func (p *Partition) Capturing(bucket int) bool { return p.capture[bucket] != nil }

// captureWrite records a write against a migrating bucket. Called from
// Put/Delete after the write succeeded; a no-op for buckets not capturing.
func (p *Partition) captureWrite(bucket int, op DeltaOp) {
	c := p.capture[bucket]
	if c == nil {
		return
	}
	c.delta = append(c.delta, op)
}

// CopyRows clones the slice's still-present rows. Keys deleted since the
// manifest was built are skipped (their delete is in the delta); rows
// overwritten since carry the newer value, which a later delta replay
// rewrites idempotently.
func (p *Partition) CopyRows(bucket int, s CopySlice) ([]Row, error) {
	if !p.owned[bucket] {
		return nil, &ErrNotOwned{Partition: p.id, Bucket: bucket}
	}
	t, ok := p.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", s.Table)
	}
	rows := t.buckets[bucket]
	out := make([]Row, 0, len(s.Keys))
	for _, k := range s.Keys {
		if r, ok := rows[k]; ok {
			out = append(out, r.Clone())
		}
	}
	return out, nil
}

// DeltaLen returns the number of captured-but-undrained writes for the
// bucket (zero when not capturing).
func (p *Partition) DeltaLen(bucket int) int {
	if c := p.capture[bucket]; c != nil {
		return len(c.delta)
	}
	return 0
}

// DrainDelta pops up to max captured writes (all of them when max ≤ 0) in
// capture order and reports how many remain. Draining a bucket that is not
// capturing is an error — it means the protocol lost track of the bucket.
func (p *Partition) DrainDelta(bucket, max int) ([]DeltaOp, int, error) {
	c := p.capture[bucket]
	if c == nil {
		return nil, 0, fmt.Errorf("storage: partition %d not capturing bucket %d", p.id, bucket)
	}
	if max <= 0 || max >= len(c.delta) {
		ops := c.delta
		c.delta = nil
		return ops, 0, nil
	}
	ops := c.delta[:max:max]
	c.delta = append([]DeltaOp(nil), c.delta[max:]...)
	return ops, len(c.delta), nil
}

// AbortCapture discards the bucket's capture state and delta. The bucket
// stays owned and fully live — aborting a pre-copy costs nothing.
func (p *Partition) AbortCapture(bucket int) { delete(p.capture, bucket) }

// DetachedBucket holds a bucket's row maps unhooked from their partition —
// the in-flight state between DetachBucket at the source and the durable
// commit at the destination. Dropping it frees the source copy; handing it
// back to ReattachBucket restores the source exactly.
type DetachedBucket struct {
	Bucket int
	part   int
	tables map[string]map[string]Row
}

// RowCount returns the number of rows in the detached bucket.
func (d *DetachedBucket) RowCount() int {
	n := 0
	for _, rows := range d.tables {
		n += len(rows)
	}
	return n
}

// DetachBucket ends the bucket's capture with the stop-the-world step of a
// pre-copy move: it unhooks the bucket's row maps from the live tables
// (pointer moves, no row copying), revokes ownership and returns the final
// residual delta. Cost is O(tables + residual delta) — the per-move stall
// no longer scales with bucket size.
func (p *Partition) DetachBucket(bucket int) (*DetachedBucket, []DeltaOp, error) {
	c := p.capture[bucket]
	if c == nil {
		return nil, nil, fmt.Errorf("storage: partition %d not capturing bucket %d", p.id, bucket)
	}
	if !p.owned[bucket] {
		return nil, nil, &ErrNotOwned{Partition: p.id, Bucket: bucket}
	}
	d := &DetachedBucket{Bucket: bucket, part: p.id, tables: make(map[string]map[string]Row)}
	for name, t := range p.tables {
		if rows, ok := t.buckets[bucket]; ok {
			d.tables[name] = rows
			delete(t.buckets, bucket)
		}
	}
	delete(p.owned, bucket)
	final := c.delta
	delete(p.capture, bucket)
	return d, final, nil
}

// ReattachBucket undoes a DetachBucket on the same partition: the row maps
// are hooked back in and ownership restored. The detached rows already
// include every captured write, so reattaching alone makes the bucket
// exactly current. Used by the migration rollback path.
func (p *Partition) ReattachBucket(d *DetachedBucket) error {
	if d == nil {
		return fmt.Errorf("storage: reattach of nil bucket")
	}
	if d.part != p.id {
		return fmt.Errorf("storage: partition %d cannot reattach bucket %d detached from partition %d",
			p.id, d.Bucket, d.part)
	}
	if p.owned[d.Bucket] {
		return fmt.Errorf("storage: partition %d already owns bucket %d", p.id, d.Bucket)
	}
	for name, rows := range d.tables {
		p.CreateTable(name)
		p.tables[name].buckets[d.Bucket] = rows
	}
	p.owned[d.Bucket] = true
	return nil
}

// StageRows accumulates copied rows for a bucket the partition does not own
// yet. Staged data lives outside the live tables: invisible to
// transactions, scans, counts and checksums until CommitStaged.
func (p *Partition) StageRows(bucket int, tableName string, rows []Row) error {
	st, err := p.stagingFor(bucket)
	if err != nil {
		return err
	}
	m := st[tableName]
	if m == nil {
		m = make(map[string]Row, len(rows))
		st[tableName] = m
	}
	for _, r := range rows {
		m[r.Key] = r
	}
	return nil
}

// StageDelta overlays captured writes, in capture order, on the staged
// rows. After the final delta is staged the staging area equals the
// bucket's live contents at detach time.
func (p *Partition) StageDelta(bucket int, ops []DeltaOp) error {
	st, err := p.stagingFor(bucket)
	if err != nil {
		return err
	}
	for _, op := range ops {
		m := st[op.Table]
		if m == nil {
			if op.Delete {
				continue
			}
			m = make(map[string]Row)
			st[op.Table] = m
		}
		if op.Delete {
			delete(m, op.Key)
		} else {
			m[op.Key] = op.Row
		}
	}
	return nil
}

func (p *Partition) stagingFor(bucket int) (map[string]map[string]Row, error) {
	if p.owned[bucket] {
		return nil, fmt.Errorf("storage: partition %d already owns bucket %d", p.id, bucket)
	}
	if p.staged == nil {
		p.staged = make(map[int]map[string]map[string]Row)
	}
	st := p.staged[bucket]
	if st == nil {
		st = make(map[string]map[string]Row)
		p.staged[bucket] = st
	}
	return st, nil
}

// StagedRowCount returns the number of rows currently staged for the bucket.
func (p *Partition) StagedRowCount(bucket int) int {
	n := 0
	for _, rows := range p.staged[bucket] {
		n += len(rows)
	}
	return n
}

// StagedData snapshots the staged bucket as BucketData with rows in sorted
// key order — the deterministic encoding the durability handoff record
// wants. The rows are shared, not cloned: the caller must only serialize
// them (LogBucketIn) before CommitStaged installs the same maps.
func (p *Partition) StagedData(bucket int) *BucketData {
	data := &BucketData{Bucket: bucket, Tables: make(map[string][]Row)}
	for name, rows := range p.staged[bucket] {
		out := make([]Row, 0, len(rows))
		for _, r := range rows {
			out = append(out, r)
		}
		sortRowsByKey(out)
		data.Tables[name] = out
	}
	return data
}

// CommitStaged installs the staged maps as the bucket's live contents (by
// reference — O(tables)) and takes ownership, reporting the number of rows
// that landed. Committing a bucket the partition already owns is an error.
// A bucket with nothing staged commits empty, matching ApplyBucket of an
// empty BucketData.
func (p *Partition) CommitStaged(bucket int) (int, error) {
	if p.owned[bucket] {
		return 0, fmt.Errorf("storage: partition %d already owns bucket %d", p.id, bucket)
	}
	n := 0
	for name, rows := range p.staged[bucket] {
		if len(rows) == 0 {
			continue
		}
		p.CreateTable(name)
		p.tables[name].buckets[bucket] = rows
		n += len(rows)
	}
	delete(p.staged, bucket)
	p.owned[bucket] = true
	return n, nil
}

// DiscardStaged drops everything staged for the bucket — the destination
// half of aborting a pre-copy move.
func (p *Partition) DiscardStaged(bucket int) { delete(p.staged, bucket) }

// sortRowsByKey orders rows deterministically for snapshot and handoff
// encoding. Live-path extraction no longer sorts (see ExtractBucket); only
// the durable encoders pay for determinism.
func sortRowsByKey(rows []Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
}
