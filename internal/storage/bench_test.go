package storage

import (
	"fmt"
	"runtime"
	"strconv"
	"testing"
)

// largeTables caches the populated partitions across b.N calibration runs:
// building ten million rows dwarfs any measurable loop, so each size is
// built exactly once per process.
var largeTables = map[int]*Partition{}

func largeTable(b *testing.B, n int) *Partition {
	b.Helper()
	if p, ok := largeTables[n]; ok {
		return p
	}
	const nBuckets = 64
	owned := make([]int, nBuckets)
	for i := range owned {
		owned[i] = i
	}
	p := NewPartition(0, nBuckets, owned)
	p.CreateTable("t")
	cols := map[string]string{"qty": "", "price": "9.99", "state": "active"}
	var key []byte
	for i := 0; i < n; i++ {
		key = append(key[:0], "row-"...)
		key = strconv.AppendInt(key, int64(i), 10)
		cols["qty"] = strconv.Itoa(i & 1023)
		if err := p.Put("t", string(key), cols); err != nil {
			b.Fatal(err)
		}
	}
	largeTables[n] = p
	return p
}

// BenchmarkLargeTable prices the steady state the arena layout exists for:
// point writes against a table of millions of resident rows, with the GC
// walking the whole heap underneath. ns/op is the overwrite cost (index
// lookup + arena append); the reported metrics capture what the boxed-row
// layout could not bound — max-gc-pause-ns is the longest stop-the-world
// pause over a forced collection of the full table (acceptance: <10ms and
// roughly flat from 1M to 10M rows, since tuples live in ~64KB pages the
// collector scans as single objects, not per-row map/string graphs), and
// heap-objects counts reachable allocations after collection (~index
// buckets + pages, not rows).
func BenchmarkLargeTable(b *testing.B) {
	for _, n := range []int{1_000_000, 10_000_000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			p := largeTable(b, n)
			cols := map[string]string{"qty": "", "price": "9.99", "state": "active"}
			var before runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			var key []byte
			for i := 0; i < b.N; i++ {
				key = append(key[:0], "row-"...)
				key = strconv.AppendInt(key, int64(i%n), 10)
				cols["qty"] = strconv.Itoa(i & 1023)
				if err := p.Put("t", string(key), cols); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Force two collections over the fully populated table and pull
			// the max pause out of the PauseNs ring for the cycles this
			// sub-benchmark caused (forced GCs included — they are the
			// worst-case full-heap cycles).
			runtime.GC()
			runtime.GC()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			var maxPause uint64
			for gc := before.NumGC; gc < after.NumGC; gc++ {
				if pause := after.PauseNs[gc%uint32(len(after.PauseNs))]; pause > maxPause {
					maxPause = pause
				}
			}
			b.ReportMetric(float64(maxPause), "max-gc-pause-ns")
			b.ReportMetric(float64(after.HeapObjects), "heap-objects")
		})
	}
}
