// Compact tuple encoding. A stored row is one []byte — not a boxed
// map[string]string — laid out with the same uvarint vocabulary as the wire
// codec (internal/server/codec.go), so storage, snapshots-in-flight and
// bucket shipping all speak one encoding:
//
//	uvarint keyLen | key | uvarint nFields | nFields × (uvarint fieldID |
//	                                                    uvarint valLen | val)
//
// Column names are interned once per table into a Schema — tuples carry
// small integer field IDs, never column-name strings. Fields are written in
// ascending field-ID order, so encoding the same logical row against the
// same schema is byte-stable (decode → re-encode reproduces the input
// exactly), which the codec fuzz test pins.
//
// handoff; field order must not depend on map iteration order.
//
//pstore:deterministic — tuple bytes feed size accounting and migration
package storage

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sync/atomic"
	"unsafe"
)

// Schema is a per-table field-name intern table. Field IDs are dense,
// assigned in first-use order, and never reused or reordered.
//
// Ownership follows the partition: only the executor goroutine that owns
// the table interns new names (ids is unsynchronized). Readers on other
// goroutines — checksum scans, replication encoders holding a borrowed
// view — resolve IDs back to names through an atomically published names
// slice, which is copied on every intern and never mutated in place.
type Schema struct {
	ids   map[string]uint32
	names atomic.Pointer[[]string]
}

func newSchema() *Schema {
	s := &Schema{ids: make(map[string]uint32)}
	empty := []string{}
	s.names.Store(&empty)
	return s
}

// intern returns the field ID for name, assigning the next dense ID on
// first use. Owner goroutine only.
func (s *Schema) intern(name string) uint32 {
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := uint32(len(s.ids))
	s.ids[name] = id
	old := *s.names.Load()
	next := make([]string, len(old)+1)
	copy(next, old)
	next[len(old)] = name
	s.names.Store(&next)
	return id
}

// lookup returns the field ID for name without interning. Owner goroutine
// only.
func (s *Schema) lookup(name string) (uint32, bool) {
	id, ok := s.ids[name]
	return id, ok
}

// Name resolves a field ID to its column name. Safe from any goroutine.
func (s *Schema) Name(id uint32) string {
	names := *s.names.Load()
	if int(id) >= len(names) {
		return ""
	}
	return names[id]
}

// NumFields returns the number of interned field names. Safe from any
// goroutine (the published slice length is the intern count).
func (s *Schema) NumFields() int { return len(*s.names.Load()) }

// fieldNames returns the published id→name slice. Safe from any goroutine;
// the slice is immutable.
func (s *Schema) fieldNames() []string { return *s.names.Load() }

// sameFields reports whether two schemas assign identical IDs to identical
// names — the condition under which tuples transfer between them verbatim.
func sameFields(a, b *Schema) bool {
	if a == b {
		return true
	}
	return slices.Equal(a.fieldNames(), b.fieldNames())
}

// internSorted interns any of cols' names the schema has not seen, in
// sorted name order. Sorting makes ID assignment a function of the column
// set alone — never of Go map iteration order — so a replayed command log
// reproduces the same schema, tuple for tuple.
func (s *Schema) internSorted(cols map[string]string) {
	missing := 0
	for name := range cols {
		if _, ok := s.ids[name]; !ok {
			missing++
		}
	}
	if missing == 0 {
		return
	}
	var arr [16]string
	add := arr[:0]
	//pstore:ignore determinism — missing names are collected, then sorted below; interning order is a function of the column set only
	for name := range cols {
		if _, ok := s.ids[name]; !ok {
			add = append(add, name)
		}
	}
	slices.Sort(add)
	for _, name := range add {
		s.intern(name)
	}
}

// tupleField is a scratch pair used to order fields by ID while encoding.
type tupleField struct {
	id  uint32
	val string
}

// appendTuple encodes (key, cols) against schema onto buf, interning any
// new column names (sorted) first. Owner goroutine only.
func appendTuple(buf []byte, s *Schema, key string, cols map[string]string) []byte {
	s.internSorted(cols)
	var arr [16]tupleField
	fields := arr[:0]
	//pstore:ignore determinism — fields are sorted by interned ID below before any byte is emitted
	for name, val := range cols {
		id, _ := s.ids[name]
		fields = append(fields, tupleField{id: id, val: val})
	}
	slices.SortFunc(fields, func(a, b tupleField) int { return int(a.id) - int(b.id) })
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(fields)))
	for _, f := range fields {
		buf = binary.AppendUvarint(buf, uint64(f.id))
		buf = binary.AppendUvarint(buf, uint64(len(f.val)))
		buf = append(buf, f.val...)
	}
	return buf
}

// tupleError marks a structurally invalid tuple. Stored tuples are encoded
// by this package and never cross a trust boundary, so corruption here is a
// program bug, not bad input — but decoders still fail loudly.
func tupleError(what string) error {
	return fmt.Errorf("storage: corrupt tuple: %s", what)
}

// bstr reinterprets b as a string without copying. Callers guarantee b is
// never mutated afterward — arena pages are append-only and tuples are
// replaced whole, so every alias handed out stays valid bytes forever.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// tupleKey returns the key encoded at the head of the tuple, aliasing the
// tuple's bytes.
func tupleKey(t []byte) string {
	klen, n := binary.Uvarint(t)
	if n <= 0 || uint64(len(t)-n) < klen {
		return ""
	}
	return bstr(t[n : n+int(klen)])
}

// TupleView is a zero-copy window onto one stored tuple. Key and Col alias
// the underlying bytes directly — no map, no string copies.
//
// Borrow rule: a view is valid for the duration of the transaction (or
// scan callback) that obtained it. Arena pages are append-only, so a leaked
// view is memory-safe — it can never observe torn bytes — but it may
// observe a value that the table has since replaced. The tupleescape vet
// check enforces that stored procedures do not retain views past return.
type TupleView struct {
	b      []byte
	schema *Schema
}

// Valid reports whether the view refers to a tuple.
func (v TupleView) Valid() bool { return v.b != nil }

// Key returns the tuple's primary key, aliasing the tuple bytes.
func (v TupleView) Key() string { return tupleKey(v.b) }

// NumCols returns the number of columns stored in the tuple.
func (v TupleView) NumCols() int {
	t := v.b
	klen, n := binary.Uvarint(t)
	if n <= 0 {
		return 0
	}
	t = t[n+int(klen):]
	nf, n := binary.Uvarint(t)
	if n <= 0 {
		return 0
	}
	return int(nf)
}

// Col returns the named column's value, aliasing the tuple bytes. It scans
// the tuple's few fields comparing names through the schema's published
// name table, so it is safe from any goroutine holding a legitimate view.
func (v TupleView) Col(name string) (string, bool) {
	names := v.schema.fieldNames()
	var out string
	found := false
	v.each(func(id uint32, val string) bool {
		if int(id) < len(names) && names[id] == name {
			out, found = val, true
			return false
		}
		return true
	})
	return out, found
}

// each iterates the tuple's (fieldID, value) pairs in stored (ascending ID)
// order; fn returning false stops early. Values alias the tuple bytes.
func (v TupleView) each(fn func(id uint32, val string) bool) {
	t := v.b
	klen, n := binary.Uvarint(t)
	if n <= 0 || uint64(len(t)-n) < klen {
		return
	}
	t = t[n+int(klen):]
	nf, n := binary.Uvarint(t)
	if n <= 0 {
		return
	}
	t = t[n:]
	for i := uint64(0); i < nf; i++ {
		id, n := binary.Uvarint(t)
		if n <= 0 {
			return
		}
		t = t[n:]
		vlen, n := binary.Uvarint(t)
		if n <= 0 || uint64(len(t)-n) < vlen {
			return
		}
		val := bstr(t[n : n+int(vlen)])
		t = t[n+int(vlen):]
		if !fn(uint32(id), val) {
			return
		}
	}
}

// Range calls fn for each (name, value) column in stored order; fn
// returning false stops early. Both strings alias borrowed bytes.
func (v TupleView) Range(fn func(name, val string) bool) {
	names := v.schema.fieldNames()
	v.each(func(id uint32, val string) bool {
		name := ""
		if int(id) < len(names) {
			name = names[id]
		}
		return fn(name, val)
	})
}

// AliasCols writes the tuple's columns into dst (allocated when nil) with
// values aliasing the borrowed bytes — the read-modify-write shape: fill a
// scratch map, override a column or two, and hand it straight back to Put,
// which encodes immediately. Use CopyCols when the map must outlive the
// transaction.
func (v TupleView) AliasCols(dst map[string]string) map[string]string {
	if dst == nil {
		dst = make(map[string]string, v.NumCols())
	}
	names := v.schema.fieldNames()
	v.each(func(id uint32, val string) bool {
		if int(id) < len(names) {
			dst[names[id]] = val
		}
		return true
	})
	return dst
}

// CopyCols materializes the tuple's columns into dst (allocated when nil)
// as owned string copies — the bridge from a borrowed view to data that
// outlives the transaction.
func (v TupleView) CopyCols(dst map[string]string) map[string]string {
	if dst == nil {
		dst = make(map[string]string, v.NumCols())
	}
	names := v.schema.fieldNames()
	v.each(func(id uint32, val string) bool {
		if int(id) < len(names) {
			dst[names[id]] = string(append([]byte(nil), val...))
		}
		return true
	})
	return dst
}

// Row materializes the view into an owned Row, copying every byte.
func (v TupleView) Row() Row {
	key := string(append([]byte(nil), tupleKey(v.b)...))
	return Row{Key: key, Cols: v.CopyCols(nil)}
}

// decodeTupleChecked walks a tuple verifying structure, returning an error
// for truncated or trailing bytes. Used by tests and the codec fuzzer.
func decodeTupleChecked(s *Schema, t []byte) (Row, error) {
	klen, n := binary.Uvarint(t)
	if n <= 0 || uint64(len(t)-n) < klen {
		return Row{}, tupleError("key")
	}
	key := string(t[n : n+int(klen)])
	t = t[n+int(klen):]
	nf, n := binary.Uvarint(t)
	if n <= 0 {
		return Row{}, tupleError("field count")
	}
	t = t[n:]
	cols := make(map[string]string, nf)
	last := int64(-1)
	for i := uint64(0); i < nf; i++ {
		id, n := binary.Uvarint(t)
		if n <= 0 {
			return Row{}, tupleError("field id")
		}
		t = t[n:]
		if int64(id) <= last {
			return Row{}, tupleError("field ids not ascending")
		}
		last = int64(id)
		vlen, n := binary.Uvarint(t)
		if n <= 0 || uint64(len(t)-n) < vlen {
			return Row{}, tupleError("value")
		}
		name := s.Name(uint32(id))
		if name == "" && s.NumFields() <= int(id) {
			return Row{}, tupleError("field id beyond schema")
		}
		cols[name] = string(t[n : n+int(vlen)])
		t = t[n+int(vlen):]
	}
	if len(t) != 0 {
		return Row{}, tupleError("trailing bytes")
	}
	return Row{Key: key, Cols: cols}, nil
}

// remapTuple re-encodes src-schema tuple t against dst, interning names as
// needed, appending onto buf. When both schemas assign identical IDs the
// caller should skip this and transfer the bytes verbatim (see sameFields).
func remapTuple(buf []byte, src, dst *Schema, t []byte) []byte {
	v := TupleView{b: t, schema: src}
	names := src.fieldNames()
	var arr [16]tupleField
	fields := arr[:0]
	v.each(func(id uint32, val string) bool {
		name := ""
		if int(id) < len(names) {
			name = names[id]
		}
		fields = append(fields, tupleField{id: dst.intern(name), val: val})
		return true
	})
	slices.SortFunc(fields, func(a, b tupleField) int { return int(a.id) - int(b.id) })
	key := tupleKey(t)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(fields)))
	for _, f := range fields {
		buf = binary.AppendUvarint(buf, uint64(f.id))
		buf = binary.AppendUvarint(buf, uint64(len(f.val)))
		buf = append(buf, f.val...)
	}
	return buf
}
