package storage

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestTupleEncodeByteStable is the storage-side sibling of the wire codec's
// TestEncodeByteStable: encoding the same logical row against the same
// schema must produce identical bytes regardless of map iteration order,
// and decode → re-encode must reproduce the input exactly.
func TestTupleEncodeByteStable(t *testing.T) {
	s := newSchema()
	cols := map[string]string{"qty": "2", "sku": "A-7", "price": "19.90", "note": ""}
	first := appendTuple(nil, s, "cart-1", cols)
	for i := 0; i < 32; i++ {
		// Rebuild the map each round so Go's randomized iteration order gets
		// a chance to differ.
		again := map[string]string{}
		for k, v := range cols {
			again[k] = v
		}
		enc := appendTuple(nil, s, "cart-1", again)
		if string(enc) != string(first) {
			t.Fatalf("encode not byte-stable on round %d", i)
		}
	}
	row, err := decodeTupleChecked(s, first)
	if err != nil {
		t.Fatal(err)
	}
	if row.Key != "cart-1" || !reflect.DeepEqual(row.Cols, cols) {
		t.Fatalf("decode = %+v", row)
	}
	re := appendTuple(nil, s, row.Key, row.Cols)
	if string(re) != string(first) {
		t.Fatal("decode → re-encode not byte-identical")
	}
}

// TestSchemaInternDeterministic pins that field-ID assignment is a function
// of the column set, not of map iteration order: two fresh schemas fed the
// same rows assign identical IDs, so the tuples are byte-identical.
func TestSchemaInternDeterministic(t *testing.T) {
	cols := map[string]string{}
	for i := 0; i < 20; i++ {
		cols[fmt.Sprintf("col-%02d", i)] = fmt.Sprint(i)
	}
	a, b := newSchema(), newSchema()
	ta := appendTuple(nil, a, "k", cols)
	tb := appendTuple(nil, b, "k", cols)
	if string(ta) != string(tb) {
		t.Fatal("independent schemas fed the same row diverged")
	}
	if !sameFields(a, b) {
		t.Fatal("schemas interned different field tables")
	}
}

func TestTupleRoundTripQuick(t *testing.T) {
	f := func(key string, names []string, vals []string) bool {
		cols := map[string]string{}
		for i, n := range names {
			v := ""
			if i < len(vals) {
				v = vals[i]
			}
			cols[n] = v
		}
		s := newSchema()
		enc := appendTuple(nil, s, key, cols)
		row, err := decodeTupleChecked(s, enc)
		if err != nil {
			return false
		}
		if row.Key != key || !reflect.DeepEqual(row.Cols, cols) {
			return false
		}
		return string(appendTuple(nil, s, row.Key, row.Cols)) == string(enc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzTupleRoundTrip drives encode → decode → re-encode with fuzzed keys
// and columns: re-encoding must be byte-stable and decoding must never
// mis-read a value.
func FuzzTupleRoundTrip(f *testing.F) {
	f.Add("k", "a", "1", "b", "2")
	f.Add("", "", "", "", "")
	f.Add("cart-9", "lines", "sku\x1f1\x1e", "status", "PENDING")
	f.Fuzz(func(t *testing.T, key, n1, v1, n2, v2 string) {
		cols := map[string]string{n1: v1, n2: v2}
		s := newSchema()
		enc := appendTuple(nil, s, key, cols)
		row, err := decodeTupleChecked(s, enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if row.Key != key || !reflect.DeepEqual(row.Cols, cols) {
			t.Fatalf("round trip mutated row: %+v vs key=%q cols=%v", row, key, cols)
		}
		re := appendTuple(nil, s, row.Key, row.Cols)
		if string(re) != string(enc) {
			t.Fatal("re-encode not byte-identical")
		}
	})
}

func TestTupleViewAccessors(t *testing.T) {
	p := newTestPartition()
	cols := map[string]string{"sku": "A", "qty": "3"}
	if err := p.Put("CART", "k", cols); err != nil {
		t.Fatal(err)
	}
	v, ok, err := p.GetView("CART", "k")
	if err != nil || !ok {
		t.Fatalf("GetView: ok=%v err=%v", ok, err)
	}
	if v.Key() != "k" || v.NumCols() != 2 {
		t.Fatalf("Key=%q NumCols=%d", v.Key(), v.NumCols())
	}
	if got, ok := v.Col("qty"); !ok || got != "3" {
		t.Errorf("Col(qty) = %q, %v", got, ok)
	}
	if _, ok := v.Col("absent"); ok {
		t.Error("Col(absent) should report missing")
	}
	seen := map[string]string{}
	v.Range(func(name, val string) bool {
		seen[name] = val
		return true
	})
	if !reflect.DeepEqual(seen, cols) {
		t.Errorf("Range visited %v", seen)
	}
	if got := v.CopyCols(nil); !reflect.DeepEqual(got, cols) {
		t.Errorf("CopyCols = %v", got)
	}
	if got := v.Row(); got.Key != "k" || !reflect.DeepEqual(got.Cols, cols) {
		t.Errorf("Row = %+v", got)
	}
	if (TupleView{}).Valid() {
		t.Error("zero view must be invalid")
	}
}

// TestRemapTuple crosses a tuple between schemas that assign different IDs
// to the same names — the migration staging path.
func TestRemapTuple(t *testing.T) {
	src, dst := newSchema(), newSchema()
	src.intern("a")
	src.intern("b")
	dst.intern("b") // reversed assignment order
	dst.intern("a")
	enc := appendTuple(nil, src, "k", map[string]string{"a": "1", "b": "2"})
	re := remapTuple(nil, src, dst, enc)
	row, err := decodeTupleChecked(dst, re)
	if err != nil {
		t.Fatal(err)
	}
	if row.Key != "k" || row.Cols["a"] != "1" || row.Cols["b"] != "2" {
		t.Fatalf("remapped row = %+v", row)
	}
	if sameFields(src, dst) {
		t.Fatal("schemas should differ")
	}
}

// TestArenaReclaim pins the reclamation bound: a delete-heavy workload that
// holds the live set constant must not grow retained memory without bound —
// compaction keeps retained bytes within a small multiple of the live set.
func TestArenaReclaim(t *testing.T) {
	p := NewPartition(0, 4, []int{0, 1, 2, 3})
	p.CreateTable("T")
	val := string(make([]byte, 256))
	const live = 200
	put := func(gen, i int) {
		if err := p.Put("T", fmt.Sprintf("key-%d", i), map[string]string{"v": val, "g": fmt.Sprint(gen)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < live; i++ {
		put(0, i)
	}
	// Churn: rewrite the same keys many times over; dead bytes accumulate
	// ~50× the live set if nothing reclaims.
	for gen := 1; gen <= 50; gen++ {
		for i := 0; i < live; i++ {
			put(gen, i)
		}
	}
	if p.RowCount() != live {
		t.Fatalf("RowCount = %d, want %d", p.RowCount(), live)
	}
	liveBytes := live * (256 + 64) // rough payload upper bound per row
	if got := p.SizeBytes(); got > 8*liveBytes+8*arenaPageSize {
		t.Fatalf("retained %d bytes after churn, live set is ~%d — arena not reclaiming", got, liveBytes)
	}
	// Delete everything: retained memory must collapse to near zero.
	for i := 0; i < live; i++ {
		if ok, err := p.Delete("T", fmt.Sprintf("key-%d", i)); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if got := p.SizeBytes(); got > 8*arenaPageSize {
		t.Fatalf("retained %d bytes after deleting all rows", got)
	}
}

// TestJumboTuple exercises the dedicated-page path for tuples larger than a
// quarter slab.
func TestJumboTuple(t *testing.T) {
	p := newTestPartition()
	big := string(make([]byte, arenaPageSize))
	if err := p.Put("CART", "jumbo", map[string]string{"doc": big}); err != nil {
		t.Fatal(err)
	}
	if err := p.Put("CART", "small", map[string]string{"v": "x"}); err != nil {
		t.Fatal(err)
	}
	r, ok, err := p.Get("CART", "jumbo")
	if err != nil || !ok || r.Cols["doc"] != big {
		t.Fatalf("jumbo row damaged: ok=%v err=%v len=%d", ok, err, len(r.Cols["doc"]))
	}
	if r, ok, _ := p.Get("CART", "small"); !ok || r.Cols["v"] != "x" {
		t.Fatalf("small row after jumbo = %+v", r)
	}
}

// TestViewSurvivesOverwrite pins the append-only guarantee borrowed views
// rely on: a view taken before an overwrite still reads the old bytes (it
// is stale, never torn).
func TestViewSurvivesOverwrite(t *testing.T) {
	p := newTestPartition()
	if err := p.Put("CART", "k", map[string]string{"v": "old"}); err != nil {
		t.Fatal(err)
	}
	v, _, _ := p.GetView("CART", "k")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(500))
		if err := p.Put("CART", key, map[string]string{"v": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := v.Col("v"); !ok || got != "old" {
		t.Fatalf("stale view corrupted: %q %v", got, ok)
	}
}
