// Package controller implements the P-Store Predictive Controller (§6): a
// monitoring loop that measures the aggregate load each slot, calls the
// Predictor for a time series of future load, passes it to the Planner
// (the dynamic program of §4.3), and executes only the first move of the
// returned plan before re-planning — receding-horizon control. Scale-in
// moves need three consecutive confirmations; when the Planner reports no
// feasible plan (an unpredicted spike), the controller falls back to
// reactive scaling at the regular migration rate R or at R×8 (§4.3.1).
package controller

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/migration"
	"pstore/internal/plan"
	"pstore/internal/predict"
	"pstore/internal/timeseries"
)

// Config tunes the predictive controller.
type Config struct {
	// Params supplies Q, Q̂, D and P for the planner.
	Params plan.Params
	// Predictor forecasts future load. It must already be fitted, and its
	// training data must be in the same units as MeasureLoad (load per
	// slot).
	Predictor predict.Model
	// History seeds the predictor's observation window; measured slots are
	// appended to it. Its Step must equal SlotWall ⋅ (trace compression),
	// i.e. one entry per controller slot.
	History *timeseries.Series
	// SlotWall is the wall-clock duration of one slot.
	SlotWall time.Duration
	// Horizon is how many slots ahead to plan (τ_max). Must satisfy
	// Horizon ≥ 2·D/P to leave room for two back-to-back reconfigurations
	// (§5 "what is a good forecasting window").
	Horizon int
	// Inflate multiplies predictions for provisioning headroom (the
	// paper's evaluation inflates by 15% → 1.15). 0 means no inflation.
	Inflate float64
	// ScaleInConfirmations is the number of consecutive plans that must
	// call for a scale-in before it executes (paper: 3).
	ScaleInConfirmations int
	// MaxNodes caps emergency scale-out (0 = unlimited).
	MaxNodes int
	// Migration configures the regular migration rate R.
	Migration migration.Options
	// FastFallback uses rate R×8 for the reactive fallback (§8.2's second
	// strategy); otherwise the fallback migrates at the regular rate R.
	FastFallback bool
	// MeasureLoad returns the load observed since the last call (one
	// slot's transaction count). Required.
	MeasureLoad func() float64
}

// Event records one controller decision.
type Event struct {
	At       time.Time
	Slot     int
	Load     float64
	From, To int
	Kind     string // "scale-out", "scale-in", "fallback", "hold", "infeasible"
	Note     string
}

// Controller runs P-Store's monitor → predict → plan → migrate loop.
type Controller struct {
	cfg     Config
	c       *cluster.Cluster
	history *timeseries.Series

	mu           sync.Mutex
	events       []Event
	scaleInVotes int
	slot         int
	inflight     *migration.Migration
	manualFloor  int
}

// New validates the configuration and returns a controller.
func New(c *cluster.Cluster, cfg Config) (*Controller, error) {
	if cfg.Predictor == nil {
		return nil, fmt.Errorf("controller: Predictor is required")
	}
	if cfg.MeasureLoad == nil {
		return nil, fmt.Errorf("controller: MeasureLoad is required")
	}
	if cfg.History == nil || cfg.History.Len() < cfg.Predictor.MinHistory() {
		return nil, fmt.Errorf("controller: History must seed at least MinHistory=%d slots", cfg.Predictor.MinHistory())
	}
	if cfg.SlotWall <= 0 {
		return nil, fmt.Errorf("controller: SlotWall must be positive")
	}
	if cfg.Horizon < 2 {
		return nil, fmt.Errorf("controller: Horizon must be ≥ 2, got %d", cfg.Horizon)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Inflate == 0 {
		cfg.Inflate = 1
	}
	if cfg.ScaleInConfirmations <= 0 {
		cfg.ScaleInConfirmations = 3
	}
	return &Controller{cfg: cfg, c: c, history: cfg.History.Clone()}, nil
}

// SetManualFloor sets a minimum machine count the controller will maintain
// regardless of predictions — the paper's third composite strategy, manual
// provisioning for rare but expected events (§1: "e.g. special promotions
// for B2W"). A floor of 0 clears the override. The floor takes effect at
// the next control cycle; the planner still delays the scale-out as late as
// feasibility allows for loads above the floor.
func (ctl *Controller) SetManualFloor(machines int) {
	if machines < 0 {
		machines = 0
	}
	ctl.mu.Lock()
	ctl.manualFloor = machines
	ctl.mu.Unlock()
}

// ManualFloor returns the current manual-provisioning floor (0 = none).
func (ctl *Controller) ManualFloor() int {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return ctl.manualFloor
}

// Events returns the decisions taken so far.
func (ctl *Controller) Events() []Event {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return append([]Event(nil), ctl.events...)
}

func (ctl *Controller) record(ev Event) {
	ctl.mu.Lock()
	ctl.events = append(ctl.events, ev)
	ctl.mu.Unlock()
}

// Run executes the control loop until ctx is cancelled.
func (ctl *Controller) Run(ctx context.Context) error {
	ticker := time.NewTicker(ctl.cfg.SlotWall)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		if err := ctl.Step(ctx); err != nil {
			return err
		}
	}
}

// Step performs one monitor→predict→plan→act cycle. Exposed for
// deterministic tests and simulations; Run calls it once per slot.
// Monitoring continues during an in-flight migration (the measurement is
// appended every slot so the predictor's history stays aligned with the
// timeline), but no new move is planned until the migration completes.
func (ctl *Controller) Step(ctx context.Context) error {
	load := ctl.cfg.MeasureLoad()
	ctl.mu.Lock()
	ctl.history.Append(load)
	ctl.slot++
	slot := ctl.slot
	inflight := ctl.inflight
	ctl.mu.Unlock()

	if inflight != nil {
		select {
		case <-inflight.Done():
			_, err := inflight.Wait()
			ctl.mu.Lock()
			ctl.inflight = nil
			ctl.mu.Unlock()
			if err != nil {
				return fmt.Errorf("controller: migration failed: %w", err)
			}
		default:
			// Reconfiguration still running; keep monitoring.
			return nil
		}
	}

	forecast, err := ctl.cfg.Predictor.Forecast(ctl.history, ctl.cfg.Horizon)
	if err != nil {
		return fmt.Errorf("controller: forecast: %w", err)
	}
	loadVec := make([]float64, ctl.cfg.Horizon+1)
	loadVec[0] = load
	for i, v := range forecast {
		loadVec[i+1] = v * ctl.cfg.Inflate
	}
	// Manual provisioning: a floor of F machines is expressed as a load of
	// at least cap(F) at every future slot, so the planner keeps capacity
	// there without disturbing its timing logic.
	ctl.mu.Lock()
	floor := ctl.manualFloor
	ctl.mu.Unlock()
	if floor > 0 {
		floorLoad := ctl.cfg.Params.Cap(floor)
		for i := 1; i < len(loadVec); i++ {
			if loadVec[i] < floorLoad {
				loadVec[i] = floorLoad
			}
		}
	}

	n := ctl.c.NumNodes()
	pl, err := plan.BestMoves(loadVec, n, ctl.cfg.Params)
	if err == plan.ErrInfeasible {
		return ctl.fallback(ctx, slot, load, loadVec, n)
	}
	if err != nil {
		return fmt.Errorf("controller: planning: %w", err)
	}

	move, acted := pl.FirstAction()
	if !acted {
		ctl.mu.Lock()
		ctl.scaleInVotes = 0
		ctl.mu.Unlock()
		ctl.record(Event{At: time.Now(), Slot: slot, Load: load, From: n, To: n, Kind: "hold"})
		return nil
	}
	if move.To > move.From {
		// Scale out when the plan's first move is due to start: the plan
		// already delays it as much as possible, so act only if the move
		// starts now (slot 0 boundary) — i.e. its Start is the present.
		ctl.mu.Lock()
		ctl.scaleInVotes = 0
		ctl.mu.Unlock()
		if move.Start > 0 {
			ctl.record(Event{At: time.Now(), Slot: slot, Load: load, From: n, To: n, Kind: "hold",
				Note: fmt.Sprintf("scale-out %d→%d scheduled at +%d slots", move.From, move.To, move.Start)})
			return nil
		}
		ctl.record(Event{At: time.Now(), Slot: slot, Load: load, From: move.From, To: move.To, Kind: "scale-out"})
		return ctl.migrate(ctx, move.To, ctl.cfg.Migration)
	}
	// Scale-in: require consecutive confirmations (§6).
	ctl.mu.Lock()
	ctl.scaleInVotes++
	votes := ctl.scaleInVotes
	ctl.mu.Unlock()
	if votes < ctl.cfg.ScaleInConfirmations || move.Start > 0 {
		ctl.record(Event{At: time.Now(), Slot: slot, Load: load, From: n, To: n, Kind: "hold",
			Note: fmt.Sprintf("scale-in %d→%d vote %d/%d", move.From, move.To, votes, ctl.cfg.ScaleInConfirmations)})
		return nil
	}
	ctl.mu.Lock()
	ctl.scaleInVotes = 0
	ctl.mu.Unlock()
	ctl.record(Event{At: time.Now(), Slot: slot, Load: load, From: move.From, To: move.To, Kind: "scale-in"})
	return ctl.migrate(ctx, move.To, ctl.cfg.Migration)
}

// fallback handles an infeasible plan: an unpredicted spike needs more
// capacity than any feasible schedule provides, so scale straight to the
// required machine count, optionally at the boosted rate (§4.3.1).
func (ctl *Controller) fallback(ctx context.Context, slot int, load float64, loadVec []float64, n int) error {
	maxLoad := 0.0
	for _, v := range loadVec {
		if v > maxLoad {
			maxLoad = v
		}
	}
	target := ctl.cfg.Params.RequiredMachines(maxLoad)
	if ctl.cfg.MaxNodes > 0 && target > ctl.cfg.MaxNodes {
		target = ctl.cfg.MaxNodes
	}
	if target <= n {
		// The present is already overloaded but more machines would not
		// have helped in time; record and carry on.
		ctl.record(Event{At: time.Now(), Slot: slot, Load: load, From: n, To: n, Kind: "infeasible"})
		return nil
	}
	opts := ctl.cfg.Migration
	note := "rate R"
	if ctl.cfg.FastFallback {
		opts.RateMultiplier = 8
		note = "rate R×8"
	}
	ctl.record(Event{At: time.Now(), Slot: slot, Load: load, From: n, To: target, Kind: "fallback", Note: note})
	return ctl.migrate(ctx, target, opts)
}

func (ctl *Controller) migrate(ctx context.Context, target int, opts migration.Options) error {
	_ = ctx
	m, err := migration.Start(ctl.c, target, opts)
	if err != nil {
		return err
	}
	ctl.mu.Lock()
	ctl.inflight = m
	ctl.mu.Unlock()
	return nil
}

// InFlight reports the current migration, if any.
func (ctl *Controller) InFlight() *migration.Migration {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return ctl.inflight
}

// WaitIdle blocks until no migration is in flight (for experiment
// teardown).
func (ctl *Controller) WaitIdle() error {
	ctl.mu.Lock()
	m := ctl.inflight
	ctl.mu.Unlock()
	if m == nil {
		return nil
	}
	_, err := m.Wait()
	ctl.mu.Lock()
	ctl.inflight = nil
	ctl.mu.Unlock()
	return err
}

// History returns a snapshot of the measured-load history.
func (ctl *Controller) History() *timeseries.Series {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return ctl.history.Clone()
}
