package controller

import (
	"context"
	"testing"
	"time"

	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/migration"
	"pstore/internal/plan"
	"pstore/internal/predict"
	"pstore/internal/timeseries"
)

func testRegistry() *engine.Registry {
	reg := engine.NewRegistry()
	reg.Register("Put", func(tx *engine.Txn) error {
		return tx.Put("T", tx.Key, map[string]string{"v": "1"})
	})
	return reg
}

func newTestCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		InitialNodes:      1,
		PartitionsPerNode: 1,
		NBuckets:          32,
		Tables:            []string{"T"},
		Registry:          testRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// buildScenario returns a full load series: flat 80 with a spike of 180
// over slots [spikeStart, spikeEnd).
func buildScenario(length, spikeStart, spikeEnd int) *timeseries.Series {
	vals := make([]float64, length)
	for i := range vals {
		vals[i] = 80
		if i >= spikeStart && i < spikeEnd {
			vals[i] = 180
		}
	}
	return timeseries.New(time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC), time.Minute, vals)
}

func testConfig(t *testing.T, full *timeseries.Series, seedLen int, measure func() float64) Config {
	t.Helper()
	oracle := predict.NewOracle(full)
	if err := oracle.Fit(nil); err != nil {
		t.Fatal(err)
	}
	return Config{
		Params:               plan.Params{Q: 100, QHat: 120, D: 2, PartitionsPerNode: 1},
		Predictor:            oracle,
		History:              full.Slice(0, seedLen),
		SlotWall:             10 * time.Millisecond,
		Horizon:              6,
		Inflate:              1,
		ScaleInConfirmations: 3,
		Migration:            migration.Options{BucketsPerChunk: 8, ChunkInterval: 100 * time.Microsecond},
		MeasureLoad:          measure,
	}
}

// stepUntilIdle advances the controller one slot and waits out any
// migration it may have started, so tests stay deterministic.
func stepUntilIdle(t *testing.T, ctl *Controller) {
	t.Helper()
	if err := ctl.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestControllerScalesOutBeforeSpike(t *testing.T) {
	c := newTestCluster(t)
	full := buildScenario(60, 18, 24)
	next := 10
	measure := func() float64 {
		v := full.At(next)
		next++
		return v
	}
	ctl, err := New(c, testConfig(t, full, 10, measure))
	if err != nil {
		t.Fatal(err)
	}
	nodesAtSlot := make(map[int]int)
	for slot := 10; slot < 18; slot++ {
		stepUntilIdle(t, ctl)
		nodesAtSlot[slot] = c.NumNodes()
	}
	if c.NumNodes() != 2 {
		t.Fatalf("nodes = %d at spike time, want 2", c.NumNodes())
	}
	// The scale-out should NOT have happened immediately at slot 10: the
	// planner delays moves as late as possible.
	if nodesAtSlot[10] != 1 || nodesAtSlot[11] != 1 {
		t.Errorf("scaled out too early: %v", nodesAtSlot)
	}
	// Exactly one scale-out event.
	outs := 0
	for _, ev := range ctl.Events() {
		if ev.Kind == "scale-out" {
			outs++
		}
	}
	if outs != 1 {
		t.Errorf("scale-out events = %d, want 1", outs)
	}
}

func TestControllerScaleInNeedsConfirmations(t *testing.T) {
	c := newTestCluster(t)
	// Start with 2 nodes and a permanently low load.
	if _, err := migration.Run(c, 2, migration.Options{BucketsPerChunk: 8, ChunkInterval: 0}); err != nil {
		t.Fatal(err)
	}
	full := buildScenario(60, 999, 999) // flat 80 forever
	next := 10
	measure := func() float64 {
		v := full.At(next)
		next++
		return v
	}
	ctl, err := New(c, testConfig(t, full, 10, measure))
	if err != nil {
		t.Fatal(err)
	}
	stepUntilIdle(t, ctl)
	stepUntilIdle(t, ctl)
	if c.NumNodes() != 2 {
		t.Fatalf("scaled in after only 2 votes")
	}
	stepUntilIdle(t, ctl)
	if c.NumNodes() != 1 {
		t.Fatalf("nodes = %d after 3 confirmations, want 1", c.NumNodes())
	}
	// A hold event with vote notes must precede the scale-in.
	evs := ctl.Events()
	if len(evs) < 3 || evs[len(evs)-1].Kind != "scale-in" {
		t.Errorf("events = %+v", evs)
	}
}

func TestControllerForecastSpikeResetsScaleInVotes(t *testing.T) {
	c := newTestCluster(t)
	if _, err := migration.Run(c, 2, migration.Options{BucketsPerChunk: 8, ChunkInterval: 0}); err != nil {
		t.Fatal(err)
	}
	// Flat 80 except a spike of 210 (needs 3 nodes) over slots [20, 24).
	// With horizon 6 the spike enters the forecast window at slot 14 —
	// before the 5 scale-in confirmations accumulate — so the pending
	// scale-in must be abandoned in favour of the scale-out.
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = 80
		if i >= 20 && i < 24 {
			vals[i] = 210
		}
	}
	full := timeseries.New(time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC), time.Minute, vals)
	next := 10
	measure := func() float64 {
		v := full.At(next)
		next++
		return v
	}
	cfg := testConfig(t, full, 10, measure)
	cfg.ScaleInConfirmations = 5
	// D large enough that a scale-in followed by a scale-out does not fit
	// within the horizon, so dipping down before the spike is infeasible.
	cfg.Params.D = 6
	ctl, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	minNodes := 2
	for slot := 10; slot < 20; slot++ {
		stepUntilIdle(t, ctl)
		if n := c.NumNodes(); n < minNodes {
			minNodes = n
		}
	}
	if minNodes < 2 {
		t.Errorf("cluster dropped to %d nodes before the spike; votes were not reset", minNodes)
	}
	if c.NumNodes() != 3 {
		t.Fatalf("nodes = %d at spike time, want 3", c.NumNodes())
	}
	// After the spike passes, five clean confirmations scale the cluster in.
	for slot := 20; slot < 40; slot++ {
		stepUntilIdle(t, ctl)
	}
	if c.NumNodes() != 1 {
		t.Errorf("nodes = %d after the spike and confirmations, want 1", c.NumNodes())
	}
}

func TestControllerFallbackOnUnpredictedSpike(t *testing.T) {
	c := newTestCluster(t)
	full := buildScenario(60, 999, 999) // oracle predicts flat 80
	next := 10
	measure := func() float64 {
		next++
		if next == 11 {
			return 450 // unpredicted 5.6× spike, beyond cap(1)
		}
		return full.At(next - 1)
	}
	cfg := testConfig(t, full, 10, measure)
	cfg.FastFallback = true
	ctl, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stepUntilIdle(t, ctl)
	if c.NumNodes() < 5 {
		t.Fatalf("nodes = %d after fallback for load 450 (Q=100), want ≥ 5", c.NumNodes())
	}
	evs := ctl.Events()
	if len(evs) != 1 || evs[0].Kind != "fallback" || evs[0].Note != "rate R×8" {
		t.Errorf("events = %+v", evs)
	}
}

func TestControllerValidation(t *testing.T) {
	c := newTestCluster(t)
	full := buildScenario(60, 999, 999)
	good := testConfig(t, full, 10, func() float64 { return 80 })

	bad := good
	bad.Predictor = nil
	if _, err := New(c, bad); err == nil {
		t.Error("nil predictor should fail")
	}
	bad = good
	bad.MeasureLoad = nil
	if _, err := New(c, bad); err == nil {
		t.Error("nil MeasureLoad should fail")
	}
	bad = good
	bad.History = nil
	if _, err := New(c, bad); err == nil {
		t.Error("nil history should fail")
	}
	bad = good
	bad.SlotWall = 0
	if _, err := New(c, bad); err == nil {
		t.Error("zero SlotWall should fail")
	}
	bad = good
	bad.Horizon = 1
	if _, err := New(c, bad); err == nil {
		t.Error("tiny horizon should fail")
	}
	bad = good
	bad.Params = plan.Params{}
	if _, err := New(c, bad); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestControllerRunLoop(t *testing.T) {
	c := newTestCluster(t)
	full := buildScenario(200, 999, 999)
	next := 10
	measure := func() float64 {
		v := full.At(next % 200)
		next++
		return v
	}
	ctl, err := New(c, testConfig(t, full, 10, measure))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	if err := ctl.Run(ctx); err != context.DeadlineExceeded {
		t.Errorf("Run err = %v, want deadline exceeded", err)
	}
	if len(ctl.Events()) == 0 {
		t.Error("no events recorded by Run loop")
	}
	if ctl.History().Len() <= 10 {
		t.Error("history did not grow")
	}
}

func TestControllerManualFloor(t *testing.T) {
	c := newTestCluster(t)
	full := buildScenario(120, 999, 999) // flat 80: 1 machine suffices
	next := 10
	measure := func() float64 {
		v := full.At(next)
		next++
		return v
	}
	ctl, err := New(c, testConfig(t, full, 10, measure))
	if err != nil {
		t.Fatal(err)
	}
	// Without a floor, the controller scales in to 1 after confirmations...
	for i := 0; i < 4; i++ {
		stepUntilIdle(t, ctl)
	}
	if c.NumNodes() != 1 {
		t.Fatalf("nodes = %d, want 1", c.NumNodes())
	}
	// ...but a manual floor of 3 (a known upcoming promotion) forces the
	// cluster up despite the flat prediction.
	ctl.SetManualFloor(3)
	if ctl.ManualFloor() != 3 {
		t.Fatalf("floor = %d", ctl.ManualFloor())
	}
	for i := 0; i < 10 && c.NumNodes() < 3; i++ {
		stepUntilIdle(t, ctl)
	}
	if c.NumNodes() != 3 {
		t.Fatalf("nodes = %d with floor 3", c.NumNodes())
	}
	// Holding: scale-in plans are infeasible while the floor stands.
	for i := 0; i < 5; i++ {
		stepUntilIdle(t, ctl)
	}
	if c.NumNodes() != 3 {
		t.Fatalf("nodes dropped to %d despite floor", c.NumNodes())
	}
	// Clearing the floor lets the confirmations drain the cluster again.
	ctl.SetManualFloor(0)
	for i := 0; i < 8; i++ {
		stepUntilIdle(t, ctl)
	}
	if c.NumNodes() != 1 {
		t.Errorf("nodes = %d after clearing floor, want 1", c.NumNodes())
	}
	ctl.SetManualFloor(-5)
	if ctl.ManualFloor() != 0 {
		t.Errorf("negative floor should clamp to 0")
	}
}
