// Package profiling wires the standard pprof profiles behind command-line
// flags. Both cmd/bench and cmd/pstore-server expose -cpuprofile,
// -memprofile and -blockprofile through it; the hot-path work in this repo
// (wire codec, batching, executor pooling) was tuned from exactly these
// profiles.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the output paths for each profile kind; empty means off.
type Flags struct {
	CPU   string
	Mem   string
	Block string
}

// Start begins the requested profiles and returns a stop function that
// flushes them; call it exactly once on the way out (it is idempotent-safe
// to call with no profiles requested). Block profiling is sampled at one
// event per 10µs of blocking so it stays cheap enough for live servers.
func Start(f Flags) (stop func(), err error) {
	var cpuFile *os.File
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if f.Block != "" {
		runtime.SetBlockProfileRate(10_000) // one sample per 10µs blocked
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if f.Block != "" {
			writeProfile("block", f.Block)
			runtime.SetBlockProfileRate(0)
		}
		if f.Mem != "" {
			runtime.GC() // flush recent frees into the heap profile
			writeProfile("allocs", f.Mem)
		}
	}, nil
}

func writeProfile(name, path string) {
	out, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
		return
	}
	defer out.Close()
	if err := pprof.Lookup(name).WriteTo(out, 0); err != nil {
		fmt.Fprintf(os.Stderr, "profiling: writing %s profile: %v\n", name, err)
	}
}
