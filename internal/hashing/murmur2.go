// Package hashing provides MurmurHash 2.0, the hash function the paper uses
// to place partitioning keys onto data partitions (§8.1 cites the Java port
// of Austin Appleby's MurmurHash 2.0). Randomly generated keys hashed with
// Murmur2 spread near-uniformly across partitions, which is the basis of
// P-Store's uniformity assumptions.
package hashing

import "encoding/binary"

const (
	m32 = 0x5bd1e995
	r32 = 24
	m64 = 0xc6a4a7935bd1e995
	r64 = 47
)

// Murmur2 computes the 32-bit MurmurHash 2.0 of data with the given seed.
func Murmur2(data []byte, seed uint32) uint32 {
	h := seed ^ uint32(len(data))
	for len(data) >= 4 {
		k := binary.LittleEndian.Uint32(data)
		k *= m32
		k ^= k >> r32
		k *= m32
		h *= m32
		h ^= k
		data = data[4:]
	}
	switch len(data) {
	case 3:
		h ^= uint32(data[2]) << 16
		fallthrough
	case 2:
		h ^= uint32(data[1]) << 8
		fallthrough
	case 1:
		h ^= uint32(data[0])
		h *= m32
	}
	h ^= h >> 13
	h *= m32
	h ^= h >> 15
	return h
}

// Murmur2_64 computes the 64-bit MurmurHash64A of data with the given seed.
func Murmur2_64(data []byte, seed uint64) uint64 {
	h := seed ^ uint64(len(data))*m64
	for len(data) >= 8 {
		k := binary.LittleEndian.Uint64(data)
		k *= m64
		k ^= k >> r64
		k *= m64
		h ^= k
		h *= m64
		data = data[8:]
	}
	if len(data) > 0 {
		for j := len(data) - 1; j >= 0; j-- {
			h ^= uint64(data[j]) << (8 * uint(j))
		}
		h *= m64
	}
	h ^= h >> r64
	h *= m64
	h ^= h >> r64
	return h
}

// PartitionOf maps a string key to one of n partitions using Murmur2 with
// seed 0, the placement rule used throughout this repository.
func PartitionOf(key string, n int) int {
	if n <= 0 {
		return 0
	}
	return int(Murmur2([]byte(key), 0) % uint32(n))
}
