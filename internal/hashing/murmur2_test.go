package hashing

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// Reference vectors computed from the canonical MurmurHash 2.0 /
// MurmurHash64A algorithms (Austin Appleby).
var vectors = []struct {
	data   string
	seed   uint32
	want32 uint32
	want64 uint64
}{
	{"", 0, 0x00000000, 0x0000000000000000},
	{"a", 0, 0x92685f5e, 0x071717d2d36b6b11},
	{"ab", 0, 0x1aa14063, 0x62be85b2fe53d1f8},
	{"abc", 0, 0x13577c9b, 0x9cc9c33498a95efb},
	{"abcd", 0, 0x26873021, 0xec1044c45cc5097a},
	{"hello", 0, 0xe56129cb, 0x1e68d17c457bf117},
	{"hello, world", 0, 0x4b4c9d80, 0x9659ad0699a8465f},
	{"The quick brown fox jumps over the lazy dog", 0, 0x212729d0, 0x5589ca33042a861b},
	{"\x00\x01\x02\x03\x04\x05\x06\x07\x08\t\n\x0b\x0c\r\x0e\x0f", 0, 0x5f3c0743, 0xe6709e192441a2f3},
	{"", 0x9747b28c, 0x106e08d9, 0x8397626cd6895052},
	{"a", 0x9747b28c, 0xa2d0b27c, 0xe96b6245652273ae},
	{"ab", 0x9747b28c, 0x12d8262a, 0x9be5e012c4364087},
	{"abc", 0x9747b28c, 0x1c94221b, 0xa9316c8740c81414},
}

func TestMurmur2Vectors(t *testing.T) {
	for _, v := range vectors {
		if got := Murmur2([]byte(v.data), v.seed); got != v.want32 {
			t.Errorf("Murmur2(%q, %#x) = %#08x, want %#08x", v.data, v.seed, got, v.want32)
		}
		if got := Murmur2_64([]byte(v.data), uint64(v.seed)); got != v.want64 {
			t.Errorf("Murmur2_64(%q, %#x) = %#016x, want %#016x", v.data, v.seed, got, v.want64)
		}
	}
}

func TestPartitionOfRange(t *testing.T) {
	f := func(key string, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := PartitionOf(key, n)
		return p >= 0 && p < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if PartitionOf("x", 0) != 0 {
		t.Error("n=0 should map to 0")
	}
}

func TestPartitionOfDeterministic(t *testing.T) {
	a := PartitionOf("cart-123", 30)
	b := PartitionOf("cart-123", 30)
	if a != b {
		t.Errorf("non-deterministic: %d vs %d", a, b)
	}
}

// TestPartitionUniformity reproduces the spirit of §8.1: random keys hashed
// onto 30 partitions spread nearly uniformly — the standard deviation of
// per-partition counts stays within a few percent of the mean.
func TestPartitionUniformity(t *testing.T) {
	const nPart = 30
	const nKeys = 300000
	counts := make([]float64, nPart)
	for i := 0; i < nKeys; i++ {
		counts[PartitionOf(fmt.Sprintf("key-%d", i), nPart)]++
	}
	mean := float64(nKeys) / nPart
	maxDev, sumSq := 0.0, 0.0
	for _, c := range counts {
		d := (c - mean) / mean
		if math.Abs(d) > maxDev {
			maxDev = math.Abs(d)
		}
		sumSq += d * d
	}
	std := math.Sqrt(sumSq / nPart)
	if std > 0.03 {
		t.Errorf("relative std of partition counts = %.4f, want < 3%%", std)
	}
	if maxDev > 0.06 {
		t.Errorf("max relative deviation = %.4f, want < 6%%", maxDev)
	}
}

func BenchmarkMurmur2(b *testing.B) {
	data := []byte("cart-0123456789abcdef")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Murmur2(data, 0)
	}
}

func BenchmarkMurmur2_64(b *testing.B) {
	data := []byte("cart-0123456789abcdef")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Murmur2_64(data, 0)
	}
}
