package replication

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pstore/internal/metrics"
)

// TestBatchStreamDecodesIdentical is the batching property test: a seeded
// stream of mixed records chunked into batch envelopes of random sizes must
// decode to the byte-identical record payload sequence the unbatched
// stream carries — batching may only change framing, never record bytes.
func TestBatchStreamDecodesIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var frames [][]byte
	var want [][]byte
	lsn := uint64(0)
	for i := 0; i < 200; i++ {
		lsn++
		var rec *Record
		switch rng.Intn(3) {
		case 0:
			rec = &Record{LSN: lsn, Epoch: 1, Kind: RecTxn, Proc: "Put",
				Key: fmt.Sprintf("k%d", rng.Intn(50)), Args: map[string]string{"v": fmt.Sprintf("%d", i)}}
		case 1:
			rec = &Record{LSN: lsn, Epoch: 1, Kind: RecPut, Tab: "T",
				Key: fmt.Sprintf("k%d", rng.Intn(50)), Args: map[string]string{"v": fmt.Sprintf("%d", i)}}
		default:
			rec = &Record{LSN: lsn, Epoch: 1, Kind: RecBucketOut, Bucket: rng.Intn(64)}
		}
		f := encodeFrame(rec)
		frames = append(frames, f)
		p, rest, err := nextBatchRecord(f)
		if err != nil || len(rest) != 0 {
			t.Fatalf("frame %d: self-decode: %v (%d trailing)", i, err, len(rest))
		}
		want = append(want, append([]byte(nil), p...))
	}

	var stream []byte
	for i := 0; i < len(frames); {
		n := 1 + rng.Intn(8)
		if i+n > len(frames) {
			n = len(frames) - i
		}
		chunk := frames[i : i+n]
		nbytes := 0
		for _, f := range chunk {
			nbytes += len(f)
		}
		stream = appendBatchEnvelope(stream, chunk, nbytes)
		i += n
	}

	br := bufio.NewReader(bytes.NewReader(stream))
	var rbuf []byte
	var got [][]byte
	for {
		payload, err := readShipFrame(br, &rbuf)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count, rest, err := splitBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		for j := uint64(0); j < count; j++ {
			var p []byte
			p, rest, err = nextBatchRecord(rest)
			if err != nil {
				t.Fatalf("record %d of batch: %v", j, err)
			}
			got = append(got, append([]byte(nil), p...))
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes after batch", len(rest))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: batched payload differs from unbatched", i)
		}
		gr, err1 := decodeRecord(got[i])
		wr, err2 := decodeRecord(want[i])
		if err1 != nil || err2 != nil {
			t.Fatalf("record %d: decode: %v / %v", i, err1, err2)
		}
		if !reflect.DeepEqual(gr, wr) {
			t.Fatalf("record %d: decoded records differ", i)
		}
	}
}

// TestTornBatchEnvelopeFailsLoudly cuts a batch envelope at every byte
// boundary and miscounts its header: every variant must error, never hand
// back a full batch from torn input.
func TestTornBatchEnvelopeFailsLoudly(t *testing.T) {
	recs := sampleRecords()
	var frames [][]byte
	nbytes := 0
	for _, rec := range recs {
		f := encodeFrame(rec)
		frames = append(frames, f)
		nbytes += len(f)
	}
	env := appendBatchEnvelope(nil, frames, nbytes)
	payload, rest, err := nextBatchRecord(env)
	if err != nil || len(rest) != 0 {
		t.Fatalf("stripping envelope frame prefix: %v (%d trailing)", err, len(rest))
	}

	decodeAll := func(p []byte) (int, error) {
		count, inner, err := splitBatch(p)
		if err != nil {
			return 0, err
		}
		decoded := 0
		for j := uint64(0); j < count; j++ {
			var rp []byte
			rp, inner, err = nextBatchRecord(inner)
			if err != nil {
				return decoded, err
			}
			if _, err = decodeRecord(rp); err != nil {
				return decoded, err
			}
			decoded++
		}
		if len(inner) != 0 {
			return decoded, errShipTrailing
		}
		return decoded, nil
	}

	if n, err := decodeAll(payload); err != nil || n != len(recs) {
		t.Fatalf("intact envelope: decoded %d records, err %v", n, err)
	}
	for cut := 1; cut < len(payload); cut++ {
		if n, err := decodeAll(payload[:cut]); err == nil {
			t.Fatalf("cut at %d/%d: decoded %d records from torn envelope without error", cut, len(payload), n)
		}
	}

	// payload[1] is the single-byte count varint (len(recs) < 128).
	under := append([]byte(nil), payload...)
	under[1] = byte(len(recs) - 1)
	if _, err := decodeAll(under); !errors.Is(err, errShipTrailing) {
		t.Errorf("understated count: %v, want errShipTrailing", err)
	}
	over := append([]byte(nil), payload...)
	over[1] = byte(len(recs) + 1)
	if _, err := decodeAll(over); !errors.Is(err, errShipTruncated) {
		t.Errorf("overstated count: %v, want errShipTruncated", err)
	}
	padded := append(append([]byte(nil), payload...), 0x00)
	if _, err := decodeAll(padded); !errors.Is(err, errShipTrailing) {
		t.Errorf("padded envelope: %v, want errShipTrailing", err)
	}
	empty := appendUvarint([]byte{msgBatch}, 0)
	if _, _, err := splitBatch(empty); err == nil {
		t.Error("empty batch envelope accepted")
	}
}

// TestDuplicateCumulativeAckCompletesOnce drives the feed's ack window with
// duplicate and regressing cumulative acks: every transaction's completion
// must fire exactly once, in LSN order, and the subscriber's ack watermark
// must never move backwards.
func TestDuplicateCumulativeAckCompletesOnce(t *testing.T) {
	f := NewFeed(0, nil, 1, 0, Options{Seed: 1}, newTestEvents())
	defer f.Close()
	att, err := f.Attach(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Sub.Close()

	var mu sync.Mutex
	var done []uint64
	for i := 0; i < 5; i++ {
		f.Append("Put", fmt.Sprintf("k%d", i), map[string]string{"v": "1"}, func(lsn uint64, err error) {
			if err != nil {
				t.Errorf("append LSN %d failed: %v", lsn, err)
			}
			mu.Lock()
			done = append(done, lsn)
			mu.Unlock()
		})
	}
	check := func(stage string, want []uint64) {
		t.Helper()
		mu.Lock()
		defer mu.Unlock()
		if !reflect.DeepEqual(done, want) {
			t.Fatalf("%s: completions %v, want %v", stage, done, want)
		}
	}
	check("before any ack", nil)
	att.Sub.Ack(3)
	check("ack 3", []uint64{1, 2, 3})
	att.Sub.Ack(3)
	check("duplicate ack 3", []uint64{1, 2, 3})
	att.Sub.Ack(2)
	if got := att.Sub.Acked(); got != 3 {
		t.Fatalf("ack watermark regressed to %d after Ack(2)", got)
	}
	check("regressing ack 2", []uint64{1, 2, 3})
	att.Sub.Ack(5)
	check("ack 5", []uint64{1, 2, 3, 4, 5})
}

// TestAckWindowBackpressure fills the feed's unacked window and checks that
// Available sheds with ErrWindowFull (counting the stall) until cumulative
// acks drain it.
func TestAckWindowBackpressure(t *testing.T) {
	events := newTestEvents()
	f := NewFeed(0, nil, 1, 0, Options{Seed: 1, AckWindow: 2}, events)
	defer f.Close()
	att, err := f.Attach(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Sub.Close()

	noop := func(uint64, error) {}
	f.Append("Put", "a", map[string]string{"v": "1"}, noop)
	f.Append("Put", "b", map[string]string{"v": "2"}, noop)
	if err := f.Available(); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("full window: %v, want ErrWindowFull", err)
	}
	if got := events.Get(metrics.EventReplWindowStalls); got != 1 {
		t.Fatalf("window stall count = %d, want 1", got)
	}
	att.Sub.Ack(2)
	if err := f.Available(); err != nil {
		t.Fatalf("drained window still unavailable: %v", err)
	}
}
