// Package replication makes partitions k-safe by shipping the per-partition
// command log to standby replicas: because executors are deterministic
// serial H-Store-style threads, a replica that replays the same commands in
// the same order reaches byte-identical state, so replication costs one log
// stream instead of a data pipeline.
//
// The pieces:
//
//   - Feed: the primary side. It implements engine.CommandLog, assigns each
//     record a log sequence number (LSN) and the partition's current epoch,
//     chains to the partition's durability manager when one exists, retains
//     a bounded tail of encoded records for catch-up, and fans records out
//     to subscribers. A transaction is acknowledged only after it is locally
//     durable AND every live subscriber has acked its LSN (synchronous
//     k-safety) — that is what makes failover lossless.
//   - Hub: a TCP log-shipping server. Replicas connect, subscribe with a
//     (partition, epoch, fromLSN) triple, and receive either an incremental
//     record stream, a disk catch-up (via the durability tail reader), or a
//     full snapshot followed by the live stream. The hub reads acks off the
//     same connection and advances the feed's replication horizon.
//   - Tail: the replica-side client. It dials the hub, subscribes from its
//     applied LSN, applies records through the Replica and acks them,
//     reconnecting with seeded jittered backoff after stream failures.
//   - Replica: a standby partition plus the deterministic apply loop,
//     session-consistent reads (wait until applied ≥ the client's session
//     LSN), epoch fencing (records from a deposed primary are rejected) and
//     promotion to primary.
//
// Epochs implement fencing: every promotion bumps the partition's epoch, a
// replica adopts the highest epoch it has seen and rejects records from any
// lower one, so a deposed primary that limps on can never ack or replicate
// another write.
package replication

//pstore:seeded — reconnect jitter must come from the injected seed so chaos
// runs replay deterministically; wall-clock use is limited to I/O deadlines
// and lag observability, marked where it occurs.

import (
	"errors"
	"time"
)

// Errors surfaced across the subsystem.
var (
	// ErrFenced marks writes rejected because the partition's feed was
	// deposed by a failover: a newer epoch exists, the write must not be
	// acknowledged or shipped.
	ErrFenced = errors.New("replication: primary fenced by a newer epoch")
	// ErrClosed is returned by operations on a closed feed or hub.
	ErrClosed = errors.New("replication: closed")
	// ErrQuorumLost marks writes shed because the primary lost contact with
	// its required subscriber quorum: rather than silently degrade to
	// local-only durability (and diverge if a standby is promoted around
	// it), the primary self-fences into read-only mode until the quorum
	// heals or a failover deposes it. Retryable — the monitor restores the
	// quorum (respawn or promotion) in the background.
	ErrQuorumLost = errors.New("replication: primary lost subscriber quorum")
	// ErrStaleRead marks a session read that timed out waiting for the
	// replica's horizon to cover the client's last written LSN.
	ErrStaleRead = errors.New("replication: replica horizon behind session")
	// ErrReplicaGone marks reads routed to a replica that was killed or
	// promoted out of standby duty.
	ErrReplicaGone = errors.New("replication: replica not serving")
	// ErrWindowFull marks writes pushed back pre-execution because the
	// feed's sliding window of unacked transactions is full — the
	// replication pipeline is saturated end to end (ship, standby fsync,
	// ack) and admitting more would only grow an unbounded in-flight set.
	// Retryable: the window drains as cumulative acks advance, so the
	// router's bounded retry loop absorbs the stall.
	ErrWindowFull = errors.New("replication: ack window full")
	// errStaleEpoch is the hub's rejection of a subscriber that has seen a
	// newer epoch than the feed — the feed belongs to a deposed primary.
	errStaleEpoch = errors.New("replication: subscriber epoch newer than feed")
)

// Options tunes the replication subsystem. The zero value selects the
// defaults documented per field.
type Options struct {
	// AckTimeout is how long the hub waits for a subscriber to make ack
	// progress on outstanding records before deposing it from the ack
	// quorum. Default 2s.
	AckTimeout time.Duration
	// MaxBuffer bounds the encoded records a feed retains for incremental
	// catch-up; a live subscriber falling further behind is deposed and must
	// resync. Default 8192.
	MaxBuffer int
	// StaleReadTimeout bounds how long a session read waits for the
	// replica's applied LSN to reach the session's LSN before the caller
	// falls back to the primary. Default 2s.
	StaleReadTimeout time.Duration
	// DialTimeout bounds each tail connection attempt. Default 2s.
	DialTimeout time.Duration
	// RetryBase is the tail's reconnect backoff base (doubled per attempt
	// with seeded ±50% jitter, capped at 1s). Default 10ms.
	RetryBase time.Duration
	// Seed seeds the tails' reconnect jitter so chaos runs are replayable.
	Seed int64
	// HealthInterval is the cadence of the cluster's primary health probe
	// loop. Default 50ms.
	HealthInterval time.Duration
	// ProbeTimeout is the deadline on one health probe of a primary
	// executor. Default 250ms — far above chaos freeze windows, so brief
	// injected freezes never trip a failover.
	ProbeTimeout time.Duration
	// ProbeStrikes is how many consecutive probe timeouts depose a hung
	// (but not stopped) primary. Default 3.
	ProbeStrikes int
	// RequiredSubscribers is the feed's ack-quorum size (the cluster wires
	// it to the replication factor k). Once a feed has seen this many live
	// subscribers simultaneously — the quorum is "armed" — dropping below
	// it self-fences the primary: new writes shed with ErrQuorumLost and
	// in-flight writes stall until the quorum heals or a failover fences
	// the feed. Before arming (fresh cluster, freshly promoted primary) the
	// feed degrades to local durability alone, availability over
	// redundancy. Zero disables self-fencing.
	RequiredSubscribers int
	// MaxBatchRecords caps the records coalesced into one multi-record
	// ship frame: everything admitted to a subscriber's queue during an
	// in-flight send is shipped as a single batch envelope (one write
	// syscall, one standby fsync, one cumulative ack), up to this many
	// records. Default 128.
	MaxBatchRecords int
	// MaxBatchBytes caps a batch envelope's payload bytes, so one oversized
	// record burst cannot stall the ack pipeline behind a megabyte frame.
	// Default 64 KiB — sized to the ship stream's write buffer, keeping
	// one batch ≈ one syscall.
	MaxBatchBytes int
	// AckWindow bounds the feed's sliding window of unacked transactions
	// (appended, not yet both locally durable and replica-acked). When the
	// window is full, Available reports ErrWindowFull and the router
	// backpressures writes pre-execution rather than growing an unbounded
	// in-flight set. Default 4096.
	AckWindow int
}

// Normalized fills defaults.
func (o Options) Normalized() Options {
	if o.AckTimeout <= 0 {
		o.AckTimeout = 2 * time.Second
	}
	if o.MaxBuffer <= 0 {
		o.MaxBuffer = 8192
	}
	if o.StaleReadTimeout <= 0 {
		o.StaleReadTimeout = 2 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 10 * time.Millisecond
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 50 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 250 * time.Millisecond
	}
	if o.ProbeStrikes <= 0 {
		o.ProbeStrikes = 3
	}
	if o.MaxBatchRecords <= 0 {
		o.MaxBatchRecords = 128
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 64 << 10
	}
	if o.AckWindow <= 0 {
		o.AckWindow = 4096
	}
	return o
}
