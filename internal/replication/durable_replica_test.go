package replication

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pstore/internal/durability"
	"pstore/internal/metrics"
)

func openDurableReplica(t *testing.T, rig *shipRig, dir string) *Replica {
	t.Helper()
	rep, err := OpenReplica(0, 16, "standby", testReg(), dir, durability.Options{}, rig.opts, newTestEvents())
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	return rep
}

func waitAck(t *testing.T, rep *Replica, min uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for rep.AckLSN() < min {
		if time.Now().After(deadline) {
			t.Fatalf("durable horizon stuck at %d, want ≥ %d", rep.AckLSN(), min)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDurableReplicaRestartReplaysLocalLog is the S4 restart contract: a
// killed durable standby respawns from its own command log — no snapshot —
// resubscribes from its durable horizon, and converges byte-identical to
// both the primary and a fault-free in-memory replica that saw the same
// stream with no restart.
func TestDurableReplicaRestartReplaysLocalLog(t *testing.T) {
	rig := newShipRig(t, Options{Seed: 1})
	dir := t.TempDir()

	// Fault-free oracle: an in-memory replica on the same feed, never killed.
	oracle, _ := startReplica(t, rig, nil)

	rep1 := openDurableReplica(t, rig, dir)
	tail1 := StartTail(rig.hub.Addr(), rep1, nil, rig.opts, newTestEvents())
	for i := 0; i < 40; i++ {
		rig.write(fmt.Sprintf("a%d", i))
	}
	if err := rep1.WaitApplied(40, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	waitAck(t, rep1, 40) // tail syncs at the drain boundary; acks are durable

	// Kill -9: the log is crash-abandoned with its fsynced state intact.
	rep1.Kill()
	tail1.Stop()

	// Respawn recovers from the local log alone — before any wire contact.
	rep2 := openDurableReplica(t, rig, dir)
	if got := rep2.Applied(); got != 40 {
		t.Fatalf("recovered Applied = %d, want 40 (local log replay)", got)
	}
	if !rep2.Seeded() {
		t.Fatal("recovered replica not Seeded: it would be skipped for promotion")
	}
	if got := rep2.Epoch(); got != 1 {
		t.Fatalf("recovered Epoch = %d, want 1 (epoch sidecar)", got)
	}
	if got, want := encodeReplica(rep2), rig.encodePrimary(); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs from primary before wire catch-up")
	}

	// Wire catch-up must be incremental from the durable horizon, not a
	// snapshot resync.
	tailEvents := newTestEvents()
	tail2 := StartTail(rig.hub.Addr(), rep2, nil, rig.opts, tailEvents)
	t.Cleanup(func() {
		rep2.Kill()
		tail2.Stop()
	})
	for i := 0; i < 20; i++ {
		rig.write(fmt.Sprintf("b%d", i))
	}
	if err := rep2.WaitApplied(60, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := oracle.WaitApplied(60, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := tailEvents.Get(metrics.EventReplResyncs); got != 0 {
		t.Errorf("restart caused %d snapshot resyncs, want 0 (incremental catch-up)", got)
	}
	if got, want := encodeReplica(rep2), rig.encodePrimary(); !bytes.Equal(got, want) {
		t.Fatal("restarted replica differs from primary after catch-up")
	}
	if got, want := encodeReplica(rep2), encodeReplica(oracle); !bytes.Equal(got, want) {
		t.Fatal("restarted replica differs from the fault-free oracle")
	}
}

// TestDurableReplicaApplyIdempotencyAndGaps: the Apply contract a catch-up
// overlap depends on — duplicates skip without touching state or the log,
// gaps refuse, stale epochs fence.
func TestDurableReplicaApplyIdempotencyAndGaps(t *testing.T) {
	rig := newShipRig(t, Options{Seed: 1}) // only for opts/registry conventions
	dir := t.TempDir()
	rep := openDurableReplica(t, rig, dir)
	defer rep.Kill()

	rec := func(lsn, epoch uint64, key string) *Record {
		return &Record{LSN: lsn, Epoch: epoch, Kind: RecTxn, Proc: "Put", Key: key,
			Args: map[string]string{"v": key}}
	}
	// The tail's protocol: snapshot Apply + LogRecord only on advance.
	shipRec := func(r *Record) error {
		applied := rep.Applied()
		if err := rep.Apply(r); err != nil {
			return err
		}
		if r.LSN > applied {
			return rep.LogRecord(r)
		}
		return nil
	}
	for i := uint64(1); i <= 3; i++ {
		if err := shipRec(rec(i, 1, fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	// Duplicate re-delivery (catch-up overlap): skipped, nothing advances.
	if err := shipRec(rec(2, 1, "k2-dup")); err != nil {
		t.Fatalf("duplicate apply: %v", err)
	}
	if got := rep.Applied(); got != 3 {
		t.Fatalf("Applied after duplicate = %d, want 3", got)
	}
	// Gap: refused with an error naming the hole, state untouched.
	if err := shipRec(rec(5, 1, "k5")); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gap apply = %v, want gap error", err)
	}
	if got := rep.Applied(); got != 3 {
		t.Fatalf("Applied after gap = %d, want 3", got)
	}
	// Stale epoch: fenced.
	if err := rep.Apply(rec(4, 0, "stale")); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch apply = %v, want ErrFenced", err)
	}

	// The log holds exactly the three advancing records: a restart replays
	// them and nothing else (the duplicate never reached the log).
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := rep.AckLSN(); got != 3 {
		t.Fatalf("AckLSN after Sync = %d, want 3", got)
	}
	before := encodeReplica(rep)
	rep.Kill()
	rep2 := openDurableReplica(t, rig, dir)
	defer rep2.Kill()
	if got := rep2.Applied(); got != 3 {
		t.Fatalf("restart Applied = %d, want 3", got)
	}
	if !bytes.Equal(encodeReplica(rep2), before) {
		t.Fatal("restart state differs: duplicate or gap leaked into the log")
	}
}

// TestDurableReplicaAckIsDurableHorizon: acks promise crash survival, so
// AckLSN must trail Applied until a Sync fsyncs the log.
func TestDurableReplicaAckIsDurableHorizon(t *testing.T) {
	rig := newShipRig(t, Options{Seed: 1})
	dir := t.TempDir()
	// Huge group-commit interval: nothing becomes durable without Sync.
	rep, err := OpenReplica(0, 16, "standby", testReg(), dir,
		durability.Options{GroupCommitInterval: time.Hour}, rig.opts, newTestEvents())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Kill()

	r := &Record{LSN: 1, Epoch: 1, Kind: RecTxn, Proc: "Put", Key: "k",
		Args: map[string]string{"v": "1"}}
	if err := rep.Apply(r); err != nil {
		t.Fatal(err)
	}
	if err := rep.LogRecord(r); err != nil {
		t.Fatal(err)
	}
	if got := rep.AckLSN(); got != 0 {
		t.Fatalf("AckLSN before Sync = %d, want 0 (not yet fsynced)", got)
	}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := rep.AckLSN(); got != 1 {
		t.Fatalf("AckLSN after Sync = %d, want 1", got)
	}
	// An in-memory replica acks its applied horizon directly.
	mem := NewReplica(0, 16, "standby", testReg(), rig.opts, newTestEvents())
	defer mem.Kill()
	if err := mem.Apply(r); err != nil {
		t.Fatal(err)
	}
	if got := mem.AckLSN(); got != 1 {
		t.Fatalf("in-memory AckLSN = %d, want 1", got)
	}
}
