package replication

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pstore/internal/storage"
)

func seededReplica(t *testing.T, nBuckets int) *Replica {
	t.Helper()
	r := NewReplica(0, nBuckets, "n", testReg(), Options{Seed: 1}, newTestEvents())
	snap := &Snapshot{Tables: []string{"T"}, LSN: 0, Epoch: 1}
	for b := 0; b < nBuckets; b++ {
		snap.Buckets = append(snap.Buckets, &storage.BucketData{Bucket: b, Tables: map[string][]storage.Row{}})
	}
	if err := r.InstallSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	return r
}

func txnRec(lsn, epoch uint64, key string) *Record {
	return &Record{LSN: lsn, Epoch: epoch, Kind: RecTxn, Proc: "Put", Key: key, Args: map[string]string{"v": key}}
}

func TestReplicaApplyIdempotentAndGapDetecting(t *testing.T) {
	r := seededReplica(t, 8)
	if err := r.Apply(txnRec(1, 1, "a")); err != nil {
		t.Fatal(err)
	}
	// A duplicate from a catch-up overlap is skipped, not re-applied.
	if err := r.Apply(txnRec(1, 1, "a")); err != nil {
		t.Fatalf("duplicate apply: %v", err)
	}
	if got := r.Applied(); got != 1 {
		t.Fatalf("applied = %d, want 1", got)
	}
	// A gap forces a resync; silently skipping it would diverge the replica.
	err := r.Apply(txnRec(3, 1, "c"))
	if err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gap apply: %v, want gap error", err)
	}
	if err := r.Apply(txnRec(2, 1, "b")); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaFencesOldEpoch(t *testing.T) {
	r := seededReplica(t, 8)
	if err := r.Apply(txnRec(1, 3, "a")); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(txnRec(2, 2, "b")); !errors.Is(err, ErrFenced) {
		t.Fatalf("lower-epoch record: %v, want ErrFenced", err)
	}
	if got := r.Epoch(); got != 3 {
		t.Fatalf("epoch = %d, want 3", got)
	}
}

func TestReplicaSeededFlag(t *testing.T) {
	r := NewReplica(0, 8, "n", testReg(), Options{Seed: 1}, newTestEvents())
	if r.Seeded() {
		t.Fatal("fresh replica reports seeded")
	}
	if err := r.Apply(&Record{LSN: 1, Epoch: 1, Kind: RecBucketIn, Bucket: 0,
		Data: &storage.BucketData{Bucket: 0, Tables: map[string][]storage.Row{}}}); err != nil {
		t.Fatal(err)
	}
	if !r.Seeded() {
		t.Fatal("replica not seeded after first applied record")
	}
}

func TestReplicaSessionRead(t *testing.T) {
	r := seededReplica(t, 8)
	if err := r.Apply(txnRec(1, 1, "k")); err != nil {
		t.Fatal(err)
	}
	out, err := r.SessionRead("Get", "k", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out["v"] != "k" {
		t.Fatalf("read = %q, want %q", out["v"], "k")
	}
	// A session LSN past the horizon times out with ErrStaleRead.
	r2 := seededReplica(t, 8)
	r2.opts.StaleReadTimeout = 10 * time.Millisecond
	if _, err := r2.SessionRead("Get", "k", nil, 99); !errors.Is(err, ErrStaleRead) {
		t.Fatalf("stale read: %v, want ErrStaleRead", err)
	}
	// A writing procedure routed to a replica must fail, not diverge it.
	if _, err := r.SessionRead("Put", "k2", map[string]string{"v": "x"}, 0); err == nil {
		t.Fatal("write procedure on replica succeeded")
	}
	if _, ok, _ := readRow(r, "T", "k2"); ok {
		t.Fatal("rejected write procedure still mutated the replica")
	}
}

func readRow(r *Replica, table, key string) (storage.Row, bool, error) {
	var row storage.Row
	var ok bool
	var err error
	r.Inspect(func(p *storage.Partition) { row, ok, err = p.Get(table, key) })
	return row, ok, err
}

func TestReplicaWaitAppliedUnblocksOnApply(t *testing.T) {
	r := seededReplica(t, 8)
	done := make(chan error, 1)
	go func() { done <- r.WaitApplied(1, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	if err := r.Apply(txnRec(1, 1, "a")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitApplied never unblocked")
	}
}

func TestReplicaKillUnblocksWaiters(t *testing.T) {
	r := seededReplica(t, 8)
	done := make(chan error, 1)
	go func() { done <- r.WaitApplied(5, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	r.Kill()
	select {
	case err := <-done:
		if !errors.Is(err, ErrReplicaGone) {
			t.Fatalf("wait after kill: %v, want ErrReplicaGone", err)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitApplied never unblocked after Kill")
	}
	if err := r.Apply(txnRec(1, 1, "a")); !errors.Is(err, ErrReplicaGone) {
		t.Fatalf("apply after kill: %v, want ErrReplicaGone", err)
	}
}

// TestReplicaPromoteHandsOffState: promotion surrenders the partition at
// the applied horizon and retires the standby.
func TestReplicaPromoteHandsOffState(t *testing.T) {
	r := seededReplica(t, 8)
	for i := uint64(1); i <= 3; i++ {
		if err := r.Apply(txnRec(i, 2, "k")); err != nil {
			t.Fatal(err)
		}
	}
	part, applied, epoch, mgr := r.Promote()
	if applied != 3 || epoch != 2 {
		t.Fatalf("promote = (lsn %d, epoch %d), want (3, 2)", applied, epoch)
	}
	if mgr != nil {
		t.Fatal("non-durable replica handed off a durability manager")
	}
	if _, ok, _ := part.Get("T", "k"); !ok {
		t.Fatal("promoted partition missing applied row")
	}
	if r.Serving() {
		t.Fatal("replica still serving after promotion")
	}
}
