package replication

import (
	"fmt"
	"sync"
	"time"

	"pstore/internal/engine"
	"pstore/internal/metrics"
	"pstore/internal/storage"
)

// Replica is a standby copy of one partition. Records arrive in LSN order
// from a Tail and are applied deterministically; session-consistent reads
// wait until the applied horizon covers the caller's last written LSN.
// All state is guarded by mu — the replica's serial "executor".
type Replica struct {
	part     int
	nBuckets int
	node     string
	reg      *engine.Registry
	opts     Options
	events   *metrics.Events

	mu      sync.Mutex
	p       *storage.Partition
	applied uint64
	epoch   uint64
	serving bool
	seeded  bool
	notify  chan struct{} // closed and replaced on every apply
}

// NewReplica creates an empty standby for the partition, hosted on the
// named node. It owns no buckets until a snapshot or bucket-in records
// arrive.
func NewReplica(part, nBuckets int, node string, reg *engine.Registry, opts Options, events *metrics.Events) *Replica {
	return &Replica{
		part:     part,
		nBuckets: nBuckets,
		node:     node,
		reg:      reg,
		opts:     opts.Normalized(),
		events:   events,
		p:        storage.NewPartition(part, nBuckets, nil),
		serving:  true,
		notify:   make(chan struct{}),
	}
}

// Partition returns the replica's partition ID.
func (r *Replica) Partition() int { return r.part }

// Node returns the node hosting the replica.
func (r *Replica) Node() string { return r.node }

// Applied returns the replica's applied LSN horizon.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Epoch returns the highest primary epoch the replica has seen.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Serving reports whether the replica still serves its standby role.
func (r *Replica) Serving() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.serving
}

// Seeded reports whether the replica has ever synced state from its
// primary — via snapshot install or a first applied record. An unseeded
// replica holds nothing and is not a promotion candidate.
func (r *Replica) Seeded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seeded
}

// InstallSnapshot replaces the replica's entire state with a consistent
// cut — the full-resync seeding path.
func (r *Replica) InstallSnapshot(snap *Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.serving {
		return ErrReplicaGone
	}
	p := storage.NewPartition(r.part, r.nBuckets, nil)
	for _, t := range snap.Tables {
		p.CreateTable(t)
	}
	for _, b := range snap.Buckets {
		if err := p.ApplyBucket(b); err != nil {
			return err
		}
	}
	r.p = p
	r.applied = snap.LSN
	if snap.Epoch > r.epoch {
		r.epoch = snap.Epoch
	}
	r.seeded = true
	r.wakeLocked()
	return nil
}

// Apply replays one shipped record. It is the replica's serial apply loop —
// the standby twin of the primary's executor, so pstore-vet's never-block
// analysis covers it: nothing here may sleep, touch the network, or block
// on a channel.
//
// Records are idempotent at the LSN level (duplicates skip) and fenced at
// the epoch level (records from a deposed primary are rejected); a gap
// forces the caller to resync.
//
//pstore:executor
func (r *Replica) Apply(rec *Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.serving {
		return ErrReplicaGone
	}
	if rec.Epoch < r.epoch {
		return ErrFenced
	}
	if rec.Epoch > r.epoch {
		r.epoch = rec.Epoch
	}
	if rec.LSN <= r.applied {
		return nil // duplicate from a catch-up overlap
	}
	if rec.LSN != r.applied+1 {
		return fmt.Errorf("replication: partition %d replica: gap at LSN %d (applied %d)", r.part, rec.LSN, r.applied)
	}
	if err := r.applyLocked(rec); err != nil {
		return err
	}
	r.applied = rec.LSN
	r.seeded = true
	r.wakeLocked()
	return nil
}

func (r *Replica) applyLocked(rec *Record) error {
	switch rec.Kind {
	case RecTxn:
		if !r.p.OwnsKey(rec.Key) {
			return nil // logged just before the bucket left this partition
		}
		return engine.ReplayTxn(r.reg, r.p, rec.Proc, rec.Key, rec.Args)
	case RecPut:
		if !r.p.OwnsKey(rec.Key) {
			return nil
		}
		r.p.CreateTable(rec.Tab)
		return r.p.Put(rec.Tab, rec.Key, rec.Args)
	case RecBucketOut:
		if !r.p.Owns(rec.Bucket) {
			return nil
		}
		return r.p.DropBucket(rec.Bucket)
	case RecBucketIn:
		// Replace-then-apply keeps the record idempotent against a stale
		// copy left by an earlier seeding race.
		if r.p.Owns(rec.Bucket) {
			if err := r.p.DropBucket(rec.Bucket); err != nil {
				return err
			}
		}
		return r.p.ApplyBucket(rec.Data)
	default:
		return fmt.Errorf("replication: unknown record kind %d", rec.Kind)
	}
}

func (r *Replica) wakeLocked() {
	close(r.notify)
	r.notify = make(chan struct{})
}

// WaitApplied blocks until the replica's applied LSN reaches min, the
// timeout passes (ErrStaleRead) or the replica stops serving.
func (r *Replica) WaitApplied(min uint64, timeout time.Duration) error {
	r.mu.Lock()
	if r.applied >= min && r.serving {
		r.mu.Unlock()
		return nil
	}
	r.events.Add(metrics.EventReplStaleWaits, 1)
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		if !r.serving {
			r.mu.Unlock()
			return ErrReplicaGone
		}
		if r.applied >= min {
			r.mu.Unlock()
			return nil
		}
		ch := r.notify
		r.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			return ErrStaleRead
		}
		r.mu.Lock()
	}
}

// SessionRead runs a read-only stored procedure against the replica after
// waiting for its horizon to cover the session's minLSN. The partition is
// put in read-only mode for the call, so a mistakenly routed writing
// procedure fails instead of silently diverging the replica.
func (r *Replica) SessionRead(proc, key string, args map[string]string, minLSN uint64) (map[string]string, error) {
	if err := r.WaitApplied(minLSN, r.opts.StaleReadTimeout); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.serving {
		return nil, ErrReplicaGone
	}
	r.p.SetReadOnly(true)
	out, err := engine.ReadOnlyCall(r.reg, r.p, proc, key, args)
	r.p.SetReadOnly(false)
	r.events.Add(metrics.EventReplicaReads, 1)
	return out, err
}

// Promote takes the replica out of standby duty and hands its partition to
// the caller, which builds a primary from it: the fast failover path — no
// disk replay, the in-memory state is already at the applied horizon.
// Returns the partition, the applied LSN and the epoch the replica had
// seen.
func (r *Replica) Promote() (*storage.Partition, uint64, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.serving = false
	r.wakeLocked()
	p := r.p
	r.p = storage.NewPartition(r.part, r.nBuckets, nil)
	return p, r.applied, r.epoch
}

// Kill stops the replica serving (its host node died). Waiters unblock
// with ErrReplicaGone.
func (r *Replica) Kill() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.serving = false
	r.wakeLocked()
}

// Inspect runs fn with exclusive access to the replica's partition —
// verification hooks (content checksums) only; fn must not mutate.
func (r *Replica) Inspect(fn func(p *storage.Partition)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.p)
}
