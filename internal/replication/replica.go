package replication

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"pstore/internal/durability"
	"pstore/internal/engine"
	"pstore/internal/metrics"
	"pstore/internal/storage"
)

// Replica is a standby copy of one partition. Records arrive in LSN order
// from a Tail and are applied deterministically; session-consistent reads
// wait until the applied horizon covers the caller's last written LSN.
// All state is guarded by mu — the replica's serial "executor".
//
// A durable replica (OpenReplica) additionally writes every applied record
// to its own command log, so a promoted standby that dies before taking a
// snapshot recovers to its replicated horizon instead of losing acked
// writes, and a respawned standby replays its local log before any wire
// catch-up. Its acks advance only to the locally durable horizon — what
// the primary counts as replicated is exactly what a double fault cannot
// lose.
type Replica struct {
	part     int
	nBuckets int
	node     string
	reg      *engine.Registry
	opts     Options
	events   *metrics.Events

	mu      sync.Mutex
	p       *storage.Partition
	applied uint64
	epoch   uint64
	serving bool
	seeded  bool
	notify  chan struct{} // closed and replaced on every apply

	mgr            *durability.Manager // optional: the replica's own command log
	dir            string
	durable        uint64 // highest LSN known fsynced in the local log
	persistedEpoch uint64 // epoch recorded in the dir's sidecar file
}

// NewReplica creates an empty standby for the partition, hosted on the
// named node. It owns no buckets until a snapshot or bucket-in records
// arrive.
func NewReplica(part, nBuckets int, node string, reg *engine.Registry, opts Options, events *metrics.Events) *Replica {
	return &Replica{
		part:     part,
		nBuckets: nBuckets,
		node:     node,
		reg:      reg,
		opts:     opts.Normalized(),
		events:   events,
		p:        storage.NewPartition(part, nBuckets, nil),
		serving:  true,
		notify:   make(chan struct{}),
	}
}

// OpenReplica creates a durable standby backed by its own command log
// under dir. If the directory holds prior state (the standby is respawning
// after a kill), it is recovered first — snapshot plus local log replay —
// so the replica resubscribes from its durable horizon and the wire only
// carries what the local log does not already hold.
func OpenReplica(part, nBuckets int, node string, reg *engine.Registry, dir string, dopts durability.Options, opts Options, events *metrics.Events) (*Replica, error) {
	mgr, err := durability.Open(dir, part, dopts)
	if err != nil {
		return nil, err
	}
	p := storage.NewPartition(part, nBuckets, nil)
	stats, err := mgr.Recover(p, reg)
	if err != nil {
		mgr.Crash()
		return nil, err
	}
	applied := mgr.Seq()
	epoch, err := readEpochFile(dir)
	if err != nil {
		mgr.Crash()
		return nil, err
	}
	return &Replica{
		part:           part,
		nBuckets:       nBuckets,
		node:           node,
		reg:            reg,
		opts:           opts.Normalized(),
		events:         events,
		p:              p,
		applied:        applied,
		epoch:          epoch,
		serving:        true,
		seeded:         applied > 0 || stats.SnapshotLoaded,
		notify:         make(chan struct{}),
		mgr:            mgr,
		dir:            dir,
		durable:        applied,
		persistedEpoch: epoch,
	}, nil
}

// epochFile is the sidecar recording the highest epoch the replica has
// seen — the durability log's records carry no epochs, but resubscribing
// after a local-log recovery needs the exact epoch or the feed forces a
// full snapshot resync.
const epochFile = "epoch"

func readEpochFile(dir string) (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(dir, epochFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
}

func writeEpochFile(dir string, epoch uint64) error {
	tmp := filepath.Join(dir, epochFile+".tmp")
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(epoch, 10)), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, epochFile))
}

// Partition returns the replica's partition ID.
func (r *Replica) Partition() int { return r.part }

// Node returns the node hosting the replica.
func (r *Replica) Node() string { return r.node }

// Applied returns the replica's applied LSN horizon.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// AckLSN returns the horizon the replica may acknowledge to its primary:
// the locally durable LSN for a durable replica (an ack is a promise the
// record survives this replica's crash), the applied LSN otherwise.
func (r *Replica) AckLSN() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.mgr == nil {
		return r.applied
	}
	return r.durable
}

// Durable reports whether the replica keeps its own command log.
func (r *Replica) Durable() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mgr != nil
}

// Dir returns the durable replica's log directory ("" when in-memory).
func (r *Replica) Dir() string { return r.dir }

// Epoch returns the highest primary epoch the replica has seen.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Serving reports whether the replica still serves its standby role.
func (r *Replica) Serving() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.serving
}

// Seeded reports whether the replica has ever synced state from its
// primary — via snapshot install or a first applied record. An unseeded
// replica holds nothing and is not a promotion candidate.
func (r *Replica) Seeded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seeded
}

// InstallSnapshot replaces the replica's entire state with a consistent
// cut — the full-resync seeding path.
func (r *Replica) InstallSnapshot(snap *Snapshot) error {
	// Drain pending durable callbacks before taking r.mu: Snapshot()
	// below rotates the log, and rotation runs any detached callbacks on
	// this goroutine — advanceDurable re-taking r.mu would self-deadlock.
	// The tail's seeding goroutine is the only appender, so nothing can
	// queue new callbacks between this flush and the install.
	r.mu.Lock()
	mgr := r.mgr
	r.mu.Unlock()
	if mgr != nil {
		if err := mgr.Flush(); err != nil {
			return err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.serving {
		return ErrReplicaGone
	}
	p := storage.NewPartition(r.part, r.nBuckets, nil)
	for _, t := range snap.Tables {
		p.CreateTable(t)
	}
	for _, b := range snap.Buckets {
		if err := p.ApplyBucket(b); err != nil {
			return err
		}
	}
	r.p = p
	r.applied = snap.LSN
	if snap.Epoch > r.epoch {
		r.epoch = snap.Epoch
	}
	r.seeded = true
	r.wakeLocked()
	if r.mgr != nil {
		// Re-baseline the local log at the snapshot cut: everything before
		// it is superseded (and may belong to a stale epoch's history).
		// Runs on the tail's seeding path, never the apply hot path.
		r.mgr.SetBaseSeq(snap.LSN)
		if err := r.mgr.Snapshot(r.p); err != nil { //pstore:ignore lockorder — the Flush above drained every pending durable callback and the seeding tail is the only appender, so this rotation finds no callbacks to run under r.mu
			return err
		}
		r.durable = snap.LSN
		if r.epoch > r.persistedEpoch {
			if err := writeEpochFile(r.dir, r.epoch); err != nil {
				return err
			}
			r.persistedEpoch = r.epoch
		}
	}
	return nil
}

// Apply replays one shipped record. It is the replica's serial apply loop —
// the standby twin of the primary's executor, so pstore-vet's never-block
// analysis covers it: nothing here may sleep, touch the network, or block
// on a channel.
//
// Records are idempotent at the LSN level (duplicates skip) and fenced at
// the epoch level (records from a deposed primary are rejected); a gap
// forces the caller to resync.
//
//pstore:executor
func (r *Replica) Apply(rec *Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.serving {
		return ErrReplicaGone
	}
	if rec.Epoch < r.epoch {
		return ErrFenced
	}
	if rec.Epoch > r.epoch {
		r.epoch = rec.Epoch
	}
	if rec.LSN <= r.applied {
		return nil // duplicate from a catch-up overlap
	}
	if rec.LSN != r.applied+1 {
		return fmt.Errorf("replication: partition %d replica: gap at LSN %d (applied %d)", r.part, rec.LSN, r.applied)
	}
	if err := r.applyLocked(rec); err != nil {
		return err
	}
	r.applied = rec.LSN
	r.seeded = true
	r.wakeLocked()
	return nil
}

func (r *Replica) applyLocked(rec *Record) error {
	switch rec.Kind {
	case RecTxn:
		if !r.p.OwnsKey(rec.Key) {
			return nil // logged just before the bucket left this partition
		}
		return engine.ReplayTxn(r.reg, r.p, rec.Proc, rec.Key, rec.Args)
	case RecPut:
		if !r.p.OwnsKey(rec.Key) {
			return nil
		}
		r.p.CreateTable(rec.Tab)
		return r.p.Put(rec.Tab, rec.Key, rec.Args)
	case RecBucketOut:
		if !r.p.Owns(rec.Bucket) {
			return nil
		}
		return r.p.DropBucket(rec.Bucket)
	case RecBucketIn:
		// Replace-then-apply keeps the record idempotent against a stale
		// copy left by an earlier seeding race.
		if r.p.Owns(rec.Bucket) {
			if err := r.p.DropBucket(rec.Bucket); err != nil {
				return err
			}
		}
		return r.p.ApplyBucket(rec.Data)
	default:
		return fmt.Errorf("replication: unknown record kind %d", rec.Kind)
	}
}

func (r *Replica) wakeLocked() {
	close(r.notify)
	r.notify = make(chan struct{})
}

// LogRecord appends one freshly applied record to the replica's own
// command log. The tail calls it after a successful, advancing Apply
// (never for duplicate-skips, which are already in the log) — keeping the
// blocking bucket-record fsyncs off the Apply path, which pstore-vet holds
// to the executor never-block rule. Log seq stays aligned with the
// replica's applied LSN; bucket records fsync synchronously exactly as
// they do on a primary.
func (r *Replica) LogRecord(rec *Record) error {
	r.mu.Lock()
	mgr := r.mgr
	r.mu.Unlock()
	if mgr == nil {
		return nil
	}
	var err error
	switch rec.Kind {
	case RecTxn:
		mgr.Append(rec.Proc, rec.Key, rec.Args, func(lsn uint64, aerr error) {
			if aerr == nil {
				r.advanceDurable(lsn)
			}
		})
	case RecPut:
		_, err = mgr.AppendPut(rec.Tab, rec.Key, rec.Args)
	case RecBucketOut:
		if err = mgr.LogBucketOut(rec.Bucket); err == nil {
			r.advanceDurable(rec.LSN)
		}
	case RecBucketIn:
		if err = mgr.LogBucketIn(rec.Data); err == nil {
			r.advanceDurable(rec.LSN)
		}
	default:
		err = fmt.Errorf("replication: unknown record kind %d", rec.Kind)
	}
	if err != nil {
		return err
	}
	if rec.Epoch > r.persistedEpochSnapshot() {
		r.mu.Lock()
		dir, epoch := r.dir, rec.Epoch
		r.mu.Unlock()
		if werr := writeEpochFile(dir, epoch); werr != nil {
			return werr
		}
		r.mu.Lock()
		if epoch > r.persistedEpoch {
			r.persistedEpoch = epoch
		}
		r.mu.Unlock()
	}
	return nil
}

func (r *Replica) persistedEpochSnapshot() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.persistedEpoch
}

func (r *Replica) advanceDurable(lsn uint64) {
	r.mu.Lock()
	if lsn > r.durable {
		r.durable = lsn
	}
	r.mu.Unlock()
}

// Sync flushes the replica's log and advances the durable (ackable)
// horizon to the applied LSN as of the flush. The tail calls it at
// queue-drain boundaries before acking, so acks cost one fsync per batch
// rather than waiting out the group-commit timer. No-op for in-memory
// replicas.
func (r *Replica) Sync() error {
	r.mu.Lock()
	mgr, applied := r.mgr, r.applied
	r.mu.Unlock()
	if mgr == nil {
		return nil
	}
	// Everything applied was also appended to the log (LogRecord runs on
	// the same goroutine as Apply), so the flush covers `applied`.
	if err := mgr.Flush(); err != nil {
		return err
	}
	r.advanceDurable(applied)
	return nil
}

// SyncAsync requests a log flush covering everything applied so far and
// invokes cb when it lands, advancing the durable (ackable) horizon first.
// The tail uses it to pipeline standby group commits: batch N+1 applies
// while batch N's fsync is in flight, and the ack rides the flush callback
// (which runs on the WAL's group-commit goroutine). For an in-memory
// replica cb runs synchronously on the caller.
func (r *Replica) SyncAsync(cb func(error)) {
	r.mu.Lock()
	mgr, applied := r.mgr, r.applied
	r.mu.Unlock()
	if mgr == nil {
		cb(nil)
		return
	}
	// Everything applied was also appended to the log (LogRecord runs on
	// the same goroutine as Apply), so the flush covers `applied`.
	mgr.FlushAsync(func(err error) {
		if err == nil {
			r.advanceDurable(applied)
		}
		cb(err)
	})
}

// WaitApplied blocks until the replica's applied LSN reaches min, the
// timeout passes (ErrStaleRead) or the replica stops serving.
func (r *Replica) WaitApplied(min uint64, timeout time.Duration) error {
	r.mu.Lock()
	if r.applied >= min && r.serving {
		r.mu.Unlock()
		return nil
	}
	r.events.Add(metrics.EventReplStaleWaits, 1)
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		if !r.serving {
			r.mu.Unlock()
			return ErrReplicaGone
		}
		if r.applied >= min {
			r.mu.Unlock()
			return nil
		}
		ch := r.notify
		r.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			return ErrStaleRead
		}
		r.mu.Lock()
	}
}

// SessionRead runs a read-only stored procedure against the replica after
// waiting for its horizon to cover the session's minLSN. The partition is
// put in read-only mode for the call, so a mistakenly routed writing
// procedure fails instead of silently diverging the replica.
func (r *Replica) SessionRead(proc, key string, args map[string]string, minLSN uint64) (map[string]string, error) {
	if err := r.WaitApplied(minLSN, r.opts.StaleReadTimeout); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.serving {
		return nil, ErrReplicaGone
	}
	r.p.SetReadOnly(true)
	out, err := engine.ReadOnlyCall(r.reg, r.p, proc, key, args)
	r.p.SetReadOnly(false)
	r.events.Add(metrics.EventReplicaReads, 1)
	return out, err
}

// Promote takes the replica out of standby duty and hands its partition to
// the caller, which builds a primary from it: the fast failover path — no
// disk replay, the in-memory state is already at the applied horizon.
// Returns the partition, the applied LSN, the epoch the replica had seen,
// and — for a durable replica — its command-log manager, whose ownership
// transfers to the caller: the promoted primary continues the same log in
// the same directory, which is what makes an immediate second fault
// recoverable.
func (r *Replica) Promote() (*storage.Partition, uint64, uint64, *durability.Manager) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.serving = false
	r.wakeLocked()
	p := r.p
	r.p = storage.NewPartition(r.part, r.nBuckets, nil)
	mgr := r.mgr
	r.mgr = nil
	return p, r.applied, r.epoch, mgr
}

// Kill stops the replica serving (its host node died). Waiters unblock
// with ErrReplicaGone. A durable replica's log is crash-abandoned —
// fsynced state stays on disk for a future respawn to recover.
func (r *Replica) Kill() {
	r.mu.Lock()
	r.serving = false
	mgr := r.mgr
	r.mgr = nil
	r.wakeLocked()
	r.mu.Unlock()
	// Crash waits for the WAL committer to drain, and the committer's
	// durable callbacks take r.mu (advanceDurable) — the wait must happen
	// outside the lock or the two deadlock.
	if mgr != nil {
		mgr.Crash()
	}
}

// Inspect runs fn with exclusive access to the replica's partition —
// verification hooks (content checksums) only; fn must not mutate.
func (r *Replica) Inspect(fn func(p *storage.Partition)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.p)
}
