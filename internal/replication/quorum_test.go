package replication

import (
	"errors"
	"testing"
	"time"

	"pstore/internal/metrics"
)

func quorumFeed(required int) (*Feed, *metrics.Events) {
	ev := metrics.NewEvents()
	return NewFeed(0, nil, 1, 0, Options{Seed: 1, RequiredSubscribers: required}, ev), ev
}

// TestFeedQuorumArmsThenSheds: a fresh feed degrades to local durability
// (availability over redundancy) until it has seen its full quorum once;
// after arming, losing a subscriber self-fences the primary.
func TestFeedQuorumArmsThenSheds(t *testing.T) {
	f, ev := quorumFeed(1)
	defer f.Close()

	// Unarmed: no subscriber has ever attached, writes flow.
	if f.Armed() {
		t.Fatal("fresh feed reports Armed")
	}
	if err := f.Available(); err != nil {
		t.Fatalf("unarmed feed Available = %v, want nil", err)
	}
	// Armed is a pure observation: probing Available must not arm the latch.
	if f.Armed() {
		t.Fatal("feed armed with zero subscribers after Available probe")
	}
	if err := <-appendWait(f, "pre"); err != nil {
		t.Fatalf("unarmed append: %v", err)
	}

	att, err := f.Attach(f.LSN(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Available(); err != nil {
		t.Fatalf("armed full-quorum feed Available = %v, want nil", err)
	}
	if !f.Armed() {
		t.Fatal("feed not Armed after full subscriber complement attached")
	}

	att.Sub.Close()
	if err := f.Available(); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("post-loss Available = %v, want ErrQuorumLost", err)
	}
	if got := ev.Get(metrics.EventReplQuorumLost); got != 1 {
		t.Errorf("quorum-loss events = %d, want 1", got)
	}
	// The latch reports the same loss once, not per probe.
	f.Available()
	f.Available()
	if got := ev.Get(metrics.EventReplQuorumLost); got != 1 {
		t.Errorf("quorum-loss events after repeated probes = %d, want 1", got)
	}
}

// TestFeedQuorumLossStallsInFlight: a write already executing when the
// quorum drops must stall — never fail — because its mutation is already in
// the partition and a post-execution failure plus a client retry would
// double-apply. It completes when a new subscriber acks past its LSN.
func TestFeedQuorumLossStallsInFlight(t *testing.T) {
	f, _ := quorumFeed(1)
	defer f.Close()
	att, err := f.Attach(0, 1)
	if err != nil {
		t.Fatal(err)
	}

	done := appendWait(f, "inflight") // LSN 1, waiting on the subscriber's ack
	att.Sub.Close()                   // quorum lost with the write in flight

	select {
	case err := <-done:
		t.Fatalf("in-flight write resolved during quorum loss (err=%v); must stall", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Quorum heals: a replacement subscriber catches up and acks.
	att2, err := f.Attach(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(att2.Catchup) != 1 {
		t.Fatalf("replacement catchup = %d frames, want 1", len(att2.Catchup))
	}
	att2.Sub.Ack(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after quorum heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write never completed after quorum heal")
	}
	if err := f.Available(); err != nil {
		t.Fatalf("healed feed Available = %v, want nil", err)
	}
}

// TestFeedQuorumFenceReleasesStalledWrite: the other exit from a quorum
// stall — a failover fences the feed, and the stalled waiter fails with
// ErrFenced (its state dies with the deposed primary, so no ack escapes).
func TestFeedQuorumFenceReleasesStalledWrite(t *testing.T) {
	f, _ := quorumFeed(1)
	att, err := f.Attach(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	done := appendWait(f, "doomed")
	att.Sub.Close()
	f.Fence()
	select {
	case err := <-done:
		if !errors.Is(err, ErrFenced) {
			t.Fatalf("stalled write after fence: %v, want ErrFenced", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled write never released by fence")
	}
	if err := f.Available(); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced feed Available = %v, want ErrFenced (terminal state wins over quorum)", err)
	}
}

// TestFeedUnusableIsPureObservation: Unusable never arms or trips the
// quorum latch — the monitor's vote tally must not change feed state.
func TestFeedUnusableIsPureObservation(t *testing.T) {
	f, ev := quorumFeed(1)
	defer f.Close()
	att, err := f.Attach(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Unusable(); err != nil {
		t.Fatalf("healthy Unusable = %v, want nil", err)
	}
	att.Sub.Close()
	// Unusable stays nil across a quorum loss and must not record it.
	if err := f.Unusable(); err != nil {
		t.Fatalf("quorum-lost Unusable = %v, want nil (not a terminal state)", err)
	}
	if got := ev.Get(metrics.EventReplQuorumLost); got != 0 {
		t.Errorf("Unusable advanced the quorum latch: %d loss events", got)
	}
	f.Fence()
	if err := f.Unusable(); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced Unusable = %v, want ErrFenced", err)
	}
}

// TestFeedQuorumDisabled: RequiredSubscribers=0 never self-fences, matching
// the pre-quorum behavior (local durability alone acks writes).
func TestFeedQuorumDisabled(t *testing.T) {
	f := memFeed()
	defer f.Close()
	att, err := f.Attach(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	att.Sub.Close()
	if err := f.Available(); err != nil {
		t.Fatalf("quorum-disabled Available after subscriber loss = %v, want nil", err)
	}
	if err := <-appendWait(f, "k"); err != nil {
		t.Fatal(err)
	}
}

// TestHubFencePartitionRaisesFloor: fencing deregisters the stale feed,
// refuses re-registration below the floor, and accepts a successor at or
// above it.
func TestHubFencePartitionRaisesFloor(t *testing.T) {
	ev := newTestEvents()
	hub := NewHub(Options{Seed: 1}, ev)
	defer hub.Close()
	old := NewFeed(0, nil, 1, 0, Options{Seed: 1}, ev)
	defer old.Close()
	if err := hub.Register(0, old); err != nil {
		t.Fatal(err)
	}

	hub.FencePartition(0, 3)
	if got := hub.MinEpoch(0); got != 3 {
		t.Fatalf("MinEpoch = %d, want 3", got)
	}
	// The deposed primary rejoining with its stale feed must be refused.
	if err := hub.Register(0, old); err == nil {
		t.Fatal("hub accepted a feed below the fencing floor")
	}
	promoted := NewFeed(0, nil, 3, 0, Options{Seed: 1}, ev)
	defer promoted.Close()
	if err := hub.Register(0, promoted); err != nil {
		t.Fatalf("hub refused the promoted feed at the floor: %v", err)
	}
	// The floor is monotonic: fencing lower never lowers it.
	hub.FencePartition(0, 2)
	if got := hub.MinEpoch(0); got != 3 {
		t.Fatalf("MinEpoch after lower fence = %d, want 3", got)
	}
}

// TestHubFenceSeversStaleSubscribers: an attached replica streaming from a
// stale epoch's feed is cut when the partition is fenced — that is what
// collapses an unreachable deposed primary's ack quorum so it self-fences.
func TestHubFenceSeversStaleSubscribers(t *testing.T) {
	rig := newShipRig(t, Options{Seed: 1})
	rig.write("seed")
	rep, _ := startReplica(t, rig, nil)
	if err := rep.WaitApplied(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if live, _ := rig.feed.Subscribers(); live == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never joined the ack quorum")
		}
		time.Sleep(2 * time.Millisecond)
	}

	rig.hub.FencePartition(0, rig.feed.Epoch()+1)

	// The hub severs the stale session; the feed loses its subscriber, and
	// the tail's resubscription is refused (no feed at or above the floor),
	// so the subscriber count stays down.
	for {
		if _, total := rig.feed.Subscribers(); total == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale subscriber survived the fence")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
