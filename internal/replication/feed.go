package replication

import (
	"fmt"
	"sync"
	"time"

	"pstore/internal/durability"
	"pstore/internal/metrics"
	"pstore/internal/storage"
)

// Snapshot is a consistent cut of a partition at one LSN, used to seed a
// replica that cannot be caught up incrementally.
type Snapshot struct {
	Tables  []string
	Buckets []*storage.BucketData
	LSN     uint64
	Epoch   uint64
}

// SnapshotFunc produces a consistent snapshot of the feed's partition at
// its current LSN. The cluster wires it to run inside the partition
// executor's exclusive section, so the cut never interleaves with appends.
type SnapshotFunc func() (*Snapshot, error)

// Feed is the primary side of one partition's replication: it implements
// engine.CommandLog, assigns LSNs, chains records to the partition's
// durability manager (when one exists), retains a bounded tail of encoded
// records for catch-up and fans them out to subscribers.
//
// A transaction's onDurable callback fires only once the record is locally
// durable AND every live subscriber has acked its LSN — synchronous
// k-safety. With zero live subscribers the feed degrades to local
// durability alone (availability over redundancy; the failover monitor
// restores k in the background) — but only until the quorum first arms:
// once RequiredSubscribers live subscribers have been seen, losing them
// self-fences the feed instead (see Available), because a primary that
// silently drops to local-only acks while partitioned from its standbys is
// exactly how split-brain loses acked writes.
//
// Lock order: appendMu > mu > inner's locks. appendMu serializes LSN
// assignment with the inner manager's sequence counter so LSN == seq always
// holds; mu guards feed state and is never held across an inner call or a
// caller-visible callback.
type Feed struct {
	part   int
	inner  *durability.Manager // may be nil: in-memory cluster
	opts   Options
	events *metrics.Events

	appendMu sync.Mutex

	mu      sync.Mutex
	lsn     uint64 // last assigned LSN
	epoch   uint64
	fenced  bool
	closed  bool
	durable uint64 // highest locally durable LSN

	required   int  // ack-quorum size; 0 disables self-fencing
	armed      bool // quorum seen at full strength at least once
	quorumLost bool // armed and currently below required (self-fenced)

	buf      [][]byte // encoded frames for LSNs [bufStart, bufStart+len)
	bufStart uint64

	subs   map[*Subscriber]struct{}
	win    ackWindow // sliding window of unacked in-flight transactions
	winErr bool      // a waiter failed locally out of prefix order (rare)
	snapFn SnapshotFunc
}

// waiter is one in-flight transaction awaiting local durability plus the
// cumulative replica ack. Stored by value inside the ack window's ring so
// the steady-state append path allocates nothing per transaction.
type waiter struct {
	lsn   uint64
	fn    func(uint64, error)
	err   error     // local append failure, set on the (rare) error path
	start time.Time // append time, for the cumulative-ack latency histogram
}

type completion struct {
	fn    func(uint64, error)
	lsn   uint64
	err   error
	start time.Time
}

// ackWindow is a FIFO ring of waiters in LSN order. Because acks are
// cumulative and local durability advances as a watermark, completion is a
// prefix pop — O(1) amortized per transaction — instead of the O(n) scan
// per ack the waiter list used to cost, which is what lets thousands of
// transactions ride the pipeline between ack round trips.
type ackWindow struct {
	buf  []waiter
	head int
	n    int
}

func (w *ackWindow) push(wt waiter) {
	if w.n == len(w.buf) {
		nb := make([]waiter, maxInt(16, 2*len(w.buf)))
		for i := 0; i < w.n; i++ {
			nb[i] = w.buf[(w.head+i)%len(w.buf)]
		}
		w.buf, w.head = nb, 0
	}
	w.buf[(w.head+w.n)%len(w.buf)] = wt
	w.n++
}

func (w *ackWindow) front() *waiter { return &w.buf[w.head] }

func (w *ackWindow) at(i int) *waiter { return &w.buf[(w.head+i)%len(w.buf)] }

func (w *ackWindow) popFront() waiter {
	wt := w.buf[w.head]
	w.buf[w.head] = waiter{}
	w.head = (w.head + 1) % len(w.buf)
	w.n--
	return wt
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NewFeed creates a feed for the partition at the given epoch, continuing
// the LSN space after startLSN. inner may be nil (no on-disk durability);
// when set, its sequence counter must equal startLSN — the feed keeps the
// two aligned from then on.
func NewFeed(part int, inner *durability.Manager, epoch, startLSN uint64, opts Options, events *metrics.Events) *Feed {
	if epoch == 0 {
		epoch = 1
	}
	opts = opts.Normalized()
	return &Feed{
		part:     part,
		inner:    inner,
		opts:     opts,
		events:   events,
		lsn:      startLSN,
		epoch:    epoch,
		bufStart: startLSN + 1,
		subs:     make(map[*Subscriber]struct{}),
		required: opts.RequiredSubscribers,
	}
}

// Partition returns the feed's partition ID.
func (f *Feed) Partition() int { return f.part }

// LSN returns the last assigned log sequence number.
func (f *Feed) LSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lsn
}

// Epoch returns the feed's epoch.
func (f *Feed) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Horizon returns the replication horizon: the highest LSN acked by every
// live subscriber (the feed head when none are live). Everything at or
// below it survives any single-primary failure.
func (f *Feed) Horizon() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.lsn
	for s := range f.subs {
		if s.live && s.acked < h {
			h = s.acked
		}
	}
	return h
}

// Subscribers returns (live, total) subscriber counts.
func (f *Feed) Subscribers() (live, total int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for s := range f.subs {
		if s.live {
			live++
		}
	}
	return live, len(f.subs)
}

// SetSnapshotFunc installs the consistent-cut provider used for full
// resyncs. Must be set before the first subscriber attaches.
func (f *Feed) SetSnapshotFunc(fn SnapshotFunc) {
	f.mu.Lock()
	f.snapFn = fn
	f.mu.Unlock()
}

// Append implements engine.CommandLog: it ships the committed command to
// subscribers and defers onDurable until the record is locally durable and
// replica-acked.
func (f *Feed) Append(proc, key string, args map[string]string, onDurable func(uint64, error)) {
	f.appendMu.Lock()
	f.mu.Lock()
	if err := f.unusableLocked(); err != nil {
		f.mu.Unlock()
		f.appendMu.Unlock()
		f.events.Add(metrics.EventReplFencedWrites, 1)
		if onDurable != nil {
			onDurable(0, err)
		}
		return
	}
	f.lsn++
	lsn := f.lsn
	// Encode immediately: args aliases a pooled map the engine reuses after
	// the ack, so the feed must not retain it.
	frame := encodeFrame(&Record{LSN: lsn, Epoch: f.epoch, Kind: RecTxn, Proc: proc, Key: key, Args: args})
	f.publishLocked(lsn, frame)
	if onDurable != nil {
		var start time.Time
		if f.events != nil {
			start = time.Now() //pstore:ignore seeddiscipline — ack-latency observability, not a decision path
		}
		f.win.push(waiter{lsn: lsn, fn: onDurable, start: start})
		f.events.Observe(metrics.HistReplAckWindow, int64(f.win.n))
	}
	f.mu.Unlock()

	if f.inner != nil {
		// Still under appendMu: the inner manager assigns seq == lsn.
		f.inner.Append(proc, key, args, func(_ uint64, err error) { f.localDurable(lsn, err) })
		f.appendMu.Unlock()
		return
	}
	f.appendMu.Unlock()
	f.localDurable(lsn, nil)
}

// LogPut ships a direct row load (cluster.LoadRow). Asynchronous: bulk
// preloads must not block on per-row replica acks; ordering alone keeps
// replicas consistent.
func (f *Feed) LogPut(table, key string, cols map[string]string) error {
	f.appendMu.Lock()
	f.mu.Lock()
	if err := f.unusableLocked(); err != nil {
		f.mu.Unlock()
		f.appendMu.Unlock()
		return err
	}
	f.lsn++
	lsn := f.lsn
	frame := encodeFrame(&Record{LSN: lsn, Epoch: f.epoch, Kind: RecPut, Tab: table, Key: key, Args: cols})
	f.publishLocked(lsn, frame)
	f.mu.Unlock()
	var err error
	if f.inner != nil {
		_, err = f.inner.AppendPut(table, key, cols)
	}
	f.appendMu.Unlock()
	if f.inner == nil {
		f.localDurable(lsn, nil)
	}
	return err
}

// LogBucketIn ships a migration bucket handoff (receive side), chaining to
// the durability manager's synchronous bucket-in record.
func (f *Feed) LogBucketIn(data *storage.BucketData) error {
	f.appendMu.Lock()
	f.mu.Lock()
	if err := f.unusableLocked(); err != nil {
		f.mu.Unlock()
		f.appendMu.Unlock()
		return err
	}
	f.lsn++
	lsn := f.lsn
	frame := encodeFrame(&Record{LSN: lsn, Epoch: f.epoch, Kind: RecBucketIn, Bucket: data.Bucket, Data: data})
	f.publishLocked(lsn, frame)
	f.mu.Unlock()
	var err error
	if f.inner != nil {
		err = f.inner.LogBucketIn(data)
	}
	f.appendMu.Unlock()
	if f.inner == nil {
		f.localDurable(lsn, nil)
	}
	return err
}

// LogBucketOut ships a migration bucket handoff (send side).
func (f *Feed) LogBucketOut(bucket int) error {
	f.appendMu.Lock()
	f.mu.Lock()
	if err := f.unusableLocked(); err != nil {
		f.mu.Unlock()
		f.appendMu.Unlock()
		return err
	}
	f.lsn++
	lsn := f.lsn
	frame := encodeFrame(&Record{LSN: lsn, Epoch: f.epoch, Kind: RecBucketOut, Bucket: bucket})
	f.publishLocked(lsn, frame)
	f.mu.Unlock()
	var err error
	if f.inner != nil {
		err = f.inner.LogBucketOut(bucket)
	}
	f.appendMu.Unlock()
	if f.inner == nil {
		f.localDurable(lsn, nil)
	}
	return err
}

func (f *Feed) unusableLocked() error {
	if f.closed {
		return ErrClosed
	}
	if f.fenced {
		return ErrFenced
	}
	return nil
}

// liveCountLocked counts subscribers currently in the ack quorum.
func (f *Feed) liveCountLocked() int {
	n := 0
	for s := range f.subs {
		if s.live {
			n++
		}
	}
	return n
}

// quorumLostLocked reports whether the armed feed is below its required
// quorum, maintaining the lost/regained transition accounting as a side
// effect. Call whenever the live set changes.
func (f *Feed) quorumLostLocked() bool {
	if f.required <= 0 || f.fenced || f.closed {
		return false
	}
	live := f.liveCountLocked()
	if !f.armed {
		if live >= f.required {
			f.armed = true
		}
		return false
	}
	if live >= f.required {
		f.quorumLost = false
		return false
	}
	if !f.quorumLost {
		f.quorumLost = true
		f.events.Add(metrics.EventReplQuorumLost, 1)
	}
	return true
}

// Available reports whether the feed can currently accept and acknowledge
// a write: nil, or ErrClosed/ErrFenced/ErrQuorumLost. The cluster's
// routing layer sheds writes on a non-nil answer BEFORE executing the
// transaction — the self-fencing check must run pre-execution, because a
// write rejected after mutating partition state could double-apply when
// the client retries against the same (still authoritative) primary.
func (f *Feed) Available() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.unusableLocked(); err != nil {
		return err
	}
	if f.quorumLostLocked() {
		return ErrQuorumLost
	}
	if f.opts.AckWindow > 0 && f.win.n >= f.opts.AckWindow {
		f.events.Add(metrics.EventReplWindowStalls, 1)
		return ErrWindowFull
	}
	return nil
}

// Unusable reports the feed's terminal state — ErrFenced or ErrClosed, nil
// while the feed can still ship. Unlike Available it never consults or
// advances the quorum latch, so the failover monitor can use it as a pure
// observation when tallying its depose vote.
func (f *Feed) Unusable() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.unusableLocked()
}

// Armed reports whether the feed has ever seen its full required standby
// complement. Before arming, writes acknowledge on local durability alone,
// so the head may run past anything a standby holds; from the moment of
// arming onward every acked LSN is covered by standby acks (and the
// pre-arm prefix by the joining snapshot), which is what makes promoting a
// caught-up standby loss-free. Pure observation: never advances the latch.
func (f *Feed) Armed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.armed
}

// publishLocked adds the encoded frame to the retained tail and every
// subscriber queue. A subscriber whose queue is full cannot keep up within
// the retained window and is deposed — it will resync.
func (f *Feed) publishLocked(lsn uint64, frame []byte) {
	f.buf = append(f.buf, frame)
	if len(f.buf) >= 2*f.opts.MaxBuffer {
		// Amortized trim: compacting on every append once the window is
		// full costs an O(MaxBuffer) memmove per record (it was ~40% of
		// k=1 CPU). Let the slice grow to 2× and cut back to MaxBuffer in
		// one move, so each retained slot is copied at most once.
		drop := len(f.buf) - f.opts.MaxBuffer
		n := copy(f.buf, f.buf[drop:])
		tail := f.buf[n:]
		for i := range tail {
			tail[i] = nil // release dropped frames to the GC
		}
		f.buf = f.buf[:n]
		f.bufStart += uint64(drop)
	}
	f.events.Add(metrics.EventReplRecords, 1)
	for s := range f.subs { //pstore:ignore determinism — every subscriber gets the same frame on its own queue; delivery order across subscribers is unobservable
		select {
		case s.q <- frame:
		default:
			f.deposeLocked(s)
		}
	}
	_ = lsn
}

// localDurable marks lsn locally durable and completes any waiters whose
// replica acks are already in. Runs on the group-commit goroutine (or the
// appender itself when there is no inner log). Local durability advances
// as a watermark — group commit delivers append callbacks in LSN order, so
// the max observed success covers every waiter at or below it — which is
// what makes completion a prefix pop instead of a per-LSN scan.
func (f *Feed) localDurable(lsn uint64, err error) {
	f.mu.Lock()
	if err == nil {
		if lsn > f.durable {
			f.durable = lsn
		}
	} else {
		// Rare path: a failed local append fails exactly its own waiter;
		// the durable watermark does not move past it.
		for i := 0; i < f.win.n; i++ {
			w := f.win.at(i)
			if w.lsn == lsn {
				w.err = err
				f.winErr = true
				break
			}
			if w.lsn > lsn {
				break
			}
		}
	}
	comps := f.completableLocked()
	f.mu.Unlock()
	runCompletions(comps)
}

// completableLocked detaches every waiter that can complete now: locally
// failed ones complete immediately with their error; locally durable ones
// complete once the cumulative subscriber ack covers their LSN (trivially
// true with no live subscribers). Because acks are cumulative and local
// durability is a watermark, completable waiters always form a prefix of
// the window — the loop pops until the first waiter still in flight.
func (f *Feed) completableLocked() []completion {
	if f.win.n == 0 {
		return nil
	}
	cover := f.ackCoverLocked()
	var out []completion
	for f.win.n > 0 {
		w := f.win.front()
		if w.err != nil {
			out = append(out, completion{w.fn, w.lsn, w.err, w.start})
		} else if w.lsn <= f.durable && w.lsn <= cover {
			out = append(out, completion{w.fn, w.lsn, nil, w.start})
		} else {
			break
		}
		f.win.popFront()
	}
	if f.winErr {
		// Rare path: a locally failed waiter sits behind one still waiting
		// for acks. It must not wait for coverage that may never come, so
		// sweep it out of the middle of the window.
		f.winErr = false
		kept := 0
		for i := 0; i < f.win.n; i++ {
			w := *f.win.at(i)
			if w.err != nil {
				out = append(out, completion{w.fn, w.lsn, w.err, w.start})
				continue
			}
			*f.win.at(kept) = w
			kept++
		}
		for i := kept; i < f.win.n; i++ {
			*f.win.at(i) = waiter{}
		}
		f.win.n = kept
	}
	if len(out) > 0 && f.events != nil {
		now := time.Now() //pstore:ignore seeddiscipline — ack-latency observability, not a decision path
		for i := range out {
			if out[i].err == nil {
				f.events.Observe(metrics.HistReplAckLatencyUS, now.Sub(out[i].start).Microseconds())
			}
		}
	}
	return out
}

// ackCoverLocked returns the highest LSN the subscriber quorum covers: the
// minimum live subscriber's cumulative ack, MaxUint64 with no live
// subscribers (local durability alone completes), and 0 when an armed feed
// is below its required quorum. In the quorum-lost case waiters stall
// until a subscriber re-acks past their LSN (quorum healed — the record is
// then replicated) or the feed is fenced by a failover (the waiter fails,
// and the state it mutated is discarded with the deposed primary). Either
// way no write is ever acked in a state that a promotion could lose.
func (f *Feed) ackCoverLocked() uint64 {
	if f.quorumLostLocked() {
		return 0
	}
	cover := ^uint64(0)
	for s := range f.subs {
		if s.live && s.acked < cover {
			cover = s.acked
		}
	}
	return cover
}

func runCompletions(comps []completion) {
	for _, c := range comps {
		c.fn(c.lsn, c.err)
	}
}

// Fence rejects all future appends and fails every in-flight waiter with
// ErrFenced: the partition's primaryship has moved to a higher epoch, so
// nothing this feed holds may ever be acknowledged. Subscribers are deposed
// — they must resubscribe to the new primary's feed.
func (f *Feed) Fence() {
	f.mu.Lock()
	f.fenced = true
	comps := f.drainWindowLocked(ErrFenced)
	for s := range f.subs {
		f.deposeLocked(s)
	}
	f.mu.Unlock()
	runCompletions(comps)
}

// drainWindowLocked fails every in-flight waiter with err and empties the
// window (feed fenced or closed — nothing pending may ever complete).
func (f *Feed) drainWindowLocked(err error) []completion {
	var comps []completion
	for f.win.n > 0 {
		w := f.win.popFront()
		comps = append(comps, completion{w.fn, 0, err, w.start})
	}
	f.winErr = false
	return comps
}

// Close shuts the feed down, failing in-flight waiters with ErrClosed and
// deposing subscribers. Idempotent.
func (f *Feed) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	comps := f.drainWindowLocked(ErrClosed)
	for s := range f.subs {
		f.deposeLocked(s)
	}
	f.mu.Unlock()
	runCompletions(comps)
}

// Subscriber is one attached replica stream. The hub reads frames from
// Frames and forwards acks via Ack; Gone closes when the feed deposed the
// subscriber (too slow, fenced, or feed closed).
type Subscriber struct {
	f        *Feed
	q        chan []byte
	gone     chan struct{}
	goneOnce sync.Once

	// Guarded by f.mu.
	acked   uint64
	live    bool
	joinLSN uint64
}

// Frames returns the subscriber's record stream.
func (s *Subscriber) Frames() <-chan []byte { return s.q }

// Gone closes when the subscriber has been cut from the feed.
func (s *Subscriber) Gone() <-chan struct{} { return s.gone }

// Ack records that the replica has applied everything through lsn. The
// first ack at or past the subscriber's join point adds it to the ack
// quorum — joins are pause-less: a catching-up replica never gates writes.
func (s *Subscriber) Ack(lsn uint64) {
	f := s.f
	f.mu.Lock()
	if lsn > s.acked {
		s.acked = lsn
	}
	if !s.live {
		if _, attached := f.subs[s]; attached && s.acked >= s.joinLSN {
			s.live = true
		}
	}
	comps := f.completableLocked()
	f.mu.Unlock()
	runCompletions(comps)
}

// Acked returns the subscriber's ack watermark.
func (s *Subscriber) Acked() uint64 {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	return s.acked
}

// Close detaches the subscriber from the feed (connection closed).
func (s *Subscriber) Close() {
	f := s.f
	f.mu.Lock()
	if _, ok := f.subs[s]; ok {
		f.deposeLocked(s)
	}
	comps := f.completableLocked()
	f.mu.Unlock()
	runCompletions(comps)
}

// deposeLocked cuts the subscriber from the feed and its ack quorum.
func (f *Feed) deposeLocked(s *Subscriber) {
	delete(f.subs, s)
	s.live = false
	s.goneOnce.Do(func() { close(s.gone) })
	f.events.Add(metrics.EventReplDeposed, 1)
}

// Attachment is the result of subscribing to a feed: the live Subscriber
// plus whatever the replica needs first — a full Snapshot (resync) or a
// Catchup batch of encoded frames contiguous with the live queue.
type Attachment struct {
	Sub      *Subscriber
	Epoch    uint64
	StartLSN uint64 // the replica resumes applying after this LSN
	Snapshot *Snapshot
	Catchup  [][]byte
}

// Attach subscribes a replica that has applied through fromLSN at
// fromEpoch. The feed picks the cheapest correct seeding: the in-memory
// tail when it covers fromLSN+1, a disk read through the durability tail
// reader when not, and a full snapshot when the replica's history is
// unusable (older epoch, ahead of the feed, or the log has been truncated
// past its position).
func (f *Feed) Attach(fromLSN, fromEpoch uint64) (*Attachment, error) {
	f.mu.Lock()
	if f.closed || f.fenced {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	if fromEpoch > f.epoch {
		f.mu.Unlock()
		return nil, errStaleEpoch
	}
	// A replica from an older epoch may have applied unacked records the
	// new primary never had; its prefix is not trustworthy. Same if it
	// claims to be ahead of the feed. Both resync from a snapshot.
	needSnapshot := fromEpoch != f.epoch || fromLSN > f.lsn
	if !needSnapshot && fromLSN+1 >= f.bufStart {
		att := f.attachLocked(fromLSN)
		f.mu.Unlock()
		return att, nil
	}
	snapFn := f.snapFn
	bufStart := f.bufStart
	f.mu.Unlock()

	if !needSnapshot && f.inner != nil {
		// One disk pass narrows the gap; if the tail reader ends inside the
		// retained window the attach below is incremental.
		frames, last, err := f.diskCatchup(fromLSN)
		if err == nil && last >= bufStart-1 {
			f.mu.Lock()
			if f.closed || f.fenced {
				f.mu.Unlock()
				return nil, ErrClosed
			}
			if last+1 >= f.bufStart && last <= f.lsn {
				att := f.attachLocked(last)
				att.Catchup = append(frames, att.Catchup...)
				att.StartLSN = fromLSN
				f.mu.Unlock()
				return att, nil
			}
			f.mu.Unlock()
		}
	}

	// Full resync.
	if snapFn == nil {
		return nil, fmt.Errorf("replication: partition %d: no snapshot provider for resync", f.part)
	}
	f.events.Add(metrics.EventReplResyncs, 1)
	snap, err := snapFn()
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	if f.closed || f.fenced {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	if snap.LSN+1 < f.bufStart || snap.LSN > f.lsn {
		f.mu.Unlock()
		return nil, fmt.Errorf("replication: partition %d: snapshot cut %d outside retained window [%d,%d]",
			f.part, snap.LSN, f.bufStart, f.lsn)
	}
	att := f.attachLocked(snap.LSN)
	att.Snapshot = snap
	f.mu.Unlock()
	return att, nil
}

// attachLocked registers a subscriber that has (or will have, via the
// returned catch-up/snapshot) applied through fromLSN, and hands back the
// retained frames bridging fromLSN to the live queue.
func (f *Feed) attachLocked(fromLSN uint64) *Attachment {
	s := &Subscriber{
		f:       f,
		q:       make(chan []byte, f.opts.MaxBuffer),
		gone:    make(chan struct{}),
		acked:   fromLSN,
		joinLSN: f.lsn,
	}
	if s.acked >= s.joinLSN {
		s.live = true
	}
	f.subs[s] = struct{}{}
	var catchup [][]byte
	if fromLSN < f.lsn {
		catchup = append(catchup, f.buf[fromLSN+1-f.bufStart:]...)
	}
	return &Attachment{Sub: s, Epoch: f.epoch, StartLSN: fromLSN, Catchup: catchup}
}

// diskCatchup re-encodes durable records after fromLSN as ship frames.
func (f *Feed) diskCatchup(fromLSN uint64) (frames [][]byte, last uint64, err error) {
	last = fromLSN
	epoch := f.Epoch()
	err = f.inner.ReadFrom(fromLSN, func(rec *durability.Record) error {
		srec, cerr := fromDurable(rec, epoch)
		if cerr != nil {
			return cerr
		}
		if srec.LSN != last+1 {
			return fmt.Errorf("replication: disk catch-up gap: have %d, next record %d", last, srec.LSN)
		}
		frames = append(frames, appendRecord(nil, srec))
		last = srec.LSN
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return frames, last, nil
}
