package replication

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pstore/internal/engine"
	"pstore/internal/storage"
)

// shipRig is a primary (partition + feed + hub) for end-to-end shipping
// tests. mu keeps the partition state and the feed LSN consistent for
// writes and snapshot cuts, standing in for the cluster's executor.
type shipRig struct {
	t    *testing.T
	mu   sync.Mutex
	part *storage.Partition
	feed *Feed
	hub  *Hub
	reg  *engine.Registry
	opts Options
}

func newShipRig(t *testing.T, opts Options) *shipRig {
	t.Helper()
	const nBuckets = 16
	owned := make([]int, nBuckets)
	for i := range owned {
		owned[i] = i
	}
	rig := &shipRig{t: t, reg: testReg(), opts: opts.Normalized()}
	rig.part = storage.NewPartition(0, nBuckets, owned)
	rig.part.CreateTable("T")
	events := newTestEvents()
	rig.feed = NewFeed(0, nil, 1, 0, opts, events)
	rig.feed.SetSnapshotFunc(rig.snapshot)
	rig.hub = NewHub(opts, events)
	rig.hub.Register(0, rig.feed)
	if err := rig.hub.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rig.feed.Close()
		rig.hub.Close()
	})
	return rig
}

func (rig *shipRig) snapshot() (*Snapshot, error) {
	rig.mu.Lock()
	defer rig.mu.Unlock()
	snap := &Snapshot{Tables: rig.part.Tables(), LSN: rig.feed.LSN(), Epoch: rig.feed.Epoch()}
	for _, b := range rig.part.OwnedBuckets() {
		d, err := rig.part.CopyBucket(b)
		if err != nil {
			return nil, err
		}
		snap.Buckets = append(snap.Buckets, d)
	}
	return snap, nil
}

// write applies one Put to the primary and ships it, without waiting for
// replica acks (the feed completion is collected asynchronously).
func (rig *shipRig) write(key string) {
	rig.mu.Lock()
	defer rig.mu.Unlock()
	args := map[string]string{"v": key}
	if err := engine.ReplayTxn(rig.reg, rig.part, "Put", key, args); err != nil {
		rig.t.Fatalf("primary write %s: %v", key, err)
	}
	rig.feed.Append("Put", key, args, nil)
}

func (rig *shipRig) encodePrimary() []byte {
	rig.mu.Lock()
	defer rig.mu.Unlock()
	var out []byte
	for _, b := range rig.part.OwnedBuckets() {
		d, err := rig.part.CopyBucket(b)
		if err != nil {
			rig.t.Fatal(err)
		}
		out = appendBucketData(out, d)
	}
	return out
}

func startReplica(t *testing.T, rig *shipRig, wrap func(net.Conn) net.Conn) (*Replica, *Tail) {
	t.Helper()
	rep := NewReplica(0, 16, "standby", testReg(), rig.opts, newTestEvents())
	tail := StartTail(rig.hub.Addr(), rep, wrap, rig.opts, newTestEvents())
	t.Cleanup(func() {
		rep.Kill()
		tail.Stop()
	})
	return rep, tail
}

// TestShipSnapshotThenLiveStream covers the full path: a fresh replica
// snapshot-seeds (its epoch 0 never matches the feed), drains the live
// stream, acks, and ends byte-identical to the primary.
func TestShipSnapshotThenLiveStream(t *testing.T) {
	rig := newShipRig(t, Options{Seed: 1})
	for i := 0; i < 30; i++ {
		rig.write(fmt.Sprintf("pre%d", i))
	}
	rep, _ := startReplica(t, rig, nil)
	if err := rep.WaitApplied(30, 5*time.Second); err != nil {
		t.Fatalf("replica never seeded: %v", err)
	}
	for i := 0; i < 40; i++ {
		rig.write(fmt.Sprintf("live%d", i))
	}
	if err := rep.WaitApplied(70, 5*time.Second); err != nil {
		t.Fatalf("replica never caught up: %v", err)
	}
	if got, want := encodeReplica(rep), rig.encodePrimary(); !bytes.Equal(got, want) {
		t.Fatal("replica state differs from primary after shipping")
	}
	// Acks must advance the feed's replication horizon to the head.
	deadline := time.Now().Add(5 * time.Second)
	for rig.feed.Horizon() != 70 {
		if time.Now().After(deadline) {
			t.Fatalf("horizon stuck at %d, want 70", rig.feed.Horizon())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// severConn wraps a connection so the test can cut it mid-stream.
type severConn struct {
	net.Conn
	once sync.Once
}

func (c *severConn) sever() { c.once.Do(func() { c.Conn.Close() }) }

// TestTailReconnectsAfterSever cuts the shipping connection under load; the
// tail must reconnect (resubscribing from its applied horizon) and converge
// without operator help.
func TestTailReconnectsAfterSever(t *testing.T) {
	rig := newShipRig(t, Options{Seed: 1})
	var cmu sync.Mutex
	var conns []*severConn
	wrap := func(c net.Conn) net.Conn {
		sc := &severConn{Conn: c}
		cmu.Lock()
		conns = append(conns, sc)
		cmu.Unlock()
		return sc
	}
	for i := 0; i < 20; i++ {
		rig.write(fmt.Sprintf("a%d", i))
	}
	rep, _ := startReplica(t, rig, wrap)
	if err := rep.WaitApplied(20, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	cmu.Lock()
	for _, c := range conns {
		c.sever()
	}
	nSevered := len(conns)
	cmu.Unlock()

	for i := 0; i < 30; i++ {
		rig.write(fmt.Sprintf("b%d", i))
	}
	if err := rep.WaitApplied(50, 10*time.Second); err != nil {
		t.Fatalf("replica never recovered from severed stream: %v", err)
	}
	if got, want := encodeReplica(rep), rig.encodePrimary(); !bytes.Equal(got, want) {
		t.Fatal("replica diverged across reconnect")
	}
	cmu.Lock()
	reconnected := len(conns) > nSevered
	cmu.Unlock()
	if !reconnected {
		t.Fatal("tail converged without a new connection — sever did not take")
	}
}

// TestHubRefusesUnknownPartition: a subscribe for an unregistered partition
// gets an explicit error frame, not a hang or a silent close.
func TestHubRefusesUnknownPartition(t *testing.T) {
	rig := newShipRig(t, Options{Seed: 1})
	conn, err := net.DialTimeout("tcp", rig.hub.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(encodeSubscribe(7, 0, 0)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var buf []byte
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := readShipFrame(br, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeHello(payload); err == nil || !strings.Contains(err.Error(), "no feed for partition 7") {
		t.Fatalf("hello decode = %v, want refusal naming partition 7", err)
	}
}

// TestHubDeposesSilentSubscriber: a replica that stops acking is cut after
// AckTimeout so it cannot gate the commit path forever.
func TestHubDeposesSilentSubscriber(t *testing.T) {
	opts := Options{Seed: 1, AckTimeout: 150 * time.Millisecond}
	rig := newShipRig(t, opts)
	rig.write("seed")

	// A hand-rolled subscriber that subscribes, consumes its seeding, then
	// goes silent — no acks, no keepalives.
	conn, err := net.DialTimeout("tcp", rig.hub.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(encodeSubscribe(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, total := rig.feed.Subscribers()
		if total == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never attached")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Give the hub's ack reader time to hit its deadline and sever the
	// connection; the next shipped write then flushes into the dead conn,
	// the stream errors out and the subscriber falls from the quorum — so
	// the write completes instead of hanging on an ack that never comes.
	time.Sleep(3 * opts.AckTimeout)
	done := make(chan error, 1)
	rig.mu.Lock()
	rig.feed.Append("Put", "after", map[string]string{"v": "1"}, func(_ uint64, err error) { done <- err })
	rig.mu.Unlock()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write still gated by a silent subscriber")
	}
	for {
		_, total := rig.feed.Subscribers()
		if total == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("silent subscriber never deposed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
